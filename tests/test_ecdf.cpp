#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace prebake::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
  const Ecdf f{std::vector<double>{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const Ecdf f{std::vector<double>{1.0, 2.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(1.9999), 0.25);
}

TEST(Ecdf, QuantileInverse) {
  const Ecdf f{std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0}};
  EXPECT_DOUBLE_EQ(f.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.01), 10.0);
}

TEST(Ecdf, QuantileValidation) {
  const Ecdf f{std::vector<double>{1.0}};
  EXPECT_THROW(f.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(f.quantile(1.1), std::invalid_argument);
}

TEST(Ecdf, EmptySampleThrows) {
  EXPECT_THROW(Ecdf{std::vector<double>{}}, std::invalid_argument);
}

TEST(Ecdf, MonotoneNondecreasing) {
  sim::Rng rng{3};
  std::vector<double> xs(100);
  for (double& x : xs) x = rng.uniform(0, 100);
  const Ecdf f{xs};
  double prev = 0.0;
  for (double x = -1; x <= 101; x += 0.5) {
    const double v = f(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(KsDistance, IdenticalSamplesGiveZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_distance(Ecdf{xs}, Ecdf{xs}), 0.0);
}

TEST(KsDistance, DisjointSamplesGiveOne) {
  const Ecdf a{std::vector<double>{1.0, 2.0, 3.0}};
  const Ecdf b{std::vector<double>{10.0, 11.0, 12.0}};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsDistance, Symmetric) {
  sim::Rng rng{4};
  std::vector<double> xs(50), ys(70);
  for (double& x : xs) x = rng.normal(0, 1);
  for (double& y : ys) y = rng.normal(0.3, 1);
  EXPECT_DOUBLE_EQ(ks_distance(Ecdf{xs}, Ecdf{ys}),
                   ks_distance(Ecdf{ys}, Ecdf{xs}));
}

TEST(KsTest, SameDistributionHighP) {
  sim::Rng rng{5};
  std::vector<double> xs(200), ys(200);
  for (double& x : xs) x = rng.normal(5, 1);
  for (double& y : ys) y = rng.normal(5, 1);
  const auto res = ks_test(xs, ys);
  EXPECT_GT(res.p_value, 0.05);
  EXPECT_LT(res.d, 0.15);
}

TEST(KsTest, DifferentDistributionLowP) {
  sim::Rng rng{6};
  std::vector<double> xs(200), ys(200);
  for (double& x : xs) x = rng.normal(5, 1);
  for (double& y : ys) y = rng.normal(6.5, 1);
  const auto res = ks_test(xs, ys);
  EXPECT_LT(res.p_value, 1e-6);
  EXPECT_GT(res.d, 0.3);
}

TEST(KsTest, PValueInUnitInterval) {
  sim::Rng rng{7};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> xs(30), ys(30);
    for (double& x : xs) x = rng.uniform();
    for (double& y : ys) y = rng.uniform();
    const auto res = ks_test(xs, ys);
    EXPECT_GE(res.p_value, 0.0);
    EXPECT_LE(res.p_value, 1.0);
  }
}

}  // namespace
}  // namespace prebake::stats
