#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace prebake::stats {
namespace {

const std::vector<double> kSample{4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Descriptive, Mean) { EXPECT_DOUBLE_EQ(mean(kSample), 3.0); }

TEST(Descriptive, MeanEmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, Variance) {
  EXPECT_DOUBLE_EQ(variance(kSample), 2.5);  // sample variance of 1..5
}

TEST(Descriptive, VarianceNeedsTwo) {
  EXPECT_THROW(variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Descriptive, Stddev) {
  EXPECT_NEAR(stddev(kSample), 1.5811388, 1e-6);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 1.0);
  EXPECT_DOUBLE_EQ(max(kSample), 5.0);
}

TEST(Descriptive, MedianOdd) { EXPECT_DOUBLE_EQ(median(kSample), 3.0); }

TEST(Descriptive, MedianEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Descriptive, MedianSingleton) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(Descriptive, PercentileEndpoints) {
  EXPECT_DOUBLE_EQ(percentile(kSample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 1.0), 5.0);
}

TEST(Descriptive, PercentileInterpolates) {
  // Type-7: p25 of {1,2,3,4,5} = 2.0, p10 = 1.4.
  EXPECT_DOUBLE_EQ(percentile(kSample, 0.25), 2.0);
  EXPECT_NEAR(percentile(kSample, 0.10), 1.4, 1e-12);
}

TEST(Descriptive, PercentileRejectsBadQ) {
  EXPECT_THROW(percentile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile(kSample, 1.1), std::invalid_argument);
}

TEST(Descriptive, SortedDoesNotMutate) {
  std::vector<double> v{3.0, 1.0, 2.0};
  const auto s = sorted(v);
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(v, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Descriptive, SummaryFields) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.p95, s.p75);
}

TEST(Descriptive, SummaryEmptyIsZero) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Descriptive, SummarySingleton) {
  const Summary s = summarize(std::vector<double>{2.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace prebake::stats
