// Live replica migration via pre-dump chains (DESIGN.md §6i): platform-level
// orchestration, chain robustness at the CRIU layer, and the end-to-end
// scenario claims (warm evacuation loses nothing, blackout beats a cold
// re-restore, faults degrade the migration but never the service).
#include <gtest/gtest.h>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/migration.hpp"
#include "faas/platform.hpp"

namespace prebake::faas {
namespace {

constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

// --- platform orchestration ------------------------------------------------

class MigrationPlatformTest : public ::testing::Test {
 protected:
  MigrationPlatformTest() : kernel_{sim_, exp::testbed_costs()} {}

  // Built lazily so each test can tweak the config first.
  Platform& platform(std::uint32_t nodes = 2) {
    if (!platform_) {
      platform_ = std::make_unique<Platform>(kernel_, exp::testbed_runtime(),
                                             config_, 99);
      for (std::uint32_t i = 0; i < nodes; ++i)
        platform_->resources().add_node("w" + std::to_string(i), 8 * GiB, 2);
    }
    return *platform_;
  }

  // Deploy the noop function prebaked and realize one warm replica.
  void warm_one() {
    platform().deploy(exp::noop_spec(), StartMode::kPrebaked,
                      core::SnapshotPolicy::warmup(1));
    platform().scale_up("noop", 1);
    while (platform().idle_replica_count("noop") == 0 && kernel_.sim().step()) {
    }
    ASSERT_EQ(platform().idle_replica_count("noop"), 1u);
  }

  // Run long enough for any in-flight migration to resolve, but not so long
  // that the idle timeout reclaims the replica under the assertions.
  void pump_for(sim::Duration d = sim::Duration::seconds(30)) {
    kernel_.sim().run_until(kernel_.sim().now() + d);
  }

  funcs::Response invoke_sync(const std::string& fn) {
    funcs::Response out;
    bool done = false;
    platform().invoke(fn, funcs::sample_request("noop"),
                      [&](const funcs::Response& res, const RequestMetrics&) {
                        out = res;
                        done = true;
                      });
    while (!done && kernel_.sim().step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  PlatformConfig config_;
  std::unique_ptr<Platform> platform_;
};

TEST_F(MigrationPlatformTest, LiveMigrationMovesWarmReplica) {
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  ASSERT_NE(source, kNoNode);

  ASSERT_TRUE(platform().migrate_replica("noop"));
  pump_for();

  EXPECT_EQ(platform().stats().migrations_started, 1u);
  EXPECT_EQ(platform().stats().migrations_completed, 1u);
  EXPECT_EQ(platform().stats().migrations_aborted, 0u);
  const NodeId dest = platform().find_replica_node("noop");
  ASSERT_NE(dest, kNoNode);
  EXPECT_NE(dest, source);
  EXPECT_EQ(platform().idle_replica_count("noop"), 1u);

  const NodeStats& src_stats = platform().resources().node(source).stats();
  const NodeStats& dst_stats = platform().resources().node(dest).stats();
  EXPECT_EQ(src_stats.migrations_out, 1u);
  EXPECT_EQ(src_stats.warmth_replicas_migrated, 1u);
  EXPECT_EQ(src_stats.warmth_replicas_destroyed, 0u);
  EXPECT_EQ(dst_stats.migrations_in, 1u);

  // The moved replica is the same warm process state: serving through it is
  // not a cold start.
  EXPECT_TRUE(invoke_sync("noop").ok());
  EXPECT_EQ(platform().stats().cold_starts, 0u);
}

TEST_F(MigrationPlatformTest, MigrateToExplicitDestination) {
  platform(3);
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  // Pick the highest node id as an explicit target: never the default pick.
  const NodeId target = 2;
  ASSERT_NE(source, target);
  ASSERT_TRUE(platform().migrate_replica("noop", kNoNode, target));
  pump_for();
  EXPECT_EQ(platform().stats().migrations_completed, 1u);
  EXPECT_EQ(platform().find_replica_node("noop"), target);
}

TEST_F(MigrationPlatformTest, MigrationChargesDowntimeBelowFullRestore) {
  warm_one();
  ASSERT_TRUE(platform().migrate_replica("noop"));
  pump_for();
  ASSERT_EQ(platform().stats().migrations_completed, 1u);
  // The cutover blackout pays the final delta + standby resume, never the
  // whole footprint: milliseconds against the ~190 ms registry re-restore.
  const double blackout_ms = platform().stats().migration_downtime.to_millis();
  EXPECT_GT(blackout_ms, 0.0);
  EXPECT_LT(blackout_ms, 50.0);
  EXPECT_GT(platform().stats().migration_precopy_bytes,
            platform().stats().migration_final_bytes);
}

TEST_F(MigrationPlatformTest, DrainReclaimDestroysWarmth) {
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  platform().drain_node(source, Platform::DrainMode::kReclaim);
  pump_for();
  EXPECT_EQ(platform().replica_count("noop"), 0u);
  const NodeStats& stats = platform().resources().node(source).stats();
  EXPECT_EQ(stats.warmth_replicas_destroyed, 1u);
  EXPECT_EQ(stats.warmth_replicas_migrated, 0u);
}

TEST_F(MigrationPlatformTest, DrainMigrateWarmEvacuatesWarmth) {
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  platform().drain_node(source, Platform::DrainMode::kMigrateWarm);
  pump_for();
  EXPECT_EQ(platform().stats().migrations_completed, 1u);
  EXPECT_EQ(platform().idle_replica_count("noop"), 1u);
  EXPECT_NE(platform().find_replica_node("noop"), source);
  const NodeStats& stats = platform().resources().node(source).stats();
  EXPECT_EQ(stats.warmth_replicas_migrated, 1u);
  EXPECT_EQ(stats.warmth_replicas_destroyed, 0u);
}

TEST_F(MigrationPlatformTest, RebalanceShedsIdleReplicaFromHotNode) {
  // Watermark 0: every schedulable node with an idle replica is "hot", so
  // rebalance must shed exactly the one idle replica we have.
  config_.rebalance_high_watermark = 0.0;
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  EXPECT_EQ(platform().rebalance(), 1u);
  pump_for();
  EXPECT_EQ(platform().stats().rebalance_moves, 1u);
  EXPECT_EQ(platform().stats().migrations_completed, 1u);
  EXPECT_NE(platform().find_replica_node("noop"), source);
}

TEST_F(MigrationPlatformTest, SourceCrashMidPreDumpAbortsToLocal) {
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  faults::FaultPlan plan;
  plan.migration_dump_fault_rate = 1.0;
  kernel_.faults().configure(plan);

  ASSERT_TRUE(platform().migrate_replica("noop"));
  pump_for();

  EXPECT_EQ(platform().stats().migrations_aborted, 1u);
  EXPECT_EQ(platform().stats().migrations_completed, 0u);
  // Abort-to-local: the replica never left and keeps serving warm.
  EXPECT_EQ(platform().find_replica_node("noop"), source);
  EXPECT_EQ(platform().idle_replica_count("noop"), 1u);
  EXPECT_TRUE(invoke_sync("noop").ok());
  EXPECT_EQ(platform().stats().cold_starts, 0u);
  const NodeStats& stats = platform().resources().node(source).stats();
  EXPECT_EQ(stats.migrations_aborted, 1u);
}

TEST_F(MigrationPlatformTest, CorruptEveryLinkExhaustsFinalAttemptsAndAborts) {
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  faults::FaultPlan plan;
  plan.migration_link_corrupt_rate = 1.0;
  kernel_.faults().configure(plan);

  ASSERT_TRUE(platform().migrate_replica("noop"));
  pump_for();

  // The corrupt pre-copy link degrades the chain to a full dump; with every
  // shipment corrupt the bounded final attempts then abort back to local.
  EXPECT_GE(platform().stats().migration_full_dumps, 1u);
  EXPECT_EQ(platform().stats().migrations_aborted, 1u);
  EXPECT_EQ(platform().find_replica_node("noop"), source);
  EXPECT_TRUE(invoke_sync("noop").ok());
  EXPECT_EQ(platform().stats().cold_starts, 0u);
}

TEST_F(MigrationPlatformTest, DestinationCrashRetriesOnAnotherNode) {
  config_.node_recovery_delay = sim::Duration::seconds(30);
  platform(3);
  warm_one();
  const NodeId source = platform().find_replica_node("noop");
  // The node-crash site fires on its first draw only: the first cutover
  // destination dies mid-restore; the retry elsewhere restores clean.
  faults::FaultPlan plan;
  plan.node_crash_rate = 0.5;
  plan.seed = 7;
  kernel_.faults().configure(plan);
  const bool first_draw_fires = [&] {
    faults::Injector probe;
    probe.configure(plan);
    return probe.fires(faults::FaultSite::kNodeCrash);
  }();
  ASSERT_TRUE(first_draw_fires) << "pick a seed whose first draw fires";

  ASSERT_TRUE(platform().migrate_replica("noop"));
  pump_for();

  EXPECT_GE(platform().stats().migration_dest_retries, 1u);
  if (platform().stats().migrations_completed == 1u) {
    const NodeId final_node = platform().find_replica_node("noop");
    EXPECT_NE(final_node, source);
    EXPECT_EQ(platform().idle_replica_count("noop"), 1u);
  } else {
    // Every alternative destination also crashed: abort back to local is
    // the only acceptable degradation.
    EXPECT_EQ(platform().stats().migrations_aborted, 1u);
    EXPECT_EQ(platform().find_replica_node("noop"), source);
  }
  EXPECT_TRUE(invoke_sync("noop").ok());
}

TEST_F(MigrationPlatformTest, HealthEwmaTriggersEvacuation) {
  // Every prebaked start fails its image reads and falls back: the node
  // health EWMA (alpha 0.2) crosses 0.3 on the second failing start.
  config_.evacuation_threshold = 0.3;
  config_.evacuation_cooldown = sim::Duration::seconds(5);
  warm_one();  // clean start: EWMA stays 0, no evacuation yet
  EXPECT_EQ(platform().stats().evacuations, 0u);

  faults::FaultPlan plan;
  plan.image_read_error_rate = 1.0;
  kernel_.faults().configure(plan);
  // A burst of failing starts: whichever node eats the second one crosses
  // the threshold (0.2 then 0.36) and evacuates.
  platform().scale_up("noop", 6);
  pump_for();

  EXPECT_GE(platform().stats().restore_fallbacks, 2u);
  EXPECT_GE(platform().stats().evacuations, 1u);
  EXPECT_GE(platform().stats().migrations_started, 1u);
}

// --- pre-dump chain robustness (CRIU layer) --------------------------------

class MigrationChainTest : public ::testing::Test {
 protected:
  MigrationChainTest() : kernel_{sim_} {
    kernel_.fs().create("/bin/app", 2 * 1024 * 1024);
  }

  os::Pid make_target() {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.exec(pid, "/bin/app", {"/bin/app", "--fn"});
    heap_ = kernel_.mmap(pid, os::kPageSize * 64, os::Prot::kReadWrite,
                         os::VmaKind::kAnon, "[big-heap]",
                         std::make_shared<os::PatternSource>(0xFEED), false);
    kernel_.fault_in(pid, heap_, 0, 48);
    return pid;
  }

  void dirty(os::Pid pid, std::uint64_t first, std::uint64_t pages) {
    kernel_.process(pid).mm().touch(heap_, first, pages, /*write=*/true);
  }

  // Depth-3 chain: base pre-dump, two incremental pre-dumps, final dump —
  // the shape a 3-round live migration ships.
  std::vector<criu::DumpResult> make_chain(os::Pid pid) {
    std::vector<criu::DumpResult> links;
    criu::DumpOptions base;
    base.pre_dump = true;
    links.push_back(criu::Dumper{kernel_}.dump(pid, base));

    dirty(pid, 0, 4);
    criu::DumpOptions mid;
    mid.pre_dump = true;
    const criu::ImageDir* chain1[] = {&links[0].images};
    mid.parent_chain = chain1;
    links.push_back(criu::Dumper{kernel_}.dump(pid, mid));

    dirty(pid, 8, 4);
    criu::DumpOptions last;
    last.leave_running = true;
    const criu::ImageDir* chain2[] = {&links[0].images, &links[1].images};
    last.parent_chain = chain2;
    links.push_back(criu::Dumper{kernel_}.dump(pid, last));
    return links;
  }

  static criu::ImageDir copy_truncated(const criu::ImageDir& src,
                                       const std::string& victim) {
    criu::ImageDir out;
    for (const std::string& name : src.names()) {
      const criu::ImageDir::ImageFile& f = src.get(name);
      std::vector<std::uint8_t> bytes = f.bytes;
      if (name == victim) bytes.resize(bytes.size() / 2);
      out.put(name, std::move(bytes), f.nominal_size);
    }
    return out;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  os::VmaId heap_ = 0;
};

TEST_F(MigrationChainTest, ChainLinksUnionParentCoverage) {
  const os::Pid pid = make_target();
  const std::vector<criu::DumpResult> links = make_chain(pid);
  // The base link holds the full resident set; each later link only its
  // round's dirty delta — the whole point of --prev-images-dir chains.
  EXPECT_GE(links[0].stats.pages_dumped, 48u);
  EXPECT_EQ(links[1].stats.pages_dumped, 4u);
  // Without the union over *all* parents the final dump would re-dump the
  // 44+ pages only the base link covers.
  EXPECT_EQ(links[2].stats.pages_dumped, 4u);
}

TEST_F(MigrationChainTest, CorruptParentLinkErrorNamesChainDepth) {
  const os::Pid pid = make_target();
  const std::vector<criu::DumpResult> links = make_chain(pid);
  // Flip a byte in the *middle* parent link (depth 1 counting back from the
  // final dump): the typed error must attribute the failure to that link.
  criu::ImageDir flipped;
  for (const std::string& name : links[1].images.names()) {
    const criu::ImageDir::ImageFile& f = links[1].images.get(name);
    std::vector<std::uint8_t> bytes = f.bytes;
    if (name == "pagemap.img") bytes[bytes.size() / 2] ^= 0x40;
    flipped.put(name, std::move(bytes), f.nominal_size);
  }
  const criu::ImageDir* chain[] = {&links[0].images, &flipped,
                                   &links[2].images};
  try {
    criu::Restorer{kernel_}.restore_chain(chain);
    FAIL() << "restore_chain accepted a corrupt parent link";
  } catch (const criu::RestoreError& e) {
    EXPECT_EQ(e.kind(), criu::RestoreErrorKind::kCorruptImage);
    EXPECT_EQ(e.chain_link(), 1);
    EXPECT_NE(std::string{e.what()}.find("chain link 1"), std::string::npos);
  }
}

TEST_F(MigrationChainTest, TruncatedParentLinkErrorNamesChainDepth) {
  const os::Pid pid = make_target();
  const std::vector<criu::DumpResult> links = make_chain(pid);
  // Truncate the *base* link's payload (depth 2): a half-shipped pre-copy
  // link must be rejected whole and attributed, not silently under-restore.
  const criu::ImageDir cut = copy_truncated(links[0].images, "pages-1.img");
  const criu::ImageDir* chain[] = {&cut, &links[1].images, &links[2].images};
  try {
    criu::Restorer{kernel_}.restore_chain(chain);
    FAIL() << "restore_chain accepted a truncated parent link";
  } catch (const criu::RestoreError& e) {
    EXPECT_EQ(e.kind(), criu::RestoreErrorKind::kCorruptImage);
    EXPECT_EQ(e.chain_link(), 2);
    EXPECT_NE(std::string{e.what()}.find("chain link 2"), std::string::npos);
  }
  // The intact chain still restores.
  const criu::ImageDir* good[] = {&links[0].images, &links[1].images,
                                  &links[2].images};
  EXPECT_NO_THROW(criu::Restorer{kernel_}.restore_chain(good));
}

// --- end-to-end scenario ---------------------------------------------------

exp::MigrationScenarioConfig scenario_config() {
  exp::MigrationScenarioConfig cfg;
  // Short run keeps the suite fast; the bench sweeps the full durations.
  cfg.duration = sim::Duration::seconds(30);
  cfg.migrate_at = sim::Duration::seconds(10);
  return cfg;
}

TEST(MigrationScenarioTest, WarmDrainLosesNothing) {
  const exp::MigrationScenarioConfig cfg = scenario_config();
  const exp::MigrationScenarioResult res = exp::run_migration_scenario(cfg);
  EXPECT_GT(res.requests, 0u);
  EXPECT_EQ(res.answered, res.requests);
  EXPECT_EQ(res.responses_ok, res.requests);
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_DOUBLE_EQ(res.availability, 1.0);
  EXPECT_GE(res.migrations_completed, 1u);
  EXPECT_GE(res.warmth_replicas_migrated, 1u);
  EXPECT_EQ(res.warmth_replicas_destroyed, 0u);
  EXPECT_EQ(res.cold_starts, 0u);
  ASSERT_NE(res.source_node, kNoNode);
  ASSERT_NE(res.final_node, kNoNode);
  EXPECT_NE(res.final_node, res.source_node);
}

TEST(MigrationScenarioTest, DowntimeBeatsColdRestore) {
  const exp::MigrationScenarioResult res =
      exp::run_migration_scenario(scenario_config());
  ASSERT_GE(res.migrations_completed, 1u);
  EXPECT_GT(res.downtime_ms, 0.0);
  EXPECT_GT(res.cold_restore_ms, 0.0);
  // The ISSUE gate: read-heavy live migration blacks out for well under 30%
  // of what destroying the replica and cold re-restoring would cost.
  EXPECT_LT(res.downtime_ms, 0.3 * res.cold_restore_ms);
}

TEST(MigrationScenarioTest, DowntimeGrowsWithDirtyRate) {
  exp::MigrationScenarioConfig cfg = scenario_config();
  cfg.migration.max_rounds = 1;  // one pre-copy round isolates the knob
  cfg.request_dirty_pages = 0;
  const exp::MigrationScenarioResult readonly =
      exp::run_migration_scenario(cfg);
  cfg.request_dirty_pages = 256;
  const exp::MigrationScenarioResult dirty = exp::run_migration_scenario(cfg);
  ASSERT_GE(readonly.migrations_completed, 1u);
  ASSERT_GE(dirty.migrations_completed, 1u);
  EXPECT_GT(dirty.migration_final_bytes, readonly.migration_final_bytes);
  EXPECT_GT(dirty.downtime_ms, readonly.downtime_ms);
}

TEST(MigrationScenarioTest, StopAndCopyPaysFullRestoreInBlackout) {
  exp::MigrationScenarioConfig cfg = scenario_config();
  const exp::MigrationScenarioResult live = exp::run_migration_scenario(cfg);
  cfg.migration.max_rounds = 0;  // no pre-copy: the comparison baseline
  const exp::MigrationScenarioResult stop = exp::run_migration_scenario(cfg);
  ASSERT_GE(live.migrations_completed, 1u);
  ASSERT_GE(stop.migrations_completed, 1u);
  EXPECT_EQ(stop.migration_rounds, 0u);
  // Stop-and-copy has no standby: its blackout carries the full transfer
  // and restore that pre-copy pays while still serving.
  EXPECT_GT(stop.downtime_ms, 3.0 * live.downtime_ms);
  EXPECT_EQ(stop.answered, stop.requests);
}

TEST(MigrationScenarioTest, DeepChainNegotiatesDeltasUnderRegistryStalls) {
  exp::MigrationScenarioConfig cfg = scenario_config();
  // Force a chain deeper than 2 links and keep the faulty registry busy:
  // per-link delta negotiation must still converge the chain.
  cfg.migration.max_rounds = 4;
  cfg.migration.convergence_pages = 0;
  cfg.request_dirty_pages = 64;
  cfg.faults.registry_stall_rate = 1.0;
  cfg.faults.registry_stall = sim::Duration::millis(20);
  const exp::MigrationScenarioResult res = exp::run_migration_scenario(cfg);
  ASSERT_GE(res.migrations_completed, 1u);
  EXPECT_GT(res.migration_rounds, 2u);
  EXPECT_EQ(res.answered, res.requests);
  EXPECT_EQ(res.rejected, 0u);
  // Pre-copy carries the bulk; the final delta is orders smaller.
  EXPECT_GT(res.migration_precopy_bytes, 10u * res.migration_final_bytes);
}

TEST(MigrationScenarioTest, SourceCrashDegradesMigrationNotService) {
  exp::MigrationScenarioConfig cfg = scenario_config();
  // Targeted move (not a drain): the abort leaves the replica serving on a
  // fully schedulable source, so a doomed migration costs zero requests.
  cfg.drain_source = false;
  cfg.faults.migration_dump_fault_rate = 1.0;
  const exp::MigrationScenarioResult res = exp::run_migration_scenario(cfg);
  EXPECT_GE(res.migrations_aborted, 1u);
  EXPECT_EQ(res.migrations_completed, 0u);
  // The robustness claim: a failed migration costs zero requests.
  EXPECT_EQ(res.answered, res.requests);
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_DOUBLE_EQ(res.availability, 1.0);
}

TEST(MigrationScenarioTest, DeterministicAcrossRuns) {
  const exp::MigrationScenarioConfig cfg = scenario_config();
  const exp::MigrationScenarioResult a = exp::run_migration_scenario(cfg);
  const exp::MigrationScenarioResult b = exp::run_migration_scenario(cfg);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.answered, b.answered);
  EXPECT_EQ(a.migration_rounds, b.migration_rounds);
  EXPECT_EQ(a.migration_precopy_bytes, b.migration_precopy_bytes);
  EXPECT_EQ(a.migration_final_bytes, b.migration_final_bytes);
  EXPECT_DOUBLE_EQ(a.downtime_ms, b.downtime_ms);
  EXPECT_DOUBLE_EQ(a.total_p95_ms, b.total_p95_ms);
}

}  // namespace
}  // namespace prebake::faas
