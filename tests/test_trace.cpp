#include "faas/trace.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"

namespace prebake::faas {
namespace {

TEST(TraceCsv, ParseBasic) {
  const auto events = parse_trace_csv("0,noop\n12.5,markdown\n3,noop\n");
  ASSERT_EQ(events.size(), 3u);
  // Sorted by offset.
  EXPECT_EQ(events[0].at.to_millis(), 0.0);
  EXPECT_EQ(events[1].at.to_millis(), 3.0);
  EXPECT_EQ(events[2].at.to_millis(), 12.5);
  EXPECT_EQ(events[2].function, "markdown");
}

TEST(TraceCsv, CommentsAndBlanksIgnored) {
  const auto events =
      parse_trace_csv("# header\n\n  \n5,fn # trailing comment\r\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].function, "fn");
}

TEST(TraceCsv, WhitespaceAroundNameTrimmed) {
  const auto events = parse_trace_csv("1,  spaced-name \n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].function, "spaced-name");
}

TEST(TraceCsv, MalformedLinesThrowWithLineNumber) {
  try {
    parse_trace_csv("0,ok\nnocomma\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_trace_csv("abc,fn\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace_csv("-5,fn\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace_csv("5,\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace_csv("5x,fn\n"), std::invalid_argument);
}

TEST(TraceCsv, FormatParseRoundTrip) {
  std::vector<TraceEvent> events{
      {sim::Duration::millis_f(0.25), "a"},
      {sim::Duration::millis(100), "b"},
      {sim::Duration::seconds(2), "a"},
  };
  const auto back = parse_trace_csv(format_trace_csv(events));
  EXPECT_EQ(back, events);
}

TEST(TraceGen, PoissonCountNearExpectation) {
  const auto events =
      generate_poisson_trace("fn", 50.0, sim::Duration::seconds(20), 7);
  // Expect ~1000 events; 4 sigma ~ 126.
  EXPECT_GT(events.size(), 870u);
  EXPECT_LT(events.size(), 1130u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].at, events[i - 1].at);
}

TEST(TraceGen, PoissonDeterministicPerSeed) {
  const auto a = generate_poisson_trace("fn", 5, sim::Duration::seconds(10), 3);
  const auto b = generate_poisson_trace("fn", 5, sim::Duration::seconds(10), 3);
  EXPECT_EQ(a, b);
}

TEST(TraceGen, PoissonValidation) {
  EXPECT_THROW(generate_poisson_trace("fn", 0.0, sim::Duration::seconds(1), 1),
               std::invalid_argument);
}

TEST(TraceGen, DiurnalPeaksWherePhaseSaysSo) {
  // Period 100 s, trough at t=0, peak at t=50 s.
  const auto events = generate_diurnal_trace(
      "fn", 1.0, 60.0, sim::Duration::seconds(100), sim::Duration::seconds(100),
      11);
  std::size_t trough = 0, peak = 0;
  for (const TraceEvent& e : events) {
    const double s = e.at.to_seconds();
    if (s < 20.0 || s > 80.0) ++trough;
    if (s >= 30.0 && s <= 70.0) ++peak;
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(TraceGen, DiurnalValidation) {
  // A peak below the base must be rejected, and the message must name both
  // offending values — a silent clamp would distort the generated rate.
  try {
    generate_diurnal_trace("fn", 5.0, 1.0, sim::Duration::seconds(1),
                           sim::Duration::seconds(1), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("base_rate_hz=5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("peak_rate_hz=1"), std::string::npos) << msg;
  }
  EXPECT_THROW(generate_diurnal_trace("fn", 1.0, 2.0, sim::Duration{},
                                      sim::Duration::seconds(1), 1),
               std::invalid_argument);
}

TEST(TraceReplay, RunsAgainstPlatform) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  Platform platform{kernel, exp::testbed_runtime(), PlatformConfig{}, 17};
  platform.resources().add_node("n", 8ull << 30);
  platform.deploy(exp::noop_spec(), StartMode::kVanilla);
  platform.deploy(exp::markdown_spec(), StartMode::kVanilla);

  // Spacing wider than a cold start, so each function needs exactly one
  // replica (tighter spacing would legitimately scale out mid-start-up).
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i)
    events.push_back({sim::Duration::millis(500 * i),
                      i % 2 == 0 ? "noop" : "markdown-render"});
  const TraceReplayResult result = replay_trace(platform, events);
  EXPECT_EQ(result.responses_ok, 10u);
  EXPECT_EQ(result.responses_rejected, 0u);
  EXPECT_EQ(result.metrics.size(), 10u);
  // Two functions, two cold starts.
  EXPECT_EQ(platform.stats().cold_starts, 2u);
}

TEST(TraceReplay, UndeployedFunctionRejectedUpFront) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  Platform platform{kernel, exp::testbed_runtime(), PlatformConfig{}, 18};
  platform.resources().add_node("n", 8ull << 30);
  const std::vector<TraceEvent> events{{sim::Duration::millis(1), "ghost"}};
  EXPECT_THROW(replay_trace(platform, events), std::out_of_range);
}

}  // namespace
}  // namespace prebake::faas
