#include "criu/dedup.hpp"

#include <gtest/gtest.h>

#include "core/prebaker.hpp"
#include "exp/calibration.hpp"
#include "faas/builder.hpp"

namespace prebake::criu {
namespace {

class DedupTest : public ::testing::Test {
 protected:
  DedupTest()
      : kernel_{sim_, exp::testbed_costs()},
        startup_{kernel_, exp::testbed_runtime(), assets_},
        builder_{kernel_, startup_} {}

  core::BakedSnapshot bake(const rt::FunctionSpec& spec,
                           core::SnapshotPolicy policy, std::uint64_t seed) {
    core::PrebakeConfig cfg;
    cfg.policy = policy;
    cfg.store_root = "/snapshots/" + std::to_string(seed) + "/";
    faas::BuildResult built = builder_.build(spec, cfg, sim::Rng{seed});
    return std::move(*built.snapshot);
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
  core::StartupService startup_;
  faas::FunctionBuilder builder_;
};

TEST_F(DedupTest, EmptyIndexStats) {
  DedupIndex index;
  EXPECT_EQ(index.stats().total_pages, 0u);
  EXPECT_EQ(index.stats().unique_pages, 0u);
  EXPECT_DOUBLE_EQ(index.stats().dedup_ratio(), 1.0);
  EXPECT_EQ(index.refcount(123), 0u);
}

TEST_F(DedupTest, FirstSnapshotIsAllFresh) {
  DedupIndex index;
  const auto snap = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  const std::uint64_t fresh = index.add(snap.images);
  EXPECT_EQ(fresh, snap.stats.pages_dumped);
  EXPECT_EQ(index.stats().unique_pages, index.stats().total_pages);
}

TEST_F(DedupTest, IdenticalRebakeDedupsCompletely) {
  DedupIndex index;
  const auto a = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  const auto b = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 2);
  index.add(a.images);
  const std::uint64_t fresh = index.add(b.images);
  // Re-bakes of the same function share everything except per-process state
  // (the stack and the tiny demand-paged text prefix differ by pid).
  EXPECT_LT(fresh, 300u);
  EXPECT_GT(index.stats().dedup_ratio(), 1.85);
}

TEST_F(DedupTest, RuntimeBaseSharedAcrossFunctions) {
  DedupIndex index;
  const auto noop = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  index.add(noop.images);
  const auto md =
      bake(exp::markdown_spec(), core::SnapshotPolicy::no_warmup(), 2);
  const std::uint64_t fresh = index.add(md.images);
  // The JVM base (heap + metaspace after bootstrap) dedups away; only the
  // markdown-specific state is new.
  EXPECT_LT(fresh, md.stats.pages_dumped / 3);
  EXPECT_GT(fresh, 0u);
}

TEST_F(DedupTest, WarmSnapshotSharesColdBase) {
  DedupIndex index;
  const auto cold = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  index.add(cold.images);
  const auto warm = bake(exp::noop_spec(), core::SnapshotPolicy::warmup(1), 2);
  const std::uint64_t fresh = index.add(warm.images);
  // Warm-up only adds lazy metaspace + code cache pages.
  EXPECT_LT(fresh, warm.stats.pages_dumped / 4);
}

TEST_F(DedupTest, RefcountsTrackSharing) {
  DedupIndex index;
  const auto a = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  index.add(a.images);
  index.add(a.images);
  const PagesEntry pages = decode_pages(a.images.get("pages-1.img").bytes);
  ASSERT_FALSE(pages.digests.empty());
  EXPECT_EQ(index.refcount(pages.digests.front()), 2u);
}

TEST_F(DedupTest, RemoveDecrementsAndFrees) {
  DedupIndex index;
  const auto noop = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  const auto md =
      bake(exp::markdown_spec(), core::SnapshotPolicy::no_warmup(), 2);
  index.add(noop.images);
  index.add(md.images);
  const DedupStats before = index.stats();

  // Dropping markdown frees exactly its non-shared pages; the runtime base
  // noop still references survives with its refcount decremented.
  const std::uint64_t freed = index.remove(md.images);
  EXPECT_GT(freed, 0u);
  EXPECT_LT(freed, md.stats.pages_dumped);
  EXPECT_EQ(index.stats().unique_pages, before.unique_pages - freed);
  EXPECT_EQ(index.stats().total_pages,
            before.total_pages - md.stats.pages_dumped);
  const ImageDir::PagesView& md_pages = *md.images.decoded().pages;
  std::uint64_t still_shared = 0;
  std::uint64_t gone = 0;
  for (const std::uint64_t d : md_pages.digests())
    index.refcount(d) > 0 ? ++still_shared : ++gone;
  EXPECT_EQ(still_shared + gone, md.stats.pages_dumped);
  EXPECT_GE(gone, freed);  // freed counts unique contents, gone occurrences

  // Removing the last snapshot empties the index completely.
  index.remove(noop.images);
  EXPECT_EQ(index.stats().total_pages, 0u);
  EXPECT_EQ(index.stats().unique_pages, 0u);
}

TEST_F(DedupTest, RemoveUnknownSnapshotThrows) {
  DedupIndex index;
  const auto snap = bake(exp::noop_spec(), core::SnapshotPolicy::no_warmup(), 1);
  EXPECT_THROW(index.remove(snap.images), std::logic_error);
  index.add(snap.images);
  index.remove(snap.images);
  EXPECT_THROW(index.remove(snap.images), std::logic_error);
}

TEST_F(DedupTest, SavedBytesArithmetic) {
  DedupStats s;
  s.total_pages = 100;
  s.unique_pages = 40;
  EXPECT_EQ(s.total_bytes(), 100u * 4096);
  EXPECT_EQ(s.unique_bytes(), 40u * 4096);
  EXPECT_EQ(s.saved_bytes(), 60u * 4096);
  EXPECT_DOUBLE_EQ(s.dedup_ratio(), 2.5);
}

}  // namespace
}  // namespace prebake::criu
