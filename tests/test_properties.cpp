// Property-style parameterized suites: invariants that must hold across
// sweeps of process shapes, function sizes and snapshot policies.
#include <gtest/gtest.h>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/scenario.hpp"
#include "rt/classfile.hpp"
#include "stats/descriptive.hpp"

namespace prebake {
namespace {

// ---------------------------------------------------------------------------
// Dump/restore round trip over process shapes.
struct ProcShape {
  int extra_threads;
  int vmas;
  std::uint64_t pages_per_vma;
  criu::PayloadMode mode;
};

class RoundTrip : public ::testing::TestWithParam<ProcShape> {};

TEST_P(RoundTrip, RestoredProcessMatchesOriginal) {
  const ProcShape shape = GetParam();
  sim::Simulation sim;
  os::Kernel kernel{sim};
  kernel.fs().create("/bin/app", 1024 * 1024);

  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  for (int t = 0; t < shape.extra_threads; ++t)
    kernel.process(pid).spawn_thread(pid + 100 + t);
  for (int v = 0; v < shape.vmas; ++v) {
    const os::VmaId id = kernel.mmap(
        pid, shape.pages_per_vma * os::kPageSize, os::Prot::kReadWrite,
        os::VmaKind::kAnon, "vma" + std::to_string(v),
        std::make_shared<os::PatternSource>(1000 + static_cast<std::uint64_t>(v)),
        false);
    // Fault a deterministic, non-trivial subset.
    kernel.fault_in(pid, id, 0, std::max<std::uint64_t>(1, shape.pages_per_vma / 2));
  }

  const std::uint64_t resident = kernel.process(pid).mm().resident_bytes();
  const std::size_t threads = kernel.process(pid).threads().size();
  const std::size_t vmas = kernel.process(pid).mm().vmas().size();

  criu::DumpOptions dopts;
  dopts.payload_mode = shape.mode;
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  criu::RestoreOptions ropts;
  ropts.verify_pages = true;  // digests must match the regenerated contents
  const criu::RestoreResult restored =
      criu::Restorer{kernel}.restore(dump.images, ropts);

  const os::Process& clone = kernel.process(restored.pid);
  EXPECT_EQ(clone.mm().resident_bytes(), resident);
  EXPECT_EQ(clone.threads().size(), threads);
  EXPECT_EQ(clone.mm().vmas().size(), vmas);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTrip,
    ::testing::Values(ProcShape{0, 1, 1, criu::PayloadMode::kDigest},
                      ProcShape{0, 1, 64, criu::PayloadMode::kDigest},
                      ProcShape{2, 3, 16, criu::PayloadMode::kDigest},
                      ProcShape{5, 8, 32, criu::PayloadMode::kDigest},
                      ProcShape{1, 2, 128, criu::PayloadMode::kDigest},
                      ProcShape{0, 1, 8, criu::PayloadMode::kFull},
                      ProcShape{3, 4, 4, criu::PayloadMode::kFull},
                      ProcShape{7, 16, 2, criu::PayloadMode::kDigest}));

// ---------------------------------------------------------------------------
// Image corruption: flipping any byte of any image file must be detected.
class CorruptionDetection : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionDetection, FlippedByteIsCaught) {
  sim::Simulation sim;
  os::Kernel kernel{sim};
  kernel.fs().create("/bin/app", 1024 * 1024);
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  criu::DumpResult dump = criu::Dumper{kernel}.dump(pid);

  // Pick a file and byte position deterministically from the parameter.
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const auto names = dump.images.names();
  const auto& name = names[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(names.size()) - 1))];
  criu::ImageDir corrupted;
  for (const auto& [n, f] : dump.images.files()) {
    auto bytes = f.bytes;
    if (n == name) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= 0x5A;
    }
    corrupted.put(n, std::move(bytes), f.nominal_size);
  }
  EXPECT_THROW(corrupted.validate(), std::runtime_error) << name;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionDetection, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Start-up invariants across synthetic function sizes (MB of request code).
class SizeSweep : public ::testing::TestWithParam<int> {
 protected:
  rt::FunctionSpec sized_spec(int mb) const {
    rt::FunctionSpec spec = exp::synthetic_spec(exp::SynthSize::kSmall);
    spec.name = "sweep-" + std::to_string(mb);
    spec.handler_id = "synthetic:" + std::to_string(mb * 40);
    spec.request_classes = rt::synth_class_set(
        "sweep", mb * 40, static_cast<std::uint64_t>(mb) * 1'000'000,
        static_cast<std::uint64_t>(mb));
    return spec;
  }

  double median_ms(const rt::FunctionSpec& spec, exp::Technique tech) const {
    exp::ScenarioConfig cfg;
    cfg.spec = spec;
    cfg.technique = tech;
    cfg.repetitions = 8;
    cfg.measure_first_response = true;
    cfg.seed = 5;
    return stats::median(exp::run_startup_scenario(cfg).startup_ms);
  }
};

TEST_P(SizeSweep, PrebakeAlwaysWins) {
  const rt::FunctionSpec spec = sized_spec(GetParam());
  const double vanilla = median_ms(spec, exp::Technique::kVanilla);
  const double nowarm = median_ms(spec, exp::Technique::kPrebakeNoWarmup);
  const double warm = median_ms(spec, exp::Technique::kPrebakeWarmup);
  EXPECT_LT(nowarm, vanilla);
  EXPECT_LT(warm, nowarm);
}

TEST_P(SizeSweep, WarmupSpeedupGrowsWithSize) {
  // The paper's central scaling claim: the PB-Warmup speed-up grows with
  // function size because snapshot loading is less size-sensitive than
  // loading + JIT-compiling source classes.
  const int mb = GetParam();
  const rt::FunctionSpec small = sized_spec(mb);
  const rt::FunctionSpec bigger = sized_spec(mb * 2);
  const double ratio_small = median_ms(small, exp::Technique::kVanilla) /
                             median_ms(small, exp::Technique::kPrebakeWarmup);
  const double ratio_big = median_ms(bigger, exp::Technique::kVanilla) /
                           median_ms(bigger, exp::Technique::kPrebakeWarmup);
  EXPECT_GT(ratio_big, ratio_small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Snapshot size invariants across warm-up depth.
class WarmupDepth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WarmupDepth, SnapshotSizeMonotoneInWarmupAndStartupStable) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::synthetic_spec(exp::SynthSize::kSmall);
  cfg.technique = exp::Technique::kPrebakeWarmup;
  cfg.repetitions = 5;
  cfg.measure_first_response = true;
  cfg.warmup_requests = GetParam();
  const auto result = exp::run_startup_scenario(cfg);

  exp::ScenarioConfig cold = cfg;
  cold.technique = exp::Technique::kPrebakeNoWarmup;
  const auto cold_result = exp::run_startup_scenario(cold);

  // Any warmed snapshot holds the JITed code and dwarfs the cold one...
  EXPECT_GT(result.snapshot_nominal_bytes, cold_result.snapshot_nominal_bytes);
  // ...and extra warm-up requests beyond the first change little: the state
  // is already compiled (the paper warms with exactly one request).
  EXPECT_LT(stats::median(result.startup_ms),
            stats::median(cold_result.startup_ms));
}

INSTANTIATE_TEST_SUITE_P(Depths, WarmupDepth, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Determinism: identical seeds give identical experiment outcomes.
class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, ScenarioIsPureFunctionOfSeed) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::noop_spec();
  cfg.technique = exp::Technique::kPrebakeNoWarmup;
  cfg.repetitions = 6;
  cfg.seed = GetParam();
  const auto a = exp::run_startup_scenario(cfg);
  const auto b = exp::run_startup_scenario(cfg);
  ASSERT_EQ(a.startup_ms.size(), b.startup_ms.size());
  for (std::size_t i = 0; i < a.startup_ms.size(); ++i)
    EXPECT_DOUBLE_EQ(a.startup_ms[i], b.startup_ms[i]);
  EXPECT_EQ(a.snapshot_nominal_bytes, b.snapshot_nominal_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull));

// ---------------------------------------------------------------------------
// Restore I/O contention: restore latency is non-decreasing in concurrency.
class Contention : public ::testing::TestWithParam<double> {};

TEST_P(Contention, RestoreMonotoneInContention) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 1024 * 1024);
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId id = kernel.mmap(pid, 256 * os::kPageSize,
                                   os::Prot::kReadWrite, os::VmaKind::kAnon,
                                   "heap", std::make_shared<os::PatternSource>(1),
                                   false);
  kernel.fault_in_all(pid, id);
  criu::DumpOptions dopts;
  dopts.fs_prefix = "/snap/";
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  auto restore_ms = [&](double contention) {
    criu::RestoreOptions opts;
    opts.fs_prefix = "/snap/";
    opts.io_contention = contention;
    const sim::TimePoint t0 = sim.now();
    criu::Restorer{kernel}.restore(dump.images, opts);
    return (sim.now() - t0).to_millis();
  };
  const double baseline = restore_ms(1.0);
  EXPECT_GE(restore_ms(GetParam()), baseline);
}

INSTANTIATE_TEST_SUITE_P(Levels, Contention,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0));

}  // namespace
}  // namespace prebake
