#include "faas/workflow.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"

namespace prebake::faas {
namespace {

constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest()
      : kernel_{sim_, exp::testbed_costs()},
        platform_{kernel_, exp::testbed_runtime(), PlatformConfig{}, 31},
        engine_{platform_} {
    platform_.resources().add_node("n", 8 * GiB);
    platform_.deploy(exp::markdown_spec(), StartMode::kVanilla);
    platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  }

  funcs::Response run_sync(const std::string& wf, funcs::Request req,
                           WorkflowMetrics* out_metrics = nullptr) {
    funcs::Response out;
    bool done = false;
    engine_.run(wf, std::move(req),
                [&](const funcs::Response& res, const WorkflowMetrics& m) {
                  out = res;
                  if (out_metrics != nullptr) *out_metrics = m;
                  done = true;
                });
    while (!done && sim_.step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  Platform platform_;
  WorkflowEngine engine_;
};

TEST_F(WorkflowTest, RegisterValidatesStages) {
  EXPECT_THROW(engine_.register_workflow({"empty", {}}), std::invalid_argument);
  EXPECT_THROW(engine_.register_workflow({"bad", {"ghost"}}), std::out_of_range);
  engine_.register_workflow({"ok", {"noop"}});
  EXPECT_TRUE(engine_.has("ok"));
  EXPECT_FALSE(engine_.has("nope"));
  EXPECT_THROW(engine_.get("nope"), std::out_of_range);
}

TEST_F(WorkflowTest, SingleStageBehavesLikeInvoke) {
  engine_.register_workflow({"render", {"markdown-render"}});
  WorkflowMetrics metrics;
  const funcs::Response res =
      run_sync("render", funcs::sample_request("markdown"), &metrics);
  EXPECT_TRUE(res.ok());
  EXPECT_NE(res.body.find("<h1>"), std::string::npos);
  EXPECT_EQ(metrics.stages.size(), 1u);
  EXPECT_EQ(metrics.cold_starts, 1u);
}

TEST_F(WorkflowTest, DataFlowsBetweenStages) {
  engine_.register_workflow({"render-then-ack", {"markdown-render", "noop"}});
  WorkflowMetrics metrics;
  const funcs::Response res =
      run_sync("render-then-ack", funcs::sample_request("markdown"), &metrics);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.body, "OK");  // final stage is the NOOP ack
  ASSERT_EQ(metrics.stages.size(), 2u);
  EXPECT_EQ(metrics.stages[0].function, "markdown-render");
  EXPECT_EQ(metrics.stages[1].function, "noop");
  EXPECT_GE(metrics.total.nanos_count(),
            (metrics.stages[0].total + metrics.stages[1].total).nanos_count());
}

TEST_F(WorkflowTest, FailureAbortsChain) {
  engine_.register_workflow({"fail-fast", {"markdown-render", "noop"}});
  WorkflowMetrics metrics;
  funcs::Request empty;  // markdown rejects an empty body with 400
  const funcs::Response res = run_sync("fail-fast", empty, &metrics);
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(metrics.stages.size(), 1u);  // noop never ran
}

TEST_F(WorkflowTest, ColdStartsCompoundAcrossStages) {
  engine_.register_workflow({"chain", {"markdown-render", "noop"}});
  WorkflowMetrics cold;
  run_sync("chain", funcs::sample_request("markdown"), &cold);
  EXPECT_EQ(cold.cold_starts, 2u);  // both stages started replicas

  WorkflowMetrics warm;
  run_sync("chain", funcs::sample_request("markdown"), &warm);
  EXPECT_EQ(warm.cold_starts, 0u);
  EXPECT_LT(warm.total.to_millis(), cold.total.to_millis() / 5);
}

TEST_F(WorkflowTest, SameFunctionTwiceReusesTheReplica) {
  engine_.register_workflow({"double-render", {"markdown-render", "markdown-render"}});
  WorkflowMetrics metrics;
  const funcs::Response res =
      run_sync("double-render", funcs::sample_request("markdown"), &metrics);
  EXPECT_TRUE(res.ok());
  // The replica is released before the chained invoke, so one replica
  // serves both stages: exactly one cold start.
  EXPECT_EQ(metrics.cold_starts, 1u);
  EXPECT_EQ(platform_.replica_count("markdown-render"), 1u);
}

TEST_F(WorkflowTest, PrebakedStagesCutPipelineColdStart) {
  rt::FunctionSpec pb = exp::markdown_spec();
  pb.name = "md-prebaked";
  platform_.deploy(pb, StartMode::kPrebaked, core::SnapshotPolicy::warmup(1));
  rt::FunctionSpec pb2 = exp::noop_spec();
  pb2.name = "noop-prebaked";
  platform_.deploy(pb2, StartMode::kPrebaked, core::SnapshotPolicy::warmup(1));

  engine_.register_workflow({"vanilla-chain", {"markdown-render", "noop"}});
  engine_.register_workflow({"prebaked-chain", {"md-prebaked", "noop-prebaked"}});

  WorkflowMetrics vanilla;
  run_sync("vanilla-chain", funcs::sample_request("markdown"), &vanilla);
  WorkflowMetrics prebaked;
  run_sync("prebaked-chain", funcs::sample_request("markdown"), &prebaked);

  EXPECT_EQ(vanilla.cold_starts, 2u);
  EXPECT_EQ(prebaked.cold_starts, 2u);
  EXPECT_LT(prebaked.total.to_millis(), vanilla.total.to_millis() * 0.75);
}

}  // namespace
}  // namespace prebake::faas
