#include "faas/resource_manager.hpp"

#include <gtest/gtest.h>

namespace prebake::faas {
namespace {

constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

TEST(ResourceManager, AddAndQueryNodes) {
  ResourceManager rm;
  const NodeId a = rm.add_node("n1", 8 * GiB);
  EXPECT_EQ(rm.node(a).name(), "n1");
  EXPECT_EQ(rm.node(a).mem_capacity(), 8 * GiB);
  EXPECT_EQ(rm.total_mem_capacity(), 8 * GiB);
  EXPECT_EQ(rm.total_mem_used(), 0u);
}

TEST(ResourceManager, UnknownNodeThrows) {
  ResourceManager rm;
  EXPECT_THROW(rm.node(42), std::out_of_range);
}

TEST(ResourceManager, PlaceUsesCapacity) {
  ResourceManager rm;
  const NodeId a = rm.add_node("n1", 1 * GiB);
  const auto placed = rm.place(256 * 1024 * 1024);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, a);
  EXPECT_EQ(rm.node(a).replicas(), 1u);
  EXPECT_EQ(rm.node(a).mem_free(), 768ull * 1024 * 1024);
}

TEST(ResourceManager, PlaceFailsWhenFull) {
  ResourceManager rm;
  rm.add_node("n1", 100);
  EXPECT_FALSE(rm.place(101).has_value());
  EXPECT_TRUE(rm.place(100).has_value());
  EXPECT_FALSE(rm.place(1).has_value());
}

TEST(ResourceManager, WorstFitSpreadsLoad) {
  ResourceManager rm;
  const NodeId a = rm.add_node("n1", 10 * GiB);
  const NodeId b = rm.add_node("n2", 10 * GiB);
  const auto p1 = rm.place(1 * GiB);
  const auto p2 = rm.place(1 * GiB);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(*p1, *p2);  // second replica goes to the emptier node
  EXPECT_EQ(rm.node(a).replicas() + rm.node(b).replicas(), 2u);
}

TEST(ResourceManager, ReleaseReturnsCapacity) {
  ResourceManager rm;
  const NodeId a = rm.add_node("n1", 1 * GiB);
  rm.place(512 * 1024 * 1024);
  rm.release(a, 512 * 1024 * 1024);
  EXPECT_EQ(rm.node(a).mem_used(), 0u);
  EXPECT_EQ(rm.node(a).replicas(), 0u);
}

TEST(ResourceManager, ReleaseUnderflowThrows) {
  ResourceManager rm;
  const NodeId a = rm.add_node("n1", 1 * GiB);
  EXPECT_THROW(rm.release(a, 1), std::logic_error);
}

TEST(ResourceManager, TotalsAcrossNodes) {
  ResourceManager rm;
  rm.add_node("n1", 4 * GiB);
  rm.add_node("n2", 8 * GiB);
  rm.place(1 * GiB);
  rm.place(2 * GiB);
  EXPECT_EQ(rm.total_mem_capacity(), 12 * GiB);
  EXPECT_EQ(rm.total_mem_used(), 3 * GiB);
}

}  // namespace
}  // namespace prebake::faas
