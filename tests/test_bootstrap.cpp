#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "stats/descriptive.hpp"

namespace prebake::stats {
namespace {

std::vector<double> noisy_sample(double center, int n, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = rng.lognormal_median(center, 0.05);
  return xs;
}

TEST(Bootstrap, MedianCiContainsSampleMedian) {
  const auto xs = noisy_sample(100.0, 200, 3);
  const Interval iv = bootstrap_median_ci(xs);
  EXPECT_LE(iv.lo, iv.point);
  EXPECT_GE(iv.hi, iv.point);
  EXPECT_DOUBLE_EQ(iv.point, median(xs));
}

TEST(Bootstrap, CiIsNarrowForLargeTightSample) {
  const auto xs = noisy_sample(100.0, 200, 4);
  const Interval iv = bootstrap_median_ci(xs);
  EXPECT_LT(iv.width(), 3.0);
  EXPECT_GT(iv.width(), 0.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  const auto xs = noisy_sample(50.0, 100, 5);
  const Interval a = bootstrap_median_ci(xs, 0.95, 1000, 777);
  const Interval b = bootstrap_median_ci(xs, 0.95, 1000, 777);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, DifferentSeedsSlightlyDiffer) {
  const auto xs = noisy_sample(50.0, 100, 5);
  const Interval a = bootstrap_median_ci(xs, 0.95, 500, 1);
  const Interval b = bootstrap_median_ci(xs, 0.95, 500, 2);
  EXPECT_NE(a.lo, b.lo);
  EXPECT_NEAR(a.lo, b.lo, 1.0);
}

TEST(Bootstrap, HigherConfidenceIsWider) {
  const auto xs = noisy_sample(100.0, 80, 6);
  const Interval narrow = bootstrap_median_ci(xs, 0.80);
  const Interval wide = bootstrap_median_ci(xs, 0.99);
  EXPECT_GE(wide.width(), narrow.width());
}

TEST(Bootstrap, ArbitraryStatistic) {
  const auto xs = noisy_sample(10.0, 100, 7);
  const Interval iv = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); });
  EXPECT_NEAR(iv.point, mean(xs), 1e-12);
  EXPECT_LT(iv.lo, iv.hi);
}

TEST(Bootstrap, IntervalHelpers) {
  const Interval a{1.0, 3.0, 2.0};
  const Interval b{2.5, 4.0, 3.0};
  const Interval c{3.5, 5.0, 4.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(2.0));
  EXPECT_FALSE(a.contains(3.5));
  EXPECT_DOUBLE_EQ(a.width(), 2.0);
}

TEST(Bootstrap, ValidatesArguments) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(bootstrap_median_ci(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci(xs, 1.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci(xs, 0.95, 1), std::invalid_argument);
}

TEST(Bootstrap, ConstantSampleDegenerateCi) {
  const std::vector<double> xs(50, 42.0);
  const Interval iv = bootstrap_median_ci(xs);
  EXPECT_DOUBLE_EQ(iv.lo, 42.0);
  EXPECT_DOUBLE_EQ(iv.hi, 42.0);
}

}  // namespace
}  // namespace prebake::stats
