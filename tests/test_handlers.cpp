#include "funcs/handlers.hpp"

#include <gtest/gtest.h>

namespace prebake::funcs {
namespace {

TEST(NoopHandler, AcksEveryRequest) {
  NoopHandler h;
  const Response res = h.handle(Request{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.body, "OK");
}

TEST(MarkdownHandler, RendersBody) {
  MarkdownHandler h;
  Request req;
  req.body = "# Hi\n\ntext";
  const Response res = h.handle(req);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.headers.at("Content-Type"), "text/html");
  EXPECT_NE(res.body.find("<h1>Hi</h1>"), std::string::npos);
}

TEST(MarkdownHandler, RejectsEmptyBody) {
  MarkdownHandler h;
  const Response res = h.handle(Request{});
  EXPECT_EQ(res.status, 400);
}

TEST(ImageResizer, ScalesToTenPercent) {
  SharedAssets assets;
  ImageResizerHandler h{assets.image(200, 100, 1), 0.10};
  const Response res = h.handle(Request{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.headers.at("X-Original-Size"), "200x100");
  EXPECT_EQ(res.headers.at("X-Scaled-Size"), "20x10");
  // Body is a decodable PPM of the scaled size.
  const Image out = decode_ppm(
      std::vector<std::uint8_t>(res.body.begin(), res.body.end()));
  EXPECT_EQ(out.width, 20u);
  EXPECT_EQ(out.height, 10u);
}

TEST(ImageResizer, RejectsBadConstruction) {
  SharedAssets assets;
  EXPECT_THROW(ImageResizerHandler(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(ImageResizerHandler(assets.image(8, 8, 1), 0.0),
               std::invalid_argument);
}

TEST(SyntheticHandler, EchoesConfiguration) {
  SyntheticHandler h{374};
  Request req;
  req.body = "xyz";
  const Response res = h.handle(req);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.body, "classes=374;echo=3");
}

TEST(SharedAssets, CachesImages) {
  SharedAssets assets;
  const auto a = assets.image(32, 32, 5);
  const auto b = assets.image(32, 32, 5);
  EXPECT_EQ(a.get(), b.get());
  const auto c = assets.image(32, 32, 6);
  EXPECT_NE(a.get(), c.get());
}

TEST(MakeHandler, ResolvesAllIds) {
  SharedAssets assets;
  EXPECT_NE(make_handler("noop", assets), nullptr);
  EXPECT_NE(make_handler("markdown", assets), nullptr);
  EXPECT_NE(make_handler("synthetic:42", assets), nullptr);
}

TEST(MakeHandler, UnknownIdThrows) {
  SharedAssets assets;
  EXPECT_THROW(make_handler("bogus", assets), std::invalid_argument);
}

TEST(SampleRequest, MarkdownCarriesDocument) {
  const Request req = sample_request("markdown");
  EXPECT_GT(req.body.size(), 10'000u);
  EXPECT_NE(req.body.find("# OpenPiton"), std::string::npos);
}

TEST(SampleRequest, OthersAreEmptyBody) {
  EXPECT_TRUE(sample_request("noop").body.empty());
  EXPECT_TRUE(sample_request("synthetic:374").body.empty());
}

TEST(MakeHandler, SyntheticRoundTripsThroughRegistry) {
  SharedAssets assets;
  auto h = make_handler("synthetic:1574", assets);
  const Response res = h->handle(sample_request("synthetic:1574"));
  EXPECT_EQ(res.body, "classes=1574;echo=0");
}

}  // namespace
}  // namespace prebake::funcs
