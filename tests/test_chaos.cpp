// Fault injection and the resilient restore path. Every suite here is
// prefixed "Chaos" so `ctest -L chaos` / `--gtest_filter=Chaos*` runs the
// whole layer in one pass.
#include <gtest/gtest.h>

#include "core/prebaker.hpp"
#include "core/startup.hpp"
#include "exp/calibration.hpp"
#include "exp/chaos.hpp"
#include "exp/cluster.hpp"
#include "faas/builder.hpp"
#include "faas/platform.hpp"
#include "os/faults.hpp"
#include "util/thread_pool.hpp"

namespace prebake {
namespace {

// --- Injector units --------------------------------------------------------

TEST(ChaosInjector, DefaultPlanIsDisabledNoOp) {
  faults::Injector inj;
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(inj.fires(faults::FaultSite::kImageCorruption));
  // Disabled means zero work: no draws consumed, no trace, jitter pinned 0.
  EXPECT_EQ(inj.draws(faults::FaultSite::kImageCorruption), 0u);
  EXPECT_EQ(inj.total_fired(), 0u);
  EXPECT_TRUE(inj.trace().empty());
  EXPECT_EQ(inj.jitter(), 0.0);
}

TEST(ChaosInjector, RateEndpointsAreExact) {
  os::FaultPlan plan;
  plan.image_corruption_rate = 1.0;
  plan.registry_stall_rate = 0.0;
  faults::Injector inj;
  inj.configure(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.fires(faults::FaultSite::kImageCorruption));
    EXPECT_FALSE(inj.fires(faults::FaultSite::kRegistryStall));
  }
  EXPECT_EQ(inj.fired(faults::FaultSite::kImageCorruption), 50u);
  EXPECT_EQ(inj.fired(faults::FaultSite::kRegistryStall), 0u);
}

TEST(ChaosInjector, SameSeedSamePlanSameTrace) {
  os::FaultPlan plan;
  plan.seed = 7;
  plan.image_corruption_rate = 0.3;
  plan.image_read_error_rate = 0.2;
  auto drive = [&plan] {
    faults::Injector inj;
    inj.configure(plan);
    for (int i = 0; i < 500; ++i) {
      inj.fires(faults::FaultSite::kImageCorruption);
      if (i % 3 == 0) inj.fires(faults::FaultSite::kImageReadError);
    }
    return inj.trace();
  };
  const auto a = drive();
  const auto b = drive();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ChaosInjector, SiteStreamsAreIndependent) {
  // Extra draws at one site must not perturb another site's outcomes: each
  // site's decisions depend only on (seed, site, own draw index).
  os::FaultPlan plan;
  plan.image_corruption_rate = 0.5;
  plan.registry_stall_rate = 0.5;

  faults::Injector plain;
  plain.configure(plan);
  std::vector<bool> baseline;
  for (int i = 0; i < 200; ++i)
    baseline.push_back(plain.fires(faults::FaultSite::kRegistryStall));

  faults::Injector noisy;
  noisy.configure(plan);
  std::vector<bool> interleaved;
  for (int i = 0; i < 200; ++i) {
    noisy.fires(faults::FaultSite::kImageCorruption);  // extra traffic
    noisy.fires(faults::FaultSite::kImageCorruption);
    interleaved.push_back(noisy.fires(faults::FaultSite::kRegistryStall));
  }
  EXPECT_EQ(baseline, interleaved);
}

TEST(ChaosInjector, EmpiricalRateTracksPlan) {
  os::FaultPlan plan;
  plan.image_corruption_rate = 0.1;
  faults::Injector inj;
  inj.configure(plan);
  for (int i = 0; i < 20000; ++i)
    inj.fires(faults::FaultSite::kImageCorruption);
  const double hit = static_cast<double>(
                         inj.fired(faults::FaultSite::kImageCorruption)) /
                     20000.0;
  EXPECT_NEAR(hit, 0.1, 0.01);
}

TEST(ChaosInjector, ResetKeepsPlanDropsCounters) {
  os::FaultPlan plan;
  plan.image_corruption_rate = 1.0;
  faults::Injector inj;
  inj.configure(plan);
  inj.fires(faults::FaultSite::kImageCorruption);
  inj.reset();
  EXPECT_TRUE(inj.enabled());
  EXPECT_EQ(inj.total_fired(), 0u);
  EXPECT_TRUE(inj.trace().empty());
  // Post-reset the draw streams restart from index 0: same decisions again.
  EXPECT_TRUE(inj.fires(faults::FaultSite::kImageCorruption));
  EXPECT_EQ(inj.trace().front().draw, 0u);
}

// --- StartupService: retry / deadline / fallback ---------------------------

class ChaosStartup : public ::testing::Test {
 protected:
  ChaosStartup()
      : kernel_{sim_, exp::testbed_costs()},
        startup_{kernel_, exp::testbed_runtime(), assets_},
        builder_{kernel_, startup_} {}

  core::BakedSnapshot bake(const rt::FunctionSpec& spec) {
    core::PrebakeConfig cfg;
    cfg.policy = core::SnapshotPolicy::no_warmup();
    faas::BuildResult built = builder_.build(spec, cfg, sim::Rng{2});
    baked_spec_ = built.spec;
    return std::move(*built.snapshot);
  }

  static criu::ImageDir drop_file(const criu::ImageDir& src,
                                  const std::string& name) {
    criu::ImageDir out;
    for (const std::string& n : src.names()) {
      if (n == name) continue;
      const auto& f = src.get(n);
      out.put(n, f.bytes, f.nominal_size);
    }
    return out;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
  core::StartupService startup_;
  faas::FunctionBuilder builder_;
  rt::FunctionSpec baked_spec_;
};

TEST_F(ChaosStartup, MissingImageFileThrowsTypedError) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  const criu::ImageDir broken = drop_file(snap.images, "files.img");

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  try {
    startup_.start_prebaked(baked_spec_, broken, opts, sim::Rng{4});
    FAIL() << "start_prebaked accepted a snapshot without files.img";
  } catch (const criu::RestoreError& e) {
    EXPECT_EQ(e.kind(), criu::RestoreErrorKind::kMissingImage);
  }
}

TEST_F(ChaosStartup, RetriesAbsorbTransientReadErrors) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  os::FaultPlan plan;
  plan.image_read_error_rate = 0.3;
  kernel_.faults().configure(plan);

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  opts.policy.max_attempts = 50;
  core::ReplicaProcess rep =
      startup_.start_prebaked(baked_spec_, snap.images, opts, sim::Rng{4});

  EXPECT_NE(rep.pid, os::kNoPid);
  EXPECT_FALSE(rep.breakdown.fell_back_to_vanilla);
  ASSERT_GT(kernel_.faults().total_fired(), 0u);  // faults did hit this start
  EXPECT_GT(rep.breakdown.restore_attempts, 1u);
  EXPECT_GT(rep.breakdown.fault_time.to_millis(), 0.0);
}

TEST_F(ChaosStartup, ExhaustedRetriesFallBackToVanilla) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  os::FaultPlan plan;
  plan.image_corruption_rate = 1.0;  // every attempt sees a corrupt record
  kernel_.faults().configure(plan);

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  opts.policy.max_attempts = 3;
  opts.policy.fallback_to_vanilla = true;
  core::ReplicaProcess rep =
      startup_.start_prebaked(baked_spec_, snap.images, opts, sim::Rng{4});

  EXPECT_TRUE(rep.breakdown.fell_back_to_vanilla);
  EXPECT_EQ(rep.breakdown.restore_attempts, 3u);
  EXPECT_GT(rep.breakdown.fault_time.to_millis(), 0.0);
  // The fallback replica is a real Vanilla start that can serve.
  EXPECT_NE(rep.pid, os::kNoPid);
  EXPECT_GT(rep.breakdown.rts_time.to_millis(), 0.0);
  // Total covers the whole start including the wasted restore attempts.
  EXPECT_GE(rep.breakdown.total.to_millis(),
            rep.breakdown.fault_time.to_millis());
}

TEST_F(ChaosStartup, WithoutFallbackTheTypedErrorPropagates) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  os::FaultPlan plan;
  plan.image_corruption_rate = 1.0;
  kernel_.faults().configure(plan);

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  opts.policy.max_attempts = 2;
  try {
    startup_.start_prebaked(baked_spec_, snap.images, opts, sim::Rng{4});
    FAIL() << "restore of always-corrupt images succeeded";
  } catch (const criu::RestoreError& e) {
    EXPECT_EQ(e.kind(), criu::RestoreErrorKind::kCorruptImage);
  }
}

TEST_F(ChaosStartup, DeadlineShortCircuitsRetryBudget) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  os::FaultPlan plan;
  plan.image_corruption_rate = 1.0;
  kernel_.faults().configure(plan);

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  opts.policy.max_attempts = 100;
  opts.policy.retry_backoff = sim::Duration::millis(5);
  opts.policy.deadline = sim::Duration::millis(1);
  opts.policy.fallback_to_vanilla = true;
  core::ReplicaProcess rep =
      startup_.start_prebaked(baked_spec_, snap.images, opts, sim::Rng{4});

  EXPECT_TRUE(rep.breakdown.fell_back_to_vanilla);
  // The deadline cut the 100-attempt budget after a couple of tries.
  EXPECT_LT(rep.breakdown.restore_attempts, 5u);
}

TEST_F(ChaosStartup, NonTransientFaultSkipsRetries) {
  const core::BakedSnapshot snap = bake(exp::noop_spec());
  // Truncate the persisted payload: deterministically unrecoverable, so
  // retrying is pointless and the policy must short-circuit.
  const std::string path = snap.fs_prefix + "pages-1.img";
  kernel_.fs().truncate(path, kernel_.fs().size_of(path) / 2);

  core::PrebakedStartOptions opts;
  opts.restore.fs_prefix = snap.fs_prefix;
  opts.policy.max_attempts = 10;
  opts.policy.fallback_to_vanilla = true;
  core::ReplicaProcess rep =
      startup_.start_prebaked(baked_spec_, snap.images, opts, sim::Rng{4});
  EXPECT_TRUE(rep.breakdown.fell_back_to_vanilla);
  EXPECT_EQ(rep.breakdown.restore_attempts, 1u);  // no futile retries
}

// --- Platform: fail_node retry accounting (satellite) ----------------------

TEST(ChaosPlatform, RequeuedRequestCountsRetryNotQueueWait) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::Platform platform{kernel, exp::testbed_runtime(),
                          faas::PlatformConfig{}, 99};
  platform.resources().add_node("a", 8ull << 30);
  platform.resources().add_node("b", 8ull << 30);
  platform.deploy(exp::image_resizer_spec(), faas::StartMode::kVanilla);

  faas::RequestMetrics metrics;
  bool done = false;
  platform.invoke(
      "image-resizer",
      funcs::sample_request(
          platform.registry().get("image-resizer").spec.handler_id),
      [&](const funcs::Response& res, const faas::RequestMetrics& m) {
        EXPECT_TRUE(res.ok());
        metrics = m;
        done = true;
      });

  // Fail the serving node once the request is actually being served.
  struct Poller {
    sim::Simulation* sim;
    faas::Platform* platform;
    sim::TimePoint* failed_at;
    bool failed = false;
    void operator()() {
      if (failed) return;
      const bool busy = platform->replica_count("image-resizer") >
                        platform->idle_replica_count("image-resizer") +
                            platform->starting_replica_count("image-resizer");
      if (busy) {
        for (const faas::WorkerNode& n : platform->resources().nodes())
          if (n.replicas() > 0) {
            failed = true;
            *failed_at = sim->now();
            platform->fail_node(n.id());
            return;
          }
      }
      sim->schedule_in(sim::Duration::millis(1), *this);
    }
  };
  sim::TimePoint failed_at;
  sim.schedule_in(sim::Duration::millis(1),
                  Poller{&sim, &platform, &failed_at});
  while (!done && sim.step()) {
  }
  ASSERT_TRUE(done);

  // The requeue is accounted as a retry...
  EXPECT_EQ(metrics.retries, 1u);
  EXPECT_EQ(platform.stats().requests_requeued, 1u);
  // ...and queueing delay restarts at the failure, instead of inheriting
  // the doomed first attempt's wait (the bug this satellite fixes): the
  // recorded wait fits between the node failure and the response.
  EXPECT_LE(metrics.queue_wait.to_millis(),
            (sim.now() - failed_at).to_millis());
  ASSERT_EQ(platform.request_log().size(), 1u);
  EXPECT_EQ(platform.request_log()[0].retries, 1u);
}

// --- Scenario level --------------------------------------------------------

exp::ChaosScenarioConfig short_chaos(double corruption) {
  exp::ChaosScenarioConfig cfg;
  cfg.duration = sim::Duration::seconds(120);
  cfg.faults.image_corruption_rate = corruption;
  cfg.faults.image_read_error_rate = corruption / 2;
  return cfg;
}

TEST(ChaosScenario, ZeroPlanMatchesClusterScenarioExactly) {
  // With an all-zero fault plan the chaos harness must reproduce the plain
  // cluster scenario bit-for-bit: the injector hooks and resilience policy
  // are free when nothing fires.
  exp::ChaosScenarioConfig chaos;
  chaos.duration = sim::Duration::seconds(120);
  const exp::ChaosScenarioResult c = exp::run_chaos_scenario(chaos);

  exp::ClusterScenarioConfig plain;
  plain.policy = faas::PlacementPolicy::kSnapshotLocality;
  plain.duration = sim::Duration::seconds(120);
  const exp::ClusterScenarioResult p = exp::run_cluster_scenario(plain);

  EXPECT_EQ(c.faults_injected, 0u);
  EXPECT_TRUE(c.fault_trace.empty());
  EXPECT_EQ(c.restore_retries, 0u);
  EXPECT_EQ(c.restore_fallbacks, 0u);

  EXPECT_EQ(c.requests, p.requests);
  EXPECT_EQ(c.responses_ok, p.responses_ok);
  EXPECT_EQ(c.cold_starts, p.cold_starts);
  EXPECT_EQ(c.replicas_started, p.replicas_started);
  EXPECT_EQ(c.total_p50_ms, p.total_p50_ms);
  EXPECT_EQ(c.total_p95_ms, p.total_p95_ms);
  EXPECT_EQ(c.total_p99_ms, p.total_p99_ms);
}

TEST(ChaosScenario, FaultTraceIsReproducible) {
  const exp::ChaosScenarioResult a = exp::run_chaos_scenario(short_chaos(0.05));
  const exp::ChaosScenarioResult b = exp::run_chaos_scenario(short_chaos(0.05));
  ASSERT_FALSE(a.fault_trace.empty());
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.responses_ok, b.responses_ok);
  EXPECT_EQ(a.restore_retries, b.restore_retries);
  EXPECT_EQ(a.total_p99_ms, b.total_p99_ms);
}

TEST(ChaosScenario, FaultTraceIdenticalAcrossThreadCounts) {
  // The acceptance criterion: same seed + same plan => identical fault
  // trace at any thread count. Three sweep cells run serially, then again
  // on three threads; each cell owns its simulation so only scheduling
  // differs.
  const double rates[] = {0.02, 0.05, 0.08};
  auto sweep = [&rates](int threads) {
    std::vector<exp::ChaosScenarioResult> out(3);
    util::parallel_for(
        3,
        [&](std::size_t i) {
          out[i] = exp::run_chaos_scenario(short_chaos(rates[i]));
        },
        threads);
    return out;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial[i].fault_trace, parallel[i].fault_trace) << "cell " << i;
    EXPECT_EQ(serial[i].responses_ok, parallel[i].responses_ok);
    EXPECT_EQ(serial[i].total_p99_ms, parallel[i].total_p99_ms);
  }
}

TEST(ChaosScenario, NoRequestLostAtFivePercentCorruption) {
  exp::ChaosScenarioConfig cfg = short_chaos(0.05);
  cfg.duration = sim::Duration::seconds(300);
  const exp::ChaosScenarioResult r = exp::run_chaos_scenario(cfg);
  ASSERT_GT(r.requests, 0u);
  EXPECT_EQ(r.answered, r.requests);       // nothing dropped on the floor
  EXPECT_EQ(r.responses_ok, r.requests);   // and everything actually served
  EXPECT_GT(r.faults_injected, 0u);        // under real fault pressure
  EXPECT_GT(r.restore_retries, 0u);
}

TEST(ChaosScenario, HeavyCorruptionTripsQuarantineAndRebake) {
  exp::ChaosScenarioConfig cfg = short_chaos(0.3);
  cfg.duration = sim::Duration::seconds(300);
  cfg.faults.truncated_write_rate = 0.2;
  const exp::ChaosScenarioResult r = exp::run_chaos_scenario(cfg);
  EXPECT_GE(r.snapshot_quarantines, 1u);
  EXPECT_GE(r.snapshot_rebakes, 1u);
  EXPECT_EQ(r.answered, r.requests);  // quarantine routes around, not away
  // A re-baked snapshot leaves the breaker closed again by run end, or the
  // health table still shows it quarantined mid-heal; either way the rows
  // exist for every function that ever failed.
  EXPECT_FALSE(r.snapshot_health.empty());
}

TEST(ChaosScenario, NodeCrashesAreRecoveredAndNothingIsLost) {
  // The crash draw is per replica start, so the rate must stay realistic:
  // with locality placement a whole queue's restarts land on one node, and
  // a high per-start rate crashes every batch faster than the cluster can
  // recover (the scenario's grace horizon would then report the backlog as
  // lost). At 5% the cluster sees several crashes yet loses nothing.
  exp::ChaosScenarioConfig cfg;
  cfg.duration = sim::Duration::seconds(300);
  cfg.faults.node_crash_rate = 0.05;
  cfg.node_recovery_delay = sim::Duration::seconds(10);
  const exp::ChaosScenarioResult r = exp::run_chaos_scenario(cfg);
  EXPECT_GE(r.node_crashes, 1u);
  EXPECT_GE(r.node_recoveries, 1u);
  EXPECT_EQ(r.answered, r.requests);
}

}  // namespace
}  // namespace prebake
