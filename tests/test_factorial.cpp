#include "stats/factorial.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace prebake::stats {
namespace {

TEST(Factorial, RecoversAdditiveModelExactly) {
  // y = 100 + 20*xa + 5*xb + 2*xa*xb with no noise.
  const std::vector<double> y00{100 - 20 - 5 + 2};
  const std::vector<double> y10{100 + 20 - 5 - 2};
  const std::vector<double> y01{100 - 20 + 5 - 2};
  const std::vector<double> y11{100 + 20 + 5 + 2};
  const Factorial2x2 res = factorial_2x2(y00, y10, y01, y11);
  EXPECT_NEAR(res.q0, 100.0, 1e-12);
  EXPECT_NEAR(res.qa, 20.0, 1e-12);
  EXPECT_NEAR(res.qb, 5.0, 1e-12);
  EXPECT_NEAR(res.qab, 2.0, 1e-12);
  EXPECT_NEAR(res.frac_error, 0.0, 1e-12);
}

TEST(Factorial, AllocationSumsToOne) {
  sim::Rng rng{5};
  auto cell = [&](double mean_value) {
    std::vector<double> xs(30);
    for (double& x : xs) x = rng.normal(mean_value, 2.0);
    return xs;
  };
  const Factorial2x2 res =
      factorial_2x2(cell(100), cell(140), cell(105), cell(150));
  EXPECT_NEAR(res.frac_a + res.frac_b + res.frac_ab + res.frac_error, 1.0,
              1e-9);
  // Factor A (the 40-45 unit swing) dominates.
  EXPECT_GT(res.frac_a, 0.8);
  EXPECT_GT(res.frac_error, 0.0);
}

TEST(Factorial, PureNoiseIsAllError) {
  sim::Rng rng{6};
  auto cell = [&] {
    std::vector<double> xs(50);
    for (double& x : xs) x = rng.normal(10.0, 1.0);
    return xs;
  };
  const Factorial2x2 res = factorial_2x2(cell(), cell(), cell(), cell());
  EXPECT_GT(res.frac_error, 0.9);
}

TEST(Factorial, InteractionDetected) {
  // Effect of A exists only when B is high: strong interaction.
  const std::vector<double> y00{10, 10}, y10{10, 10}, y01{10, 10},
      y11{50, 50};
  const Factorial2x2 res = factorial_2x2(y00, y10, y01, y11);
  EXPECT_NEAR(res.qab, 10.0, 1e-12);
  EXPECT_GT(res.frac_ab, 0.3);
}

TEST(Factorial, EmptyCellThrows) {
  const std::vector<double> ok{1.0};
  EXPECT_THROW(factorial_2x2({}, ok, ok, ok), std::invalid_argument);
}

TEST(Factorial, PaperShapedDesign) {
  // Technique (A: vanilla->prebake) x function (B: noop->resizer), medians
  // from Figure 3: the technique effect and the interaction are both large
  // (prebaking saves much more on the resizer), and almost nothing is
  // unexplained noise.
  sim::Rng rng{7};
  auto cell = [&](double median) {
    std::vector<double> xs(40);
    for (double& x : xs) x = rng.lognormal_median(median, 0.012);
    return xs;
  };
  const Factorial2x2 res = factorial_2x2(cell(103.3), cell(62.0),
                                         cell(310.0), cell(87.0));
  EXPECT_LT(res.qa, 0.0);  // prebaking reduces start-up
  EXPECT_GT(res.qb, 0.0);  // the resizer starts slower
  EXPECT_LT(res.qab, 0.0); // and prebaking helps the resizer more
  EXPECT_LT(res.frac_error, 0.01);
}

}  // namespace
}  // namespace prebake::stats
