// REAP-style working-set restore (DESIGN.md §6j): the ws-1.img format, the
// record -> prefetch restore state machine, damaged-image fallback, the
// page-store delta interaction, and the platform's record-then-prefetch
// lifecycle. Also holds the single sanctioned pinning test for the
// deprecated RestoreOptions.lazy_pages / lazy_working_set aliases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "criu/dump.hpp"
#include "criu/page_store.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "faas/cluster.hpp"
#include "faas/platform.hpp"

namespace prebake::criu {
namespace {

using os::kPageSize;

// --- ws-1.img format -------------------------------------------------------

TEST(WsRestoreImage, RoundTripPreservesRunsAndTotals) {
  WorkingSetImage ws;
  ws.runs = {WsRun{1, 0, 5}, WsRun{1, 10, 3}, WsRun{2, 4, 1}};
  ws.total_pages = 9;
  const std::vector<std::uint8_t> bytes = encode_ws(ws);
  EXPECT_EQ(decode_ws(bytes), ws);
}

TEST(WsRestoreImage, EmptyWorkingSetRoundTrips) {
  // A function that touches nothing during its first invocation is legal:
  // the image encodes zero runs and decodes back to an empty set.
  const WorkingSetImage ws;
  EXPECT_EQ(decode_ws(encode_ws(ws)), ws);
}

TEST(WsRestoreImage, TruncatedBytesThrowTypedTruncation) {
  WorkingSetImage ws;
  ws.runs = {WsRun{1, 0, 8}};
  ws.total_pages = 8;
  std::vector<std::uint8_t> bytes = encode_ws(ws);
  bytes.resize(8);  // shorter than the fixed header
  try {
    decode_ws(bytes);
    FAIL() << "decode_ws accepted a truncated image";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kTruncatedImage);
  }
}

TEST(WsRestoreImage, CorruptBytesThrowTypedCorruption) {
  WorkingSetImage ws;
  ws.runs = {WsRun{1, 0, 8}};
  ws.total_pages = 8;
  std::vector<std::uint8_t> bytes = encode_ws(ws);
  bytes[bytes.size() / 2] ^= 0xFF;  // CRC no longer matches
  try {
    decode_ws(bytes);
    FAIL() << "decode_ws accepted a corrupt image";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kCorruptImage);
  }
}

// --- record / prefetch restores -------------------------------------------

class WsRestoreTest : public ::testing::Test {
 protected:
  WsRestoreTest() : kernel_{sim_} {}

  // A single-VMA target (one pattern heap, `pages` resident) so the
  // recorded working set and the restore's residency are exactly
  // predictable: pagemap order == page order within the one VMA.
  os::Pid make_target(std::uint64_t pages = 64) {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.process(pid).set_name("ws-app");
    const os::VmaId heap = kernel_.mmap(
        pid, kPageSize * pages, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[heap]", std::make_shared<os::PatternSource>(0x5E7), false);
    kernel_.fault_in_all(pid, heap);
    return pid;
  }

  DumpResult dump_to(os::Pid pid, const std::string& prefix) {
    DumpOptions opts;
    opts.fs_prefix = prefix;
    return Dumper{kernel_}.dump(pid, opts);
  }

  static os::VmaId image_heap_vma(const DumpResult& dump) {
    for (const VmaEntry& e : dump.images.decoded().vmas)
      if (e.name == "[heap]") return e.id;
    ADD_FAILURE() << "dump has no [heap] vma";
    return 0;
  }

  const os::Vma& restored_heap(os::Pid pid) {
    for (const os::Vma& v : kernel_.process(pid).mm().vmas())
      if (v.name == "[heap]") return v;
    throw std::logic_error{"restored process has no [heap] vma"};
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
};

TEST_F(WsRestoreTest, RecordingRestoreDefersEverythingAndArmsCapture) {
  const DumpResult dump = dump_to(make_target(), "/snap/ws/");
  RestoreOptions opts;
  opts.fs_prefix = "/snap/ws/";
  opts.paging = PagingPolicy::ws_recording();
  const RestoreResult r = Restorer{kernel_}.restore(dump.images, opts);

  // Record mode restores pure-lazy: every page is deferred so the kernel's
  // fault capture sees exactly the first invocation's touches.
  ASSERT_NE(r.ws_recorder, nullptr);
  EXPECT_EQ(r.ws_recorder->pid, r.pid);
  EXPECT_TRUE(kernel_.fault_recording(r.pid));
  ASSERT_NE(r.lazy_server, nullptr);
  EXPECT_EQ(r.lazy_server->pending_pages(), 64u);
  EXPECT_EQ(r.ws_prefetched_pages, 0u);
  EXPECT_FALSE(r.ws_fallback);
  EXPECT_EQ(restored_heap(r.pid).resident_pages(), 0u);
}

TEST_F(WsRestoreTest, RecordedSetMatchesKernelFaultLogExactly) {
  const DumpResult dump = dump_to(make_target(), "/snap/ws/");
  const os::VmaId img_vma = image_heap_vma(dump);
  RestoreOptions opts;
  opts.fs_prefix = "/snap/ws/";
  opts.paging = PagingPolicy::ws_recording();
  const RestoreResult r = Restorer{kernel_}.restore(dump.images, opts);
  ASSERT_NE(r.ws_recorder, nullptr);

  // The "first invocation": five demand faults through the uffd server
  // (first-touch order -> pages 0..4) plus a direct three-page touch at 10.
  r.lazy_server->page_in(5);
  kernel_.fault_in(r.pid, restored_heap(r.pid).id, 10, 3, /*write=*/false);

  const WorkingSetImage ws = finish_ws_recording(kernel_, *r.ws_recorder);
  EXPECT_FALSE(kernel_.fault_recording(r.pid));  // capture disarmed
  const std::vector<WsRun> want = {WsRun{img_vma, 0, 5}, WsRun{img_vma, 10, 3}};
  EXPECT_EQ(ws.runs, want);
  EXPECT_EQ(ws.total_pages, 8u);
  // And the capture persists faithfully through its image encoding.
  EXPECT_EQ(decode_ws(encode_ws(ws)), ws);
}

TEST_F(WsRestoreTest, PrefetchMapsExactlyTheRecordedSet) {
  DumpResult dump = dump_to(make_target(), "/snap/ws/");
  const os::VmaId img_vma = image_heap_vma(dump);
  WorkingSetImage ws;
  ws.runs = {WsRun{img_vma, 0, 5}, WsRun{img_vma, 10, 3}};
  ws.total_pages = 8;
  dump.images.put(kWsImageName, encode_ws(ws));

  RestoreOptions opts;
  opts.fs_prefix = "/snap/ws/";
  opts.paging = PagingPolicy::ws_prefetch();
  const RestoreResult r = Restorer{kernel_}.restore(dump.images, opts);

  EXPECT_FALSE(r.ws_fallback);
  EXPECT_EQ(r.ws_recorder, nullptr);
  EXPECT_EQ(r.ws_prefetched_pages, 8u);
  ASSERT_NE(r.lazy_server, nullptr);
  EXPECT_EQ(r.lazy_server->pending_pages(), 64u - 8u);

  // Residency is exactly the recorded set: runs mapped, gaps cold.
  const os::Vma& heap = restored_heap(r.pid);
  EXPECT_EQ(heap.resident_pages(), 8u);
  for (std::uint64_t p : {0u, 4u, 10u, 12u}) EXPECT_TRUE(heap.present[p]);
  for (std::uint64_t p : {5u, 9u, 13u, 63u}) EXPECT_FALSE(heap.present[p]);

  // The cold tail drains through the uffd server like any lazy restore.
  r.lazy_server->page_in_all();
  EXPECT_EQ(restored_heap(r.pid).resident_pages(), 64u);
}

TEST_F(WsRestoreTest, DamagedWsImageFallsBackToPureLazyWithTypedWarning) {
  DumpResult dump = dump_to(make_target(), "/snap/ws/");
  const os::VmaId img_vma = image_heap_vma(dump);
  WorkingSetImage ws;
  ws.runs = {WsRun{img_vma, 0, 8}};
  ws.total_pages = 8;
  const std::vector<std::uint8_t> good = encode_ws(ws);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/ws/";
  opts.paging = PagingPolicy::ws_prefetch();

  struct Case {
    const char* label;
    std::vector<std::uint8_t> bytes;  // empty = drop ws-1.img entirely
    RestoreErrorKind want;
  };
  std::vector<std::uint8_t> corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0xFF;
  std::vector<std::uint8_t> truncated = good;
  truncated.resize(8);
  const Case cases[] = {
      {"missing", {}, RestoreErrorKind::kMissingImage},
      {"corrupt", corrupt, RestoreErrorKind::kCorruptImage},
      {"truncated", truncated, RestoreErrorKind::kTruncatedImage},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    ImageDir images = dump.images;
    if (!c.bytes.empty()) images.put(kWsImageName, c.bytes);
    // A damaged advisory image must never fail the restore.
    const RestoreResult r = Restorer{kernel_}.restore(images, opts);
    EXPECT_TRUE(r.ws_fallback);
    EXPECT_EQ(r.ws_fallback_kind, c.want);
    EXPECT_FALSE(r.ws_fallback_detail.empty());
    EXPECT_EQ(r.ws_recorder, nullptr);
    EXPECT_EQ(r.ws_prefetched_pages, 0u);
    ASSERT_NE(r.lazy_server, nullptr);
    EXPECT_EQ(r.lazy_server->pending_pages(), 64u);  // pure-lazy downgrade
    kernel_.kill_process(r.pid);
    kernel_.reap(r.pid);
  }
}

TEST_F(WsRestoreTest, StoreDeltaShipsOnlyWorkingSetPages) {
  DumpResult dump = dump_to(make_target(96), "/registry/ws/");
  const os::VmaId img_vma = image_heap_vma(dump);
  WorkingSetImage ws;
  ws.runs = {WsRun{img_vma, 0, 32}};
  ws.total_pages = 32;
  const std::vector<std::uint8_t> ws_bytes = encode_ws(ws);
  kernel_.fs().create("/registry/ws/" + std::string{kWsImageName},
                      ws_bytes.size());
  dump.images.put(kWsImageName, ws_bytes);

  // Single VMA faulted from page 0: digest list is in page order, so the
  // working set's digests are exactly the first 32 entries.
  const std::span<const std::uint64_t> digests =
      dump.images.decoded().pages->digests();
  PageStore store;
  const std::uint64_t unique = store.missing_unique_pages(digests.first(32));

  RestoreOptions opts;
  opts.fs_prefix = "/registry/ws/";
  opts.remote_fetch = true;
  opts.page_store = &store;  // no store_key: delta only (templates need eager)
  opts.paging = PagingPolicy::ws_prefetch();

  kernel_.fs().drop_caches();
  const RestoreResult first = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_FALSE(first.ws_fallback);
  EXPECT_EQ(first.ws_prefetched_pages, 32u);
  // The negotiation ran over the WS digests only: the delta is the unique
  // WS pages, and only those landed in the store — the cold tail stays out.
  EXPECT_EQ(first.store_delta_bytes, unique * kPageSize);
  EXPECT_EQ(first.store_hit_pages, 32u - unique);
  EXPECT_EQ(store.stored_pages(), unique);
  kernel_.kill_process(first.pid);
  kernel_.reap(first.pid);

  // Same node, cache dropped: every WS page is already in the store, so the
  // second first-restore ships digests only.
  kernel_.fs().drop_caches();
  const RestoreResult second = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_EQ(second.store_delta_bytes, 0u);
  EXPECT_EQ(second.store_hit_pages, 32u);
  EXPECT_LT(second.remote_bytes, first.remote_bytes);
}

TEST_F(WsRestoreTest, PrefetchRestoreIsBitIdenticalAcrossEngineThreads) {
  // Four independent prefetch-restore worlds, summarized as strings exactly
  // like a bench JSON cell; the sweep must not depend on the runner's
  // thread count (same determinism bar as tools/run_benches.sh --check).
  auto sweep = [](int threads) {
    exp::ParallelRunner runner{threads};
    std::vector<std::string> out(4);
    runner.for_each(4, [&](std::size_t i) {
      sim::Simulation sim;
      os::Kernel kernel{sim};
      const os::Pid pid = kernel.clone_process(os::kNoPid);
      const os::VmaId heap = kernel.mmap(
          pid, kPageSize * 64, os::Prot::kReadWrite, os::VmaKind::kAnon,
          "[heap]", std::make_shared<os::PatternSource>(0xABC0 + i), false);
      kernel.fault_in_all(pid, heap);
      DumpOptions dopts;
      dopts.fs_prefix = "/snap/t/";
      DumpResult dump = Dumper{kernel}.dump(pid, dopts);
      WorkingSetImage ws;
      ws.runs = {WsRun{dump.images.decoded().vmas.front().id, 0,
                       8 + static_cast<std::uint64_t>(i)}};
      ws.total_pages = 8 + i;
      dump.images.put(kWsImageName, encode_ws(ws));
      RestoreOptions opts;
      opts.fs_prefix = "/snap/t/";
      opts.paging = PagingPolicy::ws_prefetch();
      const sim::TimePoint t0 = sim.now();
      const RestoreResult r = Restorer{kernel}.restore(dump.images, opts);
      char buf[128];
      std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%.6f",
                    static_cast<unsigned long long>(r.pages_restored),
                    static_cast<unsigned long long>(r.ws_prefetched_pages),
                    static_cast<unsigned long long>(
                        r.lazy_server->pending_pages()),
                    (sim.now() - t0).to_millis());
      out[i] = buf;
    });
    return out;
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

// --- deprecated-alias pinning ---------------------------------------------
//
// The ONE sanctioned reference to RestoreOptions.lazy_pages outside
// restore.hpp: proves the deprecated field pair behaves identically to
// PagingPolicy::lazy for this PR. Delete alongside the aliases next PR.

TEST_F(WsRestoreTest, DeprecatedLazyFieldsPinnedToPagingPolicy) {
  auto run = [](bool legacy) {
    sim::Simulation sim;
    os::Kernel kernel{sim};
    const os::Pid pid = kernel.clone_process(os::kNoPid);
    const os::VmaId heap = kernel.mmap(
        pid, kPageSize * 64, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[heap]", std::make_shared<os::PatternSource>(0x917), false);
    kernel.fault_in_all(pid, heap);
    DumpOptions dopts;
    dopts.fs_prefix = "/snap/pin/";
    const DumpResult dump = Dumper{kernel}.dump(pid, dopts);
    RestoreOptions opts;
    opts.fs_prefix = "/snap/pin/";
    if (legacy) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      opts.lazy_pages = true;
      opts.lazy_working_set = 0.3;
#pragma GCC diagnostic pop
    } else {
      opts.paging = PagingPolicy::lazy(0.3);
    }
    EXPECT_EQ(opts.effective_paging().mode, PagingMode::kLazy);
    EXPECT_EQ(opts.effective_paging().lazy_fraction, 0.3);
    const sim::TimePoint t0 = sim.now();
    const RestoreResult r = Restorer{kernel}.restore(dump.images, opts);
    const std::uint64_t pending = r.lazy_server->pending_pages();
    r.lazy_server->page_in_all();
    return std::tuple{r.pages_restored, r.bytes_read, pending,
                      (sim.now() - t0).to_millis()};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace prebake::criu

// --- platform lifecycle ----------------------------------------------------

namespace prebake::faas {
namespace {

constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

TEST(WsRestorePlatform, RecordsOnFirstStartThenPrefetchesForever) {
  PlatformConfig cfg;
  cfg.paging = criu::PagingPolicy::ws_prefetch();
  cfg.idle_timeout = sim::Duration::seconds(1);

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  Platform platform{kernel, exp::testbed_runtime(), cfg, 99};
  platform.resources().add_node("w1", 8 * GiB);
  platform.deploy(exp::image_resizer_spec(), StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  auto invoke_once = [&] {
    bool done = false;
    platform.invoke("image-resizer",
                    funcs::sample_request(platform.registry()
                                              .get("image-resizer")
                                              .spec.handler_id),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      EXPECT_TRUE(res.ok());
                      done = true;
                    });
    while (!done && sim.step()) {
    }
    EXPECT_TRUE(done);
  };

  // First cold start of the snapshot: no ws-1.img yet, so the platform
  // records; serve() closes the capture and attaches it to the snapshot.
  invoke_once();
  EXPECT_EQ(platform.stats().ws_recordings, 1u);
  EXPECT_EQ(platform.stats().ws_prefetch_starts, 0u);
  const core::BakedSnapshot& snap =
      platform.snapshots().get("image-resizer", core::SnapshotPolicy::warmup(1));
  EXPECT_TRUE(snap.images.has(criu::kWsImageName));

  // Idle the replica out, then cold-start again: now the snapshot carries a
  // working set and the restore prefetches it.
  sim.run();
  EXPECT_EQ(platform.replica_count("image-resizer"), 0u);
  invoke_once();
  EXPECT_EQ(platform.stats().ws_recordings, 1u);  // recorded exactly once
  EXPECT_EQ(platform.stats().ws_prefetch_starts, 1u);
  EXPECT_GT(platform.stats().ws_prefetched_pages, 0u);
  EXPECT_EQ(platform.stats().ws_fallbacks, 0u);

  // The prefetched replica's first request pays no demand faults and no
  // record-finish cost: strictly less service time than the recording one.
  const auto& log = platform.request_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].cold_start);
  EXPECT_TRUE(log[1].cold_start);
  EXPECT_LT(log[1].service.to_millis(), log[0].service.to_millis());
}

}  // namespace
}  // namespace prebake::faas
