// Batched page replay (DESIGN.md §6g): the bulk kernel APIs the per-run
// restore loop rides on, their cost identity with the per-page era, and the
// run-length-encoded lazy-pages handoff.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "os/kernel.hpp"

namespace prebake::criu {
namespace {

using os::kPageSize;

class RestoreBatchTest : public ::testing::Test {
 protected:
  RestoreBatchTest() : kernel_{sim_} {
    kernel_.fs().create("/bin/app", 2 * 1024 * 1024);
  }

  os::Pid spawn() {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.exec(pid, "/bin/app", {"/bin/app"});
    return pid;
  }

  os::Pid make_pattern_target(std::uint64_t seed, std::uint64_t pages) {
    const os::Pid pid = spawn();
    const os::VmaId heap = kernel_.mmap(
        pid, pages * kPageSize, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[heap]", std::make_shared<os::PatternSource>(seed), false);
    kernel_.fault_in_all(pid, heap, /*write=*/true);
    return pid;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
};

TEST_F(RestoreBatchTest, PopulateRunCostMatchesFaultIn) {
  // populate_run(touch_pages, no payload) is the batched form of fault_in:
  // identical residency, identical simulated charge.
  const os::Pid a = spawn();
  const os::Pid b = spawn();
  const os::VmaId va =
      kernel_.mmap(a, 64 * kPageSize, os::Prot::kReadWrite, os::VmaKind::kAnon,
                   "[x]", std::make_shared<os::PatternSource>(1), false);
  const os::VmaId vb =
      kernel_.mmap(b, 64 * kPageSize, os::Prot::kReadWrite, os::VmaKind::kAnon,
                   "[x]", std::make_shared<os::PatternSource>(1), false);

  const sim::TimePoint t0 = sim_.now();
  kernel_.fault_in(a, va, 3, 40, /*write=*/false);
  const sim::Duration legacy = sim_.now() - t0;

  const sim::TimePoint t1 = sim_.now();
  kernel_.populate_run(b, vb, 3, 40, {});
  const sim::Duration batched = sim_.now() - t1;

  EXPECT_EQ(batched.nanos_count(), legacy.nanos_count());
  EXPECT_EQ(kernel_.process(b).mm().resident_pages(),
            kernel_.process(a).mm().resident_pages());
}

TEST_F(RestoreBatchTest, PopulateRunCopiesPayloadIntoBufferSource) {
  const os::Pid pid = spawn();
  auto buf = std::make_shared<os::BufferSource>(
      std::vector<std::uint8_t>(8 * kPageSize, 0));
  const os::VmaId vma =
      kernel_.mmap(pid, 8 * kPageSize, os::Prot::kReadWrite, os::VmaKind::kAnon,
                   "[data]", buf, false);

  std::vector<std::uint8_t> payload(3 * kPageSize);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  kernel_.populate_run(pid, vma, 2, 3, payload);

  // Bytes landed at page 2's offset in one copy...
  EXPECT_EQ(buf->bytes()[2 * kPageSize], payload[0]);
  EXPECT_EQ(buf->bytes()[5 * kPageSize - 1], payload[3 * kPageSize - 1]);
  EXPECT_EQ(buf->bytes()[2 * kPageSize - 1], 0);  // page 1 untouched
  // ...and exactly the touched run is resident.
  const os::Vma* v = kernel_.process(pid).mm().find(vma);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->present.count(), 3u);
  EXPECT_TRUE(v->present[2]);
  EXPECT_TRUE(v->present[4]);
  EXPECT_FALSE(v->present[5]);
}

TEST_F(RestoreBatchTest, PopulateRunClampsShortPayload) {
  // A truncated raw section (fuzzed images) must clamp, not read or write
  // out of bounds: only one page of bytes exists for a two-page run.
  const os::Pid pid = spawn();
  auto buf = std::make_shared<os::BufferSource>(
      std::vector<std::uint8_t>(2 * kPageSize, 0));
  const os::VmaId vma =
      kernel_.mmap(pid, 2 * kPageSize, os::Prot::kReadWrite, os::VmaKind::kAnon,
                   "[data]", buf, false);
  const std::vector<std::uint8_t> payload(kPageSize, 0x5A);
  kernel_.populate_run(pid, vma, 1, 1, payload);
  EXPECT_EQ(buf->bytes()[kPageSize], 0x5A);
  EXPECT_EQ(kernel_.process(pid).mm().find(vma)->present.count(), 1u);
}

TEST_F(RestoreBatchTest, VerifyRunChargesPerMatchedPage) {
  const std::uint64_t n = 32;
  const os::Pid pid = make_pattern_target(0xFACE, n);
  const os::VmaId heap = kernel_.process(pid).mm().vmas().back().id;

  const os::PatternSource src{0xFACE};
  std::vector<std::uint64_t> expected;
  for (std::uint64_t p = 0; p < n; ++p) expected.push_back(src.page_digest(p));

  const sim::TimePoint t0 = sim_.now();
  EXPECT_EQ(kernel_.verify_run(pid, heap, 0, expected), n);
  const sim::Duration charged = sim_.now() - t0;
  // One aggregated advance, same total as n per-page charges (memcpy_cost
  // is linear with no base term).
  const sim::Duration per_page = os::CostModel{}.memcpy_cost(kPageSize);
  EXPECT_EQ(charged.nanos_count(),
            (per_page * static_cast<double>(n)).nanos_count());
}

TEST_F(RestoreBatchTest, VerifyRunStopsAtFirstMismatch) {
  const std::uint64_t n = 16;
  const os::Pid pid = make_pattern_target(0xFACE, n);
  const os::VmaId heap = kernel_.process(pid).mm().vmas().back().id;

  const os::PatternSource src{0xFACE};
  std::vector<std::uint64_t> expected;
  for (std::uint64_t p = 0; p < n; ++p) expected.push_back(src.page_digest(p));
  expected[5] ^= 1;  // corrupt one digest

  const sim::TimePoint t0 = sim_.now();
  EXPECT_EQ(kernel_.verify_run(pid, heap, 0, expected), 5u);
  const sim::Duration charged = sim_.now() - t0;
  // The mismatching page is uncharged, exactly like the per-page loop that
  // threw before advancing.
  const sim::Duration per_page = os::CostModel{}.memcpy_cost(kPageSize);
  EXPECT_EQ(charged.nanos_count(),
            (per_page * 5.0).nanos_count());
}

TEST_F(RestoreBatchTest, VerifyCostIdentity) {
  // Satellite gate: a verified restore costs exactly the unverified restore
  // plus memcpy_cost(page) * pages_dumped — batching the charge into one
  // advance per run must not drift the simulated clock by a nanosecond.
  const os::Pid pid = make_pattern_target(0xBEE, 96);
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/v/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/v/";
  {  // warm the image cache so both measured restores read at equal cost
    const RestoreResult r = Restorer{kernel_}.restore(dump.images, opts);
    kernel_.kill_process(r.pid);
    kernel_.reap(r.pid);
  }

  const sim::TimePoint t0 = sim_.now();
  const RestoreResult plain = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration base = sim_.now() - t0;
  kernel_.kill_process(plain.pid);
  kernel_.reap(plain.pid);

  opts.verify_pages = true;
  const sim::TimePoint t1 = sim_.now();
  const RestoreResult verified = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration with_verify = sim_.now() - t1;
  kernel_.kill_process(verified.pid);
  kernel_.reap(verified.pid);

  const sim::Duration per_page = os::CostModel{}.memcpy_cost(kPageSize);
  const sim::Duration expected =
      per_page * static_cast<double>(dump.stats.pages_dumped);
  EXPECT_EQ((with_verify - base).nanos_count(), expected.nanos_count());
}

TEST_F(RestoreBatchTest, LazyPendingIsRunLengthEncoded) {
  const os::Pid pid = make_pattern_target(0x1A2B, 80);
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/rle/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/rle/";
  opts.paging = PagingPolicy::lazy(0.0);  // everything deferred
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);
  ASSERT_NE(restored.lazy_server, nullptr);
  LazyPagesServer& server = *restored.lazy_server;

  // Zero runs are always mapped eagerly (no payload to serve); everything
  // with payload is deferred.
  const std::uint64_t total = server.pending_pages();
  EXPECT_EQ(total, dump.stats.pages_dumped);

  // Serving decrements page-at-a-time in first-touch order regardless of
  // how the queue is encoded.
  EXPECT_EQ(server.page_in(3), 3u);
  EXPECT_EQ(server.pending_pages(), total - 3);

  // Per-page serving cost is unchanged: two consecutive single-page faults
  // (warm image cache) charge identical time.
  (void)server.page_in(1);
  const sim::TimePoint t0 = sim_.now();
  (void)server.page_in(1);
  const sim::Duration first = sim_.now() - t0;
  const sim::TimePoint t1 = sim_.now();
  (void)server.page_in(1);
  const sim::Duration second = sim_.now() - t1;
  EXPECT_EQ(first.nanos_count(), second.nanos_count());

  // Draining serves exactly the remainder, once.
  EXPECT_EQ(server.page_in_all(), total - 6);
  EXPECT_TRUE(server.done());
  EXPECT_EQ(server.page_in(5), 0u);
}

TEST_F(RestoreBatchTest, LazyDrainMatchesEagerResidency) {
  const os::Pid pid = make_pattern_target(0x7777, 48);
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/drain/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions eager;
  eager.fs_prefix = "/snap/drain/";
  const RestoreResult full = Restorer{kernel_}.restore(dump.images, eager);

  RestoreOptions lazy = eager;
  lazy.paging = PagingPolicy::lazy(0.3);
  const RestoreResult post = Restorer{kernel_}.restore(dump.images, lazy);
  ASSERT_NE(post.lazy_server, nullptr);
  post.lazy_server->page_in_all();

  EXPECT_EQ(kernel_.process(post.pid).mm().resident_pages(),
            kernel_.process(full.pid).mm().resident_pages());
}

}  // namespace
}  // namespace prebake::criu
