// Cross-engine determinism suite for the calendar queue (DESIGN.md §6h).
//
// The calendar queue must pop events in exactly the same (time, sequence)
// order as the reference binary heap — the simulation's event execution
// order is pinned bit-identical across engines. The suites here drive both
// queues (and both Simulation engines) through identical workloads and
// assert identical observable behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace prebake::sim {
namespace {

TEST(ScaleEngineQueue, PopsInTimeThenSeqOrder) {
  CalendarQueue q;
  q.push({TimePoint::origin() + Duration::millis(30), 0, 1});
  q.push({TimePoint::origin() + Duration::millis(10), 1, 2});
  q.push({TimePoint::origin() + Duration::millis(10), 2, 3});
  q.push({TimePoint::origin() + Duration::millis(20), 3, 4});
  std::vector<std::uint64_t> ids;
  while (!q.empty()) ids.push_back(q.pop().id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 4, 1}));
}

TEST(ScaleEngineQueue, PeekMatchesPop) {
  CalendarQueue q;
  Rng rng{7};
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    q.push({TimePoint::origin() + Duration::nanos(static_cast<std::int64_t>(
                                      rng.next_below(1'000'000'000))),
            seq, seq});
  }
  while (!q.empty()) {
    const QueuedEvent* top = q.peek();
    ASSERT_NE(top, nullptr);
    const std::uint64_t expect = top->id;
    EXPECT_EQ(q.pop().id, expect);
  }
  EXPECT_EQ(q.peek(), nullptr);
}

// Random interleaving of pushes and pops with a monotone "now" floor (pops
// never go back in time, pushes land at or after the last pop) — the access
// pattern the simulation produces. Both queues must agree pop-for-pop.
TEST(ScaleEngineQueue, RandomWorkloadMatchesBinaryHeap) {
  CalendarQueue cal;
  BinaryHeapQueue heap;
  Rng rng{42};
  std::uint64_t seq = 0;
  std::int64_t floor_ns = 0;
  for (int round = 0; round < 20'000; ++round) {
    const double r = rng.uniform();
    if (r < 0.55 || cal.empty()) {
      // Mix of near-future arrivals and far-future idle timers, with ties.
      std::int64_t delta;
      const double kind = rng.uniform();
      if (kind < 0.4)
        delta = static_cast<std::int64_t>(rng.next_below(1000));  // dense
      else if (kind < 0.8)
        delta = static_cast<std::int64_t>(rng.next_below(1'000'000));
      else
        delta = static_cast<std::int64_t>(
            rng.next_below(60'000'000'000ull));  // 60 s timer horizon
      if (rng.uniform() < 0.05) delta = 0;       // exact ties on the floor
      const QueuedEvent e{TimePoint::origin() + Duration::nanos(floor_ns + delta),
                          seq, seq};
      ++seq;
      cal.push(e);
      heap.push(e);
    } else {
      ASSERT_EQ(cal.size(), heap.size());
      const QueuedEvent a = cal.pop();
      const QueuedEvent b = heap.pop();
      ASSERT_EQ(a.id, b.id) << "divergence at round " << round;
      ASSERT_EQ(a.at.nanos_since_origin(), b.at.nanos_since_origin());
      ASSERT_EQ(a.seq, b.seq);
      floor_ns = a.at.nanos_since_origin();
    }
  }
  while (!cal.empty()) {
    ASSERT_FALSE(heap.empty());
    ASSERT_EQ(cal.pop().id, heap.pop().id);
  }
  EXPECT_TRUE(heap.empty());
}

// Burst-then-sparse shape: a dense burst calibrates the bucket width small,
// then only sparse far-future timers remain — the recalibration path must
// keep pops correct and ordered.
TEST(ScaleEngineQueue, BurstThenSparseTimersStayOrdered) {
  CalendarQueue cal;
  BinaryHeapQueue heap;
  Rng rng{9};
  std::uint64_t seq = 0;
  for (int i = 0; i < 4096; ++i) {
    const QueuedEvent e{TimePoint::origin() + Duration::nanos(static_cast<std::int64_t>(
                            rng.next_below(1'000'000))),
                        seq, seq};
    ++seq;
    cal.push(e);
    heap.push(e);
  }
  for (int i = 0; i < 4000; ++i) ASSERT_EQ(cal.pop().id, heap.pop().id);
  for (int i = 0; i < 64; ++i) {
    const QueuedEvent e{TimePoint::origin() + Duration::seconds(3600) +
                            Duration::nanos(static_cast<std::int64_t>(
                                rng.next_below(86'400'000'000'000ull))),
                        seq, seq};
    ++seq;
    cal.push(e);
    heap.push(e);
  }
  while (!cal.empty()) ASSERT_EQ(cal.pop().id, heap.pop().id);
  EXPECT_TRUE(heap.empty());
}

TEST(ScaleEngineQueue, SingleDistantEventAfterDrain) {
  CalendarQueue q;
  for (std::uint64_t i = 0; i < 1000; ++i)
    q.push({TimePoint::origin() + Duration::nanos(static_cast<std::int64_t>(i)),
            i, i});
  while (!q.empty()) q.pop();
  q.push({TimePoint::origin() + Duration::seconds(86'400), 5000, 77});
  const QueuedEvent* top = q.peek();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->id, 77u);
  EXPECT_EQ(q.pop().id, 77u);
  EXPECT_TRUE(q.empty());
}

// Drive both Simulation engines through the same scripted workload —
// chained events, cancellations, equal-time ties, run_until horizons — and
// require the identical firing log.
std::vector<std::string> scripted_run(QueueKind kind) {
  Simulation sim{kind};
  std::vector<std::string> log;
  Rng rng{1234};
  std::function<void(int)> chain = [&](int depth) {
    log.push_back("chain" + std::to_string(depth) + "@" +
                  std::to_string(sim.now().nanos_since_origin()));
    if (depth < 40) {
      sim.schedule_in(Duration::nanos(static_cast<std::int64_t>(
                          rng.next_below(5'000'000))),
                      [&chain, depth] { chain(depth + 1); });
    }
  };
  std::vector<EventId> cancellable;
  for (int i = 0; i < 200; ++i) {
    const auto at = TimePoint::origin() +
                    Duration::nanos(static_cast<std::int64_t>(
                        rng.next_below(50'000'000)));
    if (i % 3 == 0) {
      cancellable.push_back(sim.schedule_at(
          at, [&log, i] { log.push_back("fired" + std::to_string(i)); }));
    } else {
      sim.schedule_at(at,
                      [&log, i] { log.push_back("ev" + std::to_string(i)); });
    }
  }
  for (std::size_t i = 0; i < cancellable.size(); i += 2)
    sim.cancel(cancellable[i]);
  sim.schedule_in(Duration::nanos(1), [&] { chain(0); });
  sim.run_until(TimePoint::origin() + Duration::millis(20));
  log.push_back("until@" + std::to_string(sim.now().nanos_since_origin()) +
                " pending=" + std::to_string(sim.pending_events()));
  sim.run();
  log.push_back("end@" + std::to_string(sim.now().nanos_since_origin()));
  return log;
}

TEST(ScaleEngineSim, ScriptedWorkloadIdenticalAcrossEngines) {
  const auto calendar = scripted_run(QueueKind::kCalendar);
  const auto heap = scripted_run(QueueKind::kBinaryHeap);
  ASSERT_EQ(calendar.size(), heap.size());
  for (std::size_t i = 0; i < calendar.size(); ++i)
    EXPECT_EQ(calendar[i], heap[i]) << "at log index " << i;
}

TEST(ScaleEngineSim, DefaultEngineIsCalendar) {
  Simulation sim;
  EXPECT_EQ(sim.queue_kind(), QueueKind::kCalendar);
}

TEST(ScaleEngineSim, PendingEventsExcludesCancelledShells) {
  Simulation sim{QueueKind::kCalendar};
  const EventId a = sim.schedule_in(Duration::millis(1), [] {});
  sim.schedule_in(Duration::millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace prebake::sim
