#include "os/kernel.hpp"

#include <gtest/gtest.h>

namespace prebake::os {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : kernel_{sim_} {
    kernel_.fs().create("/bin/app", 4 * 1024 * 1024);
  }

  Pid spawn_root() {
    const Pid pid = kernel_.clone_process(kNoPid);
    return pid;
  }

  Pid spawn_exec() {
    const Pid pid = spawn_root();
    kernel_.exec(pid, "/bin/app", {"/bin/app"});
    return pid;
  }

  sim::Simulation sim_;
  Kernel kernel_;
};

TEST_F(KernelTest, CloneCreatesRunningProcess) {
  const Pid pid = spawn_root();
  EXPECT_TRUE(kernel_.alive(pid));
  EXPECT_EQ(kernel_.process(pid).state(), ProcState::kRunning);
  EXPECT_EQ(kernel_.process(pid).threads().size(), 1u);
}

TEST_F(KernelTest, ClonePidsAreUnique) {
  const Pid a = spawn_root();
  const Pid b = spawn_root();
  EXPECT_NE(a, b);
}

TEST_F(KernelTest, CloneChargesTime) {
  spawn_root();
  EXPECT_GE(sim_.now().to_millis(), 0.3);
}

TEST_F(KernelTest, CloneInheritsParentMemoryCow) {
  const Pid parent = spawn_exec();
  const std::uint64_t parent_resident = kernel_.process(parent).mm().resident_bytes();
  const Pid child = kernel_.clone_process(parent);
  EXPECT_EQ(kernel_.process(child).mm().resident_bytes(), parent_resident);
}

TEST_F(KernelTest, CloneInheritsFds) {
  const Pid parent = spawn_root();
  kernel_.process(parent).install_fd(FdDesc{-1, FdKind::kSocket, "tcp://:80", 0});
  const Pid child = kernel_.clone_process(parent);
  EXPECT_EQ(kernel_.process(child).fds().size(),
            kernel_.process(parent).fds().size());
}

TEST_F(KernelTest, CloneWithChosenPidNeedsCapability) {
  CloneOptions opts;
  opts.set_child_pid = true;
  opts.child_pid = 4242;
  EXPECT_THROW(kernel_.clone_process(kNoPid, opts), std::runtime_error);
  opts.caller_caps = Cap::kCheckpointRestore;
  const Pid pid = kernel_.clone_process(kNoPid, opts);
  EXPECT_EQ(pid, 4242);
}

TEST_F(KernelTest, CloneWithTakenPidThrows) {
  const Pid existing = spawn_root();
  CloneOptions opts;
  opts.set_child_pid = true;
  opts.child_pid = existing;
  opts.caller_caps = Cap::kSysAdmin;
  EXPECT_THROW(kernel_.clone_process(kNoPid, opts), std::runtime_error);
}

TEST_F(KernelTest, CloneNewNamespaces) {
  CloneOptions opts;
  opts.new_pid_ns = true;
  opts.new_net_ns = true;
  const Pid pid = kernel_.clone_process(kNoPid, opts);
  EXPECT_NE(kernel_.process(pid).ns().pid_ns, 0u);
  EXPECT_NE(kernel_.process(pid).ns().net_ns, 0u);
  EXPECT_EQ(kernel_.process(pid).ns().mnt_ns, 0u);
}

TEST_F(KernelTest, ExecReplacesImage) {
  const Pid pid = spawn_root();
  const Pid parent = pid;
  kernel_.exec(parent, "/bin/app", {"/bin/app", "--serve"});
  const Process& p = kernel_.process(pid);
  EXPECT_EQ(p.name(), "app");
  EXPECT_EQ(p.argv().size(), 2u);
  EXPECT_GE(p.mm().vmas().size(), 3u);  // text + stack + heap
  EXPECT_GT(p.mm().resident_bytes(), 0u);
}

TEST_F(KernelTest, ExecMissingBinaryThrows) {
  const Pid pid = spawn_root();
  EXPECT_THROW(kernel_.exec(pid, "/bin/missing", {}), std::invalid_argument);
}

TEST_F(KernelTest, ExitAndReap) {
  const Pid pid = spawn_exec();
  kernel_.exit_process(pid, 3);
  EXPECT_FALSE(kernel_.alive(pid));
  EXPECT_EQ(kernel_.process(pid).state(), ProcState::kZombie);
  EXPECT_EQ(kernel_.reap(pid), 3);
  EXPECT_THROW(kernel_.process(pid), std::invalid_argument);
}

TEST_F(KernelTest, ReapNonZombieThrows) {
  const Pid pid = spawn_root();
  EXPECT_THROW(kernel_.reap(pid), std::logic_error);
}

TEST_F(KernelTest, KillReleasesMemory) {
  const Pid pid = spawn_exec();
  EXPECT_GT(kernel_.process(pid).mm().resident_bytes(), 0u);
  kernel_.kill_process(pid);
  EXPECT_EQ(kernel_.process(pid).mm().resident_bytes(), 0u);
  EXPECT_EQ(kernel_.process(pid).exit_code(), 137);
}

TEST_F(KernelTest, MmapAndFault) {
  const Pid pid = spawn_root();
  const VmaId id = kernel_.mmap(pid, kPageSize * 8, Prot::kReadWrite,
                                VmaKind::kAnon, "x",
                                std::make_shared<PatternSource>(1));
  kernel_.fault_in(pid, id, 0, 4);
  EXPECT_EQ(kernel_.process(pid).mm().resident_pages(), 4u);
  kernel_.fault_in_all(pid, id, true);
  EXPECT_EQ(kernel_.process(pid).mm().resident_pages(), 8u);
}

TEST_F(KernelTest, FreezeRequiresCapability) {
  const Pid pid = spawn_root();
  EXPECT_THROW(kernel_.freeze(pid, Cap::kNone), std::runtime_error);
  kernel_.freeze(pid, Cap::kSysPtrace);
  EXPECT_EQ(kernel_.process(pid).state(), ProcState::kFrozen);
}

TEST_F(KernelTest, FreezeStopsAllThreads) {
  const Pid pid = spawn_root();
  kernel_.process(pid).spawn_thread(pid + 500);
  kernel_.freeze(pid, Cap::kSysAdmin);
  for (const Thread& t : kernel_.process(pid).threads())
    EXPECT_EQ(t.state, ThreadState::kStopped);
  kernel_.thaw(pid);
  for (const Thread& t : kernel_.process(pid).threads())
    EXPECT_EQ(t.state, ThreadState::kRunning);
}

TEST_F(KernelTest, DoubleFreezeThrows) {
  const Pid pid = spawn_root();
  kernel_.freeze(pid, Cap::kSysAdmin);
  EXPECT_THROW(kernel_.freeze(pid, Cap::kSysAdmin), std::logic_error);
  kernel_.thaw(pid);
  EXPECT_THROW(kernel_.thaw(pid), std::logic_error);
}

TEST_F(KernelTest, CheckpointRestoreCapabilityAllowsFreeze) {
  // The unprivileged mode of recent CRIU [11].
  const Pid pid = spawn_root();
  kernel_.freeze(pid, Cap::kCheckpointRestore);
  EXPECT_EQ(kernel_.process(pid).state(), ProcState::kFrozen);
}

TEST_F(KernelTest, ParasiteLifecycle) {
  const Pid pid = spawn_exec();
  kernel_.freeze(pid, Cap::kSysAdmin);
  kernel_.inject_parasite(pid, 64 * 1024);
  EXPECT_TRUE(kernel_.process(pid).parasite_present());
  // The parasite mapping is visible in the address space.
  bool found = false;
  for (const Vma& vma : kernel_.process(pid).mm().vmas())
    if (vma.name == "[criu-parasite]") found = true;
  EXPECT_TRUE(found);
  kernel_.cure_parasite(pid);
  EXPECT_FALSE(kernel_.process(pid).parasite_present());
  for (const Vma& vma : kernel_.process(pid).mm().vmas())
    EXPECT_NE(vma.name, "[criu-parasite]");
}

TEST_F(KernelTest, ParasiteRequiresFrozenTarget) {
  const Pid pid = spawn_exec();
  EXPECT_THROW(kernel_.inject_parasite(pid, 1024), std::logic_error);
}

TEST_F(KernelTest, DoubleInjectThrows) {
  const Pid pid = spawn_exec();
  kernel_.freeze(pid, Cap::kSysAdmin);
  kernel_.inject_parasite(pid, 1024);
  EXPECT_THROW(kernel_.inject_parasite(pid, 1024), std::logic_error);
}

TEST_F(KernelTest, PagemapReportsResidentRuns) {
  const Pid pid = spawn_root();
  const VmaId id = kernel_.mmap(pid, kPageSize * 10, Prot::kReadWrite,
                                VmaKind::kAnon, "x",
                                std::make_shared<PatternSource>(1));
  kernel_.fault_in(pid, id, 0, 2);
  kernel_.fault_in(pid, id, 5, 3);
  std::uint64_t pages = 0;
  int runs_for_vma = 0;
  for (const PagemapRange& r : kernel_.pagemap(pid)) {
    if (r.vma == id) {
      ++runs_for_vma;
      pages += r.pages;
    }
  }
  EXPECT_EQ(runs_for_vma, 2);
  EXPECT_EQ(pages, 5u);
}

TEST_F(KernelTest, PagemapSplitsDirtyRuns) {
  const Pid pid = spawn_root();
  const VmaId id = kernel_.mmap(pid, kPageSize * 4, Prot::kReadWrite,
                                VmaKind::kAnon, "x",
                                std::make_shared<PatternSource>(1));
  kernel_.fault_in(pid, id, 0, 4);
  kernel_.process(pid).mm().touch(id, 1, 2, /*write=*/true);
  int dirty_runs = 0, clean_runs = 0;
  for (const PagemapRange& r : kernel_.pagemap(pid)) {
    if (r.vma != id) continue;
    (r.dirty ? dirty_runs : clean_runs)++;
  }
  EXPECT_EQ(dirty_runs, 1);
  EXPECT_EQ(clean_runs, 2);
}

TEST_F(KernelTest, PipeTransferChargesTime) {
  const std::uint64_t pipe = kernel_.create_pipe();
  const double t0 = sim_.now().to_millis();
  kernel_.pipe_transfer(pipe, 100 * 1024 * 1024);
  EXPECT_GT(sim_.now().to_millis() - t0, 10.0);
}

TEST_F(KernelTest, PidsListsProcesses) {
  spawn_root();
  spawn_root();
  EXPECT_EQ(kernel_.pids().size(), 2u);
  EXPECT_EQ(kernel_.process_count(), 2u);
}

}  // namespace
}  // namespace prebake::os
