// End-to-end integration: every layer at once — containerized platform,
// mixed deployment modes, workflow composition, trace-driven load,
// idle reclaim — with conservation invariants checked afterwards.
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/calibration.hpp"
#include "faas/trace.hpp"
#include "faas/workflow.hpp"
#include "stats/descriptive.hpp"

namespace prebake {
namespace {

TEST(Integration, DayInTheLife) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(60);
  cfg.containerized = true;
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 2026};
  platform.resources().add_node("node-1", 16ull << 30);
  platform.resources().add_node("node-2", 16ull << 30);

  // Mixed fleet: vanilla markdown, prebaked resizer, prebaked noop with a
  // warm-pool floor.
  platform.deploy(exp::markdown_spec(), faas::StartMode::kVanilla);
  platform.deploy(exp::image_resizer_spec(), faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  platform.deploy(exp::noop_spec(), faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::no_warmup());
  platform.set_min_idle("noop", 1);

  // A multi-function trace: two bursts separated by a reclaim-length gap.
  std::vector<faas::TraceEvent> events;
  auto trace_md = faas::generate_poisson_trace("markdown-render", 4.0,
                                               sim::Duration::seconds(30), 1);
  auto trace_noop = faas::generate_poisson_trace("noop", 8.0,
                                                 sim::Duration::seconds(30), 2);
  auto trace_rz = faas::generate_poisson_trace("image-resizer", 0.5,
                                               sim::Duration::seconds(30), 3);
  for (auto* t : {&trace_md, &trace_noop, &trace_rz})
    events.insert(events.end(), t->begin(), t->end());
  // Second burst after the idle timeout has drained the pools.
  const std::size_t first_burst = events.size();
  for (std::size_t i = 0; i < first_burst; ++i) {
    faas::TraceEvent e = events[i];
    e.at += sim::Duration::seconds(120);
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });

  const faas::TraceReplayResult result = faas::replay_trace(platform, events);

  // Every request answered successfully.
  EXPECT_EQ(result.responses_ok, events.size());
  EXPECT_EQ(result.responses_rejected, 0u);

  // The noop pool floor absorbed its first burst warm; the other functions
  // cold-started at least twice (once per burst).
  const auto& stats = platform.stats();
  EXPECT_GE(stats.cold_starts, 4u);
  EXPECT_EQ(stats.oom_kills, 0u);
  EXPECT_EQ(stats.restore_fallbacks, 0u);

  // Containers exist for every live replica, one each.
  std::uint32_t replicas = 0;
  for (const auto* fn : {"markdown-render", "image-resizer", "noop"})
    replicas += platform.replica_count(fn);
  EXPECT_EQ(platform.containers().count(), replicas);

  // Drain all pending events (idle reclaim): everything but the pinned noop
  // pool is released, and resource accounting returns to just that floor.
  sim.run();
  EXPECT_EQ(platform.replica_count("markdown-render"), 0u);
  EXPECT_EQ(platform.replica_count("image-resizer"), 0u);
  EXPECT_EQ(platform.replica_count("noop"), 1u);  // min-idle floor
  EXPECT_EQ(platform.containers().count(), 1u);
  EXPECT_GT(platform.resources().total_mem_used(), 0u);

  // Latency sanity: prebaked resizer cold starts stayed well under its
  // vanilla start-up (~310 ms + container provisioning).
  std::vector<double> resizer_cold;
  for (const auto& m : result.metrics)
    if (m.function == "image-resizer" && m.cold_start)
      resizer_cold.push_back(m.startup.to_millis());
  ASSERT_FALSE(resizer_cold.empty());
  EXPECT_LT(stats::median(resizer_cold), 150.0);
}

TEST(Integration, WorkflowOverContainerizedPrebakedFleet) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.containerized = true;
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 7};
  platform.resources().add_node("n", 16ull << 30);
  platform.deploy(exp::markdown_spec(), faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  platform.deploy(exp::noop_spec(), faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));

  faas::WorkflowEngine engine{platform};
  engine.register_workflow({"render-ack", {"markdown-render", "noop"}});

  funcs::Response final_res;
  faas::WorkflowMetrics metrics;
  bool done = false;
  engine.run("render-ack", funcs::sample_request("markdown"),
             [&](const funcs::Response& res, const faas::WorkflowMetrics& m) {
               final_res = res;
               metrics = m;
               done = true;
             });
  while (!done && sim.step()) {
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(final_res.ok());
  EXPECT_EQ(metrics.cold_starts, 2u);
  EXPECT_EQ(platform.containers().count(), 2u);
  // Both stages' replicas were restored from privileged containers.
  EXPECT_EQ(platform.stats().restore_fallbacks, 0u);
}

}  // namespace
}  // namespace prebake
