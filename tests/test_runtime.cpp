#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"

namespace prebake::rt {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : kernel_{sim_, exp::testbed_costs()} {
    kernel_.fs().create("/opt/jvm/bin/java", 48ull * 1024 * 1024);
  }

  FunctionSpec spec_with_classes() {
    FunctionSpec spec;
    spec.name = "fn";
    spec.handler_id = "noop";
    spec.init_classes = synth_class_set("init", 50, 500'000, 1);
    spec.request_classes = synth_class_set("req", 80, 900'000, 2);
    spec.classpath_archive = "/registry/fn/classes.jar";
    kernel_.fs().create(spec.classpath_archive, 1'400'000);
    return spec;
  }

  os::Pid exec_process() {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.exec(pid, "/opt/jvm/bin/java", {"java"});
    return pid;
  }

  ManagedRuntime fresh_runtime(const FunctionSpec& spec, os::Pid pid) {
    return ManagedRuntime{kernel_, pid, exp::testbed_runtime(), spec,
                          sim::Rng{7}};
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
};

TEST_F(RuntimeTest, LifecyclePhasesProgress) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  EXPECT_EQ(rt.progress(), RuntimeProgress::kFresh);
  rt.bootstrap();
  EXPECT_EQ(rt.progress(), RuntimeProgress::kBooted);
  rt.app_init(assets_);
  EXPECT_EQ(rt.progress(), RuntimeProgress::kReady);
  (void)rt.handle(funcs::Request{});
  EXPECT_EQ(rt.progress(), RuntimeProgress::kWarmed);
}

TEST_F(RuntimeTest, PhaseOrderEnforced) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  EXPECT_THROW(rt.app_init(assets_), std::logic_error);
  EXPECT_THROW(rt.handle(funcs::Request{}), std::logic_error);
  rt.bootstrap();
  EXPECT_THROW(rt.bootstrap(), std::logic_error);
}

TEST_F(RuntimeTest, BootstrapTakesAbout70Ms) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  EXPECT_NEAR(rt.rts_time().to_millis(), 70.0, 5.0);
}

TEST_F(RuntimeTest, BootstrapGrowsFootprintAndThreads) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  const std::uint64_t before = kernel_.process(pid).mm().resident_bytes();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  EXPECT_GT(kernel_.process(pid).mm().resident_bytes(),
            before + 10ull * 1024 * 1024);
  EXPECT_EQ(kernel_.process(pid).threads().size(), 5u);  // main + 4 services
}

TEST_F(RuntimeTest, AppInitLoadsInitClassesAndListens) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  const std::uint64_t before = kernel_.process(pid).mm().resident_bytes();
  rt.app_init(assets_);
  EXPECT_GT(kernel_.process(pid).mm().resident_bytes(), before);
  EXPECT_GT(rt.appinit_time().to_millis(), 5.0);
  bool listening = false;
  for (const auto& [fd, desc] : kernel_.process(pid).fds())
    if (desc.kind == os::FdKind::kSocket) listening = true;
  EXPECT_TRUE(listening);
}

TEST_F(RuntimeTest, FirstRequestIsSlowLaterRequestsFast) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  rt.app_init(assets_);

  const sim::TimePoint t0 = sim_.now();
  (void)rt.handle(funcs::Request{});
  const double first_ms = (sim_.now() - t0).to_millis();

  const sim::TimePoint t1 = sim_.now();
  (void)rt.handle(funcs::Request{});
  const double second_ms = (sim_.now() - t1).to_millis();

  // First request pays lazy class loading + JIT (Section 4.2.2).
  EXPECT_GT(first_ms, second_ms * 5);
}

TEST_F(RuntimeTest, FirstRequestGrowsCodeCache) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  rt.app_init(assets_);
  const std::uint64_t before = kernel_.process(pid).mm().resident_bytes();
  (void)rt.handle(funcs::Request{});
  EXPECT_GT(kernel_.process(pid).mm().resident_bytes(), before);
  bool has_code_cache = false;
  for (const os::Vma& vma : kernel_.process(pid).mm().vmas())
    if (vma.name == "[code-cache]") has_code_cache = true;
  EXPECT_TRUE(has_code_cache);
}

TEST_F(RuntimeTest, RequestsCountAndResponsesFlow) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  rt.app_init(assets_);
  for (int i = 0; i < 5; ++i) {
    const funcs::Response res = rt.handle(funcs::Request{});
    EXPECT_TRUE(res.ok());
  }
  EXPECT_EQ(rt.requests_served(), 5);
  EXPECT_GT(rt.last_service_time().to_millis(), 0.0);
}

TEST_F(RuntimeTest, AttachRestoredReadySkipsBootstrap) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = ManagedRuntime::attach_restored(
      kernel_, pid, exp::testbed_runtime(), spec, sim::Rng{3},
      /*warmed=*/false, assets_);
  EXPECT_EQ(rt.progress(), RuntimeProgress::kReady);
  EXPECT_THROW(rt.bootstrap(), std::logic_error);
  const funcs::Response res = rt.handle(funcs::Request{});
  EXPECT_TRUE(res.ok());
}

TEST_F(RuntimeTest, AttachRestoredWarmedFirstRequestIsFast) {
  const FunctionSpec spec = spec_with_classes();

  const os::Pid cold_pid = exec_process();
  ManagedRuntime cold = ManagedRuntime::attach_restored(
      kernel_, cold_pid, exp::testbed_runtime(), spec, sim::Rng{3},
      /*warmed=*/false, assets_);
  const sim::TimePoint t0 = sim_.now();
  (void)cold.handle(funcs::Request{});
  const double cold_first = (sim_.now() - t0).to_millis();

  const os::Pid warm_pid = exec_process();
  ManagedRuntime warm = ManagedRuntime::attach_restored(
      kernel_, warm_pid, exp::testbed_runtime(), spec, sim::Rng{3},
      /*warmed=*/true, assets_);
  const sim::TimePoint t1 = sim_.now();
  (void)warm.handle(funcs::Request{});
  const double warm_first = (sim_.now() - t1).to_millis();

  // The PB-Warmup snapshot already contains loaded + JITed code.
  EXPECT_GT(cold_first, warm_first * 10);
}

TEST_F(RuntimeTest, RestoredColdPathCheaperThanVanillaColdPath) {
  const FunctionSpec spec = spec_with_classes();

  const os::Pid vanilla_pid = exec_process();
  ManagedRuntime vanilla = fresh_runtime(spec, vanilla_pid);
  vanilla.bootstrap();
  vanilla.app_init(assets_);
  const sim::TimePoint t0 = sim_.now();
  (void)vanilla.handle(funcs::Request{});
  const double vanilla_first = (sim_.now() - t0).to_millis();

  const os::Pid restored_pid = exec_process();
  ManagedRuntime restored = ManagedRuntime::attach_restored(
      kernel_, restored_pid, exp::testbed_runtime(), spec, sim::Rng{3},
      /*warmed=*/false, assets_);
  const sim::TimePoint t1 = sim_.now();
  (void)restored.handle(funcs::Request{});
  const double restored_first = (sim_.now() - t1).to_millis();

  // Post-restore lazy loading uses the warm path (Table 1: PB-NOWarmup is
  // consistently below Vanilla).
  EXPECT_LT(restored_first, vanilla_first);
}

TEST_F(RuntimeTest, WarmupFlagCountsAsServedRequest) {
  const FunctionSpec spec = spec_with_classes();
  const os::Pid pid = exec_process();
  ManagedRuntime rt = ManagedRuntime::attach_restored(
      kernel_, pid, exp::testbed_runtime(), spec, sim::Rng{3},
      /*warmed=*/true, assets_);
  EXPECT_TRUE(rt.warmed());
  EXPECT_GE(rt.requests_served(), 1);
}

TEST_F(RuntimeTest, InitIoChargesFilesystemRead) {
  FunctionSpec spec = spec_with_classes();
  spec.init_io_path = "/registry/fn/photo.bin";
  spec.init_io_bytes = 1024 * 1024;
  kernel_.fs().create(spec.init_io_path, spec.init_io_bytes);

  const os::Pid pid = exec_process();
  ManagedRuntime rt = fresh_runtime(spec, pid);
  rt.bootstrap();
  rt.app_init(assets_);
  EXPECT_TRUE(kernel_.fs().is_cached(spec.init_io_path));
}

TEST_F(RuntimeTest, ExtraResidentGrowsSnapshotFootprint) {
  FunctionSpec lean = spec_with_classes();
  FunctionSpec fat = spec_with_classes();
  fat.init_extra_resident = 64ull * 1024 * 1024;

  const os::Pid lean_pid = exec_process();
  ManagedRuntime lean_rt = fresh_runtime(lean, lean_pid);
  lean_rt.bootstrap();
  lean_rt.app_init(assets_);

  const os::Pid fat_pid = exec_process();
  ManagedRuntime fat_rt = fresh_runtime(fat, fat_pid);
  fat_rt.bootstrap();
  fat_rt.app_init(assets_);

  EXPECT_GE(kernel_.process(fat_pid).mm().resident_bytes(),
            kernel_.process(lean_pid).mm().resident_bytes() +
                64ull * 1024 * 1024);
}

}  // namespace
}  // namespace prebake::rt
