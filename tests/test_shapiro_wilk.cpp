#include "stats/shapiro_wilk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "stats/normal.hpp"

namespace prebake::stats {
namespace {

std::vector<double> normal_sample(int n, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = rng.normal(50.0, 4.0);
  return xs;
}

TEST(ShapiroWilk, AcceptsNormalSample) {
  const auto xs = normal_sample(200, 7);
  const auto res = shapiro_wilk(xs);
  EXPECT_GT(res.w, 0.98);
  EXPECT_GT(res.p_value, 0.05);
}

TEST(ShapiroWilk, RejectsExponentialSample) {
  sim::Rng rng{11};
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.exponential(3.0);
  const auto res = shapiro_wilk(xs);
  EXPECT_LT(res.w, 0.95);
  EXPECT_LT(res.p_value, 0.001);
}

TEST(ShapiroWilk, RejectsUniformSampleAtLargeN) {
  sim::Rng rng{12};
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.uniform();
  EXPECT_LT(shapiro_wilk(xs).p_value, 0.01);
}

TEST(ShapiroWilk, RejectsBimodalSample) {
  sim::Rng rng{13};
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(12.0, 1.0));
  EXPECT_LT(shapiro_wilk(xs).p_value, 1e-6);
}

TEST(ShapiroWilk, RejectsLognormalStartupLikeSample) {
  // Start-up latencies are right-skewed — the paper's motivation for using
  // the non-parametric Wilcoxon-Mann-Whitney test.
  sim::Rng rng{14};
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.lognormal_median(100.0, 0.5);
  EXPECT_LT(shapiro_wilk(xs).p_value, 0.001);
}

TEST(ShapiroWilk, WIsNearOneForPerfectlyNormalQuantiles) {
  // Deterministic "ideal" normal sample: the quantile function evaluated on
  // an equally spaced grid, i.e. exactly normal-shaped data.
  std::vector<double> xs;
  const int n = 99;
  for (int i = 1; i <= n; ++i)
    xs.push_back(50.0 +
                 4.0 * normal_quantile(static_cast<double>(i) / (n + 1)));
  const auto res = shapiro_wilk(xs);
  EXPECT_GT(res.w, 0.995);
  EXPECT_GT(res.p_value, 0.5);
}

TEST(ShapiroWilk, SmallSampleN3) {
  const auto res = shapiro_wilk(std::vector<double>{1.0, 2.0, 3.1});
  EXPECT_GT(res.w, 0.9);
  EXPECT_GE(res.p_value, 0.0);
  EXPECT_LE(res.p_value, 1.0);
}

TEST(ShapiroWilk, SmallSampleRangeN4To11) {
  for (int n = 4; n <= 11; ++n) {
    const auto xs = normal_sample(n, static_cast<std::uint64_t>(n));
    const auto res = shapiro_wilk(xs);
    EXPECT_GT(res.w, 0.5) << "n=" << n;
    EXPECT_GE(res.p_value, 0.0) << "n=" << n;
    EXPECT_LE(res.p_value, 1.0) << "n=" << n;
  }
}

TEST(ShapiroWilk, WStaysInUnitInterval) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto res = shapiro_wilk(normal_sample(50, seed));
    EXPECT_GT(res.w, 0.0);
    EXPECT_LE(res.w, 1.0);
  }
}

TEST(ShapiroWilk, TooSmallThrows) {
  EXPECT_THROW(shapiro_wilk(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(ShapiroWilk, ConstantSampleThrows) {
  EXPECT_THROW(shapiro_wilk(std::vector<double>(10, 3.0)),
               std::invalid_argument);
}

TEST(ShapiroWilk, ScaleAndShiftInvariant) {
  const auto xs = normal_sample(150, 99);
  std::vector<double> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = 1000.0 + 0.001 * xs[i];
  EXPECT_NEAR(shapiro_wilk(xs).w, shapiro_wilk(ys).w, 1e-9);
}

}  // namespace
}  // namespace prebake::stats
