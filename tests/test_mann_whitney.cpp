#include "stats/mann_whitney.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace prebake::stats {
namespace {

TEST(MannWhitney, IdenticalDistributionsNotSignificant) {
  sim::Rng rng{5};
  std::vector<double> xs(200), ys(200);
  for (double& x : xs) x = rng.normal(10.0, 1.0);
  for (double& y : ys) y = rng.normal(10.0, 1.0);
  const auto res = mann_whitney_u(xs, ys);
  EXPECT_GT(res.p_value, 0.05);
}

TEST(MannWhitney, ShiftedDistributionsSignificant) {
  sim::Rng rng{6};
  std::vector<double> xs(200), ys(200);
  for (double& x : xs) x = rng.normal(10.0, 1.0);
  for (double& y : ys) y = rng.normal(11.0, 1.0);
  const auto res = mann_whitney_u(xs, ys);
  EXPECT_LT(res.p_value, 1e-6);
  EXPECT_LT(res.z, 0.0);  // xs stochastically smaller
}

TEST(MannWhitney, DirectionOfZ) {
  const std::vector<double> lo{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> hi{11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  EXPECT_LT(mann_whitney_u(lo, hi).z, 0.0);
  EXPECT_GT(mann_whitney_u(hi, lo).z, 0.0);
}

TEST(MannWhitney, CompleteSeparationSmallSample) {
  const std::vector<double> lo{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> hi{9, 10, 11, 12, 13, 14, 15, 16};
  const auto res = mann_whitney_u(lo, hi);
  EXPECT_DOUBLE_EQ(res.u, 0.0);
  EXPECT_LT(res.p_value, 0.01);
}

TEST(MannWhitney, UStatisticSumsToProduct) {
  sim::Rng rng{7};
  std::vector<double> xs(30), ys(40);
  for (double& x : xs) x = rng.uniform();
  for (double& y : ys) y = rng.uniform();
  const double u1 = mann_whitney_u(xs, ys).u;
  const double u2 = mann_whitney_u(ys, xs).u;
  EXPECT_DOUBLE_EQ(u1 + u2, 30.0 * 40.0);
}

TEST(MannWhitney, HandlesTies) {
  const std::vector<double> xs{1, 2, 2, 3, 3, 3};
  const std::vector<double> ys{2, 3, 3, 4, 4, 4};
  const auto res = mann_whitney_u(xs, ys);
  EXPECT_GE(res.p_value, 0.0);
  EXPECT_LE(res.p_value, 1.0);
}

TEST(MannWhitney, AllTiedGivesPOne) {
  const std::vector<double> xs(10, 5.0), ys(10, 5.0);
  const auto res = mann_whitney_u(xs, ys);
  EXPECT_DOUBLE_EQ(res.p_value, 1.0);
  EXPECT_DOUBLE_EQ(res.z, 0.0);
}

TEST(MannWhitney, EmptySampleThrows) {
  EXPECT_THROW(mann_whitney_u(std::vector<double>{}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(HodgesLehmann, PointEstimateOfShift) {
  sim::Rng rng{8};
  std::vector<double> xs(150), ys(150);
  for (double& x : xs) x = rng.normal(110.0, 2.0);
  for (double& y : ys) y = rng.normal(100.0, 2.0);
  const auto est = hodges_lehmann_shift(xs, ys);
  EXPECT_NEAR(est.point, 10.0, 0.6);
  EXPECT_LT(est.lo, est.point);
  EXPECT_GT(est.hi, est.point);
  EXPECT_NEAR(est.hi - est.lo, 0.9, 0.7);  // CI is tight at n=150
}

TEST(HodgesLehmann, CoversTrueShift) {
  // The paper's NOOP median difference CI was [40.35, 42.29] ms; replicate
  // the structure: two samples ~41 ms apart.
  sim::Rng rng{9};
  std::vector<double> vanilla(200), prebaked(200);
  for (double& v : vanilla) v = rng.lognormal_median(103.0, 0.01);
  for (double& p : prebaked) p = rng.lognormal_median(62.0, 0.01);
  const auto est = hodges_lehmann_shift(vanilla, prebaked);
  EXPECT_GT(est.lo, 38.0);
  EXPECT_LT(est.hi, 44.0);
  EXPECT_NEAR(est.point, 41.0, 1.0);
}

TEST(HodgesLehmann, ZeroShift) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto est = hodges_lehmann_shift(xs, xs);
  EXPECT_DOUBLE_EQ(est.point, 0.0);
  EXPECT_LE(est.lo, 0.0);
  EXPECT_GE(est.hi, 0.0);
}

TEST(HodgesLehmann, BadConfidenceThrows) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(hodges_lehmann_shift(xs, xs, 0.0), std::invalid_argument);
  EXPECT_THROW(hodges_lehmann_shift(xs, xs, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace prebake::stats
