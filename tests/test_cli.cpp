#include "exp/cli.hpp"

#include <gtest/gtest.h>

namespace prebake::exp {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs{static_cast<int>(full.size()), full.data()};
}

TEST(Cli, PositionalArguments) {
  const CliArgs args = parse({"startup", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "startup");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Cli, FlagWithSeparateValue) {
  const CliArgs args = parse({"--function", "noop"});
  EXPECT_EQ(args.get_or("function", "x"), "noop");
}

TEST(Cli, FlagWithEqualsValue) {
  const CliArgs args = parse({"--reps=50"});
  EXPECT_EQ(args.get_int_or("reps", 0), 50);
}

TEST(Cli, BareSwitch) {
  const CliArgs args = parse({"--first-response", "--function", "noop"});
  EXPECT_TRUE(args.has("first-response"));
  EXPECT_EQ(args.get("first-response").value(), "");
}

TEST(Cli, SwitchFollowedByFlag) {
  const CliArgs args = parse({"--verbose", "--seed", "7"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int_or("seed", 0), 7);
}

TEST(Cli, MissingFlagFallsBack) {
  const CliArgs args = parse({});
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_or("x", "def"), "def");
  EXPECT_EQ(args.get_int_or("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double_or("f", 1.5), 1.5);
}

TEST(Cli, NumericParsing) {
  const CliArgs args = parse({"--n=12", "--f=2.5"});
  EXPECT_EQ(args.get_int_or("n", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double_or("f", 0), 2.5);
}

TEST(Cli, BadNumberThrows) {
  const CliArgs args = parse({"--n=abc"});
  EXPECT_THROW(args.get_int_or("n", 0), std::invalid_argument);
}

TEST(Cli, DoubleDashSeparator) {
  const CliArgs args = parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(args.has("a"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "--not-a-flag");
}

TEST(Cli, UnconsumedTracking) {
  const CliArgs args = parse({"--used=1", "--unused=2"});
  (void)args.get("used");
  const auto leftover = args.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "unused");
}

TEST(Cli, LastOccurrenceWins) {
  const CliArgs args = parse({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int_or("n", 0), 2);
}

}  // namespace
}  // namespace prebake::exp
