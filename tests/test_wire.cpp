#include "criu/wire.hpp"

#include <gtest/gtest.h>

#include "criu/crc32.hpp"

namespace prebake::criu {
namespace {

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  // Empty input -> 0.
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, SeedChaining) {
  const std::uint8_t a[] = {'a', 'b'};
  const std::uint8_t b[] = {'c', 'd'};
  const std::uint8_t all[] = {'a', 'b', 'c', 'd'};
  EXPECT_EQ(crc32(b, crc32(a)), crc32(all));
}

TEST(Crc32, SensitiveToOrder) {
  const std::uint8_t ab[] = {'a', 'b'};
  const std::uint8_t ba[] = {'b', 'a'};
  EXPECT_NE(crc32(ab), crc32(ba));
}

TEST(Wire, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);

  Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.done());
}

TEST(Wire, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Wire, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string("with\0nul", 8));
  Reader r{w.bytes()};
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("with\0nul", 8));
}

TEST(Wire, RawRoundTrip) {
  Writer w;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.raw(payload);
  Reader r{w.bytes()};
  EXPECT_EQ(r.raw(5), payload);
}

TEST(Wire, ShortReadThrows) {
  Writer w;
  w.u16(7);
  Reader r{w.bytes()};
  (void)r.u8();
  EXPECT_THROW(r.u32(), std::runtime_error);
}

TEST(Wire, TruncatedStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  Reader r{w.bytes()};
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Wire, RemainingCountsDown) {
  Writer w;
  w.u64(1);
  Reader r{w.bytes()};
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace prebake::criu
