// The content-addressed page store (DESIGN.md §6f): unit behavior, the
// delta-aware registry transfer, and COW template restores.
#include "criu/page_store.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "criu/dump.hpp"
#include "criu/restore.hpp"

namespace prebake::criu {
namespace {

using os::kPageSize;

// --- store unit behavior ---------------------------------------------------

TEST(StoreTest, InsertTracksUniquePages) {
  PageStore store;
  const std::uint64_t digests[] = {1, 2, 3, 2, 1};
  EXPECT_EQ(store.missing_unique_pages(digests), 3u);
  EXPECT_EQ(store.missing_unique_bytes(digests), 3 * kPageSize);
  EXPECT_EQ(store.insert(digests), 3u);
  EXPECT_EQ(store.stored_pages(), 3u);
  EXPECT_EQ(store.stored_bytes(), 3 * kPageSize);
  EXPECT_TRUE(store.contains(2));
  EXPECT_FALSE(store.contains(9));
  EXPECT_EQ(store.missing_unique_pages(digests), 0u);
  // Re-inserting known pages adds nothing.
  EXPECT_EQ(store.insert(digests), 0u);
  EXPECT_EQ(store.stored_pages(), 3u);
}

TEST(StoreTest, PinUnpinRefcounts) {
  PageStore store;
  const std::uint64_t digests[] = {10, 20};
  store.pin(digests);
  store.pin(digests);
  EXPECT_EQ(store.refcount(10), 2u);
  store.unpin(digests);
  EXPECT_EQ(store.refcount(10), 1u);
  store.unpin(digests);
  EXPECT_EQ(store.refcount(10), 0u);
  EXPECT_TRUE(store.contains(10));  // unpinned but still resident
  EXPECT_THROW(store.unpin(digests), std::logic_error);
  EXPECT_EQ(store.refcount(999), 0u);
}

TEST(StoreTest, EvictionIsRefcountThenLru) {
  PageStore store;
  const std::uint64_t pinned[] = {1};
  const std::uint64_t old_pages[] = {2, 3};
  const std::uint64_t new_pages[] = {4, 5};
  store.pin(pinned);
  store.insert(old_pages);
  store.insert(new_pages);
  // Room for three pages: both LRU victims are unpinned "old" pages even
  // though the pinned page is older still.
  store.set_capacity(3 * kPageSize);
  EXPECT_EQ(store.stored_pages(), 3u);
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_FALSE(store.contains(3));
  EXPECT_TRUE(store.contains(4));
  EXPECT_TRUE(store.contains(5));
  EXPECT_EQ(store.stats().evicted_pages, 2u);
}

TEST(StoreTest, PinnedPagesMayExceedBudget) {
  PageStore store;
  std::vector<std::uint64_t> digests(8);
  std::iota(digests.begin(), digests.end(), 100);
  store.pin(digests);
  store.set_capacity(2 * kPageSize);
  EXPECT_EQ(store.stored_pages(), 8u);  // nothing evictable
  store.unpin(digests);
  EXPECT_EQ(store.stored_pages(), 2u);  // now the budget applies
}

TEST(TemplateTest, RegisterPinsAndDropUnpins) {
  PageStore store;
  PageStore::TemplateInfo info;
  info.pid = 42;
  info.digests = {7, 8, 9};
  store.register_template("snap", std::move(info));
  EXPECT_TRUE(store.has_template("snap"));
  EXPECT_EQ(store.template_count(), 1u);
  EXPECT_EQ(store.refcount(7), 1u);
  EXPECT_EQ(store.stats().templates_materialized, 1u);
  ASSERT_NE(store.find_template("snap"), nullptr);
  EXPECT_EQ(store.find_template("snap")->pid, 42);
  EXPECT_EQ(store.find_template("nope"), nullptr);

  PageStore::TemplateInfo dup;
  EXPECT_THROW(store.register_template("snap", std::move(dup)),
               std::logic_error);

  EXPECT_THROW(store.clear_pages(), std::logic_error);  // template still live
  EXPECT_EQ(store.drop_template("snap"), 42);
  EXPECT_EQ(store.drop_template("snap"), os::kNoPid);
  EXPECT_EQ(store.refcount(7), 0u);
  store.clear_pages();
  EXPECT_EQ(store.stored_pages(), 0u);
}

TEST(TemplateTest, DropAllReturnsEveryPid) {
  PageStore store;
  PageStore::TemplateInfo a;
  a.pid = 10;
  store.register_template("a", std::move(a));
  PageStore::TemplateInfo b;
  b.pid = 11;
  store.register_template("b", std::move(b));
  const std::vector<os::Pid> pids = store.drop_all_templates();
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_EQ(pids[0], 10);
  EXPECT_EQ(pids[1], 11);
  EXPECT_EQ(store.template_count(), 0u);
}

// --- delta transfer + templates through the restore engine ------------------

class StoreRestoreTest : public ::testing::Test {
 protected:
  StoreRestoreTest() : kernel_{sim_} {
    kernel_.fs().create("/bin/app", 2 * 1024 * 1024);
  }

  // A process whose big heap regenerates from `heap_seed`: targets sharing
  // the seed share those page contents (the cross-function runtime base).
  os::Pid make_target(std::uint64_t heap_seed, std::uint64_t extra_seed = 0,
                      std::uint64_t heap_pages = 384) {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.exec(pid, "/bin/app", {"/bin/app"});
    const os::VmaId heap = kernel_.mmap(
        pid, kPageSize * (heap_pages + 128), os::Prot::kReadWrite,
        os::VmaKind::kAnon, "[big-heap]",
        std::make_shared<os::PatternSource>(heap_seed), false);
    kernel_.fault_in(pid, heap, 0, heap_pages);
    if (extra_seed != 0) {
      const os::VmaId extra = kernel_.mmap(
          pid, kPageSize * 16, os::Prot::kReadWrite, os::VmaKind::kAnon,
          "[app-delta]", std::make_shared<os::PatternSource>(extra_seed),
          false);
      kernel_.fault_in_all(pid, extra);
    }
    return pid;
  }

  DumpResult dump_to(os::Pid pid, const std::string& prefix) {
    DumpOptions opts;
    opts.fs_prefix = prefix;
    return Dumper{kernel_}.dump(pid, opts);
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
};

TEST_F(StoreRestoreTest, StoreSecondFetchShipsOnlyDigests) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/registry/a/");
  const std::span<const std::uint64_t> digests =
      dump.images.decoded().pages->digests();
  const std::uint64_t digest_bytes = digests.size() * 8;

  PageStore store;
  const std::uint64_t unique = store.missing_unique_pages(digests);
  RestoreOptions opts;
  opts.fs_prefix = "/registry/a/";
  opts.remote_fetch = true;
  opts.page_store = &store;  // no store_key: delta only, no templates

  kernel_.fs().drop_caches();
  const RestoreResult first = Restorer{kernel_}.restore(dump.images, opts);
  // Cold store: the negotiation saves nothing, costs the digest list.
  EXPECT_EQ(first.store_hit_pages, digests.size() - unique);
  EXPECT_EQ(first.store_delta_bytes, unique * kPageSize);
  EXPECT_FALSE(first.template_materialized);
  EXPECT_EQ(store.stored_pages(), digests.size());

  // Same node fetches again after losing its page cache: every payload page
  // is already in the store, so only the digest list crosses the wire.
  kernel_.fs().drop_caches();
  const RestoreResult second = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_EQ(second.store_delta_bytes, 0u);
  EXPECT_EQ(second.store_hit_pages, digests.size());
  EXPECT_EQ(second.remote_bytes,
            first.remote_bytes - first.store_delta_bytes);
  EXPECT_GE(second.remote_bytes, digest_bytes);
  EXPECT_EQ(store.stats().delta_bytes, first.store_delta_bytes);
}

TEST_F(StoreRestoreTest, StoreCrossFunctionDeltaIsOnlyTheAppPages) {
  // Two "functions" sharing the runtime-base heap seed; the second differs
  // only in its app VMA (plus per-pid stack/heap noise).
  const DumpResult base = dump_to(make_target(0xBA5E), "/registry/base/");
  const DumpResult app =
      dump_to(make_target(0xBA5E, 0xA44), "/registry/app/");

  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/registry/base/";
  opts.remote_fetch = true;
  opts.page_store = &store;
  kernel_.fs().drop_caches();
  Restorer{kernel_}.restore(base.images, opts);

  opts.fs_prefix = "/registry/app/";
  kernel_.fs().drop_caches();
  const RestoreResult restored = Restorer{kernel_}.restore(app.images, opts);
  const std::uint64_t payload =
      app.images.decoded().pages->digests().size() * kPageSize;
  EXPECT_GT(restored.store_hit_pages, 0u);
  EXPECT_LT(restored.store_delta_bytes, payload / 2);
  EXPECT_GT(restored.store_delta_bytes, 0u);  // the app pages are new
}

TEST_F(StoreRestoreTest, StoreChainRestoreFetchesOnlyFinalDelta) {
  // Pre-dump chain in CRIU's --prev-images-dir layout: the parent link's
  // files live under parent/ inside the final link's registry directory.
  const os::Pid pid = make_target(0xFEED);
  DumpOptions pre;
  pre.pre_dump = true;
  pre.fs_prefix = "/registry/chain/parent/";
  const DumpResult parent = Dumper{kernel_}.dump(pid, pre);
  // New app state appears between the pre-dump and the final dump.
  const os::VmaId fresh = kernel_.mmap(
      pid, kPageSize * 16, os::Prot::kReadWrite, os::VmaKind::kAnon,
      "[app-delta]", std::make_shared<os::PatternSource>(0xD1FF), false);
  kernel_.fault_in_all(pid, fresh, /*write=*/true);
  DumpOptions fin;
  fin.parent = &parent.images;
  fin.fs_prefix = "/registry/chain/";
  const DumpResult child = Dumper{kernel_}.dump(pid, fin);

  // The pre-dump's pages are already materialized on this node (the
  // pre-dump transfer itself put them there): only the final dump's delta
  // should cross the wire.
  PageStore store;
  store.insert(parent.images.decoded().pages->digests());
  RestoreOptions opts;
  opts.fs_prefix = "/registry/chain/";
  opts.remote_fetch = true;
  opts.page_store = &store;
  kernel_.fs().drop_caches();
  const ImageDir* chain[] = {&parent.images, &child.images};
  const RestoreResult restored = Restorer{kernel_}.restore_chain(chain, opts);

  const std::uint64_t pre_pages = parent.images.decoded().pages->digests().size();
  const std::uint64_t fin_pages = child.images.decoded().pages->digests().size();
  // Every pre-dump page was a store hit; only the final delta was fetched.
  EXPECT_GE(restored.store_hit_pages, pre_pages);
  EXPECT_GT(restored.store_delta_bytes, 0u);
  EXPECT_LE(restored.store_delta_bytes, fin_pages * kPageSize);
  EXPECT_LT(restored.store_delta_bytes, (pre_pages + fin_pages) * kPageSize);
}

TEST_F(StoreRestoreTest, StoreDisabledMatchesLegacyTiming) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/snap/legacy/");
  RestoreOptions opts;
  opts.fs_prefix = "/snap/legacy/";

  kernel_.fs().drop_caches();
  const sim::TimePoint t0 = sim_.now();
  const RestoreResult without = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration legacy = sim_.now() - t0;
  kernel_.kill_process(without.pid);
  kernel_.reap(without.pid);

  // A local (non-remote) restore with a store attached but no template key
  // charges exactly the same time: the store only records digests.
  PageStore store;
  opts.page_store = &store;
  kernel_.fs().drop_caches();
  const sim::TimePoint t1 = sim_.now();
  const RestoreResult with = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_EQ((sim_.now() - t1).nanos_count(), legacy.nanos_count());
  EXPECT_EQ(with.store_hit_pages, 0u);
  EXPECT_EQ(with.store_delta_bytes, 0u);
  EXPECT_FALSE(with.template_clone);
  EXPECT_GT(store.stored_pages(), 0u);
}

// --- COW template restores --------------------------------------------------

class TemplateRestoreTest : public StoreRestoreTest {};

TEST_F(TemplateRestoreTest, TemplateFirstRestoreMaterializesSecondClones) {
  // A big enough snapshot that the fixed CLONE cost is well under a tenth of
  // the full restore cost (with a 384-page target the 300us clone_call alone
  // would dominate, which is exactly what the paper's Figure 4 shows).
  const DumpResult dump = dump_to(make_target(0xFEED, 0, 16384), "/snap/tpl/");
  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/snap/tpl/";
  opts.page_store = &store;
  opts.store_key = "/snap/tpl/";

  const sim::TimePoint t0 = sim_.now();
  const RestoreResult first = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration first_cost = sim_.now() - t0;
  EXPECT_TRUE(first.template_materialized);
  EXPECT_FALSE(first.template_clone);
  ASSERT_TRUE(store.has_template("/snap/tpl/"));

  // The template is a frozen copy; the caller got a live clone of it.
  const os::Pid tpl = store.find_template("/snap/tpl/")->pid;
  ASSERT_NE(tpl, first.pid);
  EXPECT_EQ(kernel_.process(tpl).state(), os::ProcState::kFrozen);
  EXPECT_NE(kernel_.process(tpl).name().find("[template]"), std::string::npos);
  EXPECT_EQ(kernel_.process(first.pid).state(), os::ProcState::kRunning);
  EXPECT_EQ(kernel_.process(first.pid).mm().resident_pages(),
            kernel_.process(tpl).mm().resident_pages());

  const sim::TimePoint t1 = sim_.now();
  const RestoreResult second = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration clone_cost = sim_.now() - t1;
  EXPECT_TRUE(second.template_clone);
  EXPECT_EQ(second.bytes_read, 0u);
  EXPECT_EQ(second.remote_bytes, 0u);
  EXPECT_GT(second.pages_restored, 0u);  // clone shares all resident pages
  EXPECT_EQ(kernel_.process(second.pid).mm().resident_pages(),
            kernel_.process(tpl).mm().resident_pages());
  EXPECT_EQ(store.stats().template_clones, 1u);
  // The whole point: Nth replica start costs ~CLONE, not a full restore.
  EXPECT_LT(clone_cost.nanos_count(), first_cost.nanos_count() / 10);
}

TEST_F(TemplateRestoreTest, TemplateCowWriteChargesPageCopyOnce) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/snap/cow/");
  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/snap/cow/";
  opts.page_store = &store;
  opts.store_key = "/snap/cow/";
  Restorer{kernel_}.restore(dump.images, opts);
  const RestoreResult clone = Restorer{kernel_}.restore(dump.images, opts);
  ASSERT_TRUE(clone.template_clone);

  os::Process& proc = kernel_.process(clone.pid);
  const std::uint64_t shared_before = proc.mm().cow_pages();
  EXPECT_EQ(shared_before, proc.mm().resident_pages());
  os::VmaId heap = 0;
  for (const os::Vma& v : proc.mm().vmas())
    if (v.name == "[big-heap]") heap = v.id;
  ASSERT_NE(heap, 0u);

  const sim::TimePoint t0 = sim_.now();
  kernel_.fault_in(clone.pid, heap, 0, 4, /*write=*/true);
  const sim::Duration write_cost = sim_.now() - t0;
  EXPECT_EQ(write_cost.nanos_count(),
            (kernel_.costs().memcpy_cost(kPageSize) * 4.0).nanos_count());
  EXPECT_EQ(proc.mm().cow_pages(), shared_before - 4);

  // The copies are made; writing the same pages again is free.
  const sim::TimePoint t1 = sim_.now();
  kernel_.fault_in(clone.pid, heap, 0, 4, /*write=*/true);
  EXPECT_EQ((sim_.now() - t1).nanos_count(), 0);
  // The frozen template never shares in the clone's direction.
  const os::Pid tpl = store.find_template("/snap/cow/")->pid;
  EXPECT_EQ(kernel_.process(tpl).mm().cow_pages(), 0u);
}

TEST_F(TemplateRestoreTest, TemplateVerifyPagesPassesAfterCowWrites) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/snap/verify/");
  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/snap/verify/";
  opts.page_store = &store;
  opts.store_key = "/snap/verify/";
  Restorer{kernel_}.restore(dump.images, opts);

  // Clone a replica and break COW on part of its heap.
  const RestoreResult writer = Restorer{kernel_}.restore(dump.images, opts);
  os::Process& wproc = kernel_.process(writer.pid);
  for (const os::Vma& v : wproc.mm().vmas())
    if (v.name == "[big-heap]")
      kernel_.fault_in(writer.pid, v.id, 0, 16, /*write=*/true);

  // A verified clone still checks out: the template's pages are immutable,
  // and COW isolated the writer's copies from everyone else.
  RestoreOptions verify = opts;
  verify.verify_pages = true;
  const RestoreResult checked = Restorer{kernel_}.restore(dump.images, verify);
  EXPECT_TRUE(checked.template_clone);
  EXPECT_GT(checked.duration.nanos_count(), 0);  // verification charges page reads
}

TEST_F(TemplateRestoreTest, TemplateDroppedTemplateRematerializes) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/snap/drop/");
  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/snap/drop/";
  opts.page_store = &store;
  opts.store_key = "/snap/drop/";
  Restorer{kernel_}.restore(dump.images, opts);

  const os::Pid tpl = store.drop_template("/snap/drop/");
  ASSERT_NE(tpl, os::kNoPid);
  kernel_.kill_process(tpl);
  kernel_.reap(tpl);

  const RestoreResult again = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_TRUE(again.template_materialized);
  EXPECT_FALSE(again.template_clone);
  EXPECT_TRUE(store.has_template("/snap/drop/"));
  EXPECT_EQ(store.stats().templates_materialized, 2u);
}

// Regression (DESIGN.md §6j): requesting a template clone together with
// non-eager paging used to silently skip the template; it is now a typed,
// non-retryable config error diagnosed before any work happens.
TEST_F(TemplateRestoreTest, TemplateWithNonEagerPagingIsConfigError) {
  const DumpResult dump = dump_to(make_target(0xFEED), "/snap/lazy/");
  PageStore store;
  RestoreOptions opts;
  opts.fs_prefix = "/snap/lazy/";
  opts.page_store = &store;
  opts.store_key = "/snap/lazy/";
  opts.paging = PagingPolicy::lazy();
  try {
    Restorer{kernel_}.restore(dump.images, opts);
    FAIL() << "template clone + lazy paging was accepted";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kConfig);
    EXPECT_FALSE(e.transient());
  }
  // The rejected restore did no work against the store...
  EXPECT_FALSE(store.has_template("/snap/lazy/"));
  EXPECT_EQ(store.stored_pages(), 0u);
  // ...and the same options without the template request (delta-only store
  // use) restore lazily as before.
  opts.store_key.clear();
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);
  ASSERT_NE(restored.lazy_server, nullptr);
  EXPECT_FALSE(restored.template_materialized);
  EXPECT_FALSE(store.has_template("/snap/lazy/"));
}

}  // namespace
}  // namespace prebake::criu
