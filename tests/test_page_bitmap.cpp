#include "os/page_bitmap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace prebake::os {
namespace {

using BitRun = std::pair<std::uint64_t, std::uint64_t>;

std::vector<BitRun> runs_of(const PageBitmap& bm, std::uint64_t first,
                         std::uint64_t n) {
  std::vector<BitRun> out;
  bm.for_each_set_run(first, n,
                      [&out](std::uint64_t f, std::uint64_t c) {
                        out.emplace_back(f, c);
                      });
  return out;
}

TEST(PageBitmap, AssignAndIndex) {
  PageBitmap bm{100, false};
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_FALSE(bm.any());
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(99);
  EXPECT_TRUE(bm[0]);
  EXPECT_TRUE(bm[63]);
  EXPECT_TRUE(bm[64]);
  EXPECT_TRUE(bm[99]);
  EXPECT_FALSE(bm[1]);
  EXPECT_EQ(bm.count(), 4u);
  EXPECT_TRUE(bm.any());
}

TEST(PageBitmap, AssignTrueMasksTail) {
  // A 70-bit all-true bitmap must leave bits 70..127 of the last word zero,
  // or count() (whole-word popcounts) over-counts.
  const PageBitmap bm{70, true};
  EXPECT_EQ(bm.count(), 70u);
  EXPECT_EQ(bm.count_range(0, 70), 70u);
}

TEST(PageBitmap, SetRangeAcrossWords) {
  PageBitmap bm{256, false};
  bm.set_range(60, 10);  // straddles word 0/1
  EXPECT_EQ(bm.count(), 10u);
  EXPECT_FALSE(bm[59]);
  EXPECT_TRUE(bm[60]);
  EXPECT_TRUE(bm[69]);
  EXPECT_FALSE(bm[70]);
  bm.set_range(0, 256);
  EXPECT_EQ(bm.count(), 256u);
  bm.set_range(64, 128, false);  // clear whole middle words
  EXPECT_EQ(bm.count(), 128u);
  EXPECT_TRUE(bm[63]);
  EXPECT_FALSE(bm[64]);
  EXPECT_FALSE(bm[191]);
  EXPECT_TRUE(bm[192]);
}

TEST(PageBitmap, SetRangeClampsPastEnd) {
  PageBitmap bm{10, false};
  bm.set_range(6, 100);
  EXPECT_EQ(bm.count(), 4u);
  bm.set_range(10, 5);  // fully out of range: no-op
  EXPECT_EQ(bm.count(), 4u);
}

TEST(PageBitmap, CountRange) {
  PageBitmap bm{300, false};
  bm.set_range(10, 100);
  EXPECT_EQ(bm.count_range(0, 300), 100u);
  EXPECT_EQ(bm.count_range(10, 100), 100u);
  EXPECT_EQ(bm.count_range(0, 10), 0u);
  EXPECT_EQ(bm.count_range(50, 10), 10u);
  EXPECT_EQ(bm.count_range(105, 50), 5u);
  EXPECT_EQ(bm.count_range(110, 0), 0u);
  EXPECT_EQ(bm.count_range(290, 100), 0u);  // clamped
}

TEST(PageBitmap, ForEachSetRunFindsMaximalRuns) {
  PageBitmap bm{200, false};
  bm.set_range(3, 4);     // [3, 7)
  bm.set(63);             // single bit at a word boundary
  bm.set_range(64, 70);   // [64, 134) — adjacent to 63: one merged run
  bm.set(199);
  const std::vector<BitRun> rs = runs_of(bm, 0, 200);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0], BitRun(3, 4));
  EXPECT_EQ(rs[1], BitRun(63, 71));
  EXPECT_EQ(rs[2], BitRun(199, 1));
}

TEST(PageBitmap, ForEachSetRunWindowed) {
  PageBitmap bm{128, true};
  // A window in the middle of an all-set bitmap yields exactly the window.
  const std::vector<BitRun> rs = runs_of(bm, 30, 50);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0], BitRun(30, 50));
  // Empty window.
  EXPECT_TRUE(runs_of(bm, 128, 10).empty());
}

TEST(PageBitmap, MatchesReferenceOnMixedPattern) {
  // Cross-check bulk ops against a bit-at-a-time reference.
  PageBitmap bm{517, false};
  std::vector<bool> ref(517, false);
  std::uint64_t x = 0x243F6A8885A308D3ULL;
  for (int i = 0; i < 40; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const std::uint64_t first = x % 517;
    const std::uint64_t n = (x >> 32) % 90;
    const bool value = (x >> 17) & 1;
    bm.set_range(first, n, value);
    for (std::uint64_t p = first; p < std::min<std::uint64_t>(first + n, 517); ++p)
      ref[p] = value;
  }
  std::uint64_t want = 0;
  for (std::uint64_t p = 0; p < 517; ++p) {
    EXPECT_EQ(bm[p], ref[p]) << "bit " << p;
    want += ref[p] ? 1 : 0;
  }
  EXPECT_EQ(bm.count(), want);
  EXPECT_EQ(bm.count_range(100, 300),
            static_cast<std::uint64_t>(
                std::count(ref.begin() + 100, ref.begin() + 400, true)));
  // Runs reconstruct the exact bit pattern.
  PageBitmap rebuilt{517, false};
  bm.for_each_set_run(0, 517, [&rebuilt](std::uint64_t f, std::uint64_t n) {
    rebuilt.set_range(f, n);
  });
  EXPECT_EQ(rebuilt, bm);
}

TEST(PageBitmap, Equality) {
  PageBitmap a{64, false};
  PageBitmap b{64, false};
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace prebake::os
