#include "os/page_source.hpp"

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

namespace prebake::os {
namespace {

using PageBuf = std::array<std::uint8_t, kPageSize>;

PageBuf fill_page(const PageSource& src, std::uint64_t idx) {
  PageBuf buf{};
  src.fill(idx, std::span<std::uint8_t, kPageSize>{buf});
  return buf;
}

TEST(BufferSource, RoundTripsBytes) {
  std::vector<std::uint8_t> bytes(kPageSize * 2);
  std::iota(bytes.begin(), bytes.end(), 0);
  const BufferSource src{bytes};
  const PageBuf p0 = fill_page(src, 0);
  EXPECT_EQ(p0[0], 0);
  EXPECT_EQ(p0[255], 255);
  const PageBuf p1 = fill_page(src, 1);
  EXPECT_EQ(p1[0], bytes[kPageSize]);
}

TEST(BufferSource, PartialLastPageZeroPadded) {
  std::vector<std::uint8_t> bytes(100, 0xAB);
  const BufferSource src{std::move(bytes)};
  const PageBuf p = fill_page(src, 0);
  EXPECT_EQ(p[99], 0xAB);
  EXPECT_EQ(p[100], 0x00);
  EXPECT_EQ(p[kPageSize - 1], 0x00);
}

TEST(BufferSource, PagePastEndIsZero) {
  const BufferSource src{std::vector<std::uint8_t>(10, 0xFF)};
  const PageBuf p = fill_page(src, 5);
  for (std::uint8_t b : p) EXPECT_EQ(b, 0);
}

TEST(BufferSource, MutableBytesVisible) {
  BufferSource src{std::vector<std::uint8_t>(kPageSize, 0)};
  src.bytes()[7] = 0x42;
  EXPECT_EQ(fill_page(src, 0)[7], 0x42);
}

TEST(PatternSource, DeterministicForSameSeed) {
  const PatternSource a{123}, b{123};
  EXPECT_EQ(fill_page(a, 9), fill_page(b, 9));
}

TEST(PatternSource, DifferentPagesDiffer) {
  const PatternSource src{123};
  EXPECT_NE(fill_page(src, 0), fill_page(src, 1));
}

TEST(PatternSource, DifferentSeedsDiffer) {
  EXPECT_NE(fill_page(PatternSource{1}, 0), fill_page(PatternSource{2}, 0));
}

TEST(PatternSource, VersionChangesContents) {
  PatternSource src{55};
  const PageBuf before = fill_page(src, 3);
  src.bump_version();
  EXPECT_NE(before, fill_page(src, 3));
  EXPECT_EQ(src.version(), 1u);
}

TEST(PatternSource, DigestMatchesMaterializedHash) {
  const PatternSource src{77};
  const PageBuf p = fill_page(src, 4);
  EXPECT_EQ(src.page_digest(4),
            hash_page_bytes(std::span<const std::uint8_t, kPageSize>{p}));
}

TEST(HashPage, SensitiveToSingleBit) {
  PageBuf a{}, b{};
  b[1000] = 1;
  EXPECT_NE(hash_page_bytes(std::span<const std::uint8_t, kPageSize>{a}),
            hash_page_bytes(std::span<const std::uint8_t, kPageSize>{b}));
}

TEST(BufferSource, DigestDiffersAcrossContent) {
  const BufferSource a{std::vector<std::uint8_t>(kPageSize, 1)};
  const BufferSource b{std::vector<std::uint8_t>(kPageSize, 2)};
  EXPECT_NE(a.page_digest(0), b.page_digest(0));
}

}  // namespace
}  // namespace prebake::os
