#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace prebake::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{7};
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2, 3, 4, 5 hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{9};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  const int n = 100'000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng{12};
  const int n = 50'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedianPreserved) {
  Rng rng{13};
  const int n = 20'001;
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.lognormal_median(100.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 100.0, 2.5);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{14};
  for (int i = 0; i < 1'000; ++i)
    EXPECT_GT(rng.lognormal_median(5.0, 2.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng{15};
  const int n = 100'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ChildStreamsIndependentOfParentDraws) {
  Rng a{21};
  Rng b{21};
  (void)a.next_u64();  // advance parent a only
  Rng child_a = a.child(5);
  Rng child_b = b.child(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, ChildStreamsDifferByStreamId) {
  Rng root{21};
  Rng c1 = root.child(1), c2 = root.child(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{31};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s1 = 1234, s2 = 1234;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace prebake::sim
