// Zero-copy image path (DESIGN.md §6g): lifetime and aliasing rules of the
// borrowed ImageDir::PagesView spans.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "criu/image.hpp"
#include "os/page_source.hpp"

namespace prebake::criu {
namespace {

std::vector<std::uint64_t> pattern_digests(std::uint64_t seed, int n) {
  const os::PatternSource src{seed};
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(src.page_digest(static_cast<std::uint64_t>(i)));
  return out;
}

ImageDir make_dir(std::uint64_t seed, int pages) {
  PagesEntry entry;
  entry.mode = PayloadMode::kDigest;
  entry.digests = pattern_digests(seed, pages);
  ImageDir dir;
  dir.put("pages-1.img", encode_pages(entry));
  return dir;
}

bool within(const void* p, const std::vector<std::uint8_t>& buf) {
  const auto* b = buf.data();
  const auto* c = static_cast<const std::uint8_t*>(p);
  return c >= b && c < b + buf.size();
}

TEST(StoreView, SpansMatchOwnedDecode) {
  const ImageDir dir = make_dir(0xA11CE, 37);
  const std::vector<std::uint8_t>& img = dir.get("pages-1.img").bytes;
  const PagesEntry owned = decode_pages(img);
  const ImageDir::PagesView& view = *dir.decoded().pages;
  ASSERT_EQ(view.page_count(), owned.digests.size());
  EXPECT_EQ(view.mode(), owned.mode);
  const std::span<const std::uint64_t> digests = view.digests();
  for (std::size_t i = 0; i < owned.digests.size(); ++i)
    EXPECT_EQ(digests[i], owned.digests[i]);
}

TEST(StoreView, DigestSpanBorrowsStoredBytes) {
  const ImageDir dir = make_dir(0xBEEF, 64);
  const std::span<const std::uint64_t> digests = dir.decoded().pages->digests();
  // Zero-copy: the span aliases the stored file bytes (v4 pads the digest
  // array to an 8-byte offset precisely so this borrow is legal)...
  EXPECT_TRUE(within(digests.data(), dir.get("pages-1.img").bytes));
  // ...and sits at an 8-byte boundary.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(digests.data()) % 8, 0u);
}

TEST(StoreView, PutAfterDecodeInvalidatesView) {
  ImageDir dir = make_dir(0xD0D0, 16);
  const ImageDir::PagesView view = *dir.decoded().pages;
  EXPECT_NO_THROW(view.digests());

  PagesEntry next;
  next.mode = PayloadMode::kDigest;
  next.digests = pattern_digests(0xD0D1, 16);
  dir.put("pages-1.img", encode_pages(next));

  // The stale borrow is a hard error, not a dangling read.
  EXPECT_THROW(view.digests(), std::logic_error);
  EXPECT_THROW(view.raw(), std::logic_error);
  // Value fields (no borrow) stay readable.
  EXPECT_EQ(view.page_count(), 16u);
  // A fresh decode() hands out a live view of the new content.
  EXPECT_NO_THROW(dir.decoded().pages->digests());
  EXPECT_EQ(dir.decoded().pages->digests()[0],
            os::PatternSource{0xD0D1}.page_digest(0));
}

TEST(StoreView, PutOfUnrelatedFileAlsoInvalidates) {
  // put() re-arms per *content generation*, not per file: any mutation of
  // the directory invalidates outstanding borrows (the conservative rule —
  // map rebalancing must never silently move the bytes under a span).
  ImageDir dir = make_dir(0xF00D, 8);
  const ImageDir::PagesView view = *dir.decoded().pages;
  dir.put("inventory.img", encode_inventory(InventoryEntry{}));
  EXPECT_THROW(view.digests(), std::logic_error);
}

TEST(StoreView, CopiedDirReDerivesOwnCache) {
  ImageDir a = make_dir(0xCAFE, 32);
  const std::span<const std::uint64_t> a_digests = a.decoded().pages->digests();

  const ImageDir b = a;
  const std::span<const std::uint64_t> b_digests = b.decoded().pages->digests();
  // The copy's view borrows the copy's bytes, never the source's.
  EXPECT_TRUE(within(b_digests.data(), b.get("pages-1.img").bytes));
  EXPECT_FALSE(within(b_digests.data(), a.get("pages-1.img").bytes));
  EXPECT_NE(static_cast<const void*>(a_digests.data()),
            static_cast<const void*>(b_digests.data()));

  // Mutating the source must not invalidate the copy's views (and vice
  // versa): independent directories, independent liveness tokens.
  PagesEntry next;
  next.mode = PayloadMode::kDigest;
  next.digests = pattern_digests(0xCAFF, 32);
  a.put("pages-1.img", encode_pages(next));
  EXPECT_NO_THROW(b.decoded().pages->digests());
  EXPECT_EQ(b_digests[0], os::PatternSource{0xCAFE}.page_digest(0));
}

TEST(StoreView, MoveKeepsViewsLive) {
  ImageDir a = make_dir(0x1234, 20);
  const ImageDir::PagesView view = *a.decoded().pages;
  const ImageDir b = std::move(a);
  // The move steals the file buffers wholesale; outstanding spans still
  // point into live storage now owned by `b`.
  EXPECT_NO_THROW(view.digests());
  EXPECT_EQ(view.digests()[3], os::PatternSource{0x1234}.page_digest(3));
}

TEST(StoreView, RawSpanInFullMode) {
  PagesEntry entry;
  entry.mode = PayloadMode::kFull;
  entry.digests = pattern_digests(0x42, 2);
  entry.raw.assign(2 * os::kPageSize, 0xAB);
  ImageDir dir;
  dir.put("pages-1.img", encode_pages(entry));
  const ImageDir::PagesView& view = *dir.decoded().pages;
  EXPECT_EQ(view.mode(), PayloadMode::kFull);
  ASSERT_EQ(view.raw().size(), entry.raw.size());
  EXPECT_EQ(view.raw()[17], 0xAB);
  EXPECT_TRUE(within(view.raw().data(), dir.get("pages-1.img").bytes));
}

TEST(StoreView, CopyThenConcurrentPutIsSafe) {
  // Regression for the shared-mutex bug: copies used to share cache_mu_ with
  // their source, so a put() on the source while a copy decoded could
  // serialize — or worse, invalidate — the copy's cache. Each copy now owns
  // its mutex and token; source writes and copy reads are fully independent.
  ImageDir source = make_dir(0x5EED, 48);
  (void)source.decoded();
  const ImageDir copy = source;
  const std::uint64_t want = os::PatternSource{0x5EED}.page_digest(7);

  std::atomic<bool> failed{false};
  std::thread writer{[&source] {
    for (int i = 0; i < 200; ++i) {
      PagesEntry e;
      e.mode = PayloadMode::kDigest;
      e.digests = pattern_digests(0x6000 + static_cast<std::uint64_t>(i), 48);
      source.put("pages-1.img", encode_pages(e));
      (void)source.decoded();
    }
  }};
  std::thread reader{[&copy, want, &failed] {
    for (int i = 0; i < 200; ++i) {
      const std::span<const std::uint64_t> d = copy.decoded().pages->digests();
      if (d[7] != want) failed.store(true);
    }
  }};
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(copy.decoded().pages->digests()[7], want);
}

}  // namespace
}  // namespace prebake::criu
