// Determinism contract of the parallel experiment engine: identical results
// for any thread count, full index coverage and error propagation in
// parallel_for, and bit-identical bootstrap intervals regardless of how the
// resamples are sharded.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/scenario.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"

namespace prebake {
namespace {

exp::ScenarioConfig small_config(exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::noop_spec();
  cfg.technique = tech;
  cfg.repetitions = 60;  // spans multiple shards (shard size 25)
  cfg.seed = 42;
  return cfg;
}

TEST(ParallelScenario, BitIdenticalAcrossThreadCounts) {
  for (const exp::Technique tech :
       {exp::Technique::kVanilla, exp::Technique::kPrebakeNoWarmup}) {
    exp::ScenarioConfig cfg = small_config(tech);

    cfg.threads = 1;
    const exp::ScenarioResult r1 = exp::run_startup_scenario(cfg);
    cfg.threads = 2;
    const exp::ScenarioResult r2 = exp::run_startup_scenario(cfg);
    cfg.threads = 8;
    const exp::ScenarioResult r8 = exp::run_startup_scenario(cfg);

    ASSERT_EQ(r1.startup_ms.size(), 60u);
    // Byte-identical sample vectors...
    EXPECT_EQ(r1.startup_ms, r2.startup_ms) << exp::technique_name(tech);
    EXPECT_EQ(r1.startup_ms, r8.startup_ms) << exp::technique_name(tech);
    EXPECT_EQ(r1.snapshot_nominal_bytes, r8.snapshot_nominal_bytes);
    EXPECT_EQ(r1.bake_time_ms, r8.bake_time_ms);

    // ...and therefore identical bootstrap intervals.
    const auto ci1 = stats::bootstrap_median_ci(r1.startup_ms);
    const auto ci8 = stats::bootstrap_median_ci(r8.startup_ms);
    EXPECT_EQ(ci1.lo, ci8.lo);
    EXPECT_EQ(ci1.hi, ci8.hi);
    EXPECT_EQ(ci1.point, ci8.point);
  }
}

TEST(ParallelScenario, RunnerBatchMatchesDirectCalls) {
  exp::ParallelRunner runner{2};
  std::vector<exp::ScenarioConfig> cells = {
      small_config(exp::Technique::kVanilla),
      small_config(exp::Technique::kPrebakeNoWarmup),
  };
  const auto batch = runner.run_startup(cells);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    exp::ScenarioConfig cfg = cells[i];
    cfg.threads = 1;
    const exp::ScenarioResult direct = exp::run_startup_scenario(cfg);
    EXPECT_EQ(batch[i].startup_ms, direct.startup_ms) << "cell " << i;
  }
}

TEST(ParallelScenario, ReferenceEngineStatisticallyEquivalent) {
  // The legacy serial runner draws a different (sequential) noise stream, so
  // samples differ rep-by-rep — but both engines measure the same testbed,
  // so the medians must agree closely.
  exp::ScenarioConfig cfg = small_config(exp::Technique::kVanilla);
  cfg.repetitions = 100;
  const double engine = stats::median(exp::run_startup_scenario(cfg).startup_ms);
  const double reference =
      stats::median(exp::run_startup_scenario_reference(cfg).startup_ms);
  EXPECT_NEAR(engine, reference, 0.03 * reference);
}

TEST(Bootstrap, BitIdenticalAcrossThreadCounts) {
  std::vector<double> sample;
  for (int i = 0; i < 257; ++i) sample.push_back(100.0 + (i * 37 % 113));

  const auto median_stat = [](std::span<const double> xs) {
    return stats::median(xs);
  };
  const auto t1 = stats::bootstrap_ci(sample, median_stat, 0.95, 3000, 7, 1);
  const auto t2 = stats::bootstrap_ci(sample, median_stat, 0.95, 3000, 7, 2);
  const auto t8 = stats::bootstrap_ci(sample, median_stat, 0.95, 3000, 7, 8);
  EXPECT_EQ(t1.lo, t2.lo);
  EXPECT_EQ(t1.hi, t2.hi);
  EXPECT_EQ(t1.lo, t8.lo);
  EXPECT_EQ(t1.hi, t8.hi);
  EXPECT_EQ(t1.point, t8.point);
}

TEST(Bootstrap, MedianSpecializationMatchesGenericBitwise) {
  // Odd and even sample sizes exercise both branches of the nth_element
  // median selection.
  for (const int n : {5, 30, 101, 256}) {
    std::vector<double> sample;
    for (int i = 0; i < n; ++i)
      sample.push_back(50.0 + ((i * 193) % 257) * 0.25);

    const auto fast = stats::bootstrap_median_ci(sample, 0.95, 1000, 99, 2);
    const auto generic = stats::bootstrap_ci(
        sample, [](std::span<const double> xs) { return stats::median(xs); },
        0.95, 1000, 99, 2);
    EXPECT_EQ(fast.lo, generic.lo) << "n=" << n;
    EXPECT_EQ(fast.hi, generic.hi) << "n=" << n;
    EXPECT_EQ(fast.point, generic.point) << "n=" << n;
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(1003);
    util::parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        util::parallel_for(
            100,
            [](std::size_t i) {
              if (i == 37) throw std::runtime_error{"boom"};
            },
            threads),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, NestedInvocationDoesNotDeadlock) {
  std::atomic<int> total{0};
  util::parallel_for(
      4,
      [&](std::size_t) {
        util::parallel_for(
            8, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 32);
}

}  // namespace
}  // namespace prebake
