#include "os/filesystem.hpp"

#include <gtest/gtest.h>

namespace prebake::os {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  CostModel costs_;
  FileSystem fs_{sim_, costs_};

  double elapsed_ms() const { return sim_.now().to_millis(); }
};

TEST_F(FileSystemTest, CreateAndStat) {
  fs_.create("/a/b", 1234);
  EXPECT_TRUE(fs_.exists("/a/b"));
  EXPECT_EQ(fs_.size_of("/a/b"), 1234u);
  EXPECT_EQ(fs_.bytes_of("/a/b"), nullptr);  // synthetic content
}

TEST_F(FileSystemTest, MissingFileThrows) {
  EXPECT_FALSE(fs_.exists("/nope"));
  EXPECT_THROW(fs_.size_of("/nope"), std::invalid_argument);
  EXPECT_THROW(fs_.charge_read("/nope"), std::invalid_argument);
  EXPECT_THROW(fs_.remove("/nope"), std::invalid_argument);
}

TEST_F(FileSystemTest, WriteStoresRealBytes) {
  fs_.write("/data", {1, 2, 3, 4});
  ASSERT_NE(fs_.bytes_of("/data"), nullptr);
  EXPECT_EQ(*fs_.bytes_of("/data"), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(fs_.size_of("/data"), 4u);
}

TEST_F(FileSystemTest, WriteChargesTime) {
  fs_.write("/data", std::vector<std::uint8_t>(1024 * 1024, 7));
  EXPECT_GT(elapsed_ms(), 0.0);
}

TEST_F(FileSystemTest, AppendGrowsFile) {
  const std::uint8_t chunk[] = {9, 9};
  fs_.append("/log", chunk, 2);
  fs_.append("/log", chunk, 2);
  EXPECT_EQ(fs_.size_of("/log"), 4u);
}

TEST_F(FileSystemTest, ColdReadSlowerThanWarm) {
  fs_.create("/big", 10 * 1024 * 1024);
  const double t0 = elapsed_ms();
  fs_.charge_read("/big");
  const double cold = elapsed_ms() - t0;
  const double t1 = elapsed_ms();
  fs_.charge_read("/big");
  const double warm = elapsed_ms() - t1;
  EXPECT_GT(cold, warm * 3);
  EXPECT_GT(warm, 0.0);
}

TEST_F(FileSystemTest, DropCachesMakesReadsColdAgain) {
  fs_.create("/big", 10 * 1024 * 1024);
  fs_.charge_read("/big");
  EXPECT_TRUE(fs_.is_cached("/big"));
  fs_.drop_caches();
  EXPECT_FALSE(fs_.is_cached("/big"));
  const double t0 = elapsed_ms();
  fs_.charge_read("/big");
  EXPECT_GT(elapsed_ms() - t0, 10.0 / 450.0 * 1000.0 * 0.9);  // ~disk speed
}

TEST_F(FileSystemTest, FreshWriteIsCached) {
  fs_.write("/w", {1});
  EXPECT_TRUE(fs_.is_cached("/w"));
}

TEST_F(FileSystemTest, WarmMarksCachedWithoutCharge) {
  fs_.create("/f", 1024);
  const double t0 = elapsed_ms();
  fs_.warm("/f");
  EXPECT_EQ(elapsed_ms(), t0);
  EXPECT_TRUE(fs_.is_cached("/f"));
}

TEST_F(FileSystemTest, PartialReadChargesLess) {
  fs_.create("/big", 100 * 1024 * 1024);
  const double t0 = elapsed_ms();
  fs_.charge_read("/big", 1024 * 1024);
  const double partial = elapsed_ms() - t0;
  fs_.drop_caches();
  const double t1 = elapsed_ms();
  fs_.charge_read("/big");
  const double full = elapsed_ms() - t1;
  EXPECT_GT(full, partial * 10);
}

TEST_F(FileSystemTest, ContentionScalesCost) {
  fs_.create("/f", 8 * 1024 * 1024);
  fs_.charge_read("/f");  // warm it
  const double t0 = elapsed_ms();
  fs_.charge_read("/f", 0, 1.0);
  const double alone = elapsed_ms() - t0;
  const double t1 = elapsed_ms();
  fs_.charge_read("/f", 0, 4.0);
  const double contended = elapsed_ms() - t1;
  EXPECT_NEAR(contended, alone * 4.0, alone * 0.01);
}

TEST_F(FileSystemTest, RemoveDeletes) {
  fs_.create("/x", 1);
  fs_.remove("/x");
  EXPECT_FALSE(fs_.exists("/x"));
}

TEST_F(FileSystemTest, ListByPrefix) {
  fs_.create("/snap/a/1.img", 1);
  fs_.create("/snap/a/2.img", 1);
  fs_.create("/snap/b/1.img", 1);
  EXPECT_EQ(fs_.list("/snap/a/").size(), 2u);
  EXPECT_EQ(fs_.list("/snap/").size(), 3u);
  EXPECT_TRUE(fs_.list("/none/").empty());
}

TEST_F(FileSystemTest, CreateTruncatesExisting) {
  fs_.write("/f", {1, 2, 3});
  fs_.create("/f", 99);
  EXPECT_EQ(fs_.size_of("/f"), 99u);
  EXPECT_EQ(fs_.bytes_of("/f"), nullptr);
}

}  // namespace
}  // namespace prebake::os
