#include "os/address_space.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace prebake::os {
namespace {

std::shared_ptr<PatternSource> source(std::uint64_t seed = 1) {
  return std::make_shared<PatternSource>(seed);
}

TEST(AddressSpace, MapRoundsUpToPages) {
  AddressSpace mm;
  const VmaId id = mm.map(100, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  EXPECT_EQ(mm.find(id)->length, kPageSize);
  EXPECT_EQ(mm.find(id)->page_count(), 1u);
}

TEST(AddressSpace, MapZeroLengthThrows) {
  AddressSpace mm;
  EXPECT_THROW(mm.map(0, Prot::kRead, VmaKind::kAnon, "x", source()),
               std::invalid_argument);
}

TEST(AddressSpace, MappingsDoNotOverlap) {
  AddressSpace mm;
  const VmaId a = mm.map(kPageSize * 4, Prot::kRead, VmaKind::kAnon, "a", source());
  const VmaId b = mm.map(kPageSize * 4, Prot::kRead, VmaKind::kAnon, "b", source());
  const Vma* va = mm.find(a);
  const Vma* vb = mm.find(b);
  EXPECT_GE(vb->start, va->start + va->length);
}

TEST(AddressSpace, PopulateMakesResident) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 3, Prot::kRead, VmaKind::kAnon, "x",
                          source(), /*populate=*/true);
  EXPECT_EQ(mm.find(id)->resident_pages(), 3u);
  EXPECT_EQ(mm.resident_bytes(), 3 * kPageSize);
}

TEST(AddressSpace, UnpopulatedStartsEmpty) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 3, Prot::kRead, VmaKind::kAnon, "x", source());
  EXPECT_EQ(mm.find(id)->resident_pages(), 0u);
}

TEST(AddressSpace, TouchFaultsPagesOnce) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 10, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  EXPECT_EQ(mm.touch(id, 2, 3).newly_resident, 3u);
  EXPECT_EQ(mm.touch(id, 2, 3).newly_resident, 0u);  // already resident
  EXPECT_EQ(mm.find(id)->resident_pages(), 3u);
}

TEST(AddressSpace, TouchClampsToVmaEnd) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 4, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  EXPECT_EQ(mm.touch(id, 2, 100).newly_resident, 2u);
}

TEST(AddressSpace, WriteTouchSetsDirty) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 4, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  mm.touch(id, 0, 2, /*write=*/true);
  mm.touch(id, 2, 2, /*write=*/false);
  EXPECT_EQ(mm.find(id)->dirty_pages(), 2u);
}

TEST(AddressSpace, WriteToReadOnlyThrows) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize, Prot::kRead, VmaKind::kAnon, "x", source());
  EXPECT_THROW(mm.touch(id, 0, 1, /*write=*/true), std::logic_error);
}

TEST(AddressSpace, ClearSoftDirty) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 4, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  mm.touch_all(id, /*write=*/true);
  EXPECT_EQ(mm.find(id)->dirty_pages(), 4u);
  mm.clear_soft_dirty();
  EXPECT_EQ(mm.find(id)->dirty_pages(), 0u);
  EXPECT_EQ(mm.find(id)->resident_pages(), 4u);  // still resident
}

TEST(AddressSpace, UnmapRemoves) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize, Prot::kRead, VmaKind::kAnon, "x", source());
  mm.unmap(id);
  EXPECT_EQ(mm.find(id), nullptr);
  EXPECT_THROW(mm.unmap(id), std::invalid_argument);
}

TEST(AddressSpace, ClearDropsEverything) {
  AddressSpace mm;
  mm.map(kPageSize, Prot::kRead, VmaKind::kAnon, "a", source(), true);
  mm.map(kPageSize, Prot::kRead, VmaKind::kAnon, "b", source(), true);
  mm.clear();
  EXPECT_TRUE(mm.vmas().empty());
  EXPECT_EQ(mm.resident_bytes(), 0u);
}

TEST(AddressSpace, MappedBytesSumsLengths) {
  AddressSpace mm;
  mm.map(kPageSize * 2, Prot::kRead, VmaKind::kAnon, "a", source());
  mm.map(kPageSize * 3, Prot::kRead, VmaKind::kAnon, "b", source());
  EXPECT_EQ(mm.mapped_bytes(), 5 * kPageSize);
}

TEST(AddressSpace, TouchUnknownVmaThrows) {
  AddressSpace mm;
  EXPECT_THROW(mm.touch(999, 0, 1), std::invalid_argument);
  EXPECT_THROW(mm.touch_all(999), std::invalid_argument);
}

TEST(AddressSpace, CloneForForkPreservesLayout) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 4, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  mm.touch(id, 0, 2, true);
  const AddressSpace child = mm.clone_for_fork();
  ASSERT_NE(child.find(id), nullptr);
  EXPECT_EQ(child.find(id)->resident_pages(), 2u);
  EXPECT_EQ(child.find(id)->dirty_pages(), 2u);
  EXPECT_EQ(child.find(id)->start, mm.find(id)->start);
}

TEST(AddressSpace, CloneSharesPageSources) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize, Prot::kReadWrite, VmaKind::kAnon, "x", source(9));
  const AddressSpace child = mm.clone_for_fork();
  EXPECT_EQ(child.find(id)->source.get(), mm.find(id)->source.get());
}

TEST(AddressSpace, ForkChildIndependentResidency) {
  AddressSpace mm;
  const VmaId id = mm.map(kPageSize * 4, Prot::kReadWrite, VmaKind::kAnon, "x", source());
  AddressSpace child = mm.clone_for_fork();
  child.touch(id, 0, 4);
  EXPECT_EQ(child.find(id)->resident_pages(), 4u);
  EXPECT_EQ(mm.find(id)->resident_pages(), 0u);
}

TEST(Prot, FlagHelpers) {
  EXPECT_TRUE(has_prot(Prot::kReadWrite, Prot::kRead));
  EXPECT_TRUE(has_prot(Prot::kReadWrite, Prot::kWrite));
  EXPECT_FALSE(has_prot(Prot::kReadExec, Prot::kWrite));
  EXPECT_TRUE(has_prot(Prot::kRead | Prot::kExec, Prot::kExec));
}

}  // namespace
}  // namespace prebake::os
