#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace prebake::sim {
namespace {

TEST(Simulation, StartsAtOrigin) {
  Simulation sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(Simulation, AdvanceMovesClock) {
  Simulation sim;
  sim.advance(Duration::millis(5));
  EXPECT_EQ(sim.now().to_millis(), 5.0);
}

TEST(Simulation, AdvanceIgnoresNegative) {
  Simulation sim;
  sim.advance(Duration::millis(5));
  sim.advance(Duration::millis(-3));
  EXPECT_EQ(sim.now().to_millis(), 5.0);
}

TEST(Simulation, EventFiresAtScheduledTime) {
  Simulation sim;
  TimePoint fired;
  sim.schedule_in(Duration::millis(10), [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired.to_millis(), 10.0);
  EXPECT_EQ(sim.now().to_millis(), 10.0);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(Duration::millis(20), [&] { order.push_back(2); });
  sim.schedule_in(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_in(Duration::millis(30), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesFireInFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_in(Duration::millis(10), [&, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(Duration::millis(1), chain);
  };
  sim.schedule_in(Duration::millis(1), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().to_millis(), 5.0);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.advance(Duration::millis(10));
  EXPECT_THROW(sim.schedule_at(TimePoint::origin() + Duration::millis(5), [] {}),
               std::logic_error);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_in(Duration::millis(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_in(Duration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_in(Duration::millis(1), [&] { ++count; });
  sim.schedule_in(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_in(Duration::millis(5), [&] { fired.push_back(5); });
  sim.schedule_in(Duration::millis(10), [&] { fired.push_back(10); });
  sim.schedule_in(Duration::millis(15), [&] { fired.push_back(15); });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_EQ(fired, (std::vector<int>{5, 10}));
  EXPECT_EQ(sim.now().to_millis(), 10.0);
  sim.run();
  EXPECT_EQ(fired.back(), 15);
}

TEST(Simulation, PendingEventsCount) {
  Simulation sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  const EventId a = sim.schedule_in(Duration::millis(1), [] {});
  sim.schedule_in(Duration::millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, AdvanceInsideEventMovesClockForward) {
  Simulation sim;
  sim.schedule_in(Duration::millis(5), [&] { sim.advance(Duration::millis(3)); });
  sim.schedule_in(Duration::millis(6), [&] {
    // Fires after the previous event's busy time.
    EXPECT_GE(sim.now().to_millis(), 8.0);
  });
  sim.run();
  EXPECT_EQ(sim.now().to_millis(), 8.0);
}

// --- event slab (DESIGN.md §6g) --------------------------------------------
// Callbacks live in reusable slots; ids encode slot + generation so a stale
// id can never alias a newer event.

TEST(SimulationSlab, SlotsAreReused) {
  Simulation sim;
  int fired = 0;
  const EventId a = sim.schedule_in(Duration::millis(1), [&] { ++fired; });
  sim.run();
  // The freed slot is handed to the next event; the generation differs.
  const EventId b = sim.schedule_in(Duration::millis(1), [&] { ++fired; });
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  EXPECT_NE(a, b);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationSlab, StaleIdAfterReuseCannotCancelNewEvent) {
  Simulation sim;
  const EventId stale = sim.schedule_in(Duration::millis(1), [] {});
  sim.run();
  bool fired = false;
  sim.schedule_in(Duration::millis(1), [&] { fired = true; });
  // The old id names the same slot as the new event but an older generation.
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulationSlab, CancelledSlotIsRecycled) {
  Simulation sim;
  const EventId a = sim.schedule_in(Duration::millis(5), [] {});
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));  // double-cancel
  std::vector<int> order;
  sim.schedule_in(Duration::millis(2), [&] { order.push_back(2); });
  sim.schedule_in(Duration::millis(1), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationSlab, ChurnKeepsOrderAndCount) {
  // Heavy schedule/cancel/fire churn exercises free-list reuse: FIFO tie
  // order and pending_events stay exact throughout.
  Simulation sim;
  std::vector<int> fired;
  std::vector<EventId> cancelled;
  for (int round = 0; round < 50; ++round) {
    const EventId drop = sim.schedule_in(Duration::millis(1),
                                         [&] { fired.push_back(-1); });
    sim.schedule_in(Duration::millis(1),
                    [&fired, round] { fired.push_back(round); });
    EXPECT_TRUE(sim.cancel(drop));
    cancelled.push_back(drop);
    sim.run();
  }
  ASSERT_EQ(fired.size(), 50u);
  for (int round = 0; round < 50; ++round) EXPECT_EQ(fired[round], round);
  for (const EventId id : cancelled) EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationSlab, EventsCanScheduleIntoReusedSlots) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(Duration::millis(1), [&] {
    // Scheduling from inside a callback lands in the slab while step() holds
    // the firing slot; the new event must be untouched by that release.
    sim.schedule_in(Duration::millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace prebake::sim
