// End-to-end checkpoint/restore tests: the heart of the CRIU-model engine.
#include <gtest/gtest.h>

#include <numeric>

#include "criu/dump.hpp"
#include "criu/restore.hpp"

namespace prebake::criu {
namespace {

using os::Cap;
using os::kPageSize;

class DumpRestoreTest : public ::testing::Test {
 protected:
  DumpRestoreTest() : kernel_{sim_} {
    kernel_.fs().create("/bin/app", 2 * 1024 * 1024);
  }

  // A process with pattern memory, extra threads, fds and namespaces.
  os::Pid make_target() {
    os::CloneOptions copts;
    copts.new_pid_ns = true;
    const os::Pid pid = kernel_.clone_process(os::kNoPid, copts);
    kernel_.exec(pid, "/bin/app", {"/bin/app", "--fn"});
    kernel_.process(pid).spawn_thread(pid + 1000);
    kernel_.process(pid).spawn_thread(pid + 1001);
    kernel_.process(pid).threads()[0].regs = {1, 2, 3, 4, 5, 6, 7, 8};
    kernel_.process(pid).install_fd(
        os::FdDesc{-1, os::FdKind::kSocket, "tcp://0.0.0.0:8080", 0});
    const os::VmaId heap = kernel_.mmap(
        pid, kPageSize * 64, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[big-heap]", std::make_shared<os::PatternSource>(0xFEED), false);
    kernel_.fault_in(pid, heap, 0, 40);
    return pid;
  }

  // A process whose memory is real mutable bytes (BufferSource).
  os::Pid make_buffer_target(std::vector<std::uint8_t> payload) {
    const os::Pid pid = kernel_.clone_process(os::kNoPid);
    kernel_.process(pid).set_name("buffer-app");
    auto buf = std::make_shared<os::BufferSource>(std::move(payload));
    const std::uint64_t len = buf->bytes().size();
    const os::VmaId vma =
        kernel_.mmap(pid, len, os::Prot::kReadWrite, os::VmaKind::kAnon,
                     "[data]", buf, false);
    kernel_.fault_in_all(pid, vma);
    return pid;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
};

TEST_F(DumpRestoreTest, DumpProducesAllImageFiles) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  EXPECT_TRUE(dump.images.has("inventory.img"));
  EXPECT_TRUE(dump.images.has("core-" + std::to_string(pid) + ".img"));
  EXPECT_TRUE(dump.images.has("mm.img"));
  EXPECT_TRUE(dump.images.has("pagemap.img"));
  EXPECT_TRUE(dump.images.has("pages-1.img"));
  EXPECT_TRUE(dump.images.has("files.img"));
  EXPECT_TRUE(dump.images.has("stats.img"));
  EXPECT_NO_THROW(dump.images.validate());
}

TEST_F(DumpRestoreTest, DumpKillsTargetByDefault) {
  const os::Pid pid = make_target();
  Dumper{kernel_}.dump(pid);
  EXPECT_THROW(kernel_.process(pid), std::invalid_argument);  // reaped
}

TEST_F(DumpRestoreTest, LeaveRunningKeepsTargetAlive) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.leave_running = true;
  Dumper{kernel_}.dump(pid, opts);
  EXPECT_TRUE(kernel_.alive(pid));
  EXPECT_EQ(kernel_.process(pid).state(), os::ProcState::kRunning);
  EXPECT_FALSE(kernel_.process(pid).parasite_present());
}

TEST_F(DumpRestoreTest, DumpAccountsPayloadBytes) {
  const os::Pid pid = make_target();
  const std::uint64_t resident = kernel_.process(pid).mm().resident_bytes();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  EXPECT_EQ(dump.stats.payload_bytes, resident);
  EXPECT_EQ(dump.stats.pages_dumped * kPageSize, resident);
  EXPECT_EQ(dump.images.get("pages-1.img").nominal_size, resident);
}

TEST_F(DumpRestoreTest, DigestModeKeepsHostMemorySmall) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  // 8 bytes/page of digests instead of 4096 of payload.
  EXPECT_LT(dump.images.real_total(), dump.images.nominal_total() / 100);
}

TEST_F(DumpRestoreTest, UnprivilegedDumpRequiresSomeCapability) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.criu_caps = Cap::kNone;
  EXPECT_THROW(Dumper{kernel_}.dump(pid, opts), std::runtime_error);
  // CAP_CHECKPOINT_RESTORE alone suffices [11].
  opts.criu_caps = Cap::kCheckpointRestore;
  EXPECT_NO_THROW(Dumper{kernel_}.dump(pid, opts));
}

TEST_F(DumpRestoreTest, DumpNonRunningThrows) {
  const os::Pid pid = make_target();
  kernel_.kill_process(pid);
  EXPECT_THROW(Dumper{kernel_}.dump(pid), std::logic_error);
}

TEST_F(DumpRestoreTest, RestoreRebuildsProcessState) {
  const os::Pid pid = make_target();
  const os::Process& original = kernel_.process(pid);
  const std::string name = original.name();
  const auto argv = original.argv();
  const auto ns = original.ns();
  const std::size_t n_threads = original.threads().size();
  const std::size_t n_vmas = original.mm().vmas().size();
  const std::uint64_t resident = original.mm().resident_bytes();
  const auto regs0 = original.threads()[0].regs;

  const DumpResult dump = Dumper{kernel_}.dump(pid);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);

  const os::Process& clone = kernel_.process(restored.pid);
  EXPECT_EQ(clone.name(), name);
  EXPECT_EQ(clone.argv(), argv);
  EXPECT_EQ(clone.ns(), ns);
  EXPECT_EQ(clone.threads().size(), n_threads);
  EXPECT_EQ(clone.threads()[0].regs, regs0);
  EXPECT_EQ(clone.mm().vmas().size(), n_vmas);
  EXPECT_EQ(clone.mm().resident_bytes(), resident);
  EXPECT_EQ(clone.state(), os::ProcState::kRunning);
  EXPECT_EQ(restored.pages_restored * kPageSize, resident);
}

TEST_F(DumpRestoreTest, RestoreRebuildsFds) {
  const os::Pid pid = make_target();
  const auto fds = kernel_.process(pid).fds();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);
  const auto& restored_fds = kernel_.process(restored.pid).fds();
  ASSERT_EQ(restored_fds.size(), fds.size());
  for (const auto& [fd, desc] : fds) {
    ASSERT_TRUE(restored_fds.contains(fd));
    EXPECT_EQ(restored_fds.at(fd).path, desc.path);
    EXPECT_EQ(restored_fds.at(fd).kind, desc.kind);
  }
}

TEST_F(DumpRestoreTest, RestoredMemoryContentIsByteIdentical) {
  std::vector<std::uint8_t> payload(kPageSize * 5);
  std::iota(payload.begin(), payload.end(), 1);
  const os::Pid pid = make_buffer_target(payload);

  DumpOptions opts;
  opts.payload_mode = PayloadMode::kFull;  // buffer memory needs raw bytes
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);

  const os::Process& clone = kernel_.process(restored.pid);
  ASSERT_EQ(clone.mm().vmas().size(), 1u);
  const os::Vma& vma = clone.mm().vmas()[0];
  const auto* buf = dynamic_cast<const os::BufferSource*>(vma.source.get());
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->bytes(), payload);
}

TEST_F(DumpRestoreTest, DigestModeCannotRestoreBufferMemory) {
  const os::Pid pid = make_buffer_target(std::vector<std::uint8_t>(kPageSize, 1));
  const DumpResult dump = Dumper{kernel_}.dump(pid);  // digest mode default
  EXPECT_THROW(Restorer{kernel_}.restore(dump.images), std::runtime_error);
}

TEST_F(DumpRestoreTest, VerifyPagesPassesOnIntactImages) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  RestoreOptions opts;
  opts.verify_pages = true;
  EXPECT_NO_THROW(Restorer{kernel_}.restore(dump.images, opts));
}

TEST_F(DumpRestoreTest, RestoreOriginalPidNeedsCapability) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);

  RestoreOptions opts;
  opts.restore_original_pid = true;
  opts.criu_caps = Cap::kSysPtrace;  // not enough
  EXPECT_THROW(Restorer{kernel_}.restore(dump.images, opts), std::runtime_error);

  opts.criu_caps = Cap::kCheckpointRestore;
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);
  EXPECT_EQ(restored.pid, pid);
}

TEST_F(DumpRestoreTest, RestoreTwiceGivesTwoReplicas) {
  // The same snapshot seeds many replicas (Section 3.1).
  const os::Pid pid = make_target();
  const std::uint64_t resident = kernel_.process(pid).mm().resident_bytes();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  const RestoreResult r1 = Restorer{kernel_}.restore(dump.images);
  const RestoreResult r2 = Restorer{kernel_}.restore(dump.images);
  EXPECT_NE(r1.pid, r2.pid);
  EXPECT_EQ(kernel_.process(r1.pid).mm().resident_bytes(), resident);
  EXPECT_EQ(kernel_.process(r2.pid).mm().resident_bytes(), resident);
}

TEST_F(DumpRestoreTest, ParasiteNotPartOfSnapshot) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  for (const VmaEntry& vma : decode_mm(dump.images.get("mm.img").bytes))
    EXPECT_NE(vma.name, "[criu-parasite]");
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);
  EXPECT_FALSE(kernel_.process(restored.pid).parasite_present());
}

TEST_F(DumpRestoreTest, IncrementalDumpOnlyCapturesDirtyPages) {
  const os::Pid pid = make_target();

  // Pre-dump: full snapshot, leaves running, resets soft-dirty.
  DumpOptions pre;
  pre.pre_dump = true;
  const DumpResult parent = Dumper{kernel_}.dump(pid, pre);
  const std::uint64_t full_pages = parent.stats.pages_dumped;
  ASSERT_GT(full_pages, 0u);

  // Dirty a small part of the heap.
  const os::Vma* heap = nullptr;
  for (const os::Vma& vma : kernel_.process(pid).mm().vmas())
    if (vma.name == "[big-heap]") heap = &vma;
  ASSERT_NE(heap, nullptr);
  kernel_.process(pid).mm().touch(heap->id, 0, 5, /*write=*/true);

  DumpOptions inc;
  inc.parent = &parent.images;
  const DumpResult child = Dumper{kernel_}.dump(pid, inc);
  EXPECT_EQ(child.stats.pages_dumped, 5u);
  EXPECT_LT(child.stats.payload_bytes, parent.stats.payload_bytes);
}

TEST_F(DumpRestoreTest, ChainRestoreRebuildsFullResidency) {
  const os::Pid pid = make_target();
  const std::uint64_t resident = kernel_.process(pid).mm().resident_bytes();

  DumpOptions pre;
  pre.pre_dump = true;
  const DumpResult parent = Dumper{kernel_}.dump(pid, pre);

  const os::Vma* heap = nullptr;
  for (const os::Vma& vma : kernel_.process(pid).mm().vmas())
    if (vma.name == "[big-heap]") heap = &vma;
  kernel_.process(pid).mm().touch(heap->id, 0, 5, /*write=*/true);

  DumpOptions inc;
  inc.parent = &parent.images;
  const DumpResult child = Dumper{kernel_}.dump(pid, inc);

  const ImageDir* chain[] = {&parent.images, &child.images};
  const RestoreResult restored = Restorer{kernel_}.restore_chain(chain);
  EXPECT_EQ(kernel_.process(restored.pid).mm().resident_bytes(), resident);
}

TEST_F(DumpRestoreTest, RestoreEmptyChainThrows) {
  Restorer restorer{kernel_};
  EXPECT_THROW(restorer.restore_chain({}), std::invalid_argument);
}

TEST_F(DumpRestoreTest, PersistedImagesChargeStorage) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.fs_prefix = "/snapshots/fn/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  EXPECT_TRUE(kernel_.fs().exists("/snapshots/fn/pages-1.img"));
  EXPECT_EQ(kernel_.fs().size_of("/snapshots/fn/pages-1.img"),
            dump.stats.payload_bytes);

  RestoreOptions ropts;
  ropts.fs_prefix = "/snapshots/fn/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, ropts);
  EXPECT_GT(sim_.now().to_millis(), t0);
}

TEST_F(DumpRestoreTest, InMemoryRestoreFasterThanColdDisk) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.fs_prefix = "/snapshots/fn/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  kernel_.fs().drop_caches();

  RestoreOptions cold;
  cold.fs_prefix = "/snapshots/fn/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, cold);
  const double cold_ms = sim_.now().to_millis() - t0;

  kernel_.fs().drop_caches();
  RestoreOptions mem;
  mem.fs_prefix = "/snapshots/fn/";
  mem.in_memory = true;  // Venkatesh et al. [26]
  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, mem);
  const double mem_ms = sim_.now().to_millis() - t1;
  EXPECT_LT(mem_ms, cold_ms);
}

TEST_F(DumpRestoreTest, ContentionSlowsRestore) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.fs_prefix = "/snapshots/fn/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);

  RestoreOptions alone;
  alone.fs_prefix = "/snapshots/fn/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, alone);
  const double alone_ms = sim_.now().to_millis() - t0;

  RestoreOptions shared;
  shared.fs_prefix = "/snapshots/fn/";
  shared.io_contention = 8.0;
  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, shared);
  const double shared_ms = sim_.now().to_millis() - t1;
  EXPECT_GT(shared_ms, alone_ms);
}

TEST_F(DumpRestoreTest, StatsRecordWarmupRequests) {
  const os::Pid pid = make_target();
  DumpOptions opts;
  opts.warmup_requests = 3;
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  EXPECT_EQ(decode_stats(dump.images.get("stats.img").bytes).warmup_requests, 3u);
}

TEST_F(DumpRestoreTest, DumpDurationRecorded) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  EXPECT_GT(dump.stats.dump_duration_ns, 0);
  EXPECT_EQ(dump.duration.nanos_count(), dump.stats.dump_duration_ns);
}

TEST_F(DumpRestoreTest, ZeroPagesCarryNoPayload) {
  // A buffer with a zero middle: CRIU's zero-page detection must skip it.
  std::vector<std::uint8_t> payload(kPageSize * 8, 0);
  for (std::size_t i = 0; i < kPageSize * 2; ++i) payload[i] = 0xAA;  // pages 0-1
  for (std::size_t i = kPageSize * 6; i < payload.size(); ++i) payload[i] = 0xBB;
  const os::Pid pid = make_buffer_target(payload);

  DumpOptions opts;
  opts.payload_mode = PayloadMode::kFull;
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  // 4 zero pages in the buffer (+ pages 0-1, 6-7 with data).
  EXPECT_EQ(dump.stats.zero_pages, 4u);
  EXPECT_EQ(dump.stats.pages_dumped, 4u);
  EXPECT_EQ(dump.stats.payload_bytes, 4 * kPageSize);
  // The zero run is marked in the pagemap.
  bool zero_run_found = false;
  for (const PagemapEntry& e : decode_pagemap(dump.images.get("pagemap.img").bytes))
    if (e.zero && e.pages == 4) zero_run_found = true;
  EXPECT_TRUE(zero_run_found);
}

TEST_F(DumpRestoreTest, ZeroPagesRestoreByteIdentical) {
  std::vector<std::uint8_t> payload(kPageSize * 6, 0);
  for (std::size_t i = kPageSize; i < kPageSize * 2; ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  const os::Pid pid = make_buffer_target(payload);

  DumpOptions opts;
  opts.payload_mode = PayloadMode::kFull;
  const DumpResult dump = Dumper{kernel_}.dump(pid, opts);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);

  const os::Process& clone = kernel_.process(restored.pid);
  const auto* buf =
      dynamic_cast<const os::BufferSource*>(clone.mm().vmas()[0].source.get());
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->bytes(), payload);
  // Full residency restored, payload read only for the non-zero pages.
  EXPECT_EQ(clone.mm().resident_bytes(), 6 * kPageSize);
}

TEST_F(DumpRestoreTest, ZeroHeavySnapshotIsSmallAndRestoresFaster) {
  // Two identical-size processes; one's heap is all zeros (calloc'd but
  // untouched data), the other's is fully patterned.
  auto build = [&](bool zero) {
    std::vector<std::uint8_t> payload(kPageSize * 512, 0);
    if (!zero)
      for (std::size_t i = 0; i < payload.size(); i += 7)
        payload[i] = static_cast<std::uint8_t>(i);
    return make_buffer_target(std::move(payload));
  };
  DumpOptions opts;
  opts.payload_mode = PayloadMode::kFull;
  opts.fs_prefix = "/snap/zero/";
  const DumpResult zero_dump = Dumper{kernel_}.dump(build(true), opts);
  opts.fs_prefix = "/snap/dense/";
  const DumpResult dense_dump = Dumper{kernel_}.dump(build(false), opts);

  EXPECT_LT(zero_dump.images.nominal_total(),
            dense_dump.images.nominal_total() / 10);

  RestoreOptions ropts;
  ropts.fs_prefix = "/snap/zero/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(zero_dump.images, ropts);
  const double zero_ms = sim_.now().to_millis() - t0;
  ropts.fs_prefix = "/snap/dense/";
  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dense_dump.images, ropts);
  const double dense_ms = sim_.now().to_millis() - t1;
  EXPECT_LT(zero_ms, dense_ms);
}

TEST_F(DumpRestoreTest, LazyRestoreMapsOnlyWorkingSet) {
  const os::Pid pid = make_target();
  const std::uint64_t resident = kernel_.process(pid).mm().resident_bytes();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/lazy/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/lazy/";
  opts.paging = PagingPolicy::lazy(0.25);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);

  ASSERT_NE(restored.lazy_server, nullptr);
  const std::uint64_t eager = kernel_.process(restored.pid).mm().resident_bytes();
  EXPECT_LT(eager, resident / 2);
  EXPECT_GT(eager, 0u);
  EXPECT_EQ(eager + restored.lazy_server->pending_pages() * os::kPageSize,
            resident);
}

TEST_F(DumpRestoreTest, LazyRestoreIsFasterUpFront) {
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/lazyfast/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions eager;
  eager.fs_prefix = "/snap/lazyfast/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, eager);
  const double eager_ms = sim_.now().to_millis() - t0;

  RestoreOptions lazy = eager;
  lazy.paging = PagingPolicy::lazy(0.1);
  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, lazy);
  const double lazy_ms = sim_.now().to_millis() - t1;
  EXPECT_LT(lazy_ms, eager_ms);
}

TEST_F(DumpRestoreTest, LazyServerPagesInRemainderAtHigherPerPageCost) {
  const os::Pid pid = make_target();
  const std::uint64_t resident = kernel_.process(pid).mm().resident_bytes();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/lazyserve/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/lazyserve/";
  opts.paging = PagingPolicy::lazy(0.0);  // everything deferred
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);
  ASSERT_NE(restored.lazy_server, nullptr);

  // Serve half, then the rest.
  const std::uint64_t total = restored.lazy_server->pending_pages();
  EXPECT_EQ(total * os::kPageSize, resident);
  const double t0 = sim_.now().to_millis();
  EXPECT_EQ(restored.lazy_server->page_in(total / 2), total / 2);
  const double half_ms = sim_.now().to_millis() - t0;
  EXPECT_GT(half_ms, 0.0);
  EXPECT_EQ(restored.lazy_server->page_in_all(), total - total / 2);
  EXPECT_TRUE(restored.lazy_server->done());
  EXPECT_EQ(kernel_.process(restored.pid).mm().resident_bytes(), resident);

  // uffd faults are pricier per page than eager restore's minor faults.
  const double per_page_us = half_ms * 1000.0 / static_cast<double>(total / 2);
  EXPECT_GT(per_page_us, kernel_.costs().minor_fault.to_micros());
}

TEST_F(DumpRestoreTest, LazyServerIdempotentWhenDrained) {
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/lazydrain/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);
  RestoreOptions opts;
  opts.fs_prefix = "/snap/lazydrain/";
  opts.paging = PagingPolicy::lazy();
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images, opts);
  restored.lazy_server->page_in_all();
  EXPECT_EQ(restored.lazy_server->page_in(10), 0u);
}

TEST_F(DumpRestoreTest, RemoteFetchPaysNetworkOnceThenLocalCache) {
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/registry/fn/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);
  // The images live on a remote registry: this node has never read them.
  kernel_.fs().drop_caches();

  RestoreOptions opts;
  opts.fs_prefix = "/registry/fn/";
  opts.remote_fetch = true;
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, opts);
  const double first_ms = sim_.now().to_millis() - t0;

  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, opts);
  const double second_ms = sim_.now().to_millis() - t1;

  // First restore crosses the network (~1 Gb/s); later ones are local.
  EXPECT_GT(first_ms, second_ms * 5);
  const double payload_mib =
      static_cast<double>(dump.stats.payload_bytes) / (1 << 20);
  EXPECT_GT(first_ms, payload_mib / 120.0 * 1000.0 * 0.9);
}

TEST_F(DumpRestoreTest, RemoteFetchSlowerThanLocalColdDisk) {
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/registry/fn2/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  kernel_.fs().drop_caches();
  RestoreOptions local;
  local.fs_prefix = "/registry/fn2/";
  const double t0 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, local);
  const double local_ms = sim_.now().to_millis() - t0;

  kernel_.fs().drop_caches();
  RestoreOptions remote = local;
  remote.remote_fetch = true;
  const double t1 = sim_.now().to_millis();
  Restorer{kernel_}.restore(dump.images, remote);
  const double remote_ms = sim_.now().to_millis() - t1;
  // 120 MiB/s network < 450 MiB/s disk.
  EXPECT_GT(remote_ms, local_ms);
}

TEST_F(DumpRestoreTest, EagerRestoreHasNoLazyServer) {
  const os::Pid pid = make_target();
  const DumpResult dump = Dumper{kernel_}.dump(pid);
  const RestoreResult restored = Restorer{kernel_}.restore(dump.images);
  EXPECT_EQ(restored.lazy_server, nullptr);
}

// --- typed restore errors (criu/error.hpp) --------------------------------

// Copy an image directory, optionally dropping one file and/or corrupting
// one file's bytes (single byte flipped mid-body, which the trailing CRC
// must catch).
ImageDir copy_images(const ImageDir& src, const std::string& drop = "",
                     const std::string& corrupt = "") {
  ImageDir out;
  for (const std::string& name : src.names()) {
    if (name == drop) continue;
    const ImageDir::ImageFile& f = src.get(name);
    std::vector<std::uint8_t> bytes = f.bytes;
    if (name == corrupt) bytes[bytes.size() / 2] ^= 0x40;
    out.put(name, std::move(bytes), f.nominal_size);
  }
  return out;
}

TEST_F(DumpRestoreTest, ChainRestoreMissingParentPagemapIsTypedError) {
  const os::Pid pid = make_target();
  DumpOptions pre;
  pre.pre_dump = true;
  const DumpResult parent = Dumper{kernel_}.dump(pid, pre);
  DumpOptions inc;
  inc.parent = &parent.images;
  const DumpResult child = Dumper{kernel_}.dump(pid, inc);

  const ImageDir broken = copy_images(parent.images, /*drop=*/"pagemap.img");
  const ImageDir* chain[] = {&broken, &child.images};
  try {
    Restorer{kernel_}.restore_chain(chain);
    FAIL() << "restore_chain succeeded with a gutted parent link";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kMissingImage);
    EXPECT_FALSE(e.transient());  // retrying cannot conjure the file back
  }
}

TEST_F(DumpRestoreTest, ChainRestoreCrcMismatchInMiddleLinkIsTypedError) {
  const os::Pid pid = make_target();
  DumpOptions pre;
  pre.pre_dump = true;
  const DumpResult a = Dumper{kernel_}.dump(pid, pre);

  const os::Vma* heap = nullptr;
  for (const os::Vma& vma : kernel_.process(pid).mm().vmas())
    if (vma.name == "[big-heap]") heap = &vma;
  ASSERT_NE(heap, nullptr);
  kernel_.process(pid).mm().touch(heap->id, 0, 3, /*write=*/true);
  DumpOptions mid;
  mid.pre_dump = true;
  mid.parent = &a.images;
  const DumpResult b = Dumper{kernel_}.dump(pid, mid);

  kernel_.process(pid).mm().touch(heap->id, 5, 3, /*write=*/true);
  DumpOptions last;
  last.parent = &b.images;
  const DumpResult c = Dumper{kernel_}.dump(pid, last);

  const ImageDir flipped =
      copy_images(b.images, /*drop=*/"", /*corrupt=*/"pagemap.img");
  const ImageDir* chain[] = {&a.images, &flipped, &c.images};
  try {
    Restorer{kernel_}.restore_chain(chain);
    FAIL() << "restore_chain accepted a bit-flipped middle link";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kCorruptImage);
    EXPECT_TRUE(e.transient());  // a re-read / re-fetch may see good bytes
  }
  // The intact chain still restores: corruption detection does not poison
  // the shared decode caches of the healthy links.
  const ImageDir* good[] = {&a.images, &b.images, &c.images};
  EXPECT_NO_THROW(Restorer{kernel_}.restore_chain(good));
}

TEST_F(DumpRestoreTest, TruncatedPersistedImageIsTypedError) {
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/trunc/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  // Half the page payload went missing on disk (partial write).
  const std::uint64_t full = kernel_.fs().size_of("/snap/trunc/pages-1.img");
  kernel_.fs().truncate("/snap/trunc/pages-1.img", full / 2);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/trunc/";
  try {
    Restorer{kernel_}.restore(dump.images, opts);
    FAIL() << "restore read a truncated pages-1.img without noticing";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::kTruncatedImage);
    EXPECT_FALSE(e.transient());  // same bytes missing on every retry
  }
}

TEST_F(DumpRestoreTest, ContendedRestoreIsDeterministic) {
  // io_contention scales charged I/O; it must not introduce any
  // nondeterminism (same cold cache + same contention => identical time).
  const os::Pid pid = make_target();
  DumpOptions dopts;
  dopts.fs_prefix = "/snap/det/";
  const DumpResult dump = Dumper{kernel_}.dump(pid, dopts);

  RestoreOptions opts;
  opts.fs_prefix = "/snap/det/";
  opts.io_contention = 8.0;

  kernel_.fs().drop_caches();
  const auto t0 = sim_.now();
  const RestoreResult r1 = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration first = sim_.now() - t0;

  kernel_.fs().drop_caches();
  const auto t1 = sim_.now();
  const RestoreResult r2 = Restorer{kernel_}.restore(dump.images, opts);
  const sim::Duration second = sim_.now() - t1;

  EXPECT_EQ(first.nanos_count(), second.nanos_count());
  EXPECT_EQ(r1.pages_restored, r2.pages_restored);
}

}  // namespace
}  // namespace prebake::criu
