#include "rt/classfile.hpp"

#include <gtest/gtest.h>

namespace prebake::rt {
namespace {

TEST(SynthClassSet, ExactTotalAndCount) {
  const auto classes = synth_class_set("t", 100, 1'000'000, 7);
  EXPECT_EQ(classes.size(), 100u);
  EXPECT_EQ(class_bytes(classes), 1'000'000u);
}

TEST(SynthClassSet, Deterministic) {
  const auto a = synth_class_set("t", 50, 500'000, 9);
  const auto b = synth_class_set("t", 50, 500'000, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
  }
}

TEST(SynthClassSet, SizesVary) {
  // "The loaded classes have different sizes."
  const auto classes = synth_class_set("t", 200, 2'000'000, 11);
  std::uint32_t lo = classes[0].size_bytes, hi = classes[0].size_bytes;
  for (const auto& c : classes) {
    lo = std::min(lo, c.size_bytes);
    hi = std::max(hi, c.size_bytes);
  }
  EXPECT_GT(hi, lo * 4);
}

TEST(SynthClassSet, NamesAreUniqueAndPrefixed) {
  const auto classes = synth_class_set("com.example", 10, 10'000, 1);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(classes[i].name.rfind("com.example.", 0), 0u);
    for (std::size_t j = i + 1; j < classes.size(); ++j)
      EXPECT_NE(classes[i].name, classes[j].name);
  }
}

TEST(SynthClassSet, ValidatesArguments) {
  EXPECT_THROW(synth_class_set("t", 0, 1000, 1), std::invalid_argument);
  EXPECT_THROW(synth_class_set("t", 100, 100, 1), std::invalid_argument);
}

TEST(PaperSizes, SmallMatchesPaper) {
  const auto classes = small_class_set();
  EXPECT_EQ(classes.size(), 374u);  // "small - 374 classes (~2.8MB)"
  EXPECT_EQ(class_bytes(classes), 2'800'000u);
}

TEST(PaperSizes, MediumMatchesPaper) {
  const auto classes = medium_class_set();
  EXPECT_EQ(classes.size(), 574u);  // "medium - 574 classes (~9.2MB)"
  EXPECT_EQ(class_bytes(classes), 9'200'000u);
}

TEST(PaperSizes, BigMatchesPaper) {
  const auto classes = big_class_set();
  EXPECT_EQ(classes.size(), 1574u);  // "big - 1574 classes (~41MB)"
  EXPECT_EQ(class_bytes(classes), 41'000'000u);
}

}  // namespace
}  // namespace prebake::rt
