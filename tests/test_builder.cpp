#include "faas/builder.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"

namespace prebake::faas {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest()
      : kernel_{sim_, exp::testbed_costs()},
        startup_{kernel_, exp::testbed_runtime(), assets_},
        builder_{kernel_, startup_} {}

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
  core::StartupService startup_;
  FunctionBuilder builder_;
};

TEST_F(BuilderTest, RegistersRuntimeBinaryOnce) {
  builder_.ensure_runtime_binary("/opt/jvm/bin/java");
  const std::uint64_t size = kernel_.fs().size_of("/opt/jvm/bin/java");
  builder_.ensure_runtime_binary("/opt/jvm/bin/java");  // idempotent
  EXPECT_EQ(kernel_.fs().size_of("/opt/jvm/bin/java"), size);
  EXPECT_GT(size, 10ull << 20);
}

TEST_F(BuilderTest, PackagesClasspathArchive) {
  const BuildResult built =
      builder_.build(exp::markdown_spec(), std::nullopt, sim::Rng{1});
  EXPECT_EQ(built.spec.classpath_archive, "/registry/markdown-render/classes.jar");
  ASSERT_TRUE(kernel_.fs().exists(built.spec.classpath_archive));
  // Archive carries the class bytes plus jar overhead.
  EXPECT_GE(kernel_.fs().size_of(built.spec.classpath_archive),
            built.spec.total_class_bytes());
  EXPECT_FALSE(built.snapshot.has_value());
}

TEST_F(BuilderTest, StagesInitIoData) {
  const BuildResult built =
      builder_.build(exp::image_resizer_spec(), std::nullopt, sim::Rng{1});
  ASSERT_FALSE(built.spec.init_io_path.empty());
  EXPECT_TRUE(kernel_.fs().exists(built.spec.init_io_path));
  EXPECT_EQ(kernel_.fs().size_of(built.spec.init_io_path),
            built.spec.init_io_bytes);
}

TEST_F(BuilderTest, PrebakeConfigProducesSnapshot) {
  core::PrebakeConfig cfg;
  cfg.policy = core::SnapshotPolicy::warmup(1);
  const BuildResult built =
      builder_.build(exp::noop_spec(), cfg, sim::Rng{1});
  ASSERT_TRUE(built.snapshot.has_value());
  EXPECT_EQ(built.snapshot->policy.tag(), "warmup1");
  EXPECT_GT(built.snapshot->images.nominal_total(), 10ull << 20);
  // Build time covers the whole bake (start + warm + dump + persist).
  EXPECT_GT(built.build_time.to_millis(), 100.0);
}

TEST_F(BuilderTest, TinyFunctionStillGetsAnArchive) {
  rt::FunctionSpec spec;
  spec.name = "tiny";
  spec.handler_id = "noop";
  const BuildResult built = builder_.build(spec, std::nullopt, sim::Rng{1});
  EXPECT_TRUE(kernel_.fs().exists(built.spec.classpath_archive));
  EXPECT_GE(kernel_.fs().size_of(built.spec.classpath_archive), 4096u);
}

}  // namespace
}  // namespace prebake::faas
