// Streaming trace sources and the memory-bounded replay (DESIGN.md §6h):
// stream/legacy equivalence, Zipf sampler determinism, CSV round-trips, and
// the aggregate accounting of replay_trace_stream.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "exp/calibration.hpp"
#include "faas/platform.hpp"
#include "faas/trace.hpp"
#include "faas/trace_source.hpp"
#include "os/kernel.hpp"
#include "rt/classfile.hpp"
#include "sim/simulation.hpp"

using namespace prebake;

namespace {

std::vector<faas::TraceEvent> drain(faas::TraceSource& source) {
  std::vector<faas::TraceEvent> events;
  while (std::optional<faas::TraceEvent> e = source.next())
    events.push_back(std::move(*e));
  return events;
}

rt::FunctionSpec tiny_spec(const std::string& name) {
  rt::FunctionSpec spec;
  spec.name = name;
  spec.handler_id = "noop";
  spec.init_classes = rt::synth_class_set("s", 4, 40'000, 0x11u);
  spec.appinit_compute = sim::Duration::millis(1);
  return spec;
}

}  // namespace

TEST(TraceStreamPoisson, MatchesLegacyGeneratorExactly) {
  faas::PoissonTraceSource source{"fn", 5.0, sim::Duration::seconds(120), 7};
  const auto streamed = drain(source);
  const auto legacy =
      faas::generate_poisson_trace("fn", 5.0, sim::Duration::seconds(120), 7);
  EXPECT_EQ(streamed, legacy);  // same RNG draws, same events, same order
  EXPECT_GT(streamed.size(), 400u);
}

TEST(TraceStreamPoisson, ExhaustedSourceStaysExhausted) {
  faas::PoissonTraceSource source{"fn", 50.0, sim::Duration::seconds(1), 3};
  drain(source);
  EXPECT_FALSE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());
}

TEST(TraceStreamDiurnal, MatchesLegacyGeneratorExactly) {
  faas::DiurnalTraceSource source{"fn",
                                  1.0,
                                  8.0,
                                  sim::Duration::seconds(60),
                                  sim::Duration::seconds(300),
                                  11};
  const auto streamed = drain(source);
  const auto legacy = faas::generate_diurnal_trace(
      "fn", 1.0, 8.0, sim::Duration::seconds(60), sim::Duration::seconds(300),
      11);
  EXPECT_EQ(streamed, legacy);
  EXPECT_GT(streamed.size(), 100u);
}

TEST(TraceStreamDiurnal, ValidationNamesBothRates) {
  try {
    faas::DiurnalTraceSource bad{"fn", 5.0, 1.0, sim::Duration::seconds(60),
                                 sim::Duration::seconds(60), 1};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("base_rate_hz=5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("peak_rate_hz=1"), std::string::npos) << msg;
  }
}

TEST(TraceStreamZipf, SamplerGoldenSequence) {
  // Pinned draw sequence: any change to the CDF construction or the
  // uniform-draw protocol shows up here before it silently reshuffles
  // every seeded workload in the policy study.
  faas::ZipfSampler sampler{16, 1.0};
  sim::Rng rng{123};
  const std::uint32_t expected[] = {4, 9, 4,  2, 0, 3, 6, 11,
                                    13, 4, 7, 2, 14, 1, 5, 2};
  for (std::uint32_t want : expected) EXPECT_EQ(sampler.sample(rng), want);
}

TEST(TraceStreamZipf, ProbabilitiesFollowThePowerLaw) {
  faas::ZipfSampler sampler{16, 1.0};
  // H(16) = sum 1/k ~ 3.3807; P(0) = 1/H, and P(i) ~ 1/(i+1).
  EXPECT_NEAR(sampler.probability(0), 0.295794, 1e-5);
  EXPECT_NEAR(sampler.probability(1) / sampler.probability(0), 0.5, 1e-9);
  EXPECT_NEAR(sampler.probability(15) / sampler.probability(0), 1.0 / 16.0,
              1e-9);
}

TEST(TraceStreamZipf, ZeroSkewIsUniform) {
  faas::ZipfSampler sampler{8, 0.0};
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_NEAR(sampler.probability(i), 0.125, 1e-12);
}

TEST(TraceStreamZipf, SourceIsSeedDeterministic) {
  faas::ZipfTraceConfig cfg;
  cfg.functions = 20;
  cfg.rate_hz = 50.0;
  cfg.duration = sim::Duration::seconds(60);
  cfg.seed = 99;
  faas::ZipfTraceSource a{cfg};
  faas::ZipfTraceSource b{cfg};
  EXPECT_EQ(drain(a), drain(b));
}

TEST(TraceStreamZipf, MaxEventsBoundsTheStream) {
  faas::ZipfTraceConfig cfg;
  cfg.functions = 10;
  cfg.rate_hz = 100.0;
  cfg.duration = sim::Duration::seconds(3600);
  cfg.max_events = 250;
  faas::ZipfTraceSource source{cfg};
  EXPECT_EQ(drain(source).size(), 250u);
  EXPECT_FALSE(source.next().has_value());
}

TEST(TraceStreamZipf, EventsAreOrderedAndNamedByRank) {
  faas::ZipfTraceConfig cfg;
  cfg.functions = 5;
  cfg.rate_hz = 30.0;
  cfg.duration = sim::Duration::seconds(30);
  faas::ZipfTraceSource source{cfg};
  ASSERT_EQ(source.function_names().size(), 5u);
  EXPECT_EQ(source.function_names()[0], "fn-0");
  sim::Duration prev{};
  std::size_t count = 0;
  while (std::optional<faas::TraceEvent> e = source.next()) {
    EXPECT_GE(e->at, prev);
    prev = e->at;
    EXPECT_EQ(e->function.rfind("fn-", 0), 0u);
    ++count;
  }
  EXPECT_GT(count, 100u);
}

TEST(TraceStreamCsv, StreamedTraceRoundTrips) {
  faas::ZipfTraceConfig cfg;
  cfg.functions = 12;
  cfg.rate_hz = 40.0;
  cfg.duration = sim::Duration::seconds(30);
  cfg.seed = 5;
  faas::ZipfTraceSource source{cfg};
  const auto events = drain(source);
  ASSERT_GT(events.size(), 100u);

  const std::string csv = faas::format_trace_csv(events);
  const auto parsed = faas::parse_trace_csv(csv);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].function, events[i].function);
    // The format keeps 3 decimals of milliseconds — microsecond precision.
    EXPECT_LE(std::abs((parsed[i].at - events[i].at).to_millis()), 0.0005);
  }
  // A second round-trip is exact: the format is a fixed point.
  EXPECT_EQ(faas::format_trace_csv(parsed), csv);
}

namespace {

// Two identical single-node platforms over one simulation each; used to
// compare the streaming replay against the materialized one.
struct ReplayRig {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::Platform platform;

  explicit ReplayRig(std::uint64_t seed, faas::PlatformConfig cfg = {})
      : platform{kernel, exp::testbed_runtime(), cfg, seed} {
    platform.resources().add_node("n1", 8ull << 30);
  }
};

faas::ZipfTraceConfig small_workload() {
  faas::ZipfTraceConfig cfg;
  cfg.functions = 8;
  cfg.rate_hz = 20.0;
  cfg.duration = sim::Duration::seconds(120);
  cfg.seed = 21;
  return cfg;
}

void deploy_fleet(faas::Platform& platform, const faas::ZipfTraceSource& src) {
  for (const std::string& name : src.function_names())
    platform.deploy(tiny_spec(name), faas::StartMode::kPrebaked,
                    core::SnapshotPolicy::warmup(1));
}

}  // namespace

TEST(TraceStreamReplay, MatchesMaterializedReplay) {
  const faas::ZipfTraceConfig wl = small_workload();

  ReplayRig a{7};
  faas::ZipfTraceSource src_a{wl};
  deploy_fleet(a.platform, src_a);
  const faas::StreamReplayResult streamed =
      faas::replay_trace_stream(a.platform, src_a);

  ReplayRig b{7};
  faas::ZipfTraceSource src_b{wl};
  deploy_fleet(b.platform, src_b);
  const auto events = drain(src_b);
  const faas::TraceReplayResult vec = faas::replay_trace(b.platform, events);

  EXPECT_EQ(streamed.events, events.size());
  EXPECT_EQ(streamed.responses_ok, vec.responses_ok);
  EXPECT_EQ(streamed.responses_rejected, vec.responses_rejected);
  EXPECT_EQ(streamed.responses_fallback, vec.responses_fallback);
  EXPECT_EQ(streamed.makespan, vec.makespan);
  EXPECT_EQ(a.platform.stats().cold_starts, b.platform.stats().cold_starts);
}

TEST(TraceStreamReplay, BoundedByDefaultOptInPerRequest) {
  const faas::ZipfTraceConfig wl = small_workload();

  ReplayRig a{7};
  faas::ZipfTraceSource src_a{wl};
  deploy_fleet(a.platform, src_a);
  const faas::StreamReplayResult bounded =
      faas::replay_trace_stream(a.platform, src_a);
  EXPECT_TRUE(bounded.metrics.empty());  // no O(requests) growth by default
  EXPECT_EQ(bounded.aggregate.count, bounded.responses_ok);
  EXPECT_LE(bounded.per_function.size(), 8u);
  EXPECT_GT(bounded.peak_pending_events, 0u);
  EXPECT_GT(bounded.peak_replicas, 0u);

  ReplayRig b{7};
  faas::ZipfTraceSource src_b{wl};
  deploy_fleet(b.platform, src_b);
  faas::StreamReplayOptions opts;
  opts.keep_request_metrics = true;
  const faas::StreamReplayResult full =
      faas::replay_trace_stream(b.platform, src_b, opts);
  EXPECT_EQ(full.metrics.size(), full.responses_ok);
}

TEST(TraceStreamReplay, PerFunctionAggregatesCoverTheStream) {
  const faas::ZipfTraceConfig wl = small_workload();
  ReplayRig rig{3};
  faas::ZipfTraceSource src{wl};
  deploy_fleet(rig.platform, src);
  const faas::StreamReplayResult rep =
      faas::replay_trace_stream(rig.platform, src);

  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t colds = 0;
  for (const auto& [name, fa] : rep.per_function) {
    EXPECT_EQ(fa.requests, fa.ok + fa.rejected);
    requests += fa.requests;
    ok += fa.ok;
    colds += fa.cold_starts;
    if (fa.ok > 0) {
      EXPECT_GT(fa.total_ms_sum, 0.0);
      EXPECT_GE(fa.total_ms_max * static_cast<double>(fa.ok),
                fa.total_ms_sum * 0.999);
    }
  }
  EXPECT_EQ(requests, rep.events);
  EXPECT_EQ(ok, rep.responses_ok);
  EXPECT_EQ(colds, rep.aggregate.cold_starts);
  // Zipf head dominance: the hottest rank got the most requests.
  ASSERT_TRUE(rep.per_function.contains("fn-0"));
  for (const auto& [name, fa] : rep.per_function)
    EXPECT_LE(fa.requests, rep.per_function.at("fn-0").requests);
}

TEST(TraceStreamReplay, FallbackServesAreNotRejections) {
  // Corrupt every image read: each cold start exhausts its restore
  // attempts and falls back to Vanilla. Those requests are *served* — they
  // must land on the fallback axis, with the rejection axis untouched.
  faas::PlatformConfig cfg;
  cfg.restore_max_attempts = 2;
  ReplayRig rig{13, cfg};
  faas::ZipfTraceConfig wl = small_workload();
  wl.duration = sim::Duration::seconds(30);
  faas::ZipfTraceSource src{wl};
  deploy_fleet(rig.platform, src);

  os::FaultPlan plan;
  plan.seed = 13;
  plan.image_corruption_rate = 1.0;
  rig.kernel.faults().configure(plan);

  const faas::StreamReplayResult rep =
      faas::replay_trace_stream(rig.platform, src);
  EXPECT_EQ(rep.responses_ok, rep.events);
  EXPECT_EQ(rep.responses_rejected, 0u);
  EXPECT_GT(rep.responses_fallback, 0u);
  EXPECT_EQ(rep.aggregate.fallback_serves, rep.responses_fallback);
  EXPECT_GT(rig.platform.stats().restore_fallbacks, 0u);
  std::uint64_t per_fn_fallbacks = 0;
  for (const auto& [name, fa] : rep.per_function)
    per_fn_fallbacks += fa.fallback_serves;
  EXPECT_EQ(per_fn_fallbacks, rep.responses_fallback);
}
