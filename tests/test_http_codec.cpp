#include "funcs/http_codec.hpp"

#include "funcs/handlers.hpp"

#include <gtest/gtest.h>

namespace prebake::funcs {
namespace {

TEST(HttpCodec, RequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.path = "/function/resizer";
  req.headers["Content-Type"] = "text/markdown";
  req.headers["X-Trace"] = "abc123";
  req.body = "# hello\n";

  const std::string wire = encode_request(req);
  std::size_t consumed = 0;
  const auto back = decode_request(wire, &consumed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, "POST");
  EXPECT_EQ(back->path, "/function/resizer");
  EXPECT_EQ(back->headers.at("Content-Type"), "text/markdown");
  EXPECT_EQ(back->headers.at("X-Trace"), "abc123");
  EXPECT_EQ(back->body, "# hello\n");
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpCodec, ResponseRoundTrip) {
  Response res;
  res.status = 503;
  res.headers["Retry-After"] = "1";
  res.body = "no capacity";
  const auto back = decode_response(encode_response(res));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 503);
  EXPECT_EQ(back->headers.at("Retry-After"), "1");
  EXPECT_EQ(back->body, "no capacity");
}

TEST(HttpCodec, ContentLengthAlwaysAccurate) {
  Request req;
  req.headers["Content-Length"] = "9999";  // caller lies; codec overrides
  req.body = "four";
  const std::string wire = encode_request(req);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("9999"), std::string::npos);
}

TEST(HttpCodec, EmptyBodyAndPath) {
  Request req;
  req.method = "GET";
  req.path = "";
  const auto back = decode_request(encode_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->path, "/");
  EXPECT_TRUE(back->body.empty());
}

TEST(HttpCodec, BinaryBodySurvives) {
  Response res;
  res.status = 200;
  res.body = std::string{"\x00\x01\xFF\r\n\r\nraw", 9};
  const auto back = decode_response(encode_response(res));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body, res.body);
}

TEST(HttpCodec, PipelinedMessagesConsumeExactly) {
  Request a;
  a.body = "first";
  Request b;
  b.body = "second";
  const std::string wire = encode_request(a) + encode_request(b);
  std::size_t consumed = 0;
  const auto first = decode_request(wire, &consumed);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body, "first");
  const auto second = decode_request(wire.substr(consumed));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "second");
}

TEST(HttpCodec, HeaderWhitespaceTrimmed) {
  const std::string wire =
      "GET / HTTP/1.1\r\nX-Pad:   spaced value \t\r\nContent-Length: 0\r\n\r\n";
  const auto req = decode_request(wire);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->headers.at("X-Pad"), "spaced value");
}

TEST(HttpCodec, Http10Accepted) {
  const std::string wire = "GET /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n";
  EXPECT_TRUE(decode_request(wire).has_value());
}

TEST(HttpCodec, MalformedRequestLineRejected) {
  ParseError err;
  EXPECT_FALSE(decode_request("GARBAGE\r\n\r\n", nullptr, &err).has_value());
  EXPECT_FALSE(err.message.empty());
  EXPECT_FALSE(decode_request("GET /\r\n\r\n").has_value());      // no version
  EXPECT_FALSE(decode_request("GET / SPDY/3\r\n\r\n").has_value());
}

TEST(HttpCodec, TruncatedInputsRejectedNotCrash) {
  const std::string full = encode_request(sample_request("markdown"));
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, full.size() / 4,
                          full.size() / 2, full.size() - 1}) {
    ParseError err;
    const auto r = decode_request(full.substr(0, cut), nullptr, &err);
    EXPECT_FALSE(r.has_value()) << "cut=" << cut;
  }
}

TEST(HttpCodec, BadContentLengthRejected) {
  const std::string wire = "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
  ParseError err;
  EXPECT_FALSE(decode_request(wire, nullptr, &err).has_value());
  EXPECT_EQ(err.message, "bad Content-Length");
}

TEST(HttpCodec, InvalidHeaderNameRejected) {
  const std::string wire = "GET / HTTP/1.1\r\nBad Header: x\r\n\r\n";
  EXPECT_FALSE(decode_request(wire).has_value());
}

TEST(HttpCodec, BadStatusCodeRejected) {
  EXPECT_FALSE(decode_response("HTTP/1.1 99 Weird\r\n\r\n").has_value());
  EXPECT_FALSE(decode_response("HTTP/1.1 abc Bad\r\n\r\n").has_value());
  EXPECT_FALSE(decode_response("SIP/2.0 200 OK\r\n\r\n").has_value());
}

TEST(HttpCodec, ReasonPhrases) {
  EXPECT_STREQ(reason_phrase(200), "OK");
  EXPECT_STREQ(reason_phrase(404), "Not Found");
  EXPECT_STREQ(reason_phrase(503), "Service Unavailable");
  EXPECT_STREQ(reason_phrase(299), "Unknown");
}

TEST(HttpCodec, LargePayloadRoundTrip) {
  Request req = sample_request("markdown");  // ~24 KiB body
  const auto back = decode_request(encode_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body, req.body);
}

}  // namespace
}  // namespace prebake::funcs
