#include "faas/platform.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "faas/load_generator.hpp"

namespace prebake::faas {
namespace {

constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : kernel_{sim_, exp::testbed_costs()},
        platform_{kernel_, exp::testbed_runtime(), PlatformConfig{}, 99} {
    platform_.resources().add_node("node-1", 8 * GiB);
  }

  funcs::Response invoke_sync(const std::string& fn) {
    funcs::Response out;
    bool done = false;
    platform_.invoke(fn, funcs::sample_request("noop"),
                     [&](const funcs::Response& res, const RequestMetrics&) {
                       out = res;
                       done = true;
                     });
    // Service completion is delivered as an event; pump until it lands.
    while (!done && kernel_.sim().step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  Platform platform_;
};

TEST_F(PlatformTest, DeployVanillaAndInvoke) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  EXPECT_TRUE(platform_.registry().has("noop"));
  const funcs::Response res = invoke_sync("noop");
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(platform_.stats().invocations, 1u);
  EXPECT_EQ(platform_.stats().cold_starts, 1u);
}

TEST_F(PlatformTest, DeployPrebakedBakesSnapshot) {
  platform_.deploy(exp::noop_spec(), StartMode::kPrebaked,
                   core::SnapshotPolicy::warmup(1));
  EXPECT_TRUE(platform_.snapshots().has("noop", core::SnapshotPolicy::warmup(1)));
}

TEST_F(PlatformTest, UnknownFunctionThrows) {
  EXPECT_THROW(platform_.invoke("nope", funcs::Request{}, [](auto&&...) {}),
               std::out_of_range);
}

TEST_F(PlatformTest, SecondInvocationIsWarm) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  invoke_sync("noop");
  invoke_sync("noop");
  EXPECT_EQ(platform_.stats().invocations, 2u);
  EXPECT_EQ(platform_.stats().cold_starts, 1u);
  ASSERT_EQ(platform_.request_log().size(), 2u);
  EXPECT_TRUE(platform_.request_log()[0].cold_start);
  EXPECT_FALSE(platform_.request_log()[1].cold_start);
  EXPECT_LT(platform_.request_log()[1].total.to_millis(),
            platform_.request_log()[0].total.to_millis());
}

TEST_F(PlatformTest, PrebakedColdStartFasterThanVanilla) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  rt::FunctionSpec prebaked_spec = exp::noop_spec();
  prebaked_spec.name = "noop-prebaked";
  platform_.deploy(prebaked_spec, StartMode::kPrebaked,
                   core::SnapshotPolicy::warmup(1));

  invoke_sync("noop");
  invoke_sync("noop-prebaked");
  const auto& log = platform_.request_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GT(log[0].startup.to_millis(), log[1].startup.to_millis() * 1.4);
}

TEST_F(PlatformTest, ScaleUpCreatesIdleReplicas) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  platform_.scale_up("noop", 3);
  EXPECT_EQ(platform_.replica_count("noop"), 3u);
  // Start-up runs on the node's timeline; pump the simulation to realize it.
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(2));
  EXPECT_EQ(platform_.idle_replica_count("noop"), 3u);
  // A pre-warmed invocation is not a cold start.
  invoke_sync("noop");
  EXPECT_EQ(platform_.stats().cold_starts, 0u);
}

TEST_F(PlatformTest, OneRequestPerReplicaScalesOut) {
  // Two interleaved requests in one event turn need two replicas.
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  platform_.scale_up("noop", 1);
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(2));
  int responses = 0;
  kernel_.sim().schedule_in(sim::Duration::millis(1), [&] {
    platform_.invoke("noop", funcs::Request{},
                     [&](const funcs::Response&, const RequestMetrics&) {
                       ++responses;
                     });
  });
  kernel_.sim().schedule_in(sim::Duration::millis(1), [&] {
    platform_.invoke("noop", funcs::Request{},
                     [&](const funcs::Response&, const RequestMetrics&) {
                       ++responses;
                     });
  });
  while (responses < 2 && kernel_.sim().step()) {
  }
  EXPECT_EQ(responses, 2);
  // The second request arrived while the first replica was busy serving, so
  // the platform scaled out to a second replica.
  EXPECT_EQ(platform_.replica_count("noop"), 2u);
}

TEST_F(PlatformTest, IdleReplicasAreReclaimed) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  invoke_sync("noop");
  EXPECT_EQ(platform_.replica_count("noop"), 1u);
  const std::uint64_t used = platform_.resources().total_mem_used();
  EXPECT_GT(used, 0u);
  // Run past the idle timeout.
  kernel_.sim().run();
  EXPECT_EQ(platform_.replica_count("noop"), 0u);
  EXPECT_EQ(platform_.resources().total_mem_used(), 0u);
  EXPECT_EQ(platform_.stats().replicas_reclaimed, 1u);
}

TEST_F(PlatformTest, ActivityPushesIdleTimeoutOut) {
  PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(10);
  Platform p{kernel_, exp::testbed_runtime(), cfg, 7};
  p.resources().add_node("n", 8 * GiB);
  p.deploy(exp::noop_spec(), StartMode::kVanilla);

  // Invoke at t=0 and t=8s; the replica must survive to at least 18s.
  int responses = 0;
  auto cb = [&](const funcs::Response&, const RequestMetrics&) { ++responses; };
  p.invoke("noop", funcs::Request{}, cb);
  kernel_.sim().schedule_in(sim::Duration::seconds(8), [&] {
    EXPECT_EQ(p.replica_count("noop"), 1u);
    p.invoke("noop", funcs::Request{}, cb);
  });
  kernel_.sim().run();
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(p.replica_count("noop"), 0u);  // eventually reclaimed
  EXPECT_EQ(p.stats().replicas_started, 1u);
}

TEST_F(PlatformTest, MemoryAccountingPerMode) {
  platform_.deploy(exp::image_resizer_spec(), StartMode::kPrebaked,
                   core::SnapshotPolicy::no_warmup());
  platform_.scale_up("image-resizer", 1);
  // The prebaked resizer replica accounts for its ~100 MiB snapshot.
  EXPECT_GT(platform_.resources().total_mem_used(), 100ull * 1024 * 1024);
}

TEST_F(PlatformTest, LoadGeneratorClosedLoop) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  LoadGenConfig cfg;
  cfg.function = "noop";
  cfg.requests = 20;
  cfg.think_time = sim::Duration::millis(2);
  const LoadGenResult result = run_load(platform_, cfg);
  ASSERT_EQ(result.metrics.size(), 20u);
  ASSERT_EQ(result.responses.size(), 20u);
  EXPECT_TRUE(result.metrics.front().cold_start);
  for (std::size_t i = 1; i < result.metrics.size(); ++i)
    EXPECT_FALSE(result.metrics[i].cold_start);
  for (const auto& res : result.responses) EXPECT_TRUE(res.ok());
  EXPECT_GT(result.makespan.to_millis(), 20 * 2.0);
}

TEST_F(PlatformTest, CorruptSnapshotFallsBackToVanilla) {
  platform_.deploy(exp::noop_spec(), StartMode::kPrebaked,
                   core::SnapshotPolicy::warmup(1));
  // Flip a byte in the stored snapshot's inventory image.
  core::BakedSnapshot& snap =
      platform_.snapshots().get_mutable("noop", core::SnapshotPolicy::warmup(1));
  criu::ImageDir corrupted;
  for (const auto& [name, f] : snap.images.files()) {
    auto bytes = f.bytes;
    if (name == "inventory.img") bytes[bytes.size() / 2] ^= 0xFF;
    corrupted.put(name, std::move(bytes), f.nominal_size);
  }
  snap.images = std::move(corrupted);

  // The invocation still succeeds, via the Vanilla fallback.
  const funcs::Response res = invoke_sync("noop");
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(platform_.stats().restore_fallbacks, 1u);
  EXPECT_EQ(platform_.stats().cold_starts, 1u);
}

TEST_F(PlatformTest, MinIdleKeepsPoolWarmPastTimeout) {
  PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(5);
  Platform p{kernel_, exp::testbed_runtime(), cfg, 5};
  p.resources().add_node("n", 8 * GiB);
  p.deploy(exp::noop_spec(), StartMode::kVanilla);
  p.set_min_idle("noop", 2);
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(2));
  EXPECT_EQ(p.idle_replica_count("noop"), 2u);
  // Run far past the idle timeout: the pool floor survives.
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(120));
  EXPECT_EQ(p.idle_replica_count("noop"), 2u);
  EXPECT_EQ(p.stats().replicas_reclaimed, 0u);
}

TEST_F(PlatformTest, MinIdleUnknownFunctionThrows) {
  EXPECT_THROW(platform_.set_min_idle("ghost", 1), std::out_of_range);
}

TEST_F(PlatformTest, ExcessAboveMinIdleIsStillReclaimed) {
  PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(5);
  Platform p{kernel_, exp::testbed_runtime(), cfg, 6};
  p.resources().add_node("n", 8 * GiB);
  p.deploy(exp::noop_spec(), StartMode::kVanilla);
  p.set_min_idle("noop", 1);
  p.scale_up("noop", 4);
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(2));
  EXPECT_EQ(p.idle_replica_count("noop"), 4u);
  kernel_.sim().run_until(kernel_.sim().now() + sim::Duration::seconds(120));
  EXPECT_EQ(p.idle_replica_count("noop"), 1u);
  EXPECT_EQ(p.stats().replicas_reclaimed, 3u);
}

TEST_F(PlatformTest, OpenLoopDriverDeliversAllArrivals) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  OpenLoopConfig cfg;
  cfg.function = "noop";
  cfg.rate_hz = 20.0;
  cfg.duration = sim::Duration::seconds(10);
  cfg.seed = 11;
  const OpenLoopResult result = run_open_loop(platform_, cfg);
  // ~200 expected arrivals; all answered, none rejected, memory tracked.
  EXPECT_GT(result.responses_ok, 150u);
  EXPECT_EQ(result.responses_rejected, 0u);
  EXPECT_EQ(result.metrics.size(), result.responses_ok);
  EXPECT_GT(result.mem_byte_seconds, 0.0);
  EXPECT_GE(result.makespan.to_seconds(), 9.0);
}

TEST_F(PlatformTest, OpenLoopDeterministicPerSeed) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  OpenLoopConfig cfg;
  cfg.function = "noop";
  cfg.rate_hz = 5.0;
  cfg.duration = sim::Duration::seconds(5);
  cfg.seed = 21;
  const OpenLoopResult a = run_open_loop(platform_, cfg);
  // A different seed shifts the arrival count with high probability.
  cfg.seed = 22;
  const OpenLoopResult b = run_open_loop(platform_, cfg);
  EXPECT_NE(a.responses_ok + 1000 * a.responses_rejected,
            b.responses_ok + 1000 * b.responses_rejected);
}

TEST_F(PlatformTest, RedeployBumpsVersion) {
  platform_.deploy(exp::noop_spec(), StartMode::kVanilla);
  EXPECT_EQ(platform_.registry().get("noop").version, 1u);
  platform_.deploy(exp::noop_spec(), StartMode::kPrebaked,
                   core::SnapshotPolicy::warmup(1));
  EXPECT_EQ(platform_.registry().get("noop").version, 2u);
  EXPECT_EQ(platform_.registry().get("noop").mode, StartMode::kPrebaked);
}

}  // namespace
}  // namespace prebake::faas
