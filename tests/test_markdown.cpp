#include "funcs/markdown.hpp"

#include <gtest/gtest.h>

namespace prebake::funcs {
namespace {

TEST(HtmlEscape, EscapesSpecials) {
  EXPECT_EQ(html_escape("a < b & c > \"d\""),
            "a &lt; b &amp; c &gt; &quot;d&quot;");
}

TEST(HtmlEscape, PassesPlainText) {
  EXPECT_EQ(html_escape("hello world"), "hello world");
}

TEST(Markdown, Heading) {
  EXPECT_EQ(render_markdown("# Title"), "<h1>Title</h1>\n");
  EXPECT_EQ(render_markdown("### Sub"), "<h3>Sub</h3>\n");
  EXPECT_EQ(render_markdown("###### Deep"), "<h6>Deep</h6>\n");
}

TEST(Markdown, HashWithoutSpaceIsNotHeading) {
  EXPECT_EQ(render_markdown("#tag"), "<p>#tag</p>\n");
}

TEST(Markdown, Paragraph) {
  EXPECT_EQ(render_markdown("hello world"), "<p>hello world</p>\n");
}

TEST(Markdown, ParagraphJoinsLines) {
  EXPECT_EQ(render_markdown("line one\nline two"),
            "<p>line one line two</p>\n");
}

TEST(Markdown, BlankLineSeparatesParagraphs) {
  EXPECT_EQ(render_markdown("one\n\ntwo"), "<p>one</p>\n<p>two</p>\n");
}

TEST(Markdown, Bold) {
  EXPECT_EQ(render_markdown("a **bold** word"),
            "<p>a <strong>bold</strong> word</p>\n");
}

TEST(Markdown, Italic) {
  EXPECT_EQ(render_markdown("an *italic* word"),
            "<p>an <em>italic</em> word</p>\n");
}

TEST(Markdown, NestedEmphasis) {
  EXPECT_EQ(render_markdown("**bold *and italic***"),
            "<p><strong>bold <em>and italic</em></strong></p>\n");
}

TEST(Markdown, InlineCode) {
  EXPECT_EQ(render_markdown("run `make all` now"),
            "<p>run <code>make all</code> now</p>\n");
}

TEST(Markdown, InlineCodeEscapesHtml) {
  EXPECT_EQ(render_markdown("`a < b`"), "<p><code>a &lt; b</code></p>\n");
}

TEST(Markdown, Link) {
  EXPECT_EQ(render_markdown("see [docs](https://x.io/a?b=1)"),
            "<p>see <a href=\"https://x.io/a?b=1\">docs</a></p>\n");
}

TEST(Markdown, UnclosedLinkFallsThrough) {
  EXPECT_EQ(render_markdown("just [a bracket"), "<p>just [a bracket</p>\n");
}

TEST(Markdown, FencedCodeBlock) {
  EXPECT_EQ(render_markdown("```\nx = 1\ny = 2\n```"),
            "<pre><code>x = 1\ny = 2\n</code></pre>\n");
}

TEST(Markdown, FencedCodeBlockWithLanguage) {
  EXPECT_EQ(render_markdown("```bash\nls -la\n```"),
            "<pre><code class=\"language-bash\">ls -la\n</code></pre>\n");
}

TEST(Markdown, CodeBlockPreservesMarkdownSyntax) {
  const std::string html = render_markdown("```\n# not a heading\n```");
  EXPECT_NE(html.find("# not a heading"), std::string::npos);
  EXPECT_EQ(html.find("<h1>"), std::string::npos);
}

TEST(Markdown, UnorderedList) {
  EXPECT_EQ(render_markdown("- one\n- two"),
            "<ul>\n<li>one</li>\n<li>two</li>\n</ul>\n");
}

TEST(Markdown, StarListMarker) {
  EXPECT_EQ(render_markdown("* item"), "<ul>\n<li>item</li>\n</ul>\n");
}

TEST(Markdown, OrderedList) {
  EXPECT_EQ(render_markdown("1. first\n2. second"),
            "<ol>\n<li>first</li>\n<li>second</li>\n</ol>\n");
}

TEST(Markdown, ListItemsRenderInline) {
  EXPECT_EQ(render_markdown("- **bold** item"),
            "<ul>\n<li><strong>bold</strong> item</li>\n</ul>\n");
}

TEST(Markdown, Blockquote) {
  EXPECT_EQ(render_markdown("> quoted text"),
            "<blockquote>\n<p>quoted text</p>\n</blockquote>\n");
}

TEST(Markdown, BlockquoteWithNestedStructure) {
  const std::string html = render_markdown("> # Quoted heading\n> body");
  EXPECT_NE(html.find("<blockquote>"), std::string::npos);
  EXPECT_NE(html.find("<h1>Quoted heading</h1>"), std::string::npos);
}

TEST(Markdown, HorizontalRule) {
  EXPECT_EQ(render_markdown("---"), "<hr/>\n");
  EXPECT_EQ(render_markdown("-----"), "<hr/>\n");
}

TEST(Markdown, TwoDashesIsParagraph) {
  EXPECT_EQ(render_markdown("--"), "<p>--</p>\n");
}

TEST(Markdown, EscapesHtmlInText) {
  EXPECT_EQ(render_markdown("<script>alert(1)</script>"),
            "<p>&lt;script&gt;alert(1)&lt;/script&gt;</p>\n");
}

TEST(Markdown, EmptyInputGivesEmptyOutput) {
  EXPECT_EQ(render_markdown(""), "");
  EXPECT_EQ(render_markdown("\n\n\n"), "");
}

TEST(Markdown, CrlfLineEndings) {
  EXPECT_EQ(render_markdown("# Title\r\nbody\r\n"),
            "<h1>Title</h1>\n<p>body</p>\n");
}

TEST(Markdown, MixedDocument) {
  const std::string doc =
      "# Doc\n\nIntro *text*.\n\n- a\n- b\n\n```\ncode\n```\n\n> quote\n";
  const std::string html = render_markdown(doc);
  EXPECT_NE(html.find("<h1>Doc</h1>"), std::string::npos);
  EXPECT_NE(html.find("<em>text</em>"), std::string::npos);
  EXPECT_NE(html.find("<ul>"), std::string::npos);
  EXPECT_NE(html.find("<pre><code>"), std::string::npos);
  EXPECT_NE(html.find("<blockquote>"), std::string::npos);
}

TEST(Markdown, DeterministicOutput) {
  const std::string doc = "# A\n\n- x\n- y\n";
  EXPECT_EQ(render_markdown(doc), render_markdown(doc));
}

}  // namespace
}  // namespace prebake::funcs
