#include "criu/image.hpp"

#include <gtest/gtest.h>

namespace prebake::criu {
namespace {

InventoryEntry sample_inventory() {
  InventoryEntry e;
  e.root_pid = 321;
  e.name = "java";
  e.argv = {"/opt/jvm/bin/java", "-jar", "fn.jar"};
  e.n_threads = 5;
  e.ns = os::Namespaces{7, 8, 9};
  e.caps = 3;
  return e;
}

TEST(ImageFormat, InventoryRoundTrip) {
  const InventoryEntry e = sample_inventory();
  EXPECT_EQ(decode_inventory(encode_inventory(e)), e);
}

TEST(ImageFormat, CoreRoundTrip) {
  std::vector<CoreEntry> cores;
  for (int i = 0; i < 3; ++i) {
    CoreEntry c;
    c.tid = 100 + i;
    for (std::size_t r = 0; r < c.regs.size(); ++r)
      c.regs[r] = static_cast<std::uint64_t>(i) * 100 + r;
    cores.push_back(c);
  }
  EXPECT_EQ(decode_core(encode_core(cores)), cores);
}

TEST(ImageFormat, MmRoundTrip) {
  std::vector<VmaEntry> vmas;
  VmaEntry v;
  v.id = 4;
  v.start = 0x555500000000ULL;
  v.length = 64 * 4096;
  v.prot = 3;
  v.kind = 1;
  v.name = "[jvm-heap]";
  v.backing_path = "/opt/jvm/libjvm.so";
  v.source_kind = SourceKind::kPattern;
  v.pattern_seed = 0xABC;
  v.pattern_version = 2;
  vmas.push_back(v);
  v.id = 5;
  v.source_kind = SourceKind::kBuffer;
  vmas.push_back(v);
  EXPECT_EQ(decode_mm(encode_mm(vmas)), vmas);
}

TEST(ImageFormat, PagemapRoundTrip) {
  const std::vector<PagemapEntry> es{{1, 0, 16}, {1, 20, 4}, {2, 0, 100}};
  EXPECT_EQ(decode_pagemap(encode_pagemap(es)), es);
}

TEST(ImageFormat, PagesDigestRoundTrip) {
  PagesEntry e;
  e.mode = PayloadMode::kDigest;
  e.digests = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL};
  EXPECT_EQ(decode_pages(encode_pages(e)), e);
}

TEST(ImageFormat, PagesFullRoundTrip) {
  PagesEntry e;
  e.mode = PayloadMode::kFull;
  e.digests = {42};
  e.raw.assign(os::kPageSize, 0x5A);
  EXPECT_EQ(decode_pages(encode_pages(e)), e);
}

TEST(ImageFormat, FilesRoundTrip) {
  const std::vector<FileEntry> es{{0, 0, "/dev/null", 0},
                                  {3, 3, "tcp://0.0.0.0:8080", 0},
                                  {5, 1, "", 77}};
  EXPECT_EQ(decode_files(encode_files(es)), es);
}

TEST(ImageFormat, StatsRoundTrip) {
  StatsEntry e;
  e.pages_dumped = 3300;
  e.payload_bytes = 3300 * 4096;
  e.metadata_bytes = 12345;
  e.dump_duration_ns = 987654321;
  e.warmup_requests = 1;
  EXPECT_EQ(decode_stats(encode_stats(e)), e);
}

TEST(ImageFormat, CorruptionDetected) {
  auto img = encode_inventory(sample_inventory());
  img[img.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_inventory(img), std::runtime_error);
}

TEST(ImageFormat, TruncationDetected) {
  auto img = encode_inventory(sample_inventory());
  img.resize(img.size() - 3);
  EXPECT_THROW(decode_inventory(img), std::runtime_error);
}

TEST(ImageFormat, WrongTypeRejected) {
  const auto img = encode_pagemap({{1, 0, 1}});
  EXPECT_THROW(decode_inventory(img), std::runtime_error);
}

TEST(ImageFormat, TooSmallRejected) {
  EXPECT_THROW(decode_stats(std::vector<std::uint8_t>{1, 2, 3}),
               std::runtime_error);
}

TEST(ImageDir, PutGetAndNames) {
  ImageDir dir;
  dir.put("a.img", {1, 2, 3});
  dir.put("b.img", {4, 5}, 1000);
  EXPECT_TRUE(dir.has("a.img"));
  EXPECT_EQ(dir.get("a.img").bytes.size(), 3u);
  EXPECT_EQ(dir.get("a.img").nominal_size, 3u);
  EXPECT_EQ(dir.get("b.img").nominal_size, 1000u);
  EXPECT_EQ(dir.names().size(), 2u);
}

TEST(ImageDir, MissingFileThrows) {
  ImageDir dir;
  EXPECT_THROW(dir.get("nope.img"), std::runtime_error);
}

TEST(ImageDir, Totals) {
  ImageDir dir;
  dir.put("a.img", std::vector<std::uint8_t>(10), 100);
  dir.put("b.img", std::vector<std::uint8_t>(20));
  EXPECT_EQ(dir.nominal_total(), 120u);
  EXPECT_EQ(dir.real_total(), 30u);
}

TEST(ImageDir, ValidateAcceptsRealImages) {
  ImageDir dir;
  dir.put("inventory.img", encode_inventory(sample_inventory()));
  dir.put("pagemap.img", encode_pagemap({{1, 0, 4}}));
  EXPECT_NO_THROW(dir.validate());
}

TEST(ImageDir, ValidateCatchesCorruption) {
  ImageDir dir;
  auto img = encode_inventory(sample_inventory());
  img[5] ^= 0xFF;
  dir.put("inventory.img", std::move(img));
  EXPECT_THROW(dir.validate(), std::runtime_error);
}

}  // namespace
}  // namespace prebake::criu
