// Reproduction gates: the emergent numbers of the calibrated testbed must
// track the paper's reported results (Figures 3-7, Table 1). These tests use
// fewer repetitions than the benches (medians converge fast); tolerances are
// a few percent.
#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/mann_whitney.hpp"

namespace prebake::exp {
namespace {

double median_startup(const rt::FunctionSpec& spec, Technique tech,
                      bool first_response, int reps = 40) {
  ScenarioConfig cfg;
  cfg.spec = spec;
  cfg.technique = tech;
  cfg.repetitions = reps;
  cfg.measure_first_response = first_response;
  cfg.seed = 42;
  return stats::median(run_startup_scenario(cfg).startup_ms);
}

TEST(ReproFig3, NoopVanillaAndPrebaked) {
  const double vanilla = median_startup(noop_spec(), Technique::kVanilla, false);
  const double prebaked =
      median_startup(noop_spec(), Technique::kPrebakeNoWarmup, false);
  EXPECT_NEAR(vanilla, 103.3, 4.0);
  EXPECT_NEAR(prebaked, 62.0, 3.0);
  // "the prebaking technique decreases the start-up delay by 40%".
  EXPECT_NEAR(1.0 - prebaked / vanilla, 0.40, 0.04);
}

TEST(ReproFig3, MarkdownRenderImproves47Percent) {
  const double vanilla =
      median_startup(markdown_spec(), Technique::kVanilla, false);
  const double prebaked =
      median_startup(markdown_spec(), Technique::kPrebakeNoWarmup, false);
  EXPECT_NEAR(vanilla, 100.0, 4.0);   // "reduced from 100ms"
  EXPECT_NEAR(prebaked, 53.0, 3.0);   // "to 53ms"
  EXPECT_NEAR(1.0 - prebaked / vanilla, 0.47, 0.04);
}

TEST(ReproFig3, ImageResizerImproves71Percent) {
  const double vanilla =
      median_startup(image_resizer_spec(), Technique::kVanilla, false);
  const double prebaked =
      median_startup(image_resizer_spec(), Technique::kPrebakeNoWarmup, false);
  EXPECT_NEAR(vanilla, 310.0, 10.0);  // "decreased from 310ms"
  EXPECT_NEAR(prebaked, 87.0, 4.0);   // "to 87ms"
  EXPECT_NEAR(1.0 - prebaked / vanilla, 0.71, 0.03);
}

TEST(ReproFig3, MedianDifferenceSignificantByMannWhitney) {
  ScenarioConfig cfg;
  cfg.spec = noop_spec();
  cfg.technique = Technique::kVanilla;
  cfg.repetitions = 60;
  const auto vanilla = run_startup_scenario(cfg).startup_ms;
  cfg.technique = Technique::kPrebakeNoWarmup;
  const auto prebaked = run_startup_scenario(cfg).startup_ms;

  const auto test = stats::mann_whitney_u(vanilla, prebaked);
  EXPECT_LT(test.p_value, 1e-9);  // medians differ, 95% confidence easily

  // Paper: NOOP median difference within [40.35, 42.29] ms.
  const auto shift = stats::hodges_lehmann_shift(vanilla, prebaked);
  EXPECT_GT(shift.point, 37.0);
  EXPECT_LT(shift.point, 45.0);
}

TEST(ReproFig4, VanillaRtsIsAbout70MsForAllFunctions) {
  for (const auto& spec : {noop_spec(), markdown_spec(), image_resizer_spec()}) {
    ScenarioConfig cfg;
    cfg.spec = spec;
    cfg.technique = Technique::kVanilla;
    cfg.repetitions = 10;
    const auto result = run_startup_scenario(cfg);
    for (const auto& b : result.breakdowns)
      EXPECT_NEAR(b.rts_time.to_millis(), 70.0, 5.0) << spec.name;
  }
}

TEST(ReproFig4, PrebakeRtsIsZeroAndAppinitDominates) {
  ScenarioConfig cfg;
  cfg.spec = image_resizer_spec();
  cfg.technique = Technique::kPrebakeNoWarmup;
  cfg.repetitions = 10;
  const auto result = run_startup_scenario(cfg);
  for (const auto& b : result.breakdowns) {
    EXPECT_EQ(b.rts_time.to_millis(), 0.0);
    EXPECT_EQ(b.clone_time.to_millis(), 0.0);
    EXPECT_GT(b.appinit_stacked() / b.total, 0.99);
  }
}

TEST(ReproFig4, SnapshotSizesMatchPaperOrdering) {
  // Paper: NOOP 13 MB, Markdown 14 MB, Image Resizer 99.2 MB.
  auto snapshot_bytes = [](const rt::FunctionSpec& spec) {
    ScenarioConfig cfg;
    cfg.spec = spec;
    cfg.technique = Technique::kPrebakeNoWarmup;
    cfg.repetitions = 1;
    return run_startup_scenario(cfg).snapshot_nominal_bytes;
  };
  const double mb = 1e6;
  const double noop = static_cast<double>(snapshot_bytes(noop_spec())) / mb;
  const double md = static_cast<double>(snapshot_bytes(markdown_spec())) / mb;
  const double rz =
      static_cast<double>(snapshot_bytes(image_resizer_spec())) / mb;
  EXPECT_NEAR(noop, 13.0, 4.0);
  EXPECT_NEAR(md, 14.0, 4.0);
  EXPECT_NEAR(rz, 99.2, 12.0);
  EXPECT_LT(noop, md);
  EXPECT_LT(md, rz);
}

TEST(ReproFig5, VanillaStartupGrowsWithFunctionSize) {
  const double small =
      median_startup(synthetic_spec(SynthSize::kSmall), Technique::kVanilla, true);
  const double medium =
      median_startup(synthetic_spec(SynthSize::kMedium), Technique::kVanilla, true);
  const double big =
      median_startup(synthetic_spec(SynthSize::kBig), Technique::kVanilla, true);
  EXPECT_NEAR(small, 219.8, 7.0);
  EXPECT_NEAR(medium, 456.0, 14.0);
  EXPECT_NEAR(big, 1621.0, 40.0);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, big);
}

TEST(ReproTable1, AllNineMediansTrackThePaper) {
  struct Row {
    SynthSize size;
    double vanilla, nowarmup, warmup;
  };
  // Table 1 midpoints (ms).
  const Row rows[] = {
      {SynthSize::kSmall, 219.8, 172.5, 54.4},
      {SynthSize::kMedium, 456.0, 360.9, 63.7},
      {SynthSize::kBig, 1621.0, 1340.4, 84.0},
  };
  for (const Row& row : rows) {
    const rt::FunctionSpec spec = synthetic_spec(row.size);
    const double vanilla = median_startup(spec, Technique::kVanilla, true, 30);
    const double nowarmup =
        median_startup(spec, Technique::kPrebakeNoWarmup, true, 30);
    const double warmup =
        median_startup(spec, Technique::kPrebakeWarmup, true, 30);
    // Within 3% for the small/big anchors; the paper's medium PB-Warmup
    // point sits off its own size trend, so allow 8% there (see
    // EXPERIMENTS.md).
    EXPECT_NEAR(vanilla, row.vanilla, row.vanilla * 0.03) << synth_size_name(row.size);
    EXPECT_NEAR(nowarmup, row.nowarmup, row.nowarmup * 0.03) << synth_size_name(row.size);
    EXPECT_NEAR(warmup, row.warmup, row.warmup * 0.08) << synth_size_name(row.size);
    // Ordering invariant: warmup < nowarmup < vanilla.
    EXPECT_LT(warmup, nowarmup);
    EXPECT_LT(nowarmup, vanilla);
  }
}

TEST(ReproFig6, SpeedupRatiosMatchHeadlineNumbers) {
  const double small_vanilla =
      median_startup(synthetic_spec(SynthSize::kSmall), Technique::kVanilla, true, 30);
  const double small_nowarm = median_startup(
      synthetic_spec(SynthSize::kSmall), Technique::kPrebakeNoWarmup, true, 30);
  const double small_warm = median_startup(
      synthetic_spec(SynthSize::kSmall), Technique::kPrebakeWarmup, true, 30);
  const double big_vanilla =
      median_startup(synthetic_spec(SynthSize::kBig), Technique::kVanilla, true, 30);
  const double big_nowarm = median_startup(
      synthetic_spec(SynthSize::kBig), Technique::kPrebakeNoWarmup, true, 30);
  const double big_warm = median_startup(
      synthetic_spec(SynthSize::kBig), Technique::kPrebakeWarmup, true, 30);

  // "from 127.45% to 403.96%, for a small, synthetic function".
  EXPECT_NEAR(small_vanilla / small_nowarm * 100.0, 127.45, 6.0);
  EXPECT_NEAR(small_vanilla / small_warm * 100.0, 403.96, 20.0);
  // "for a bigger, synthetic function ... from 121.07% to 1932.49%".
  EXPECT_NEAR(big_vanilla / big_nowarm * 100.0, 121.07, 5.0);
  EXPECT_NEAR(big_vanilla / big_warm * 100.0, 1932.49, 100.0);
}

TEST(ReproFig7, ServiceTimeDistributionsCoincide) {
  for (const auto& spec : {noop_spec(), markdown_spec()}) {
    const auto vanilla =
        run_service_scenario(spec, Technique::kVanilla, 200, 7);
    const auto prebaked =
        run_service_scenario(spec, Technique::kPrebakeNoWarmup, 200, 8);
    // Drop the first (lazy-loading) request from both, as both pay it.
    std::vector<double> v{vanilla.service_ms.begin() + 1, vanilla.service_ms.end()};
    std::vector<double> p{prebaked.service_ms.begin() + 1, prebaked.service_ms.end()};
    const auto ks = stats::ks_test(v, p);
    EXPECT_GT(ks.p_value, 0.05) << spec.name;  // ECDFs "pretty much coincide"
    EXPECT_LT(std::abs(stats::median(v) - stats::median(p)),
              stats::median(v) * 0.03)
        << spec.name;
  }
}

TEST(ReproFig7, ResponsesAreByteIdenticalAcrossTechniques) {
  const auto vanilla =
      run_service_scenario(markdown_spec(), Technique::kVanilla, 20, 7);
  const auto prebaked =
      run_service_scenario(markdown_spec(), Technique::kPrebakeNoWarmup, 20, 7);
  ASSERT_EQ(vanilla.response_bodies.size(), prebaked.response_bodies.size());
  for (std::size_t i = 0; i < vanilla.response_bodies.size(); ++i)
    EXPECT_EQ(vanilla.response_bodies[i], prebaked.response_bodies[i]);
}

}  // namespace
}  // namespace prebake::exp
