// Randomized robustness suites: generated inputs must never crash parsers or
// violate output invariants, across many seeds.
#include <gtest/gtest.h>

#include "criu/image.hpp"
#include "funcs/http_codec.hpp"
#include "funcs/handlers.hpp"
#include "funcs/markdown.hpp"
#include "sim/rng.hpp"

namespace prebake {
namespace {

// ---------------------------------------------------------------------------
// Markdown: random documents render without crashing, and the output never
// leaks an unescaped angle bracket from input text.
class MarkdownFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string random_document(sim::Rng& rng) {
    static const char* fragments[] = {
        "# ",      "## ",     "**",    "*",     "`",    "```\n", "- ",
        "1. ",     "> ",      "---\n", "[",     "]",    "(",     ")",
        "plain ",  "text ",   "<tag>", "&amp;", "\n",   "\n\n",  "\r\n",
        "*char*",  "**b**",   "w",     "#",     "``",   "  ",    "\t",
    };
    std::string doc;
    const int pieces = static_cast<int>(rng.uniform_int(5, 200));
    for (int i = 0; i < pieces; ++i)
      doc += fragments[rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(fragments)) - 1)];
    return doc;
  }
};

TEST_P(MarkdownFuzz, NeverCrashesAndEscapesRawHtml) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    const std::string doc = random_document(rng);
    const std::string html = funcs::render_markdown(doc);
    // No raw "<tag>" from the input can survive unescaped.
    EXPECT_EQ(html.find("<tag>"), std::string::npos) << doc;
    // Output is deterministic.
    EXPECT_EQ(html, funcs::render_markdown(doc));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkdownFuzz, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// HTTP codec: random byte soup must be rejected or parsed, never crash; and
// encode(decode(x)) == encode(decode(encode(decode(x)))) when it parses.
class HttpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HttpFuzz, RandomBytesNeverCrash) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int len = static_cast<int>(rng.uniform_int(0, 300));
    for (int i = 0; i < len; ++i) {
      // Mix printable ASCII with CR/LF and separators to hit parser paths.
      const int pick = static_cast<int>(rng.uniform_int(0, 9));
      if (pick < 6)
        soup += static_cast<char>(rng.uniform_int(32, 126));
      else if (pick < 8)
        soup += (pick == 6) ? '\r' : '\n';
      else
        soup += (pick == 8) ? ':' : ' ';
    }
    (void)funcs::decode_request(soup);
    (void)funcs::decode_response(soup);
  }
}

TEST_P(HttpFuzz, MutatedValidMessagesNeverCrash) {
  sim::Rng rng{GetParam()};
  const std::string valid = funcs::encode_request(funcs::sample_request("markdown"));
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = valid;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    const auto parsed = funcs::decode_request(mutated);
    if (parsed.has_value()) {
      // If it still parses, re-encoding must be stable (idempotent).
      const std::string once = funcs::encode_request(*parsed);
      const auto again = funcs::decode_request(once);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(funcs::encode_request(*again), once);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpFuzz, ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Image decode: random corruption of every image-file type must be caught by
// the CRC (or parse as the original if untouched) — never crash, never
// silently return altered state.
class ImageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImageFuzz, RandomCorruptionCaughtByCrc) {
  sim::Rng rng{GetParam()};
  criu::InventoryEntry inv;
  inv.root_pid = 7;
  inv.name = "fuzz";
  inv.argv = {"a", "b"};
  const auto original = criu::encode_inventory(inv);

  for (int trial = 0; trial < 200; ++trial) {
    auto img = original;
    const int flips = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(img.size()) - 1));
      img[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      const criu::InventoryEntry decoded = criu::decode_inventory(img);
      // Only reachable if every flip happened to restore the original bytes.
      EXPECT_EQ(decoded, inv);
    } catch (const std::runtime_error&) {
      // Expected: corruption detected.
    }
  }
}

TEST_P(ImageFuzz, RandomTruncationCaught) {
  sim::Rng rng{GetParam()};
  const auto original = criu::encode_pagemap({{1, 0, 16}, {2, 4, 8}});
  for (int trial = 0; trial < 100; ++trial) {
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(original.size()) - 1));
    auto img = original;
    img.resize(keep);
    EXPECT_THROW(criu::decode_pagemap(img), std::runtime_error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageFuzz, ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace prebake
