// Section 5 integration: the faas-cli new/build/push/deploy flow with CRIU
// templates, privileged-build gating, and watchdog restore.
#include "openfaas/deployment.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"

namespace prebake::openfaas {
namespace {

class OpenFaasTest : public ::testing::Test {
 protected:
  OpenFaasTest() : kernel_{sim_, exp::testbed_costs()} {}

  Deployment make_deployment(ProviderConfig provider) {
    return Deployment{kernel_, exp::testbed_runtime(), provider};
  }

  static ProviderConfig privileged() {
    ProviderConfig p;
    p.allow_privileged = true;
    return p;
  }

  // Full pipeline for one function.
  static void pipeline(Deployment& d, const std::string& name,
                       const std::string& tpl, rt::FunctionSpec spec) {
    const FunctionProject project = d.new_function(name, tpl, std::move(spec));
    ContainerImage image = d.build(project);
    d.push(std::move(image));
    d.deploy(name);
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
};

TEST_F(OpenFaasTest, TemplateCatalogueHasCriuVariants) {
  TemplateStore store;
  EXPECT_TRUE(store.has("java8"));
  EXPECT_TRUE(store.has("java8-criu"));
  EXPECT_TRUE(store.has("java8-criu-warm"));
  EXPECT_TRUE(store.has("python3-criu"));
  EXPECT_FALSE(store.get("java8").uses_criu);
  EXPECT_TRUE(store.get("java8-criu").uses_criu);
  EXPECT_EQ(store.get("java8-criu-warm").default_warmup_requests, 1u);
  EXPECT_THROW(store.get("cobol"), std::out_of_range);
}

TEST_F(OpenFaasTest, NewFunctionAdoptsTemplateRuntime) {
  Deployment d = make_deployment(privileged());
  const FunctionProject p =
      d.new_function("md", "java8", exp::markdown_spec());
  EXPECT_EQ(p.spec.runtime_binary, "/opt/jvm/bin/java");
  EXPECT_EQ(p.spec.name, "md");
}

TEST_F(OpenFaasTest, NewFunctionUnknownTemplateThrows) {
  Deployment d = make_deployment(privileged());
  EXPECT_THROW(d.new_function("x", "nope", exp::noop_spec()),
               std::out_of_range);
}

TEST_F(OpenFaasTest, PlainBuildHasNoSnapshotLayer) {
  Deployment d = make_deployment(ProviderConfig{});
  const FunctionProject p = d.new_function("fn", "java8", exp::noop_spec());
  const ContainerImage image = d.build(p);
  EXPECT_FALSE(image.has_snapshot);
  EXPECT_EQ(image.snapshot_layer_bytes, 0u);
  EXPECT_GT(image.function_layer_bytes, 0u);
}

TEST_F(OpenFaasTest, CriuBuildEmbedsSnapshotInImage) {
  Deployment d = make_deployment(privileged());
  const FunctionProject p = d.new_function("fn", "java8-criu", exp::noop_spec());
  const ContainerImage image = d.build(p);
  EXPECT_TRUE(image.has_snapshot);
  EXPECT_GT(image.snapshot_layer_bytes, 10ull * 1024 * 1024);
  ASSERT_TRUE(image.snapshot.has_value());
  EXPECT_NO_THROW(image.snapshot->validate());
}

TEST_F(OpenFaasTest, CriuBuildNeedsPrivilegedBuilder) {
  // Section 5.2: "usual docker build does not allow the execution of
  // privileged operations" — Buildx or unprivileged CRIU is required.
  Deployment d = make_deployment(ProviderConfig{});
  const FunctionProject p = d.new_function("fn", "java8-criu", exp::noop_spec());
  EXPECT_THROW(d.build(p), std::runtime_error);
}

TEST_F(OpenFaasTest, UnprivilegedCriuModeWorksWithoutPrivilegedBuilder) {
  ProviderConfig provider;
  provider.unprivileged_criu = true;  // CAP_CHECKPOINT_RESTORE world [11]
  Deployment d = make_deployment(provider);
  const FunctionProject p = d.new_function("fn", "java8-criu", exp::noop_spec());
  EXPECT_NO_THROW(d.build(p));
}

TEST_F(OpenFaasTest, DeployRequiresPush) {
  Deployment d = make_deployment(privileged());
  d.new_function("fn", "java8", exp::noop_spec());
  EXPECT_THROW(d.deploy("fn"), std::runtime_error);
  EXPECT_THROW(d.deploy("ghost"), std::out_of_range);
}

TEST_F(OpenFaasTest, FullPipelineVanillaInvokes) {
  Deployment d = make_deployment(ProviderConfig{});
  pipeline(d, "md", "java8", exp::markdown_spec());
  funcs::Response res;
  const InvocationRecord rec =
      d.invoke("md", funcs::sample_request("markdown"), &res);
  EXPECT_EQ(rec.status, 200);
  EXPECT_TRUE(rec.cold_start);
  EXPECT_NE(res.body.find("<h1>"), std::string::npos);
}

TEST_F(OpenFaasTest, FullPipelinePrebakedColdStartIsFaster) {
  Deployment d = make_deployment(privileged());
  pipeline(d, "plain", "java8", exp::noop_spec());
  pipeline(d, "baked", "java8-criu-warm", exp::noop_spec());

  const InvocationRecord plain = d.invoke("plain", funcs::Request{});
  const InvocationRecord baked = d.invoke("baked", funcs::Request{});
  EXPECT_TRUE(plain.cold_start);
  EXPECT_TRUE(baked.cold_start);
  EXPECT_LT(baked.startup.to_millis(), plain.startup.to_millis());
}

TEST_F(OpenFaasTest, WarmReplicaReused) {
  Deployment d = make_deployment(privileged());
  pipeline(d, "fn", "java8-criu", exp::noop_spec());
  const InvocationRecord first = d.invoke("fn", funcs::Request{});
  const InvocationRecord second = d.invoke("fn", funcs::Request{});
  EXPECT_TRUE(first.cold_start);
  EXPECT_FALSE(second.cold_start);
  EXPECT_EQ(d.log().size(), 2u);
}

TEST_F(OpenFaasTest, ScaleCreatesReadyReplicas) {
  Deployment d = make_deployment(privileged());
  pipeline(d, "fn", "java8-criu", exp::noop_spec());
  d.scale("fn", 4);
  EXPECT_EQ(d.ready_replicas("fn"), 4u);
}

TEST_F(OpenFaasTest, PushChargesRegistryUpload) {
  Deployment d = make_deployment(ProviderConfig{});
  const FunctionProject p = d.new_function("fn", "java8", exp::noop_spec());
  ContainerImage image = d.build(p);
  const double t0 = sim_.now().to_millis();
  d.push(std::move(image));
  EXPECT_GT(sim_.now().to_millis(), t0);
  EXPECT_TRUE(d.repository().has("fn:latest"));
}

TEST_F(OpenFaasTest, GoTemplateHasSmallBaseLayer) {
  TemplateStore store;
  EXPECT_LT(store.get("go").base_layer_bytes,
            store.get("java8").base_layer_bytes);
}

TEST_F(OpenFaasTest, InvokeUndeployedThrows) {
  Deployment d = make_deployment(ProviderConfig{});
  EXPECT_THROW(d.invoke("ghost", funcs::Request{}), std::out_of_range);
}

}  // namespace
}  // namespace prebake::openfaas
