// obs:: structured tracing & metrics — determinism across thread counts,
// the zero-cost disabled path, exporter round-trips, and the chaos
// scenario's quarantine span bookkeeping. Every suite here is named
// Trace* so `ctest -L trace` (and the sanitizer pass) can select them.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/run.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

// Allocation counting for the TraceNull zero-allocation assertion. The
// global operator new replacement is incompatible with the sanitizer
// interceptors, so the sanitized pass skips that one test.
#if defined(__SANITIZE_ADDRESS__)
#define PREBAKE_NO_ALLOC_COUNTING 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PREBAKE_NO_ALLOC_COUNTING 1
#endif
#endif

#ifndef PREBAKE_NO_ALLOC_COUNTING
// GCC pairs the default library operator new with our free()-based delete
// and warns about a mismatch — a false positive when both operators are
// replaced together, so silence it for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace prebake {
namespace {

bool same_span(const obs::SpanRecord& a, const obs::SpanRecord& b) {
  return a.id == b.id && a.parent == b.parent && a.track == b.track &&
         a.seq == b.seq && a.start_ns == b.start_ns && a.end_ns == b.end_ns &&
         a.name == b.name && a.category == b.category && a.attrs == b.attrs;
}

bool same_spans(const std::vector<obs::SpanRecord>& a,
                const std::vector<obs::SpanRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_span(a[i], b[i])) return false;
  return true;
}

std::string attr_of(const obs::SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.attrs)
    if (k == key) return v;
  return {};
}

// --- Tracer basics ---------------------------------------------------------

TEST(TraceCore, SpansNestViaOpenStack) {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  tracer.enable(3);

  obs::Span outer = tracer.span("outer", "t");
  sim.advance(sim::Duration::millis(1));
  {
    obs::Span inner = tracer.span("inner", "t");
    sim.advance(sim::Duration::millis(2));
  }
  obs::Span after = tracer.instant("marker", "t");
  outer.end();

  const auto spans = tracer.take_records();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].id, obs::make_span_id(3, 1));
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].start_ns, 1'000'000);
  EXPECT_EQ(spans[1].end_ns, 3'000'000);
  // The instant opened after `inner` closed parents to `outer` again.
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[2].start_ns, spans[2].end_ns);
}

TEST(TraceCore, TakeRecordsClosesOpenSpansAtNow) {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  tracer.enable();
  obs::Span open = tracer.span("open", "t");
  sim.advance(sim::Duration::millis(5));
  const auto spans = tracer.take_records();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_ns, 5'000'000);
  EXPECT_EQ(tracer.records().size(), 0u);
}

TEST(TraceCore, RootParentAdoptsCrossTrackRoot) {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  const obs::SpanId root = obs::make_span_id(0, 1);
  tracer.enable(7, root);
  obs::Span top = tracer.span("top", "t");
  const auto spans = tracer.take_records();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, root);
  EXPECT_EQ(obs::span_track(spans[0].id), 7u);
}

TEST(TraceCore, CountersAndHistogramsRecordWhenEnabled) {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  tracer.count("ignored.before.enable");
  tracer.enable();
  tracer.count("bytes", 10);
  tracer.count("bytes", 5);
  tracer.measure("ms", 2.0);
  tracer.measure("ms", 4.0);
  EXPECT_EQ(tracer.metrics().counter("ignored.before.enable"), 0u);
  EXPECT_EQ(tracer.metrics().counter("bytes"), 15u);
  const obs::LogHistogram* hist = tracer.metrics().histogram("ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2u);
  EXPECT_DOUBLE_EQ(hist->sum_ms(), 6.0);
}

TEST(TraceCore, HistogramMergeMatchesCombinedRecording) {
  obs::LogHistogram a, b, combined;
  for (double v : {1.0, 5.0, 9.5}) {
    a.record(v);
    combined.record(v);
  }
  for (double v : {0.5, 70.0}) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum_ms(), combined.sum_ms());
  EXPECT_DOUBLE_EQ(a.min_ms(), combined.min_ms());
  EXPECT_DOUBLE_EQ(a.max_ms(), combined.max_ms());
  for (double q : {0.25, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q));
}

// --- The disabled fast path ------------------------------------------------

TEST(TraceNull, DisabledTracerRecordsNothing) {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  obs::Span s = tracer.span("never", "t");
  EXPECT_FALSE(s.active());
  EXPECT_EQ(s.id(), 0u);
  s.attr("k", "v");
  s.end();
  tracer.count("never");
  tracer.measure("never", 1.0);
  EXPECT_EQ(tracer.total_spans(), 0u);
  EXPECT_TRUE(tracer.metrics().empty());
}

TEST(TraceNull, DisabledPathAllocatesNothing) {
#ifdef PREBAKE_NO_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting is off under sanitizers";
#else
  sim::Simulation sim;
  obs::Tracer tracer{sim};

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::Span span = tracer.span("hot-path", "bench");
    span.attr("key", "value");
    span.attr("n", 42);
    span.attr("f", 1.5);
    obs::Span marker = tracer.instant("marker", "bench");
    tracer.count("counter", 7);
    tracer.measure("histogram", 3.25);
    span.end();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "disabled tracing must not allocate (benches must stay identical)";
  EXPECT_EQ(tracer.total_spans(), 0u);
#endif
}

// --- Determinism across thread counts --------------------------------------

exp::ScenarioSpec traced_noop_spec(int reps, int threads) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::noop_spec();
  cfg.technique = exp::Technique::kPrebakeNoWarmup;
  cfg.repetitions = reps;
  cfg.seed = 42;
  cfg.threads = threads;
  exp::ScenarioSpec spec = exp::ScenarioSpec::from(cfg);
  spec.trace = true;
  return spec;
}

TEST(TraceDeterminism, MergedSpanListIdenticalAcrossThreadCounts) {
  // 60 reps = 3 shards: enough for real cross-shard interleaving.
  const exp::ScenarioRun at1 = exp::run(traced_noop_spec(60, 1));
  const exp::ScenarioRun at4 = exp::run(traced_noop_spec(60, 4));

  ASSERT_FALSE(at1.trace.spans.empty());
  EXPECT_TRUE(same_spans(at1.trace.spans, at4.trace.spans));
  EXPECT_EQ(at1.trace.metrics.counters().size(),
            at4.trace.metrics.counters().size());
  for (const auto& c : at1.trace.metrics.counters())
    EXPECT_EQ(at4.trace.metrics.counter(c.name), c.value) << c.name;
  // And tracing itself never changes the simulated results.
  EXPECT_EQ(at1.startup.startup_ms, at4.startup.startup_ms);
  const exp::ScenarioConfig untraced = [&] {
    exp::ScenarioConfig cfg;
    cfg.spec = exp::noop_spec();
    cfg.technique = exp::Technique::kPrebakeNoWarmup;
    cfg.repetitions = 60;
    cfg.seed = 42;
    return cfg;
  }();
  EXPECT_EQ(exp::run_startup_scenario(untraced).startup_ms,
            at1.startup.startup_ms);
}

TEST(TraceDeterminism, StartupTraceNestsFourLevelsDeep) {
  const exp::ScenarioRun run = exp::run(traced_noop_spec(5, 2));
  const auto& spans = run.trace.spans;

  std::map<obs::SpanId, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& s : spans) by_id[s.id] = &s;

  // Walk a per-image read up to the root: read -> image-reads ->
  // criu.restore -> start.prebaked -> replica-start -> scenario.
  const obs::SpanRecord* read = nullptr;
  for (const obs::SpanRecord& s : spans)
    if (s.name.rfind("read:", 0) == 0) read = &s;
  ASSERT_NE(read, nullptr) << "no per-image read span in a prebaked trace";

  std::vector<std::string> chain;
  for (const obs::SpanRecord* s = read; s != nullptr;
       s = s->parent != 0 ? by_id.at(s->parent) : nullptr)
    chain.push_back(s->name);
  ASSERT_GE(chain.size(), 5u) << "expected >= 4 nested levels under the root";
  EXPECT_EQ(chain.back(), "scenario");
  EXPECT_NE(std::find(chain.begin(), chain.end(), "criu.restore"), chain.end());
  EXPECT_NE(std::find(chain.begin(), chain.end(), "start.prebaked"),
            chain.end());
  EXPECT_NE(std::find(chain.begin(), chain.end(), "replica-start"),
            chain.end());

  // Every startup breakdown links back to a span in the trace.
  for (const auto& b : run.startup.breakdowns) {
    ASSERT_NE(b.span_id, 0u);
    ASSERT_TRUE(by_id.contains(b.span_id));
    EXPECT_EQ(by_id.at(b.span_id)->name, "start.prebaked");
  }
}

// --- Exporters -------------------------------------------------------------

obs::TraceReport small_report() {
  sim::Simulation sim;
  obs::Tracer tracer{sim};
  tracer.enable(1);
  obs::Span outer = tracer.span("outer", "test");
  outer.attr("function", "noop");
  outer.attr("bytes", std::uint64_t{123456});
  sim.advance(sim::Duration::micros(1500));
  {
    obs::Span inner = tracer.span("inner \"quoted\"\n", "test.io");
    inner.attr("n", -7);
    sim.advance(sim::Duration::nanos(1234567));
  }
  obs::Span mark = tracer.instant("marker", "test");
  outer.end();
  tracer.count("events", 3);
  tracer.count("bytes_read", 123456);
  tracer.measure("ms", 1.5);

  obs::TraceReport report;
  report.absorb(tracer);
  report.finalize();
  return report;
}

TEST(TraceExport, ChromeJsonRoundTripsSpanTree) {
  const obs::TraceReport report = small_report();
  const std::string json = obs::to_chrome_json(report);
  const obs::TraceReport parsed = obs::parse_chrome_json(json);

  EXPECT_TRUE(same_spans(report.spans, parsed.spans));
  // Counters survive via the ph:"C" events; histograms intentionally don't.
  EXPECT_EQ(parsed.metrics.counter("events"), 3u);
  EXPECT_EQ(parsed.metrics.counter("bytes_read"), 123456u);
}

TEST(TraceExport, ChromeJsonRoundTripsScenarioTrace) {
  const exp::ScenarioRun run = exp::run(traced_noop_spec(3, 1));
  const obs::TraceReport parsed =
      obs::parse_chrome_json(obs::to_chrome_json(run.trace));
  EXPECT_TRUE(same_spans(run.trace.spans, parsed.spans));
  for (const auto& c : run.trace.metrics.counters())
    EXPECT_EQ(parsed.metrics.counter(c.name), c.value) << c.name;
}

TEST(TraceExport, TextTreeShowsNestingAndMetrics) {
  const std::string tree = obs::to_text_tree(small_report());
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);  // indented child
  EXPECT_NE(tree.find("counters:"), std::string::npos);
  EXPECT_NE(tree.find("events"), std::string::npos);
  EXPECT_NE(tree.find("histograms:"), std::string::npos);
}

TEST(TraceExport, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_chrome_json("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_json("{\"traceEvents\": 7}"),
               std::runtime_error);
}

// --- Chaos: quarantine spans vs. the circuit-breaker table ------------------

TEST(TraceChaos, QuarantineSpansMatchSnapshotHealth) {
  exp::ScenarioSpec spec;
  spec.kind = exp::ScenarioKind::kChaos;
  spec.trace = true;
  spec.seed = 42;
  spec.chaos.duration = sim::Duration::seconds(180);
  spec.chaos.rate_hz = 0.5;
  spec.chaos.quarantine_threshold = 2;
  spec.chaos.restore_max_attempts = 2;
  spec.chaos.faults.seed = 42;
  spec.chaos.faults.image_corruption_rate = 0.8;

  const exp::ScenarioRun run = exp::run(spec);
  ASSERT_GT(run.chaos.snapshot_quarantines, 0u)
      << "fault plan failed to trip any circuit breaker";

  std::map<std::string, std::uint64_t> enters, lifts;
  for (const obs::SpanRecord& s : run.trace.spans) {
    if (s.name == "quarantine.enter") ++enters[attr_of(s, "function")];
    if (s.name == "quarantine.lift") ++lifts[attr_of(s, "function")];
  }

  std::uint64_t total_enters = 0, total_lifts = 0;
  for (const auto& [fn, n] : enters) total_enters += n;
  for (const auto& [fn, n] : lifts) total_lifts += n;
  EXPECT_EQ(total_enters, run.chaos.snapshot_quarantines);
  EXPECT_EQ(total_lifts, run.chaos.snapshot_rebakes);
  EXPECT_EQ(run.trace.metrics.counter("faas.quarantines"), total_enters);
  EXPECT_EQ(run.trace.metrics.counter("faas.rebakes"), total_lifts);

  // Per function: every enter is matched by a lift unless the run ended
  // with the snapshot still quarantined.
  for (const auto& row : run.chaos.snapshot_health) {
    const std::uint64_t still = row.quarantined ? 1u : 0u;
    EXPECT_EQ(enters[row.function], lifts[row.function] + still)
        << row.function;
    EXPECT_EQ(lifts[row.function], row.rebakes) << row.function;
  }
  // And no quarantine span names a function the health table doesn't know.
  for (const auto& [fn, n] : enters) {
    const bool known =
        std::any_of(run.chaos.snapshot_health.begin(),
                    run.chaos.snapshot_health.end(),
                    [&](const auto& row) { return row.function == fn; });
    EXPECT_TRUE(known) << fn;
  }
}

}  // namespace
}  // namespace prebake
