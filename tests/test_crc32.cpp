// The slice-by-8 crc32 must compute exactly the classic byte-at-a-time
// IEEE 802.3 (reflected 0xEDB88320) checksum for every length, alignment,
// and seed chaining — snapshot images written by older builds must keep
// validating.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "criu/crc32.hpp"
#include "sim/rng.hpp"

namespace prebake::criu {
namespace {

// Reference implementation: one bit at a time, straight from the polynomial.
std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data,
                            std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c ^= byte;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> v;
  for (const char* p = s; *p != '\0'; ++p)
    v.push_back(static_cast<std::uint8_t>(*p));
  return v;
}

TEST(Crc32, KnownVectors) {
  // The IEEE CRC-32 check value (e.g. in the zlib documentation).
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, MatchesBitwiseReferenceAcrossLengths) {
  sim::Rng rng{0xC0FFEEu};
  // Cover the byte-tail path (len < 8), the 8-byte folding path, and every
  // alignment of the boundary between them.
  for (std::size_t len = 0; len <= 70; ++len) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(crc32(data), crc32_bitwise(data)) << "len=" << len;
  }
  for (const std::size_t len : {255u, 4096u, 65537u}) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(crc32(data), crc32_bitwise(data)) << "len=" << len;
  }
}

TEST(Crc32, SeedChainingEqualsOneShot) {
  sim::Rng rng{7};
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());

  const std::uint32_t whole = crc32(data);
  for (const std::size_t split : {1u, 7u, 8u, 9u, 500u, 999u}) {
    const std::span<const std::uint8_t> all{data};
    const std::uint32_t first = crc32(all.subspan(0, split));
    EXPECT_EQ(crc32(all.subspan(split), first), whole) << "split=" << split;
  }
}

TEST(Crc32, SeededMatchesReference) {
  sim::Rng rng{99};
  std::vector<std::uint8_t> data(37);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (const std::uint32_t seed : {0x1u, 0xDEADBEEFu, 0xFFFFFFFFu})
    EXPECT_EQ(crc32(data, seed), crc32_bitwise(data, seed));
}

}  // namespace
}  // namespace prebake::criu
