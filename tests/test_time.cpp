#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace prebake::sim {
namespace {

TEST(Duration, DefaultIsZero) {
  EXPECT_EQ(Duration{}.nanos_count(), 0);
}

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(5).nanos_count(), 5);
  EXPECT_EQ(Duration::micros(5).nanos_count(), 5'000);
  EXPECT_EQ(Duration::millis(5).nanos_count(), 5'000'000);
  EXPECT_EQ(Duration::seconds(5).nanos_count(), 5'000'000'000);
}

TEST(Duration, FractionalFactories) {
  EXPECT_EQ(Duration::micros_f(1.5).nanos_count(), 1'500);
  EXPECT_EQ(Duration::millis_f(0.25).nanos_count(), 250'000);
  EXPECT_EQ(Duration::seconds_f(0.001).nanos_count(), 1'000'000);
}

TEST(Duration, FractionalRoundsToNearest) {
  EXPECT_EQ(Duration::micros_f(0.0004).nanos_count(), 0);
  EXPECT_EQ(Duration::micros_f(0.0006).nanos_count(), 1);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(3);
  const Duration b = Duration::millis(1);
  EXPECT_EQ((a + b).to_millis(), 4.0);
  EXPECT_EQ((a - b).to_millis(), 2.0);
  EXPECT_EQ((-a).to_millis(), -3.0);
}

TEST(Duration, ScalarMultiply) {
  const Duration a = Duration::millis(10);
  EXPECT_DOUBLE_EQ((a * 2.5).to_millis(), 25.0);
  EXPECT_DOUBLE_EQ((2.5 * a).to_millis(), 25.0);
  EXPECT_DOUBLE_EQ((a / 2.0).to_millis(), 5.0);
}

TEST(Duration, RatioOfDurations) {
  EXPECT_DOUBLE_EQ(Duration::millis(10) / Duration::millis(4), 2.5);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::millis(1);
  d += Duration::millis(2);
  EXPECT_EQ(d.to_millis(), 3.0);
  d -= Duration::millis(1);
  EXPECT_EQ(d.to_millis(), 2.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::micros(1000), Duration::millis(1));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
}

TEST(Duration, UnitConversions) {
  const Duration d = Duration::micros(1500);
  EXPECT_DOUBLE_EQ(d.to_micros(), 1500.0);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 0.0015);
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ(Duration::nanos(12).to_string(), "12ns");
  EXPECT_EQ(Duration::micros(12).to_string(), "12.00us");
  EXPECT_EQ(Duration::millis(12).to_string(), "12.00ms");
  EXPECT_EQ(Duration::seconds(12).to_string(), "12.000s");
}

TEST(TimePoint, OriginIsZero) {
  EXPECT_EQ(TimePoint::origin().nanos_since_origin(), 0);
}

TEST(TimePoint, PlusDuration) {
  const TimePoint t = TimePoint::origin() + Duration::millis(5);
  EXPECT_EQ(t.to_millis(), 5.0);
  EXPECT_EQ((t - Duration::millis(2)).to_millis(), 3.0);
}

TEST(TimePoint, DifferenceIsDuration) {
  const TimePoint a = TimePoint::origin() + Duration::millis(8);
  const TimePoint b = TimePoint::origin() + Duration::millis(3);
  EXPECT_EQ((a - b).to_millis(), 5.0);
  EXPECT_EQ((b - a).to_millis(), -5.0);
}

TEST(TimePoint, Comparisons) {
  const TimePoint a = TimePoint::origin() + Duration::millis(1);
  const TimePoint b = TimePoint::origin() + Duration::millis(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_nanos(1'000'000));
}

TEST(TimePoint, CompoundAdd) {
  TimePoint t = TimePoint::origin();
  t += Duration::seconds(1);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.0);
}

}  // namespace
}  // namespace prebake::sim
