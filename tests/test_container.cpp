#include "os/container.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "faas/platform.hpp"

namespace prebake::os {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  ContainerTest() : kernel_{sim_}, runtime_{kernel_} {
    kernel_.fs().create("/images/base.layer", 180ull << 20);
    kernel_.fs().create("/images/fn.layer", 4ull << 20);
    kernel_.fs().create("/bin/app", 2ull << 20);
  }

  Pid spawn() {
    const Pid pid = kernel_.clone_process(kNoPid);
    kernel_.exec(pid, "/bin/app", {"/bin/app"});
    return pid;
  }

  sim::Simulation sim_;
  Kernel kernel_;
  ContainerRuntime runtime_;
};

TEST_F(ContainerTest, CreateChargesProvisioningCosts) {
  const double t0 = sim_.now().to_millis();
  runtime_.create("c1", {"/images/base.layer", "/images/fn.layer"});
  const double elapsed = sim_.now().to_millis() - t0;
  EXPECT_NEAR(elapsed,
              runtime_.costs().provisioning_total(2).to_millis(), 1e-6);
}

TEST_F(ContainerTest, CreateRequiresLayers) {
  EXPECT_THROW(runtime_.create("c1", {"/images/missing.layer"}),
               std::invalid_argument);
}

TEST_F(ContainerTest, FreshNamespaces) {
  const ContainerId a = runtime_.create("a", {"/images/base.layer"});
  const ContainerId b = runtime_.create("b", {"/images/base.layer"});
  EXPECT_NE(runtime_.get(a).ns, runtime_.get(b).ns);
  EXPECT_NE(runtime_.get(a).ns.net_ns, 0u);
}

TEST_F(ContainerTest, AttachJoinsNamespaces) {
  const ContainerId id = runtime_.create("c", {"/images/base.layer"});
  const Pid pid = spawn();
  runtime_.attach(id, pid);
  EXPECT_EQ(kernel_.process(pid).ns(), runtime_.get(id).ns);
  EXPECT_EQ(runtime_.get(id).pids.size(), 1u);
}

TEST_F(ContainerTest, MemoryUsageSumsMembers) {
  const ContainerId id = runtime_.create("c", {"/images/base.layer"});
  const Pid a = spawn();
  const Pid b = spawn();
  runtime_.attach(id, a);
  runtime_.attach(id, b);
  EXPECT_EQ(runtime_.memory_usage(id),
            kernel_.process(a).mm().resident_bytes() +
                kernel_.process(b).mm().resident_bytes());
}

TEST_F(ContainerTest, UnlimitedContainerNeverOoms) {
  const ContainerId id = runtime_.create("c", {"/images/base.layer"}, 0);
  const Pid pid = spawn();
  runtime_.attach(id, pid);
  EXPECT_FALSE(runtime_.enforce_memory_limit(id).has_value());
}

TEST_F(ContainerTest, OomKillsTheBiggestMember) {
  const ContainerId id =
      runtime_.create("c", {"/images/base.layer"}, 1ull << 20);  // 1 MiB limit
  const Pid small = spawn();
  const Pid big = spawn();
  const VmaId heap = kernel_.mmap(big, 8ull << 20, Prot::kReadWrite,
                                  VmaKind::kAnon, "[heap]",
                                  std::make_shared<PatternSource>(1), true);
  (void)heap;
  runtime_.attach(id, small);
  runtime_.attach(id, big);

  const auto oom = runtime_.enforce_memory_limit(id);
  ASSERT_TRUE(oom.has_value());
  EXPECT_EQ(oom->victim, big);
  EXPECT_GT(oom->usage, oom->limit);
  EXPECT_FALSE(kernel_.alive(big));
  EXPECT_TRUE(kernel_.alive(small));
}

TEST_F(ContainerTest, DestroyKillsMembersAndCharges) {
  const ContainerId id = runtime_.create("c", {"/images/base.layer"});
  const Pid pid = spawn();
  runtime_.attach(id, pid);
  const double t0 = sim_.now().to_millis();
  runtime_.destroy(id);
  EXPECT_GT(sim_.now().to_millis(), t0);
  EXPECT_FALSE(runtime_.exists(id));
  EXPECT_FALSE(kernel_.alive(pid));
  EXPECT_THROW(runtime_.get(id), std::out_of_range);
}

TEST_F(ContainerTest, PrivilegedFlagRecorded) {
  const ContainerId id =
      runtime_.create("c", {"/images/base.layer"}, 0, /*privileged=*/true);
  EXPECT_TRUE(runtime_.get(id).privileged);
}

TEST(ContainerizedPlatform, ColdStartIncludesProvisioning) {
  sim::Simulation sim;
  Kernel kernel{sim, exp::testbed_costs()};

  auto cold_total = [&](bool containerized) {
    faas::PlatformConfig cfg;
    cfg.containerized = containerized;
    faas::Platform platform{kernel, exp::testbed_runtime(), cfg,
                            containerized ? 11u : 12u};
    platform.resources().add_node("n", 8ull << 30);
    platform.deploy(exp::noop_spec(), faas::StartMode::kVanilla);
    double total = 0;
    bool done = false;
    platform.invoke("noop", funcs::Request{},
                    [&](const funcs::Response&, const faas::RequestMetrics& m) {
                      total = m.total.to_millis();
                      done = true;
                    });
    while (!done && sim.step()) {
    }
    return total;
  };

  const double bare = cold_total(false);
  const double contained = cold_total(true);
  // Container provisioning (~100 ms classic docker) sits on top.
  EXPECT_GT(contained, bare + 80.0);
}

TEST(ContainerizedPlatform, PrebakedReplicaGetsPrivilegedContainer) {
  sim::Simulation sim;
  Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.containerized = true;
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 13};
  platform.resources().add_node("n", 8ull << 30);
  platform.deploy(exp::noop_spec(), faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  platform.scale_up("noop", 1);
  EXPECT_EQ(platform.containers().count(), 1u);
}

}  // namespace
}  // namespace prebake::os
