#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace prebake::exp {
namespace {

TEST(TextTable, RendersAlignedGrid) {
  TextTable t{{"a", "long-header"}};
  t.add_row({"x", "1"});
  t.add_row({"longer-cell", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a           | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| longer-cell | 2           |"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);  // 3 rules + header + 2 rows
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Milliseconds) {
  EXPECT_EQ(fmt_ms(12.345), "12.35 ms");
  EXPECT_EQ(fmt_ms(12.345, 1), "12.3 ms");
}

TEST(Format, Interval) {
  stats::Interval iv{1.25, 2.75, 2.0};
  EXPECT_EQ(fmt_interval(iv), "(1.25; 2.75)");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.4), "40.00%");
  EXPECT_EQ(fmt_percent(1.932, 1), "193.2%");
}

TEST(Format, Mib) {
  EXPECT_EQ(fmt_mib(15ull * 1024 * 1024), "15.0 MiB");
  EXPECT_EQ(fmt_mib(1536ull * 1024), "1.5 MiB");
}

TEST(AsciiBar, ScalesToWidth) {
  EXPECT_EQ(ascii_bar(10, 10, 10), "##########");
  EXPECT_EQ(ascii_bar(5, 10, 10), "#####     ");
  EXPECT_EQ(ascii_bar(0, 10, 10), "          ");
}

TEST(AsciiBar, ClampsOverflow) {
  EXPECT_EQ(ascii_bar(20, 10, 10), "##########");
  EXPECT_EQ(ascii_bar(5, 0, 4).size(), 4u);  // degenerate max handled
}

TEST(RenderEcdf, PrintsRequestedQuantiles) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> qs{0.5, 0.9};
  const std::string s = render_ecdf(xs, qs);
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p90"), std::string::npos);
}

}  // namespace
}  // namespace prebake::exp
