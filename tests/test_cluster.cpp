// Cluster layer: worker-node timelines, snapshot locality, placement
// policies, node drain/failure, and the bounded request aggregate.
#include "faas/cluster.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/cluster.hpp"
#include "faas/metrics.hpp"
#include "faas/platform.hpp"

namespace prebake::faas {
namespace {

constexpr std::uint64_t MiB = 1024ull * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

// --- WorkerNode units ------------------------------------------------------

TEST(WorkerNode, OneCpuSerializesWork) {
  WorkerNode n{1, "n", GiB, /*cpus=*/1};
  const sim::TimePoint t0 = sim::TimePoint::origin();
  const sim::Duration work = sim::Duration::millis(10);
  EXPECT_EQ(n.run(t0, work), t0 + work);
  EXPECT_EQ(n.run(t0, work), t0 + work + work);  // queued behind the first
  EXPECT_EQ(n.stats().busy, work + work);
}

TEST(WorkerNode, TwoCpusOverlapThenQueue) {
  WorkerNode n{1, "n", GiB, /*cpus=*/2};
  const sim::TimePoint t0 = sim::TimePoint::origin();
  const sim::Duration work = sim::Duration::millis(10);
  EXPECT_EQ(n.run(t0, work), t0 + work);
  EXPECT_EQ(n.run(t0, work), t0 + work);          // second core
  EXPECT_EQ(n.run(t0, work), t0 + work + work);   // queued
}

TEST(WorkerNode, UncappedNeverQueues) {
  WorkerNode n{1, "n", GiB, /*cpus=*/0};
  const sim::TimePoint t0 = sim::TimePoint::origin();
  const sim::Duration work = sim::Duration::millis(10);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(n.run(t0, work), t0 + work);
  EXPECT_EQ(n.next_core_free(t0), t0);
}

TEST(WorkerNode, LaterSubmissionStartsAtNow) {
  WorkerNode n{1, "n", GiB, 1};
  const sim::TimePoint t0 = sim::TimePoint::origin();
  n.run(t0, sim::Duration::millis(5));
  const sim::TimePoint later = t0 + sim::Duration::millis(20);
  EXPECT_EQ(n.run(later, sim::Duration::millis(5)),
            later + sim::Duration::millis(5));
}

TEST(WorkerNodeCache, LruEvictionReturnsPrefixes) {
  WorkerNode n{1, "n", GiB, 0};
  n.set_cache_capacity(100);
  EXPECT_FALSE(n.cache_admit("a", "/node/n/a/", 60).hit);
  EXPECT_FALSE(n.cache_admit("b", "/node/n/b/", 30).hit);
  EXPECT_TRUE(n.cache_admit("a", "/node/n/a/", 60).hit);  // refreshes a
  // c does not fit: b (now least recently used) is evicted.
  const auto admit = n.cache_admit("c", "/node/n/c/", 30);
  EXPECT_FALSE(admit.hit);
  ASSERT_EQ(admit.evicted_prefixes.size(), 1u);
  EXPECT_EQ(admit.evicted_prefixes[0], "/node/n/b/");
  EXPECT_TRUE(n.cache_contains("a"));
  EXPECT_FALSE(n.cache_contains("b"));
  EXPECT_EQ(n.stats().snapshot_evictions, 1u);
  EXPECT_EQ(n.cache_bytes(), 90u);
}

TEST(WorkerNodeCache, OversizedEntryKeepsItself) {
  WorkerNode n{1, "n", GiB, 0};
  n.set_cache_capacity(50);
  EXPECT_FALSE(n.cache_admit("big", "/p/", 80).hit);
  EXPECT_TRUE(n.cache_contains("big"));  // never evict down to nothing
  EXPECT_TRUE(n.cache_admit("big", "/p/", 80).hit);
}

// --- Scheduler policies ----------------------------------------------------

TEST(Scheduler, RoundRobinRotates) {
  std::vector<WorkerNode> nodes;
  nodes.emplace_back(1, "a", GiB, 0);
  nodes.emplace_back(2, "b", GiB, 0);
  nodes.emplace_back(3, "c", GiB, 0);
  Scheduler s{PlacementPolicy::kRoundRobin};
  PlacementRequest req{100, {}};
  EXPECT_EQ(s.pick(nodes, req)->id(), 1u);
  EXPECT_EQ(s.pick(nodes, req)->id(), 2u);
  EXPECT_EQ(s.pick(nodes, req)->id(), 3u);
  EXPECT_EQ(s.pick(nodes, req)->id(), 1u);
}

TEST(Scheduler, LocalityPrefersCachedNode) {
  std::vector<WorkerNode> nodes;
  nodes.emplace_back(1, "a", GiB, 0);
  nodes.emplace_back(2, "b", GiB, 0);
  nodes[1].cache_admit("snap", "/node/b/s/", 10);
  Scheduler s{PlacementPolicy::kSnapshotLocality};
  EXPECT_EQ(s.pick(nodes, PlacementRequest{100, "snap"})->id(), 2u);
  // No key (vanilla) falls back to worst-fit: node a has more free memory
  // once b hosts a replica.
  nodes[1].reserve(500 * MiB);
  EXPECT_EQ(s.pick(nodes, PlacementRequest{100, {}})->id(), 1u);
  // Cached-but-full nodes are skipped.
  nodes[1].reserve(nodes[1].mem_free());
  EXPECT_EQ(s.pick(nodes, PlacementRequest{100, "snap"})->id(), 1u);
}

TEST(Scheduler, SkipsUnschedulableNodes) {
  std::vector<WorkerNode> nodes;
  nodes.emplace_back(1, "a", GiB, 0);
  nodes.emplace_back(2, "b", 2 * GiB, 0);
  nodes[1].set_state(NodeState::kDraining);
  Scheduler s{PlacementPolicy::kWorstFit};
  EXPECT_EQ(s.pick(nodes, PlacementRequest{100, {}})->id(), 1u);
  nodes[0].set_state(NodeState::kFailed);
  EXPECT_EQ(s.pick(nodes, PlacementRequest{100, {}}), nullptr);
}

// --- Platform-level cluster behaviour --------------------------------------

struct Harness {
  explicit Harness(PlatformConfig cfg = {}, std::uint64_t seed = 99)
      : kernel{sim, exp::testbed_costs()},
        platform{kernel, exp::testbed_runtime(), cfg, seed} {}

  // Pump until `done` flips or the event queue drains.
  void pump(const bool& done) {
    while (!done && kernel.sim().step()) {
    }
    EXPECT_TRUE(done);
  }

  funcs::Request request_for(const std::string& fn) {
    return funcs::sample_request(
        platform.registry().get(fn).spec.handler_id);
  }

  sim::Simulation sim;
  os::Kernel kernel;
  Platform platform;
};

TEST(ClusterPlatform, SingleCpuNodeSerializesService) {
  // The same two-request burst finishes later on a 1-core node than on a
  // 2-core node: service windows queue on the node timeline.
  auto run_burst = [](std::uint32_t cpus) {
    Harness h;
    h.platform.resources().add_node("n", 8 * GiB, cpus);
    h.platform.deploy(exp::markdown_spec(), StartMode::kVanilla);
    h.platform.scale_up("markdown-render", 2);
    h.kernel.sim().run_until(h.kernel.sim().now() + sim::Duration::seconds(2));
    EXPECT_EQ(h.platform.idle_replica_count("markdown-render"), 2u);

    int responses = 0;
    sim::TimePoint last_completion;
    for (int i = 0; i < 2; ++i)
      h.platform.invoke("markdown-render", h.request_for("markdown-render"),
                        [&](const funcs::Response& res, const RequestMetrics&) {
                          EXPECT_TRUE(res.ok());
                          ++responses;
                          last_completion = h.kernel.sim().now();
                        });
    while (responses < 2 && h.kernel.sim().step()) {
    }
    EXPECT_EQ(responses, 2);
    return last_completion;
  };
  const sim::TimePoint serialized = run_burst(1);
  const sim::TimePoint overlapped = run_burst(2);
  EXPECT_GT(serialized, overlapped);
}

TEST(ClusterPlatform, RoundRobinSpreadsReplicas) {
  Harness h;
  h.platform.resources().set_policy(PlacementPolicy::kRoundRobin);
  for (int i = 0; i < 3; ++i)
    h.platform.resources().add_node("n" + std::to_string(i), 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kVanilla);
  h.platform.scale_up("noop", 3);
  for (const WorkerNode& n : h.platform.resources().nodes())
    EXPECT_EQ(n.replicas(), 1u);
}

TEST(ClusterPlatform, RemoteRegistryFirstRestorePaysFetch) {
  PlatformConfig cfg;
  cfg.remote_registry = true;
  cfg.idle_timeout = sim::Duration::seconds(1);
  Harness h{cfg};
  h.platform.resources().add_node("w1", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kPrebaked,
                    core::SnapshotPolicy::warmup(1));

  bool done = false;
  h.platform.invoke("noop", h.request_for("noop"),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      EXPECT_TRUE(res.ok());
                      done = true;
                    });
  h.pump(done);
  const WorkerNode& w1 = h.platform.resources().nodes().front();
  EXPECT_EQ(w1.stats().snapshot_misses, 1u);
  EXPECT_EQ(w1.stats().snapshot_hits, 0u);
  EXPECT_GT(w1.stats().remote_bytes_fetched, 0u);
  const std::uint64_t fetched_once = w1.stats().remote_bytes_fetched;

  // Let the replica idle out, then cold-start again: the images are now
  // node-local, so no further registry traffic and a faster restore.
  h.kernel.sim().run();
  EXPECT_EQ(h.platform.replica_count("noop"), 0u);
  done = false;
  h.platform.invoke("noop", h.request_for("noop"),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      EXPECT_TRUE(res.ok());
                      done = true;
                    });
  h.pump(done);
  EXPECT_EQ(w1.stats().snapshot_hits, 1u);
  EXPECT_EQ(w1.stats().remote_bytes_fetched, fetched_once);

  const auto& log = h.platform.request_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].cold_start);
  EXPECT_TRUE(log[1].cold_start);
  EXPECT_GT(log[0].startup.to_millis(), log[1].startup.to_millis() * 1.5);
}

TEST(ClusterPlatform, LocalityPolicyReplacesOnCachedNode) {
  PlatformConfig cfg;
  cfg.remote_registry = true;
  cfg.idle_timeout = sim::Duration::seconds(1);
  Harness h{cfg};
  h.platform.resources().set_policy(PlacementPolicy::kSnapshotLocality);
  h.platform.resources().add_node("w1", 8 * GiB);
  h.platform.resources().add_node("w2", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kPrebaked,
                    core::SnapshotPolicy::warmup(1));

  for (int round = 0; round < 3; ++round) {
    bool done = false;
    h.platform.invoke("noop", h.request_for("noop"),
                      [&](const funcs::Response& res, const RequestMetrics&) {
                        EXPECT_TRUE(res.ok());
                        done = true;
                      });
    h.pump(done);
    h.kernel.sim().run();  // idle out between rounds
  }
  // Every restore landed on the node that fetched the images first.
  const WorkerNode& w1 = h.platform.resources().node(1);
  const WorkerNode& w2 = h.platform.resources().node(2);
  EXPECT_EQ(w1.stats().replicas_placed, 3u);
  EXPECT_EQ(w2.stats().replicas_placed, 0u);
  EXPECT_EQ(w1.stats().snapshot_hits, 2u);
  EXPECT_EQ(w1.stats().snapshot_misses, 1u);
}

TEST(ClusterPlatform, DrainNodeReclaimsIdleAndBlocksPlacement) {
  Harness h;
  const NodeId a = h.platform.resources().add_node("a", 8 * GiB);
  h.platform.resources().add_node("b", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kVanilla);
  h.platform.scale_up("noop", 2);  // worst-fit spreads: one per node
  h.kernel.sim().run_until(h.kernel.sim().now() + sim::Duration::seconds(2));
  EXPECT_EQ(h.platform.idle_replica_count("noop"), 2u);
  EXPECT_EQ(h.platform.resources().node(a).replicas(), 1u);

  h.platform.drain_node(a);
  EXPECT_EQ(h.platform.resources().node(a).replicas(), 0u);
  EXPECT_EQ(h.platform.replica_count("noop"), 1u);
  EXPECT_EQ(h.platform.stats().replicas_reclaimed, 1u);

  // Requests still serve, on the remaining node's replica.
  bool done = false;
  h.platform.invoke("noop", h.request_for("noop"),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      EXPECT_TRUE(res.ok());
                      done = true;
                    });
  h.pump(done);
  EXPECT_EQ(h.platform.resources().node(a).replicas(), 0u);
}

TEST(ClusterPlatform, FailNodeRequeuesInflightRequest) {
  Harness h;
  h.platform.resources().add_node("a", 8 * GiB);
  h.platform.resources().add_node("b", 8 * GiB);
  h.platform.deploy(exp::image_resizer_spec(), StartMode::kVanilla);

  funcs::Response response;
  bool done = false;
  h.platform.invoke("image-resizer", h.request_for("image-resizer"),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      response = res;
                      done = true;
                    });

  // Poll until the request is being served, then fail the serving node.
  struct Poller {
    Harness* h;
    bool failed = false;
    void operator()() {
      if (failed) return;
      Platform& p = h->platform;
      const bool busy = p.replica_count("image-resizer") >
                        p.idle_replica_count("image-resizer") +
                            p.starting_replica_count("image-resizer");
      if (busy) {
        for (const WorkerNode& n : p.resources().nodes())
          if (n.replicas() > 0) {
            failed = true;
            p.fail_node(n.id());
            return;
          }
      }
      h->kernel.sim().schedule_in(sim::Duration::millis(1), *this);
    }
  };
  h.kernel.sim().schedule_in(sim::Duration::millis(1), Poller{&h});
  h.pump(done);

  EXPECT_TRUE(response.ok());  // the re-served copy answered
  EXPECT_EQ(h.platform.stats().node_failures, 1u);
  EXPECT_EQ(h.platform.stats().requests_requeued, 1u);
  // Exactly one response was recorded for the request.
  EXPECT_EQ(h.platform.request_log().size(), 1u);
  // The failed node hosts nothing; the survivor served the retry.
  std::uint32_t failed_nodes = 0;
  for (const WorkerNode& n : h.platform.resources().nodes())
    if (n.state() == NodeState::kFailed) {
      ++failed_nodes;
      EXPECT_EQ(n.replicas(), 0u);
    }
  EXPECT_EQ(failed_nodes, 1u);
}

TEST(ClusterPlatform, FailNodeReplenishesWarmPool) {
  Harness h;
  const NodeId a = h.platform.resources().add_node("a", 8 * GiB);
  h.platform.resources().add_node("b", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kVanilla);
  h.platform.set_min_idle("noop", 2);
  h.kernel.sim().run_until(h.kernel.sim().now() + sim::Duration::seconds(2));
  EXPECT_EQ(h.platform.idle_replica_count("noop"), 2u);

  h.platform.fail_node(a);
  h.kernel.sim().run_until(h.kernel.sim().now() + sim::Duration::seconds(2));
  // The pool floor is restored on the surviving node.
  EXPECT_EQ(h.platform.idle_replica_count("noop"), 2u);
  EXPECT_EQ(h.platform.resources().node(a).replicas(), 0u);
}

// --- Satellite: bounded request aggregation --------------------------------

TEST(LatencyHistogram, PercentilesWithinBucketError) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_DOUBLE_EQ(hist.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max_ms(), 1000.0);
  EXPECT_NEAR(hist.mean_ms(), 500.5, 1e-9);
  // Log-spaced buckets at 40/decade: <= ~6% relative error per edge.
  EXPECT_NEAR(hist.percentile(0.50), 500.0, 500.0 * 0.08);
  EXPECT_NEAR(hist.percentile(0.95), 950.0, 950.0 * 0.08);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 1000.0);
}

TEST(LatencyHistogram, EmptyAndExtremeValues) {
  LatencyHistogram hist;
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  hist.record(0.0);        // below the first bucket edge
  hist.record(1e12);       // beyond the last decade: clamped to the top
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 1e12);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
}

TEST(ClusterPlatform, AggregateRequestLogStaysBounded) {
  PlatformConfig cfg;
  cfg.aggregate_request_log = true;
  Harness h{cfg};
  h.platform.resources().add_node("n", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kVanilla);

  for (int i = 0; i < 5; ++i) {
    bool done = false;
    h.platform.invoke("noop", h.request_for("noop"),
                      [&](const funcs::Response& res, const RequestMetrics&) {
                        EXPECT_TRUE(res.ok());
                        done = true;
                      });
    h.pump(done);
  }
  // The full log stays empty; the aggregate carries the same information.
  EXPECT_TRUE(h.platform.request_log().empty());
  const RequestAggregate& agg = h.platform.request_aggregate();
  EXPECT_EQ(agg.count, 5u);
  EXPECT_EQ(agg.cold_starts, 1u);
  EXPECT_EQ(agg.total_ms.count(), 5u);
  EXPECT_EQ(agg.cold_startup_ms.count(), 1u);
  EXPECT_GT(agg.total_ms.percentile(0.5), 0.0);
  // The cold request is the slowest one.
  EXPECT_GT(agg.total_ms.max_ms(), agg.total_ms.min_ms());
}

// --- Satellite: snapshot corruption fallback (truncated image) -------------

TEST(ClusterPlatform, TruncatedPagesImageFallsBackToVanilla) {
  Harness h;
  h.platform.resources().add_node("n", 8 * GiB);
  h.platform.deploy(exp::noop_spec(), StartMode::kPrebaked,
                    core::SnapshotPolicy::warmup(1));
  // Truncate the page payload image: the CRC check catches it at decode.
  core::BakedSnapshot& snap = h.platform.snapshots().get_mutable(
      "noop", core::SnapshotPolicy::warmup(1));
  criu::ImageDir truncated;
  for (const auto& [name, f] : snap.images.files()) {
    auto bytes = f.bytes;
    if (name == "pages-1.img") bytes.resize(bytes.size() / 2);
    truncated.put(name, std::move(bytes), f.nominal_size);
  }
  snap.images = std::move(truncated);

  bool done = false;
  h.platform.invoke("noop", h.request_for("noop"),
                    [&](const funcs::Response& res, const RequestMetrics&) {
                      EXPECT_TRUE(res.ok());
                      done = true;
                    });
  h.pump(done);
  EXPECT_EQ(h.platform.stats().restore_fallbacks, 1u);
  EXPECT_EQ(h.platform.stats().cold_starts, 1u);
  ASSERT_EQ(h.platform.request_log().size(), 1u);
  EXPECT_TRUE(h.platform.request_log()[0].cold_start);
}

// --- Satellite: lazy-pages restore through Platform::invoke ----------------

TEST(ClusterPlatform, LazyRestoreChargesFirstRequestService) {
  auto run = [](bool lazy) {
    PlatformConfig cfg;
    if (lazy) cfg.paging = criu::PagingPolicy::lazy(0.2);
    Harness h{cfg};
    h.platform.resources().add_node("n", 8 * GiB);
    h.platform.deploy(exp::image_resizer_spec(), StartMode::kPrebaked,
                      core::SnapshotPolicy::warmup(1));
    for (int i = 0; i < 2; ++i) {
      bool done = false;
      h.platform.invoke("image-resizer", h.request_for("image-resizer"),
                        [&](const funcs::Response& res, const RequestMetrics&) {
                          EXPECT_TRUE(res.ok());
                          done = true;
                        });
      h.pump(done);
    }
    std::vector<RequestMetrics> log = h.platform.request_log();
    EXPECT_EQ(log.size(), 2u);
    return log;
  };
  const auto lazy = run(true);
  const auto eager = run(false);

  // Lazy: the restore itself is cheaper (only the eager fraction is read)...
  EXPECT_LT(lazy[0].startup.to_millis(), eager[0].startup.to_millis());
  // ...but the deferred pages fault in during the first request's service
  // window (uffd round trips + image reads).
  EXPECT_GT(lazy[0].service.to_millis(), eager[0].service.to_millis() * 2);
  // Once drained, steady-state service matches the eager platform.
  EXPECT_NEAR(lazy[1].service.to_millis(), eager[1].service.to_millis(),
              eager[1].service.to_millis() * 0.25);
}

// --- exp-layer scenario ----------------------------------------------------

TEST(ClusterScenario, DeterministicAndPolicySensitive) {
  exp::ClusterScenarioConfig cfg;
  cfg.duration = sim::Duration::seconds(60);
  const exp::ClusterScenarioResult a = exp::run_cluster_scenario(cfg);
  const exp::ClusterScenarioResult b = exp::run_cluster_scenario(cfg);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.remote_bytes_fetched, b.remote_bytes_fetched);
  EXPECT_DOUBLE_EQ(a.total_p99_ms, b.total_p99_ms);
  EXPECT_EQ(a.nodes.size(), cfg.nodes);
  EXPECT_EQ(a.rejected, 0u);

  // The locality policy strictly reduces registry traffic on this workload.
  cfg.policy = PlacementPolicy::kSnapshotLocality;
  const exp::ClusterScenarioResult loc = exp::run_cluster_scenario(cfg);
  EXPECT_EQ(loc.requests, a.requests);
  EXPECT_LT(loc.remote_bytes_fetched, a.remote_bytes_fetched);
  EXPECT_GT(loc.snapshot_hits, a.snapshot_hits);
}

}  // namespace
}  // namespace prebake::faas
