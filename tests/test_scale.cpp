// Production-scale scenario runner (DESIGN.md §6h): determinism across
// thread counts, the memory-bound guarantee (engine footprint tracks the
// active set, not the trace length), and the policy knobs.
#include <gtest/gtest.h>

#include "exp/run.hpp"
#include "exp/scale.hpp"

using namespace prebake;

namespace {

exp::ScaleScenarioConfig small_config() {
  exp::ScaleScenarioConfig cfg;
  cfg.functions = 50;
  cfg.requests = 10'000;
  cfg.rate_hz = 20.0;
  cfg.zipf_s = 1.0;
  cfg.nodes = 4;
  cfg.seed = 17;
  return cfg;
}

bool same_result(const exp::ScaleScenarioResult& a,
                 const exp::ScaleScenarioResult& b) {
  return a.requests == b.requests && a.responses_ok == b.responses_ok &&
         a.rejected == b.rejected && a.cold_starts == b.cold_starts &&
         a.replicas_started == b.replicas_started &&
         a.total_p50_ms == b.total_p50_ms && a.total_p99_ms == b.total_p99_ms &&
         a.total_p999_ms == b.total_p999_ms &&
         a.mem_byte_seconds == b.mem_byte_seconds &&
         a.makespan_s == b.makespan_s &&
         a.peak_pending_events == b.peak_pending_events &&
         a.peak_replicas == b.peak_replicas;
}

}  // namespace

TEST(ScaleScenario, AnswersEveryRequest) {
  const exp::ScaleScenarioResult r = exp::run_scale_scenario(small_config());
  EXPECT_EQ(r.requests, 10'000u);
  EXPECT_EQ(r.responses_ok + r.rejected, r.requests);
  EXPECT_GT(r.cold_starts, 0u);
  EXPECT_GT(r.mem_byte_seconds, 0.0);
  EXPECT_EQ(r.functions_deployed, 50u);
  EXPECT_GT(r.functions_invoked, 40u);  // Zipf tail still gets sampled
  ASSERT_EQ(r.hottest.size(), 10u);
  EXPECT_EQ(r.hottest.front().function, "fn-0");
  EXPECT_GE(r.hottest.front().requests, r.hottest.back().requests);
}

TEST(ScaleScenario, DeterministicAcrossRuns) {
  const exp::ScaleScenarioResult a = exp::run_scale_scenario(small_config());
  const exp::ScaleScenarioResult b = exp::run_scale_scenario(small_config());
  EXPECT_TRUE(same_result(a, b));
}

TEST(ScaleScenario, ThreadCountDoesNotChangeResults) {
  // The scenario is one simulation; the spec-level threads knob must be
  // inert on the numbers (it exists for sweep-level parallelism).
  exp::ScenarioSpec spec = exp::ScenarioSpec::from(small_config());
  ASSERT_EQ(spec.kind, exp::ScenarioKind::kScale);
  spec.threads = 1;
  const exp::ScaleScenarioResult one = exp::run(spec).scale;
  spec.threads = 4;
  const exp::ScaleScenarioResult four = exp::run(spec).scale;
  EXPECT_TRUE(same_result(one, four));
}

TEST(ScaleScenario, SpecRoundTripMirrorsSharedKnobs) {
  exp::ScaleScenarioConfig cfg = small_config();
  cfg.seed = 123;
  cfg.threads = 2;
  const exp::ScenarioSpec spec = exp::ScenarioSpec::from(cfg);
  EXPECT_EQ(spec.seed, 123u);
  EXPECT_EQ(spec.threads, 2);
  EXPECT_STREQ(exp::scenario_kind_name(spec.kind), "scale");
}

TEST(ScaleScenario, MemoryFootprintTracksActiveSetNotTraceLength) {
  // Quadruple the trace; the engine's peak pending events and replica
  // count must stay in the same band — the witnesses that nothing
  // accumulates per-request. (The replay aggregates: no request log, no
  // metrics vector, per-function map bounded by the fleet.)
  exp::ScaleScenarioConfig short_cfg = small_config();
  exp::ScaleScenarioConfig long_cfg = small_config();
  long_cfg.requests = 40'000;

  const exp::ScaleScenarioResult s = exp::run_scale_scenario(short_cfg);
  const exp::ScaleScenarioResult l = exp::run_scale_scenario(long_cfg);
  EXPECT_EQ(l.responses_ok + l.rejected, 40'000u);
  // O(active replicas + functions) with a generous constant; a per-request
  // leak would put these at O(10^4).
  EXPECT_LE(l.peak_pending_events, 64 * (l.peak_replicas + long_cfg.functions));
  EXPECT_LE(l.peak_pending_events, 4 * s.peak_pending_events + 1024);
  EXPECT_LE(l.peak_replicas, 2u * long_cfg.functions);
}

TEST(ScaleScenario, PolicyKnobsShapeTheRun) {
  exp::ScaleScenarioConfig cfg = small_config();

  cfg.policy = exp::KeepAlivePolicy::kPrebaked;
  const exp::ScaleScenarioResult pre = exp::run_scale_scenario(cfg);
  cfg.policy = exp::KeepAlivePolicy::kKeepAlive;
  const exp::ScaleScenarioResult keep = exp::run_scale_scenario(cfg);
  cfg.policy = exp::KeepAlivePolicy::kWarmPool;
  const exp::ScaleScenarioResult pool = exp::run_scale_scenario(cfg);

  // Long keep-alive and the warm pool trade memory for cold starts.
  EXPECT_LT(keep.cold_start_rate, pre.cold_start_rate);
  EXPECT_LE(pool.cold_start_rate, keep.cold_start_rate);
  EXPECT_GT(keep.mem_byte_seconds, pre.mem_byte_seconds);
  // Prebaked cold starts restore; Vanilla cold starts boot the runtime.
  EXPECT_LT(pre.cold_startup_p50_ms, keep.cold_startup_p50_ms);
}

TEST(ScaleScenario, ValidatesConfig) {
  exp::ScaleScenarioConfig cfg = small_config();
  cfg.functions = 0;
  EXPECT_THROW(exp::run_scale_scenario(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.requests = 0;
  EXPECT_THROW(exp::run_scale_scenario(cfg), std::invalid_argument);
}

TEST(ScaleScenario, PolicyNames) {
  EXPECT_STREQ(exp::keep_alive_policy_name(exp::KeepAlivePolicy::kPrebaked),
               "prebaked");
  EXPECT_STREQ(exp::keep_alive_policy_name(exp::KeepAlivePolicy::kKeepAlive),
               "keepalive");
  EXPECT_STREQ(exp::keep_alive_policy_name(exp::KeepAlivePolicy::kWarmPool),
               "warmpool");
  EXPECT_STREQ(exp::keep_alive_policy_name(exp::KeepAlivePolicy::kCowClone),
               "cowclone");
}

TEST(ScaleScenario, TraceCaptureDoesNotPerturbResults) {
  exp::ScenarioSpec spec = exp::ScenarioSpec::from(small_config());
  const exp::ScaleScenarioResult bare = exp::run(spec).scale;
  spec.trace = true;
  const exp::ScenarioRun traced = exp::run(spec);
  EXPECT_TRUE(same_result(bare, traced.scale));
  EXPECT_FALSE(traced.trace.spans.empty());
}
