#include "funcs/image.hpp"

#include <gtest/gtest.h>

namespace prebake::funcs {
namespace {

TEST(SyntheticImage, DimensionsAndValidity) {
  const Image img = generate_synthetic_image(64, 32, 1);
  EXPECT_EQ(img.width, 64u);
  EXPECT_EQ(img.height, 32u);
  EXPECT_TRUE(img.valid());
  EXPECT_EQ(img.rgba.size(), 64u * 32 * 4);
}

TEST(SyntheticImage, DeterministicForSeed) {
  const Image a = generate_synthetic_image(32, 32, 9);
  const Image b = generate_synthetic_image(32, 32, 9);
  EXPECT_EQ(a.rgba, b.rgba);
}

TEST(SyntheticImage, DifferentSeedsDiffer) {
  const Image a = generate_synthetic_image(32, 32, 1);
  const Image b = generate_synthetic_image(32, 32, 2);
  EXPECT_NE(a.rgba, b.rgba);
}

TEST(SyntheticImage, OpaqueAlpha) {
  const Image img = generate_synthetic_image(16, 16, 3);
  for (std::uint32_t y = 0; y < img.height; ++y)
    for (std::uint32_t x = 0; x < img.width; ++x)
      EXPECT_EQ(img.pixel(x, y)[3], 255);
}

TEST(SyntheticImage, HasSpatialVariation) {
  const Image img = generate_synthetic_image(64, 64, 4);
  bool varies = false;
  const std::uint8_t* first = img.pixel(0, 0);
  for (std::uint32_t x = 1; x < img.width && !varies; ++x)
    if (img.pixel(x, 0)[0] != first[0]) varies = true;
  EXPECT_TRUE(varies);
}

TEST(SyntheticImage, ZeroDimensionThrows) {
  EXPECT_THROW(generate_synthetic_image(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(generate_synthetic_image(10, 0, 1), std::invalid_argument);
}

TEST(ResizeBox, TenPercentScale) {
  const Image src = generate_synthetic_image(344, 144, 5);
  const Image out = resize_box(src, 0.10);
  EXPECT_EQ(out.width, 34u);
  EXPECT_EQ(out.height, 14u);
  EXPECT_TRUE(out.valid());
}

TEST(ResizeBox, IdentityScale) {
  const Image src = generate_synthetic_image(20, 20, 6);
  const Image out = resize_box(src, 1.0);
  EXPECT_EQ(out.width, 20u);
  EXPECT_EQ(out.height, 20u);
  EXPECT_EQ(out.rgba, src.rgba);
}

TEST(ResizeBox, AveragesUniformRegions) {
  Image src;
  src.width = 8;
  src.height = 8;
  src.rgba.assign(8 * 8 * 4, 100);
  const Image out = resize_box(src, 0.5);
  for (std::uint32_t y = 0; y < out.height; ++y)
    for (std::uint32_t x = 0; x < out.width; ++x)
      for (int c = 0; c < 4; ++c) EXPECT_EQ(out.pixel(x, y)[c], 100);
}

TEST(ResizeBox, ReducesHighFrequencyEnergy) {
  // A checkerboard averages toward gray when box-filtered down.
  Image src;
  src.width = 64;
  src.height = 64;
  src.rgba.resize(64 * 64 * 4);
  for (std::uint32_t y = 0; y < 64; ++y)
    for (std::uint32_t x = 0; x < 64; ++x) {
      const std::uint8_t v = ((x + y) % 2 == 0) ? 0 : 255;
      auto* p = src.pixel(x, y);
      p[0] = p[1] = p[2] = v;
      p[3] = 255;
    }
  const Image out = resize_box(src, 0.25);
  for (std::uint32_t y = 0; y < out.height; ++y)
    for (std::uint32_t x = 0; x < out.width; ++x) {
      EXPECT_NEAR(out.pixel(x, y)[0], 127, 10);
    }
}

TEST(ResizeBox, BadScaleThrows) {
  const Image src = generate_synthetic_image(8, 8, 1);
  EXPECT_THROW(resize_box(src, 0.0), std::invalid_argument);
  EXPECT_THROW(resize_box(src, 1.5), std::invalid_argument);
}

TEST(ResizeBilinear, TargetDimensions) {
  const Image src = generate_synthetic_image(100, 60, 7);
  const Image out = resize_bilinear(src, 37, 23);
  EXPECT_EQ(out.width, 37u);
  EXPECT_EQ(out.height, 23u);
  EXPECT_TRUE(out.valid());
}

TEST(ResizeBilinear, PreservesCorners) {
  const Image src = generate_synthetic_image(50, 50, 8);
  const Image out = resize_bilinear(src, 25, 25);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(out.pixel(0, 0)[c], src.pixel(0, 0)[c]);
    EXPECT_EQ(out.pixel(24, 24)[c], src.pixel(49, 49)[c]);
  }
}

TEST(ResizeBilinear, UniformStaysUniform) {
  Image src;
  src.width = 10;
  src.height = 10;
  src.rgba.assign(10 * 10 * 4, 42);
  const Image out = resize_bilinear(src, 7, 3);
  for (std::uint32_t y = 0; y < out.height; ++y)
    for (std::uint32_t x = 0; x < out.width; ++x)
      EXPECT_EQ(out.pixel(x, y)[0], 42);
}

TEST(ResizeBilinear, ZeroTargetThrows) {
  const Image src = generate_synthetic_image(8, 8, 1);
  EXPECT_THROW(resize_bilinear(src, 0, 5), std::invalid_argument);
}

TEST(Ppm, EncodeDecodeRoundTrip) {
  const Image src = generate_synthetic_image(33, 17, 11);
  const Image back = decode_ppm(encode_ppm(src));
  EXPECT_EQ(back.width, src.width);
  EXPECT_EQ(back.height, src.height);
  EXPECT_EQ(back.rgba, src.rgba);  // alpha is 255 everywhere
}

TEST(Ppm, HeaderFormat) {
  const Image src = generate_synthetic_image(5, 4, 12);
  const auto ppm = encode_ppm(src);
  const std::string head(ppm.begin(), ppm.begin() + 11);
  EXPECT_EQ(head.substr(0, 3), "P6\n");
  EXPECT_NE(head.find("5 4"), std::string::npos);
}

TEST(Ppm, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_ppm(std::vector<std::uint8_t>{'X', 'Y'}),
               std::invalid_argument);
}

TEST(Ppm, DecodeRejectsTruncated) {
  auto ppm = encode_ppm(generate_synthetic_image(10, 10, 13));
  ppm.resize(ppm.size() / 2);
  EXPECT_THROW(decode_ppm(ppm), std::invalid_argument);
}

}  // namespace
}  // namespace prebake::funcs
