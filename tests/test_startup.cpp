// StartupService: the Vanilla vs Prebaked start paths and their breakdowns.
#include "core/startup.hpp"

#include <gtest/gtest.h>

#include "core/prebaker.hpp"
#include "exp/calibration.hpp"
#include "faas/builder.hpp"

namespace prebake::core {
namespace {

class StartupTest : public ::testing::Test {
 protected:
  StartupTest()
      : kernel_{sim_, exp::testbed_costs()},
        startup_{kernel_, exp::testbed_runtime(), assets_},
        builder_{kernel_, startup_} {}

  rt::FunctionSpec build(const rt::FunctionSpec& spec) {
    return builder_.build(spec, std::nullopt, sim::Rng{1}).spec;
  }

  // All tests restore from images persisted at the snapshot's fs prefix.
  static PrebakedStartOptions images_at(const std::string& fs_prefix) {
    PrebakedStartOptions options;
    options.restore.fs_prefix = fs_prefix;
    return options;
  }

  BakedSnapshot bake(const rt::FunctionSpec& spec, SnapshotPolicy policy) {
    PrebakeConfig cfg;
    cfg.policy = policy;
    faas::BuildResult built =
        builder_.build(spec, cfg, sim::Rng{2});
    baked_spec_ = built.spec;
    return std::move(*built.snapshot);
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
  StartupService startup_;
  faas::FunctionBuilder builder_;
  rt::FunctionSpec baked_spec_;
};

TEST_F(StartupTest, VanillaBreakdownHasAllPhases) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess rep = startup_.start_vanilla(spec, sim::Rng{3});
  const StartupBreakdown& b = rep.breakdown;
  EXPECT_GT(b.clone_time.to_millis(), 0.0);
  EXPECT_GT(b.exec_time.to_millis(), 0.0);
  EXPECT_GT(b.rts_time.to_millis(), 50.0);
  EXPECT_GT(b.appinit_time.to_millis(), 0.0);
  EXPECT_EQ(b.restore_time.to_millis(), 0.0);
  EXPECT_NEAR(b.total.to_millis(),
              (b.clone_time + b.exec_time + b.rts_time + b.appinit_time)
                  .to_millis(),
              1e-6);
}

TEST_F(StartupTest, CloneAndExecAreTinyFraction) {
  // Figure 4: "CLONE and EXEC phases contribute with a tiny fraction."
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess rep = startup_.start_vanilla(spec, sim::Rng{3});
  const double tiny =
      (rep.breakdown.clone_time + rep.breakdown.exec_time).to_millis();
  // First-ever exec reads the binary cold from disk, so allow a little
  // more than the warmed steady state measured in Figure 4.
  EXPECT_LT(tiny / rep.breakdown.total.to_millis(), 0.10);
}

TEST_F(StartupTest, VanillaReplicaServesRequests) {
  const rt::FunctionSpec spec = build(exp::markdown_spec());
  ReplicaProcess rep = startup_.start_vanilla(spec, sim::Rng{3});
  const funcs::Response res =
      rep.runtime->handle(funcs::sample_request("markdown"));
  EXPECT_TRUE(res.ok());
  EXPECT_NE(res.body.find("<h1>"), std::string::npos);
}

TEST_F(StartupTest, PrebakedBreakdownHasZeroRts) {
  const BakedSnapshot snap = bake(exp::noop_spec(), SnapshotPolicy::no_warmup());
  ReplicaProcess rep = startup_.start_prebaked(
      baked_spec_, snap.images, images_at(snap.fs_prefix),
      sim::Rng{4});
  // "Prebaking brings the RTS down to 0 ms."
  EXPECT_EQ(rep.breakdown.rts_time.to_millis(), 0.0);
  EXPECT_EQ(rep.breakdown.clone_time.to_millis(), 0.0);
  EXPECT_EQ(rep.breakdown.exec_time.to_millis(), 0.0);
  EXPECT_GT(rep.breakdown.restore_time.to_millis(), 0.0);
  EXPECT_GT(rep.breakdown.appinit_stacked().to_millis(), 0.0);
}

TEST_F(StartupTest, PrebakedFasterThanVanilla) {
  const BakedSnapshot snap = bake(exp::noop_spec(), SnapshotPolicy::no_warmup());
  ReplicaProcess vanilla = startup_.start_vanilla(baked_spec_, sim::Rng{5});
  ReplicaProcess prebaked = startup_.start_prebaked(
      baked_spec_, snap.images, images_at(snap.fs_prefix),
      sim::Rng{5});
  EXPECT_LT(prebaked.breakdown.total.to_millis(),
            vanilla.breakdown.total.to_millis());
}

TEST_F(StartupTest, PrebakedReplicaServesIdenticalResponses) {
  const BakedSnapshot snap =
      bake(exp::markdown_spec(), SnapshotPolicy::no_warmup());
  ReplicaProcess vanilla = startup_.start_vanilla(baked_spec_, sim::Rng{6});
  ReplicaProcess prebaked = startup_.start_prebaked(
      baked_spec_, snap.images, images_at(snap.fs_prefix),
      sim::Rng{6});
  const funcs::Request req = funcs::sample_request("markdown");
  EXPECT_EQ(vanilla.runtime->handle(req).body, prebaked.runtime->handle(req).body);
}

TEST_F(StartupTest, WarmSnapshotKnowsItsWarm) {
  const BakedSnapshot snap = bake(exp::noop_spec(), SnapshotPolicy::warmup(1));
  ReplicaProcess rep = startup_.start_prebaked(
      baked_spec_, snap.images, images_at(snap.fs_prefix),
      sim::Rng{7});
  EXPECT_TRUE(rep.runtime->warmed());
}

TEST_F(StartupTest, NoWarmupSnapshotIsNotWarm) {
  const BakedSnapshot snap = bake(exp::noop_spec(), SnapshotPolicy::no_warmup());
  ReplicaProcess rep = startup_.start_prebaked(
      baked_spec_, snap.images, images_at(snap.fs_prefix),
      sim::Rng{7});
  EXPECT_FALSE(rep.runtime->warmed());
}

TEST_F(StartupTest, ReclaimKillsProcess) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess rep = startup_.start_vanilla(spec, sim::Rng{8});
  const os::Pid pid = rep.pid;
  startup_.reclaim(rep);
  EXPECT_EQ(rep.pid, os::kNoPid);
  EXPECT_FALSE(kernel_.alive(pid));
  // Idempotent.
  startup_.reclaim(rep);
}

TEST_F(StartupTest, ZygoteForkSkipsExecAndBootstrap) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess rep = startup_.start_zygote_fork(spec, sim::Rng{9});
  EXPECT_GT(rep.breakdown.clone_time.to_millis(), 0.0);
  EXPECT_EQ(rep.breakdown.exec_time.to_millis(), 0.0);
  EXPECT_EQ(rep.breakdown.rts_time.to_millis(), 0.0);
  EXPECT_GT(rep.breakdown.appinit_time.to_millis(), 0.0);
  // Replica serves real requests.
  EXPECT_TRUE(rep.runtime->handle(funcs::Request{}).ok());
  startup_.reclaim(rep);
}

TEST_F(StartupTest, ZygoteForkFasterThanVanillaByAboutBootstrap) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess zygote = startup_.start_zygote_fork(spec, sim::Rng{9});
  ReplicaProcess vanilla = startup_.start_vanilla(spec, sim::Rng{9});
  const double saved =
      vanilla.breakdown.total.to_millis() - zygote.breakdown.total.to_millis();
  EXPECT_NEAR(saved, 71.0, 10.0);  // exec + ~70 ms RTS, minus fork fixups
}

TEST_F(StartupTest, ZygoteIsReusedAcrossForks) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  const std::size_t before = kernel_.process_count();
  ReplicaProcess a = startup_.start_zygote_fork(spec, sim::Rng{1});
  // First fork creates the zygote (+1) and the replica (+1).
  EXPECT_EQ(kernel_.process_count(), before + 2);
  ReplicaProcess b = startup_.start_zygote_fork(spec, sim::Rng{2});
  // Second fork reuses the zygote.
  EXPECT_EQ(kernel_.process_count(), before + 3);
  startup_.reclaim(a);
  startup_.reclaim(b);
}

TEST_F(StartupTest, ZygoteChildHasRuntimeThreadsAndCowMemory) {
  const rt::FunctionSpec spec = build(exp::noop_spec());
  ReplicaProcess rep = startup_.start_zygote_fork(spec, sim::Rng{9});
  const os::Process& child = kernel_.process(rep.pid);
  EXPECT_EQ(child.threads().size(), 5u);  // main + restarted services
  // COW: the booted heap is already resident in the child.
  bool heap_found = false;
  for (const os::Vma& vma : child.mm().vmas())
    if (vma.name == "[jvm-heap]" && vma.resident_pages() > 0) heap_found = true;
  EXPECT_TRUE(heap_found);
}

TEST_F(StartupTest, ManyReplicasFromOneSnapshot) {
  const BakedSnapshot snap = bake(exp::noop_spec(), SnapshotPolicy::no_warmup());
  std::vector<ReplicaProcess> reps;
  for (int i = 0; i < 5; ++i)
    reps.push_back(startup_.start_prebaked(
        baked_spec_, snap.images, images_at(snap.fs_prefix),
        sim::Rng{static_cast<std::uint64_t>(i)}));
  for (auto& rep : reps) {
    EXPECT_TRUE(kernel_.alive(rep.pid));
    EXPECT_TRUE(rep.runtime->handle(funcs::Request{}).ok());
  }
  for (auto& rep : reps) startup_.reclaim(rep);
}

}  // namespace
}  // namespace prebake::core
