// Cross-runtime profiles (the Section 7 future-work extension).
#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

namespace prebake::exp {
namespace {

double median_ms(RuntimeKind kind, int code_mb, Technique tech) {
  ScenarioConfig cfg;
  cfg.spec = cross_runtime_spec(kind, code_mb);
  cfg.runtime = runtime_profile(kind);
  cfg.technique = tech;
  cfg.repetitions = 10;
  cfg.measure_first_response = true;
  cfg.seed = 3;
  return stats::median(run_startup_scenario(cfg).startup_ms);
}

TEST(RuntimeProfiles, NamesResolve) {
  EXPECT_STREQ(runtime_kind_name(RuntimeKind::kJava8), "java8");
  EXPECT_STREQ(runtime_kind_name(RuntimeKind::kNode12), "node12");
  EXPECT_STREQ(runtime_kind_name(RuntimeKind::kPython3), "python3");
}

TEST(RuntimeProfiles, JavaProfileIsTheTestbed) {
  const rt::RuntimeCosts java = runtime_profile(RuntimeKind::kJava8);
  const rt::RuntimeCosts testbed = testbed_runtime();
  EXPECT_EQ(java.bootstrap.nanos_count(), testbed.bootstrap.nanos_count());
  EXPECT_EQ(java.jit_per_mib.nanos_count(), testbed.jit_per_mib.nanos_count());
}

TEST(RuntimeProfiles, BootstrapOrdering) {
  // JVM > V8 > CPython bootstrap (the paper measured ~70 ms for Java 8).
  EXPECT_GT(runtime_profile(RuntimeKind::kJava8).bootstrap,
            runtime_profile(RuntimeKind::kNode12).bootstrap);
  EXPECT_GT(runtime_profile(RuntimeKind::kNode12).bootstrap,
            runtime_profile(RuntimeKind::kPython3).bootstrap);
}

TEST(RuntimeProfiles, PythonHasNoJit) {
  const rt::RuntimeCosts py = runtime_profile(RuntimeKind::kPython3);
  EXPECT_EQ(py.jit_per_mib.nanos_count(), 0);
  EXPECT_EQ(py.code_cache_factor, 0.0);
}

TEST(RuntimeProfiles, CrossRuntimeSpecBinaries) {
  EXPECT_EQ(cross_runtime_spec(RuntimeKind::kJava8, 3).runtime_binary,
            "/opt/jvm/bin/java");
  EXPECT_EQ(cross_runtime_spec(RuntimeKind::kNode12, 3).runtime_binary,
            "/usr/bin/node");
  EXPECT_EQ(cross_runtime_spec(RuntimeKind::kPython3, 3).runtime_binary,
            "/usr/bin/python3");
}

TEST(RuntimeProfiles, PrebakeWinsOnEveryRuntime) {
  for (const RuntimeKind kind :
       {RuntimeKind::kJava8, RuntimeKind::kNode12, RuntimeKind::kPython3}) {
    const double vanilla = median_ms(kind, 3, Technique::kVanilla);
    const double nowarm = median_ms(kind, 3, Technique::kPrebakeNoWarmup);
    const double warm = median_ms(kind, 3, Technique::kPrebakeWarmup);
    EXPECT_LT(nowarm, vanilla) << runtime_kind_name(kind);
    EXPECT_LT(warm, nowarm) << runtime_kind_name(kind);
  }
}

TEST(RuntimeProfiles, JvmGainsMostFromWarmup) {
  // The JVM pays bootstrap + lazy load + JIT; CPython only the first two.
  const double java_ratio = median_ms(RuntimeKind::kJava8, 8, Technique::kVanilla) /
                            median_ms(RuntimeKind::kJava8, 8, Technique::kPrebakeWarmup);
  const double py_ratio = median_ms(RuntimeKind::kPython3, 8, Technique::kVanilla) /
                          median_ms(RuntimeKind::kPython3, 8, Technique::kPrebakeWarmup);
  EXPECT_GT(java_ratio, py_ratio);
}

TEST(RuntimeProfiles, PythonReplicaRunsWithoutCodeCache) {
  // No zero-length mappings, no JIT cost, and requests still work.
  ScenarioConfig cfg;
  cfg.spec = cross_runtime_spec(RuntimeKind::kPython3, 2);
  cfg.runtime = runtime_profile(RuntimeKind::kPython3);
  cfg.technique = Technique::kPrebakeWarmup;
  cfg.repetitions = 3;
  cfg.measure_first_response = true;
  EXPECT_NO_THROW(run_startup_scenario(cfg));
}

}  // namespace
}  // namespace prebake::exp
