#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prebake::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormalCdf, Tails) {
  EXPECT_LT(normal_cdf(-8.0), 1e-14);
  EXPECT_GT(normal_cdf(8.0), 1.0 - 1e-14);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
}

TEST(NormalQuantile, RoundTripWithCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, ExtremeTails) {
  EXPECT_NEAR(normal_quantile(1e-10), -6.3613409, 1e-4);
  EXPECT_NEAR(normal_quantile(1.0 - 1e-10), 6.3613409, 1e-4);
}

TEST(NormalQuantile, BoundaryBehaviour) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_THROW(normal_quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.1), std::invalid_argument);
}

TEST(NormalQuantile, Monotone) {
  double prev = normal_quantile(0.01);
  for (double p = 0.02; p < 1.0; p += 0.01) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace prebake::stats
