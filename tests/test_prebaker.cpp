#include "core/prebaker.hpp"

#include <gtest/gtest.h>

#include "exp/calibration.hpp"
#include "faas/builder.hpp"

namespace prebake::core {
namespace {

class PrebakerTest : public ::testing::Test {
 protected:
  PrebakerTest()
      : kernel_{sim_, exp::testbed_costs()},
        startup_{kernel_, exp::testbed_runtime(), assets_},
        builder_{kernel_, startup_} {}

  BakedSnapshot bake(rt::FunctionSpec spec, PrebakeConfig cfg) {
    faas::BuildResult built = builder_.build(std::move(spec), std::nullopt,
                                             sim::Rng{1});
    Prebaker prebaker{startup_};
    return prebaker.bake(built.spec, cfg, sim::Rng{2});
  }

  sim::Simulation sim_;
  os::Kernel kernel_;
  funcs::SharedAssets assets_;
  StartupService startup_;
  faas::FunctionBuilder builder_;
};

TEST_F(PrebakerTest, BakePersistsImagesUnderStoreRoot) {
  PrebakeConfig cfg;
  const BakedSnapshot snap = bake(exp::noop_spec(), cfg);
  EXPECT_EQ(snap.fs_prefix, "/var/lib/prebake/noop/nowarmup/");
  EXPECT_TRUE(kernel_.fs().exists(snap.fs_prefix + "inventory.img"));
  EXPECT_TRUE(kernel_.fs().exists(snap.fs_prefix + "pages-1.img"));
  EXPECT_NO_THROW(snap.images.validate());
}

TEST_F(PrebakerTest, BakedProcessIsGoneAfterBake) {
  // The baked process served its purpose; only the snapshot remains. The
  // launcher is the single surviving process.
  bake(exp::noop_spec(), PrebakeConfig{});
  EXPECT_EQ(kernel_.process_count(), 1u);
}

TEST_F(PrebakerTest, WarmupPolicyRecordsRequests) {
  PrebakeConfig cfg;
  cfg.policy = SnapshotPolicy::warmup(3);
  const BakedSnapshot snap = bake(exp::noop_spec(), cfg);
  EXPECT_EQ(snap.stats.warmup_requests, 3u);
  EXPECT_EQ(snap.policy.tag(), "warmup3");
}

TEST_F(PrebakerTest, WarmSnapshotIsBiggerThanColdSnapshot) {
  // Warm-up loads + JIT-compiles the request classes into the image.
  PrebakeConfig cold_cfg;
  const BakedSnapshot cold = bake(exp::synthetic_spec(exp::SynthSize::kSmall),
                                  cold_cfg);
  PrebakeConfig warm_cfg;
  warm_cfg.policy = SnapshotPolicy::warmup(1);
  const BakedSnapshot warm = bake(exp::synthetic_spec(exp::SynthSize::kSmall),
                                  warm_cfg);
  EXPECT_GT(warm.images.nominal_total(),
            cold.images.nominal_total() + 4ull * 1024 * 1024);
}

TEST_F(PrebakerTest, SnapshotSizeTracksFunctionFootprint) {
  const BakedSnapshot noop = bake(exp::noop_spec(), PrebakeConfig{});
  const BakedSnapshot resizer = bake(exp::image_resizer_spec(), PrebakeConfig{});
  // Paper: 13 MB (NOOP) vs 99.2 MB (Image Resizer).
  EXPECT_GT(resizer.images.nominal_total(),
            noop.images.nominal_total() * 5);
}

TEST_F(PrebakerTest, UnprivilegedBakeWorksWithNewCapability) {
  PrebakeConfig cfg;
  cfg.unprivileged = true;  // CAP_CHECKPOINT_RESTORE only [11]
  EXPECT_NO_THROW(bake(exp::noop_spec(), cfg));
}

TEST_F(PrebakerTest, BuildTimeIsRecorded) {
  const BakedSnapshot snap = bake(exp::noop_spec(), PrebakeConfig{});
  // Bake = full vanilla start + dump + persist; well above a restore.
  EXPECT_GT(snap.build_time.to_millis(), 50.0);
}

TEST(SnapshotStore, PutGetHas) {
  SnapshotStore store;
  BakedSnapshot snap;
  snap.function_name = "fn";
  snap.policy = SnapshotPolicy::warmup(1);
  store.put(std::move(snap));
  EXPECT_TRUE(store.has("fn", SnapshotPolicy::warmup(1)));
  EXPECT_FALSE(store.has("fn", SnapshotPolicy::no_warmup()));
  EXPECT_EQ(store.get("fn", SnapshotPolicy::warmup(1)).function_name, "fn");
  EXPECT_THROW(store.get("other", SnapshotPolicy::no_warmup()),
               std::out_of_range);
  EXPECT_EQ(store.size(), 1u);
}

namespace {
BakedSnapshot fake_snapshot(const std::string& name, SnapshotPolicy policy,
                            std::uint64_t bytes) {
  BakedSnapshot snap;
  snap.function_name = name;
  snap.policy = policy;
  snap.images.put("pages-1.img", {1, 2, 3}, bytes);
  return snap;
}
}  // namespace

TEST(SnapshotStoreLru, UnlimitedByDefault) {
  SnapshotStore store;
  for (int i = 0; i < 20; ++i)
    store.put(fake_snapshot("fn" + std::to_string(i),
                            SnapshotPolicy::no_warmup(), 100 << 20));
  EXPECT_EQ(store.size(), 20u);
  EXPECT_EQ(store.cache_stats().evictions, 0u);
}

TEST(SnapshotStoreLru, CapacityEvictsLeastRecentlyUsed) {
  SnapshotStore store;
  store.set_capacity(250ull << 20);
  store.put(fake_snapshot("a", SnapshotPolicy::no_warmup(), 100 << 20));
  store.put(fake_snapshot("b", SnapshotPolicy::no_warmup(), 100 << 20));
  // Touch "a" so "b" becomes the LRU victim.
  (void)store.get("a", SnapshotPolicy::no_warmup());
  store.put(fake_snapshot("c", SnapshotPolicy::no_warmup(), 100 << 20));
  EXPECT_TRUE(store.has("a", SnapshotPolicy::no_warmup()));
  EXPECT_FALSE(store.has("b", SnapshotPolicy::no_warmup()));
  EXPECT_TRUE(store.has("c", SnapshotPolicy::no_warmup()));
  EXPECT_EQ(store.cache_stats().evictions, 1u);
}

TEST(SnapshotStoreLru, ShrinkingCapacityEvictsImmediately) {
  SnapshotStore store;
  store.put(fake_snapshot("a", SnapshotPolicy::no_warmup(), 100 << 20));
  store.put(fake_snapshot("b", SnapshotPolicy::no_warmup(), 100 << 20));
  store.set_capacity(150ull << 20);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.has("b", SnapshotPolicy::no_warmup()));
}

TEST(SnapshotStoreLru, NeverEvictsTheLastSnapshot) {
  SnapshotStore store;
  store.set_capacity(1);  // smaller than any snapshot
  store.put(fake_snapshot("a", SnapshotPolicy::no_warmup(), 100 << 20));
  EXPECT_EQ(store.size(), 1u);
}

TEST(SnapshotStoreLru, HitMissAccounting) {
  SnapshotStore store;
  store.put(fake_snapshot("a", SnapshotPolicy::no_warmup(), 1000));
  (void)store.get("a", SnapshotPolicy::no_warmup());
  EXPECT_THROW((void)store.get("zzz", SnapshotPolicy::no_warmup()),
               std::out_of_range);
  EXPECT_EQ(store.cache_stats().hits, 1u);
  EXPECT_EQ(store.cache_stats().misses, 1u);
  EXPECT_EQ(store.stored_bytes(), 1000u);
}

TEST(SnapshotPolicy, Tags) {
  EXPECT_EQ(SnapshotPolicy::no_warmup().tag(), "nowarmup");
  EXPECT_EQ(SnapshotPolicy::warmup().tag(), "warmup1");
  EXPECT_EQ(SnapshotPolicy::warmup(5).tag(), "warmup5");
  EXPECT_FALSE(SnapshotPolicy::no_warmup().warmed());
  EXPECT_TRUE(SnapshotPolicy::warmup().warmed());
}

}  // namespace
}  // namespace prebake::core
