#!/usr/bin/env sh
# Build the unit-test binary under ASan+UBSan (the asan-ubsan CMake preset)
# and run it. Registered with CTest as `sanitized_unit_tests` (label
# `sanitize`); prints "SKIPPED: ..." and exits 0 when the toolchain cannot
# link the sanitizer runtimes, which CTest maps to a skip, not a failure.
set -eu

cd "$(dirname "$0")/.."
CXX_BIN="${CXX:-c++}"

# Compile-probe: some containers ship a compiler that accepts -fsanitize
# but lack libasan/libubsan at link time.
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
printf 'int main() { return 0; }\n' > "$probe_dir/probe.cpp"
if ! "$CXX_BIN" -fsanitize=address,undefined "$probe_dir/probe.cpp" \
    -o "$probe_dir/probe" >/dev/null 2>&1; then
  echo "SKIPPED: $CXX_BIN cannot link ASan/UBSan runtimes"
  exit 0
fi

cmake --preset asan-ubsan
cmake --build build-sanitize --target prebake_tests -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error keeps UBSan findings fatal so CTest sees a non-zero exit.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests

# Second pass over the fault-injection suites alone: the chaos paths throw
# and unwind through the restore pipeline far more than the happy path, so
# give the sanitizers a dedicated look at them.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests --gtest_filter='Chaos*'

# Third pass over the tracing suites: the Span/Tracer lifetime rules
# (handles outliving take_records, the replaced-operator-new allocation
# counter) are exactly the kind of thing ASan is for.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests --gtest_filter='Trace*'

# Fourth pass over the page-store and zero-copy image suites: COW sharing
# tracks refcounts across process teardown and template drops, and the
# borrowed PagesView spans (StoreView*) plus the batched replay paths
# (RestoreBatch*) hand out pointers into ImageDir-owned buffers — the
# classic use-after-free shapes ASan exists to catch.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests \
  --gtest_filter='Store*:Template*:StoreView*:RestoreBatch*'

# Fifth pass over the scale/streaming suites: the calendar queue's bucket
# recycling, the self-referential streaming-replay closure, and the scale
# scenario's aggregate bookkeeping all juggle lifetimes that deserve a
# sanitized run of their own.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests \
  --gtest_filter='Scale*:TraceStream*'

# Sixth pass over the live-migration suites: the pre-dump chain's
# unique_ptr-held links, the staged standby process, and the abort-to-local
# paths move ownership across rewound timelines — exactly the lifetime churn
# sanitizers exist to catch.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests --gtest_filter='Migrat*'

# Seventh pass over the working-set restore suites: the shared WsRecorder
# outlives the Restorer, the kernel's fault-capture bitmaps are erased on
# reap, and the prefetch path borrows digest spans out of the decode cache —
# all lifetime seams introduced by the record-and-prefetch restore.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ./build-sanitize/tests/prebake_tests --gtest_filter='WsRestore*'
