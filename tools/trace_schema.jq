# Schema check for the Chrome trace_event JSON emitted by obs::to_chrome_json
# (prebakectl trace / bench_harness --trace). Runs under the stock jq 1.6 —
# no extra dependencies.
#
#   jq -r -f tools/trace_schema.jq BENCH_trace.json
#
# Prints "trace schema: OK (...)" and exits 0 when the file is well-formed;
# prints every violation to stderr and exits 1 otherwise (run_benches.sh
# --trace treats that as a smoke-test failure).

. as $root
| ($root.traceEvents // []) as $ev
| ($ev | map(select(type == "object" and .ph == "X"))) as $spans
| ($ev | map(select(type == "object" and .ph == "C"))) as $counters
| ($spans | map(.args.id)) as $ids
| [
    (select(($root | type) != "object") | "top level is not an object"),
    (select($root.displayTimeUnit != "ms") | "displayTimeUnit is not \"ms\""),
    (select(($root.traceEvents | type) != "array")
     | "traceEvents missing or not an array"),
    (select(($spans | length) == 0) | "no X (complete-span) events"),
    ($ev[] | select(type != "object") | "event is not an object"),
    ($ev[] | select(type == "object" and ((.name | type) != "string"))
     | "event missing string name"),
    ($ev[] | select(type == "object" and (((.ph // "") | IN("X", "M", "C")) | not))
     | "event ph not one of X/M/C: \(.ph)"),
    ($spans[] | select((.cat | type) != "string")
     | "span \(.name): missing cat"),
    ($spans[] | select((.ts | type) != "number" or .ts < 0)
     | "span \(.name): bad ts"),
    ($spans[] | select((.dur | type) != "number" or .dur < 0)
     | "span \(.name): bad dur"),
    ($spans[] | select(.pid != 1) | "span \(.name): pid is not 1"),
    ($spans[] | select((.tid | type) != "number") | "span \(.name): bad tid"),
    ($spans[] | select((.args | type) != "object")
     | "span \(.name): missing args"),
    # Span ids are 64-bit; the exporter writes them as decimal strings so
    # they survive double-precision JSON numbers.
    ($spans[] | select((.args.id | type) != "string"
                       or ((.args.id | test("^[0-9]+$")) | not))
     | "span \(.name): args.id is not a decimal string"),
    ($spans[] | select((.args.parent | type) != "string"
                       or ((.args.parent | test("^[0-9]+$")) | not))
     | "span \(.name): args.parent is not a decimal string"),
    ($spans[] | select((.args.seq | type) != "number" or .args.seq < 1)
     | "span \(.name): bad args.seq"),
    (select(($ids | unique | length) != ($spans | length))
     | "duplicate span ids"),
    ($spans[] | select(.args.parent != "0" and ((.args.parent | IN($ids[])) | not))
     | "span \(.name): parent \(.args.parent) not present in trace"),
    ($counters[] | select((.args.value | type) != "number" or .args.value < 0)
     | "counter \(.name): bad args.value"),
    (select(($root.otherData.spans // -1) != ($spans | length))
     | "otherData.spans (\($root.otherData.spans)) != X-event count (\($spans | length))")
  ] as $errors
| if ($errors | length) == 0
  then "trace schema: OK (\($spans | length) spans, \($counters | length) counters)"
  else (($errors | unique | join("\n")) + "\ntrace schema: FAIL") | halt_error(1)
  end
