// prebakectl — command-line front end for the experiment harness.
//
//   prebakectl list
//   prebakectl startup --function markdown --technique pb-warmup
//               [--reps N] [--seed S] [--first-response] [--csv FILE]
//   prebakectl service --function image-resizer --technique vanilla --requests 100
//   prebakectl bake-info --function noop [--warmup 1]
//   prebakectl nodes [--nodes N] [--cpus N] [--policy worst-fit|round-robin|
//               locality] [--rate HZ] [--duration-s S] [--cache-mib M]
//   prebakectl migrate FUNCTION [--from N] [--to N] [--nodes N] [--rounds N]
//   prebakectl faults [--rate R] [--crash-rate R] [--seed S] [--attempts N]
//               [--quarantine N] [--duration-s S]
//   prebakectl workload generate --out FILE [--functions N] [--zipf-s S]
//               [--rate HZ] [--requests N] [--seed S]
//   prebakectl workload stats --in FILE
//   prebakectl bench throughput [--reps N]
//
// Functions: noop | markdown | image-resizer | synthetic-{small,medium,big}
// Techniques: vanilla | pb-nowarmup | pb-warmup
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/prebaker.hpp"
#include "criu/dump.hpp"
#include "criu/page_store.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/chaos.hpp"
#include "exp/cli.hpp"
#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "faas/builder.hpp"
#include "faas/trace.hpp"
#include "faas/trace_source.hpp"
#include "obs/export.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: prebakectl "
               "<list|startup|service|bake-info|trace|nodes|migrate|store"
               "|faults|workload|bench|ws> [flags]\n"
               "  startup   --function F --technique T [--reps N] [--seed S]"
               " [--first-response]\n"
               "  service   --function F --technique T [--requests N]\n"
               "  bake-info --function F [--warmup N]\n"
               "  trace generate --out FILE [--function F] [--rate HZ]"
               " [--duration-s S] [--diurnal] [--peak HZ] [--period-s S]\n"
               "  trace replay --in FILE [--mode vanilla|prebaked]\n"
               "  trace startup|cluster|chaos [scenario flags] [--out FILE]\n"
               "            (span tree to stdout; --out writes Chrome"
               " trace_event JSON)\n"
               "  nodes     [--nodes N] [--cpus N] [--policy P] [--rate HZ]"
               " [--duration-s S]\n"
               "            [--cache-mib M] [--mode vanilla|prebaked]"
               " [--seed S]\n"
               "  migrate   FUNCTION [--from N] [--to N] [--nodes N]"
               " [--rounds N] [--seed S]\n"
               "            (live-migrate a warm replica via a pre-dump"
               " chain, DESIGN.md 6i)\n"
               "  store stats [--nodes N] [--cpus N] [--policy P]"
               " [--rate HZ]\n"
               "            [--duration-s S] [--store-mib M] [--seed S]\n"
               "            (cluster run with the content-addressed page"
               " store on)\n"
               "  faults    [--rate R] [--crash-rate R] [--seed S]"
               " [--attempts N]\n"
               "            [--quarantine N] [--duration-s S]\n"
               "  workload generate --out FILE [--functions N] [--zipf-s S]"
               " [--rate HZ]\n"
               "            [--requests N] [--duration-s S] [--seed S]"
               " [--peak HZ] [--period-s S]\n"
               "            (stream a multi-function Zipf trace to CSV)\n"
               "  workload stats --in FILE [--top N]\n"
               "            (events, span, arrival rate, hottest functions"
               " of a trace)\n"
               "  bench throughput [--reps N]\n"
               "            (host restores/sec of the zero-copy restore"
               " hot path, DESIGN.md 6g)\n"
               "  ws stats FUNCTION [--requests N] [--seed S]\n"
               "            (record-and-prefetch working-set size and"
               " coverage, DESIGN.md 6j)\n"
               "functions:  noop markdown image-resizer synthetic-small"
               " synthetic-medium synthetic-big\n"
               "techniques: vanilla pb-nowarmup pb-warmup zygote\n");
  return 2;
}

rt::FunctionSpec resolve_function(const std::string& name) {
  if (name == "noop") return exp::noop_spec();
  if (name == "markdown") return exp::markdown_spec();
  if (name == "image-resizer") return exp::image_resizer_spec();
  if (name == "synthetic-small") return exp::synthetic_spec(exp::SynthSize::kSmall);
  if (name == "synthetic-medium") return exp::synthetic_spec(exp::SynthSize::kMedium);
  if (name == "synthetic-big") return exp::synthetic_spec(exp::SynthSize::kBig);
  throw std::invalid_argument{"unknown function: " + name};
}

exp::Technique resolve_technique(const std::string& name) {
  if (name == "vanilla") return exp::Technique::kVanilla;
  if (name == "pb-nowarmup") return exp::Technique::kPrebakeNoWarmup;
  if (name == "pb-warmup") return exp::Technique::kPrebakeWarmup;
  if (name == "zygote") return exp::Technique::kZygoteFork;
  throw std::invalid_argument{"unknown technique: " + name};
}

faas::PlacementPolicy resolve_policy(const std::string& name);

// `prebakectl trace startup|cluster|chaos`: run one scenario with the
// structured tracer on and print the span tree (or export Chrome
// trace_event JSON for about:tracing / Perfetto with --out).
int cmd_trace_scenario(const std::string& kind, const exp::CliArgs& args) {
  exp::ScenarioSpec spec;
  spec.trace = true;
  spec.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  if (kind == "startup") {
    spec.kind = exp::ScenarioKind::kStartup;
    spec.startup.spec = resolve_function(args.get_or("function", "noop"));
    spec.startup.technique =
        resolve_technique(args.get_or("technique", "pb-nowarmup"));
    spec.repetitions = static_cast<int>(args.get_int_or("reps", 25));
    spec.threads = static_cast<int>(args.get_int_or("threads", 0));
  } else if (kind == "cluster") {
    spec.kind = exp::ScenarioKind::kCluster;
    spec.cluster.policy = resolve_policy(args.get_or("policy", "locality"));
    spec.cluster.rate_hz = args.get_double_or("rate", 0.5);
    spec.cluster.duration =
        sim::Duration::seconds_f(args.get_double_or("duration-s", 60.0));
  } else {
    spec.kind = exp::ScenarioKind::kChaos;
    const double rate = args.get_double_or("rate", 0.05);
    spec.chaos.duration =
        sim::Duration::seconds_f(args.get_double_or("duration-s", 60.0));
    spec.chaos.faults.seed = spec.seed;
    spec.chaos.faults.image_corruption_rate = rate;
    spec.chaos.faults.image_read_error_rate = rate / 2;
    spec.chaos.faults.registry_stall_rate = rate;
  }

  const exp::ScenarioRun run = exp::run(spec);
  if (const auto out = args.get("out"); out.has_value() && !out->empty()) {
    std::ofstream file{*out};
    if (!file) throw std::runtime_error{"cannot write " + *out};
    file << obs::to_chrome_json(run.trace);
    std::printf("wrote %zu spans to %s (load in about:tracing / Perfetto)\n",
                run.trace.spans.size(), out->c_str());
  } else {
    std::printf("%s", obs::to_text_tree(run.trace).c_str());
  }
  return 0;
}

int cmd_trace(const exp::CliArgs& args) {
  if (args.positional().size() < 2)
    throw std::invalid_argument{
        "trace: expected 'generate', 'replay', 'startup', 'cluster' or "
        "'chaos'"};
  const std::string& sub = args.positional()[1];
  if (sub == "startup" || sub == "cluster" || sub == "chaos")
    return cmd_trace_scenario(sub, args);

  if (sub == "generate") {
    const std::string out = args.get_or("out", "trace.csv");
    const std::string function = args.get_or("function", "markdown-render");
    const double rate = args.get_double_or("rate", 2.0);
    const auto duration =
        sim::Duration::seconds_f(args.get_double_or("duration-s", 300.0));
    const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
    std::vector<faas::TraceEvent> events;
    if (args.has("diurnal")) {
      events = faas::generate_diurnal_trace(
          function, rate, args.get_double_or("peak", rate * 8),
          sim::Duration::seconds_f(args.get_double_or("period-s", 120.0)),
          duration, seed);
    } else {
      events = faas::generate_poisson_trace(function, rate, duration, seed);
    }
    std::ofstream file{out};
    if (!file) throw std::runtime_error{"cannot write " + out};
    file << faas::format_trace_csv(events);
    std::printf("wrote %zu events to %s\n", events.size(), out.c_str());
    return 0;
  }

  if (sub == "replay") {
    const std::string in = args.get_or("in", "trace.csv");
    std::ifstream file{in};
    if (!file) throw std::runtime_error{"cannot read " + in};
    const std::string text{std::istreambuf_iterator<char>{file}, {}};
    const auto events = faas::parse_trace_csv(text);
    if (events.empty()) throw std::runtime_error{"empty trace"};

    sim::Simulation sim;
    os::Kernel kernel{sim, exp::testbed_costs()};
    faas::Platform platform{kernel, exp::testbed_runtime(),
                            faas::PlatformConfig{}, 99};
    platform.resources().add_node("n", 32ull << 30);
    const bool prebaked = args.get_or("mode", "prebaked") == "prebaked";
    // Deploy every function the trace references.
    std::set<std::string> deployed;
    for (const auto& e : events) {
      if (!deployed.insert(e.function).second) continue;
      rt::FunctionSpec spec = resolve_function(
          e.function == "markdown-render" ? "markdown" : e.function);
      spec.name = e.function;
      platform.deploy(std::move(spec),
                      prebaked ? faas::StartMode::kPrebaked
                               : faas::StartMode::kVanilla,
                      core::SnapshotPolicy::warmup(1));
    }
    const auto result = faas::replay_trace(platform, events);
    std::vector<double> totals;
    for (const auto& m : result.metrics) totals.push_back(m.total.to_millis());
    std::printf("%s: %llu ok, %llu rejected, %llu cold starts\n",
                prebaked ? "prebaked" : "vanilla",
                static_cast<unsigned long long>(result.responses_ok),
                static_cast<unsigned long long>(result.responses_rejected),
                static_cast<unsigned long long>(platform.stats().cold_starts));
    std::printf("latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms\n",
                stats::percentile(totals, 0.5), stats::percentile(totals, 0.95),
                stats::percentile(totals, 0.99), stats::max(totals));
    return 0;
  }
  throw std::invalid_argument{"trace: unknown subcommand " + sub};
}

int cmd_list() {
  std::printf("functions:\n");
  for (const char* f : {"noop", "markdown", "image-resizer", "synthetic-small",
                        "synthetic-medium", "synthetic-big"}) {
    const rt::FunctionSpec spec = resolve_function(f);
    std::printf("  %-18s handler=%-15s init=%zu cls / req=%zu cls (%.1f MB)\n",
                f, spec.handler_id.c_str(), spec.init_classes.size(),
                spec.request_classes.size(),
                static_cast<double>(spec.request_class_bytes()) / 1e6);
  }
  std::printf("techniques: vanilla pb-nowarmup pb-warmup zygote\n");
  return 0;
}

int cmd_startup(const exp::CliArgs& args) {
  exp::ScenarioConfig cfg;
  cfg.spec = resolve_function(args.get_or("function", "noop"));
  cfg.technique = resolve_technique(args.get_or("technique", "vanilla"));
  cfg.repetitions = static_cast<int>(args.get_int_or("reps", 200));
  cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  cfg.measure_first_response =
      args.has("first-response") || cfg.spec.name.rfind("synthetic", 0) == 0;

  const exp::ScenarioResult result = exp::run_startup_scenario(cfg);
  const auto ci = stats::bootstrap_median_ci(result.startup_ms);
  const auto summary = stats::summarize(result.startup_ms);

  std::printf("%s / %s, %d repetitions (seed %llu)\n", cfg.spec.name.c_str(),
              exp::technique_name(cfg.technique), cfg.repetitions,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  median  %s  95%% CI %s\n", exp::fmt_ms(ci.point).c_str(),
              exp::fmt_interval(ci).c_str());
  std::printf("  mean %.2f ms  sd %.2f  min %.2f  p95 %.2f  max %.2f\n",
              summary.mean, summary.stddev, summary.min, summary.p95,
              summary.max);
  if (result.snapshot_nominal_bytes > 0)
    std::printf("  snapshot %s, baked in %.1f ms\n",
                exp::fmt_mib(result.snapshot_nominal_bytes).c_str(),
                result.bake_time_ms);
  const auto& b = result.breakdowns.front();
  std::printf("  phases: clone %.2f | exec %.2f | rts %.2f | appinit %.2f | "
              "restore %.2f (ms)\n",
              b.clone_time.to_millis(), b.exec_time.to_millis(),
              b.rts_time.to_millis(), b.appinit_time.to_millis(),
              b.restore_time.to_millis());

  // Raw per-repetition samples for external plotting.
  if (const auto csv = args.get("csv"); csv.has_value() && !csv->empty()) {
    std::ofstream file{*csv};
    if (!file) throw std::runtime_error{"cannot write " + *csv};
    file << "rep,startup_ms,clone_ms,exec_ms,rts_ms,appinit_ms,restore_ms\n";
    for (std::size_t i = 0; i < result.breakdowns.size(); ++i) {
      const auto& bd = result.breakdowns[i];
      char line[256];
      std::snprintf(line, sizeof line, "%zu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                    i, result.startup_ms[i], bd.clone_time.to_millis(),
                    bd.exec_time.to_millis(), bd.rts_time.to_millis(),
                    bd.appinit_time.to_millis(), bd.restore_time.to_millis());
      file << line;
    }
    std::printf("  wrote %zu samples to %s\n", result.startup_ms.size(),
                csv->c_str());
  }
  return 0;
}

int cmd_service(const exp::CliArgs& args) {
  const rt::FunctionSpec spec = resolve_function(args.get_or("function", "noop"));
  const exp::Technique tech =
      resolve_technique(args.get_or("technique", "vanilla"));
  const int requests = static_cast<int>(args.get_int_or("requests", 200));
  const auto result = exp::run_service_scenario(
      spec, tech, requests, static_cast<std::uint64_t>(args.get_int_or("seed", 42)));

  std::printf("%s / %s: startup %.2f ms, %d requests\n", spec.name.c_str(),
              exp::technique_name(tech), result.startup_ms, requests);
  const double quantiles[] = {0.05, 0.25, 0.5, 0.75, 0.95, 0.99};
  std::printf("%s", exp::render_ecdf(result.service_ms, quantiles).c_str());
  return 0;
}

int cmd_bake_info(const exp::CliArgs& args) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  funcs::SharedAssets assets;
  core::StartupService startup{kernel, exp::testbed_runtime(), assets};
  faas::FunctionBuilder builder{kernel, startup};

  const rt::FunctionSpec spec = resolve_function(args.get_or("function", "noop"));
  core::PrebakeConfig cfg;
  const auto warmup = args.get_int_or("warmup", 0);
  cfg.policy = warmup > 0
                   ? core::SnapshotPolicy::warmup(static_cast<std::uint32_t>(warmup))
                   : core::SnapshotPolicy::no_warmup();
  faas::BuildResult built = builder.build(spec, cfg, sim::Rng{1});
  const core::BakedSnapshot& snap = *built.snapshot;

  std::printf("snapshot %s [%s]\n", snap.function_name.c_str(),
              snap.policy.tag().c_str());
  std::printf("  baked in %.2f ms; %llu pages (%s payload)\n",
              snap.build_time.to_millis(),
              static_cast<unsigned long long>(snap.stats.pages_dumped),
              exp::fmt_mib(snap.stats.payload_bytes).c_str());
  exp::TextTable table{{"image file", "bytes on disk", "real bytes held"}};
  for (const auto& name : snap.images.names()) {
    const auto& f = snap.images.get(name);
    table.add_row({name, std::to_string(f.nominal_size),
                   std::to_string(f.bytes.size())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total: %s (dedupable pages indexable via criu::DedupIndex)\n",
              exp::fmt_mib(snap.images.nominal_total()).c_str());
  return 0;
}

faas::PlacementPolicy resolve_policy(const std::string& name) {
  if (name == "worst-fit") return faas::PlacementPolicy::kWorstFit;
  if (name == "round-robin") return faas::PlacementPolicy::kRoundRobin;
  if (name == "locality") return faas::PlacementPolicy::kSnapshotLocality;
  throw std::invalid_argument{"unknown policy: " + name};
}

// Run the mixed-traffic cluster scenario and print the per-node view:
// where replicas landed, memory in use, and how the node-local snapshot
// cache behaved (hits avoid the registry transfer entirely).
int cmd_nodes(const exp::CliArgs& args) {
  exp::ClusterScenarioConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(args.get_int_or("nodes", 4));
  cfg.cpus_per_node = static_cast<std::uint32_t>(args.get_int_or("cpus", 2));
  cfg.policy = resolve_policy(args.get_or("policy", "locality"));
  cfg.rate_hz = args.get_double_or("rate", 0.5);
  cfg.duration = sim::Duration::seconds_f(args.get_double_or("duration-s", 600.0));
  cfg.node_snapshot_cache_bytes =
      static_cast<std::uint64_t>(args.get_int_or("cache-mib", 120)) << 20;
  cfg.mode = args.get_or("mode", "prebaked") == "vanilla"
                 ? faas::StartMode::kVanilla
                 : faas::StartMode::kPrebaked;
  cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const exp::ClusterScenarioResult r = exp::run_cluster_scenario(cfg);

  std::printf("%u nodes x %u cpus, %s placement, %.2f Hz/function for %.0f s "
              "(seed %llu)\n",
              cfg.nodes, cfg.cpus_per_node,
              faas::placement_policy_name(cfg.policy), cfg.rate_hz,
              cfg.duration.to_seconds(),
              static_cast<unsigned long long>(cfg.seed));
  std::printf("requests %llu (%llu ok, %llu rejected), %llu cold starts, "
              "%llu replicas started\n",
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.responses_ok),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.cold_starts),
              static_cast<unsigned long long>(r.replicas_started));
  std::printf("total p50/p95/p99 %s / %s / %s; cold startup p50/p95 %s / %s\n",
              exp::fmt_ms(r.total_p50_ms).c_str(),
              exp::fmt_ms(r.total_p95_ms).c_str(),
              exp::fmt_ms(r.total_p99_ms).c_str(),
              exp::fmt_ms(r.cold_startup_p50_ms).c_str(),
              exp::fmt_ms(r.cold_startup_p95_ms).c_str());
  const std::uint64_t lookups = r.snapshot_hits + r.snapshot_misses;
  std::printf("snapshot cache: %llu hits / %llu misses (%s), registry %s\n\n",
              static_cast<unsigned long long>(r.snapshot_hits),
              static_cast<unsigned long long>(r.snapshot_misses),
              exp::fmt_percent(lookups == 0 ? 0.0
                                            : static_cast<double>(r.snapshot_hits) /
                                                  static_cast<double>(lookups))
                  .c_str(),
              exp::fmt_mib(r.remote_bytes_fetched).c_str());

  exp::TextTable table{{"Node", "State", "Replicas", "Mem used", "Placed",
                        "Hits", "Misses", "Evict", "Cache", "Registry MiB",
                        "Migr out/in", "Warmth mig/lost", "Busy"}};
  for (const exp::ClusterNodeReport& n : r.nodes)
    table.add_row({n.name, n.state, std::to_string(n.replicas),
                   exp::fmt_mib(n.mem_used), std::to_string(n.replicas_placed),
                   std::to_string(n.snapshot_hits),
                   std::to_string(n.snapshot_misses),
                   std::to_string(n.snapshot_evictions),
                   std::to_string(n.cache_entries) + " (" +
                       exp::fmt_mib(n.cache_bytes) + ")",
                   exp::fmt_mib(n.remote_bytes_fetched),
                   std::to_string(n.migrations_out) + "/" +
                       std::to_string(n.migrations_in),
                   std::to_string(n.warmth_replicas_migrated) + "/" +
                       std::to_string(n.warmth_replicas_destroyed),
                   exp::fmt_ms(n.busy_ms, 1)});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// Run the cluster scenario with the content-addressed page store enabled
// (DESIGN.md §6f) and print per-node store statistics: delta-transfer
// savings, template clones, resident store footprint.
int cmd_store(const exp::CliArgs& args) {
  const std::string sub =
      args.positional().size() > 1 ? args.positional()[1] : "stats";
  if (sub != "stats") {
    std::fprintf(stderr, "prebakectl store: unknown subcommand '%s'\n",
                 sub.c_str());
    return usage();
  }
  exp::ClusterScenarioConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(args.get_int_or("nodes", 4));
  cfg.cpus_per_node = static_cast<std::uint32_t>(args.get_int_or("cpus", 2));
  cfg.policy = resolve_policy(args.get_or("policy", "locality"));
  cfg.rate_hz = args.get_double_or("rate", 0.5);
  cfg.duration = sim::Duration::seconds_f(args.get_double_or("duration-s", 600.0));
  cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  cfg.page_store = true;
  cfg.node_page_store_bytes =
      static_cast<std::uint64_t>(args.get_int_or("store-mib", 0)) << 20;

  const exp::ClusterScenarioResult r = exp::run_cluster_scenario(cfg);

  std::printf("%u nodes x %u cpus, %s placement, page store %s (seed %llu)\n",
              cfg.nodes, cfg.cpus_per_node,
              faas::placement_policy_name(cfg.policy),
              cfg.node_page_store_bytes == 0
                  ? "unbounded"
                  : (exp::fmt_mib(cfg.node_page_store_bytes) + "/node").c_str(),
              static_cast<unsigned long long>(cfg.seed));
  std::printf("requests %llu (%llu ok), %llu cold starts, cold p50/p95 "
              "%s / %s\n",
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.responses_ok),
              static_cast<unsigned long long>(r.cold_starts),
              exp::fmt_ms(r.cold_startup_p50_ms).c_str(),
              exp::fmt_ms(r.cold_startup_p95_ms).c_str());
  std::printf("store: %llu page hits (%s not refetched), delta traffic %s, "
              "%llu template clones\n\n",
              static_cast<unsigned long long>(r.store_hit_pages),
              exp::fmt_mib(r.store_hit_pages * 4096).c_str(),
              exp::fmt_mib(r.store_delta_bytes).c_str(),
              static_cast<unsigned long long>(r.template_clones));

  exp::TextTable table{{"Node", "State", "Hit pages", "Delta MiB", "Clones",
                        "Stored", "Templates", "Registry MiB"}};
  for (const exp::ClusterNodeReport& n : r.nodes)
    table.add_row({n.name, n.state, std::to_string(n.store_hit_pages),
                   exp::fmt_mib(n.store_delta_bytes),
                   std::to_string(n.template_clones),
                   std::to_string(n.store_pages) + " (" +
                       exp::fmt_mib(n.store_pages * 4096) + ")",
                   std::to_string(n.store_templates),
                   exp::fmt_mib(n.remote_bytes_fetched)});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// `prebakectl workload generate|stats`: the multi-function Zipf workload in
// CLI form. generate streams a ZipfTraceSource straight to CSV — one line
// per arrival, never materialized — so a 10^7-event trace costs constant
// memory; stats reads a trace back and prints its shape (span, aggregate
// rate, hottest functions).
int cmd_workload(const exp::CliArgs& args) {
  if (args.positional().size() < 2)
    throw std::invalid_argument{"workload: expected 'generate' or 'stats'"};
  const std::string& sub = args.positional()[1];

  if (sub == "generate") {
    const std::string out = args.get_or("out", "workload.csv");
    faas::ZipfTraceConfig cfg;
    cfg.functions =
        static_cast<std::uint32_t>(args.get_int_or("functions", 100));
    cfg.zipf_s = args.get_double_or("zipf-s", 1.0);
    cfg.rate_hz = args.get_double_or("rate", 100.0);
    cfg.duration =
        sim::Duration::seconds_f(args.get_double_or("duration-s", 600.0));
    cfg.max_events =
        static_cast<std::uint64_t>(args.get_int_or("requests", 0));
    cfg.peak_rate_hz = args.get_double_or("peak", 0.0);
    cfg.period =
        sim::Duration::seconds_f(args.get_double_or("period-s", 3600.0));
    cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));

    faas::ZipfTraceSource source{cfg};
    std::ofstream file{out};
    if (!file) throw std::runtime_error{"cannot write " + out};
    file << "# offset_ms,function\n";
    std::uint64_t events = 0;
    sim::Duration last{};
    while (std::optional<faas::TraceEvent> e = source.next()) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", e->at.to_millis());
      file << buf << ',' << e->function << '\n';
      ++events;
      last = e->at;
    }
    std::printf("wrote %llu events / %u functions (zipf s=%.2f, %.1f Hz, "
                "span %.1f s) to %s\n",
                static_cast<unsigned long long>(events), cfg.functions,
                cfg.zipf_s, cfg.rate_hz, last.to_seconds(), out.c_str());
    return 0;
  }

  if (sub == "stats") {
    const std::string in = args.get_or("in", "workload.csv");
    std::ifstream file{in};
    if (!file) throw std::runtime_error{"cannot read " + in};
    const std::string text{std::istreambuf_iterator<char>{file}, {}};
    const auto events = faas::parse_trace_csv(text);
    if (events.empty()) throw std::runtime_error{"empty trace"};

    std::map<std::string, std::uint64_t> counts;
    for (const auto& e : events) ++counts[e.function];
    const double span_s = events.back().at.to_seconds();
    std::printf("%zu events, %zu functions, span %.1f s, aggregate rate "
                "%.2f Hz\n",
                events.size(), counts.size(), span_s,
                span_s > 0.0 ? static_cast<double>(events.size()) / span_s
                             : 0.0);

    std::vector<std::pair<std::string, std::uint64_t>> ranked{counts.begin(),
                                                              counts.end()};
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    const std::size_t top = std::min<std::size_t>(
        ranked.size(),
        static_cast<std::size_t>(args.get_int_or("top", 10)));
    exp::TextTable table{{"Function", "Requests", "Share"}};
    for (std::size_t i = 0; i < top; ++i)
      table.add_row({ranked[i].first, std::to_string(ranked[i].second),
                     exp::fmt_percent(static_cast<double>(ranked[i].second) /
                                      static_cast<double>(events.size()))});
    std::printf("%s", table.to_string().c_str());
    return 0;
  }
  throw std::invalid_argument{"workload: unknown subcommand " + sub};
}

// `prebakectl bench throughput`: the restore-throughput hot-path sweep of
// bench/restore_throughput in CLI form — how many restores per second the
// host executes (the harness engine's own speed, not simulated latency)
// across the three restore modes. The CTest gate lives in the bench; this
// is the quick interactive view.
int cmd_bench(const exp::CliArgs& args) {
  const std::string sub =
      args.positional().size() > 1 ? args.positional()[1] : "throughput";
  if (sub != "throughput") {
    std::fprintf(stderr, "prebakectl bench: unknown subcommand '%s'\n",
                 sub.c_str());
    return usage();
  }
  const int reps = static_cast<int>(args.get_int_or("reps", 200));

  struct Cell {
    const char* mode;
    int heap_mib;
  };
  constexpr Cell kCells[] = {
      {"full-eager", 16}, {"full-eager", 64}, {"lazy", 16},
      {"lazy", 64},       {"cow-clone", 16},  {"cow-clone", 64},
  };
  exp::TextTable table{{"Mode", "Heap", "Restores/s", "Sim per restore",
                        "Pages"}};
  for (const Cell& cell : kCells) {
    sim::Simulation sim;
    os::Kernel kernel{sim, exp::testbed_costs()};
    kernel.fs().create("/bin/app", 1024 * 1024);
    const os::Pid pid = kernel.clone_process(os::kNoPid);
    kernel.exec(pid, "/bin/app", {"/bin/app"});
    const os::VmaId heap = kernel.mmap(
        pid, static_cast<std::uint64_t>(cell.heap_mib) * 1024 * 1024,
        os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
        std::make_shared<os::PatternSource>(0x9e11 + cell.heap_mib), false);
    kernel.fault_in_all(pid, heap, /*write=*/true);
    criu::DumpOptions dopts;
    dopts.fs_prefix = "/img/";
    const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

    criu::RestoreOptions opts;
    opts.fs_prefix = "/img/";
    if (std::string{cell.mode} == "lazy")
      opts.paging = criu::PagingPolicy::lazy();
    criu::PageStore store;
    criu::Restorer restorer{kernel};
    if (std::string{cell.mode} == "cow-clone") {
      opts.page_store = &store;
      opts.store_key = "/img/";
    }
    {  // untimed warm-up (cold image reads, template materialization)
      const criu::RestoreResult r = restorer.restore(dump.images, opts);
      kernel.kill_process(r.pid);
      kernel.reap(r.pid);
    }
    double sim_ms = 0.0;
    std::uint64_t pages = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      const sim::TimePoint s0 = sim.now();
      const criu::RestoreResult r = restorer.restore(dump.images, opts);
      sim_ms = (sim.now() - s0).to_millis();
      pages = r.pages_restored;
      kernel.kill_process(r.pid);
      kernel.reap(r.pid);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    char rps[64];
    std::snprintf(rps, sizeof rps, "%.0f", static_cast<double>(reps) / secs);
    table.add_row({cell.mode, std::to_string(cell.heap_mib) + " MiB", rps,
                   exp::fmt_ms(sim_ms), std::to_string(pages)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// Run the chaos scenario and print the fault-injector state (plan, draw
// and firing counts per site) plus the snapshot circuit-breaker table.
int cmd_faults(const exp::CliArgs& args) {
  const double rate = args.get_double_or("rate", 0.05);
  exp::ChaosScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  cfg.duration = sim::Duration::seconds_f(args.get_double_or("duration-s", 600.0));
  cfg.restore_max_attempts = static_cast<int>(args.get_int_or("attempts", 3));
  cfg.quarantine_threshold =
      static_cast<std::uint32_t>(args.get_int_or("quarantine", 3));
  cfg.faults.seed = cfg.seed;
  cfg.faults.image_corruption_rate = rate;
  cfg.faults.image_read_error_rate = rate / 2;
  cfg.faults.truncated_write_rate = rate / 2;
  cfg.faults.registry_stall_rate = rate;
  cfg.faults.registry_disconnect_rate = rate / 2;
  cfg.faults.node_crash_rate = args.get_double_or("crash-rate", rate / 10);

  const exp::ChaosScenarioResult r = exp::run_chaos_scenario(cfg);

  std::printf("fault plan (seed %llu): corruption %s, read-error %s, "
              "truncated-write %s,\n  registry stall %s / disconnect %s, "
              "node crash %s\n",
              static_cast<unsigned long long>(cfg.faults.seed),
              exp::fmt_percent(cfg.faults.image_corruption_rate).c_str(),
              exp::fmt_percent(cfg.faults.image_read_error_rate).c_str(),
              exp::fmt_percent(cfg.faults.truncated_write_rate).c_str(),
              exp::fmt_percent(cfg.faults.registry_stall_rate).c_str(),
              exp::fmt_percent(cfg.faults.registry_disconnect_rate).c_str(),
              exp::fmt_percent(cfg.faults.node_crash_rate).c_str());
  std::printf("policy: %d restore attempts, quarantine after %u consecutive "
              "failures\n\n",
              cfg.restore_max_attempts, cfg.quarantine_threshold);

  std::printf("requests %llu, answered %llu, availability %s, fallback rate "
              "%s\n",
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.answered),
              exp::fmt_percent(r.availability).c_str(),
              exp::fmt_percent(r.fallback_rate).c_str());
  std::printf("retries %llu, quarantines %llu, rebakes %llu, node crashes "
              "%llu (recovered %llu)\n\n",
              static_cast<unsigned long long>(r.restore_retries),
              static_cast<unsigned long long>(r.snapshot_quarantines),
              static_cast<unsigned long long>(r.snapshot_rebakes),
              static_cast<unsigned long long>(r.node_crashes),
              static_cast<unsigned long long>(r.node_recoveries));

  exp::TextTable sites{{"Fault site", "Fired"}};
  for (const auto& [site, fired] : r.fired_by_site)
    sites.add_row({site, std::to_string(fired)});
  std::printf("%s (%llu total)\n\n", sites.to_string().c_str(),
              static_cast<unsigned long long>(r.faults_injected));

  exp::TextTable health{{"Function", "Consecutive failures", "Quarantined",
                         "Rebakes"}};
  for (const auto& row : r.snapshot_health)
    health.add_row({row.function, std::to_string(row.consecutive_failures),
                    row.quarantined ? "yes" : "no",
                    std::to_string(row.rebakes)});
  if (r.snapshot_health.empty()) {
    std::printf("quarantine table: empty (no snapshot ever failed a restore)\n");
  } else {
    std::printf("%s", health.to_string().c_str());
  }
  return 0;
}

// Live-migrate one warm replica of a function between worker nodes
// (DESIGN.md §6i) and report the pre-dump chain shape and cutover blackout.
// `--from`/`--to` are node ids (-1 = any / scheduler's pick).
int cmd_migrate(const exp::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "prebakectl migrate: missing function name\n");
    return usage();
  }
  const rt::FunctionSpec spec = resolve_function(args.positional()[1]);
  const std::uint32_t nodes =
      static_cast<std::uint32_t>(args.get_int_or("nodes", 3));

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.remote_registry = true;
  cfg.page_store = true;
  cfg.migration.max_rounds = static_cast<int>(args.get_int_or("rounds", 3));
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg,
                          static_cast<std::uint64_t>(args.get_int_or("seed", 42))};
  std::vector<faas::NodeId> ids;
  for (std::uint32_t i = 0; i < nodes; ++i)
    ids.push_back(
        platform.resources().add_node("w" + std::to_string(i), 8ull << 30, 2));
  // --from / --to name nodes by index (w0..wN-1), -1 = any.
  const auto node_arg = [&args, &ids](const char* name) -> faas::NodeId {
    const int v = static_cast<int>(args.get_int_or(name, -1));
    if (v < 0) return faas::kNoNode;
    if (static_cast<std::size_t>(v) >= ids.size())
      throw std::invalid_argument{std::string{"--"} + name +
                                  " is out of range (see --nodes)"};
    return ids[static_cast<std::size_t>(v)];
  };
  const faas::NodeId from = node_arg("from");
  const faas::NodeId to = node_arg("to");
  const auto node_name = [&platform](faas::NodeId id) -> std::string {
    return id == faas::kNoNode ? "(none)" : platform.resources().node(id).name();
  };

  platform.deploy(spec, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  platform.scale_up(spec.name, 1);
  while (platform.idle_replica_count(spec.name) == 0 && sim.step()) {
  }
  const faas::NodeId source = platform.find_replica_node(spec.name);
  if (source == faas::kNoNode) {
    std::fprintf(stderr, "migrate: no warm replica of %s came up\n",
                 spec.name.c_str());
    return 1;
  }
  if (!platform.migrate_replica(spec.name, from, to)) {
    std::fprintf(stderr,
                 "migrate: no replica of %s on %s, or no destination has "
                 "room\n",
                 spec.name.c_str(),
                 from == faas::kNoNode ? "any node" : node_name(from).c_str());
    return 1;
  }
  sim.run_until(sim.now() + sim::Duration::seconds(60));

  const faas::PlatformStats& st = platform.stats();
  const faas::NodeId final_node = platform.find_replica_node(spec.name);
  std::printf("%s: %s -> %s (%llu pre-dump rounds)\n", spec.name.c_str(),
              node_name(source).c_str(), node_name(final_node).c_str(),
              static_cast<unsigned long long>(st.migration_rounds));
  std::printf(
      "migrations: %llu started, %llu completed, %llu aborted, "
      "%llu full-dump fallbacks, %llu destination retries\n",
      static_cast<unsigned long long>(st.migrations_started),
      static_cast<unsigned long long>(st.migrations_completed),
      static_cast<unsigned long long>(st.migrations_aborted),
      static_cast<unsigned long long>(st.migration_full_dumps),
      static_cast<unsigned long long>(st.migration_dest_retries));
  std::printf("pre-copy %s while serving, %s inside the blackout; "
              "downtime %s\n",
              exp::fmt_mib(st.migration_precopy_bytes).c_str(),
              exp::fmt_mib(st.migration_final_bytes).c_str(),
              exp::fmt_ms(st.migration_downtime.to_millis()).c_str());

  exp::TextTable table{
      {"Node", "State", "Replicas", "Migr out/in", "Warmth mig/lost"}};
  for (const faas::WorkerNode& n : platform.resources().nodes())
    table.add_row({n.name(), faas::node_state_name(n.state()),
                   std::to_string(n.replicas()),
                   std::to_string(n.stats().migrations_out) + "/" +
                       std::to_string(n.stats().migrations_in),
                   std::to_string(n.stats().warmth_replicas_migrated) + "/" +
                       std::to_string(n.stats().warmth_replicas_destroyed)});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

// Record-and-prefetch working-set statistics (DESIGN.md §6j): run the
// function's record -> prefetch lifecycle on a one-node platform (first
// cold start records, later ones prefetch) and report the recorded working
// set's size and its coverage of the snapshot's payload.
int cmd_ws(const exp::CliArgs& args) {
  const std::string sub =
      args.positional().size() > 1 ? args.positional()[1] : "";
  if (sub != "stats" || args.positional().size() < 3) {
    std::fprintf(stderr,
                 "prebakectl ws: usage: prebakectl ws stats FUNCTION "
                 "[--requests N] [--seed S]\n");
    return usage();
  }
  const rt::FunctionSpec spec = resolve_function(args.positional()[2]);
  const int requests =
      std::max(2, static_cast<int>(args.get_int_or("requests", 2)));

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.paging = criu::PagingPolicy::ws_prefetch();
  cfg.idle_timeout = sim::Duration::seconds(1);
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg,
                          static_cast<std::uint64_t>(args.get_int_or("seed", 42))};
  platform.resources().add_node("w0", 8ull << 30, 2);
  platform.deploy(spec, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));
  for (int i = 0; i < requests; ++i) {
    bool done = false;
    platform.invoke(spec.name,
                    funcs::sample_request(
                        platform.registry().get(spec.name).spec.handler_id),
                    [&done](const funcs::Response&, const faas::RequestMetrics&) {
                      done = true;
                    });
    while (!done && sim.step()) {
    }
    // Let the replica idle out so every request is a fresh cold start:
    // request #1 records, every later one prefetches.
    sim.run();
  }

  const core::BakedSnapshot& snap =
      platform.snapshots().get(spec.name, core::SnapshotPolicy::warmup(1));
  if (!snap.images.has(criu::kWsImageName)) {
    std::fprintf(stderr, "ws: no working set recorded for %s\n",
                 spec.name.c_str());
    return 1;
  }
  const criu::WorkingSetImage ws =
      criu::decode_ws(snap.images.get(criu::kWsImageName).bytes);
  const std::uint64_t snap_pages = snap.stats.pages_dumped;
  const double coverage =
      snap_pages == 0 ? 0.0
                      : static_cast<double>(ws.total_pages) /
                            static_cast<double>(snap_pages);

  const faas::PlatformStats& st = platform.stats();
  std::printf("%s: snapshot %llu payload pages (%s)\n", spec.name.c_str(),
              static_cast<unsigned long long>(snap_pages),
              exp::fmt_mib(snap.stats.payload_bytes).c_str());
  std::printf("recorded working set: %llu pages (%s) in %llu runs, "
              "%s of the snapshot\n",
              static_cast<unsigned long long>(ws.total_pages),
              exp::fmt_mib(ws.total_pages * os::kPageSize).c_str(),
              static_cast<unsigned long long>(ws.runs.size()),
              exp::fmt_percent(coverage).c_str());
  std::printf("restores: %llu recorded, %llu prefetched "
              "(%llu pages bulk-mapped), %llu fallbacks to pure-lazy\n",
              static_cast<unsigned long long>(st.ws_recordings),
              static_cast<unsigned long long>(st.ws_prefetch_starts),
              static_cast<unsigned long long>(st.ws_prefetched_pages),
              static_cast<unsigned long long>(st.ws_fallbacks));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::CliArgs args{argc, argv};
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    int rc;
    if (command == "list") {
      rc = cmd_list();
    } else if (command == "startup") {
      rc = cmd_startup(args);
    } else if (command == "service") {
      rc = cmd_service(args);
    } else if (command == "bake-info") {
      rc = cmd_bake_info(args);
    } else if (command == "trace") {
      rc = cmd_trace(args);
    } else if (command == "nodes") {
      rc = cmd_nodes(args);
    } else if (command == "migrate") {
      rc = cmd_migrate(args);
    } else if (command == "store") {
      rc = cmd_store(args);
    } else if (command == "faults") {
      rc = cmd_faults(args);
    } else if (command == "workload") {
      rc = cmd_workload(args);
    } else if (command == "bench") {
      rc = cmd_bench(args);
    } else if (command == "ws") {
      rc = cmd_ws(args);
    } else {
      return usage();
    }
    for (const std::string& flag : args.unconsumed())
      std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
