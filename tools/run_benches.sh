#!/usr/bin/env bash
# Run the paper bench suite's wall-clock harness.
#
#   tools/run_benches.sh [--build-dir DIR] [--threads N] [--reps N] [--out FILE]
#   tools/run_benches.sh --check [--build-dir DIR] [--threads N]
#
# Default mode times the fig3 + fig5 sweeps with the seed's serial runner vs
# the parallel engine and writes BENCH_harness.json (wall-clock ms per
# figure, speedup, thread count) at the repository root.
#
# --check runs the reduced-repetition regression gate instead: bit-identical
# results across thread counts plus the reproduced paper numbers staying in
# range. Exits non-zero on any regression (this is the run_benches_check
# CTest target).
#
# --chaos runs the fault-injection sweep (bench/chaos_restore) instead,
# writing BENCH_chaos_restore.json at the repository root; combined with
# --check it asserts the availability gate (>= 99% at the default 5% fault
# rate, no request lost).
#
# --trace runs a short traced fig3 scenario through `bench_harness --trace`,
# writes BENCH_trace.json (Chrome trace_event format, loadable in
# about:tracing / Perfetto) and validates it against tools/trace_schema.jq.
# Exits non-zero if the export violates the schema.
#
# --dedup runs the content-addressed page-store sweep (bench/dedup_store),
# writing BENCH_dedup_store.json at the repository root; combined with
# --check it asserts the store gates (template-clone p95 < 30% of the
# first-restore p95, cross-function delta < 50% of the full payload,
# bit-identical JSON at 1 and 4 engine threads).
#
# --throughput runs the restore-throughput hot-path sweep
# (bench/restore_throughput), writing BENCH_restore_throughput.json at the
# repository root; combined with --check it asserts the zero-copy gate
# (>= 5x restores/sec over the recorded pre-PR baseline, bit-identical
# restored state at 1 and 4 engine threads).
#
# --migration runs the live-migration sweep (bench/migration): downtime vs
# dirty-page rate for pre-copy chains against the cold re-restore baseline,
# writing BENCH_migration.json at the repository root; combined with --check
# it asserts the migration gates (zero lost requests, live downtime < 30% of
# the cold re-restore for the read-heavy cell, downtime monotone in dirty
# rate, bit-identical JSON at 1 and 4 engine threads).
#
# --policy runs the keep-alive policy study (bench/policy_study): four
# replica-lifecycle policies under the same 10^6-request streaming Zipf
# workload, writing BENCH_policy_study.json at the repository root; combined
# with --check it asserts the cold-start-rate ordering, bit-identical JSON
# at 1 and 4 engine threads, and the 10^7-request completion gate.
#
# --ws runs the working-set restore sweep (bench/ws_restore): REAP-style
# record-and-prefetch against eager and pure-lazy restores, writing
# BENCH_ws_restore.json at the repository root; combined with --check it
# asserts the WS gates (first-invoke stall <= 30% of pure-lazy's, restore
# latency <= 2x pure-lazy's, bit-identical JSON at 1 and 4 engine threads).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
mode_args=()
out="${repo_root}/BENCH_harness.json"
out_set=0
check=0
chaos=0
trace=0
dedup=0
throughput=0
policy=0
migration=0
ws=0
reps_set=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) check=1; shift ;;
    --chaos) chaos=1; shift ;;
    --trace) trace=1; shift ;;
    --dedup) dedup=1; shift ;;
    --throughput) throughput=1; shift ;;
    --policy) policy=1; shift ;;
    --migration) migration=1; shift ;;
    --ws) ws=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --threads) mode_args+=(--threads "$2"); shift 2 ;;
    --reps) mode_args+=(--reps "$2"); reps_set=1; shift 2 ;;
    --out) out="$2"; out_set=1; shift 2 ;;
    *) echo "run_benches.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ "$ws" -eq 1 ]]; then
  ws_bin="${build_dir}/bench/ws_restore"
  if [[ ! -x "$ws_bin" ]]; then
    echo "run_benches.sh: ${ws_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target ws_restore -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_ws_restore.json"
  ws_args=(--out "$out")
  [[ "$check" -eq 1 ]] && ws_args+=(--check)
  exec "$ws_bin" "${ws_args[@]}"
fi

if [[ "$migration" -eq 1 ]]; then
  migration_bin="${build_dir}/bench/migration"
  if [[ ! -x "$migration_bin" ]]; then
    echo "run_benches.sh: ${migration_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target migration -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_migration.json"
  migration_args=(--out "$out")
  [[ "$check" -eq 1 ]] && migration_args+=(--check)
  exec "$migration_bin" "${migration_args[@]}"
fi

if [[ "$policy" -eq 1 ]]; then
  policy_bin="${build_dir}/bench/policy_study"
  if [[ ! -x "$policy_bin" ]]; then
    echo "run_benches.sh: ${policy_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target policy_study -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_policy_study.json"
  policy_args=(--out "$out")
  [[ "$check" -eq 1 ]] && policy_args+=(--check)
  exec "$policy_bin" "${policy_args[@]}"
fi

if [[ "$throughput" -eq 1 ]]; then
  tp_bin="${build_dir}/bench/restore_throughput"
  if [[ ! -x "$tp_bin" ]]; then
    echo "run_benches.sh: ${tp_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target restore_throughput -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_restore_throughput.json"
  tp_args=(--out "$out")
  [[ "$check" -eq 1 ]] && tp_args+=(--check)
  exec "$tp_bin" "${tp_args[@]}"
fi

if [[ "$dedup" -eq 1 ]]; then
  dedup_bin="${build_dir}/bench/dedup_store"
  if [[ ! -x "$dedup_bin" ]]; then
    echo "run_benches.sh: ${dedup_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target dedup_store -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_dedup_store.json"
  dedup_args=(--out "$out")
  [[ "$check" -eq 1 ]] && dedup_args+=(--check)
  exec "$dedup_bin" "${dedup_args[@]}"
fi

if [[ "$chaos" -eq 1 ]]; then
  chaos_bin="${build_dir}/bench/chaos_restore"
  if [[ ! -x "$chaos_bin" ]]; then
    echo "run_benches.sh: ${chaos_bin} not found; building..." >&2
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" --target chaos_restore -j
  fi
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_chaos_restore.json"
  chaos_args=(--out "$out")
  [[ "$check" -eq 1 ]] && chaos_args+=(--check)
  exec "$chaos_bin" "${chaos_args[@]}"
fi

harness="${build_dir}/bench/bench_harness"
if [[ ! -x "$harness" ]]; then
  echo "run_benches.sh: ${harness} not found; building..." >&2
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" --target bench_harness -j
fi

if [[ "$trace" -eq 1 ]]; then
  [[ "$out_set" -eq 1 ]] || out="${repo_root}/BENCH_trace.json"
  # A short traced run is enough for the schema smoke: the span *shape* is
  # rep-count independent, only the volume grows.
  [[ "$reps_set" -eq 1 ]] || mode_args+=(--reps 5)
  "$harness" --trace "$out" "${mode_args[@]+"${mode_args[@]}"}"
  if command -v jq >/dev/null 2>&1; then
    jq -r -f "${repo_root}/tools/trace_schema.jq" "$out"
  else
    echo "run_benches.sh: jq not found; skipping trace schema validation" >&2
  fi
  exit 0
fi

if [[ "$check" -eq 1 ]]; then
  exec "$harness" --check "${mode_args[@]+"${mode_args[@]}"}"
fi

exec "$harness" --out "$out" "${mode_args[@]+"${mode_args[@]}"}"
