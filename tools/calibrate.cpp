// Developer tool: prints the emergent start-up medians for every function ×
// technique next to the paper's targets, so cost-model constants can be
// re-fit after substrate changes. Not part of the benchmark suite.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

void report(const char* label, const rt::FunctionSpec& spec,
            exp::Technique tech, bool first_response, double target_ms,
            int reps = 60) {
  exp::ScenarioConfig cfg;
  cfg.spec = spec;
  cfg.technique = tech;
  cfg.repetitions = reps;
  cfg.measure_first_response = first_response;
  cfg.seed = 42;
  const exp::ScenarioResult res = exp::run_startup_scenario(cfg);
  const double med = stats::median(res.startup_ms);
  const auto& b = res.breakdowns.front();
  std::printf(
      "%-28s %-12s med=%8.2f ms  target=%8.2f ms  (clone=%.2f exec=%.2f "
      "rts=%.2f appinit=%.2f restore=%.2f snap=%.1fMiB)\n",
      label, exp::technique_name(tech), med, target_ms,
      b.clone_time.to_millis(), b.exec_time.to_millis(),
      b.rts_time.to_millis(), b.appinit_time.to_millis(),
      b.restore_time.to_millis(),
      static_cast<double>(res.snapshot_nominal_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main() {
  std::printf("=== real functions (startup to ready) ===\n");
  report("noop", exp::noop_spec(), exp::Technique::kVanilla, false, 103.3);
  report("noop", exp::noop_spec(), exp::Technique::kPrebakeNoWarmup, false, 62.0);
  report("markdown", exp::markdown_spec(), exp::Technique::kVanilla, false, 100.0);
  report("markdown", exp::markdown_spec(), exp::Technique::kPrebakeNoWarmup, false, 53.0);
  report("image-resizer", exp::image_resizer_spec(), exp::Technique::kVanilla, false, 310.0);
  report("image-resizer", exp::image_resizer_spec(), exp::Technique::kPrebakeNoWarmup, false, 87.0);

  std::printf("=== synthetic (startup to first response) ===\n");
  struct Target {
    exp::SynthSize size;
    double vanilla, nowarm, warm;
  };
  const Target targets[] = {
      {exp::SynthSize::kSmall, 219.8, 172.5, 54.4},
      {exp::SynthSize::kMedium, 456.0, 360.9, 63.7},
      {exp::SynthSize::kBig, 1621.0, 1340.4, 84.0},
  };
  for (const Target& t : targets) {
    const rt::FunctionSpec spec = exp::synthetic_spec(t.size);
    report(spec.name.c_str(), spec, exp::Technique::kVanilla, true, t.vanilla);
    report(spec.name.c_str(), spec, exp::Technique::kPrebakeNoWarmup, true, t.nowarm);
    report(spec.name.c_str(), spec, exp::Technique::kPrebakeWarmup, true, t.warm);
  }
  return 0;
}
