// Working-set restore bench (DESIGN.md §6j): REAP-style record-and-prefetch
// against eager and pure-lazy restores.
//
// The workload is the REAP sweet spot: a large resident runtime heap of
// which the first invocation touches only a small working set (a handler's
// footprint is set by its code, not the runtime's heap). Each cell restores
// a baked snapshot and then runs the first invocation's memory touches
// through the mode's own paging mechanism:
//
//   eager     — everything installed during restore; the invocation faults
//               nothing (the paper's baseline restore)
//   pure-lazy — nothing installed; every touch is a userfaultfd round trip
//   ws        — an untimed record pass captures the invocation's working
//               set into ws-1.img; the timed restore bulk-maps exactly
//               those pages and the invocation faults nothing
//
// All reported fields are simulated durations, so the whole JSON is
// deterministic. `--check` gates (per heap size):
//   * ws first-invoke stall   <= 30% of pure-lazy's
//   * ws restore latency      <= 2x pure-lazy's
//   * JSON bit-identical between 1 and 4 engine threads
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "criu/ws.hpp"
#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

// First-invocation working set: 128 pages (512 KiB) regardless of heap
// size — a handler's touches do not grow with the runtime baggage around
// them. Small enough that bulk-mapping it stays within the restore-latency
// gate, large enough that serving it by uffd round trips visibly stalls
// the first request.
constexpr std::uint64_t kWsPages = 128;

struct Cell {
  const char* mode;  // "eager" | "pure-lazy" | "ws"
  int heap_mib;
};

constexpr Cell kCells[] = {
    {"eager", 16}, {"eager", 64}, {"pure-lazy", 16},
    {"pure-lazy", 64}, {"ws", 16}, {"ws", 64},
};

struct CellResult {
  const char* mode = "";
  int heap_mib = 0;
  double restore_ms = 0.0;       // simulated restore-to-ready latency
  double first_invoke_ms = 0.0;  // simulated demand-fault stall of invoke #1
  std::uint64_t ws_prefetched = 0;
  std::uint64_t pending_after_restore = 0;
};

// The invocation's memory touches under the cell's paging mode: the working
// set is the heap's first kWsPages pages, touched first — so under lazy
// paging they are exactly the uffd server's next pages in first-touch
// order, and under eager/ws paging they are already resident and stall
// nothing.
void first_invocation(const criu::RestoreResult& r) {
  if (r.lazy_server == nullptr || r.lazy_server->done()) return;
  const std::uint64_t touched =
      std::min<std::uint64_t>(kWsPages, r.lazy_server->pending_pages());
  if (touched > 0 && r.ws_prefetched_pages == 0) r.lazy_server->page_in(touched);
}

CellResult run_cell(const Cell& cell) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};

  // Bake: a process whose resident heap is `heap_mib` of pattern pages.
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.process(pid).set_name("ws-bench");
  const os::VmaId heap = kernel.mmap(
      pid, static_cast<std::uint64_t>(cell.heap_mib) * 1024 * 1024,
      os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
      std::make_shared<os::PatternSource>(0x3A9 + cell.heap_mib), false);
  kernel.fault_in_all(pid, heap);
  criu::DumpOptions dopts;
  dopts.fs_prefix = "/snap/ws/";
  criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  criu::RestoreOptions opts;
  opts.fs_prefix = "/snap/ws/";
  if (std::strcmp(cell.mode, "pure-lazy") == 0)
    opts.paging = criu::PagingPolicy::lazy(0.0);

  if (std::strcmp(cell.mode, "ws") == 0) {
    // Untimed record pass: restore in recording mode, run the first
    // invocation's touches, close the capture into ws-1.img. This is the
    // platform's one-time per-snapshot cost; every later restore prefetches.
    opts.paging = criu::PagingPolicy::ws_recording();
    const criu::RestoreResult rec =
        criu::Restorer{kernel}.restore(dump.images, opts);
    rec.lazy_server->page_in(kWsPages);
    const criu::WorkingSetImage ws =
        criu::finish_ws_recording(kernel, *rec.ws_recorder);
    const std::vector<std::uint8_t> bytes = criu::encode_ws(ws);
    kernel.fs().create("/snap/ws/" + std::string{criu::kWsImageName},
                       bytes.size());
    dump.images.put(criu::kWsImageName, bytes);
    kernel.kill_process(rec.pid);
    kernel.reap(rec.pid);
    opts.paging = criu::PagingPolicy::ws_prefetch();
  }

  // Untimed warm-up restore: the first restore pays cold disk reads; the
  // gates compare steady-state (page-cache warm) latencies, like a node
  // restoring the same snapshot repeatedly.
  {
    const criu::RestoreResult warm =
        criu::Restorer{kernel}.restore(dump.images, opts);
    if (warm.lazy_server != nullptr) warm.lazy_server->page_in_all();
    kernel.kill_process(warm.pid);
    kernel.reap(warm.pid);
  }

  CellResult out;
  out.mode = cell.mode;
  out.heap_mib = cell.heap_mib;

  const sim::TimePoint t0 = sim.now();
  const criu::RestoreResult r = criu::Restorer{kernel}.restore(dump.images, opts);
  out.restore_ms = (sim.now() - t0).to_millis();
  out.ws_prefetched = r.ws_prefetched_pages;
  out.pending_after_restore =
      r.lazy_server != nullptr ? r.lazy_server->pending_pages() : 0;

  const sim::TimePoint t1 = sim.now();
  first_invocation(r);
  out.first_invoke_ms = (sim.now() - t1).to_millis();
  return out;
}

std::vector<CellResult> run_sweep(int threads) {
  const exp::ParallelRunner runner{threads};
  std::vector<CellResult> results{std::size(kCells)};
  runner.for_each(std::size(kCells),
                  [&](std::size_t i) { results[i] = run_cell(kCells[i]); });
  return results;
}

std::string to_json(const std::vector<CellResult>& results) {
  std::string out = "{\n  \"ws_pages\": " + std::to_string(kWsPages) +
                    ",\n  \"cells\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"mode\": \"%s\", \"heap_mib\": %d, "
                  "\"restore_ms\": %.6f, \"first_invoke_ms\": %.6f, "
                  "\"ws_prefetched\": %llu, \"pending_after_restore\": "
                  "%llu}%s\n",
                  r.mode, r.heap_mib, r.restore_ms, r.first_invoke_ms,
                  static_cast<unsigned long long>(r.ws_prefetched),
                  static_cast<unsigned long long>(r.pending_after_restore),
                  i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ws_restore: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(body.c_str(), f);
  std::fclose(f);
}

void print_table(const std::vector<CellResult>& results) {
  exp::TextTable table{{"Mode", "Heap", "Restore", "First-invoke stall",
                        "Restore + stall", "WS prefetched", "Lazy pending"}};
  for (const CellResult& r : results)
    table.add_row({r.mode, std::to_string(r.heap_mib) + " MiB",
                   exp::fmt_ms(r.restore_ms), exp::fmt_ms(r.first_invoke_ms),
                   exp::fmt_ms(r.restore_ms + r.first_invoke_ms),
                   std::to_string(r.ws_prefetched),
                   std::to_string(r.pending_after_restore)});
  std::printf("%s\n", table.to_string().c_str());
}

const CellResult* find(const std::vector<CellResult>& results,
                       const char* mode, int heap_mib) {
  for (const CellResult& r : results)
    if (std::strcmp(r.mode, mode) == 0 && r.heap_mib == heap_mib) return &r;
  return nullptr;
}

int check_gates(const std::vector<CellResult>& results) {
  int failures = 0;
  for (const int heap : {16, 64}) {
    const CellResult* lazy = find(results, "pure-lazy", heap);
    const CellResult* ws = find(results, "ws", heap);
    if (lazy == nullptr || ws == nullptr) {
      std::printf("FAIL: missing pure-lazy/ws cell for %d MiB\n", heap);
      ++failures;
      continue;
    }
    if (ws->first_invoke_ms > 0.30 * lazy->first_invoke_ms) {
      std::printf("FAIL: %d MiB ws first-invoke stall %.3f ms exceeds 30%% "
                  "of pure-lazy's %.3f ms\n",
                  heap, ws->first_invoke_ms, lazy->first_invoke_ms);
      ++failures;
    }
    if (ws->restore_ms > 2.0 * lazy->restore_ms) {
      std::printf("FAIL: %d MiB ws restore %.3f ms exceeds 2x pure-lazy's "
                  "%.3f ms\n",
                  heap, ws->restore_ms, lazy->restore_ms);
      ++failures;
    }
    if (ws->ws_prefetched != kWsPages) {
      std::printf("FAIL: %d MiB ws cell prefetched %llu pages, recorded %llu\n",
                  heap, static_cast<unsigned long long>(ws->ws_prefetched),
                  static_cast<unsigned long long>(kWsPages));
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_ws_restore.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: ws_restore [--out FILE] [--check]\n");
      return 2;
    }
  }

  std::printf("== Working-set restore: record-and-prefetch vs eager and "
              "pure-lazy (DESIGN.md §6j) ==\n\n");

  if (check) {
    const std::vector<CellResult> serial = run_sweep(1);
    const std::vector<CellResult> parallel = run_sweep(4);
    print_table(serial);
    int failures = check_gates(serial);
    const std::string a = to_json(serial);
    const std::string b = to_json(parallel);
    if (a != b) {
      std::printf("FAIL: sweep is not bit-identical across engine threads\n");
      ++failures;
    }
    write_file(out, a);
    std::printf("wrote %s\n", out.c_str());
    std::printf("%s\n", failures == 0 ? "CHECK PASSED" : "CHECK FAILED");
    return failures == 0 ? 0 : 1;
  }

  const std::vector<CellResult> results = run_sweep(0);
  print_table(results);
  write_file(out, to_json(results));
  std::printf("wrote %s\n", out.c_str());
  std::printf(
      "\nShape: pure-lazy defers everything and pays one uffd round trip\n"
      "per first-invocation touch; the ws restore bulk-maps the recorded\n"
      "working set for a fraction of that stall while staying within 2x of\n"
      "the pure-lazy restore latency (the cold tail stays lazy for life).\n");
  return 0;
}
