// Live replica migration via pre-dump chains (DESIGN.md §6i).
//
// The paper keeps warm state alive by restoring prebaked snapshots; this
// bench measures the complementary operation — moving a warm replica
// between worker nodes without destroying its warmth. The sweep crosses the
// per-request dirty-page rate (how fast the replica re-dirties its heap
// between pre-dump rounds) with the pre-copy round budget, and reports the
// cutover blackout against the cold re-restore a destroyed replica would
// have cost.
//
//   --check  gates: (1) a warm drain loses zero requests in every cell;
//            (2) the read-heavy cell's blackout stays under 30% of the cold
//            re-restore baseline; (3) blackout is monotone non-decreasing
//            in the dirty-page rate at the full round budget; (4) the sweep
//            serializes bit-identically at 1 and 4 engine threads.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/migration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

struct Cell {
  std::uint64_t dirty_pages;
  int rounds;
};

// dirty 0 = read-heavy handler (the pre-copy converges immediately);
// 64/256 pages per request re-dirty the heap between rounds. rounds 1 vs 3
// shows what the iterative chain buys over a single pre-dump.
constexpr Cell kCells[] = {
    {0, 1}, {0, 3}, {64, 1}, {64, 3}, {256, 1}, {256, 3},
};

struct CellResult {
  Cell cell{};
  exp::MigrationScenarioResult r;
};

CellResult run_cell(const Cell& cell, std::uint64_t seed) {
  exp::MigrationScenarioConfig cfg;
  cfg.seed = seed;
  cfg.request_dirty_pages = cell.dirty_pages;
  cfg.migration.max_rounds = cell.rounds;
  CellResult out;
  out.cell = cell;
  out.r = exp::run_migration_scenario(cfg);
  return out;
}

std::vector<CellResult> run_sweep(int threads, std::uint64_t seed) {
  const exp::ParallelRunner runner{threads};
  std::vector<CellResult> results{std::size(kCells)};
  runner.for_each(std::size(kCells), [&](std::size_t i) {
    results[i] = run_cell(kCells[i], seed);
  });
  return results;
}

std::string to_json(const std::vector<CellResult>& results) {
  std::string out = "{\n  \"cells\": [\n";
  char buf[640];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::MigrationScenarioResult& r = results[i].r;
    std::snprintf(
        buf, sizeof buf,
        "    {\"dirty_pages\": %llu, \"max_rounds\": %d, "
        "\"requests\": %llu, \"answered\": %llu, \"rejected\": %llu, "
        "\"migrations_completed\": %llu, \"migrations_aborted\": %llu, "
        "\"rounds\": %llu, \"precopy_bytes\": %llu, \"final_bytes\": %llu, "
        "\"downtime_ms\": %.3f, \"cold_restore_ms\": %.3f, "
        "\"warmth_migrated\": %llu, \"warmth_destroyed\": %llu, "
        "\"total_p95_ms\": %.3f}%s\n",
        static_cast<unsigned long long>(results[i].cell.dirty_pages),
        results[i].cell.rounds, static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.migrations_completed),
        static_cast<unsigned long long>(r.migrations_aborted),
        static_cast<unsigned long long>(r.migration_rounds),
        static_cast<unsigned long long>(r.migration_precopy_bytes),
        static_cast<unsigned long long>(r.migration_final_bytes),
        r.downtime_ms, r.cold_restore_ms,
        static_cast<unsigned long long>(r.warmth_replicas_migrated),
        static_cast<unsigned long long>(r.warmth_replicas_destroyed),
        r.total_p95_ms, i + 1 < std::size(kCells) ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void print_table(const std::vector<CellResult>& results) {
  exp::TextTable table{{"Dirty/req", "Rounds", "Requests", "Lost", "Migr",
                        "Pre-copy", "Final", "Downtime", "Cold restore"}};
  for (const CellResult& c : results) {
    char final_kib[32];
    std::snprintf(final_kib, sizeof final_kib, "%.1f KiB",
                  static_cast<double>(c.r.migration_final_bytes) / 1024.0);
    table.add_row(
        {std::to_string(c.cell.dirty_pages), std::to_string(c.cell.rounds),
         std::to_string(c.r.requests),
         std::to_string(c.r.requests - c.r.answered),
         std::to_string(c.r.migrations_completed),
         exp::fmt_mib(c.r.migration_precopy_bytes), final_kib,
         exp::fmt_ms(c.r.downtime_ms), exp::fmt_ms(c.r.cold_restore_ms)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "migration: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

int check_gates(const std::vector<CellResult>& results) {
  int failures = 0;
  for (const CellResult& c : results) {
    if (c.r.answered != c.r.requests || c.r.rejected != 0) {
      std::printf(
          "FAIL: dirty=%llu rounds=%d lost %llu of %llu requests "
          "(%llu rejected) under a warm drain\n",
          static_cast<unsigned long long>(c.cell.dirty_pages), c.cell.rounds,
          static_cast<unsigned long long>(c.r.requests - c.r.answered),
          static_cast<unsigned long long>(c.r.requests),
          static_cast<unsigned long long>(c.r.rejected));
      ++failures;
    }
    if (c.r.migrations_completed == 0) {
      std::printf("FAIL: dirty=%llu rounds=%d completed no migration\n",
                  static_cast<unsigned long long>(c.cell.dirty_pages),
                  c.cell.rounds);
      ++failures;
    }
  }
  // Read-heavy break-even: the blackout of a converged live migration must
  // be well under the cold re-restore a destroyed replica would pay.
  const CellResult& read_heavy = results[1];  // dirty=0, rounds=3
  if (read_heavy.r.downtime_ms >= 0.3 * read_heavy.r.cold_restore_ms) {
    std::printf("FAIL: read-heavy downtime %.3f ms >= 30%% of cold restore "
                "%.3f ms\n",
                read_heavy.r.downtime_ms, read_heavy.r.cold_restore_ms);
    ++failures;
  }
  // Monotonicity at the full round budget: more dirtying per request can
  // only grow the final delta (1% slack for request-timing jitter).
  for (std::size_t i = 3; i < std::size(kCells); i += 2) {
    const double prev = results[i - 2].r.downtime_ms;
    const double cur = results[i].r.downtime_ms;
    if (cur < prev * 0.99) {
      std::printf("FAIL: downtime not monotone in dirty rate: "
                  "dirty=%llu -> %.3f ms, dirty=%llu -> %.3f ms\n",
                  static_cast<unsigned long long>(kCells[i - 2].dirty_pages),
                  prev,
                  static_cast<unsigned long long>(kCells[i].dirty_pages), cur);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_migration.json";
  std::uint64_t seed = 42;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: migration [--out FILE] [--seed N] [--check]\n");
      return 2;
    }
  }

  std::printf(
      "== Live replica migration via pre-dump chains (DESIGN.md §6i) ==\n\n");

  if (check) {
    const std::vector<CellResult> serial = run_sweep(1, seed);
    const std::vector<CellResult> parallel = run_sweep(4, seed);
    const std::string a = to_json(serial);
    const std::string b = to_json(parallel);
    print_table(serial);
    int failures = check_gates(serial);
    if (a != b) {
      std::printf("FAIL: sweep is not bit-identical across engine threads\n");
      ++failures;
    }
    write_file(out, a);
    std::printf("wrote %s\n", out.c_str());
    std::printf("%s\n", failures == 0 ? "CHECK PASSED" : "CHECK FAILED");
    return failures == 0 ? 0 : 1;
  }

  const std::vector<CellResult> results = run_sweep(0, seed);
  print_table(results);
  write_file(out, to_json(results));
  std::printf("wrote %s\n", out.c_str());
  std::printf(
      "\nShape: a read-heavy replica converges in one pre-dump round and\n"
      "cuts over in a blackout far below the cold re-restore; heavier\n"
      "dirtying grows the final delta until extra rounds stop paying.\n");
  return 0;
}
