// Content-addressed page store (DESIGN.md §6f): delta-aware registry
// transfer + COW template restores.
//
// Sweeps replica counts over two sharing shapes:
//
//   same-function  — N replicas of one snapshot on one node. The first
//                    restore pays the registry fetch and freezes a template;
//                    replicas 2..N are COW clones (~CLONE cost, no I/O).
//   cross-function — the node already holds another function's pages (the
//                    shared runtime base); the target function's first fetch
//                    ships only its app-specific delta.
//
// `--check` is the regression gate: it runs the sweep at 1 and 4 engine
// threads, requires bit-identical JSON, and enforces
//   * template-clone p95 < 30% of first-restore p95
//   * cross-function delta bytes < 50% of the full page payload
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/prebaker.hpp"
#include "criu/page_store.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "faas/builder.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

struct Cell {
  const char* mode;  // "same-function" | "cross-function"
  int replicas;
};

constexpr Cell kCells[] = {
    {"same-function", 1},  {"same-function", 4},  {"same-function", 16},
    {"same-function", 64}, {"cross-function", 1}, {"cross-function", 4},
    {"cross-function", 16}, {"cross-function", 64},
};

struct CellResult {
  const char* mode = "";
  int replicas = 0;
  double first_restore_ms = 0.0;  // full restore (fetch + template freeze)
  double clone_p50_ms = 0.0;      // COW clones, replicas 2..N
  double clone_p95_ms = 0.0;
  std::uint64_t delta_bytes = 0;    // first fetch's page payload on the wire
  std::uint64_t payload_bytes = 0;  // full page payload of the snapshot
  std::uint64_t hit_pages = 0;
  std::uint64_t remote_bytes = 0;  // registry traffic across all replicas
  std::uint64_t template_clones = 0;
  std::vector<double> clone_ms;
};

core::BakedSnapshot bake(faas::FunctionBuilder& builder,
                         const rt::FunctionSpec& spec, std::uint64_t seed) {
  core::PrebakeConfig cfg;
  cfg.store_root = "/registry/";
  faas::BuildResult built = builder.build(spec, cfg, sim::Rng{seed});
  return std::move(*built.snapshot);
}

CellResult run_cell(const Cell& cell) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  funcs::SharedAssets assets;
  core::StartupService startup{kernel, exp::testbed_runtime(), assets};
  faas::FunctionBuilder builder{kernel, startup};

  criu::PageStore store;
  const bool cross = std::strcmp(cell.mode, "cross-function") == 0;

  // Cross-function shape: the base function's pages are already on the node
  // (one prior full restore), so the target's fetch is delta-only.
  if (cross) {
    const core::BakedSnapshot base = bake(builder, exp::noop_spec(), 1);
    criu::RestoreOptions warm;
    warm.fs_prefix = base.fs_prefix;
    warm.remote_fetch = true;
    warm.page_store = &store;
    warm.store_key = base.fs_prefix;
    kernel.fs().drop_caches();
    criu::Restorer{kernel}.restore(base.images, warm);
  }

  const core::BakedSnapshot target =
      bake(builder, cross ? exp::markdown_spec() : exp::noop_spec(), 2);
  criu::RestoreOptions opts;
  opts.fs_prefix = target.fs_prefix;
  opts.remote_fetch = true;
  opts.page_store = &store;
  opts.store_key = target.fs_prefix;
  kernel.fs().drop_caches();

  CellResult out;
  out.mode = cell.mode;
  out.replicas = cell.replicas;
  out.payload_bytes = target.stats.payload_bytes;
  const std::uint64_t clones_before = store.stats().template_clones;
  for (int i = 0; i < cell.replicas; ++i) {
    const sim::TimePoint t0 = sim.now();
    const criu::RestoreResult r =
        criu::Restorer{kernel}.restore(target.images, opts);
    const double ms = (sim.now() - t0).to_millis();
    if (i == 0) {
      out.first_restore_ms = ms;
      out.delta_bytes = r.store_delta_bytes;
    } else {
      out.clone_ms.push_back(ms);
    }
    out.hit_pages += r.store_hit_pages;
    out.remote_bytes += r.remote_bytes;
  }
  out.template_clones = store.stats().template_clones - clones_before;
  if (!out.clone_ms.empty()) {
    out.clone_p50_ms = stats::percentile(out.clone_ms, 0.5);
    out.clone_p95_ms = stats::percentile(out.clone_ms, 0.95);
  }
  return out;
}

std::vector<CellResult> run_sweep(int threads) {
  const exp::ParallelRunner runner{threads};
  std::vector<CellResult> results{std::size(kCells)};
  runner.for_each(std::size(kCells),
                  [&](std::size_t i) { results[i] = run_cell(kCells[i]); });
  return results;
}

std::string to_json(const std::vector<CellResult>& results) {
  std::string out = "{\n  \"cells\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "    {\"mode\": \"%s\", \"replicas\": %d, "
        "\"first_restore_ms\": %.3f, \"clone_p50_ms\": %.3f, "
        "\"clone_p95_ms\": %.3f, \"delta_bytes\": %llu, "
        "\"payload_bytes\": %llu, \"hit_pages\": %llu, "
        "\"remote_bytes\": %llu, \"template_clones\": %llu}%s\n",
        r.mode, r.replicas, r.first_restore_ms, r.clone_p50_ms, r.clone_p95_ms,
        static_cast<unsigned long long>(r.delta_bytes),
        static_cast<unsigned long long>(r.payload_bytes),
        static_cast<unsigned long long>(r.hit_pages),
        static_cast<unsigned long long>(r.remote_bytes),
        static_cast<unsigned long long>(r.template_clones),
        i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dedup_store: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(body.c_str(), f);
  std::fclose(f);
}

void print_table(const std::vector<CellResult>& results) {
  exp::TextTable table{{"Mode", "Replicas", "First restore", "Clone p50",
                        "Clone p95", "Delta", "Payload", "Registry"}};
  for (const CellResult& r : results)
    table.add_row({r.mode, std::to_string(r.replicas),
                   exp::fmt_ms(r.first_restore_ms),
                   r.clone_ms.empty() ? "-" : exp::fmt_ms(r.clone_p50_ms),
                   r.clone_ms.empty() ? "-" : exp::fmt_ms(r.clone_p95_ms),
                   exp::fmt_mib(r.delta_bytes), exp::fmt_mib(r.payload_bytes),
                   exp::fmt_mib(r.remote_bytes)});
  std::printf("%s\n", table.to_string().c_str());
}

// The two perf gates; returns the number of violations (0 = pass).
int check_gates(const std::vector<CellResult>& results) {
  int failures = 0;
  std::vector<double> firsts;
  std::vector<double> clones;
  for (const CellResult& r : results) {
    firsts.push_back(r.first_restore_ms);
    clones.insert(clones.end(), r.clone_ms.begin(), r.clone_ms.end());
    if (std::strcmp(r.mode, "cross-function") == 0 &&
        r.delta_bytes * 2 >= r.payload_bytes) {
      std::printf("FAIL: cross-function delta %llu B >= 50%% of payload "
                  "%llu B (replicas=%d)\n",
                  static_cast<unsigned long long>(r.delta_bytes),
                  static_cast<unsigned long long>(r.payload_bytes),
                  r.replicas);
      ++failures;
    }
  }
  const double first_p95 = stats::percentile(firsts, 0.95);
  const double clone_p95 = stats::percentile(clones, 0.95);
  if (clone_p95 >= 0.30 * first_p95) {
    std::printf("FAIL: template-clone p95 %.3f ms >= 30%% of first-restore "
                "p95 %.3f ms\n",
                clone_p95, first_p95);
    ++failures;
  } else {
    std::printf("clone p95 %.3f ms vs first-restore p95 %.3f ms (%.1f%%)\n",
                clone_p95, first_p95, 100.0 * clone_p95 / first_p95);
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_dedup_store.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: dedup_store [--out FILE] [--check]\n");
      return 2;
    }
  }

  std::printf("== Content-addressed page store: delta transfer + COW "
              "template restores (DESIGN.md §6f) ==\n\n");

  if (check) {
    // Determinism gate: the sweep must serialize bit-identically whether the
    // cells run inline or across four engine threads.
    const std::vector<CellResult> serial = run_sweep(1);
    const std::vector<CellResult> parallel = run_sweep(4);
    const std::string a = to_json(serial);
    const std::string b = to_json(parallel);
    print_table(serial);
    int failures = check_gates(serial);
    if (a != b) {
      std::printf("FAIL: sweep is not bit-identical across engine threads\n");
      ++failures;
    }
    write_file(out, a);
    std::printf("wrote %s\n", out.c_str());
    std::printf("%s\n", failures == 0 ? "CHECK PASSED" : "CHECK FAILED");
    return failures == 0 ? 0 : 1;
  }

  const std::vector<CellResult> results = run_sweep(0);
  print_table(results);
  write_file(out, to_json(results));
  std::printf("wrote %s\n", out.c_str());
  std::printf(
      "\nShape: replica 1 pays the fetch + template freeze; replicas 2..N\n"
      "are COW clones of the frozen template, and a node that already holds\n"
      "another function's runtime base fetches only the app delta.\n");
  return 0;
}
