// Cluster placement policies under "restore as a service" (Section 7).
//
// The paper's Section 7 sketches prebaking deployed against a remote
// snapshot registry: a node's first restore of a function pulls the images
// over the network; later restores on the same node read the local,
// page-cached copy. With a bounded per-node image cache the placement
// policy decides how often that transfer is paid. This bench runs identical
// mixed Poisson traffic (noop + markdown + image-resizer) over a 4-node
// cluster with each policy:
//
//   worst-fit   — spread by free memory (ignores where images already live)
//   round-robin — rotate placements across nodes
//   locality    — prefer nodes whose cache already holds the snapshot
//                 (Ustiugov et al.'s snapshot-locality observation)
//
// and reports cold-start latency, registry traffic, and cache behaviour.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

exp::ClusterScenarioResult run_policy(faas::PlacementPolicy policy,
                                      std::uint64_t seed) {
  exp::ClusterScenarioConfig cfg;
  cfg.policy = policy;
  cfg.seed = seed;
  return exp::run_cluster_scenario(cfg);
}

void write_json(const std::string& path,
                const std::vector<faas::PlacementPolicy>& policies,
                const std::vector<exp::ClusterScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cluster_placement: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"policies\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::ClusterScenarioResult& r = results[i];
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"requests\": %llu, \"ok\": %llu, "
        "\"cold_starts\": %llu, \"cold_startup_p50_ms\": %.2f, "
        "\"cold_startup_p95_ms\": %.2f, \"total_p50_ms\": %.2f, "
        "\"total_p95_ms\": %.2f, \"total_p99_ms\": %.2f, "
        "\"snapshot_hits\": %llu, \"snapshot_misses\": %llu, "
        "\"remote_mib_fetched\": %.1f}%s\n",
        faas::placement_policy_name(policies[i]),
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.responses_ok),
        static_cast<unsigned long long>(r.cold_starts),
        r.cold_startup_p50_ms, r.cold_startup_p95_ms, r.total_p50_ms,
        r.total_p95_ms, r.total_p99_ms,
        static_cast<unsigned long long>(r.snapshot_hits),
        static_cast<unsigned long long>(r.snapshot_misses),
        static_cast<double>(r.remote_bytes_fetched) / (1024.0 * 1024.0),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_cluster_placement.json";
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: cluster_placement [--out FILE] [--seed N]\n");
      return 2;
    }
  }

  std::printf("== Placement policies, 4-node cluster, remote snapshot "
              "registry (Section 7) ==\n\n");

  const std::vector<faas::PlacementPolicy> policies = {
      faas::PlacementPolicy::kWorstFit,
      faas::PlacementPolicy::kRoundRobin,
      faas::PlacementPolicy::kSnapshotLocality,
  };
  std::vector<exp::ClusterScenarioResult> results;
  for (const faas::PlacementPolicy policy : policies)
    results.push_back(run_policy(policy, seed));

  exp::TextTable table{{"Policy", "Requests", "Cold", "Cold p50", "Cold p95",
                        "Total p95", "Cache hit", "Registry MiB"}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::ClusterScenarioResult& r = results[i];
    const std::uint64_t lookups = r.snapshot_hits + r.snapshot_misses;
    table.add_row(
        {faas::placement_policy_name(policies[i]), std::to_string(r.requests),
         std::to_string(r.cold_starts), exp::fmt_ms(r.cold_startup_p50_ms),
         exp::fmt_ms(r.cold_startup_p95_ms), exp::fmt_ms(r.total_p95_ms),
         exp::fmt_percent(lookups == 0 ? 0.0
                                       : static_cast<double>(r.snapshot_hits) /
                                             static_cast<double>(lookups)),
         exp::fmt_mib(r.remote_bytes_fetched)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Per-node view (locality policy):\n");
  const exp::ClusterScenarioResult& loc = results.back();
  exp::TextTable nodes{{"Node", "Placed", "Hits", "Misses", "Evict",
                        "Registry MiB", "Busy"}};
  for (const exp::ClusterNodeReport& n : loc.nodes)
    nodes.add_row({n.name, std::to_string(n.replicas_placed),
                   std::to_string(n.snapshot_hits),
                   std::to_string(n.snapshot_misses),
                   std::to_string(n.snapshot_evictions),
                   exp::fmt_mib(n.remote_bytes_fetched),
                   exp::fmt_ms(n.busy_ms, 1)});
  std::printf("%s\n", nodes.to_string().c_str());

  write_json(out, policies, results);
  std::printf("wrote %s\n", out.c_str());

  const bool locality_wins =
      results[2].cold_startup_p50_ms <= results[0].cold_startup_p50_ms &&
      results[2].remote_bytes_fetched < results[0].remote_bytes_fetched;
  std::printf(
      "\nShape: locality-aware placement re-lands restores on nodes that\n"
      "already hold the images, so cold starts read the page-cached copy\n"
      "instead of pulling the registry — %s here vs worst-fit.\n",
      locality_wins ? "confirmed" : "NOT confirmed");
  return 0;
}
