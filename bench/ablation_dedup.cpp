// Ablation G — content-addressed snapshot storage.
//
// The paper notes the same snapshot seeds every replica of a function
// (§3.1); a snapshot *store* can go further and share identical pages
// *across* functions, since every Java function's post-bootstrap runtime
// base is byte-identical. Measures dedup ratios for the paper's three
// functions plus both snapshot policies.
#include <cstdio>

#include "core/prebaker.hpp"
#include "criu/dedup.hpp"
#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/builder.hpp"

using namespace prebake;

namespace {

core::BakedSnapshot bake(faas::FunctionBuilder& builder,
                         const rt::FunctionSpec& spec,
                         core::SnapshotPolicy policy, std::uint64_t seed) {
  core::PrebakeConfig cfg;
  cfg.policy = policy;
  cfg.store_root = "/var/lib/prebake/" + std::to_string(seed) + "/";
  faas::BuildResult built = builder.build(spec, cfg, sim::Rng{seed});
  return std::move(*built.snapshot);
}

}  // namespace

int main() {
  std::printf("== Ablation G: page dedup across snapshots ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  funcs::SharedAssets assets;
  core::StartupService startup{kernel, exp::testbed_runtime(), assets};
  faas::FunctionBuilder builder{kernel, startup};

  struct Entry {
    const char* label;
    rt::FunctionSpec spec;
    core::SnapshotPolicy policy;
  };
  const Entry entries[] = {
      {"noop/nowarmup", exp::noop_spec(), core::SnapshotPolicy::no_warmup()},
      {"noop/warmup1", exp::noop_spec(), core::SnapshotPolicy::warmup(1)},
      {"markdown/nowarmup", exp::markdown_spec(),
       core::SnapshotPolicy::no_warmup()},
      {"image-resizer/nowarmup", exp::image_resizer_spec(),
       core::SnapshotPolicy::no_warmup()},
  };

  criu::DedupIndex index;
  exp::TextTable table{{"Snapshot", "Pages", "New pages", "Store total",
                        "Store unique", "Dedup ratio"}};
  std::uint64_t seed = 1;
  for (const Entry& e : entries) {
    const core::BakedSnapshot snap = bake(builder, e.spec, e.policy, seed++);
    const std::uint64_t pages = snap.stats.pages_dumped;
    const std::uint64_t fresh = index.add(snap.images);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2fx", index.stats().dedup_ratio());
    table.add_row({e.label, std::to_string(pages), std::to_string(fresh),
                   exp::fmt_mib(index.stats().total_bytes()),
                   exp::fmt_mib(index.stats().unique_bytes()), ratio});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("saved by content addressing: %s\n",
              exp::fmt_mib(index.stats().saved_bytes()).c_str());
  std::printf(
      "\nShape: the second and later snapshots contribute mostly their own\n"
      "app state — the ~13 MiB runtime base (heap + metaspace after\n"
      "bootstrap) is stored once for the whole fleet.\n");
  return 0;
}
