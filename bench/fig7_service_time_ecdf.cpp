// Figure 7 — Empirical CDFs of the service time for 200 requests applied to
// each function after initialization by Prebaking and Vanilla. The paper's
// claim to verify: "Both ECDFs pretty much coincide — the prebaking
// technique does not lead to any performance penalty after restore."
// This harness additionally checks that the response *bytes* are identical
// across techniques.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

using namespace prebake;

int main() {
  std::printf("== Figure 7: service-time ECDFs after start (200 requests) ==\n\n");

  const rt::FunctionSpec specs[] = {exp::noop_spec(), exp::markdown_spec(),
                                    exp::image_resizer_spec()};
  const double quantiles[] = {0.05, 0.25, 0.50, 0.75, 0.95, 0.99};

  exp::ParallelRunner runner;
  std::vector<exp::ServiceScenarioConfig> cells;
  for (const rt::FunctionSpec& spec : specs) {
    cells.push_back({spec, exp::Technique::kVanilla, 200, 7});
    cells.push_back({spec, exp::Technique::kPrebakeNoWarmup, 200, 8});
  }
  const std::vector<exp::ServiceScenarioResult> results =
      runner.run_service(cells);

  std::size_t idx = 0;
  for (const rt::FunctionSpec& spec : specs) {
    const exp::ServiceScenarioResult& vanilla = results[idx++];
    const exp::ServiceScenarioResult& prebaked = results[idx++];

    // Both replicas pay the lazy first request; compare the steady state.
    const std::vector<double> v{vanilla.service_ms.begin() + 1,
                                vanilla.service_ms.end()};
    const std::vector<double> p{prebaked.service_ms.begin() + 1,
                                prebaked.service_ms.end()};

    std::printf("-- %s --\n", spec.name.c_str());
    exp::TextTable table{{"quantile", "Vanilla", "Prebaking", "delta"}};
    for (double q : quantiles) {
      const double qv = stats::percentile(v, q);
      const double qp = stats::percentile(p, q);
      char label[16], dv[32];
      std::snprintf(label, sizeof label, "p%.0f", q * 100);
      std::snprintf(dv, sizeof dv, "%+.3f ms", qp - qv);
      table.add_row({label, exp::fmt_ms(qv, 3), exp::fmt_ms(qp, 3), dv});
    }
    std::printf("%s", table.to_string().c_str());

    const auto ks = stats::ks_test(v, p);
    std::printf("KS distance=%.4f p=%.3f -> distributions %s\n", ks.d,
                ks.p_value, ks.p_value > 0.05 ? "coincide" : "DIFFER");

    std::size_t identical = 0;
    const std::size_t n =
        std::min(vanilla.response_bodies.size(), prebaked.response_bodies.size());
    for (std::size_t i = 0; i < n; ++i)
      if (vanilla.response_bodies[i] == prebaked.response_bodies[i]) ++identical;
    std::printf("response equality: %zu/%zu identical bodies\n\n", identical, n);
  }

  std::printf("Paper: no service-time penalty after restore for any of the "
              "three functions.\n");
  return 0;
}
