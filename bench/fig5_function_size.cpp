// Figure 5 — Impact of the function size on start-up time (Vanilla).
// Synthetic functions: small (374 classes, ~2.8 MB), medium (574, ~9.2 MB),
// big (1574, ~41 MB); start-up measured to the first response; 95% CIs.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/bootstrap.hpp"

using namespace prebake;

int main() {
  std::printf("== Figure 5: Vanilla start-up vs function size "
              "(200 reps, 95%% CI) ==\n\n");

  const double paper_ms[] = {219.8, 456.0, 1621.0};
  exp::TextTable table{{"Size", "Classes", "Code", "Median", "95% CI", "Paper"}};
  std::vector<std::pair<std::string, double>> bars;

  const exp::SynthSize sizes[] = {exp::SynthSize::kSmall,
                                  exp::SynthSize::kMedium,
                                  exp::SynthSize::kBig};
  exp::ParallelRunner runner;
  std::vector<exp::ScenarioConfig> cells;
  for (const exp::SynthSize size : sizes) {
    exp::ScenarioConfig cfg;
    cfg.spec = exp::synthetic_spec(size);
    cfg.technique = exp::Technique::kVanilla;
    cfg.repetitions = 200;
    cfg.measure_first_response = true;
    cfg.seed = 42;
    cells.push_back(cfg);
  }
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);

  int i = 0;
  for (const exp::SynthSize size : sizes) {
    const rt::FunctionSpec& spec = cells[static_cast<std::size_t>(i)].spec;
    const exp::ScenarioResult& result = results[static_cast<std::size_t>(i)];
    const auto ci = stats::bootstrap_median_ci(result.startup_ms);

    char classes[32], code[32];
    std::snprintf(classes, sizeof classes, "%zu", spec.request_classes.size());
    std::snprintf(code, sizeof code, "%.1f MB",
                  static_cast<double>(spec.request_class_bytes()) / 1e6);
    table.add_row({exp::synth_size_name(size), classes, code,
                   exp::fmt_ms(ci.point), exp::fmt_interval(ci),
                   exp::fmt_ms(paper_ms[i], 1)});
    bars.emplace_back(exp::synth_size_name(size), ci.point);
    ++i;
  }

  std::printf("%s\n", table.to_string().c_str());
  for (const auto& [label, ms] : bars)
    std::printf("  %-8s |%s| %8.2f ms\n", label.c_str(),
                exp::ascii_bar(ms, bars.back().second).c_str(), ms);
  std::printf("\nPaper: start-up grows with code size because the JVM lazily "
              "loads and compiles the function code (Section 4.2.2).\n");
  return 0;
}
