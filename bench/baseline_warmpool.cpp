// Baseline comparison — warm pools vs prebaking.
//
// The paper's Section 1/6 frames the trade-off: "by maintaining an idle pool
// of function instances, the platform addresses surges with no performance
// penalty ... [but] this strategy increases the platform's operational cost"
// (Lin & Glikson [14]). This bench implements that baseline and puts it
// against prebaking under identical bursty Poisson traffic, reporting both
// user-visible latency AND the provider-side idle-memory bill.
//
// Policies:
//   on-demand/vanilla   — scale from zero with fork-exec starts
//   on-demand/prebaked  — scale from zero with snapshot restores (the paper)
//   warm-pool-4/vanilla — keep >= 4 idle replicas alive at all times [14]
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/load_generator.hpp"
#include "faas/platform.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

struct PolicyResult {
  std::string name;
  faas::OpenLoopResult load;
  std::uint64_t cold_starts = 0;
};

PolicyResult run_policy(const std::string& name, faas::StartMode mode,
                        std::uint32_t min_idle) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(30);  // aggressive reclaim
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 4242};
  platform.resources().add_node("node-1", 16ull << 30);

  platform.deploy(exp::markdown_spec(), mode, core::SnapshotPolicy::warmup(1));
  if (min_idle > 0) platform.set_min_idle("markdown-render", min_idle);

  // Bursty traffic: the open-loop driver with a modest mean rate but long
  // inter-burst gaps (rate 2 Hz over 5 min with 30 s idle-timeout means the
  // pool drains between bursts unless pinned).
  faas::OpenLoopConfig load;
  load.function = "markdown-render";
  load.rate_hz = 2.0;
  load.duration = sim::Duration::seconds(300);
  load.seed = 99;

  PolicyResult result;
  result.name = name;
  result.load = run_open_loop(platform, load);
  result.cold_starts = platform.stats().cold_starts;
  return result;
}

}  // namespace

int main() {
  std::printf("== Baseline: warm pool [14] vs prebaking, identical Poisson "
              "traffic ==\n\n");

  const PolicyResult results[] = {
      run_policy("on-demand/vanilla", faas::StartMode::kVanilla, 0),
      run_policy("on-demand/prebaked", faas::StartMode::kPrebaked, 0),
      run_policy("warm-pool-4/vanilla", faas::StartMode::kVanilla, 4),
  };

  exp::TextTable table{{"Policy", "Requests", "Cold starts", "p50", "p95",
                        "p99", "Idle+busy memory (GiB*s)"}};
  for (const PolicyResult& r : results) {
    std::vector<double> totals;
    for (const auto& m : r.load.metrics) totals.push_back(m.total.to_millis());
    char mem[32];
    std::snprintf(mem, sizeof mem, "%.1f",
                  r.load.mem_byte_seconds / (1024.0 * 1024.0 * 1024.0));
    table.add_row({r.name, std::to_string(r.load.responses_ok),
                   std::to_string(r.cold_starts),
                   exp::fmt_ms(stats::percentile(totals, 0.50)),
                   exp::fmt_ms(stats::percentile(totals, 0.95)),
                   exp::fmt_ms(stats::percentile(totals, 0.99)), mem});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape: the warm pool buys low latency with always-on memory (the\n"
      "provider's cost, uncharged to users); prebaking gets most of that\n"
      "latency win while letting replicas scale to zero — the paper's core\n"
      "economic argument for snapshot-based starts.\n");
  return 0;
}
