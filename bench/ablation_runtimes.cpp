// Ablation D — other runtime environments (the paper's first future-work
// item, Section 7: "we plan to extend our evaluation to other runtimes
// environments such as Node.JS and Python ... the potential improvements
// remain unknown"). Compares the three prebaking variants across Java 8,
// Node 12 and CPython 3 cost profiles for a common function shape.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

exp::ScenarioConfig cell(exp::RuntimeKind kind, int code_mb,
                         exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::cross_runtime_spec(kind, code_mb);
  cfg.runtime = exp::runtime_profile(kind);
  cfg.technique = tech;
  cfg.repetitions = 60;
  cfg.measure_first_response = true;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Ablation D: prebaking across runtimes "
              "(Java 8 vs Node 12 vs CPython 3) ==\n\n");

  const exp::RuntimeKind kinds[] = {exp::RuntimeKind::kJava8,
                                    exp::RuntimeKind::kNode12,
                                    exp::RuntimeKind::kPython3};
  exp::ParallelRunner runner;
  for (const int code_mb : {3, 20}) {
    std::printf("-- function with %d MB of lazily loaded application code --\n",
                code_mb);
    std::vector<exp::ScenarioConfig> cells;
    for (const exp::RuntimeKind kind : kinds) {
      cells.push_back(cell(kind, code_mb, exp::Technique::kVanilla));
      cells.push_back(cell(kind, code_mb, exp::Technique::kPrebakeNoWarmup));
      cells.push_back(cell(kind, code_mb, exp::Technique::kPrebakeWarmup));
    }
    const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);

    exp::TextTable table{{"Runtime", "Vanilla", "PB-NOWarmup", "PB-Warmup",
                          "Warm speed-up"}};
    std::size_t base = 0;
    for (const exp::RuntimeKind kind : kinds) {
      const double vanilla = stats::median(results[base].startup_ms);
      const double nowarm = stats::median(results[base + 1].startup_ms);
      const double warm = stats::median(results[base + 2].startup_ms);
      base += 3;
      char ratio[16];
      std::snprintf(ratio, sizeof ratio, "%.0f%%", vanilla / warm * 100.0);
      table.add_row({exp::runtime_kind_name(kind), exp::fmt_ms(vanilla),
                     exp::fmt_ms(nowarm), exp::fmt_ms(warm), ratio});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "Shape: every runtime benefits, but the JVM benefits most — it has the\n"
      "longest bootstrap AND pays JIT compilation on the first request, both\n"
      "of which the warmed snapshot eliminates. CPython (no JIT) still saves\n"
      "its bootstrap and module imports; V8 sits in between.\n");
  return 0;
}
