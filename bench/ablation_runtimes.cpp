// Ablation D — other runtime environments (the paper's first future-work
// item, Section 7: "we plan to extend our evaluation to other runtimes
// environments such as Node.JS and Python ... the potential improvements
// remain unknown"). Compares the three prebaking variants across Java 8,
// Node 12 and CPython 3 cost profiles for a common function shape.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

double median_ms(exp::RuntimeKind kind, int code_mb, exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::cross_runtime_spec(kind, code_mb);
  cfg.runtime = exp::runtime_profile(kind);
  cfg.technique = tech;
  cfg.repetitions = 60;
  cfg.measure_first_response = true;
  cfg.seed = 42;
  return stats::median(exp::run_startup_scenario(cfg).startup_ms);
}

}  // namespace

int main() {
  std::printf("== Ablation D: prebaking across runtimes "
              "(Java 8 vs Node 12 vs CPython 3) ==\n\n");

  for (const int code_mb : {3, 20}) {
    std::printf("-- function with %d MB of lazily loaded application code --\n",
                code_mb);
    exp::TextTable table{{"Runtime", "Vanilla", "PB-NOWarmup", "PB-Warmup",
                          "Warm speed-up"}};
    for (const exp::RuntimeKind kind :
         {exp::RuntimeKind::kJava8, exp::RuntimeKind::kNode12,
          exp::RuntimeKind::kPython3}) {
      const double vanilla = median_ms(kind, code_mb, exp::Technique::kVanilla);
      const double nowarm =
          median_ms(kind, code_mb, exp::Technique::kPrebakeNoWarmup);
      const double warm = median_ms(kind, code_mb, exp::Technique::kPrebakeWarmup);
      char ratio[16];
      std::snprintf(ratio, sizeof ratio, "%.0f%%", vanilla / warm * 100.0);
      table.add_row({exp::runtime_kind_name(kind), exp::fmt_ms(vanilla),
                     exp::fmt_ms(nowarm), exp::fmt_ms(warm), ratio});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "Shape: every runtime benefits, but the JVM benefits most — it has the\n"
      "longest bootstrap AND pays JIT compilation on the first request, both\n"
      "of which the warmed snapshot eliminates. CPython (no JIT) still saves\n"
      "its bootstrap and module imports; V8 sits in between.\n");
  return 0;
}
