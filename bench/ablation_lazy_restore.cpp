// Ablation F — eager vs lazy-pages (post-copy) restore.
//
// CRIU can defer page contents to a userfaultfd server, trading restore
// latency for first-touch faults — the direction later snapshot systems
// (e.g. record-and-prefetch working sets) push further. This ablation sweeps
// the eagerly restored working-set fraction for a large (resizer-class)
// snapshot and reports: time-to-ready, time to page in the remainder, and
// the break-even against an eager restore.
#include <cstdio>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/report.hpp"

using namespace prebake;

int main() {
  std::printf("== Ablation F: lazy-pages restore (working-set fraction sweep) "
              "==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 2 * 1024 * 1024);

  // A 100 MiB-class process, like the Image Resizer snapshot.
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(pid, 100ull * 1024 * 1024,
                                     os::Prot::kReadWrite, os::VmaKind::kAnon,
                                     "[heap]",
                                     std::make_shared<os::PatternSource>(3),
                                     false);
  kernel.fault_in_all(pid, heap);
  criu::DumpOptions dopts;
  dopts.fs_prefix = "/snap/lazy/";
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  exp::TextTable table{{"Eager fraction", "Time to ready", "Deferred pages",
                        "Page-in remainder", "Ready + full page-in"}};
  for (const double fraction : {1.0, 0.5, 0.25, 0.1, 0.05, 0.0}) {
    criu::RestoreOptions opts;
    opts.fs_prefix = "/snap/lazy/";
    if (fraction < 1.0) opts.paging = criu::PagingPolicy::lazy(fraction);

    const sim::TimePoint t0 = sim.now();
    const criu::RestoreResult r = criu::Restorer{kernel}.restore(dump.images, opts);
    const double ready_ms = (sim.now() - t0).to_millis();

    double page_in_ms = 0.0;
    std::uint64_t deferred = 0;
    if (r.lazy_server != nullptr) {
      deferred = r.lazy_server->pending_pages();
      const sim::TimePoint t1 = sim.now();
      r.lazy_server->page_in_all();
      page_in_ms = (sim.now() - t1).to_millis();
    }
    kernel.kill_process(r.pid);
    kernel.reap(r.pid);

    char frac[16];
    std::snprintf(frac, sizeof frac, "%.0f%%", fraction * 100.0);
    table.add_row({frac, exp::fmt_ms(ready_ms), std::to_string(deferred),
                   exp::fmt_ms(page_in_ms), exp::fmt_ms(ready_ms + page_in_ms)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape: time-to-ready shrinks with the eager fraction, but the uffd\n"
      "round trip (~9 us/page) makes fully-lazy total cost exceed the eager\n"
      "restore — lazy restore pays off only when most pages are never\n"
      "touched again, e.g. short-lived invocations over large heaps.\n");
  return 0;
}
