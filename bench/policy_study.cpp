// Keep-alive policy study (EXPERIMENTS.md): four replica-lifecycle policies
// under the same streaming Zipf workload — 10^6 requests over a 1000-function
// fleet — measuring the cold-start rate, tail latency, and the provider's
// memory bill (byte-seconds of placed replicas):
//
//   prebaked  — snapshot restore on every cold start, 60 s idle reclaim
//   keepalive — Vanilla starts, fixed 10-minute keep-alive (the public-
//               platform default the paper argues against)
//   warmpool  — Vanilla starts, 60 s reclaim, min-idle pool of one replica
//               per function
//   cowclone  — prebaked + content-addressed page store (COW template
//               restores, DESIGN.md §6f)
//
// `--check` is the regression gate: it re-runs the sweep at 1 and 4 engine
// threads, requires bit-identical JSON, asserts the policy ordering
// (warmpool <= keepalive <= prebaked on cold-start rate; keepalive pays more
// byte-seconds than prebaked; prebaked colds are faster than Vanilla colds),
// and then drives the 10^7-request / 2000-function scenario to completion,
// asserting the engine's peak footprint stays O(active replicas + functions)
// rather than O(trace length).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scale.hpp"

using namespace prebake;

namespace {

struct Cell {
  exp::KeepAlivePolicy policy;
  double zipf_s;
};

constexpr Cell kCells[] = {
    {exp::KeepAlivePolicy::kPrebaked, 0.6},
    {exp::KeepAlivePolicy::kKeepAlive, 0.6},
    {exp::KeepAlivePolicy::kWarmPool, 0.6},
    {exp::KeepAlivePolicy::kCowClone, 0.6},
    {exp::KeepAlivePolicy::kPrebaked, 1.0},
    {exp::KeepAlivePolicy::kKeepAlive, 1.0},
    {exp::KeepAlivePolicy::kWarmPool, 1.0},
    {exp::KeepAlivePolicy::kCowClone, 1.0},
};

struct CellResult {
  Cell cell;
  exp::ScaleScenarioResult r;
};

exp::ScaleScenarioConfig study_config(const Cell& cell) {
  exp::ScaleScenarioConfig cfg;
  cfg.functions = 1000;
  cfg.requests = 1'000'000;
  // Low aggregate rate so the Zipf tail's inter-arrival gaps straddle both
  // the 60 s reclaim and the 600 s keep-alive — the regime where the
  // policies actually differ. (At high rate everything stays warm.)
  cfg.rate_hz = 20.0;
  cfg.zipf_s = cell.zipf_s;
  cfg.policy = cell.policy;
  cfg.seed = 42;
  return cfg;
}

std::vector<CellResult> run_sweep(int threads) {
  const exp::ParallelRunner runner{threads};
  std::vector<CellResult> results{std::size(kCells)};
  runner.for_each(std::size(kCells), [&](std::size_t i) {
    exp::ScaleScenarioConfig cfg = study_config(kCells[i]);
    results[i] = CellResult{kCells[i], exp::run_scale_scenario(cfg)};
  });
  return results;
}

std::string to_json(const std::vector<CellResult>& results) {
  std::string out = "{\n  \"cells\": [\n";
  char buf[768];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Cell& c = results[i].cell;
    const exp::ScaleScenarioResult& r = results[i].r;
    std::snprintf(
        buf, sizeof buf,
        "    {\"policy\": \"%s\", \"zipf_s\": %.1f, \"requests\": %llu, "
        "\"functions\": %u, \"responses_ok\": %llu, \"rejected\": %llu, "
        "\"fallback_served\": %llu, \"cold_starts\": %llu, "
        "\"cold_start_rate\": %.6f, \"total_p50_ms\": %.3f, "
        "\"total_p99_ms\": %.3f, \"total_p999_ms\": %.3f, "
        "\"cold_startup_p50_ms\": %.3f, \"cold_startup_p99_ms\": %.3f, "
        "\"mem_byte_seconds\": %.6e, \"replicas_started\": %llu, "
        "\"peak_replicas\": %zu, \"peak_pending_events\": %zu, "
        "\"makespan_s\": %.3f}%s\n",
        exp::keep_alive_policy_name(c.policy), c.zipf_s,
        static_cast<unsigned long long>(r.requests), r.functions_deployed,
        static_cast<unsigned long long>(r.responses_ok),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.fallback_served),
        static_cast<unsigned long long>(r.cold_starts), r.cold_start_rate,
        r.total_p50_ms, r.total_p99_ms, r.total_p999_ms, r.cold_startup_p50_ms,
        r.cold_startup_p99_ms, r.mem_byte_seconds,
        static_cast<unsigned long long>(r.replicas_started), r.peak_replicas,
        r.peak_pending_events, r.makespan_s,
        i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "policy_study: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(body.c_str(), f);
  std::fclose(f);
}

std::string fmt_gb_h(double byte_seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f GB·h", byte_seconds / 3.6e12);
  return buf;
}

void print_table(const std::vector<CellResult>& results) {
  exp::TextTable table{{"Policy", "Zipf s", "Cold rate", "p50", "p99",
                        "p99.9", "Cold p50", "Memory"}};
  for (const CellResult& cr : results) {
    const exp::ScaleScenarioResult& r = cr.r;
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.2f%%", 100.0 * r.cold_start_rate);
    char s[16];
    std::snprintf(s, sizeof s, "%.1f", cr.cell.zipf_s);
    table.add_row({exp::keep_alive_policy_name(cr.cell.policy), s, rate,
                   exp::fmt_ms(r.total_p50_ms), exp::fmt_ms(r.total_p99_ms),
                   exp::fmt_ms(r.total_p999_ms),
                   exp::fmt_ms(r.cold_startup_p50_ms),
                   fmt_gb_h(r.mem_byte_seconds)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

const CellResult* find(const std::vector<CellResult>& results,
                       exp::KeepAlivePolicy policy, double s) {
  for (const CellResult& cr : results)
    if (cr.cell.policy == policy && cr.cell.zipf_s == s) return &cr;
  return nullptr;
}

// Policy-ordering gates per skew value; returns violations (0 = pass).
int check_gates(const std::vector<CellResult>& results) {
  int failures = 0;
  for (double s : {0.6, 1.0}) {
    const exp::ScaleScenarioResult& pre =
        find(results, exp::KeepAlivePolicy::kPrebaked, s)->r;
    const exp::ScaleScenarioResult& keep =
        find(results, exp::KeepAlivePolicy::kKeepAlive, s)->r;
    const exp::ScaleScenarioResult& pool =
        find(results, exp::KeepAlivePolicy::kWarmPool, s)->r;
    const exp::ScaleScenarioResult& cow =
        find(results, exp::KeepAlivePolicy::kCowClone, s)->r;

    // Cold-start frequency: the pool never misses, the long keep-alive
    // rarely misses, short-reclaim prebaking misses on every tail gap.
    if (pool.cold_start_rate > keep.cold_start_rate + 1e-3) {
      std::printf("FAIL s=%.1f: warmpool cold rate %.4f > keepalive %.4f\n",
                  s, pool.cold_start_rate, keep.cold_start_rate);
      ++failures;
    }
    if (keep.cold_start_rate > pre.cold_start_rate + 1e-3) {
      std::printf("FAIL s=%.1f: keepalive cold rate %.4f > prebaked %.4f\n",
                  s, keep.cold_start_rate, pre.cold_start_rate);
      ++failures;
    }
    if (pre.cold_start_rate < 0.01) {
      std::printf("FAIL s=%.1f: prebaked cold rate %.4f < 1%% — the regime "
                  "is not exercising cold starts\n",
                  s, pre.cold_start_rate);
      ++failures;
    }
    // The provider's bill: keeping replicas warm is what costs memory.
    if (keep.mem_byte_seconds <= pre.mem_byte_seconds) {
      std::printf("FAIL s=%.1f: keepalive byte-seconds %.3e <= prebaked "
                  "%.3e\n",
                  s, keep.mem_byte_seconds, pre.mem_byte_seconds);
      ++failures;
    }
    // The paper's claim: a restored cold start beats a Vanilla cold start.
    if (pre.cold_startup_p50_ms >= keep.cold_startup_p50_ms) {
      std::printf("FAIL s=%.1f: prebaked cold p50 %.2f ms >= Vanilla cold "
                  "p50 %.2f ms\n",
                  s, pre.cold_startup_p50_ms, keep.cold_startup_p50_ms);
      ++failures;
    }
    // §6f: COW template clones undercut even the snapshot restore.
    if (cow.cold_startup_p50_ms > pre.cold_startup_p50_ms) {
      std::printf("FAIL s=%.1f: cowclone cold p50 %.2f ms > prebaked "
                  "%.2f ms\n",
                  s, cow.cold_startup_p50_ms, pre.cold_startup_p50_ms);
      ++failures;
    }
  }
  return failures;
}

// The 10^7-request completion gate: the streaming engine must sustain an
// order-of-magnitude larger trace with a footprint that tracks the active
// set, not the trace.
int check_scale10m() {
  exp::ScaleScenarioConfig cfg;
  cfg.functions = 2000;
  cfg.requests = 10'000'000;
  cfg.rate_hz = 200.0;
  cfg.zipf_s = 1.0;
  cfg.policy = exp::KeepAlivePolicy::kPrebaked;
  cfg.seed = 42;
  std::printf("scale gate: %u functions, %llu requests...\n", cfg.functions,
              static_cast<unsigned long long>(cfg.requests));
  const exp::ScaleScenarioResult r = exp::run_scale_scenario(cfg);

  int failures = 0;
  if (r.responses_ok + r.rejected != cfg.requests) {
    std::printf("FAIL: %llu ok + %llu rejected != %llu issued\n",
                static_cast<unsigned long long>(r.responses_ok),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(cfg.requests));
    ++failures;
  }
  // O(active replicas + functions), not O(requests): the pending-event and
  // replica peaks must be explained by the active set with a constant
  // factor, five orders of magnitude below the trace length.
  const std::size_t budget = 64 * (r.peak_replicas + cfg.functions);
  if (r.peak_pending_events > budget) {
    std::printf("FAIL: peak pending events %zu > 64*(replicas+functions) "
                "= %zu\n",
                r.peak_pending_events, budget);
    ++failures;
  }
  if (r.peak_replicas > 2 * cfg.functions) {
    std::printf("FAIL: peak replicas %zu > 2*functions\n", r.peak_replicas);
    ++failures;
  }
  std::printf("scale gate: ok=%llu cold_rate=%.4f peak_events=%zu "
              "peak_replicas=%zu\n",
              static_cast<unsigned long long>(r.responses_ok),
              r.cold_start_rate, r.peak_pending_events, r.peak_replicas);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_policy_study.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: policy_study [--out FILE] [--check]\n");
      return 2;
    }
  }

  std::printf("== Keep-alive policy study: 10^6-request Zipf fleet "
              "(EXPERIMENTS.md) ==\n\n");

  if (check) {
    const std::vector<CellResult> serial = run_sweep(1);
    const std::vector<CellResult> parallel = run_sweep(4);
    const std::string a = to_json(serial);
    const std::string b = to_json(parallel);
    print_table(serial);
    int failures = check_gates(serial);
    if (a != b) {
      std::printf("FAIL: sweep is not bit-identical across engine threads\n");
      ++failures;
    }
    failures += check_scale10m();
    write_file(out, a);
    std::printf("wrote %s\n", out.c_str());
    std::printf("%s\n", failures == 0 ? "CHECK PASSED" : "CHECK FAILED");
    return failures == 0 ? 0 : 1;
  }

  const std::vector<CellResult> results = run_sweep(0);
  print_table(results);
  write_file(out, to_json(results));
  std::printf("wrote %s\n", out.c_str());
  std::printf(
      "\nShape: prebaking trades a higher cold-start *frequency* (short\n"
      "reclaim) for a ~8x cheaper cold start and a fraction of the\n"
      "keep-alive policies' memory byte-seconds; the COW page store makes\n"
      "the restore itself cheaper still.\n");
  return 0;
}
