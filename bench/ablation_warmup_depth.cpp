// Ablation C — snapshot-point sweep (Section 3.1: "the prebaking technique
// allows the creation of snapshots at any point of the function setup...
// this opens room for optimizing the snapshot generation"). Sweeps the
// number of warm-up requests served before checkpointing and reports
// snapshot size, bake time, and the resulting replica start-up.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

int main() {
  std::printf("== Ablation C: warm-up depth before the snapshot ==\n\n");

  exp::TextTable table{{"Warm-up requests", "Snapshot size", "Bake time",
                        "Start-up median", "vs Vanilla"}};

  // Cell 0 is the Vanilla baseline for the ratio column; the rest sweep the
  // warm-up depth.
  exp::ScenarioConfig base;
  base.spec = exp::synthetic_spec(exp::SynthSize::kMedium);
  base.technique = exp::Technique::kVanilla;
  base.repetitions = 40;
  base.measure_first_response = true;
  base.seed = 42;

  const std::uint32_t depths[] = {0u, 1u, 2u, 4u, 8u, 16u, 32u};
  std::vector<exp::ScenarioConfig> cells{base};
  for (const std::uint32_t depth : depths) {
    exp::ScenarioConfig cfg = base;
    cfg.technique = depth == 0 ? exp::Technique::kPrebakeNoWarmup
                               : exp::Technique::kPrebakeWarmup;
    cfg.warmup_requests = depth == 0 ? 1 : depth;
    cells.push_back(cfg);
  }
  exp::ParallelRunner runner;
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);
  const double vanilla_ms = stats::median(results[0].startup_ms);

  std::size_t idx = 1;
  for (const std::uint32_t depth : depths) {
    const exp::ScenarioResult& result = results[idx++];
    const double median = stats::median(result.startup_ms);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.0f%%", vanilla_ms / median * 100.0);
    table.add_row({std::to_string(depth),
                   exp::fmt_mib(result.snapshot_nominal_bytes),
                   exp::fmt_ms(result.bake_time_ms), exp::fmt_ms(median),
                   ratio});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Vanilla baseline: %.2f ms.\n", vanilla_ms);
  std::printf("Shape: the first warm-up request does almost all the work "
              "(it forces lazy load + JIT);\nfurther requests barely change "
              "the snapshot — which is why the paper warms with one.\n");
  return 0;
}
