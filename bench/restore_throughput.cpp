// Restore-throughput hot-path bench (DESIGN.md §6g): how many restores per
// second the *host* can execute — the wall-clock cost of the simulation
// engine itself, not the simulated restore latency (which must not change).
//
// Sweeps snapshot sizes over three restore modes:
//
//   full-eager — every payload page installed during the restore call
//   lazy       — 25% working set eager, tail handed to the uffd server
//   cow-clone  — template already frozen on the node; restore = COW clone
//
// Each cell reports wall-clock restores/sec plus deterministic fields
// (simulated per-restore duration, pages, and a fingerprint of the restored
// process state). `--check` is the regression gate: it runs the sweep at 1
// and 4 engine threads, requires the deterministic fields bit-identical, and
// enforces >= 5x restores/sec over the recorded pre-PR baseline (decode-copy
// era, captured on the reference container; see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "criu/dump.hpp"
#include "criu/page_store.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

struct Cell {
  const char* mode;  // "full-eager" | "lazy" | "cow-clone"
  int heap_mib;
};

constexpr Cell kCells[] = {
    {"full-eager", 16}, {"full-eager", 64}, {"lazy", 16},
    {"lazy", 64},       {"cow-clone", 16},  {"cow-clone", 64},
};

// Pre-PR restores/sec on the reference container (per-page replay loop,
// decode-copy image path), recorded with this same bench built against the
// pre-PR tree — the denominators of the --check speedup gate. Keyed in
// kCells order.
constexpr double kBaselineRestoresPerSec[] = {
    64694.0, 18855.0, 60934.0, 17305.0, 35591.0, 9309.0,
};
constexpr double kMinSpeedup = 5.0;

// Timed repetitions per cell. The simulated durations are rep-independent
// after the first (steady-state warm fs), so reps only trade wall-clock
// noise for bench runtime.
constexpr int kReps = 400;

struct CellResult {
  const char* mode = "";
  int heap_mib = 0;
  double restores_per_sec = 0.0;  // wall-clock; excluded from determinism
  double sim_ms = 0.0;            // simulated duration of a steady-state restore
  std::uint64_t pages_restored = 0;
  std::uint64_t state_fingerprint = 0;
};

// Order-sensitive hash of the restored process's full state: VMA layout,
// residency bitmaps, and the content digest of every resident page. Two
// restores with equal fingerprints restored bit-identical processes.
std::uint64_t fingerprint(const os::Process& proc) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (const os::Thread& t : proc.threads()) {
    mix(static_cast<std::uint64_t>(t.tid));
    for (const std::uint64_t r : t.regs) mix(r);
  }
  for (const os::Vma& vma : proc.mm().vmas()) {
    mix(vma.start);
    mix(vma.length);
    mix(static_cast<std::uint64_t>(vma.prot));
    mix(static_cast<std::uint64_t>(vma.kind));
    const std::uint64_t n = vma.page_count();
    for (std::uint64_t p = 0; p < n; ++p) {
      if (!vma.present[p]) continue;
      mix(p);
      mix(vma.source->page_digest(p));
    }
  }
  return h;
}

CellResult run_cell(const Cell& cell) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 1024 * 1024);

  // Bake the workload: a process with `heap_mib` of deterministic pattern
  // pages, dumped to a persisted image directory.
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(
      pid, static_cast<std::uint64_t>(cell.heap_mib) * 1024 * 1024,
      os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
      std::make_shared<os::PatternSource>(0x9e11 + cell.heap_mib), false);
  kernel.fault_in_all(pid, heap, /*write=*/true);
  criu::DumpOptions dopts;
  dopts.fs_prefix = "/img/";
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  criu::RestoreOptions opts;
  opts.fs_prefix = "/img/";
  const bool lazy = std::strcmp(cell.mode, "lazy") == 0;
  const bool clone = std::strcmp(cell.mode, "cow-clone") == 0;
  if (lazy) opts.paging = criu::PagingPolicy::lazy();

  criu::PageStore store;
  if (clone) {
    opts.page_store = &store;
    opts.store_key = "/img/";
    // Materialize the template outside the timed loop; every timed restore
    // below is a COW clone of it.
    const criu::RestoreResult first =
        criu::Restorer{kernel}.restore(dump.images, opts);
    kernel.kill_process(first.pid);
    kernel.reap(first.pid);
  }

  CellResult out;
  out.mode = cell.mode;
  out.heap_mib = cell.heap_mib;

  criu::Restorer restorer{kernel};
  // Untimed warm-up restore: first restore pays the simulated cold reads and
  // the host-side decode; steady state is what the throughput gate measures.
  {
    const criu::RestoreResult r = restorer.restore(dump.images, opts);
    kernel.kill_process(r.pid);
    kernel.reap(r.pid);
  }

  // The clock covers restore + kill + reap only. The last-rep fingerprint is
  // a determinism artifact — it re-hashes every resident page, which costs
  // orders of magnitude more than the restore under test and would otherwise
  // swamp the thing being measured.
  std::chrono::steady_clock::duration timed{};
  for (int i = 0; i < kReps; ++i) {
    const sim::TimePoint s0 = sim.now();
    const auto t0 = std::chrono::steady_clock::now();
    const criu::RestoreResult r = restorer.restore(dump.images, opts);
    timed += std::chrono::steady_clock::now() - t0;
    if (i + 1 == kReps) {
      out.sim_ms = (sim.now() - s0).to_millis();
      out.pages_restored = r.pages_restored;
      out.state_fingerprint = fingerprint(kernel.process(r.pid));
    }
    const auto t1 = std::chrono::steady_clock::now();
    kernel.kill_process(r.pid);
    kernel.reap(r.pid);
    timed += std::chrono::steady_clock::now() - t1;
  }
  const double secs = std::chrono::duration<double>(timed).count();
  out.restores_per_sec = static_cast<double>(kReps) / secs;
  return out;
}

std::vector<CellResult> run_sweep(int threads) {
  const exp::ParallelRunner runner{threads};
  std::vector<CellResult> results{std::size(kCells)};
  runner.for_each(std::size(kCells),
                  [&](std::size_t i) { results[i] = run_cell(kCells[i]); });
  return results;
}

// `deterministic` drops the wall-clock field so the 1-vs-4-thread compare
// only sees simulation-derived values.
std::string to_json(const std::vector<CellResult>& results, bool deterministic) {
  std::string out = "{\n  \"cells\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    if (deterministic) {
      std::snprintf(buf, sizeof buf,
                    "    {\"mode\": \"%s\", \"heap_mib\": %d, "
                    "\"sim_ms\": %.6f, \"pages_restored\": %llu, "
                    "\"state_fingerprint\": \"%016llx\"}%s\n",
                    r.mode, r.heap_mib, r.sim_ms,
                    static_cast<unsigned long long>(r.pages_restored),
                    static_cast<unsigned long long>(r.state_fingerprint),
                    i + 1 < results.size() ? "," : "");
      out += buf;
    } else {
      std::snprintf(buf, sizeof buf,
                    "    {\"mode\": \"%s\", \"heap_mib\": %d, "
                    "\"restores_per_sec\": %.1f, \"sim_ms\": %.6f, "
                    "\"pages_restored\": %llu, "
                    "\"state_fingerprint\": \"%016llx\"}%s\n",
                    r.mode, r.heap_mib, r.restores_per_sec, r.sim_ms,
                    static_cast<unsigned long long>(r.pages_restored),
                    static_cast<unsigned long long>(r.state_fingerprint),
                    i + 1 < results.size() ? "," : "");
      out += buf;
    }
  }
  out += "  ]\n}\n";
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "restore_throughput: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(body.c_str(), f);
  std::fclose(f);
}

void print_table(const std::vector<CellResult>& results) {
  exp::TextTable table{{"Mode", "Heap", "Restores/s", "Sim per restore",
                        "Pages", "Baseline", "Speedup"}};
  char buf[64];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::snprintf(buf, sizeof buf, "%.0f", r.restores_per_sec);
    std::string rps = buf;
    std::snprintf(buf, sizeof buf, "%.0f", kBaselineRestoresPerSec[i]);
    std::string base = buf;
    std::snprintf(buf, sizeof buf, "%.1fx",
                  r.restores_per_sec / kBaselineRestoresPerSec[i]);
    table.add_row({r.mode, std::to_string(r.heap_mib) + " MiB", rps,
                   exp::fmt_ms(r.sim_ms), std::to_string(r.pages_restored),
                   base, buf});
  }
  std::printf("%s\n", table.to_string().c_str());
}

int check_gates(const std::vector<CellResult>& results) {
  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const double speedup = r.restores_per_sec / kBaselineRestoresPerSec[i];
    if (speedup < kMinSpeedup) {
      std::printf("FAIL: %s/%d MiB %.0f restores/s is %.1fx the pre-PR "
                  "baseline %.0f (need >= %.1fx)\n",
                  r.mode, r.heap_mib, r.restores_per_sec, speedup,
                  kBaselineRestoresPerSec[i], kMinSpeedup);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_restore_throughput.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: restore_throughput [--out FILE] [--check]\n");
      return 2;
    }
  }

  std::printf("== Restore throughput: zero-copy image path + batched page "
              "replay (DESIGN.md §6g) ==\n\n");

  if (check) {
    const std::vector<CellResult> serial = run_sweep(1);
    const std::vector<CellResult> parallel = run_sweep(4);
    print_table(serial);
    int failures = check_gates(serial);
    // Restored process state (and every other simulation-derived field) must
    // be bit-identical whether the cells ran inline or across four engine
    // threads; wall-clock throughput is exempt.
    const std::string a = to_json(serial, /*deterministic=*/true);
    const std::string b = to_json(parallel, /*deterministic=*/true);
    if (a != b) {
      std::printf("FAIL: sweep is not bit-identical across engine threads\n");
      ++failures;
    }
    write_file(out, to_json(serial, /*deterministic=*/false));
    std::printf("wrote %s\n", out.c_str());
    std::printf("%s\n", failures == 0 ? "CHECK PASSED" : "CHECK FAILED");
    return failures == 0 ? 0 : 1;
  }

  const std::vector<CellResult> results = run_sweep(0);
  print_table(results);
  write_file(out, to_json(results, /*deterministic=*/false));
  std::printf("wrote %s\n", out.c_str());
  std::printf(
      "\nShape: restores/sec is host wall-clock (the harness's own speed);\n"
      "sim_ms is the simulated restore latency, which this bench must never\n"
      "change. The --check gate compares against the recorded pre-PR\n"
      "baseline of the per-page replay loop.\n");
  return 0;
}
