// Table 1 — start-up time intervals (ms) for functions with small, medium
// and big code bases under Vanilla, PB-NOWarmup and PB-Warmup; 95%
// bootstrap CIs over 200 repetitions, exactly as the paper reports.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/bootstrap.hpp"

using namespace prebake;

namespace {

exp::ScenarioConfig cell(exp::SynthSize size, exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::synthetic_spec(size);
  cfg.technique = tech;
  cfg.repetitions = 200;
  cfg.measure_first_response = true;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Table 1: start-up time intervals (ms), 95%% confidence, "
              "200 reps ==\n\n");

  // The paper's reported intervals for side-by-side comparison.
  const char* paper[3][3] = {
      {"(219.25;220.32)", "(172.12;172.80)", "(54.06;54.75)"},
      {"(455.45;456.64)", "(360.51;361.24)", "(63.46;63.99)"},
      {"(1619.91;1622.08)", "(1339.90;1340.98)", "(83.62;84.35)"},
  };

  exp::TextTable table{{"Size", "Vanilla", "PB-NOWarmup", "PB-Warmup", "Source"}};
  const exp::SynthSize sizes[] = {exp::SynthSize::kSmall,
                                  exp::SynthSize::kMedium,
                                  exp::SynthSize::kBig};
  exp::ParallelRunner runner;
  std::vector<exp::ScenarioConfig> cells;
  for (int i = 0; i < 3; ++i) {
    cells.push_back(cell(sizes[i], exp::Technique::kVanilla));
    cells.push_back(cell(sizes[i], exp::Technique::kPrebakeNoWarmup));
    cells.push_back(cell(sizes[i], exp::Technique::kPrebakeWarmup));
  }
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);
  for (int i = 0; i < 3; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * 3;
    const auto vanilla = stats::bootstrap_median_ci(results[base].startup_ms);
    const auto nowarm = stats::bootstrap_median_ci(results[base + 1].startup_ms);
    const auto warm = stats::bootstrap_median_ci(results[base + 2].startup_ms);
    table.add_row({exp::synth_size_name(sizes[i]), exp::fmt_interval(vanilla),
                   exp::fmt_interval(nowarm), exp::fmt_interval(warm),
                   "measured"});
    table.add_row({exp::synth_size_name(sizes[i]), paper[i][0], paper[i][1],
                   paper[i][2], "paper"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("PB-Warmup grows only ~30 ms from small to big (snapshot read),"
              "\nwhile Vanilla grows ~1400 ms (class loading + JIT).\n");
  return 0;
}
