// Figure 3 — Comparison of serverless instance initialization techniques
// using the NOOP, Markdown Render and Image Resizer functions. 200
// repetitions per cell; error bars are bootstrap 95% CIs of the median.
// Also prints the Section 4.2 statistics: Shapiro-Wilk normality,
// Wilcoxon-Mann-Whitney significance, and the Hodges-Lehmann median
// difference CI (the paper reports [40.35, 42.29] ms for NOOP).
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/factorial.hpp"
#include "stats/mann_whitney.hpp"
#include "stats/shapiro_wilk.hpp"

using namespace prebake;

namespace {

exp::ScenarioConfig cell(const rt::FunctionSpec& spec, exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = spec;
  cfg.technique = tech;
  cfg.repetitions = 200;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Figure 3: start-up time, Vanilla vs Prebaking "
              "(200 reps, bootstrap 95%% CI of the median) ==\n\n");

  struct Fn {
    const char* label;
    rt::FunctionSpec spec;
    double paper_vanilla_ms, paper_prebake_ms;
  };
  const Fn fns[] = {
      {"NOOP", exp::noop_spec(), 103.3, 62.0},
      {"Markdown Render", exp::markdown_spec(), 100.0, 53.0},
      {"Image Resizer", exp::image_resizer_spec(), 310.0, 87.0},
  };

  // All six cells dispatch together; results[2*i] is fns[i] under Vanilla,
  // results[2*i+1] under PB-NOWarmup.
  exp::ParallelRunner runner;
  std::vector<exp::ScenarioConfig> cells;
  for (const Fn& fn : fns) {
    cells.push_back(cell(fn.spec, exp::Technique::kVanilla));
    cells.push_back(cell(fn.spec, exp::Technique::kPrebakeNoWarmup));
  }
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);

  exp::TextTable table{{"Function", "Technique", "Median", "95% CI",
                        "Paper", "Improvement"}};
  for (std::size_t f = 0; f < std::size(fns); ++f) {
    const Fn& fn = fns[f];
    const exp::ScenarioResult& vanilla = results[2 * f];
    const exp::ScenarioResult& prebake = results[2 * f + 1];
    const auto vi = stats::bootstrap_median_ci(vanilla.startup_ms);
    const auto pi = stats::bootstrap_median_ci(prebake.startup_ms);
    const double improvement = 1.0 - pi.point / vi.point;

    table.add_row({fn.label, "Vanilla", exp::fmt_ms(vi.point),
                   exp::fmt_interval(vi), exp::fmt_ms(fn.paper_vanilla_ms, 1),
                   "-"});
    table.add_row({fn.label, "Prebaking", exp::fmt_ms(pi.point),
                   exp::fmt_interval(pi), exp::fmt_ms(fn.paper_prebake_ms, 1),
                   exp::fmt_percent(improvement, 1)});

    // Section 4.2 statistics.
    const auto sw_v = stats::shapiro_wilk(vanilla.startup_ms);
    const auto sw_p = stats::shapiro_wilk(prebake.startup_ms);
    const auto mw = stats::mann_whitney_u(vanilla.startup_ms, prebake.startup_ms);
    const auto hl = stats::hodges_lehmann_shift(vanilla.startup_ms,
                                                prebake.startup_ms);
    std::printf("%-16s Shapiro-Wilk p: vanilla=%.4f prebake=%.4f | "
                "Mann-Whitney p=%.2e | median diff CI [%.2f, %.2f] ms\n",
                fn.label, sw_v.p_value, sw_p.p_value, mw.p_value, hl.lo, hl.hi);
  }

  std::printf("\n%s\n", table.to_string().c_str());

  // The paper's 2^2 factorial design (Section 4.1): factor A = start-up
  // method (Vanilla -> Prebaking), factor B = function (NOOP -> Resizer).
  // The four corners are cells already measured above (the engine is
  // deterministic, so re-running them would reproduce the same vectors).
  const auto& y00 = results[0].startup_ms;  // NOOP, Vanilla
  const auto& y10 = results[1].startup_ms;  // NOOP, PB-NOWarmup
  const auto& y01 = results[4].startup_ms;  // Resizer, Vanilla
  const auto& y11 = results[5].startup_ms;  // Resizer, PB-NOWarmup
  const stats::Factorial2x2 design = stats::factorial_2x2(y00, y10, y01, y11);
  std::printf("2^2 factorial (A=technique, B=function): q0=%.1f qA=%.1f "
              "qB=%.1f qAB=%.1f\n",
              design.q0, design.qa, design.qb, design.qab);
  std::printf("variation explained: technique %.1f%%, function %.1f%%, "
              "interaction %.1f%%, error %.2f%%\n\n",
              design.frac_a * 100, design.frac_b * 100, design.frac_ab * 100,
              design.frac_error * 100);

  std::printf("Paper headline: NOOP -40%%, Markdown -47%%, Image Resizer "
              "-71%% (Section 4.2).\n");
  return 0;
}
