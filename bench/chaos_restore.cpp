// Resilient restore under injected faults (chaos sweep).
//
// The paper assumes every CRIU restore succeeds; production snapshot stores
// see corrupt images, flaky disks, registry disconnects and node crashes.
// This bench drives the mixed Poisson cluster workload while sweeping the
// injected fault rate across the restore pipeline (bit-flips caught by the
// per-record CRCs, transient read errors, truncated persists, registry
// stalls/disconnects, mid-restore node crashes) with the resilience
// machinery on: bounded retries, Vanilla fallback, snapshot quarantine +
// re-bake, node recovery. Reported per rate: availability, fallback rate,
// and latency percentiles.
//
//   --check  gates on the default fault rate (5%): every request answered,
//            availability >= 99%.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

// The swept knob is a single "fault pressure" r, fanned out across the
// sites: corruption and stalls at r, read errors / truncation / disconnects
// at r/2, node crashes at r/10 (a crash takes out every replica on the
// node, so equal pressure there would swamp the rest of the mix).
os::FaultPlan plan_at(double r, std::uint64_t seed) {
  os::FaultPlan plan;
  plan.seed = seed;
  plan.image_corruption_rate = r;
  plan.image_read_error_rate = r / 2;
  plan.truncated_write_rate = r / 2;
  plan.registry_stall_rate = r;
  plan.registry_disconnect_rate = r / 2;
  plan.node_crash_rate = r / 10;
  return plan;
}

exp::ChaosScenarioResult run_rate(double rate, std::uint64_t seed) {
  exp::ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.faults = plan_at(rate, seed);
  return exp::run_chaos_scenario(cfg);
}

void write_json(const std::string& path, const std::vector<double>& rates,
                const std::vector<exp::ChaosScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_restore: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"rates\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::ChaosScenarioResult& r = results[i];
    std::fprintf(
        f,
        "    {\"fault_rate\": %.3f, \"requests\": %llu, \"answered\": %llu, "
        "\"ok\": %llu, \"availability\": %.4f, \"fallback_rate\": %.4f, "
        "\"restore_retries\": %llu, \"quarantines\": %llu, \"rebakes\": %llu, "
        "\"node_crashes\": %llu, \"requests_requeued\": %llu, "
        "\"faults_injected\": %llu, \"total_p50_ms\": %.2f, "
        "\"total_p95_ms\": %.2f, \"total_p99_ms\": %.2f}%s\n",
        rates[i], static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.responses_ok), r.availability,
        r.fallback_rate, static_cast<unsigned long long>(r.restore_retries),
        static_cast<unsigned long long>(r.snapshot_quarantines),
        static_cast<unsigned long long>(r.snapshot_rebakes),
        static_cast<unsigned long long>(r.node_crashes),
        static_cast<unsigned long long>(r.requests_requeued),
        static_cast<unsigned long long>(r.faults_injected), r.total_p50_ms,
        r.total_p95_ms, r.total_p99_ms,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_chaos_restore.json";
  std::uint64_t seed = 42;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_restore [--out FILE] [--seed N] [--check]\n");
      return 2;
    }
  }

  std::printf("== Chaos: resilient restore under injected faults ==\n\n");

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  constexpr double kDefaultRate = 0.05;
  std::vector<exp::ChaosScenarioResult> results;
  for (const double rate : rates) results.push_back(run_rate(rate, seed));

  exp::TextTable table{{"Fault rate", "Requests", "Avail", "Fallback",
                        "Retries", "Quar", "Rebake", "Crash", "Total p95",
                        "Total p99"}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::ChaosScenarioResult& r = results[i];
    table.add_row({exp::fmt_percent(rates[i]), std::to_string(r.requests),
                   exp::fmt_percent(r.availability),
                   exp::fmt_percent(r.fallback_rate),
                   std::to_string(r.restore_retries),
                   std::to_string(r.snapshot_quarantines),
                   std::to_string(r.snapshot_rebakes),
                   std::to_string(r.node_crashes),
                   exp::fmt_ms(r.total_p95_ms), exp::fmt_ms(r.total_p99_ms)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Injected faults by site (rate %.0f%%):\n",
              kDefaultRate * 100.0);
  for (const auto& [site, fired] : results[2].fired_by_site)
    if (fired > 0)
      std::printf("  %-20s %llu\n", site.c_str(),
                  static_cast<unsigned long long>(fired));
  std::printf("\n");

  write_json(out, rates, results);
  std::printf("wrote %s\n", out.c_str());

  std::printf(
      "\nShape: retries absorb transient faults, quarantine + re-bake heal\n"
      "poisoned snapshots, fallbacks keep availability while trading away\n"
      "the prebaking latency win (p99 climbs toward the Vanilla baseline).\n");

  if (check) {
    const exp::ChaosScenarioResult& r = results[2];  // the 5% cell
    bool ok = true;
    if (r.answered != r.requests) {
      std::fprintf(stderr,
                   "CHECK FAILED: %llu of %llu requests never answered\n",
                   static_cast<unsigned long long>(r.requests - r.answered),
                   static_cast<unsigned long long>(r.requests));
      ok = false;
    }
    if (r.availability < 0.99) {
      std::fprintf(stderr,
                   "CHECK FAILED: availability %.4f < 0.99 at %.0f%% faults\n",
                   r.availability, kDefaultRate * 100.0);
      ok = false;
    }
    if (results[0].faults_injected != 0) {
      std::fprintf(stderr,
                   "CHECK FAILED: %llu faults fired with an all-zero plan\n",
                   static_cast<unsigned long long>(results[0].faults_injected));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("\ncheck ok: no request lost, availability %.2f%% >= 99%% at "
                "%.0f%% fault rate\n",
                r.availability * 100.0, kDefaultRate * 100.0);
  }
  return 0;
}
