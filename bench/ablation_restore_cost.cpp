// Ablation A — restore cost decomposition (Section 3.1: "the larger the
// snapshot, the longer it takes to be restored") and the in-memory image
// optimization discussed as future work (Section 7, Venkatesh et al. [26]).
// Sweeps the snapshot size and compares cold-disk, page-cache and in-memory
// restore paths.
#include <cstdio>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/report.hpp"

using namespace prebake;

namespace {

criu::DumpResult make_snapshot(os::Kernel& kernel, std::uint64_t heap_mib,
                               const std::string& prefix) {
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(
      pid, heap_mib * 1024 * 1024, os::Prot::kReadWrite, os::VmaKind::kAnon,
      "[heap]", std::make_shared<os::PatternSource>(heap_mib), false);
  kernel.fault_in_all(pid, heap);
  criu::DumpOptions opts;
  opts.fs_prefix = prefix;
  return criu::Dumper{kernel}.dump(pid, opts);
}

}  // namespace

int main() {
  std::printf("== Ablation A: restore time vs snapshot size and image "
              "placement ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 2 * 1024 * 1024);

  exp::TextTable table{{"Snapshot", "Dump", "Restore (remote 1Gb/s)",
                        "Restore (cold disk)", "Restore (page cache)",
                        "Restore (in-memory)"}};

  for (const std::uint64_t mib : {4, 16, 64, 128, 256, 512}) {
    const std::string prefix = "/snap/" + std::to_string(mib) + "/";
    const criu::DumpResult dump = make_snapshot(kernel, mib, prefix);

    auto timed_restore = [&](bool drop_cache, bool in_memory, bool remote) {
      if (drop_cache) kernel.fs().drop_caches();
      criu::RestoreOptions opts;
      opts.fs_prefix = prefix;
      opts.in_memory = in_memory;
      opts.remote_fetch = remote;
      const sim::TimePoint t0 = sim.now();
      const criu::RestoreResult r = criu::Restorer{kernel}.restore(dump.images, opts);
      kernel.kill_process(r.pid);
      kernel.reap(r.pid);
      return (sim.now() - t0).to_millis();
    };

    // Remote first (checkpoint/restore as a service, Section 7): the node
    // pulls the images from the registry over the network.
    const double remote = timed_restore(true, false, true);
    const double cold = timed_restore(true, false, false);
    const double cached = timed_restore(false, false, false);
    const double in_memory = timed_restore(true, true, false);

    table.add_row({exp::fmt_mib(dump.images.nominal_total()),
                   exp::fmt_ms(dump.duration.to_millis()), exp::fmt_ms(remote),
                   exp::fmt_ms(cold), exp::fmt_ms(cached),
                   exp::fmt_ms(in_memory)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: restore grows linearly with snapshot size; a remote "
              "registry adds a network-bandwidth\nfirst-fetch penalty, while "
              "keeping images in memory removes the cold-disk penalty "
              "entirely\n(the in-memory CRIU optimization the paper cites as "
              "future work [26]).\n");

  // Incremental (pre-dump) chains: how much does a dirty fraction cost?
  std::printf("\n-- pre-dump + incremental dump (dirty-page tracking) --\n");
  exp::TextTable inc{{"Dirty fraction", "Full dump pages", "Incremental pages",
                      "Incremental payload"}};
  for (const int dirty_pct : {1, 5, 20, 50, 100}) {
    const std::string prefix = "/snap/inc" + std::to_string(dirty_pct) + "/";
    const os::Pid pid = kernel.clone_process(os::kNoPid);
    kernel.exec(pid, "/bin/app", {"/bin/app"});
    const std::uint64_t pages = 8192;  // 32 MiB heap
    const os::VmaId heap = kernel.mmap(pid, pages * os::kPageSize,
                                       os::Prot::kReadWrite, os::VmaKind::kAnon,
                                       "[heap]",
                                       std::make_shared<os::PatternSource>(7),
                                       false);
    kernel.fault_in_all(pid, heap);

    criu::DumpOptions pre;
    pre.pre_dump = true;
    pre.fs_prefix = prefix + "parent/";
    const criu::DumpResult parent = criu::Dumper{kernel}.dump(pid, pre);

    kernel.process(pid).mm().touch(heap, 0, pages * dirty_pct / 100, true);

    criu::DumpOptions final_dump;
    final_dump.parent = &parent.images;
    final_dump.fs_prefix = prefix + "child/";
    const criu::DumpResult child = criu::Dumper{kernel}.dump(pid, final_dump);

    char pct[16];
    std::snprintf(pct, sizeof pct, "%d%%", dirty_pct);
    inc.add_row({pct, std::to_string(parent.stats.pages_dumped),
                 std::to_string(child.stats.pages_dumped),
                 exp::fmt_mib(child.stats.payload_bytes)});
  }
  std::printf("%s", inc.to_string().c_str());
  return 0;
}
