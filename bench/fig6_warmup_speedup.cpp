// Figure 6 — start-up improvement of both prebaking variants over Vanilla.
// The PB-Warmup bar shows the impact of warming the function (forcing the
// lazy load + JIT) before generating the snapshot: 403.96% for small
// functions and 1932.49% for big ones, versus 127.45% / 121.07% without
// warm-up.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

exp::ScenarioConfig cell(exp::SynthSize size, exp::Technique tech) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::synthetic_spec(size);
  cfg.technique = tech;
  cfg.repetitions = 200;
  cfg.measure_first_response = true;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Figure 6: speed-up ratio Vanilla / Prebaking (percent) ==\n\n");

  const double paper_nowarm[] = {127.45, 0.0, 121.07};  // paper quotes small/big
  const double paper_warm[] = {403.96, 0.0, 1932.49};

  const exp::SynthSize sizes[] = {exp::SynthSize::kSmall,
                                  exp::SynthSize::kMedium,
                                  exp::SynthSize::kBig};
  exp::ParallelRunner runner;
  std::vector<exp::ScenarioConfig> cells;
  for (const exp::SynthSize size : sizes) {
    cells.push_back(cell(size, exp::Technique::kVanilla));
    cells.push_back(cell(size, exp::Technique::kPrebakeNoWarmup));
    cells.push_back(cell(size, exp::Technique::kPrebakeWarmup));
  }
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);

  exp::TextTable table{{"Size", "PB-NOWarmup ratio", "paper", "PB-Warmup ratio",
                        "paper"}};
  std::vector<std::pair<std::string, double>> bars;
  int i = 0;
  for (const exp::SynthSize size : sizes) {
    const std::size_t base = static_cast<std::size_t>(i) * 3;
    const double vanilla = stats::median(results[base].startup_ms);
    const double nowarm = stats::median(results[base + 1].startup_ms);
    const double warm = stats::median(results[base + 2].startup_ms);
    const double r_nowarm = vanilla / nowarm * 100.0;
    const double r_warm = vanilla / warm * 100.0;

    char nw[32], w[32], pn[32], pw[32];
    std::snprintf(nw, sizeof nw, "%.2f%%", r_nowarm);
    std::snprintf(w, sizeof w, "%.2f%%", r_warm);
    std::snprintf(pn, sizeof pn,
                  paper_nowarm[i] > 0 ? "%.2f%%" : "(not quoted)", paper_nowarm[i]);
    std::snprintf(pw, sizeof pw,
                  paper_warm[i] > 0 ? "%.2f%%" : "(not quoted)", paper_warm[i]);
    table.add_row({exp::synth_size_name(size), nw, pn, w, pw});
    bars.emplace_back(std::string(exp::synth_size_name(size)) + " NOWarmup",
                      r_nowarm);
    bars.emplace_back(std::string(exp::synth_size_name(size)) + " Warmup",
                      r_warm);
    ++i;
  }

  std::printf("%s\n", table.to_string().c_str());
  double max_ratio = 0;
  for (const auto& [label, r] : bars) max_ratio = std::max(max_ratio, r);
  for (const auto& [label, r] : bars)
    std::printf("  %-18s |%s| %8.1f%%\n", label.c_str(),
                exp::ascii_bar(r, max_ratio).c_str(), r);
  std::printf("\nPaper: warming before baking removes the load+JIT overhead, "
              "and the gain grows with code size.\n");
  return 0;
}
