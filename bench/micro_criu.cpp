// Micro-benchmarks (google-benchmark) for the checkpoint/restore engine:
// image encode/decode throughput, CRC32, page-source generation, pagemap
// walks, and full dump/restore cycles of the simulated engine (host-side
// cost of the simulation itself, useful for keeping the harness fast).
#include <benchmark/benchmark.h>

#include "criu/crc32.hpp"
#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"

using namespace prebake;

namespace {

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31);
  for (auto _ : state)
    benchmark::DoNotOptimize(criu::crc32(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_PatternSourceFill(benchmark::State& state) {
  const os::PatternSource src{42};
  std::array<std::uint8_t, os::kPageSize> buf{};
  std::uint64_t page = 0;
  for (auto _ : state) {
    src.fill(page++, std::span<std::uint8_t, os::kPageSize>{buf});
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(os::kPageSize));
}
BENCHMARK(BM_PatternSourceFill);

void BM_PageDigest(benchmark::State& state) {
  const os::PatternSource src{42};
  std::uint64_t page = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(src.page_digest(page++));
}
BENCHMARK(BM_PageDigest);

// Host-side cost of producing the digest list a delta negotiation ships:
// decoding the payload record from the raw image bytes every time...
void BM_DigestListDecode(benchmark::State& state) {
  std::vector<std::uint64_t> digests;
  const os::PatternSource src{42};
  for (int i = 0; i < state.range(0); ++i)
    digests.push_back(src.page_digest(static_cast<std::uint64_t>(i)));
  criu::PagesEntry entry;
  entry.mode = criu::PayloadMode::kDigest;
  entry.digests = digests;
  const std::vector<std::uint8_t> img = criu::encode_pages(entry);
  for (auto _ : state) {
    const criu::PagesEntry decoded = criu::decode_pages(img);
    benchmark::DoNotOptimize(decoded.digests.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DigestListDecode)->Arg(256)->Arg(4096)->Arg(65536);

// ...versus reading it out of the ImageDir's shared decode cache, the path
// the page store's per-fetch negotiation actually takes (satellite of
// DESIGN.md §6f: re-hashing/re-decoding per fetch would dominate the RTT).
void BM_DigestListCached(benchmark::State& state) {
  std::vector<std::uint64_t> digests;
  const os::PatternSource src{42};
  for (int i = 0; i < state.range(0); ++i)
    digests.push_back(src.page_digest(static_cast<std::uint64_t>(i)));
  criu::PagesEntry entry;
  entry.mode = criu::PayloadMode::kDigest;
  entry.digests = std::move(digests);
  criu::ImageDir images;
  images.put("pages-1.img", criu::encode_pages(entry));
  for (auto _ : state) {
    const criu::ImageDir::Decoded& dec = images.decoded();
    benchmark::DoNotOptimize(dec.pages->digests().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DigestListCached)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EncodeDecodePagemap(benchmark::State& state) {
  std::vector<criu::PagemapEntry> entries;
  for (int i = 0; i < state.range(0); ++i)
    entries.push_back(criu::PagemapEntry{static_cast<os::VmaId>(i % 7),
                                         static_cast<std::uint64_t>(i) * 16, 8});
  for (auto _ : state) {
    const auto img = criu::encode_pagemap(entries);
    benchmark::DoNotOptimize(criu::decode_pagemap(img));
  }
}
BENCHMARK(BM_EncodeDecodePagemap)->Arg(16)->Arg(256)->Arg(4096);

void BM_KernelPagemapWalk(benchmark::State& state) {
  sim::Simulation sim;
  os::Kernel kernel{sim};
  kernel.fs().create("/bin/app", 1024 * 1024);
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(
      pid, static_cast<std::uint64_t>(state.range(0)) * os::kPageSize,
      os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
      std::make_shared<os::PatternSource>(1), false);
  kernel.fault_in_all(pid, heap);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernel.pagemap(pid));
}
BENCHMARK(BM_KernelPagemapWalk)->Arg(1024)->Arg(16384);

void BM_FullDump(benchmark::State& state) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 1024 * 1024);
  for (auto _ : state) {
    state.PauseTiming();
    const os::Pid pid = kernel.clone_process(os::kNoPid);
    kernel.exec(pid, "/bin/app", {"/bin/app"});
    const os::VmaId heap = kernel.mmap(
        pid, static_cast<std::uint64_t>(state.range(0)) * 1024 * 1024,
        os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
        std::make_shared<os::PatternSource>(1), false);
    kernel.fault_in_all(pid, heap);
    state.ResumeTiming();
    criu::DumpResult dump = criu::Dumper{kernel}.dump(pid);
    benchmark::DoNotOptimize(dump);
  }
}
BENCHMARK(BM_FullDump)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FullRestore(benchmark::State& state) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 1024 * 1024);
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(
      pid, static_cast<std::uint64_t>(state.range(0)) * 1024 * 1024,
      os::Prot::kReadWrite, os::VmaKind::kAnon, "[heap]",
      std::make_shared<os::PatternSource>(1), false);
  kernel.fault_in_all(pid, heap);
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid);
  for (auto _ : state) {
    const criu::RestoreResult r = criu::Restorer{kernel}.restore(dump.images);
    state.PauseTiming();
    kernel.kill_process(r.pid);
    kernel.reap(r.pid);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FullRestore)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
