// Ablation H — execution-environment provisioning vs application start-up.
//
// Section 2: the cold start = (1) provisioning the VM/container + (2)
// starting the function application, and "as containerization or
// virtualization techniques are optimized to decrease start-up time
// [16,19,23], applications' start-up time will become a more evident
// problem". This ablation sweeps the container provisioning cost from
// classic-docker (~100 ms) down to microVM-class (~5 ms) and shows the
// application share of the cold start — and therefore prebaking's leverage —
// growing exactly as the paper argues.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/platform.hpp"

using namespace prebake;

namespace {

double cold_start_ms(bool prebaked, const os::ContainerCosts& costs) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.containerized = true;
  cfg.container_costs = costs;
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 77};
  platform.resources().add_node("n", 8ull << 30);
  platform.deploy(exp::markdown_spec(),
                  prebaked ? faas::StartMode::kPrebaked
                           : faas::StartMode::kVanilla,
                  core::SnapshotPolicy::warmup(1));
  double total = 0;
  bool done = false;
  platform.invoke("markdown-render", funcs::sample_request("markdown"),
                  [&](const funcs::Response&, const faas::RequestMetrics& m) {
                    total = m.total.to_millis();
                    done = true;
                  });
  while (!done && sim.step()) {
  }
  return total;
}

}  // namespace

int main() {
  std::printf("== Ablation H: container provisioning vs application "
              "start-up ==\n\n");

  struct Sandbox {
    const char* label;
    double network_ms;   // the classic dominant term
    double ns_ms, cgroup_ms, mount_ms;
  };
  const Sandbox sandboxes[] = {
      {"docker-classic", 90.0, 4.0, 3.0, 1.5},
      {"docker-tuned", 30.0, 3.0, 2.0, 1.0},
      {"sock-like [19]", 8.0, 1.0, 0.8, 0.3},
      {"microvm-like [1]", 3.0, 0.8, 0.4, 0.2},
  };

  exp::TextTable table{{"Sandbox", "Provisioning", "Cold (vanilla)",
                        "Cold (prebaked)", "App share", "Prebake cuts"}};
  for (const Sandbox& s : sandboxes) {
    os::ContainerCosts costs;
    costs.network_setup = sim::Duration::millis_f(s.network_ms);
    costs.namespace_setup = sim::Duration::millis_f(s.ns_ms);
    costs.cgroup_setup = sim::Duration::millis_f(s.cgroup_ms);
    costs.mount_per_layer = sim::Duration::millis_f(s.mount_ms);

    const double provisioning = costs.provisioning_total(2).to_millis();
    const double vanilla = cold_start_ms(false, costs);
    const double prebaked = cold_start_ms(true, costs);
    const double app_share = (vanilla - provisioning) / vanilla;

    char share[16], cuts[16];
    std::snprintf(share, sizeof share, "%.0f%%", app_share * 100.0);
    std::snprintf(cuts, sizeof cuts, "%.0f%%",
                  (1.0 - prebaked / vanilla) * 100.0);
    table.add_row({s.label, exp::fmt_ms(provisioning), exp::fmt_ms(vanilla),
                   exp::fmt_ms(prebaked), share, cuts});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape: the faster the sandbox, the larger the application share of\n"
      "the cold start — and the larger the fraction prebaking eliminates.\n"
      "With classic docker the runtime is ~half the story; in a microVM\n"
      "world it is nearly all of it (the paper's Section 2 argument).\n");
  return 0;
}
