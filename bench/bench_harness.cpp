// Wall-clock harness for the experiment engine itself (not a paper figure).
//
// Times the fig3 and fig5 sweeps three ways — the seed's serial runner
// (run_startup_scenario_reference), the parallel engine pinned to one
// thread, and the parallel engine at N threads — and writes the numbers to
// BENCH_harness.json. The speedup column is serial_ms / parallel_ms, i.e.
// the end-to-end win of the new engine (shared bake + decode caches +
// sharding) over the seed harness.
//
// --check runs a reduced-repetition regression gate instead: it asserts
// that the engine is bit-identical across thread counts and that the
// reproduced paper numbers are still in range, exiting non-zero otherwise
// (wired into CTest via tools/run_benches.sh --check).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "obs/export.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"

using namespace prebake;

namespace {

using Clock = std::chrono::steady_clock;

double wall_ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::vector<exp::ScenarioConfig> fig3_cells(int reps) {
  const rt::FunctionSpec specs[] = {exp::noop_spec(), exp::markdown_spec(),
                                    exp::image_resizer_spec()};
  std::vector<exp::ScenarioConfig> cells;
  for (const rt::FunctionSpec& spec : specs) {
    for (const exp::Technique tech :
         {exp::Technique::kVanilla, exp::Technique::kPrebakeNoWarmup}) {
      exp::ScenarioConfig cfg;
      cfg.spec = spec;
      cfg.technique = tech;
      cfg.repetitions = reps;
      cfg.seed = 42;
      cells.push_back(cfg);
    }
  }
  return cells;
}

std::vector<exp::ScenarioConfig> fig5_cells(int reps) {
  std::vector<exp::ScenarioConfig> cells;
  for (const exp::SynthSize size :
       {exp::SynthSize::kSmall, exp::SynthSize::kMedium, exp::SynthSize::kBig}) {
    exp::ScenarioConfig cfg;
    cfg.spec = exp::synthetic_spec(size);
    cfg.technique = exp::Technique::kVanilla;
    cfg.repetitions = reps;
    cfg.measure_first_response = true;
    cfg.seed = 42;
    cells.push_back(cfg);
  }
  return cells;
}

struct SweepTiming {
  std::string name;
  std::size_t cells = 0;
  int repetitions = 0;
  double serial_ms = 0.0;         // seed's serial runner
  double engine_serial_ms = 0.0;  // new engine, 1 thread
  double parallel_ms = 0.0;       // new engine, N threads
  double speedup() const { return serial_ms / parallel_ms; }
};

SweepTiming time_sweep(const std::string& name,
                       const std::vector<exp::ScenarioConfig>& cells,
                       int threads) {
  SweepTiming t;
  t.name = name;
  t.cells = cells.size();
  t.repetitions = cells.front().repetitions;

  auto t0 = Clock::now();
  for (const exp::ScenarioConfig& cfg : cells)
    (void)exp::run_startup_scenario_reference(cfg);
  t.serial_ms = wall_ms_since(t0);

  t0 = Clock::now();
  (void)exp::ParallelRunner{1}.run_startup(cells);
  t.engine_serial_ms = wall_ms_since(t0);

  t0 = Clock::now();
  (void)exp::ParallelRunner{threads}.run_startup(cells);
  t.parallel_ms = wall_ms_since(t0);
  return t;
}

void write_json(const std::string& path, int threads,
                const std::vector<SweepTiming>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_harness: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"threads\": %d,\n  \"figures\": [\n", threads);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepTiming& r = rows[i];
    std::fprintf(f,
                 "    {\"figure\": \"%s\", \"cells\": %zu, "
                 "\"repetitions\": %d, \"serial_ms\": %.1f, "
                 "\"engine_serial_ms\": %.1f, \"parallel_ms\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.cells, r.repetitions, r.serial_ms,
                 r.engine_serial_ms, r.parallel_ms, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// --- --check mode ----------------------------------------------------------

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

void expect_near(double got, double want, double rel_tol, const char* what) {
  const bool ok = std::fabs(got - want) <= rel_tol * want;
  std::printf("  [%s] %s: got %.2f, want %.2f +/- %.0f%%\n", ok ? "ok" : "FAIL",
              what, got, want, rel_tol * 100);
  if (!ok) ++g_failures;
}

int run_check(int threads) {
  const int reps = 40;
  std::printf("bench_harness --check (reps=%d, threads=%d)\n", reps, threads);

  // 1. Determinism: the engine must be bit-identical across thread counts.
  const auto cells = fig3_cells(reps);
  const auto at1 = exp::ParallelRunner{1}.run_startup(cells);
  const auto atN = exp::ParallelRunner{threads}.run_startup(cells);
  bool identical = at1.size() == atN.size();
  for (std::size_t i = 0; identical && i < at1.size(); ++i)
    identical = at1[i].startup_ms == atN[i].startup_ms;
  expect(identical, "startup_ms bit-identical for 1 vs N threads");

  const auto ci1 = stats::bootstrap_median_ci(at1[0].startup_ms, 0.95, 2000,
                                              0x9b0074bead5ULL, 1);
  const auto ciN = stats::bootstrap_median_ci(atN[0].startup_ms, 0.95, 2000,
                                              0x9b0074bead5ULL, threads);
  expect(ci1.lo == ciN.lo && ci1.hi == ciN.hi && ci1.point == ciN.point,
         "bootstrap CI bit-identical for 1 vs N threads");

  // 2. Reproduction: the paper's headline numbers must still be in range
  // (Figure 3 medians; Figure 5 growth with code size).
  expect_near(stats::median(atN[0].startup_ms), 103.3, 0.10,
              "fig3 NOOP Vanilla median (ms)");
  expect_near(stats::median(atN[1].startup_ms), 62.0, 0.10,
              "fig3 NOOP Prebaking median (ms)");
  expect_near(stats::median(atN[4].startup_ms), 310.0, 0.10,
              "fig3 Resizer Vanilla median (ms)");
  expect_near(stats::median(atN[5].startup_ms), 87.0, 0.10,
              "fig3 Resizer Prebaking median (ms)");

  const auto f5 = exp::ParallelRunner{threads}.run_startup(fig5_cells(reps));
  expect_near(stats::median(f5[0].startup_ms), 219.8, 0.10,
              "fig5 small Vanilla median (ms)");
  expect_near(stats::median(f5[2].startup_ms), 1621.0, 0.10,
              "fig5 big Vanilla median (ms)");

  if (g_failures == 0)
    std::printf("CHECK PASSED\n");
  else
    std::printf("CHECK FAILED: %d assertion(s)\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}

// --- --trace mode ----------------------------------------------------------

// Trace the fig3 NOOP prebaked cell with the structured tracer on and
// export Chrome trace_event JSON (about:tracing / Perfetto loadable). The
// interesting nesting — scenario > replica-start > start.prebaked >
// criu.restore > per-image reads — is asserted by tools/run_benches.sh
// --trace against tools/trace_schema.jq.
int run_trace(const std::string& path, int reps, int threads) {
  exp::ScenarioConfig cfg;
  cfg.spec = exp::noop_spec();
  cfg.technique = exp::Technique::kPrebakeNoWarmup;
  cfg.repetitions = reps;
  cfg.seed = 42;
  cfg.threads = threads;
  exp::ScenarioSpec spec = exp::ScenarioSpec::from(cfg);
  spec.trace = true;

  const exp::ScenarioRun run = exp::run(spec);
  const std::string json = obs::to_chrome_json(run.trace);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_harness: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("bench_harness --trace: fig3 NOOP %s, %d reps\n",
              exp::technique_name(cfg.technique), reps);
  std::printf("wrote %zu spans to %s (load in about:tracing / Perfetto)\n",
              run.trace.spans.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int reps = 200;
  bool check = false;
  std::string out = "BENCH_harness.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_harness [--check] [--threads N] [--reps N] "
                   "[--out FILE] [--trace FILE]\n");
      return 2;
    }
  }
  if (threads < 1) threads = util::resolve_threads(0);

  if (!trace_out.empty()) return run_trace(trace_out, reps, threads);
  if (check) return run_check(threads);

  std::printf("bench_harness: timing fig3 + fig5 sweeps "
              "(reps=%d, threads=%d)\n\n",
              reps, threads);
  std::vector<SweepTiming> rows;
  rows.push_back(time_sweep("fig3", fig3_cells(reps), threads));
  rows.push_back(time_sweep("fig5", fig5_cells(reps), threads));

  SweepTiming agg;
  agg.name = "fig3+fig5";
  agg.cells = rows[0].cells + rows[1].cells;
  agg.repetitions = reps;
  for (const SweepTiming& r : rows) {
    agg.serial_ms += r.serial_ms;
    agg.engine_serial_ms += r.engine_serial_ms;
    agg.parallel_ms += r.parallel_ms;
  }
  rows.push_back(agg);

  std::printf("%-10s %6s %6s %12s %16s %12s %8s\n", "figure", "cells", "reps",
              "serial_ms", "engine1_ms", "parallel_ms", "speedup");
  for (const SweepTiming& r : rows)
    std::printf("%-10s %6zu %6d %12.1f %16.1f %12.1f %7.2fx\n", r.name.c_str(),
                r.cells, r.repetitions, r.serial_ms, r.engine_serial_ms,
                r.parallel_ms, r.speedup());

  write_json(out, threads, rows);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
