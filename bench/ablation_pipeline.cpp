// Ablation E — cold-start amplification in function pipelines.
//
// The SPEC-RG architecture's Workflow Management layer composes functions;
// a freshly scaled N-stage pipeline pays N sequential replica start-ups on
// its critical path, so the per-replica savings of prebaking multiply with
// composition depth. Sweeps pipeline depth and reports the end-to-end cold
// and warm latencies for Vanilla vs PB-Warmup stages.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/workflow.hpp"

using namespace prebake;

namespace {

struct PipelineTimes {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::uint32_t cold_starts = 0;
};

PipelineTimes run_pipeline(faas::StartMode mode, int depth) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::Platform platform{kernel, exp::testbed_runtime(),
                          faas::PlatformConfig{}, 1234};
  platform.resources().add_node("n", 32ull << 30);
  faas::WorkflowEngine engine{platform};

  faas::WorkflowSpec spec;
  spec.name = "pipeline";
  for (int i = 0; i < depth; ++i) {
    rt::FunctionSpec fn = exp::markdown_spec();
    fn.name = "stage-" + std::to_string(i);
    platform.deploy(std::move(fn), mode, core::SnapshotPolicy::warmup(1));
    spec.stages.push_back("stage-" + std::to_string(i));
  }
  engine.register_workflow(std::move(spec));

  auto run_once = [&](PipelineTimes& out, bool cold) {
    bool done = false;
    engine.run("pipeline", funcs::sample_request("markdown"),
               [&](const funcs::Response& res, const faas::WorkflowMetrics& m) {
                 if (!res.ok()) std::abort();
                 (cold ? out.cold_ms : out.warm_ms) = m.total.to_millis();
                 if (cold) out.cold_starts = m.cold_starts;
                 done = true;
               });
    while (!done && sim.step()) {
    }
  };

  PipelineTimes out;
  run_once(out, /*cold=*/true);
  run_once(out, /*cold=*/false);
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation E: pipeline depth vs end-to-end cold start ==\n\n");

  exp::TextTable table{{"Depth", "Vanilla cold", "Prebaked cold", "Saved",
                        "Vanilla warm", "Prebaked warm"}};
  for (const int depth : {1, 2, 3, 4, 6}) {
    const PipelineTimes vanilla = run_pipeline(faas::StartMode::kVanilla, depth);
    const PipelineTimes prebaked = run_pipeline(faas::StartMode::kPrebaked, depth);
    char saved[32];
    std::snprintf(saved, sizeof saved, "%.0f ms",
                  vanilla.cold_ms - prebaked.cold_ms);
    table.add_row({std::to_string(depth), exp::fmt_ms(vanilla.cold_ms),
                   exp::fmt_ms(prebaked.cold_ms), saved,
                   exp::fmt_ms(vanilla.warm_ms), exp::fmt_ms(prebaked.warm_ms)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: the absolute saving grows linearly with pipeline depth"
              " (each stage's\nstart-up sits on the critical path); warm "
              "latencies are identical, consistent\nwith Figure 7's "
              "no-post-restore-penalty result.\n");
  return 0;
}
