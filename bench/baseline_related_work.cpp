// Baseline comparison — the start techniques from the paper's related work
// (Section 6), side by side on the paper's own functions:
//
//   Vanilla        fork + exec + runtime bootstrap + app init
//   Zygote-Fork    SOCK-style [18,19]: COW-fork a pre-booted runtime;
//                  skips exec+RTS but "does not deal with other application
//                  aspects that influence the start-up time, for instance,
//                  I/O heavy initialization"
//   PB-NOWarmup    this paper: restore a snapshot taken at ready
//   PB-Warmup      this paper: restore a snapshot taken after one request
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

double median_ms(const rt::FunctionSpec& spec, exp::Technique tech,
                 bool first_response) {
  exp::ScenarioConfig cfg;
  cfg.spec = spec;
  cfg.technique = tech;
  cfg.repetitions = 100;
  cfg.measure_first_response = first_response;
  cfg.seed = 42;
  return stats::median(exp::run_startup_scenario(cfg).startup_ms);
}

}  // namespace

int main() {
  std::printf("== Related-work baselines: start techniques compared ==\n\n");

  struct Fn {
    const char* label;
    rt::FunctionSpec spec;
    bool first_response;
  };
  const Fn fns[] = {
      {"NOOP", exp::noop_spec(), false},
      {"Markdown", exp::markdown_spec(), false},
      {"ImageResizer", exp::image_resizer_spec(), false},
      {"synthetic-big", exp::synthetic_spec(exp::SynthSize::kBig), true},
  };

  exp::TextTable table{{"Function", "Vanilla", "Zygote-Fork [19]",
                        "PB-NOWarmup", "PB-Warmup"}};
  for (const Fn& fn : fns) {
    table.add_row(
        {fn.label,
         exp::fmt_ms(median_ms(fn.spec, exp::Technique::kVanilla, fn.first_response)),
         exp::fmt_ms(median_ms(fn.spec, exp::Technique::kZygoteFork, fn.first_response)),
         exp::fmt_ms(median_ms(fn.spec, exp::Technique::kPrebakeNoWarmup,
                               fn.first_response)),
         exp::fmt_ms(median_ms(fn.spec, exp::Technique::kPrebakeWarmup,
                               fn.first_response))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape: the zygote removes exec+bootstrap (~73 ms) and beats\n"
      "PB-NOWarmup on light functions (no snapshot to read), but it cannot\n"
      "skip app init — the Image Resizer's I/O-heavy initialization and the\n"
      "big function's lazy load+JIT remain (the paper's Section 6 critique\n"
      "of SOCK). Only the warmed snapshot removes all three terms.\n");
  return 0;
}
