// Ablation B — concurrent snapshot restores and bigger function code sizes
// (both raised as open questions in Section 7: "the performance to deal
// with even bigger function code sizes and concurrent snapshots").
//
// Concurrency is modeled with processor sharing on the storage device: N
// simultaneous restores each see 1/N of the bandwidth; the table reports
// per-restore latency and aggregate throughput.
#include <cstdio>

#include "criu/dump.hpp"
#include "criu/restore.hpp"
#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

int main() {
  std::printf("== Ablation B: concurrent restores and bigger code sizes ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  kernel.fs().create("/bin/app", 2 * 1024 * 1024);

  // A 64 MiB-class snapshot, restored under increasing concurrency.
  const os::Pid pid = kernel.clone_process(os::kNoPid);
  kernel.exec(pid, "/bin/app", {"/bin/app"});
  const os::VmaId heap = kernel.mmap(pid, 64ull * 1024 * 1024,
                                     os::Prot::kReadWrite, os::VmaKind::kAnon,
                                     "[heap]",
                                     std::make_shared<os::PatternSource>(1),
                                     false);
  kernel.fault_in_all(pid, heap);
  criu::DumpOptions dopts;
  dopts.fs_prefix = "/snap/conc/";
  const criu::DumpResult dump = criu::Dumper{kernel}.dump(pid, dopts);

  exp::TextTable conc{{"Concurrent restores", "Per-restore latency",
                       "Aggregate replicas/s"}};
  for (const int n : {1, 2, 4, 8, 16, 32}) {
    criu::RestoreOptions opts;
    opts.fs_prefix = "/snap/conc/";
    opts.io_contention = static_cast<double>(n);
    const sim::TimePoint t0 = sim.now();
    const criu::RestoreResult r = criu::Restorer{kernel}.restore(dump.images, opts);
    const double latency_ms = (sim.now() - t0).to_millis();
    kernel.kill_process(r.pid);
    kernel.reap(r.pid);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f", n / (latency_ms / 1000.0));
    conc.add_row({std::to_string(n), exp::fmt_ms(latency_ms), rate});
  }
  std::printf("%s\n", conc.to_string().c_str());

  // Bigger code sizes: extend the Table 1 sweep beyond the paper's 41 MB.
  std::printf("-- bigger code sizes (PB-Warmup stays flat; Vanilla explodes) "
              "--\n");
  exp::TextTable sizes{{"Code size", "Vanilla", "PB-Warmup", "Speed-up"}};
  for (const int mb : {41, 64, 96, 128, 192, 256}) {
    rt::FunctionSpec spec = exp::synthetic_spec(exp::SynthSize::kBig);
    spec.name = "huge-" + std::to_string(mb);
    spec.request_classes = rt::synth_class_set(
        "huge", 1574 * mb / 41, static_cast<std::uint64_t>(mb) * 1'000'000,
        static_cast<std::uint64_t>(mb));

    auto median_ms = [&](exp::Technique tech) {
      exp::ScenarioConfig cfg;
      cfg.spec = spec;
      cfg.technique = tech;
      cfg.repetitions = 15;
      cfg.measure_first_response = true;
      cfg.seed = 42;
      return stats::median(exp::run_startup_scenario(cfg).startup_ms);
    };
    const double vanilla = median_ms(exp::Technique::kVanilla);
    const double warm = median_ms(exp::Technique::kPrebakeWarmup);
    char size[16], ratio[16];
    std::snprintf(size, sizeof size, "%d MB", mb);
    std::snprintf(ratio, sizeof ratio, "%.0f%%", vanilla / warm * 100.0);
    sizes.add_row({size, exp::fmt_ms(vanilla), exp::fmt_ms(warm), ratio});
  }
  std::printf("%s", sizes.to_string().c_str());
  return 0;
}
