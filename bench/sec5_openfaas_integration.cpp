// Section 5 — Integration with OpenFaaS: the faas-cli new/build/push/deploy
// pipeline with CRIU templates, checkpoint-inside-the-container-image, and
// privileged restore at replica start. Reports per-stage timings and the
// cold-start comparison across templates.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "openfaas/deployment.hpp"

using namespace prebake;

int main() {
  std::printf("== Section 5: OpenFaaS integration feasibility ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  openfaas::ProviderConfig provider;
  provider.orchestrator = "kubernetes";
  provider.allow_privileged = true;  // docker run --privileged (Section 5.2)
  openfaas::Deployment d{kernel, exp::testbed_runtime(), provider};

  struct Deploy {
    const char* fn;
    const char* tpl;
    rt::FunctionSpec spec;
  };
  const Deploy deploys[] = {
      {"md-vanilla", "java8", exp::markdown_spec()},
      {"md-prebaked", "java8-criu", exp::markdown_spec()},
      {"md-prebaked-warm", "java8-criu-warm", exp::markdown_spec()},
  };

  exp::TextTable pipeline{{"Function", "Template", "Build", "Image size",
                           "Snapshot layer", "Warmup"}};
  for (const Deploy& dep : deploys) {
    const sim::TimePoint t0 = sim.now();
    const openfaas::FunctionProject project =
        d.new_function(dep.fn, dep.tpl, dep.spec);
    openfaas::ContainerImage image = d.build(project);
    const sim::Duration build_time = sim.now() - t0;
    const std::uint64_t total = image.total_bytes();
    const std::uint64_t snap = image.snapshot_layer_bytes;
    const std::uint32_t warm = image.warmup_requests;
    d.push(std::move(image));
    d.deploy(dep.fn);
    pipeline.add_row({dep.fn, dep.tpl, exp::fmt_ms(build_time.to_millis()),
                      exp::fmt_mib(total),
                      snap == 0 ? "-" : exp::fmt_mib(snap),
                      std::to_string(warm)});
  }
  std::printf("%s\n", pipeline.to_string().c_str());

  // Demonstrate the privileged-provider requirement.
  {
    openfaas::ProviderConfig unprivileged;
    openfaas::Deployment d2{kernel, exp::testbed_runtime(), unprivileged};
    const openfaas::FunctionProject p =
        d2.new_function("blocked", "java8-criu", exp::noop_spec());
    try {
      d2.build(p);
      std::printf("ERROR: unprivileged CRIU build unexpectedly succeeded\n");
    } catch (const std::exception& e) {
      std::printf("unprivileged builder correctly rejected: %s\n\n", e.what());
    }
  }

  // Cold-start comparison through the gateway.
  exp::TextTable invocations{{"Function", "Cold start", "Startup", "Total",
                              "Status"}};
  const funcs::Request req = funcs::sample_request("markdown");
  for (const Deploy& dep : deploys) {
    const openfaas::InvocationRecord cold = d.invoke(dep.fn, req);
    const openfaas::InvocationRecord warm = d.invoke(dep.fn, req);
    invocations.add_row({dep.fn, cold.cold_start ? "yes" : "no",
                         exp::fmt_ms(cold.startup.to_millis()),
                         exp::fmt_ms(cold.total.to_millis()),
                         std::to_string(cold.status)});
    invocations.add_row({dep.fn, warm.cold_start ? "yes" : "no", "-",
                         exp::fmt_ms(warm.total.to_millis()),
                         std::to_string(warm.status)});
  }
  std::printf("%s\n", invocations.to_string().c_str());

  // Autoscale action: the Gateway scales a prebaked function to 4 replicas.
  const sim::TimePoint t0 = sim.now();
  d.scale("md-prebaked-warm", 4);
  std::printf("scaled md-prebaked-warm to %u ready replicas in %.2f ms "
              "(restore-based scale-out)\n",
              d.ready_replicas("md-prebaked-warm"),
              (sim.now() - t0).to_millis());
  return 0;
}
