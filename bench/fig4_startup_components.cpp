// Figure 4 — Application start-up components (CLONE, EXEC, RTS, APPINIT)
// stacked as part of the overall start-up time, for both techniques. The
// paper's observations to reproduce: CLONE+EXEC are a tiny fraction; Vanilla
// RTS is ~70 ms for every function; prebaking brings RTS to 0 and the
// remaining APPINIT scales with snapshot size (NOOP 13 MB, Markdown 14 MB,
// Image Resizer 99.2 MB).
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

struct Phases {
  double clone_ms = 0, exec_ms = 0, rts_ms = 0, appinit_ms = 0, total_ms = 0;
};

Phases mean_phases(const exp::ScenarioResult& result) {
  Phases p;
  for (const core::StartupBreakdown& b : result.breakdowns) {
    p.clone_ms += b.clone_time.to_millis();
    p.exec_ms += b.exec_time.to_millis();
    p.rts_ms += b.rts_time.to_millis();
    p.appinit_ms += b.appinit_stacked().to_millis();
    p.total_ms += b.total.to_millis();
  }
  const auto n = static_cast<double>(result.breakdowns.size());
  p.clone_ms /= n;
  p.exec_ms /= n;
  p.rts_ms /= n;
  p.appinit_ms /= n;
  p.total_ms /= n;
  return p;
}

}  // namespace

int main() {
  std::printf("== Figure 4: start-up phase breakdown (mean of 200 reps) ==\n\n");

  struct Fn {
    const char* label;
    rt::FunctionSpec spec;
  };
  const Fn fns[] = {
      {"NOOP", exp::noop_spec()},
      {"Markdown", exp::markdown_spec()},
      {"ImageResizer", exp::image_resizer_spec()},
  };

  exp::TextTable table{{"Function", "Technique", "CLONE", "EXEC", "RTS",
                        "APPINIT", "Total", "Snapshot"}};
  double max_total = 0.0;
  struct Row {
    std::string label;
    Phases phases;
  };
  std::vector<Row> rows;

  const exp::Technique techs[] = {exp::Technique::kVanilla,
                                  exp::Technique::kPrebakeNoWarmup};
  exp::ParallelRunner runner;
  std::vector<exp::ScenarioConfig> cells;
  for (const Fn& fn : fns) {
    for (const exp::Technique tech : techs) {
      exp::ScenarioConfig cfg;
      cfg.spec = fn.spec;
      cfg.technique = tech;
      cfg.repetitions = 200;
      cfg.seed = 42;
      cells.push_back(cfg);
    }
  }
  const std::vector<exp::ScenarioResult> results = runner.run_startup(cells);

  std::size_t idx = 0;
  for (const Fn& fn : fns) {
    for (const exp::Technique tech : techs) {
      const exp::ScenarioResult& result = results[idx++];
      const Phases p = mean_phases(result);
      max_total = std::max(max_total, p.total_ms);
      table.add_row({fn.label, exp::technique_name(tech),
                     exp::fmt_ms(p.clone_ms), exp::fmt_ms(p.exec_ms),
                     exp::fmt_ms(p.rts_ms), exp::fmt_ms(p.appinit_ms),
                     exp::fmt_ms(p.total_ms),
                     result.snapshot_nominal_bytes == 0
                         ? "-"
                         : exp::fmt_mib(result.snapshot_nominal_bytes)});
      rows.push_back(
          {std::string(fn.label) + "/" + exp::technique_name(tech), p});
    }
  }

  std::printf("%s\n", table.to_string().c_str());

  std::printf("Stacked view (c=CLONE+EXEC, R=RTS, A=APPINIT):\n");
  for (const Row& row : rows) {
    const int width = 60;
    auto cols = [&](double ms) {
      return static_cast<int>(ms / max_total * width + 0.5);
    };
    std::string bar;
    bar += std::string(static_cast<std::size_t>(
                           cols(row.phases.clone_ms + row.phases.exec_ms)),
                       'c');
    bar += std::string(static_cast<std::size_t>(cols(row.phases.rts_ms)), 'R');
    bar += std::string(static_cast<std::size_t>(cols(row.phases.appinit_ms)), 'A');
    std::printf("  %-26s |%-60s| %7.2f ms\n", row.label.c_str(), bar.c_str(),
                row.phases.total_ms);
  }
  std::printf("\nPaper: CLONE and EXEC contribute a tiny fraction; Vanilla RTS"
              " ~70 ms for all functions; prebaking brings RTS to 0 ms.\n");
  return 0;
}
