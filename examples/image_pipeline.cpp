// Image-resizing service under bursty traffic — the workload the paper's
// introduction motivates (latency-sensitive functions hit by cold starts).
//
//   build/examples/image_pipeline [output.ppm]
//
// Deploys the Image Resizer twice on the FaaS platform (Vanilla vs
// prebaked+warm), fires the same 3-burst trace at both, and compares
// latency percentiles and cold-start penalties. Also writes one real scaled
// image to disk so the output is inspectable.
#include <cstdio>
#include <fstream>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/platform.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

// Three bursts separated by gaps longer than the idle timeout, so every
// burst begins with a cold start.
std::vector<faas::RequestMetrics> run_trace(faas::Platform& platform,
                                            const std::string& fn) {
  std::vector<faas::RequestMetrics> all;
  sim::Simulation& sim = platform.kernel().sim();
  const funcs::Request req = funcs::sample_request("image-resizer");

  for (int burst = 0; burst < 3; ++burst) {
    const sim::TimePoint burst_start =
        sim.now() + sim::Duration::seconds(burst == 0 ? 1 : 700);
    for (int i = 0; i < 12; ++i) {
      sim.schedule_at(burst_start + sim::Duration::millis(40) * static_cast<double>(i), [&, fn] {
        platform.invoke(fn, req,
                        [&](const funcs::Response& res, const faas::RequestMetrics& m) {
                          if (res.ok()) all.push_back(m);
                        });
      });
    }
    sim.run_until(burst_start + sim::Duration::seconds(60));
  }
  return all;
}

void report(const char* label, const std::vector<faas::RequestMetrics>& ms) {
  std::vector<double> totals;
  int cold = 0;
  for (const auto& m : ms) {
    totals.push_back(m.total.to_millis());
    if (m.cold_start) ++cold;
  }
  const auto s = stats::summarize(totals);
  std::printf("%-22s requests=%3zu cold=%d  p50=%7.1f  p95=%7.1f  max=%7.1f ms\n",
              label, ms.size(), cold, s.median, s.p95, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== image pipeline: bursty traffic, Vanilla vs Prebaked ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(300);  // bursts outlive replicas
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 2026};
  platform.resources().add_node("node-1", 8ull << 30);
  platform.resources().add_node("node-2", 8ull << 30);

  rt::FunctionSpec vanilla_fn = exp::image_resizer_spec();
  vanilla_fn.name = "resizer-vanilla";
  platform.deploy(vanilla_fn, faas::StartMode::kVanilla);

  rt::FunctionSpec prebaked_fn = exp::image_resizer_spec();
  prebaked_fn.name = "resizer-prebaked";
  platform.deploy(prebaked_fn, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));

  const auto vanilla_metrics = run_trace(platform, "resizer-vanilla");
  const auto prebaked_metrics = run_trace(platform, "resizer-prebaked");

  report("resizer-vanilla", vanilla_metrics);
  report("resizer-prebaked", prebaked_metrics);

  std::printf("\nplatform: %llu replicas started, %llu cold starts, "
              "%llu reclaimed\n",
              static_cast<unsigned long long>(platform.stats().replicas_started),
              static_cast<unsigned long long>(platform.stats().cold_starts),
              static_cast<unsigned long long>(platform.stats().replicas_reclaimed));

  // Produce one real artifact: invoke once more and write the scaled PPM.
  funcs::Response out;
  out.status = 0;
  platform.invoke("resizer-prebaked", funcs::sample_request("image-resizer"),
                  [&](const funcs::Response& res, const faas::RequestMetrics&) {
                    out = res;
                  });
  while (out.status == 0 && sim.step()) {
  }
  const char* path = argc > 1 ? argv[1] : "resized.ppm";
  std::ofstream file{path, std::ios::binary};
  file.write(out.body.data(), static_cast<std::streamsize>(out.body.size()));
  std::printf("wrote %s (%zu bytes, %s)\n", path, out.body.size(),
              out.headers.count("X-Scaled-Size")
                  ? out.headers.at("X-Scaled-Size").c_str()
                  : "?");
  return 0;
}
