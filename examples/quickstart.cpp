// Quickstart: bake a snapshot of a function and compare replica start-up
// against the standard fork-exec path.
//
//   build/examples/quickstart
//
// Walks the core API end to end: simulated testbed -> function build ->
// prebake (checkpoint via the CRIU-model engine) -> vanilla vs restored
// start -> serve a real request through both replicas.
#include <cstdio>

#include "core/prebaker.hpp"
#include "core/startup.hpp"
#include "exp/calibration.hpp"
#include "faas/builder.hpp"

using namespace prebake;

int main() {
  // 1. A simulated testbed: virtual clock + kernel calibrated to the
  // paper's machine (i5-3470S, Linux 4.15, Java 8).
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  funcs::SharedAssets assets;
  core::StartupService startup{kernel, exp::testbed_runtime(), assets};

  // 2. Describe a function (here: the paper's Markdown Render) and build
  // its deployable artifacts.
  faas::FunctionBuilder builder{kernel, startup};
  faas::BuildResult built =
      builder.build(exp::markdown_spec(), std::nullopt, sim::Rng{1});
  const rt::FunctionSpec& spec = built.spec;

  // 3. Prebake: start it once, serve one warm-up request (forces lazy class
  // loading + JIT), checkpoint the warmed process.
  core::PrebakeConfig cfg;
  cfg.policy = core::SnapshotPolicy::warmup(1);
  core::Prebaker prebaker{startup};
  const core::BakedSnapshot snapshot = prebaker.bake(spec, cfg, sim::Rng{2});
  std::printf("baked '%s' [%s]: %.1f MiB snapshot in %.1f ms (build time)\n",
              snapshot.function_name.c_str(), snapshot.policy.tag().c_str(),
              static_cast<double>(snapshot.images.nominal_total()) / (1 << 20),
              snapshot.build_time.to_millis());

  // 4. Start one replica each way and compare.
  core::ReplicaProcess vanilla = startup.start_vanilla(spec, sim::Rng{3});
  core::PrebakedStartOptions options;
  options.restore.fs_prefix = snapshot.fs_prefix;
  core::ReplicaProcess prebaked =
      startup.start_prebaked(spec, snapshot.images, options, sim::Rng{3});

  std::printf("\n            %-10s %-10s %-10s %-10s %-10s\n", "clone", "exec",
              "rts", "appinit", "TOTAL");
  auto row = [](const char* label, const core::StartupBreakdown& b) {
    std::printf("%-10s  %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f (ms)\n", label,
                b.clone_time.to_millis(), b.exec_time.to_millis(),
                b.rts_time.to_millis(), b.appinit_stacked().to_millis(),
                b.total.to_millis());
  };
  row("vanilla", vanilla.breakdown);
  row("prebaked", prebaked.breakdown);
  std::printf("\nspeed-up: %.0f%% (vanilla/prebaked)\n",
              vanilla.breakdown.total / prebaked.breakdown.total * 100.0);

  // 5. Both replicas run the same real business logic.
  const funcs::Request req = funcs::sample_request("markdown");
  const funcs::Response a = vanilla.runtime->handle(req);
  const funcs::Response b = prebaked.runtime->handle(req);
  std::printf("responses: %d / %d, bodies %s (%zu bytes of HTML)\n", a.status,
              b.status, a.body == b.body ? "identical" : "DIFFER",
              a.body.size());

  startup.reclaim(vanilla);
  startup.reclaim(prebaked);
  return 0;
}
