// Autoscaling under a step load: how much does prebaking soften the
// scale-up penalty when demand suddenly grows (the cold-start case the
// paper's Figure 1 describes — "whenever the FaaS platform policy decides
// to scale the function up to address a demand growth").
//
//   build/examples/autoscale_burst
//
// A markdown-rendering service receives a low background rate, then a step
// to a much higher rate. Every additional replica the platform spins up is
// a cold start; the example compares the user-visible latency of the two
// start techniques during the step.
#include <cstdio>

#include "exp/calibration.hpp"
#include "exp/report.hpp"
#include "faas/platform.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

struct PhaseStats {
  std::vector<double> steady_ms;
  std::vector<double> surge_ms;
  int surge_cold = 0;
};

PhaseStats drive(faas::Platform& platform, const std::string& fn) {
  PhaseStats out;
  sim::Simulation& sim = platform.kernel().sim();
  const funcs::Request req = funcs::sample_request("markdown");
  const sim::TimePoint t0 = sim.now();

  // Phase 1 (steady): one request every 200 ms for 20 s — a single replica
  // keeps up.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(t0 + sim::Duration::millis(200) * static_cast<double>(i), [&, fn] {
      platform.invoke(fn, req,
                      [&](const funcs::Response&, const faas::RequestMetrics& m) {
                        out.steady_ms.push_back(m.total.to_millis());
                      });
    });
  }
  // Phase 2 (surge): at t=25 s, 60 requests arrive at 1 ms spacing — well
  // above what one replica (≈3 ms/request) can absorb, so the platform must
  // scale out and every new replica start is on the critical path.
  const sim::TimePoint surge = t0 + sim::Duration::seconds(25);
  for (int i = 0; i < 60; ++i) {
    sim.schedule_at(surge + sim::Duration::millis(1) * static_cast<double>(i), [&, fn] {
      platform.invoke(fn, req,
                      [&](const funcs::Response&, const faas::RequestMetrics& m) {
                        out.surge_ms.push_back(m.total.to_millis());
                        if (m.cold_start) ++out.surge_cold;
                      });
    });
  }
  sim.run_until(surge + sim::Duration::seconds(120));
  return out;
}

void report(const char* label, const PhaseStats& s) {
  const auto steady = stats::summarize(s.steady_ms);
  const auto surge = stats::summarize(s.surge_ms);
  std::printf("%-18s steady p50=%6.1f p95=%6.1f | surge p50=%6.1f p95=%6.1f "
              "max=%6.1f ms (cold starts: %d)\n",
              label, steady.median, steady.p95, surge.median, surge.p95,
              surge.max, s.surge_cold);
}

}  // namespace

int main() {
  std::printf("== autoscale step-load: Vanilla vs PB-Warmup scale-out ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(60);
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 7};
  platform.resources().add_node("node-1", 16ull << 30);

  rt::FunctionSpec vanilla_fn = exp::markdown_spec();
  vanilla_fn.name = "md-vanilla";
  platform.deploy(vanilla_fn, faas::StartMode::kVanilla);
  rt::FunctionSpec prebaked_fn = exp::markdown_spec();
  prebaked_fn.name = "md-prebaked";
  platform.deploy(prebaked_fn, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));

  const PhaseStats vanilla = drive(platform, "md-vanilla");
  const PhaseStats prebaked = drive(platform, "md-prebaked");

  report("md-vanilla", vanilla);
  report("md-prebaked", prebaked);

  const double v95 = stats::percentile(vanilla.surge_ms, 0.95);
  const double p95 = stats::percentile(prebaked.surge_ms, 0.95);
  std::printf("\nsurge p95 improvement from prebaking: %.0f%%\n",
              (1.0 - p95 / v95) * 100.0);
  std::printf("replicas started in total: %llu\n",
              static_cast<unsigned long long>(platform.stats().replicas_started));
  return 0;
}
