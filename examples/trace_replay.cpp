// Trace-driven comparison: generate a diurnal invocation trace, persist it
// as CSV, re-parse it, and replay the identical timeline against a Vanilla
// and a prebaked deployment.
//
//   build/examples/trace_replay [trace.csv]
//
// The diurnal pattern is where idle-timeout reclaim hurts: the replica pool
// drains in every trough and every ramp-up pays a train of cold starts.
#include <cstdio>
#include <fstream>

#include "exp/calibration.hpp"
#include "faas/trace.hpp"
#include "stats/descriptive.hpp"

using namespace prebake;

namespace {

struct RunResult {
  faas::TraceReplayResult replay;
  std::uint64_t cold_starts = 0;
};

RunResult run(const std::vector<faas::TraceEvent>& events,
              faas::StartMode mode) {
  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(45);
  faas::Platform platform{kernel, exp::testbed_runtime(), cfg, 1001};
  platform.resources().add_node("node-1", 16ull << 30);
  platform.deploy(exp::markdown_spec(), mode, core::SnapshotPolicy::warmup(1));

  RunResult out;
  out.replay = faas::replay_trace(platform, events);
  out.cold_starts = platform.stats().cold_starts;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== diurnal trace replay: Vanilla vs PB-Warmup ==\n\n");

  // 10-minute trace, 2-minute "day": 0.2 Hz troughs, 12 Hz peaks.
  const auto generated = faas::generate_diurnal_trace(
      "markdown-render", 0.2, 12.0, sim::Duration::seconds(120),
      sim::Duration::seconds(600), 777);

  // Persist + re-parse: the CSV file is the exchange format.
  const char* path = argc > 1 ? argv[1] : "diurnal.csv";
  {
    std::ofstream file{path};
    file << faas::format_trace_csv(generated);
  }
  std::string text;
  {
    std::ifstream file{path};
    text.assign(std::istreambuf_iterator<char>{file}, {});
  }
  const auto events = faas::parse_trace_csv(text);
  std::printf("trace: %zu invocations over %.0f s (written to %s)\n\n",
              events.size(), events.back().at.to_seconds(), path);

  const RunResult vanilla = run(events, faas::StartMode::kVanilla);
  const RunResult prebaked = run(events, faas::StartMode::kPrebaked);

  auto report = [](const char* label, const RunResult& r) {
    std::vector<double> totals;
    for (const auto& m : r.replay.metrics) totals.push_back(m.total.to_millis());
    std::printf("%-12s ok=%llu cold=%llu  p50=%6.2f  p95=%6.2f  p99=%7.2f  "
                "max=%7.2f ms\n",
                label,
                static_cast<unsigned long long>(r.replay.responses_ok),
                static_cast<unsigned long long>(r.cold_starts),
                stats::percentile(totals, 0.50), stats::percentile(totals, 0.95),
                stats::percentile(totals, 0.99), stats::max(totals));
  };
  report("vanilla", vanilla);
  report("prebaked", prebaked);

  std::vector<double> v, p;
  for (const auto& m : vanilla.replay.metrics)
    if (m.cold_start) v.push_back(m.total.to_millis());
  for (const auto& m : prebaked.replay.metrics)
    if (m.cold_start) p.push_back(m.total.to_millis());
  if (!v.empty() && !p.empty())
    std::printf("\ncold-start latency medians: vanilla %.1f ms vs prebaked "
                "%.1f ms (-%.0f%%)\n",
                stats::median(v), stats::median(p),
                (1.0 - stats::median(p) / stats::median(v)) * 100.0);
  return 0;
}
