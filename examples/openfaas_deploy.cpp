// OpenFaaS-style deployment walkthrough (paper Section 5): the faas-cli
// new / build / push / deploy pipeline with a CRIU template, narrated step
// by step.
//
//   build/examples/openfaas_deploy
#include <cstdio>

#include "exp/calibration.hpp"
#include "openfaas/deployment.hpp"

using namespace prebake;

int main() {
  std::printf("== OpenFaaS + prebaking walkthrough ==\n\n");

  sim::Simulation sim;
  os::Kernel kernel{sim, exp::testbed_costs()};
  openfaas::ProviderConfig provider;
  provider.orchestrator = "kubernetes";
  provider.allow_privileged = true;
  openfaas::Deployment d{kernel, exp::testbed_runtime(), provider};

  std::printf("$ faas-cli template ls\n");
  for (const std::string& name : d.templates().names())
    std::printf("    %-18s criu=%s\n", name.c_str(),
                d.templates().get(name).uses_criu ? "yes" : "no");

  std::printf("\n$ faas-cli new resizer --lang java8-criu-warm\n");
  const openfaas::FunctionProject project =
      d.new_function("resizer", "java8-criu-warm", exp::image_resizer_spec());
  std::printf("    project created (runtime %s)\n",
              project.spec.runtime_binary.c_str());

  std::printf("\n$ faas-cli build -f resizer.yml   # privileged buildx\n");
  openfaas::ContainerImage image = d.build(project);
  std::printf("    layers: base %.1f MiB + function %.1f MiB + snapshot "
              "%.1f MiB (warmed with %u request)\n",
              image.base_layer_bytes / 1048576.0,
              image.function_layer_bytes / 1048576.0,
              image.snapshot_layer_bytes / 1048576.0, image.warmup_requests);

  std::printf("\n$ faas-cli push -f resizer.yml\n");
  d.push(std::move(image));
  std::printf("    pushed %zu image(s) to the registry\n", d.repository().size());

  std::printf("\n$ faas-cli deploy -f resizer.yml\n");
  d.deploy("resizer");
  std::printf("    deployed behind the gateway\n");

  std::printf("\n$ curl -d @photo http://gateway:8080/function/resizer\n");
  funcs::Response res;
  const openfaas::InvocationRecord cold =
      d.invoke("resizer", funcs::sample_request("image-resizer"), &res);
  std::printf("    HTTP %d in %.1f ms (cold start; watchdog ran criu "
              "restore in %.1f ms)\n",
              cold.status, cold.total.to_millis(), cold.startup.to_millis());

  const openfaas::InvocationRecord warm =
      d.invoke("resizer", funcs::sample_request("image-resizer"));
  std::printf("    HTTP %d in %.1f ms (warm replica)\n", warm.status,
              warm.total.to_millis());

  std::printf("\n$ faas-cli scale resizer --replicas 3\n");
  d.scale("resizer", 3);
  std::printf("    %u ready replicas (each restored from the image's "
              "snapshot layer)\n",
              d.ready_replicas("resizer"));
  return 0;
}
