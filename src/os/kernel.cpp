#include "os/kernel.hpp"

#include <stdexcept>

namespace prebake::os {

Process& Kernel::require_mut(Pid pid) {
  const auto it = procs_.find(pid);
  if (it == procs_.end())
    throw std::invalid_argument{"Kernel: no such process " + std::to_string(pid)};
  return *it->second;
}

Process& Kernel::process(Pid pid) { return require_mut(pid); }

const Process& Kernel::process(Pid pid) const {
  const auto it = procs_.find(pid);
  if (it == procs_.end())
    throw std::invalid_argument{"Kernel: no such process " + std::to_string(pid)};
  return *it->second;
}

bool Kernel::alive(Pid pid) const {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) return false;
  const ProcState s = it->second->state();
  return s != ProcState::kZombie && s != ProcState::kDead;
}

std::vector<Pid> Kernel::pids() const {
  std::vector<Pid> out;
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) out.push_back(pid);
  return out;
}

Pid Kernel::clone_process(Pid parent, const CloneOptions& opts) {
  sim_->advance(costs_.clone_call);

  Pid child_pid;
  if (opts.set_child_pid) {
    // clone_with_pid: writing /proc/sys/kernel/ns_last_pid or clone3 with
    // set_tid requires CAP_CHECKPOINT_RESTORE (or CAP_SYS_ADMIN) [11].
    const Process* par = parent == kNoPid ? nullptr : &process(parent);
    bool privileged = has_cap(opts.caller_caps, Cap::kCheckpointRestore) ||
                      has_cap(opts.caller_caps, Cap::kSysAdmin);
    if (par != nullptr)
      privileged = privileged || par->has(Cap::kCheckpointRestore) ||
                   par->has(Cap::kSysAdmin);
    if (!privileged)
      throw std::runtime_error{
          "clone: choosing a child pid requires CAP_CHECKPOINT_RESTORE"};
    if (opts.child_pid <= 0)
      throw std::invalid_argument{"clone: invalid requested pid"};
    if (procs_.contains(opts.child_pid))
      throw std::runtime_error{"clone: requested pid already in use"};
    child_pid = opts.child_pid;
  } else {
    while (procs_.contains(next_pid_)) ++next_pid_;
    child_pid = next_pid_++;
  }

  std::string name = "child";
  auto child = std::make_unique<Process>(child_pid, parent, name);
  if (parent != kNoPid) {
    Process& par = require_mut(parent);
    child->set_name(par.name() + "-child");
    child->replace_mm(opts.cow_tracked ? par.mm().clone_cow()
                                       : par.mm().clone_for_fork());
    child->ns() = par.ns();
    // File descriptors are inherited across fork.
    for (const auto& [fd, desc] : par.fds()) child->fds()[fd] = desc;
  }
  if (opts.new_pid_ns) child->ns().pid_ns = static_cast<std::uint64_t>(child_pid);
  if (opts.new_mnt_ns) child->ns().mnt_ns = static_cast<std::uint64_t>(child_pid);
  if (opts.new_net_ns) child->ns().net_ns = static_cast<std::uint64_t>(child_pid);
  child->set_state(ProcState::kRunning);
  child->set_start_time(sim_->now());
  procs_[child_pid] = std::move(child);
  return child_pid;
}

void Kernel::exec(Pid pid, const std::string& binary_path,
                  std::vector<std::string> argv) {
  Process& p = require_mut(pid);
  if (p.state() != ProcState::kRunning)
    throw std::logic_error{"exec: process not running"};
  const std::uint64_t bin_size = fs_.size_of(binary_path);  // throws if missing

  sim_->advance(costs_.exec_base);
  sim_->advance(costs_.exec_per_mib *
                (static_cast<double>(bin_size) / (1024.0 * 1024.0)));
  // Reading the binary's first pages from storage.
  fs_.charge_read(binary_path, std::min<std::uint64_t>(bin_size, 2 * 1024 * 1024));

  p.mm().clear();
  p.set_name(binary_path.substr(binary_path.find_last_of('/') + 1));
  p.set_argv(std::move(argv));
  // Text + rodata mapped file-backed; initial heap and stack anonymous.
  const auto text = p.mm().map(bin_size, Prot::kReadExec, VmaKind::kFileBacked,
                               p.name() + ".text",
                               std::make_shared<PatternSource>(bin_size ^ 0x7e57),
                               /*populate=*/false, binary_path);
  p.mm().touch(text, 0, 64);  // demand-page the entry pages
  p.mm().map(512 * 1024, Prot::kReadWrite, VmaKind::kAnon, "[stack]",
             std::make_shared<PatternSource>(0x57ac + pid), true);
  p.mm().map(1024 * 1024, Prot::kReadWrite, VmaKind::kAnon, "[heap]",
             std::make_shared<PatternSource>(0x4ea9 + pid), false);
}

void Kernel::exit_process(Pid pid, int code) {
  Process& p = require_mut(pid);
  sim_->advance(costs_.exit_call);
  p.set_exit_code(code);
  p.set_state(ProcState::kZombie);
  p.mm().clear();
}

int Kernel::reap(Pid pid) {
  Process& p = require_mut(pid);
  if (p.state() != ProcState::kZombie)
    throw std::logic_error{"reap: process is not a zombie"};
  const int code = p.exit_code();
  procs_.erase(pid);
  recordings_.erase(pid);
  return code;
}

void Kernel::kill_process(Pid pid) {
  Process& p = require_mut(pid);
  if (p.state() == ProcState::kZombie || p.state() == ProcState::kDead) return;
  p.set_exit_code(137);
  p.set_state(ProcState::kZombie);
  p.mm().clear();
}

VmaId Kernel::mmap(Pid pid, std::uint64_t length, Prot prot, VmaKind kind,
                   std::string name, std::shared_ptr<PageSource> source,
                   bool populate, std::string backing_path) {
  Process& p = require_mut(pid);
  const VmaId id = p.mm().map(length, prot, kind, std::move(name),
                              std::move(source), populate, std::move(backing_path));
  if (populate) {
    const std::uint64_t pages = (length + kPageSize - 1) / kPageSize;
    sim_->advance(costs_.minor_fault * static_cast<double>(pages));
  }
  return id;
}

void Kernel::munmap(Pid pid, VmaId id) { require_mut(pid).mm().unmap(id); }

void Kernel::fault_in(Pid pid, VmaId id, std::uint64_t first_page,
                      std::uint64_t pages, bool write) {
  Process& p = require_mut(pid);
  charge_faults(p.mm().touch(id, first_page, pages, write));
  maybe_record(p, pid, id, first_page, pages);
}

void Kernel::fault_in_all(Pid pid, VmaId id, bool write) {
  Process& p = require_mut(pid);
  charge_faults(p.mm().touch_all(id, write));
  if (const Vma* vma = p.mm().find(id))
    maybe_record(p, pid, id, 0, vma->page_count());
}

void Kernel::populate_run(Pid pid, VmaId id, std::uint64_t first_page,
                          std::uint64_t touch_pages,
                          std::span<const std::uint8_t> payload) {
  Process& p = require_mut(pid);
  charge_faults(p.mm().populate_run(id, first_page, touch_pages, payload));
  // Only the touched prefix becomes resident; the rest of the payload is
  // buffer content behind non-present pages and is not part of the WS.
  maybe_record(p, pid, id, first_page, touch_pages);
}

void Kernel::start_fault_recording(Pid pid) {
  require_mut(pid);  // validates the pid
  recordings_[pid].clear();
}

std::map<VmaId, PageBitmap> Kernel::stop_fault_recording(Pid pid) {
  auto it = recordings_.find(pid);
  if (it == recordings_.end()) return {};
  std::map<VmaId, PageBitmap> out = std::move(it->second);
  recordings_.erase(it);
  return out;
}

void Kernel::maybe_record(const Process& p, Pid pid, VmaId id,
                          std::uint64_t first_page, std::uint64_t pages) {
  if (recordings_.empty()) return;
  auto it = recordings_.find(pid);
  if (it == recordings_.end()) return;
  const Vma* vma = p.mm().find(id);
  if (vma == nullptr) return;
  PageBitmap& bm = it->second[id];
  if (bm.size() != vma->page_count()) bm.assign(vma->page_count(), false);
  bm.set_range(first_page, pages);
}

std::uint64_t Kernel::verify_run(Pid pid, VmaId id, std::uint64_t first_page,
                                 std::span<const std::uint64_t> expected) {
  Process& p = require_mut(pid);
  const Vma* vma = p.mm().find(id);
  if (vma == nullptr)
    throw std::invalid_argument{"Kernel::verify_run: unknown vma"};
  const std::uint64_t matched = vma->source->match_digests(first_page, expected);
  // Each verified page is read once. memcpy_cost is linear with no base
  // term, so cost(page) * N aggregated here equals N per-page advances.
  if (matched > 0)
    sim_->advance(costs_.memcpy_cost(kPageSize) * static_cast<double>(matched));
  return matched;
}

void Kernel::charge_faults(const AddressSpace::TouchResult& touched) {
  sim_->advance(costs_.minor_fault *
                static_cast<double>(touched.newly_resident));
  // Breaking COW sharing copies the page before the write proceeds.
  if (touched.cow_broken > 0)
    sim_->advance(costs_.memcpy_cost(kPageSize) *
                  static_cast<double>(touched.cow_broken));
}

void Kernel::freeze(Pid pid, Cap tracer_caps) {
  Process& p = require_mut(pid);
  if (p.state() != ProcState::kRunning)
    throw std::logic_error{"freeze: process not running"};
  if (!has_cap(tracer_caps, Cap::kSysPtrace) &&
      !has_cap(tracer_caps, Cap::kSysAdmin) &&
      !has_cap(tracer_caps, Cap::kCheckpointRestore))
    throw std::runtime_error{"freeze: tracer lacks CAP_SYS_PTRACE"};
  for (Thread& t : p.threads()) {
    t.state = ThreadState::kStopped;
    sim_->advance(costs_.freeze_per_thread);
  }
  p.set_state(ProcState::kFrozen);
}

void Kernel::thaw(Pid pid) {
  Process& p = require_mut(pid);
  if (p.state() != ProcState::kFrozen)
    throw std::logic_error{"thaw: process not frozen"};
  for (Thread& t : p.threads()) t.state = ThreadState::kRunning;
  p.set_state(ProcState::kRunning);
}

void Kernel::ptrace_seize(Pid pid, Cap tracer_caps) {
  Process& p = require_mut(pid);
  if (!has_cap(tracer_caps, Cap::kSysPtrace) &&
      !has_cap(tracer_caps, Cap::kSysAdmin) &&
      !has_cap(tracer_caps, Cap::kCheckpointRestore))
    throw std::runtime_error{"ptrace_seize: permission denied"};
  for (Thread& t : p.threads()) {
    sim_->advance(costs_.ptrace_attach);
    t.state = ThreadState::kTraced;
  }
}

void Kernel::inject_parasite(Pid pid, std::uint64_t blob_bytes) {
  Process& p = require_mut(pid);
  if (p.state() != ProcState::kFrozen)
    throw std::logic_error{"inject_parasite: target must be frozen"};
  if (p.parasite_present())
    throw std::logic_error{"inject_parasite: parasite already present"};
  sim_->advance(costs_.parasite_inject);
  sim_->advance(costs_.memcpy_cost(blob_bytes));
  p.mm().map(blob_bytes, Prot::kReadExec, VmaKind::kAnon, "[criu-parasite]",
             std::make_shared<PatternSource>(0x9a7a517e), true);
  p.set_parasite_present(true);
}

void Kernel::cure_parasite(Pid pid) {
  Process& p = require_mut(pid);
  if (!p.parasite_present())
    throw std::logic_error{"cure_parasite: no parasite present"};
  sim_->advance(costs_.parasite_cure);
  // Remove the parasite mapping.
  for (const Vma& vma : p.mm().vmas()) {
    if (vma.name == "[criu-parasite]") {
      p.mm().unmap(vma.id);
      break;
    }
  }
  p.set_parasite_present(false);
}

std::vector<PagemapRange> Kernel::pagemap(Pid pid) {
  Process& p = require_mut(pid);
  std::vector<PagemapRange> out;
  std::uint64_t resident = 0;
  for (const Vma& vma : p.mm().vmas()) {
    std::uint64_t run_start = 0;
    bool in_run = false;
    bool run_dirty = false;
    const std::uint64_t n = vma.page_count();
    for (std::uint64_t i = 0; i <= n; ++i) {
      const bool present = i < n && vma.present[i];
      const bool dirty = i < n && vma.dirty[i];
      if (present && !in_run) {
        in_run = true;
        run_start = i;
        run_dirty = dirty;
      } else if (in_run && (!present || dirty != run_dirty)) {
        out.push_back(PagemapRange{vma.id, run_start, i - run_start, run_dirty});
        in_run = present;
        run_start = i;
        run_dirty = dirty;
      }
      if (present) ++resident;
    }
  }
  sim_->advance(costs_.pagemap_per_page * static_cast<double>(resident));
  return out;
}

void Kernel::clear_soft_dirty(Pid pid) {
  require_mut(pid).mm().clear_soft_dirty();
}

std::uint64_t Kernel::create_pipe() { return next_pipe_++; }

void Kernel::pipe_transfer(std::uint64_t /*pipe_id*/, std::uint64_t bytes) {
  sim_->advance(costs_.pipe_cost(bytes));
}

}  // namespace prebake::os
