// Simulated processes and threads.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "os/address_space.hpp"
#include "sim/time.hpp"

namespace prebake::os {

using Pid = std::int32_t;
using Tid = std::int32_t;
inline constexpr Pid kNoPid = -1;

enum class ProcState : std::uint8_t {
  kEmbryo,   // cloned, not yet running
  kRunning,
  kFrozen,   // all threads stopped (freezer / ptrace-interrupt)
  kZombie,   // exited, not reaped
  kDead,     // reaped
};

enum class ThreadState : std::uint8_t { kRunning, kStopped, kTraced };

struct Thread {
  Tid tid = 0;
  ThreadState state = ThreadState::kRunning;
  // Simulated register file: enough architectural state for the CRIU image
  // round trip to be meaningful (ip/sp + 6 GP registers).
  std::array<std::uint64_t, 8> regs{};
};

// Capability bits (subset relevant to checkpoint/restore).
enum class Cap : std::uint32_t {
  kNone = 0,
  kSysAdmin = 1u << 0,
  kSysPtrace = 1u << 1,
  kCheckpointRestore = 1u << 2,  // Linux 5.9+ CAP_CHECKPOINT_RESTORE [11]
};
constexpr Cap operator|(Cap a, Cap b) {
  return static_cast<Cap>(static_cast<std::uint32_t>(a) |
                          static_cast<std::uint32_t>(b));
}
constexpr bool has_cap(Cap set, Cap bit) {
  return (static_cast<std::uint32_t>(set) & static_cast<std::uint32_t>(bit)) != 0;
}

enum class FdKind : std::uint8_t { kFile, kPipeRead, kPipeWrite, kSocket };

struct FdDesc {
  int fd = -1;
  FdKind kind = FdKind::kFile;
  std::string path;   // file path or socket address
  std::uint64_t pipe_id = 0;
};

struct Namespaces {
  std::uint64_t pid_ns = 0;
  std::uint64_t mnt_ns = 0;
  std::uint64_t net_ns = 0;
  bool operator==(const Namespaces&) const = default;
};

class Process {
 public:
  Process(Pid pid, Pid ppid, std::string name) : pid_{pid}, ppid_{ppid}, name_{std::move(name)} {
    threads_.push_back(Thread{pid, ThreadState::kRunning, {}});
  }

  Pid pid() const { return pid_; }
  Pid ppid() const { return ppid_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const std::vector<std::string>& argv() const { return argv_; }
  void set_argv(std::vector<std::string> a) { argv_ = std::move(a); }

  ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }
  int exit_code() const { return exit_code_; }
  void set_exit_code(int c) { exit_code_ = c; }

  AddressSpace& mm() { return mm_; }
  const AddressSpace& mm() const { return mm_; }
  void replace_mm(AddressSpace mm) { mm_ = std::move(mm); }

  std::vector<Thread>& threads() { return threads_; }
  const std::vector<Thread>& threads() const { return threads_; }
  Thread& spawn_thread(Tid tid);

  std::map<int, FdDesc>& fds() { return fds_; }
  const std::map<int, FdDesc>& fds() const { return fds_; }
  int install_fd(FdDesc desc);  // picks the next free fd number

  Cap caps() const { return caps_; }
  void grant(Cap c) { caps_ = caps_ | c; }
  bool has(Cap c) const { return has_cap(caps_, c); }

  Namespaces& ns() { return ns_; }
  const Namespaces& ns() const { return ns_; }

  bool parasite_present() const { return parasite_present_; }
  void set_parasite_present(bool v) { parasite_present_ = v; }

  sim::TimePoint start_time() const { return start_time_; }
  void set_start_time(sim::TimePoint t) { start_time_ = t; }

 private:
  Pid pid_;
  Pid ppid_;
  std::string name_;
  std::vector<std::string> argv_;
  ProcState state_ = ProcState::kEmbryo;
  int exit_code_ = 0;
  AddressSpace mm_;
  std::vector<Thread> threads_;
  std::map<int, FdDesc> fds_;
  Cap caps_ = Cap::kNone;
  Namespaces ns_{};
  bool parasite_present_ = false;
  sim::TimePoint start_time_{};
};

}  // namespace prebake::os
