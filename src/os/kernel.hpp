// The simulated kernel: the syscall surface used by the runtime model, the
// FaaS platform, and the CRIU-model checkpoint/restore engine.
//
// Every operation charges calibrated time to the owning Simulation clock, so
// "how long did this process take to become ready" falls out of replaying the
// same sequence of kernel operations a real start-up performs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "os/cost_model.hpp"
#include "os/faults.hpp"
#include "os/filesystem.hpp"
#include "os/process.hpp"
#include "sim/simulation.hpp"

namespace prebake::os {

struct CloneOptions {
  bool set_child_pid = false;  // CLONE with a chosen pid (CRIU restore path);
  Pid child_pid = kNoPid;      // requires CAP_CHECKPOINT_RESTORE or root.
  bool new_pid_ns = false;
  bool new_mnt_ns = false;
  bool new_net_ns = false;
  // Track COW sharing explicitly (template-clone restore, DESIGN.md §6f):
  // the child's resident pages are marked shared with the parent and each
  // first write is charged as a page copy. Off = the legacy fork semantics
  // (shared sources, free writes) used by zygotes and the CRIU restorer.
  bool cow_tracked = false;
  // Capabilities of the calling context (used when `parent` is kNoPid or the
  // privilege does not come from the parent process, e.g. the CRIU restorer).
  Cap caller_caps = Cap::kNone;
};

// One entry of the /proc/$pid/pagemap walk: a run of resident pages.
struct PagemapRange {
  VmaId vma = 0;
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
  bool dirty = false;
};

class Kernel {
 public:
  Kernel(sim::Simulation& sim, CostModel costs = {})
      : sim_{&sim}, costs_{std::move(costs)}, fs_{sim, costs_, &injector_},
        tracer_{sim} {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulation& sim() { return *sim_; }
  const CostModel& costs() const { return costs_; }
  CostModel& costs_mutable() { return costs_; }
  FileSystem& fs() { return fs_; }
  // The kernel-wide fault injector (disabled and zero-cost by default); the
  // chaos scenarios configure it with a FaultPlan before running traffic.
  faults::Injector& faults() { return injector_; }
  const faults::Injector& faults() const { return injector_; }
  // The kernel-wide tracer (disabled and zero-cost by default); scenario
  // runners enable it per-testbed to capture a structured timeline.
  obs::Tracer& trace() { return tracer_; }
  const obs::Tracer& trace() const { return tracer_; }

  // --- process lifecycle -------------------------------------------------
  // clone(2): duplicates `parent` (COW address space). Returns the child pid.
  Pid clone_process(Pid parent, const CloneOptions& opts = {});
  // execve(2): replaces the image of `pid` with `binary_path` (must exist in
  // the fs; its size drives the mapping cost). Clears the address space and
  // maps the binary text/data plus a small initial heap/stack.
  void exec(Pid pid, const std::string& binary_path,
            std::vector<std::string> argv);
  void exit_process(Pid pid, int code);
  // waitpid(2)-style reap; returns the exit code.
  int reap(Pid pid);
  void kill_process(Pid pid);  // SIGKILL: straight to zombie

  Process& process(Pid pid);
  const Process& process(Pid pid) const;
  bool alive(Pid pid) const;
  std::vector<Pid> pids() const;
  std::size_t process_count() const { return procs_.size(); }

  // --- memory ------------------------------------------------------------
  // mmap into a process; returns the VMA id. Faulting is charged per page.
  VmaId mmap(Pid pid, std::uint64_t length, Prot prot, VmaKind kind,
             std::string name, std::shared_ptr<PageSource> source,
             bool populate = false, std::string backing_path = {});
  void munmap(Pid pid, VmaId id);
  // Touch pages (minor faults charged for newly resident pages).
  void fault_in(Pid pid, VmaId id, std::uint64_t first_page,
                std::uint64_t pages, bool write = false);
  void fault_in_all(Pid pid, VmaId id, bool write = false);
  // Bulk replay APIs (DESIGN.md §6g), used by the CRIU restorer's per-run
  // pagemap replay. populate_run copies a whole run's payload bytes into the
  // VMA in one memcpy and faults `touch_pages` pages in, charging exactly
  // what the equivalent fault_in would — one aggregated advance.
  void populate_run(Pid pid, VmaId id, std::uint64_t first_page,
                    std::uint64_t touch_pages,
                    std::span<const std::uint8_t> payload);
  // Verify a run of pages against expected digests: returns how many leading
  // pages match (expected.size() = the whole run verifies). Charges one page
  // read per matching page in a single advance — the total is identical to
  // the per-page verification loop this replaces.
  std::uint64_t verify_run(Pid pid, VmaId id, std::uint64_t first_page,
                           std::span<const std::uint64_t> expected);

  // --- fault recording (REAP-style working-set capture, DESIGN.md §6j) ----
  // Arm per-page fault capture for `pid`: every page of `pid` made resident
  // through fault_in / fault_in_all / populate_run is marked in a per-VMA
  // bitmap until stop_fault_recording. Recording is pure bookkeeping — it
  // charges no simulated time, so an instrumented restore costs exactly what
  // an uninstrumented one does. Re-arming an already recording pid resets
  // its capture.
  void start_fault_recording(Pid pid);
  // Disarm and return the captured bitmaps, keyed by VMA id and sized to
  // each VMA. Returns an empty map when `pid` was not recording.
  std::map<VmaId, PageBitmap> stop_fault_recording(Pid pid);
  bool fault_recording(Pid pid) const {
    return recordings_.find(pid) != recordings_.end();
  }

  // --- freezer + ptrace (CRIU building blocks) ----------------------------
  // Stop all threads (cgroup freezer / PTRACE_INTERRUPT equivalent). Charged
  // per thread. Requires tracer_caps to include SysPtrace unless self.
  void freeze(Pid pid, Cap tracer_caps);
  void thaw(Pid pid);
  void ptrace_seize(Pid pid, Cap tracer_caps);
  // Map the parasite blob into the target and start it (the target must be
  // frozen). Models CRIU's compel infection step.
  void inject_parasite(Pid pid, std::uint64_t blob_bytes);
  void cure_parasite(Pid pid);

  // Walk /proc/$pid/pagemap: returns runs of resident pages. Charged per
  // resident page examined.
  std::vector<PagemapRange> pagemap(Pid pid);
  // Reset soft-dirty bits (pre-dump support).
  void clear_soft_dirty(Pid pid);

  // --- pipes (parasite page channel) --------------------------------------
  std::uint64_t create_pipe();
  // Transfer bytes through a pipe (charged at pipe bandwidth).
  void pipe_transfer(std::uint64_t pipe_id, std::uint64_t bytes);

 private:
  Process& require_mut(Pid pid);
  void charge_faults(const AddressSpace::TouchResult& touched);
  void maybe_record(const Process& p, Pid pid, VmaId id,
                    std::uint64_t first_page, std::uint64_t pages);

  sim::Simulation* sim_;
  CostModel costs_;
  faults::Injector injector_;  // must precede fs_, which captures a pointer
  FileSystem fs_;
  obs::Tracer tracer_;
  std::map<Pid, std::unique_ptr<Process>> procs_;
  // Armed working-set captures; empty in every configuration that does not
  // record, so the hot-path guard is one branch on an empty map.
  std::map<Pid, std::map<VmaId, PageBitmap>> recordings_;
  Pid next_pid_ = 100;
  std::uint64_t next_pipe_ = 1;
};

}  // namespace prebake::os
