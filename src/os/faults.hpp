// Deterministic fault injection for the simulated kernel.
//
// The paper's prebaking pipeline assumes every CRIU restore succeeds; real
// deployments see corrupt images, flaky storage and registry stalls (REAP /
// vHive treat snapshot loading as a fallible I/O pipeline — PAPERS.md). The
// injector sits inside the Kernel and is consulted at the fault *sites* of
// the restore pipeline: filesystem reads of image files, image-record CRC
// checks, registry transfers, the lazy-pages server, and node placement.
//
// Determinism contract: every decision at site S is a pure function of
// (plan.seed, S, per-site draw index) via the stateless splitmix64 hash —
// never of wall-clock, thread identity, or what other sites drew. Same seed
// + same fault plan => identical fault trace at any thread count. With the
// default (empty) plan the injector is a zero-cost no-op: no hashes are
// computed, no counters advance, and every simulated run is bit-identical
// to one without the injector compiled in.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace prebake::faults {

// The places a fault can fire. Each site owns an independent draw counter so
// adding draws at one site never perturbs another's stream.
enum class FaultSite : std::uint8_t {
  kImageCorruption,     // bit-flip in an image record, caught by the CRC check
  kImageReadError,      // transient I/O error reading an image file
  kTruncatedWrite,      // partial persist of an image file
  kRegistryStall,       // remote snapshot fetch stalls (added latency)
  kRegistryDisconnect,  // remote snapshot fetch aborts mid-transfer
  kLazyServerDeath,     // uffd lazy-pages server dies mid-fault
  kNodeCrash,           // worker node crashes mid-restore
  kMigrationDumpFault,  // pre-dump round fails on the migration source
  kMigrationLinkCorrupt,  // a shipped pre-dump chain link arrives corrupt
};
inline constexpr std::size_t kFaultSiteCount = 9;

const char* fault_site_name(FaultSite site);

// The schedulable fault mix: per-site probabilities plus shape parameters.
// All rates default to zero — a default plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0x5EED;
  double image_corruption_rate = 0.0;    // per image file read per restore
  double image_read_error_rate = 0.0;    // per filesystem read of a matching path
  double truncated_write_rate = 0.0;     // per persisted/materialized image file
  double registry_stall_rate = 0.0;      // per remote fetch
  sim::Duration registry_stall = sim::Duration::millis(50);
  double registry_disconnect_rate = 0.0; // per remote fetch attempt
  double lazy_server_death_rate = 0.0;   // per lazy page-in batch
  double node_crash_rate = 0.0;          // per prebaked replica start
  double migration_dump_fault_rate = 0.0;   // per live-migration pre-dump round
  double migration_link_corrupt_rate = 0.0; // per shipped chain link
  // Filesystem-level read faults apply only to paths containing this
  // substring, so injected storage faults hit the snapshot pipeline rather
  // than, say, the runtime binary of a Vanilla start.
  std::string path_filter = ".img";

  double rate(FaultSite site) const;
  bool enabled() const;
};

class Injector {
 public:
  Injector() = default;

  // Install a plan; resets all counters and the trace. An all-zero plan
  // disables the injector entirely.
  void configure(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  // Deterministic decision at `site`: true iff the fault fires on this draw.
  // Free (no hash, no counter) when the injector is disabled.
  bool fires(FaultSite site);

  // Uniform [0, 1) from a dedicated stream — retry-backoff jitter. Returns 0
  // when disabled so un-jittered paths stay bit-identical.
  double jitter();

  // One fired fault, in firing order (the determinism test's event trace).
  struct Event {
    FaultSite site;
    std::uint64_t draw = 0;  // per-site draw index at which it fired
    bool operator==(const Event&) const = default;
  };
  const std::vector<Event>& trace() const { return trace_; }

  std::uint64_t draws(FaultSite site) const;
  std::uint64_t fired(FaultSite site) const;
  std::uint64_t total_fired() const;

  // Reset counters and trace but keep the plan (per-cell sweeps).
  void reset();

 private:
  FaultPlan plan_{};
  bool enabled_ = false;
  std::array<std::uint64_t, kFaultSiteCount> draws_{};
  std::array<std::uint64_t, kFaultSiteCount> fired_{};
  std::uint64_t jitter_draws_ = 0;
  std::vector<Event> trace_;
};

}  // namespace prebake::faults

namespace prebake::os {
// The issue-facing aliases: the plan travels with kernel-level config.
using FaultPlan = faults::FaultPlan;
using FaultSite = faults::FaultSite;
}  // namespace prebake::os
