// Container runtime model: namespaces + cgroups + layered root filesystems.
//
// The paper's Section 2 splits cold start into (1) provisioning the
// execution environment — VMs or containers — and (2) starting the function
// application, and argues that as containerization gets faster ([16], [19],
// [23] in the paper) the application start-up this library attacks becomes
// the dominant term. This model makes term (1) explicit and tunable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel.hpp"

namespace prebake::os {

struct ContainerCosts {
  // Classic docker-style provisioning; SOCK/Firecracker-class runtimes cut
  // these by an order of magnitude (the ablation sweeps them).
  sim::Duration namespace_setup = sim::Duration::millis_f(4.0);
  sim::Duration cgroup_setup = sim::Duration::millis_f(3.0);
  // veth pair + bridge attach; the classic dominant term.
  sim::Duration network_setup = sim::Duration::millis_f(90.0);
  // Overlayfs assembly, charged per rootfs layer.
  sim::Duration mount_per_layer = sim::Duration::millis_f(1.5);
  sim::Duration teardown = sim::Duration::millis_f(6.0);

  sim::Duration provisioning_total(std::size_t layers) const {
    return namespace_setup + cgroup_setup + network_setup +
           mount_per_layer * static_cast<double>(layers);
  }
};

using ContainerId = std::uint64_t;

enum class ContainerState : std::uint8_t { kCreated, kRunning, kStopped };

struct Container {
  ContainerId id = 0;
  std::string name;
  std::vector<std::string> rootfs_layers;  // image layer paths in the fs
  std::uint64_t mem_limit_bytes = 0;       // cgroup memory.max (0 = unlimited)
  bool privileged = false;                 // needed for in-container restore
  ContainerState state = ContainerState::kCreated;
  Namespaces ns{};
  std::vector<Pid> pids;  // member processes
};

// Thrown when a member process pushes the cgroup past memory.max.
struct OomKill {
  ContainerId container;
  Pid victim;
  std::uint64_t usage;
  std::uint64_t limit;
};

class ContainerRuntime {
 public:
  ContainerRuntime(Kernel& kernel, ContainerCosts costs = {})
      : kernel_{&kernel}, costs_{costs} {}

  // Provision a container: charges namespace/cgroup/network/mount costs.
  // Every rootfs layer must exist in the filesystem.
  ContainerId create(const std::string& name,
                     std::vector<std::string> rootfs_layers,
                     std::uint64_t mem_limit_bytes = 0,
                     bool privileged = false);

  // Place an existing process into the container (joins its namespaces).
  void attach(ContainerId id, Pid pid);
  // cgroup accounting: current resident usage of all member processes.
  std::uint64_t memory_usage(ContainerId id) const;
  // Enforce memory.max; returns the OOM kill performed, if any. (The kernel
  // model doesn't intercept faults, so enforcement is a poll — as the
  // platform does after replica starts.)
  std::optional<OomKill> enforce_memory_limit(ContainerId id);

  // Stop and tear down; kills member processes still alive.
  void destroy(ContainerId id);

  const Container& get(ContainerId id) const;
  bool exists(ContainerId id) const { return containers_.contains(id); }
  std::size_t count() const { return containers_.size(); }
  const ContainerCosts& costs() const { return costs_; }

 private:
  Container& get_mut(ContainerId id);

  Kernel* kernel_;
  ContainerCosts costs_;
  std::map<ContainerId, Container> containers_;
  ContainerId next_id_ = 1;
};

}  // namespace prebake::os
