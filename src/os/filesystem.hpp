// Simulated filesystem with an explicit page-cache model.
//
// Files either carry real bytes (CRIU image files, rendered outputs) or only
// a nominal size (binaries, class archives) when the content itself is never
// inspected. Reads are charged at disk bandwidth on a cold cache and at
// page-cache bandwidth once cached — the distinction that makes first-restore
// vs repeated-restore costs differ, as on the paper's testbed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "os/cost_model.hpp"
#include "os/faults.hpp"
#include "sim/simulation.hpp"

namespace prebake::os {

// A storage-level read failure (injected transient fault or real model
// error). Distinct from invalid_argument so callers can tell "flaky device"
// from "caller bug" and retry only the former.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FileSystem {
 public:
  FileSystem(sim::Simulation& sim, const CostModel& costs,
             faults::Injector* injector = nullptr)
      : sim_{&sim}, costs_{&costs}, injector_{injector} {}

  // Create or truncate a file with synthetic (size-only) content.
  void create(const std::string& path, std::uint64_t size_bytes);
  // Create or truncate a file with real bytes.
  void write(const std::string& path, std::vector<std::uint8_t> bytes);
  // Append real bytes (charges disk write bandwidth).
  void append(const std::string& path, const std::uint8_t* data,
              std::size_t len);

  bool exists(const std::string& path) const;
  std::uint64_t size_of(const std::string& path) const;
  // Real bytes, if the file has them (image files do; synthetic ones don't).
  const std::vector<std::uint8_t>* bytes_of(const std::string& path) const;

  // Charge the cost of reading `bytes` of the file sequentially. Marks the
  // range cached. `bytes` == 0 means "the whole file". `contention` models N
  // concurrent streams sharing the device (processor sharing), used by the
  // concurrent-restore ablation. With an enabled fault injector, reads of
  // paths matching the plan's path filter may throw IoError (a transient
  // device error) after charging one seek.
  void charge_read(const std::string& path, std::uint64_t bytes = 0,
                   double contention = 1.0);

  // Truncate an existing file to `bytes` without touching its cache state —
  // the tail of a partial write that never reached the device. Fault-path
  // helper (dump persist / registry materialization under kTruncatedWrite).
  void truncate(const std::string& path, std::uint64_t bytes);

  void remove(const std::string& path);
  // Drop the page cache (echo 3 > /proc/sys/vm/drop_caches equivalent).
  void drop_caches();
  // Mark a file fully cached without charging (e.g. freshly written data).
  void warm(const std::string& path);
  bool is_cached(const std::string& path) const;

  std::vector<std::string> list(const std::string& prefix) const;

 private:
  struct File {
    std::uint64_t size = 0;
    std::optional<std::vector<std::uint8_t>> data;
    bool cached = false;
  };

  File& require(const std::string& path);
  const File& require(const std::string& path) const;

  sim::Simulation* sim_;
  const CostModel* costs_;
  faults::Injector* injector_;
  std::map<std::string, File> files_;
};

}  // namespace prebake::os
