#include "os/filesystem.hpp"

#include <stdexcept>

namespace prebake::os {

FileSystem::File& FileSystem::require(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end())
    throw std::invalid_argument{"FileSystem: no such file: " + path};
  return it->second;
}

const FileSystem::File& FileSystem::require(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end())
    throw std::invalid_argument{"FileSystem: no such file: " + path};
  return it->second;
}

void FileSystem::create(const std::string& path, std::uint64_t size_bytes) {
  files_[path] = File{size_bytes, std::nullopt, false};
}

void FileSystem::write(const std::string& path, std::vector<std::uint8_t> bytes) {
  const auto size = static_cast<std::uint64_t>(bytes.size());
  sim_->advance(costs_->disk_write_cost(size));
  // Freshly written data sits in the page cache.
  files_[path] = File{size, std::move(bytes), true};
}

void FileSystem::append(const std::string& path, const std::uint8_t* data,
                        std::size_t len) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    files_[path] = File{0, std::vector<std::uint8_t>{}, true};
    it = files_.find(path);
  }
  File& f = it->second;
  if (!f.data) f.data.emplace();
  f.data->insert(f.data->end(), data, data + len);
  f.size = f.data->size();
  sim_->advance(costs_->disk_write_cost(len));
}

bool FileSystem::exists(const std::string& path) const {
  return files_.contains(path);
}

std::uint64_t FileSystem::size_of(const std::string& path) const {
  return require(path).size;
}

const std::vector<std::uint8_t>* FileSystem::bytes_of(
    const std::string& path) const {
  const File& f = require(path);
  return f.data ? &*f.data : nullptr;
}

void FileSystem::charge_read(const std::string& path, std::uint64_t bytes,
                             double contention) {
  File& f = require(path);
  if (injector_ != nullptr && injector_->enabled() &&
      path.find(injector_->plan().path_filter) != std::string::npos &&
      injector_->fires(faults::FaultSite::kImageReadError)) {
    // The device errored partway in: the failed attempt still burned a seek.
    sim_->advance(costs_->disk_seek);
    throw IoError{"FileSystem: transient read error: " + path};
  }
  if (bytes == 0 || bytes > f.size) bytes = f.size;
  if (contention < 1.0) contention = 1.0;
  sim::Duration cost = f.cached ? costs_->page_cache_read_cost(bytes)
                                : costs_->disk_read_cost(bytes);
  sim_->advance(cost * contention);
  f.cached = true;
}

void FileSystem::truncate(const std::string& path, std::uint64_t bytes) {
  File& f = require(path);
  if (bytes >= f.size) return;
  f.size = bytes;
  if (f.data && f.data->size() > bytes) f.data->resize(bytes);
}

void FileSystem::remove(const std::string& path) {
  if (files_.erase(path) == 0)
    throw std::invalid_argument{"FileSystem::remove: no such file: " + path};
}

void FileSystem::drop_caches() {
  for (auto& [path, f] : files_) f.cached = false;
}

void FileSystem::warm(const std::string& path) { require(path).cached = true; }

bool FileSystem::is_cached(const std::string& path) const {
  return require(path).cached;
}

std::vector<std::string> FileSystem::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, f] : files_)
    if (path.starts_with(prefix)) out.push_back(path);
  return out;
}

}  // namespace prebake::os
