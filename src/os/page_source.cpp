#include "os/page_source.hpp"

#include <algorithm>
#include <cstring>

#include "sim/rng.hpp"

namespace prebake::os {

namespace {
// FNV-1a-style 64-bit mix over 8-byte words; fast and adequate for content
// verification (not a cryptographic hash).
std::uint64_t hash_words(const std::uint64_t* words, std::size_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}
}  // namespace

std::uint64_t hash_page_bytes(std::span<const std::uint8_t, kPageSize> page) {
  std::uint64_t words[kPageSize / 8];
  std::memcpy(words, page.data(), kPageSize);
  return hash_words(words, kPageSize / 8);
}

std::uint64_t PageSource::page_digest(std::uint64_t page_index) const {
  std::array<std::uint8_t, kPageSize> buf{};
  fill(page_index, std::span<std::uint8_t, kPageSize>{buf});
  return hash_page_bytes(std::span<const std::uint8_t, kPageSize>{buf});
}

std::uint64_t PageSource::match_digests(
    std::uint64_t first_page, std::span<const std::uint64_t> expected) const {
  for (std::size_t i = 0; i < expected.size(); ++i)
    if (page_digest(first_page + i) != expected[i])
      return static_cast<std::uint64_t>(i);
  return expected.size();
}

void BufferSource::fill(std::uint64_t page_index,
                        std::span<std::uint8_t, kPageSize> out) const {
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  const std::uint64_t offset = page_index * kPageSize;
  if (offset >= bytes_.size()) return;
  const std::size_t len =
      std::min<std::size_t>(kPageSize, bytes_.size() - offset);
  std::memcpy(out.data(), bytes_.data() + offset, len);
}

void PatternSource::fill(std::uint64_t page_index,
                         std::span<std::uint8_t, kPageSize> out) const {
  std::uint64_t state = seed_ ^ (page_index * 0x9E3779B97F4A7C15ULL) ^
                        (version_ * 0xD1B54A32D192ED03ULL);
  for (std::size_t i = 0; i < kPageSize; i += 8) {
    const std::uint64_t w = sim::splitmix64(state);
    std::memcpy(out.data() + i, &w, 8);
  }
}

std::uint64_t PatternSource::page_digest(std::uint64_t page_index) const {
  // Hash the generator's words directly instead of materializing the page
  // and re-reading it. fill() writes each word's native bytes and the hash
  // reads them back the same way, so this is bit-identical to what a
  // verifier that only sees bytes would compute — without two 4 KiB copies.
  std::uint64_t state = seed_ ^ (page_index * 0x9E3779B97F4A7C15ULL) ^
                        (version_ * 0xD1B54A32D192ED03ULL);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < kPageSize / 8; ++i) {
    h ^= sim::splitmix64(state);
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace prebake::os
