#include "os/faults.hpp"

#include "sim/rng.hpp"

namespace prebake::faults {

namespace {

// One well-separated 64-bit salt per site keeps the streams independent;
// xoring the raw enum value into the seed would make site k's stream a near
// copy of site k+1's.
std::uint64_t site_salt(FaultSite site) {
  std::uint64_t state = 0x5A17'F417ULL + static_cast<std::uint64_t>(site);
  return sim::splitmix64(state);
}

// Map 64 uniform bits onto [0, 1).
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kImageCorruption: return "image-corruption";
    case FaultSite::kImageReadError: return "image-read-error";
    case FaultSite::kTruncatedWrite: return "truncated-write";
    case FaultSite::kRegistryStall: return "registry-stall";
    case FaultSite::kRegistryDisconnect: return "registry-disconnect";
    case FaultSite::kLazyServerDeath: return "lazy-server-death";
    case FaultSite::kNodeCrash: return "node-crash";
    case FaultSite::kMigrationDumpFault: return "migration-dump-fault";
    case FaultSite::kMigrationLinkCorrupt: return "migration-link-corrupt";
  }
  return "unknown";
}

double FaultPlan::rate(FaultSite site) const {
  switch (site) {
    case FaultSite::kImageCorruption: return image_corruption_rate;
    case FaultSite::kImageReadError: return image_read_error_rate;
    case FaultSite::kTruncatedWrite: return truncated_write_rate;
    case FaultSite::kRegistryStall: return registry_stall_rate;
    case FaultSite::kRegistryDisconnect: return registry_disconnect_rate;
    case FaultSite::kLazyServerDeath: return lazy_server_death_rate;
    case FaultSite::kNodeCrash: return node_crash_rate;
    case FaultSite::kMigrationDumpFault: return migration_dump_fault_rate;
    case FaultSite::kMigrationLinkCorrupt: return migration_link_corrupt_rate;
  }
  return 0.0;
}

bool FaultPlan::enabled() const {
  return image_corruption_rate > 0.0 || image_read_error_rate > 0.0 ||
         truncated_write_rate > 0.0 || registry_stall_rate > 0.0 ||
         registry_disconnect_rate > 0.0 || lazy_server_death_rate > 0.0 ||
         node_crash_rate > 0.0 || migration_dump_fault_rate > 0.0 ||
         migration_link_corrupt_rate > 0.0;
}

void Injector::configure(FaultPlan plan) {
  plan_ = std::move(plan);
  enabled_ = plan_.enabled();
  reset();
}

void Injector::reset() {
  draws_.fill(0);
  fired_.fill(0);
  jitter_draws_ = 0;
  trace_.clear();
}

bool Injector::fires(FaultSite site) {
  if (!enabled_) return false;
  const auto idx = static_cast<std::size_t>(site);
  const std::uint64_t draw = draws_[idx]++;
  const double rate = plan_.rate(site);
  if (rate <= 0.0) return false;
  const double u = to_unit(sim::splitmix64(plan_.seed ^ site_salt(site), draw));
  if (u >= rate) return false;
  ++fired_[idx];
  trace_.push_back(Event{site, draw});
  return true;
}

double Injector::jitter() {
  if (!enabled_) return 0.0;
  return to_unit(sim::splitmix64(plan_.seed ^ 0x6A177E6AULL, jitter_draws_++));
}

std::uint64_t Injector::draws(FaultSite site) const {
  return draws_[static_cast<std::size_t>(site)];
}

std::uint64_t Injector::fired(FaultSite site) const {
  return fired_[static_cast<std::size_t>(site)];
}

std::uint64_t Injector::total_fired() const {
  std::uint64_t n = 0;
  for (const std::uint64_t f : fired_) n += f;
  return n;
}

}  // namespace prebake::faults
