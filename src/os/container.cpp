#include "os/container.hpp"

#include <stdexcept>

namespace prebake::os {

Container& ContainerRuntime::get_mut(ContainerId id) {
  const auto it = containers_.find(id);
  if (it == containers_.end())
    throw std::out_of_range{"ContainerRuntime: unknown container " +
                            std::to_string(id)};
  return it->second;
}

const Container& ContainerRuntime::get(ContainerId id) const {
  return const_cast<ContainerRuntime*>(this)->get_mut(id);
}

ContainerId ContainerRuntime::create(const std::string& name,
                                     std::vector<std::string> rootfs_layers,
                                     std::uint64_t mem_limit_bytes,
                                     bool privileged) {
  for (const std::string& layer : rootfs_layers)
    if (!kernel_->fs().exists(layer))
      throw std::invalid_argument{"container: missing rootfs layer " + layer};

  kernel_->sim().advance(costs_.namespace_setup);
  kernel_->sim().advance(costs_.cgroup_setup);
  kernel_->sim().advance(costs_.network_setup);
  kernel_->sim().advance(costs_.mount_per_layer *
                         static_cast<double>(rootfs_layers.size()));

  Container c;
  c.id = next_id_++;
  c.name = name;
  c.rootfs_layers = std::move(rootfs_layers);
  c.mem_limit_bytes = mem_limit_bytes;
  c.privileged = privileged;
  c.state = ContainerState::kRunning;
  c.ns = Namespaces{c.id, c.id, c.id};  // fresh pid/mnt/net namespaces
  containers_[c.id] = std::move(c);
  return next_id_ - 1;
}

void ContainerRuntime::attach(ContainerId id, Pid pid) {
  Container& c = get_mut(id);
  if (c.state != ContainerState::kRunning)
    throw std::logic_error{"container: not running"};
  Process& p = kernel_->process(pid);  // throws on unknown pid
  p.ns() = c.ns;
  c.pids.push_back(pid);
}

std::uint64_t ContainerRuntime::memory_usage(ContainerId id) const {
  const Container& c = get(id);
  std::uint64_t total = 0;
  for (const Pid pid : c.pids)
    if (kernel_->alive(pid))
      total += kernel_->process(pid).mm().resident_bytes();
  return total;
}

std::optional<OomKill> ContainerRuntime::enforce_memory_limit(ContainerId id) {
  Container& c = get_mut(id);
  if (c.mem_limit_bytes == 0) return std::nullopt;
  const std::uint64_t usage = memory_usage(id);
  if (usage <= c.mem_limit_bytes) return std::nullopt;

  // The OOM killer picks the biggest member, like the kernel's badness
  // heuristic with equal adjustments.
  Pid victim = kNoPid;
  std::uint64_t victim_rss = 0;
  for (const Pid pid : c.pids) {
    if (!kernel_->alive(pid)) continue;
    const std::uint64_t rss = kernel_->process(pid).mm().resident_bytes();
    if (rss > victim_rss) {
      victim_rss = rss;
      victim = pid;
    }
  }
  if (victim == kNoPid) return std::nullopt;
  kernel_->kill_process(victim);
  kernel_->reap(victim);
  return OomKill{id, victim, usage, c.mem_limit_bytes};
}

void ContainerRuntime::destroy(ContainerId id) {
  Container& c = get_mut(id);
  for (const Pid pid : c.pids) {
    if (kernel_->alive(pid)) {
      kernel_->kill_process(pid);
      kernel_->reap(pid);
    }
  }
  kernel_->sim().advance(costs_.teardown);
  containers_.erase(id);
}

}  // namespace prebake::os
