// Timing knobs for the simulated kernel.
//
// Every syscall, I/O and memory operation in the simulation charges time
// through this structure, so ablation benches can vary one knob at a time.
// Defaults are calibrated in exp/calibration.hpp to reproduce the paper's
// testbed (i5-3470S, Ubuntu 16.04, Linux 4.15, Java 8); see DESIGN.md §5.
#pragma once

#include "sim/time.hpp"

namespace prebake::os {

struct CostModel {
  // Process lifecycle. The paper's Figure 4 shows CLONE and EXEC are a tiny
  // fraction of start-up (sub-millisecond) while RTS/APPINIT dominate.
  sim::Duration clone_call = sim::Duration::micros(300);
  sim::Duration exec_base = sim::Duration::micros(1500);
  // Charged per MiB of the binary image mapped at exec time.
  sim::Duration exec_per_mib = sim::Duration::micros(50);
  sim::Duration exit_call = sim::Duration::micros(100);

  // Memory.
  sim::Duration minor_fault = sim::Duration::nanos(800);   // per 4 KiB page
  // userfaultfd round trip for a lazily restored page (fault -> uffd daemon
  // -> copy -> resume); much pricier than a minor fault.
  sim::Duration uffd_fault = sim::Duration::micros(9);
  double memcpy_gib_per_s = 6.0;                           // parasite pipe, page copies

  // Storage. Cold reads hit the disk; warm reads hit the page cache. The
  // page-cache bandwidth dominates snapshot restore cost (paper §4.2.1: the
  // 99.2 MiB Image Resizer snapshot restores slower than the 13 MiB NOOP one).
  sim::Duration disk_seek = sim::Duration::micros(120);
  double disk_read_mib_per_s = 450.0;   // SATA SSD-class sequential read
  double disk_write_mib_per_s = 380.0;
  double page_cache_gib_per_s = 3.3;    // memcpy-limited buffered read

  // Network (snapshot registry fetches: the "checkpoint/restore as a
  // service" deployment of Section 7, where images live on a remote store
  // and a node's first restore pulls them over the wire).
  sim::Duration network_rtt = sim::Duration::micros(250);
  double network_mib_per_s = 120.0;  // ~1 Gb/s

  // ptrace / freezer, used by the CRIU engine.
  sim::Duration ptrace_attach = sim::Duration::micros(60);  // per thread
  sim::Duration ptrace_peek = sim::Duration::nanos(500);
  sim::Duration freeze_per_thread = sim::Duration::micros(80);
  sim::Duration parasite_inject = sim::Duration::micros(450);
  sim::Duration parasite_cure = sim::Duration::micros(200);
  // Walking /proc/$pid/pagemap: per resident page examined.
  sim::Duration pagemap_per_page = sim::Duration::nanos(150);

  // Pipes (parasite -> criu page channel).
  double pipe_gib_per_s = 4.0;

  sim::Duration memcpy_cost(std::uint64_t bytes) const {
    return sim::Duration::seconds_f(static_cast<double>(bytes) /
                                    (memcpy_gib_per_s * 1024.0 * 1024.0 * 1024.0));
  }
  sim::Duration pipe_cost(std::uint64_t bytes) const {
    return sim::Duration::seconds_f(static_cast<double>(bytes) /
                                    (pipe_gib_per_s * 1024.0 * 1024.0 * 1024.0));
  }
  sim::Duration disk_read_cost(std::uint64_t bytes) const {
    return disk_seek + sim::Duration::seconds_f(static_cast<double>(bytes) /
                                                (disk_read_mib_per_s * 1024.0 * 1024.0));
  }
  sim::Duration disk_write_cost(std::uint64_t bytes) const {
    return disk_seek + sim::Duration::seconds_f(static_cast<double>(bytes) /
                                                (disk_write_mib_per_s * 1024.0 * 1024.0));
  }
  sim::Duration network_fetch_cost(std::uint64_t bytes) const {
    return network_rtt + sim::Duration::seconds_f(static_cast<double>(bytes) /
                                                  (network_mib_per_s * 1024.0 * 1024.0));
  }
  sim::Duration page_cache_read_cost(std::uint64_t bytes) const {
    return sim::Duration::seconds_f(static_cast<double>(bytes) /
                                    (page_cache_gib_per_s * 1024.0 * 1024.0 * 1024.0));
  }
};

}  // namespace prebake::os
