// Page content providers for simulated address spaces.
//
// A VMA's bytes must be reproducible so the CRIU-model engine can verify that
// a restored process is byte-identical to the checkpointed one. Small test
// processes use BufferSource (real stored bytes); large simulated footprints
// (tens of MiB of JVM heap) use PatternSource, whose page contents are a pure
// function of (seed, page index, version) — regenerable and CRC-checkable
// without keeping the bytes resident.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace prebake::os {

inline constexpr std::uint64_t kPageSize = 4096;

class PageSource {
 public:
  virtual ~PageSource() = default;
  // Fill `out` (exactly kPageSize bytes) with the contents of page
  // `page_index`.
  virtual void fill(std::uint64_t page_index,
                    std::span<std::uint8_t, kPageSize> out) const = 0;
  // 64-bit digest of a page, computable without materializing it when the
  // source supports that; default materializes and hashes.
  virtual std::uint64_t page_digest(std::uint64_t page_index) const;
  // Bulk digest compare (the batched restore verification, DESIGN.md §6g):
  // check pages [first_page, first_page + expected.size()) against
  // `expected` and return how many leading pages match — expected.size()
  // when the whole run verifies. Default loops page_digest.
  virtual std::uint64_t match_digests(
      std::uint64_t first_page, std::span<const std::uint64_t> expected) const;
};

// Real, mutable bytes. Pages past the buffer end read as zeros.
class BufferSource final : public PageSource {
 public:
  explicit BufferSource(std::vector<std::uint8_t> bytes)
      : bytes_{std::move(bytes)} {}
  void fill(std::uint64_t page_index,
            std::span<std::uint8_t, kPageSize> out) const override;
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Deterministic pseudo-random page contents derived from a seed. `version`
// lets the owner "mutate" the whole region cheaply (e.g. JIT warm-up dirties
// pages); bumping it changes every page's contents deterministically.
class PatternSource final : public PageSource {
 public:
  explicit PatternSource(std::uint64_t seed, std::uint64_t version = 0)
      : seed_{seed}, version_{version} {}
  void fill(std::uint64_t page_index,
            std::span<std::uint8_t, kPageSize> out) const override;
  std::uint64_t page_digest(std::uint64_t page_index) const override;
  std::uint64_t seed() const { return seed_; }
  std::uint64_t version() const { return version_; }
  void bump_version() { ++version_; }

 private:
  std::uint64_t seed_;
  std::uint64_t version_;
};

std::uint64_t hash_page_bytes(std::span<const std::uint8_t, kPageSize> page);

}  // namespace prebake::os
