#include "os/process.hpp"

#include <stdexcept>

namespace prebake::os {

Thread& Process::spawn_thread(Tid tid) {
  for (const Thread& t : threads_)
    if (t.tid == tid) throw std::invalid_argument{"Process::spawn_thread: tid in use"};
  threads_.push_back(Thread{tid, ThreadState::kRunning, {}});
  return threads_.back();
}

int Process::install_fd(FdDesc desc) {
  int fd = 0;
  while (fds_.contains(fd)) ++fd;
  desc.fd = fd;
  fds_[fd] = std::move(desc);
  return fd;
}

}  // namespace prebake::os
