// Simulated virtual address space: VMAs made of 4 KiB pages.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "os/page_bitmap.hpp"
#include "os/page_source.hpp"

namespace prebake::os {

enum class Prot : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
  kReadWrite = kRead | kWrite,
  kReadExec = kRead | kExec,
};
constexpr Prot operator|(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<std::uint8_t>(a) |
                           static_cast<std::uint8_t>(b));
}
constexpr bool has_prot(Prot p, Prot bit) {
  return (static_cast<std::uint8_t>(p) & static_cast<std::uint8_t>(bit)) != 0;
}

enum class VmaKind : std::uint8_t { kAnon, kFileBacked };

using VmaId = std::uint32_t;

struct Vma {
  VmaId id = 0;
  std::uint64_t start = 0;   // virtual address, page aligned
  std::uint64_t length = 0;  // bytes, page aligned
  Prot prot = Prot::kReadWrite;
  VmaKind kind = VmaKind::kAnon;
  std::string name;          // e.g. "[heap]", "/usr/lib/jvm/libjvm.so"
  std::string backing_path;  // for kFileBacked
  std::shared_ptr<PageSource> source;
  PageBitmap present;  // one bit per page
  PageBitmap dirty;    // set on write faults; cleared by soft-dirty reset
  // Tracked COW sharing (template-clone restore, DESIGN.md §6f). `cow` marks
  // pages whose frame is shared with the clone source: a write fault copies
  // the page (the kernel charges memcpy_cost(page)) and clears the bit.
  // `cow_shares` is the count of outstanding page shares against the template
  // VMA's frames, one counter shared by the template VMA and every clone
  // (per-run aggregate, §6g — a per-page count was write-only state that put
  // two 16k-iteration loops on the clone/teardown hot path). Both stay empty
  // on the plain fork path — zygote forks keep their legacy free-write
  // semantics. Invariant: a set cow bit implies the page is present.
  PageBitmap cow;
  std::shared_ptr<std::uint64_t> cow_shares;

  std::uint64_t page_count() const { return length / kPageSize; }
  std::uint64_t resident_pages() const { return present.count(); }
  std::uint64_t resident_bytes() const { return resident_pages() * kPageSize; }
  std::uint64_t dirty_pages() const { return dirty.count(); }
  std::uint64_t cow_pages() const { return cow.count(); }
};

class AddressSpace {
 public:
  AddressSpace() = default;

  // Maps a new region at the top of the current layout. `length` is rounded
  // up to a page multiple. Pages start non-resident unless populate is true.
  VmaId map(std::uint64_t length, Prot prot, VmaKind kind, std::string name,
            std::shared_ptr<PageSource> source, bool populate = false,
            std::string backing_path = {});
  void unmap(VmaId id);
  void clear();  // exec() semantics: drop every mapping

  // What a touch() did, so the kernel can charge each effect: a minor fault
  // per newly resident page, a page copy per COW break.
  struct TouchResult {
    std::uint64_t newly_resident = 0;
    std::uint64_t cow_broken = 0;  // shared pages privatized by a write
    TouchResult& operator+=(const TouchResult& o) {
      newly_resident += o.newly_resident;
      cow_broken += o.cow_broken;
      return *this;
    }
  };

  // Fault in `pages` pages of `id` starting at `first_page` (clamped to the
  // VMA size). A write to a COW-shared page breaks the sharing.
  TouchResult touch(VmaId id, std::uint64_t first_page, std::uint64_t pages,
                    bool write = false);
  // Fault in everything.
  TouchResult touch_all(VmaId id, bool write = false);

  // Bulk page install for the restore replay hot path (DESIGN.md §6g): copy
  // `payload` (a run of up to `pages * kPageSize` bytes, possibly shorter or
  // empty) into the VMA's buffer at page `first_page` in one memcpy, then
  // fault the first `touch_pages` pages in as reads. Equivalent to a payload
  // copy loop followed by touch(id, first_page, touch_pages) — the payload
  // may cover more pages than are touched (lazy restores copy the whole run
  // but only map the eager prefix). No-op copy for non-buffer sources.
  TouchResult populate_run(VmaId id, std::uint64_t first_page,
                           std::uint64_t touch_pages,
                           std::span<const std::uint8_t> payload);

  // Soft-dirty tracking (used by CRIU pre-dump / incremental dumps).
  void clear_soft_dirty();

  const Vma* find(VmaId id) const;
  Vma* find_mutable(VmaId id);
  const std::vector<Vma>& vmas() const { return vmas_; }

  std::uint64_t resident_bytes() const;
  std::uint64_t resident_pages() const;
  std::uint64_t mapped_bytes() const;

  // Deep copy with fresh VMA identity preserved (used by fork/COW and by the
  // CRIU restorer when rebuilding a process image).
  AddressSpace clone_for_fork() const;

  // Like clone_for_fork, but with explicit COW accounting (template-clone
  // restore): every currently resident page is marked shared in the child
  // and counted in a sharer vector common to both sides, so the child's
  // first write to each shared page is charged as a page copy. Non-const:
  // lazily creates the parent-side sharer vectors.
  AddressSpace clone_cow();

  std::uint64_t cow_pages() const;

 private:
  std::vector<Vma> vmas_;
  VmaId next_id_ = 1;
  std::uint64_t next_addr_ = 0x0000'5555'0000'0000ULL;
};

}  // namespace prebake::os
