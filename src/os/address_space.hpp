// Simulated virtual address space: VMAs made of 4 KiB pages.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "os/page_source.hpp"

namespace prebake::os {

enum class Prot : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
  kReadWrite = kRead | kWrite,
  kReadExec = kRead | kExec,
};
constexpr Prot operator|(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<std::uint8_t>(a) |
                           static_cast<std::uint8_t>(b));
}
constexpr bool has_prot(Prot p, Prot bit) {
  return (static_cast<std::uint8_t>(p) & static_cast<std::uint8_t>(bit)) != 0;
}

enum class VmaKind : std::uint8_t { kAnon, kFileBacked };

using VmaId = std::uint32_t;

struct Vma {
  VmaId id = 0;
  std::uint64_t start = 0;   // virtual address, page aligned
  std::uint64_t length = 0;  // bytes, page aligned
  Prot prot = Prot::kReadWrite;
  VmaKind kind = VmaKind::kAnon;
  std::string name;          // e.g. "[heap]", "/usr/lib/jvm/libjvm.so"
  std::string backing_path;  // for kFileBacked
  std::shared_ptr<PageSource> source;
  std::vector<bool> present;  // one bit per page
  std::vector<bool> dirty;    // set on write faults; cleared by soft-dirty reset

  std::uint64_t page_count() const { return length / kPageSize; }
  std::uint64_t resident_pages() const;
  std::uint64_t resident_bytes() const { return resident_pages() * kPageSize; }
  std::uint64_t dirty_pages() const;
};

class AddressSpace {
 public:
  AddressSpace() = default;

  // Maps a new region at the top of the current layout. `length` is rounded
  // up to a page multiple. Pages start non-resident unless populate is true.
  VmaId map(std::uint64_t length, Prot prot, VmaKind kind, std::string name,
            std::shared_ptr<PageSource> source, bool populate = false,
            std::string backing_path = {});
  void unmap(VmaId id);
  void clear();  // exec() semantics: drop every mapping

  // Fault in `pages` pages of `id` starting at `first_page` (clamped to the
  // VMA size). Returns the number of pages that were newly made resident.
  std::uint64_t touch(VmaId id, std::uint64_t first_page, std::uint64_t pages,
                      bool write = false);
  // Fault in everything.
  std::uint64_t touch_all(VmaId id, bool write = false);

  // Soft-dirty tracking (used by CRIU pre-dump / incremental dumps).
  void clear_soft_dirty();

  const Vma* find(VmaId id) const;
  Vma* find_mutable(VmaId id);
  const std::vector<Vma>& vmas() const { return vmas_; }

  std::uint64_t resident_bytes() const;
  std::uint64_t resident_pages() const;
  std::uint64_t mapped_bytes() const;

  // Deep copy with fresh VMA identity preserved (used by fork/COW and by the
  // CRIU restorer when rebuilding a process image).
  AddressSpace clone_for_fork() const;

 private:
  std::vector<Vma> vmas_;
  VmaId next_id_ = 1;
  std::uint64_t next_addr_ = 0x0000'5555'0000'0000ULL;
};

}  // namespace prebake::os
