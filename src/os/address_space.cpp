#include "os/address_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace prebake::os {

std::uint64_t Vma::resident_pages() const {
  return static_cast<std::uint64_t>(
      std::count(present.begin(), present.end(), true));
}

std::uint64_t Vma::dirty_pages() const {
  return static_cast<std::uint64_t>(std::count(dirty.begin(), dirty.end(), true));
}

VmaId AddressSpace::map(std::uint64_t length, Prot prot, VmaKind kind,
                        std::string name, std::shared_ptr<PageSource> source,
                        bool populate, std::string backing_path) {
  if (length == 0) throw std::invalid_argument{"AddressSpace::map: zero length"};
  const std::uint64_t rounded = (length + kPageSize - 1) / kPageSize * kPageSize;
  Vma vma;
  vma.id = next_id_++;
  vma.start = next_addr_;
  vma.length = rounded;
  vma.prot = prot;
  vma.kind = kind;
  vma.name = std::move(name);
  vma.backing_path = std::move(backing_path);
  vma.source = std::move(source);
  const auto npages = rounded / kPageSize;
  vma.present.assign(npages, populate);
  vma.dirty.assign(npages, false);
  next_addr_ += rounded + kPageSize;  // guard page gap
  vmas_.push_back(std::move(vma));
  return vmas_.back().id;
}

void AddressSpace::unmap(VmaId id) {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  if (it == vmas_.end()) throw std::invalid_argument{"AddressSpace::unmap: unknown vma"};
  vmas_.erase(it);
}

void AddressSpace::clear() { vmas_.clear(); }

const Vma* AddressSpace::find(VmaId id) const {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  return it == vmas_.end() ? nullptr : &*it;
}

Vma* AddressSpace::find_mutable(VmaId id) {
  return const_cast<Vma*>(std::as_const(*this).find(id));
}

std::uint64_t AddressSpace::touch(VmaId id, std::uint64_t first_page,
                                  std::uint64_t pages, bool write) {
  Vma* vma = find_mutable(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch: unknown vma"};
  if (write && !has_prot(vma->prot, Prot::kWrite))
    throw std::logic_error{"AddressSpace::touch: write to read-only vma"};
  const std::uint64_t end = std::min(first_page + pages, vma->page_count());
  std::uint64_t newly = 0;
  for (std::uint64_t p = first_page; p < end; ++p) {
    if (!vma->present[p]) {
      vma->present[p] = true;
      ++newly;
    }
    if (write) vma->dirty[p] = true;
  }
  return newly;
}

std::uint64_t AddressSpace::touch_all(VmaId id, bool write) {
  const Vma* vma = find(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch_all: unknown vma"};
  return touch(id, 0, vma->page_count(), write);
}

void AddressSpace::clear_soft_dirty() {
  for (Vma& vma : vmas_)
    std::fill(vma.dirty.begin(), vma.dirty.end(), false);
}

std::uint64_t AddressSpace::resident_pages() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.resident_pages();
  return total;
}

std::uint64_t AddressSpace::resident_bytes() const {
  return resident_pages() * kPageSize;
}

std::uint64_t AddressSpace::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.length;
  return total;
}

AddressSpace AddressSpace::clone_for_fork() const {
  // COW semantics: the child shares page sources (physical frames) and keeps
  // the same residency; descriptors are copied.
  AddressSpace child;
  child.vmas_ = vmas_;
  child.next_id_ = next_id_;
  child.next_addr_ = next_addr_;
  return child;
}

}  // namespace prebake::os
