#include "os/address_space.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace prebake::os {

namespace {

// A VMA is going away (unmap/clear): its still-shared pages stop referencing
// the template's frames.
void release_cow_shares(Vma& vma) {
  if (vma.cow.empty() || vma.cow_shares == nullptr) return;
  const std::uint64_t held = vma.cow.count();
  *vma.cow_shares -= std::min(*vma.cow_shares, held);
  vma.cow.clear();
  vma.cow_shares.reset();
}

}  // namespace

VmaId AddressSpace::map(std::uint64_t length, Prot prot, VmaKind kind,
                        std::string name, std::shared_ptr<PageSource> source,
                        bool populate, std::string backing_path) {
  if (length == 0) throw std::invalid_argument{"AddressSpace::map: zero length"};
  const std::uint64_t rounded = (length + kPageSize - 1) / kPageSize * kPageSize;
  Vma vma;
  vma.id = next_id_++;
  vma.start = next_addr_;
  vma.length = rounded;
  vma.prot = prot;
  vma.kind = kind;
  vma.name = std::move(name);
  vma.backing_path = std::move(backing_path);
  vma.source = std::move(source);
  const auto npages = rounded / kPageSize;
  vma.present.assign(npages, populate);
  vma.dirty.assign(npages, false);
  next_addr_ += rounded + kPageSize;  // guard page gap
  vmas_.push_back(std::move(vma));
  return vmas_.back().id;
}

void AddressSpace::unmap(VmaId id) {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  if (it == vmas_.end()) throw std::invalid_argument{"AddressSpace::unmap: unknown vma"};
  release_cow_shares(*it);
  vmas_.erase(it);
}

void AddressSpace::clear() {
  for (Vma& vma : vmas_) release_cow_shares(vma);
  vmas_.clear();
}

const Vma* AddressSpace::find(VmaId id) const {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  return it == vmas_.end() ? nullptr : &*it;
}

Vma* AddressSpace::find_mutable(VmaId id) {
  return const_cast<Vma*>(std::as_const(*this).find(id));
}

AddressSpace::TouchResult AddressSpace::touch(VmaId id,
                                              std::uint64_t first_page,
                                              std::uint64_t pages, bool write) {
  Vma* vma = find_mutable(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch: unknown vma"};
  if (write && !has_prot(vma->prot, Prot::kWrite))
    throw std::logic_error{"AddressSpace::touch: write to read-only vma"};
  const std::uint64_t end = std::min(first_page + pages, vma->page_count());
  TouchResult out;
  if (end <= first_page) return out;
  const std::uint64_t n = end - first_page;
  // A page first faulted after a clone is private from the start, so the
  // newly-resident and COW-break sets are disjoint (cow implies present).
  out.newly_resident = n - vma->present.count_range(first_page, n);
  if (write && !vma->cow.empty()) {
    out.cow_broken = vma->cow.count_range(first_page, n);
    if (out.cow_broken > 0) {
      if (vma->cow_shares != nullptr)
        *vma->cow_shares -= std::min(*vma->cow_shares, out.cow_broken);
      vma->cow.set_range(first_page, n, false);
    }
  }
  vma->present.set_range(first_page, n, true);
  if (write) vma->dirty.set_range(first_page, n, true);
  return out;
}

AddressSpace::TouchResult AddressSpace::touch_all(VmaId id, bool write) {
  const Vma* vma = find(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch_all: unknown vma"};
  return touch(id, 0, vma->page_count(), write);
}

AddressSpace::TouchResult AddressSpace::populate_run(
    VmaId id, std::uint64_t first_page, std::uint64_t touch_pages,
    std::span<const std::uint8_t> payload) {
  if (!payload.empty()) {
    Vma* vma = find_mutable(id);
    if (vma == nullptr)
      throw std::invalid_argument{"AddressSpace::populate_run: unknown vma"};
    if (auto* buf = dynamic_cast<BufferSource*>(vma->source.get())) {
      std::vector<std::uint8_t>& bytes = buf->bytes();
      const std::uint64_t off = first_page * kPageSize;
      if (off < bytes.size()) {
        const std::size_t len =
            std::min<std::size_t>(payload.size(), bytes.size() - off);
        std::memcpy(bytes.data() + off, payload.data(), len);
      }
    }
  }
  return touch(id, first_page, touch_pages, /*write=*/false);
}

void AddressSpace::clear_soft_dirty() {
  for (Vma& vma : vmas_) vma.dirty.assign(vma.dirty.size(), false);
}

std::uint64_t AddressSpace::resident_pages() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.resident_pages();
  return total;
}

std::uint64_t AddressSpace::resident_bytes() const {
  return resident_pages() * kPageSize;
}

std::uint64_t AddressSpace::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.length;
  return total;
}

AddressSpace AddressSpace::clone_for_fork() const {
  // COW semantics: the child shares page sources (physical frames) and keeps
  // the same residency; descriptors are copied.
  AddressSpace child;
  child.vmas_ = vmas_;
  child.next_id_ = next_id_;
  child.next_addr_ = next_addr_;
  return child;
}

AddressSpace AddressSpace::clone_cow() {
  AddressSpace child = clone_for_fork();
  for (std::size_t i = 0; i < vmas_.size(); ++i) {
    Vma& parent = vmas_[i];
    Vma& clone = child.vmas_[i];
    if (!parent.present.any()) continue;
    if (parent.cow_shares == nullptr)
      parent.cow_shares = std::make_shared<std::uint64_t>(0);
    // Every resident page starts out shared: the clone's cow map is the
    // parent's residency map, counted against the template's share total.
    clone.cow = parent.present;
    clone.cow_shares = parent.cow_shares;
    *parent.cow_shares += parent.present.count();
  }
  return child;
}

std::uint64_t AddressSpace::cow_pages() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.cow_pages();
  return total;
}

}  // namespace prebake::os
