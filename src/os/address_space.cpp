#include "os/address_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace prebake::os {

std::uint64_t Vma::resident_pages() const {
  return static_cast<std::uint64_t>(
      std::count(present.begin(), present.end(), true));
}

std::uint64_t Vma::dirty_pages() const {
  return static_cast<std::uint64_t>(std::count(dirty.begin(), dirty.end(), true));
}

std::uint64_t Vma::cow_pages() const {
  return static_cast<std::uint64_t>(std::count(cow.begin(), cow.end(), true));
}

namespace {

// A VMA is going away (unmap/clear): its still-shared pages stop referencing
// the template's frames.
void release_cow_shares(Vma& vma) {
  if (vma.cow.empty() || vma.cow_shares == nullptr) return;
  for (std::size_t p = 0; p < vma.cow.size(); ++p)
    if (vma.cow[p] && (*vma.cow_shares)[p] > 0) --(*vma.cow_shares)[p];
  vma.cow.clear();
  vma.cow_shares.reset();
}

}  // namespace

VmaId AddressSpace::map(std::uint64_t length, Prot prot, VmaKind kind,
                        std::string name, std::shared_ptr<PageSource> source,
                        bool populate, std::string backing_path) {
  if (length == 0) throw std::invalid_argument{"AddressSpace::map: zero length"};
  const std::uint64_t rounded = (length + kPageSize - 1) / kPageSize * kPageSize;
  Vma vma;
  vma.id = next_id_++;
  vma.start = next_addr_;
  vma.length = rounded;
  vma.prot = prot;
  vma.kind = kind;
  vma.name = std::move(name);
  vma.backing_path = std::move(backing_path);
  vma.source = std::move(source);
  const auto npages = rounded / kPageSize;
  vma.present.assign(npages, populate);
  vma.dirty.assign(npages, false);
  next_addr_ += rounded + kPageSize;  // guard page gap
  vmas_.push_back(std::move(vma));
  return vmas_.back().id;
}

void AddressSpace::unmap(VmaId id) {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  if (it == vmas_.end()) throw std::invalid_argument{"AddressSpace::unmap: unknown vma"};
  release_cow_shares(*it);
  vmas_.erase(it);
}

void AddressSpace::clear() {
  for (Vma& vma : vmas_) release_cow_shares(vma);
  vmas_.clear();
}

const Vma* AddressSpace::find(VmaId id) const {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [id](const Vma& v) { return v.id == id; });
  return it == vmas_.end() ? nullptr : &*it;
}

Vma* AddressSpace::find_mutable(VmaId id) {
  return const_cast<Vma*>(std::as_const(*this).find(id));
}

AddressSpace::TouchResult AddressSpace::touch(VmaId id,
                                              std::uint64_t first_page,
                                              std::uint64_t pages, bool write) {
  Vma* vma = find_mutable(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch: unknown vma"};
  if (write && !has_prot(vma->prot, Prot::kWrite))
    throw std::logic_error{"AddressSpace::touch: write to read-only vma"};
  const std::uint64_t end = std::min(first_page + pages, vma->page_count());
  TouchResult out;
  for (std::uint64_t p = first_page; p < end; ++p) {
    if (!vma->present[p]) {
      // A page first faulted after the clone is private from the start.
      vma->present[p] = true;
      ++out.newly_resident;
    } else if (write && !vma->cow.empty() && vma->cow[p]) {
      vma->cow[p] = false;
      if (vma->cow_shares != nullptr && (*vma->cow_shares)[p] > 0)
        --(*vma->cow_shares)[p];
      ++out.cow_broken;
    }
    if (write) vma->dirty[p] = true;
  }
  return out;
}

AddressSpace::TouchResult AddressSpace::touch_all(VmaId id, bool write) {
  const Vma* vma = find(id);
  if (vma == nullptr) throw std::invalid_argument{"AddressSpace::touch_all: unknown vma"};
  return touch(id, 0, vma->page_count(), write);
}

void AddressSpace::clear_soft_dirty() {
  for (Vma& vma : vmas_)
    std::fill(vma.dirty.begin(), vma.dirty.end(), false);
}

std::uint64_t AddressSpace::resident_pages() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.resident_pages();
  return total;
}

std::uint64_t AddressSpace::resident_bytes() const {
  return resident_pages() * kPageSize;
}

std::uint64_t AddressSpace::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.length;
  return total;
}

AddressSpace AddressSpace::clone_for_fork() const {
  // COW semantics: the child shares page sources (physical frames) and keeps
  // the same residency; descriptors are copied.
  AddressSpace child;
  child.vmas_ = vmas_;
  child.next_id_ = next_id_;
  child.next_addr_ = next_addr_;
  return child;
}

AddressSpace AddressSpace::clone_cow() {
  AddressSpace child = clone_for_fork();
  for (std::size_t i = 0; i < vmas_.size(); ++i) {
    Vma& parent = vmas_[i];
    Vma& clone = child.vmas_[i];
    if (parent.resident_pages() == 0) continue;
    if (parent.cow_shares == nullptr)
      parent.cow_shares = std::make_shared<std::vector<std::uint32_t>>(
          parent.page_count(), 0);
    clone.cow.assign(parent.page_count(), false);
    clone.cow_shares = parent.cow_shares;
    for (std::uint64_t p = 0; p < parent.page_count(); ++p) {
      if (!parent.present[p]) continue;
      clone.cow[p] = true;
      ++(*parent.cow_shares)[p];
    }
  }
  return child;
}

std::uint64_t AddressSpace::cow_pages() const {
  std::uint64_t total = 0;
  for (const Vma& vma : vmas_) total += vma.cow_pages();
  return total;
}

}  // namespace prebake::os
