// Word-backed per-page bitmap for VMAs.
//
// Replaces std::vector<bool> in the restore hot path: the replay loop and the
// COW-clone bookkeeping operate on *runs* of pages, and a word-backed bitmap
// turns those per-page bit flips into memset-width word stores and popcounts.
// The API mirrors the subset of vector<bool> the address space used
// (operator[], size, assign) plus the bulk operations the batched kernel
// paths need (set_range, count_range, for_each_set_run).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace prebake::os {

class PageBitmap {
 public:
  PageBitmap() = default;
  explicit PageBitmap(std::uint64_t n, bool value = false) { assign(n, value); }

  void assign(std::uint64_t n, bool value) {
    size_ = n;
    words_.assign(word_count(n), value ? ~std::uint64_t{0} : 0);
    mask_tail();
  }
  void clear() {
    size_ = 0;
    words_.clear();
  }

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool operator[](std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::uint64_t i, bool value = true) {
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= bit;
    else
      words_[i >> 6] &= ~bit;
  }

  // Set (or clear) `n` bits starting at `first`, clamped to size().
  void set_range(std::uint64_t first, std::uint64_t n, bool value = true) {
    std::uint64_t end = first + n;
    if (end > size_) end = size_;
    if (first >= end) return;
    const std::uint64_t wf = first >> 6, we = (end - 1) >> 6;
    const std::uint64_t head = ~std::uint64_t{0} << (first & 63);
    const std::uint64_t tail = ~std::uint64_t{0} >> (63 - ((end - 1) & 63));
    if (wf == we) {
      apply(wf, head & tail, value);
      return;
    }
    apply(wf, head, value);
    for (std::uint64_t w = wf + 1; w < we; ++w)
      words_[w] = value ? ~std::uint64_t{0} : 0;
    apply(we, tail, value);
  }

  // Population count over the whole bitmap / a clamped range.
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t w : words_)
      total += static_cast<std::uint64_t>(std::popcount(w));
    return total;
  }
  std::uint64_t count_range(std::uint64_t first, std::uint64_t n) const {
    std::uint64_t end = first + n;
    if (end > size_) end = size_;
    if (first >= end) return 0;
    const std::uint64_t wf = first >> 6, we = (end - 1) >> 6;
    const std::uint64_t head = ~std::uint64_t{0} << (first & 63);
    const std::uint64_t tail = ~std::uint64_t{0} >> (63 - ((end - 1) & 63));
    if (wf == we)
      return static_cast<std::uint64_t>(std::popcount(words_[wf] & head & tail));
    std::uint64_t total =
        static_cast<std::uint64_t>(std::popcount(words_[wf] & head)) +
        static_cast<std::uint64_t>(std::popcount(words_[we] & tail));
    for (std::uint64_t w = wf + 1; w < we; ++w)
      total += static_cast<std::uint64_t>(std::popcount(words_[w]));
    return total;
  }
  bool any() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  // Invoke fn(first_page, pages) for each maximal run of set bits within
  // [first, first + n), clamped to size().
  template <typename Fn>
  void for_each_set_run(std::uint64_t first, std::uint64_t n, Fn&& fn) const {
    std::uint64_t end = first + n;
    if (end > size_) end = size_;
    std::uint64_t i = first;
    while (i < end) {
      // Find the next set bit at or after i.
      std::uint64_t w = words_[i >> 6] >> (i & 63);
      if (w == 0) {
        i = (i >> 6 << 6) + 64;
        continue;
      }
      i += static_cast<std::uint64_t>(std::countr_zero(w));
      if (i >= end) break;
      // Find the end of the run.
      std::uint64_t run_end = i;
      while (run_end < end) {
        std::uint64_t inv = ~words_[run_end >> 6] >> (run_end & 63);
        if (inv == 0) {
          run_end = (run_end >> 6 << 6) + 64;
          continue;
        }
        run_end += static_cast<std::uint64_t>(std::countr_zero(inv));
        break;
      }
      if (run_end > end) run_end = end;
      fn(i, run_end - i);
      i = run_end;
    }
  }

  bool operator==(const PageBitmap&) const = default;

 private:
  static std::uint64_t word_count(std::uint64_t n) { return (n + 63) >> 6; }
  void apply(std::uint64_t word, std::uint64_t mask, bool value) {
    if (value)
      words_[word] |= mask;
    else
      words_[word] &= ~mask;
  }
  // Bits past size() must stay zero so count() can popcount whole words.
  void mask_tail() {
    if (size_ & 63) words_.back() &= ~std::uint64_t{0} >> (64 - (size_ & 63));
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t size_ = 0;
};

}  // namespace prebake::os
