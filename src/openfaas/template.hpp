// OpenFaaS templates (Section 5.2).
//
// A template hides the runtime setup from the user. The CRIU-enabled
// templates additionally install the checkpoint/restore dependencies and run
// CRIU commands during build and start ("we created a new CRIU-version
// template for each language that we wanted to support").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace prebake::openfaas {

struct Template {
  std::string name;       // e.g. "java8", "java8-criu"
  std::string language;   // "java", "python", "go", ...
  std::string runtime_binary;
  bool uses_criu = false;
  // Optional post-processing performed during build before the checkpoint
  // (e.g. warm-up requests): number of warm-up requests the template's build
  // hook sends. Only meaningful when uses_criu.
  std::uint32_t default_warmup_requests = 0;
  // Size of the base layers the template contributes to the image.
  std::uint64_t base_layer_bytes = 0;
};

class TemplateStore {
 public:
  // Populates the built-in template catalogue.
  TemplateStore();

  const Template& get(const std::string& name) const;
  bool has(const std::string& name) const { return templates_.contains(name); }
  std::vector<std::string> names() const;

  void put(Template t) { templates_[t.name] = std::move(t); }

 private:
  std::map<std::string, Template> templates_;
};

}  // namespace prebake::openfaas
