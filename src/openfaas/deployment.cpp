#include "openfaas/deployment.hpp"

#include <stdexcept>

#include "criu/dump.hpp"

namespace prebake::openfaas {

Deployment::Deployment(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
                       ProviderConfig provider)
    : kernel_{&kernel},
      startup_{kernel, std::move(runtime_costs), assets_},
      provider_{std::move(provider)} {}

FunctionProject Deployment::new_function(const std::string& name,
                                         const std::string& template_name,
                                         rt::FunctionSpec business_logic) {
  const Template& tpl = templates_.get(template_name);  // throws if unknown
  FunctionProject project;
  project.name = name;
  project.template_name = template_name;
  project.spec = std::move(business_logic);
  project.spec.name = name;
  project.spec.runtime_binary = tpl.runtime_binary;
  projects_[name] = project;
  return project;
}

ContainerImage Deployment::build(const FunctionProject& project) {
  os::Kernel& k = *kernel_;
  const Template& tpl = templates_.get(project.template_name);

  // Register runtime + classpath artifacts (the docker build context).
  rt::FunctionSpec spec = project.spec;
  if (!k.fs().exists(spec.runtime_binary))
    k.fs().create(spec.runtime_binary, 48ull * 1024 * 1024);
  spec.classpath_archive = "/build/" + project.name + "/classes.jar";
  k.fs().create(spec.classpath_archive,
                std::max<std::uint64_t>(spec.total_class_bytes(), 4096));
  if (spec.init_io_bytes > 0) {
    spec.init_io_path = "/build/" + project.name + "/data.bin";
    k.fs().create(spec.init_io_path, spec.init_io_bytes);
  }

  ContainerImage image;
  image.name = project.name;
  image.base_layer_bytes = tpl.base_layer_bytes;
  image.function_layer_bytes = spec.total_class_bytes() + spec.init_io_bytes;

  if (tpl.uses_criu) {
    // Privileged docker build (Buildx) or unprivileged CRIU is required to
    // checkpoint during the build phase (Section 5.2).
    if (!provider_.allow_privileged && !provider_.unprivileged_criu)
      throw std::runtime_error{
          "build: CRIU template needs a privileged builder (docker buildx "
          "--allow security.insecure) or unprivileged CRIU"};

    core::PrebakeConfig cfg;
    cfg.policy = tpl.default_warmup_requests > 0
                     ? core::SnapshotPolicy::warmup(tpl.default_warmup_requests)
                     : core::SnapshotPolicy::no_warmup();
    cfg.store_root = "/build/" + project.name + "/checkpoint/";
    cfg.unprivileged = provider_.unprivileged_criu;
    core::Prebaker prebaker{startup_};
    core::BakedSnapshot baked = prebaker.bake(spec, cfg, rng_.child(1));

    image.has_snapshot = true;
    image.snapshot_layer_bytes = baked.images.nominal_total();
    image.snapshot_fs_prefix = baked.fs_prefix;
    image.snapshot = std::move(baked.images);
    image.warmup_requests = baked.stats.warmup_requests;
  }

  // Keep the resolved spec for deployment.
  projects_[project.name].spec = std::move(spec);
  return image;
}

void Deployment::push(ContainerImage image) {
  // Uploading the image layers (registry write).
  kernel_->sim().advance(kernel_->costs().disk_write_cost(image.total_bytes()));
  repository_.push(std::move(image));
}

void Deployment::deploy(const std::string& name) {
  const auto it = projects_.find(name);
  if (it == projects_.end())
    throw std::out_of_range{"deploy: unknown project " + name};
  const std::string ref = name + ":latest";
  if (!repository_.has(ref))
    throw std::runtime_error{"deploy: image not pushed: " + ref};

  const ContainerImage& image = repository_.pull(ref);
  if (image.has_snapshot && !provider_.allow_privileged &&
      !provider_.unprivileged_criu)
    throw std::runtime_error{
        "deploy: prebaked functions need privileged containers "
        "(docker run --privileged) or unprivileged CRIU"};

  deployed_[name] = DeployedFn{it->second, ref};
}

Deployment::WatchdogReplica* Deployment::find_ready(const std::string& name) {
  for (auto& r : replicas_)
    if (r->function == name && !r->busy) return r.get();
  return nullptr;
}

Deployment::WatchdogReplica* Deployment::start_replica(const std::string& name) {
  const auto it = deployed_.find(name);
  if (it == deployed_.end())
    throw std::out_of_range{"invoke: function not deployed: " + name};
  const ContainerImage& image = repository_.pull(it->second.image_ref);
  const rt::FunctionSpec& spec = it->second.project.spec;

  // Pull the image to the node (cached after the first pull).
  const std::string node_path = "/nodes/node-1/images/" + image.reference();
  if (!kernel_->fs().exists(node_path)) {
    kernel_->fs().create(node_path, image.total_bytes());
    kernel_->sim().advance(
        kernel_->costs().disk_write_cost(image.total_bytes()));
  }

  auto replica = std::make_unique<WatchdogReplica>();
  replica->function = name;
  sim::Rng rng = rng_.child(replicas_.size() + 17);
  if (image.has_snapshot) {
    // The Watchdog runs `criu restore` on the snapshot inside the image.
    core::PrebakedStartOptions options;
    options.restore.fs_prefix = image.snapshot_fs_prefix;
    replica->proc = startup_.start_prebaked(spec, *image.snapshot, options,
                                            std::move(rng));
  } else {
    replica->proc = startup_.start_vanilla(spec, std::move(rng));
  }
  replicas_.push_back(std::move(replica));
  return replicas_.back().get();
}

InvocationRecord Deployment::invoke(const std::string& name,
                                    const funcs::Request& req,
                                    funcs::Response* out) {
  const sim::TimePoint t0 = kernel_->sim().now();
  InvocationRecord record;
  record.function = name;

  WatchdogReplica* replica = find_ready(name);
  if (replica == nullptr) {
    replica = start_replica(name);
    record.cold_start = true;
    record.startup = replica->proc.breakdown.total;
  }

  replica->busy = true;
  const funcs::Response res = replica->proc.runtime->handle(req);
  replica->busy = false;

  record.status = res.status;
  record.total = kernel_->sim().now() - t0;
  if (out != nullptr) *out = res;
  log_.push_back(record);
  return record;
}

void Deployment::scale(const std::string& name, std::uint32_t replicas) {
  while (ready_replicas(name) < replicas) start_replica(name);
}

std::uint32_t Deployment::ready_replicas(const std::string& name) const {
  std::uint32_t n = 0;
  for (const auto& r : replicas_)
    if (r->function == name && !r->busy) ++n;
  return n;
}

}  // namespace prebake::openfaas
