// The OpenFaaS-style deployment (Section 5): Gateway, FaaS-CLI, Watchdog and
// FaaS-Provider wired over the simulated kernel and the prebake core.
//
// Flow (Figure 9): `faas-cli new` copies a template; `build` starts the
// function runtime, optionally runs the warm-up post-processing script, and
// checkpoints the process into the container image; `push` stores the image;
// `deploy` registers the function with the Gateway. When the FaaS-Provider
// launches a replica, the Watchdog either fork-execs (plain templates) or
// runs `criu restore` on the snapshot baked into the image — which requires
// the provider to allow privileged containers (docker run --privileged /
// Kubernetes privileged pods), unless the unprivileged
// CAP_CHECKPOINT_RESTORE mode is enabled.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/prebaker.hpp"
#include "core/startup.hpp"
#include "openfaas/image_repository.hpp"
#include "openfaas/template.hpp"

namespace prebake::openfaas {

struct ProviderConfig {
  // Kubernetes or DockerSwarm ("the FaaS-Provider has implementations for
  // Kubernetes and DockerSwarm integration").
  std::string orchestrator = "kubernetes";
  // Restores are privileged operations; without this (and without
  // unprivileged CRIU) deploying a CRIU template must fail.
  bool allow_privileged = false;
  // Use the CAP_CHECKPOINT_RESTORE-only mode added in recent kernels [11].
  bool unprivileged_criu = false;
};

struct FunctionProject {
  std::string name;
  std::string template_name;
  rt::FunctionSpec spec;  // the business logic the developer wrote
};

struct InvocationRecord {
  std::string function;
  bool cold_start = false;
  sim::Duration startup;
  sim::Duration total;
  int status = 0;
};

class Deployment {
 public:
  Deployment(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
             ProviderConfig provider);

  TemplateStore& templates() { return templates_; }
  ImageRepository& repository() { return repository_; }

  // --- faas-cli operations -----------------------------------------------
  // 1. new: create a function project from a template.
  FunctionProject new_function(const std::string& name,
                               const std::string& template_name,
                               rt::FunctionSpec business_logic);
  // 2. build: produce a container image; CRIU templates start the runtime,
  // run the warm-up hook, and checkpoint into the image.
  ContainerImage build(const FunctionProject& project);
  // 3. push: store the image in the repository.
  void push(ContainerImage image);
  // 4. deploy: make the function invocable through the gateway.
  void deploy(const std::string& name);

  // --- gateway -------------------------------------------------------------
  // Synchronous invoke through the gateway (runs on the simulation clock).
  InvocationRecord invoke(const std::string& name, const funcs::Request& req,
                          funcs::Response* out = nullptr);

  // Scale to `replicas` ready instances (the Gateway/Prometheus autoscale
  // action).
  void scale(const std::string& name, std::uint32_t replicas);
  std::uint32_t ready_replicas(const std::string& name) const;

  const std::vector<InvocationRecord>& log() const { return log_; }

 private:
  struct DeployedFn {
    FunctionProject project;
    std::string image_ref;
  };
  struct WatchdogReplica {
    std::string function;
    core::ReplicaProcess proc;
    bool busy = false;
  };

  // Watchdog: start one replica from the function's container image.
  WatchdogReplica* start_replica(const std::string& name);
  WatchdogReplica* find_ready(const std::string& name);

  os::Kernel* kernel_;
  funcs::SharedAssets assets_;
  core::StartupService startup_;
  ProviderConfig provider_;
  TemplateStore templates_;
  ImageRepository repository_;
  std::map<std::string, FunctionProject> projects_;
  std::map<std::string, DeployedFn> deployed_;
  std::vector<std::unique_ptr<WatchdogReplica>> replicas_;
  std::vector<InvocationRecord> log_;
  sim::Rng rng_{0xFAA5};
};

}  // namespace prebake::openfaas
