#include "openfaas/image_repository.hpp"

namespace prebake::openfaas {

void ImageRepository::push(ContainerImage image) {
  images_[image.reference()] = std::move(image);
}

const ContainerImage& ImageRepository::pull(const std::string& reference) const {
  const auto it = images_.find(reference);
  if (it == images_.end())
    throw std::out_of_range{"ImageRepository: unknown image " + reference};
  return it->second;
}

bool ImageRepository::has(const std::string& reference) const {
  return images_.contains(reference);
}

}  // namespace prebake::openfaas
