// Container Image Repository: where `faas-cli push` stores deployable
// artifacts. For prebaked functions the CRIU snapshot is a layer inside the
// container image (Figure 9: "CRIU triggers the process checkpoint and
// stores the Function Snapshot data inside the Function Container Image").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "criu/image.hpp"

namespace prebake::openfaas {

struct ContainerImage {
  std::string name;
  std::string tag = "latest";
  std::uint64_t base_layer_bytes = 0;      // template layers
  std::uint64_t function_layer_bytes = 0;  // class archive + data
  std::uint64_t snapshot_layer_bytes = 0;  // CRIU images (prebaked only)
  bool has_snapshot = false;
  // Snapshot images travel inside the container image.
  std::optional<criu::ImageDir> snapshot;
  // Where the snapshot layer is unpacked on a node's filesystem at run time.
  std::string snapshot_fs_prefix;
  std::uint32_t warmup_requests = 0;

  std::uint64_t total_bytes() const {
    return base_layer_bytes + function_layer_bytes + snapshot_layer_bytes;
  }
  std::string reference() const { return name + ":" + tag; }
};

class ImageRepository {
 public:
  void push(ContainerImage image);
  const ContainerImage& pull(const std::string& reference) const;
  bool has(const std::string& reference) const;
  std::size_t size() const { return images_.size(); }

 private:
  std::map<std::string, ContainerImage> images_;
};

}  // namespace prebake::openfaas
