#include "openfaas/template.hpp"

namespace prebake::openfaas {

namespace {
constexpr std::uint64_t kMiB = 1024 * 1024;
}

TemplateStore::TemplateStore() {
  put(Template{"java8", "java", "/opt/jvm/bin/java", false, 0, 180 * kMiB});
  put(Template{"java8-criu", "java", "/opt/jvm/bin/java", true, 0, 208 * kMiB});
  put(Template{"java8-criu-warm", "java", "/opt/jvm/bin/java", true, 1,
               208 * kMiB});
  put(Template{"python3", "python", "/usr/bin/python3", false, 0, 120 * kMiB});
  put(Template{"python3-criu", "python", "/usr/bin/python3", true, 0,
               145 * kMiB});
  put(Template{"go", "go", "/usr/local/bin/handler", false, 0, 24 * kMiB});
  put(Template{"node12", "javascript", "/usr/bin/node", false, 0, 95 * kMiB});
}

const Template& TemplateStore::get(const std::string& name) const {
  const auto it = templates_.find(name);
  if (it == templates_.end())
    throw std::out_of_range{"TemplateStore: unknown template " + name};
  return it->second;
}

std::vector<std::string> TemplateStore::names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, t] : templates_) out.push_back(name);
  return out;
}

}  // namespace prebake::openfaas
