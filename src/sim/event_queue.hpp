// Pending-event queues for the simulation engine.
//
// Two implementations of the same total order on (time, scheduling sequence):
//
//  - CalendarQueue: Brown-style calendar queue tuned for the timer-dominated
//    workloads of large trace replays (hundreds of thousands of pending idle
//    timers and arrival events). Amortised O(1) push/pop: events hash into a
//    power-of-two ring of "day" buckets by time slot, each bucket a small
//    sorted vector; the dequeue scan walks at most one "year" of buckets
//    before falling back to a direct minimum scan and recalibrating the
//    bucket width to the live event spread.
//
//  - BinaryHeapQueue: the original std::priority_queue engine, kept as the
//    reference implementation for the cross-engine determinism suite
//    (ScaleEngine* tests) and as an escape hatch.
//
// Both pop events in strictly increasing (at, seq) order; the calendar queue
// is bit-identical to the heap by construction because (at, seq) is a total
// order — the determinism suite pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace prebake::sim {

struct QueuedEvent {
  TimePoint at;
  std::uint64_t seq = 0;  // global schedule order; ties on `at` fire FIFO
  std::uint64_t id = 0;   // slab EventId, opaque to the queue
};

inline bool event_before(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

class CalendarQueue {
 public:
  CalendarQueue();

  void push(const QueuedEvent& e);
  // Minimum (at, seq) event, or nullptr when empty. The pointer is
  // invalidated by the next push/pop.
  const QueuedEvent* peek();
  // Pop the minimum event. Precondition: !empty().
  QueuedEvent pop();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Introspection for tests/benchmarks.
  std::size_t bucket_count() const { return buckets_.size(); }
  std::int64_t bucket_width_ns() const { return width_; }

 private:
  std::int64_t slot_of(TimePoint at) const {
    return at.nanos_since_origin() / width_;
  }
  // Position cur_slot_ on the bucket holding the global minimum. Requires
  // size_ > 0.
  void locate_min();
  // Re-bucket every event into `nbuckets` buckets with a width derived from
  // the live events' time spread.
  void recalibrate(std::size_t nbuckets);

  std::vector<std::vector<QueuedEvent>> buckets_;
  std::size_t mask_ = 0;         // buckets_.size() - 1 (power of two)
  std::int64_t width_ = 1;       // bucket width in ns, >= 1
  std::int64_t cur_slot_ = 0;    // absolute slot (at_ns / width_) being drained
  std::size_t size_ = 0;
  std::size_t direct_scans_ = 0;  // consecutive full-scan fallbacks
};

class BinaryHeapQueue {
 public:
  void push(const QueuedEvent& e) { heap_.push(e); }
  const QueuedEvent* peek() { return heap_.empty() ? nullptr : &heap_.top(); }
  QueuedEvent pop() {
    QueuedEvent e = heap_.top();
    heap_.pop();
    return e;
  }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  struct After {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return event_before(b, a);
    }
  };
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, After> heap_;
};

}  // namespace prebake::sim
