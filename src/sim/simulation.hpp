// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of events. Code that
// models a *single* active actor (e.g. a process performing syscalls) charges
// time to the clock directly through `advance()`; concurrent activity (the
// FaaS platform's request arrivals, replica lifecycles, autoscaler alerts)
// schedules callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace prebake::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return now_; }

  // Charge `d` of busy time to the current actor: the clock moves forward.
  // Negative durations are a logic error and are clamped to zero.
  void advance(Duration d) {
    if (d > Duration{}) now_ += d;
  }

  // Move the clock back to `t`, which must not be in the future. Only valid
  // when no event has fired since `t` was read from now(): the caller ran a
  // synchronous block of work to *measure* its duration and will re-emit the
  // completion as a scheduled event (e.g. a replica serving a request while
  // other traffic keeps arriving). Misuse breaks causality, hence the throw.
  void rewind_to(TimePoint t) {
    if (t > now_) throw std::logic_error{"Simulation::rewind_to: future time"};
    now_ = t;
  }

  // Schedule `fn` at absolute time `at` (must not be in the past). Events at
  // equal times fire in FIFO order of scheduling. Returns an id usable with
  // cancel().
  EventId schedule_at(TimePoint at, EventFn fn);
  EventId schedule_in(Duration d, EventFn fn) { return schedule_at(now_ + d, fn); }

  // Cancel a pending event. Returns false if it already fired or is unknown.
  bool cancel(EventId id);

  // Run a single event; returns false when the queue is empty.
  bool step();
  // Run until the queue is empty.
  void run();
  // Run until the clock reaches `until` (events scheduled at exactly `until`
  // are executed).
  void run_until(TimePoint until);

  std::size_t pending_events() const { return queue_.size() - cancelled_live_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    EventId id;
    // Heap orders by (time, then insertion sequence).
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks keyed by event id; erased on cancel.
  std::vector<std::pair<EventId, EventFn>> callbacks_;
  std::size_t cancelled_live_ = 0;

  EventFn* find_callback(EventId id);
};

}  // namespace prebake::sim
