// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a pending-event queue. Code that
// models a *single* active actor (e.g. a process performing syscalls) charges
// time to the clock directly through `advance()`; concurrent activity (the
// FaaS platform's request arrivals, replica lifecycles, autoscaler alerts)
// schedules callbacks.
//
// The default queue is a calendar queue (amortised O(1) insert/pop for the
// timer-dominated pending sets of large trace replays); the original binary
// heap is retained behind QueueKind::kBinaryHeap as the reference engine for
// the cross-engine determinism suite. Both produce bit-identical event
// execution order — (time, scheduling sequence) is a total order.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace prebake::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

enum class QueueKind {
  kCalendar,    // default: calendar queue, near-O(1) for large pending sets
  kBinaryHeap,  // reference: the original std::priority_queue engine
};

class Simulation {
 public:
  Simulation() = default;
  explicit Simulation(QueueKind kind) : kind_(kind) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  QueueKind queue_kind() const { return kind_; }

  TimePoint now() const { return now_; }

  // Charge `d` of busy time to the current actor: the clock moves forward.
  // Negative durations are a logic error and are clamped to zero.
  void advance(Duration d) {
    if (d > Duration{}) now_ += d;
  }

  // Move the clock back to `t`, which must not be in the future. Only valid
  // when no event has fired since `t` was read from now(): the caller ran a
  // synchronous block of work to *measure* its duration and will re-emit the
  // completion as a scheduled event (e.g. a replica serving a request while
  // other traffic keeps arriving). Misuse breaks causality, hence the throw.
  void rewind_to(TimePoint t) {
    if (t > now_) throw std::logic_error{"Simulation::rewind_to: future time"};
    now_ = t;
  }

  // Schedule `fn` at absolute time `at` (must not be in the past). Events at
  // equal times fire in FIFO order of scheduling. Returns an id usable with
  // cancel(). Callbacks live in a slab of reusable slots (the id encodes
  // slot + generation), so schedule/cancel/step are O(1) on the callback
  // table — no linear scans, no per-event heap churn once the slab and the
  // queue have grown to the scenario's working set.
  EventId schedule_at(TimePoint at, EventFn fn);
  EventId schedule_in(Duration d, EventFn fn) { return schedule_at(now_ + d, fn); }

  // Cancel a pending event. Returns false if it already fired or is unknown.
  bool cancel(EventId id);

  // Run a single event; returns false when the queue is empty.
  bool step();
  // Run until the queue is empty.
  void run();
  // Run until the clock reaches `until` (events scheduled at exactly `until`
  // are executed).
  void run_until(TimePoint until);

  std::size_t pending_events() const { return queue_size() - cancelled_live_; }

 private:
  // One slab slot: the callback plus the generation stamped into its
  // EventId. Freed slots go on an intrusive free list and are reused with a
  // bumped generation, so a stale id (already fired or cancelled) can never
  // alias a new event.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  Slot* live_slot(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    return (s.live && s.gen == gen) ? &s : nullptr;
  }
  void release_slot(std::uint32_t slot);

  void queue_push(const QueuedEvent& e) {
    if (kind_ == QueueKind::kCalendar)
      calendar_.push(e);
    else
      heap_.push(e);
  }
  const QueuedEvent* queue_peek() {
    return kind_ == QueueKind::kCalendar ? calendar_.peek() : heap_.peek();
  }
  QueuedEvent queue_pop() {
    return kind_ == QueueKind::kCalendar ? calendar_.pop() : heap_.pop();
  }
  std::size_t queue_size() const {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : heap_.size();
  }

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  QueueKind kind_ = QueueKind::kCalendar;
  CalendarQueue calendar_;
  BinaryHeapQueue heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t cancelled_live_ = 0;
};

}  // namespace prebake::sim
