#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace prebake::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_{seed} {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 bits of mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % range);
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire 2019: map the 64-bit draw onto [0, n) via the high half of a
  // 128-bit product; reject only the thin biased slice of the low half.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::child(std::uint64_t stream_id) const {
  std::uint64_t sm = seed_ ^ (0xA5A5A5A5DEADBEEFULL + stream_id * 0x9E3779B97F4A7C15ULL);
  return Rng{splitmix64(sm)};
}

}  // namespace prebake::sim
