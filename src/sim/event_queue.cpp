#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace prebake::sim {
namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

void CalendarQueue::push(const QueuedEvent& e) {
  // Keep average bucket occupancy <= 2: amortised-O(1) sorted inserts and a
  // dequeue scan that rarely visits more than a handful of buckets.
  if (size_ >= buckets_.size() * 2 && buckets_.size() < kMaxBuckets)
    recalibrate(buckets_.size() * 2);
  const std::int64_t slot = slot_of(e.at);
  // An insert behind the dequeue scan position must rewind it, otherwise the
  // scan would skip this event until the ring wraps and pop a later one
  // first. With a monotone simulation clock this happens only for inserts
  // into the slot currently being drained or after rewind_to() measurement
  // games, but correctness must not depend on that.
  if (size_ == 0 || slot < cur_slot_) cur_slot_ = slot;
  auto& b = buckets_[static_cast<std::size_t>(slot) & mask_];
  b.insert(std::upper_bound(b.begin(), b.end(), e, event_before), e);
  ++size_;
}

void CalendarQueue::locate_min() {
  assert(size_ > 0);
  // Fast path: walk at most one year of the ring starting at the scan
  // position. A bucket front belongs to the scanned slot iff its quantised
  // time equals the slot (fronts from later years share the bucket but have
  // a larger quotient; fronts earlier than cur_slot_ cannot exist — push()
  // rewinds the scan).
  std::int64_t slot = cur_slot_;
  for (std::size_t i = 0; i <= mask_; ++i, ++slot) {
    const auto& b = buckets_[static_cast<std::size_t>(slot) & mask_];
    if (!b.empty() && slot_of(b.front().at) == slot) {
      cur_slot_ = slot;
      direct_scans_ = 0;
      return;
    }
  }
  // Sparse year: direct minimum scan over the bucket fronts. Repeated
  // fallbacks mean the bucket width no longer matches the live event spread
  // (e.g. a dense burst drained and left sparse far-future timers), so
  // recalibrate and retry.
  if (++direct_scans_ >= 4 && size_ >= 2) {
    recalibrate(buckets_.size());
    direct_scans_ = 0;
  }
  const QueuedEvent* best = nullptr;
  for (const auto& b : buckets_) {
    if (!b.empty() && (best == nullptr || event_before(b.front(), *best)))
      best = &b.front();
  }
  cur_slot_ = slot_of(best->at);
}

const QueuedEvent* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  locate_min();
  return &buckets_[static_cast<std::size_t>(cur_slot_) & mask_].front();
}

QueuedEvent CalendarQueue::pop() {
  locate_min();
  auto& b = buckets_[static_cast<std::size_t>(cur_slot_) & mask_];
  QueuedEvent e = b.front();
  b.erase(b.begin());
  --size_;
  // Shrink when the queue drains far below the ring size so the dequeue
  // scan stays proportional to the live event count.
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8)
    recalibrate(buckets_.size() / 2);
  return e;
}

void CalendarQueue::recalibrate(std::size_t nbuckets) {
  std::vector<QueuedEvent> all;
  all.reserve(size_);
  for (auto& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  buckets_.resize(nbuckets);
  for (auto& b : buckets_) b.shrink_to_fit();
  mask_ = nbuckets - 1;
  if (all.empty()) {
    width_ = 1;
    cur_slot_ = 0;
    return;
  }
  std::int64_t min_ns = all.front().at.nanos_since_origin();
  std::int64_t max_ns = min_ns;
  for (const QueuedEvent& e : all) {
    min_ns = std::min(min_ns, e.at.nanos_since_origin());
    max_ns = std::max(max_ns, e.at.nanos_since_origin());
  }
  // Width ~= spread / count spreads the live events roughly one per slot;
  // with occupancy capped at 2x the ring size, a year scan touches O(1)
  // buckets per pop in the steady state.
  width_ = std::max<std::int64_t>(
      1, (max_ns - min_ns) / static_cast<std::int64_t>(all.size() + 1));
  size_ = 0;
  cur_slot_ = min_ns / width_;
  for (const QueuedEvent& e : all) {
    auto& b = buckets_[static_cast<std::size_t>(slot_of(e.at)) & mask_];
    b.insert(std::upper_bound(b.begin(), b.end(), e, event_before), e);
    ++size_;
  }
}

}  // namespace prebake::sim
