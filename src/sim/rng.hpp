// Deterministic random number generation for experiments.
//
// Every experiment in this repository is a pure function of its seed; we use
// our own xoshiro256++ implementation (public-domain algorithm by Blackman &
// Vigna) rather than std::mt19937 so the stream is identical across standard
// library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace prebake::sim {

// splitmix64 — used to expand a single 64-bit seed into xoshiro state and to
// derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless variant: hash (seed, stream) into an independent 64-bit seed.
// The parallel experiment engine derives each repetition's generator as
// Rng{splitmix64(config.seed, rep)} so a repetition's stream depends only on
// the configured seed and its index — never on which thread runs it or how
// many repetitions precede it.
std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform bits over [0, 2^64).
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform integer in [0, n) without modulo bias (Lemire's multiply-shift
  // with rejection). Division-free in the common case — the bootstrap's
  // resampling loop draws hundreds of thousands of bounded integers per CI.
  // Requires n >= 1. Draws a different stream than uniform_int.
  std::uint64_t next_below(std::uint64_t n);

  // Standard normal via Box-Muller (cached spare kept for determinism).
  double normal();
  double normal(double mean, double stddev);
  // Lognormal such that the *median* of the distribution is exactly
  // `median` and sigma is the shape parameter of the underlying normal.
  // Used for multiplicative timing noise: median is preserved, tail is
  // right-skewed like real start-up latencies (the paper's samples fail the
  // Shapiro-Wilk normality test; see Section 4.2).
  double lognormal_median(double median, double sigma);
  double exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (stable under reordering of other
  // draws from this generator).
  Rng child(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace prebake::sim
