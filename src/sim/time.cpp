#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace prebake::sim {

std::string Duration::to_string() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

}  // namespace prebake::sim
