// Strong time types for the discrete-event simulation.
//
// All simulated time is kept as a signed 64-bit count of nanoseconds. The
// strong Duration/TimePoint wrappers keep callers from mixing simulated time
// with wall-clock time and from accidentally adding two absolute times.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace prebake::sim {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t us) { return Duration{us * 1000}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  // Fractional constructors for cost models expressed in real units.
  static constexpr Duration micros_f(double us) {
    return Duration{static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration millis_f(double ms) { return micros_f(ms * 1e3); }
  static constexpr Duration seconds_f(double s) { return micros_f(s * 1e6); }

  constexpr std::int64_t nanos_count() const { return ns_; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * f + 0.5)};
  }
  constexpr Duration operator/(double f) const { return *this * (1.0 / f); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;  // e.g. "103.25ms"

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

inline constexpr Duration operator*(double f, Duration d) { return d * f; }

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint{n}; }

  constexpr std::int64_t nanos_since_origin() const { return ns_; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.nanos_count()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.nanos_count()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  TimePoint& operator+=(Duration d) { ns_ += d.nanos_count(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace prebake::sim
