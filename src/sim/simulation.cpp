#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace prebake::sim {

EventId Simulation::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_)
    throw std::logic_error{
        "Simulation::schedule_at: time in the past (at=" +
        std::to_string(at.nanos_since_origin()) +
        " now=" + std::to_string(now_.nanos_since_origin()) + ")"};
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id});
  callbacks_.emplace_back(id, std::move(fn));
  return id;
}

EventFn* Simulation::find_callback(EventId id) {
  const auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                               [id](const auto& p) { return p.first == id; });
  return it == callbacks_.end() ? nullptr : &it->second;
}

bool Simulation::cancel(EventId id) {
  const auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                               [id](const auto& p) { return p.first == id; });
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  ++cancelled_live_;
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                           [&](const auto& p) { return p.first == ev.id; });
    if (it == callbacks_.end()) {
      // Cancelled event; skip its shell.
      --cancelled_live_;
      continue;
    }
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = std::max(now_, ev.at);
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(TimePoint until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!step()) break;
  }
  now_ = std::max(now_, until);
}

}  // namespace prebake::sim
