#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace prebake::sim {

void Simulation::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.live = false;
  ++s.gen;  // stale ids stop matching the moment the slot is freed
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId Simulation::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_)
    throw std::logic_error{
        "Simulation::schedule_at: time in the past (at=" +
        std::to_string(at.nanos_since_origin()) +
        " now=" + std::to_string(now_.nanos_since_origin()) + ")"};
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const EventId id = encode(slot, s.gen);
  queue_push(QueuedEvent{at, next_seq_++, id});
  return id;
}

bool Simulation::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return false;
  release_slot(static_cast<std::uint32_t>(id));
  ++cancelled_live_;  // the queue still holds the event's shell
  return true;
}

bool Simulation::step() {
  while (queue_size() > 0) {
    const QueuedEvent ev = queue_pop();
    Slot* s = live_slot(ev.id);
    if (s == nullptr) {
      // Cancelled event; skip its shell.
      --cancelled_live_;
      continue;
    }
    EventFn fn = std::move(s->fn);
    release_slot(static_cast<std::uint32_t>(ev.id));
    now_ = std::max(now_, ev.at);
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(TimePoint until) {
  for (const QueuedEvent* top = queue_peek();
       top != nullptr && top->at <= until; top = queue_peek()) {
    if (!step()) break;
  }
  now_ = std::max(now_, until);
}

}  // namespace prebake::sim
