#include "funcs/handlers.hpp"

#include <stdexcept>

#include "funcs/markdown.hpp"

namespace prebake::funcs {

Response NoopHandler::handle(const Request&) {
  Response res;
  res.status = 200;
  res.body = "OK";
  return res;
}

Response MarkdownHandler::handle(const Request& req) {
  Response res;
  if (req.body.empty()) {
    res.status = 400;
    res.body = "empty markdown body";
    return res;
  }
  res.status = 200;
  res.headers["Content-Type"] = "text/html";
  res.body = render_markdown(req.body);
  return res;
}

ImageResizerHandler::ImageResizerHandler(
    std::shared_ptr<const LazyImage> source, double scale)
    : source_{std::move(source)}, scale_{scale} {
  if (!source_ || source_->width() == 0 || source_->height() == 0)
    throw std::invalid_argument{"ImageResizerHandler: invalid source image"};
  if (scale_ <= 0.0 || scale_ > 1.0)
    throw std::invalid_argument{"ImageResizerHandler: scale must be in (0, 1]"};
}

Response ImageResizerHandler::handle(const Request&) {
  const Image& src = source_->get();
  const Image scaled = resize_box(src, scale_);
  Response res;
  res.status = 200;
  res.headers["Content-Type"] = "image/x-portable-pixmap";
  res.headers["X-Original-Size"] =
      std::to_string(src.width) + "x" + std::to_string(src.height);
  res.headers["X-Scaled-Size"] =
      std::to_string(scaled.width) + "x" + std::to_string(scaled.height);
  const std::vector<std::uint8_t> ppm = encode_ppm(scaled);
  res.body.assign(ppm.begin(), ppm.end());
  return res;
}

Response SyntheticHandler::handle(const Request& req) {
  Response res;
  res.status = 200;
  res.body = "classes=" + std::to_string(class_count_) +
             ";echo=" + std::to_string(req.body.size());
  return res;
}

std::shared_ptr<const LazyImage> SharedAssets::image(std::uint32_t width,
                                                     std::uint32_t height,
                                                     std::uint64_t seed) {
  const auto key = std::make_tuple(width, height, seed);
  const std::lock_guard lock{mu_};
  auto it = images_.find(key);
  if (it == images_.end()) {
    it = images_
             .emplace(key, std::make_shared<const LazyImage>(width, height,
                                                             seed))
             .first;
  }
  return it->second;
}

Request sample_request(const std::string& handler_id) {
  Request req;
  req.method = "POST";
  req.path = "/invoke";
  if (handler_id == "markdown") {
    // Stand-in for the OpenPiton README the paper embeds in each request.
    req.headers["Content-Type"] = "text/markdown";
    std::string doc =
        "# OpenPiton Research Platform\n"
        "\n"
        "OpenPiton is the **world's first** open source, general-purpose, "
        "multithreaded manycore processor and framework.\n"
        "\n"
        "## Features\n"
        "\n"
        "- Scales up to *500 million* cores\n"
        "- Based on the industry-hardened OpenSPARC T1 core\n"
        "- Supports [Debian Linux](https://www.debian.org)\n"
        "\n"
        "## Building\n"
        "\n"
        "```bash\n"
        "source piton/piton_settings.bash\n"
        "sims -sys=manycore -vcs_build\n"
        "```\n"
        "\n"
        "> Documentation and tutorials are available on the project site.\n"
        "\n"
        "1. Clone the repository\n"
        "2. Configure the environment\n"
        "3. Run the simulations\n"
        "\n"
        "---\n"
        "\n";
    // Pad to a README-like size with repeated sections.
    std::string body;
    while (body.size() < 24 * 1024) body += doc;
    req.body = std::move(body);
  }
  return req;
}

std::unique_ptr<Handler> make_handler(const std::string& id,
                                      SharedAssets& assets) {
  if (id == "noop") return std::make_unique<NoopHandler>();
  if (id == "markdown") return std::make_unique<MarkdownHandler>();
  if (id == "image-resizer") {
    // The paper's source: 3440x1440 (1 MiB JPEG, ~19 MiB decoded); scaled to
    // 10% per request. Seed fixed so every replica sees identical pixels.
    return std::make_unique<ImageResizerHandler>(
        assets.image(3440, 1440, 0x1113440), 0.10);
  }
  if (id.rfind("synthetic:", 0) == 0) {
    const int classes = std::stoi(id.substr(10));
    return std::make_unique<SyntheticHandler>(classes);
  }
  throw std::invalid_argument{"make_handler: unknown handler id: " + id};
}

}  // namespace prebake::funcs
