#include "funcs/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "sim/rng.hpp"

namespace prebake::funcs {

Image generate_synthetic_image(std::uint32_t width, std::uint32_t height,
                               std::uint64_t seed) {
  if (width == 0 || height == 0)
    throw std::invalid_argument{"generate_synthetic_image: zero dimension"};
  Image img;
  img.width = width;
  img.height = height;
  img.rgba.resize(static_cast<std::size_t>(width) * height * 4);

  sim::Rng rng{seed};
  // A few random "light sources" make the gradients non-trivial.
  struct Blob {
    double x, y, radius, r, g, b;
  };
  std::vector<Blob> blobs;
  for (int i = 0; i < 5; ++i) {
    blobs.push_back(Blob{rng.uniform(0, width), rng.uniform(0, height),
                         rng.uniform(width / 8.0, width / 2.0),
                         rng.uniform(40, 255), rng.uniform(40, 255),
                         rng.uniform(40, 255)});
  }

  std::uint64_t noise_state = seed ^ 0xABCDEF;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      double r = 16, g = 24, b = 40;  // dark base
      for (const Blob& blob : blobs) {
        const double dx = x - blob.x, dy = y - blob.y;
        const double w = std::exp(-(dx * dx + dy * dy) / (2 * blob.radius * blob.radius));
        r += w * blob.r;
        g += w * blob.g;
        b += w * blob.b;
      }
      // High-frequency deterministic noise (+-12).
      const std::uint64_t h = sim::splitmix64(noise_state);
      r += static_cast<double>(h & 0x1F) - 16.0;
      g += static_cast<double>((h >> 5) & 0x1F) - 16.0;
      b += static_cast<double>((h >> 10) & 0x1F) - 16.0;

      std::uint8_t* p = img.pixel(x, y);
      p[0] = static_cast<std::uint8_t>(std::clamp(r, 0.0, 255.0));
      p[1] = static_cast<std::uint8_t>(std::clamp(g, 0.0, 255.0));
      p[2] = static_cast<std::uint8_t>(std::clamp(b, 0.0, 255.0));
      p[3] = 255;
    }
  }
  return img;
}

Image resize_box(const Image& src, double scale) {
  if (!src.valid()) throw std::invalid_argument{"resize_box: invalid image"};
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument{"resize_box: scale must be in (0, 1]"};
  const auto out_w = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(src.width * scale)));
  const auto out_h = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(src.height * scale)));

  Image out;
  out.width = out_w;
  out.height = out_h;
  out.rgba.resize(static_cast<std::size_t>(out_w) * out_h * 4);

  const double x_ratio = static_cast<double>(src.width) / out_w;
  const double y_ratio = static_cast<double>(src.height) / out_h;
  for (std::uint32_t oy = 0; oy < out_h; ++oy) {
    const auto y0 = static_cast<std::uint32_t>(oy * y_ratio);
    const auto y1 = std::min<std::uint32_t>(
        src.height, static_cast<std::uint32_t>(std::ceil((oy + 1) * y_ratio)));
    for (std::uint32_t ox = 0; ox < out_w; ++ox) {
      const auto x0 = static_cast<std::uint32_t>(ox * x_ratio);
      const auto x1 = std::min<std::uint32_t>(
          src.width, static_cast<std::uint32_t>(std::ceil((ox + 1) * x_ratio)));
      std::uint64_t acc[4] = {0, 0, 0, 0};
      std::uint64_t count = 0;
      for (std::uint32_t sy = y0; sy < y1; ++sy) {
        for (std::uint32_t sx = x0; sx < x1; ++sx) {
          const std::uint8_t* p = src.pixel(sx, sy);
          for (int c = 0; c < 4; ++c) acc[c] += p[c];
          ++count;
        }
      }
      std::uint8_t* q = out.pixel(ox, oy);
      for (int c = 0; c < 4; ++c)
        q[c] = count == 0 ? 0 : static_cast<std::uint8_t>(acc[c] / count);
    }
  }
  return out;
}

Image resize_bilinear(const Image& src, std::uint32_t width,
                      std::uint32_t height) {
  if (!src.valid()) throw std::invalid_argument{"resize_bilinear: invalid image"};
  if (width == 0 || height == 0)
    throw std::invalid_argument{"resize_bilinear: zero target dimension"};
  Image out;
  out.width = width;
  out.height = height;
  out.rgba.resize(static_cast<std::size_t>(width) * height * 4);

  const double x_ratio =
      width > 1 ? static_cast<double>(src.width - 1) / (width - 1) : 0.0;
  const double y_ratio =
      height > 1 ? static_cast<double>(src.height - 1) / (height - 1) : 0.0;
  for (std::uint32_t oy = 0; oy < height; ++oy) {
    const double fy = oy * y_ratio;
    const auto y0 = static_cast<std::uint32_t>(fy);
    const std::uint32_t y1 = std::min(y0 + 1, src.height - 1);
    const double wy = fy - y0;
    for (std::uint32_t ox = 0; ox < width; ++ox) {
      const double fx = ox * x_ratio;
      const auto x0 = static_cast<std::uint32_t>(fx);
      const std::uint32_t x1 = std::min(x0 + 1, src.width - 1);
      const double wx = fx - x0;
      const std::uint8_t* p00 = src.pixel(x0, y0);
      const std::uint8_t* p10 = src.pixel(x1, y0);
      const std::uint8_t* p01 = src.pixel(x0, y1);
      const std::uint8_t* p11 = src.pixel(x1, y1);
      std::uint8_t* q = out.pixel(ox, oy);
      for (int c = 0; c < 4; ++c) {
        const double top = p00[c] * (1 - wx) + p10[c] * wx;
        const double bot = p01[c] * (1 - wx) + p11[c] * wx;
        q[c] = static_cast<std::uint8_t>(std::lround(top * (1 - wy) + bot * wy));
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_ppm(const Image& img) {
  if (!img.valid()) throw std::invalid_argument{"encode_ppm: invalid image"};
  char header[64];
  const int header_len =
      std::snprintf(header, sizeof header, "P6\n%u %u\n255\n", img.width, img.height);
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(header_len) +
              static_cast<std::size_t>(img.width) * img.height * 3);
  out.insert(out.end(), header, header + header_len);
  for (std::uint32_t y = 0; y < img.height; ++y)
    for (std::uint32_t x = 0; x < img.width; ++x) {
      const std::uint8_t* p = img.pixel(x, y);
      out.push_back(p[0]);
      out.push_back(p[1]);
      out.push_back(p[2]);
    }
  return out;
}

Image decode_ppm(const std::vector<std::uint8_t>& bytes) {
  unsigned width = 0, height = 0, maxval = 0;
  int consumed = 0;
  const auto* text = reinterpret_cast<const char*>(bytes.data());
  // Bound the header scan; encode_ppm writes a short header.
  char head[64] = {};
  std::memcpy(head, text, std::min<std::size_t>(bytes.size(), 63));
  if (std::sscanf(head, "P6\n%u %u\n%u\n%n", &width, &height, &maxval, &consumed) != 3 ||
      maxval != 255)
    throw std::invalid_argument{"decode_ppm: bad header"};
  const std::size_t need = static_cast<std::size_t>(consumed) +
                           static_cast<std::size_t>(width) * height * 3;
  if (bytes.size() < need) throw std::invalid_argument{"decode_ppm: truncated"};
  Image img;
  img.width = width;
  img.height = height;
  img.rgba.resize(static_cast<std::size_t>(width) * height * 4);
  const std::uint8_t* src = bytes.data() + consumed;
  for (std::uint32_t y = 0; y < height; ++y)
    for (std::uint32_t x = 0; x < width; ++x) {
      std::uint8_t* p = img.pixel(x, y);
      p[0] = *src++;
      p[1] = *src++;
      p[2] = *src++;
      p[3] = 255;
    }
  return img;
}

const Image& LazyImage::get() const {
  std::call_once(once_, [this] {
    image_.emplace(generate_synthetic_image(width_, height_, seed_));
  });
  return *image_;
}

}  // namespace prebake::funcs
