// HTTP/1.1 wire codec.
//
// The platform's Gateway and Watchdog speak HTTP to function replicas (as in
// OpenFaaS and the commercial FaaS offerings the paper lists); this codec
// serializes the Request/Response model to real HTTP/1.1 bytes and parses
// them back, so transport framing is testable and byte counts feeding the
// network cost model are exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "funcs/http.hpp"

namespace prebake::funcs {

// Serialize to HTTP/1.1 wire format. A Content-Length header is always
// emitted (replacing any caller-provided one).
std::string encode_request(const Request& req);
std::string encode_response(const Response& res);

struct ParseError {
  std::string message;
  std::size_t offset = 0;  // byte offset where parsing failed
};

// Parse a complete message from `wire`. Returns the message and sets
// `consumed` to the bytes used (callers may pipeline). On failure returns
// nullopt and fills `error` if provided.
std::optional<Request> decode_request(const std::string& wire,
                                      std::size_t* consumed = nullptr,
                                      ParseError* error = nullptr);
std::optional<Response> decode_response(const std::string& wire,
                                        std::size_t* consumed = nullptr,
                                        ParseError* error = nullptr);

// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* reason_phrase(int status);

}  // namespace prebake::funcs
