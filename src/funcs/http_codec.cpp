#include "funcs/http_codec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace prebake::funcs {

namespace {

constexpr std::string_view kCrlf = "\r\n";

void fail(ParseError* error, std::string message, std::size_t offset) {
  if (error != nullptr) *error = ParseError{std::move(message), offset};
}

bool is_token_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) ||
         std::string_view{"!#$%&'*+-.^_`|~"}.find(c) != std::string_view::npos;
}

std::string trim_ows(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string{s.substr(b, e - b)};
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// Shared header+body machinery after the start line. Returns false on error.
bool parse_headers_and_body(const std::string& wire, std::size_t pos,
                            std::map<std::string, std::string>& headers,
                            std::string& body, std::size_t* consumed,
                            ParseError* error) {
  // Headers until the blank line.
  std::optional<std::size_t> content_length;
  while (true) {
    const std::size_t eol = wire.find(kCrlf, pos);
    if (eol == std::string::npos) {
      fail(error, "unterminated header line", pos);
      return false;
    }
    if (eol == pos) {  // blank line: end of headers
      pos += kCrlf.size();
      break;
    }
    const std::size_t colon = wire.find(':', pos);
    if (colon == std::string::npos || colon > eol) {
      fail(error, "header line without colon", pos);
      return false;
    }
    const std::string name{wire.substr(pos, colon - pos)};
    if (name.empty() || !std::all_of(name.begin(), name.end(), is_token_char)) {
      fail(error, "invalid header name", pos);
      return false;
    }
    const std::string value =
        trim_ows(std::string_view{wire}.substr(colon + 1, eol - colon - 1));
    headers[name] = value;
    if (lower(name) == "content-length") {
      std::size_t len = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), len);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        fail(error, "bad Content-Length", pos);
        return false;
      }
      content_length = len;
    }
    pos = eol + kCrlf.size();
  }

  const std::size_t body_len = content_length.value_or(0);
  if (wire.size() - pos < body_len) {
    fail(error, "truncated body", pos);
    return false;
  }
  body = wire.substr(pos, body_len);
  if (consumed != nullptr) *consumed = pos + body_len;
  return true;
}

void emit_headers_and_body(std::ostringstream& out,
                           const std::map<std::string, std::string>& headers,
                           const std::string& body) {
  for (const auto& [name, value] : headers) {
    if (lower(name) == "content-length") continue;  // we own this one
    out << name << ": " << value << kCrlf;
  }
  out << "Content-Length: " << body.size() << kCrlf << kCrlf << body;
}

}  // namespace

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string encode_request(const Request& req) {
  std::ostringstream out;
  out << req.method << ' ' << (req.path.empty() ? "/" : req.path)
      << " HTTP/1.1" << kCrlf;
  emit_headers_and_body(out, req.headers, req.body);
  return out.str();
}

std::string encode_response(const Response& res) {
  std::ostringstream out;
  out << "HTTP/1.1 " << res.status << ' ' << reason_phrase(res.status) << kCrlf;
  emit_headers_and_body(out, res.headers, res.body);
  return out.str();
}

std::optional<Request> decode_request(const std::string& wire,
                                      std::size_t* consumed,
                                      ParseError* error) {
  const std::size_t eol = wire.find(kCrlf);
  if (eol == std::string::npos) {
    fail(error, "unterminated request line", 0);
    return std::nullopt;
  }
  const std::string_view line{wire.data(), eol};
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail(error, "malformed request line", 0);
    return std::nullopt;
  }
  Request req;
  req.method = std::string{line.substr(0, sp1)};
  req.path = std::string{line.substr(sp1 + 1, sp2 - sp1 - 1)};
  const std::string_view version = line.substr(sp2 + 1);
  if (req.method.empty() ||
      !std::all_of(req.method.begin(), req.method.end(), is_token_char)) {
    fail(error, "invalid method", 0);
    return std::nullopt;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail(error, "unsupported HTTP version", sp2 + 1);
    return std::nullopt;
  }
  if (!parse_headers_and_body(wire, eol + kCrlf.size(), req.headers, req.body,
                              consumed, error))
    return std::nullopt;
  return req;
}

std::optional<Response> decode_response(const std::string& wire,
                                        std::size_t* consumed,
                                        ParseError* error) {
  const std::size_t eol = wire.find(kCrlf);
  if (eol == std::string::npos) {
    fail(error, "unterminated status line", 0);
    return std::nullopt;
  }
  const std::string_view line{wire.data(), eol};
  if (line.rfind("HTTP/1.", 0) != 0) {
    fail(error, "missing HTTP version", 0);
    return std::nullopt;
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
    fail(error, "malformed status line", 0);
    return std::nullopt;
  }
  Response res;
  const std::string_view code = line.substr(sp1 + 1, 3);
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), res.status);
  if (ec != std::errc{} || ptr != code.data() + code.size() ||
      res.status < 100 || res.status > 599) {
    fail(error, "bad status code", sp1 + 1);
    return std::nullopt;
  }
  if (!parse_headers_and_body(wire, eol + kCrlf.size(), res.headers, res.body,
                              consumed, error))
    return std::nullopt;
  return res;
}

}  // namespace prebake::funcs
