// Minimal HTTP request/response model.
//
// The paper's functions sit behind an HTTP server inside each replica (as in
// AWS Lambda / OpenWhisk); requests and responses here carry real payloads so
// handler correctness is testable, while transport timing is charged by the
// platform model.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace prebake::funcs {

struct Request {
  std::string method = "POST";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  std::string body;
};

struct Response {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }
};

}  // namespace prebake::funcs
