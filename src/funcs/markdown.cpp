#include "funcs/markdown.hpp"

#include <cctype>
#include <sstream>
#include <vector>

namespace prebake::funcs {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

// Render inline spans: code, bold, italic, links. Escapes everything else.
std::string render_inline(const std::string& text) {
  std::string out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (text[i] == '`') {
      const std::size_t end = text.find('`', i + 1);
      if (end != std::string::npos) {
        out += "<code>" + html_escape(text.substr(i + 1, end - i - 1)) + "</code>";
        i = end + 1;
        continue;
      }
    }
    if (i + 1 < n && text[i] == '*' && text[i + 1] == '*') {
      std::size_t end = text.find("**", i + 2);
      // "**bold *inner***": prefer the final pair of a "***" run so the
      // stray single star stays inside and closes the inner emphasis.
      while (end != std::string::npos && end + 2 < n && text[end + 2] == '*')
        ++end;
      if (end != std::string::npos) {
        out += "<strong>" + render_inline(text.substr(i + 2, end - i - 2)) +
               "</strong>";
        i = end + 2;
        continue;
      }
    }
    if (text[i] == '*') {
      const std::size_t end = text.find('*', i + 1);
      if (end != std::string::npos && end > i + 1) {
        out += "<em>" + render_inline(text.substr(i + 1, end - i - 1)) + "</em>";
        i = end + 1;
        continue;
      }
    }
    if (text[i] == '[') {
      const std::size_t close = text.find(']', i + 1);
      if (close != std::string::npos && close + 1 < n && text[close + 1] == '(') {
        const std::size_t paren = text.find(')', close + 2);
        if (paren != std::string::npos) {
          const std::string label = text.substr(i + 1, close - i - 1);
          const std::string url = text.substr(close + 2, paren - close - 2);
          out += "<a href=\"" + html_escape(url) + "\">" + render_inline(label) +
                 "</a>";
          i = paren + 1;
          continue;
        }
      }
    }
    switch (text[i]) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += text[i];
    }
    ++i;
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      if (!current.empty() && current.back() == '\r') current.pop_back();
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

bool is_blank(const std::string& line) {
  for (char c : line)
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  return true;
}

bool is_hr(const std::string& line) {
  int dashes = 0;
  for (char c : line) {
    if (c == '-') ++dashes;
    else if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return dashes >= 3;
}

int heading_level(const std::string& line) {
  int level = 0;
  while (level < static_cast<int>(line.size()) && line[level] == '#' && level < 6)
    ++level;
  if (level == 0) return 0;
  if (level >= static_cast<int>(line.size()) || line[level] != ' ') return 0;
  return level;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_unordered_item(const std::string& line) {
  const std::string t = trim(line);
  return t.size() >= 2 && (t[0] == '-' || t[0] == '*') && t[1] == ' ';
}

bool is_ordered_item(const std::string& line) {
  const std::string t = trim(line);
  std::size_t i = 0;
  while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) ++i;
  return i > 0 && i + 1 < t.size() && t[i] == '.' && t[i + 1] == ' ';
}

std::string item_text(const std::string& line) {
  const std::string t = trim(line);
  if (is_unordered_item(line)) return trim(t.substr(2));
  const std::size_t dot = t.find('.');
  return trim(t.substr(dot + 2));
}

}  // namespace

std::string render_markdown(const std::string& markdown) {
  const std::vector<std::string> lines = split_lines(markdown);
  std::ostringstream html;
  std::size_t i = 0;
  const std::size_t n = lines.size();

  while (i < n) {
    const std::string& line = lines[i];

    if (is_blank(line)) {
      ++i;
      continue;
    }

    // Fenced code block.
    if (line.rfind("```", 0) == 0) {
      const std::string lang = trim(line.substr(3));
      html << "<pre><code";
      if (!lang.empty()) html << " class=\"language-" << html_escape(lang) << "\"";
      html << ">";
      ++i;
      while (i < n && lines[i].rfind("```", 0) != 0) {
        html << html_escape(lines[i]) << "\n";
        ++i;
      }
      if (i < n) ++i;  // closing fence
      html << "</code></pre>\n";
      continue;
    }

    if (const int level = heading_level(line); level > 0) {
      const std::string text = trim(line.substr(static_cast<std::size_t>(level)));
      html << "<h" << level << ">" << render_inline(text) << "</h" << level
           << ">\n";
      ++i;
      continue;
    }

    if (is_hr(line)) {
      html << "<hr/>\n";
      ++i;
      continue;
    }

    if (line.rfind("> ", 0) == 0 || line == ">") {
      html << "<blockquote>\n";
      std::string quoted;
      while (i < n && (lines[i].rfind("> ", 0) == 0 || lines[i] == ">")) {
        quoted += lines[i].size() > 2 ? lines[i].substr(2) : "";
        quoted += "\n";
        ++i;
      }
      html << render_markdown(quoted);  // nested structure inside the quote
      html << "</blockquote>\n";
      continue;
    }

    if (is_unordered_item(line)) {
      html << "<ul>\n";
      while (i < n && is_unordered_item(lines[i])) {
        html << "<li>" << render_inline(item_text(lines[i])) << "</li>\n";
        ++i;
      }
      html << "</ul>\n";
      continue;
    }

    if (is_ordered_item(line)) {
      html << "<ol>\n";
      while (i < n && is_ordered_item(lines[i])) {
        html << "<li>" << render_inline(item_text(lines[i])) << "</li>\n";
        ++i;
      }
      html << "</ol>\n";
      continue;
    }

    // Paragraph: gather until a blank line or a structural line.
    std::string para = line;
    ++i;
    while (i < n && !is_blank(lines[i]) && heading_level(lines[i]) == 0 &&
           !is_hr(lines[i]) && lines[i].rfind("```", 0) != 0 &&
           !is_unordered_item(lines[i]) && !is_ordered_item(lines[i]) &&
           lines[i].rfind("> ", 0) != 0) {
      para += " " + lines[i];
      ++i;
    }
    html << "<p>" << render_inline(para) << "</p>\n";
  }

  return html.str();
}

}  // namespace prebake::funcs
