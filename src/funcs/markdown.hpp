// Markdown to HTML renderer — the real logic behind the paper's "Markdown
// Render" function (which converts a markdown document embedded in the
// request body into an HTML page).
//
// Supported: ATX headings, paragraphs, fenced code blocks, unordered and
// ordered lists, blockquotes, horizontal rules, and inline emphasis
// (**bold**, *italic*), inline code, and [text](url) links. All text is
// HTML-escaped.
#pragma once

#include <string>

namespace prebake::funcs {

std::string render_markdown(const std::string& markdown);

// Escape <, >, &, " for safe HTML embedding.
std::string html_escape(const std::string& text);

}  // namespace prebake::funcs
