// The paper's evaluated functions as real request handlers.
//
// A Handler is the business logic living inside one function replica; the
// runtime model charges the *time* while these produce the actual *bytes*,
// so Figure 7's "service distributions coincide" claim can also be checked
// for output equality between Vanilla-started and prebaked replicas.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "funcs/http.hpp"
#include "funcs/image.hpp"

namespace prebake::funcs {

class Handler {
 public:
  virtual ~Handler() = default;
  virtual Response handle(const Request& req) = 0;
};

// i) "do-nothing": acks every request.
class NoopHandler final : public Handler {
 public:
  Response handle(const Request& req) override;
};

// iii) Markdown Render: request body is markdown, response body is HTML.
class MarkdownHandler final : public Handler {
 public:
  Response handle(const Request& req) override;
};

// ii) Image Resizer: holds a decoded source image (loaded at APPINIT in the
// paper) and scales it down to `scale` of the original per request. The
// source pixels materialize on the first request, not at construction, so
// start-up-only experiments never pay for synthesizing them.
class ImageResizerHandler final : public Handler {
 public:
  ImageResizerHandler(std::shared_ptr<const LazyImage> source, double scale);
  Response handle(const Request& req) override;

 private:
  std::shared_ptr<const LazyImage> source_;
  double scale_;
};

// Synthetic function of a configurable "code size" (Section 4.2.2): echoes a
// fingerprint of its configured class count so invocations are observable.
class SyntheticHandler final : public Handler {
 public:
  explicit SyntheticHandler(int class_count) : class_count_{class_count} {}
  Response handle(const Request& req) override;

 private:
  int class_count_;
};

// Process-wide immutable assets shared between replicas of the same function
// (the decoded source image is identical for every Image Resizer replica, so
// regenerating the synthetic pixels per replica would only waste host time).
// Thread-safe: the parallel scenario engine shares one instance across all
// shard testbeds. Images are handed out as lazy handles — synthesis happens
// at most once per (width, height, seed), on the first pixel access, inside
// LazyImage::get().
class SharedAssets {
 public:
  std::shared_ptr<const LazyImage> image(std::uint32_t width,
                                         std::uint32_t height,
                                         std::uint64_t seed);

 private:
  std::mutex mu_;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>,
           std::shared_ptr<const LazyImage>>
      images_;
};

// Factory keyed by the handler ids used in function specs:
//   "noop" | "markdown" | "image-resizer" | "synthetic:<classes>"
std::unique_ptr<Handler> make_handler(const std::string& id, SharedAssets& assets);

// A representative request for a handler (the paper embeds a markdown
// document in each Markdown Render request; other functions take empty
// bodies). Used by load generators and by warm-up before snapshotting.
Request sample_request(const std::string& handler_id);

}  // namespace prebake::funcs
