// Raster image support for the paper's "Image Resizer" function.
//
// The paper's function loads a 1 MiB, 3440x1440 JPEG at start-up and scales
// it down to 10% per request. We have no JPEG codec (and no network to fetch
// the original), so the resizer operates on a deterministic synthetic image
// of the same dimensions; the resize math (box filter / bilinear) is real.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace prebake::funcs {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgba;  // width * height * 4

  bool valid() const {
    return rgba.size() == static_cast<std::size_t>(width) * height * 4;
  }
  std::uint8_t* pixel(std::uint32_t x, std::uint32_t y) {
    return rgba.data() + (static_cast<std::size_t>(y) * width + x) * 4;
  }
  const std::uint8_t* pixel(std::uint32_t x, std::uint32_t y) const {
    return rgba.data() + (static_cast<std::size_t>(y) * width + x) * 4;
  }
};

// Deterministic synthetic photo-like content: smooth gradients plus seeded
// high-frequency detail (so downscaling actually averages something).
Image generate_synthetic_image(std::uint32_t width, std::uint32_t height,
                               std::uint64_t seed);

// A synthetic source image materialized on first pixel access. Start-up
// experiments construct (and checkpoint) resizer replicas without reading a
// single pixel — only a served request does — so synthesis is deferred to
// the first get(). The image content is a pure function of the constructor
// arguments, so when materialization happens never affects the pixels.
class LazyImage {
 public:
  LazyImage(std::uint32_t width, std::uint32_t height, std::uint64_t seed)
      : width_{width}, height_{height}, seed_{seed} {}

  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }

  // Thread-safe: concurrent first calls synthesize exactly once.
  const Image& get() const;

 private:
  std::uint32_t width_;
  std::uint32_t height_;
  std::uint64_t seed_;
  mutable std::once_flag once_;
  mutable std::optional<Image> image_;
};

// Box-filter downscale by an integer-free ratio: each output pixel averages
// the covered source rectangle. Requires 0 < scale <= 1.
Image resize_box(const Image& src, double scale);

// Bilinear resample to an explicit target size.
Image resize_bilinear(const Image& src, std::uint32_t width,
                      std::uint32_t height);

// Binary PPM (P6) encoding (alpha dropped) for writing inspectable output.
std::vector<std::uint8_t> encode_ppm(const Image& img);
// Decode a P6 PPM produced by encode_ppm (alpha restored as 255).
Image decode_ppm(const std::vector<std::uint8_t>& bytes);

}  // namespace prebake::funcs
