// Raster image support for the paper's "Image Resizer" function.
//
// The paper's function loads a 1 MiB, 3440x1440 JPEG at start-up and scales
// it down to 10% per request. We have no JPEG codec (and no network to fetch
// the original), so the resizer operates on a deterministic synthetic image
// of the same dimensions; the resize math (box filter / bilinear) is real.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prebake::funcs {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgba;  // width * height * 4

  bool valid() const {
    return rgba.size() == static_cast<std::size_t>(width) * height * 4;
  }
  std::uint8_t* pixel(std::uint32_t x, std::uint32_t y) {
    return rgba.data() + (static_cast<std::size_t>(y) * width + x) * 4;
  }
  const std::uint8_t* pixel(std::uint32_t x, std::uint32_t y) const {
    return rgba.data() + (static_cast<std::size_t>(y) * width + x) * 4;
  }
};

// Deterministic synthetic photo-like content: smooth gradients plus seeded
// high-frequency detail (so downscaling actually averages something).
Image generate_synthetic_image(std::uint32_t width, std::uint32_t height,
                               std::uint64_t seed);

// Box-filter downscale by an integer-free ratio: each output pixel averages
// the covered source rectangle. Requires 0 < scale <= 1.
Image resize_box(const Image& src, double scale);

// Bilinear resample to an explicit target size.
Image resize_bilinear(const Image& src, std::uint32_t width,
                      std::uint32_t height);

// Binary PPM (P6) encoding (alpha dropped) for writing inspectable output.
std::vector<std::uint8_t> encode_ppm(const Image& img);
// Decode a P6 PPM produced by encode_ppm (alpha restored as 255).
Image decode_ppm(const std::vector<std::uint8_t>& bytes);

}  // namespace prebake::funcs
