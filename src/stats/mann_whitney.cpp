#include "stats/mann_whitney.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/normal.hpp"

namespace prebake::stats {

MannWhitneyResult mann_whitney_u(std::span<const double> xs,
                                 std::span<const double> ys) {
  const std::size_t n1 = xs.size(), n2 = ys.size();
  if (n1 == 0 || n2 == 0)
    throw std::invalid_argument{"mann_whitney_u: empty sample"};

  struct Tagged {
    double v;
    bool from_x;
  };
  std::vector<Tagged> all;
  all.reserve(n1 + n2);
  for (double v : xs) all.push_back({v, true});
  for (double v : ys) all.push_back({v, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.v < b.v; });

  // Average ranks with tie bookkeeping.
  const std::size_t n = all.size();
  std::vector<double> rank(n);
  double tie_correction = 0.0;  // sum over tie groups of (t^3 - t)
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && all[j + 1].v == all[i].v) ++j;
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) rank[k] = avg_rank;
    const auto t = static_cast<double>(j - i + 1);
    if (t > 1) tie_correction += t * t * t - t;
    i = j + 1;
  }

  double r1 = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    if (all[k].from_x) r1 += rank[k];

  const auto dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  const double u1 = r1 - dn1 * (dn1 + 1.0) / 2.0;

  const double mu = dn1 * dn2 / 2.0;
  const double dn = dn1 + dn2;
  const double sigma2 =
      dn1 * dn2 / 12.0 * (dn + 1.0 - tie_correction / (dn * (dn - 1.0)));

  MannWhitneyResult res;
  res.u = u1;
  if (sigma2 <= 0.0) {
    // All observations tied: no evidence against H0.
    res.z = 0.0;
    res.p_value = 1.0;
    return res;
  }
  // Continuity correction of 0.5 toward the mean.
  const double diff = u1 - mu;
  const double cc = diff > 0 ? -0.5 : (diff < 0 ? 0.5 : 0.0);
  res.z = (diff + cc) / std::sqrt(sigma2);
  res.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(res.z)));
  res.p_value = std::min(res.p_value, 1.0);
  return res;
}

ShiftEstimate hodges_lehmann_shift(std::span<const double> xs,
                                   std::span<const double> ys,
                                   double confidence) {
  const std::size_t n1 = xs.size(), n2 = ys.size();
  if (n1 == 0 || n2 == 0)
    throw std::invalid_argument{"hodges_lehmann_shift: empty sample"};
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument{"hodges_lehmann_shift: confidence outside (0,1)"};

  std::vector<double> diffs;
  diffs.reserve(n1 * n2);
  for (double x : xs)
    for (double y : ys) diffs.push_back(x - y);
  std::sort(diffs.begin(), diffs.end());

  const std::size_t m = diffs.size();
  ShiftEstimate est;
  est.point = (m % 2 == 1)
                  ? diffs[m / 2]
                  : 0.5 * (diffs[m / 2 - 1] + diffs[m / 2]);

  // Moses' distribution-free CI: pick the k-th smallest and k-th largest
  // pairwise difference where k comes from the normal approximation of the
  // Mann-Whitney count distribution.
  const auto dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  const double zc = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
  const double mu = dn1 * dn2 / 2.0;
  const double sd = std::sqrt(dn1 * dn2 * (dn1 + dn2 + 1.0) / 12.0);
  auto k = static_cast<std::ptrdiff_t>(std::floor(mu - zc * sd));
  k = std::max<std::ptrdiff_t>(k, 0);
  const auto kmax = static_cast<std::ptrdiff_t>(m) - 1;
  est.lo = diffs[static_cast<std::size_t>(std::min(k, kmax))];
  est.hi = diffs[static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(kmax - k, 0))];
  return est;
}

}  // namespace prebake::stats
