// Empirical cumulative distribution functions (Figure 7 of the paper) and the
// Kolmogorov-Smirnov distance used to check that the Vanilla and Prebaking
// service-time distributions coincide.
#pragma once

#include <span>
#include <vector>

namespace prebake::stats {

class Ecdf {
 public:
  explicit Ecdf(std::span<const double> sample);

  // F(x): fraction of the sample <= x.
  double operator()(double x) const;
  // Generalized inverse: smallest sample value v with F(v) >= q, q in (0, 1].
  double quantile(double q) const;

  std::size_t size() const { return xs_.size(); }
  const std::vector<double>& support() const { return xs_; }

 private:
  std::vector<double> xs_;  // sorted
};

// Two-sample Kolmogorov-Smirnov statistic sup_x |F1(x) - F2(x)|.
double ks_distance(const Ecdf& a, const Ecdf& b);

struct KsTestResult {
  double d = 0.0;
  double p_value = 1.0;  // asymptotic Kolmogorov distribution
};

// Two-sample KS test with the asymptotic p-value (adequate for n = 200).
KsTestResult ks_test(std::span<const double> xs, std::span<const double> ys);

}  // namespace prebake::stats
