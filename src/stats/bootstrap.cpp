#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"

namespace prebake::stats {

namespace {

// Chunk of resamples handled by one RNG stream. Fixed so the stream layout —
// and therefore the interval — depends only on the resample count.
constexpr int kChunk = 256;

void check_args(std::span<const double> sample, int resamples,
                double confidence) {
  if (sample.empty()) throw std::invalid_argument{"bootstrap_ci: empty sample"};
  if (resamples < 2) throw std::invalid_argument{"bootstrap_ci: resamples < 2"};
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument{"bootstrap_ci: confidence outside (0,1)"};
}

// Fill `stats[b]` for every resample b; `stat_of` may reorder the scratch
// buffer it is handed (it is refilled before each use).
template <typename StatOf>
void run_resamples(std::span<const double> sample, int resamples,
                   std::uint64_t seed, int threads, std::vector<double>& stats,
                   const StatOf& stat_of) {
  const std::size_t n = sample.size();
  const std::size_t n_chunks =
      (static_cast<std::size_t>(resamples) + kChunk - 1) / kChunk;
  util::parallel_for(
      n_chunks,
      [&](std::size_t chunk) {
        sim::Rng rng{sim::splitmix64(seed, chunk)};
        std::vector<double> resample(n);
        const int begin = static_cast<int>(chunk) * kChunk;
        const int end = std::min(begin + kChunk, resamples);
        for (int b = begin; b < end; ++b) {
          for (std::size_t i = 0; i < n; ++i)
            resample[i] = sample[rng.next_below(n)];
          stats[static_cast<std::size_t>(b)] = stat_of(resample);
        }
      },
      threads);
}

Interval percentile_interval(std::span<const double> stats, double confidence,
                             double point) {
  const double alpha = 1.0 - confidence;
  Interval iv;
  iv.lo = percentile(stats, alpha / 2.0);
  iv.hi = percentile(stats, 1.0 - alpha / 2.0);
  iv.point = point;
  return iv;
}

// Median of a scratch buffer via selection instead of a full sort; exactly
// matches percentile(v, 0.5)'s type-7 arithmetic (midpoint of the two
// middle order statistics for even n).
double median_inplace(std::vector<double>& v) {
  const std::size_t n = v.size();
  if (n == 1) return v.front();
  const std::size_t hi = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(hi),
                   v.end());
  if (n % 2 == 1) return v[hi];
  const double vhi = v[hi];
  const double vlo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(hi));
  return vlo + 0.5 * (vhi - vlo);
}

}  // namespace

Interval bootstrap_ci(std::span<const double> sample, const Statistic& stat,
                      double confidence, int resamples, std::uint64_t seed,
                      int threads) {
  check_args(sample, resamples, confidence);
  std::vector<double> stats(static_cast<std::size_t>(resamples));
  run_resamples(sample, resamples, seed, threads, stats,
                [&](std::vector<double>& resample) {
                  return stat(std::span<const double>{resample});
                });
  return percentile_interval(stats, confidence, stat(sample));
}

Interval bootstrap_median_ci(std::span<const double> sample, double confidence,
                             int resamples, std::uint64_t seed, int threads) {
  check_args(sample, resamples, confidence);
  std::vector<double> stats(static_cast<std::size_t>(resamples));
  run_resamples(
      sample, resamples, seed, threads, stats,
      [](std::vector<double>& resample) { return median_inplace(resample); });
  return percentile_interval(stats, confidence, median(sample));
}

}  // namespace prebake::stats
