#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "stats/descriptive.hpp"

namespace prebake::stats {

Interval bootstrap_ci(std::span<const double> sample, const Statistic& stat,
                      double confidence, int resamples, std::uint64_t seed) {
  if (sample.empty()) throw std::invalid_argument{"bootstrap_ci: empty sample"};
  if (resamples < 2) throw std::invalid_argument{"bootstrap_ci: resamples < 2"};
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument{"bootstrap_ci: confidence outside (0,1)"};

  sim::Rng rng{seed};
  const std::size_t n = sample.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      resample[i] = sample[idx];
    }
    stats.push_back(stat(resample));
  }

  const double alpha = 1.0 - confidence;
  Interval iv;
  iv.lo = percentile(stats, alpha / 2.0);
  iv.hi = percentile(stats, 1.0 - alpha / 2.0);
  iv.point = stat(sample);
  return iv;
}

Interval bootstrap_median_ci(std::span<const double> sample, double confidence,
                             int resamples, std::uint64_t seed) {
  return bootstrap_ci(
      sample, [](std::span<const double> xs) { return median(xs); },
      confidence, resamples, seed);
}

}  // namespace prebake::stats
