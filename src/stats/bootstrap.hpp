// Bootstrap confidence intervals.
//
// Figures 3 and 5 and Table 1 of the paper report 95% confidence intervals
// for the median computed via the bootstrap (Efron & Tibshirani [6]); this is
// the same percentile-bootstrap procedure, made deterministic by seeding.
//
// Resamples are drawn in fixed-size chunks, each from its own RNG stream
// Rng{splitmix64(seed, chunk)}; chunks may run on worker threads but the
// chunk layout depends only on `resamples`, so the interval is bit-identical
// for every `threads` value (including 1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace prebake::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // statistic on the original sample
  double width() const { return hi - lo; }
  bool contains(double v) const { return lo <= v && v <= hi; }
  bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
};

using Statistic = std::function<double(std::span<const double>)>;

// Percentile bootstrap CI for an arbitrary statistic. `threads` = 0 uses the
// process default (PREBAKE_THREADS env var, else hardware concurrency);
// 1 runs inline; the result does not depend on the value.
Interval bootstrap_ci(std::span<const double> sample, const Statistic& stat,
                      double confidence = 0.95, int resamples = 2000,
                      std::uint64_t seed = 0x9b0074bead5ULL, int threads = 0);

// Convenience: CI for the median (the paper's error bars). Bit-identical to
// bootstrap_ci with a median statistic, but selects the median with
// std::nth_element instead of fully sorting each resample.
Interval bootstrap_median_ci(std::span<const double> sample,
                             double confidence = 0.95, int resamples = 2000,
                             std::uint64_t seed = 0x9b0074bead5ULL,
                             int threads = 0);

}  // namespace prebake::stats
