#include "stats/factorial.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace prebake::stats {

Factorial2x2 factorial_2x2(std::span<const double> y00,
                           std::span<const double> y10,
                           std::span<const double> y01,
                           std::span<const double> y11) {
  for (const auto& cell : {y00, y10, y01, y11})
    if (cell.empty())
      throw std::invalid_argument{"factorial_2x2: empty cell"};

  const double m00 = mean(y00), m10 = mean(y10), m01 = mean(y01),
               m11 = mean(y11);

  Factorial2x2 out;
  out.q0 = (m00 + m10 + m01 + m11) / 4.0;
  out.qa = (-m00 + m10 - m01 + m11) / 4.0;
  out.qb = (-m00 - m10 + m01 + m11) / 4.0;
  out.qab = (m00 - m10 - m01 + m11) / 4.0;

  // Allocation of variation. With unequal replication we weight each cell's
  // contribution by its own r (the equal-r formulas fall out as a special
  // case: SSA = 4 r qa^2, etc.).
  auto sse_of = [](std::span<const double> cell, double cell_mean) {
    double s = 0;
    for (double y : cell) s += (y - cell_mean) * (y - cell_mean);
    return s;
  };
  const double sse = sse_of(y00, m00) + sse_of(y10, m10) + sse_of(y01, m01) +
                     sse_of(y11, m11);

  const double r_avg = static_cast<double>(y00.size() + y10.size() +
                                           y01.size() + y11.size()) /
                       4.0;
  const double ssa = 4.0 * r_avg * out.qa * out.qa;
  const double ssb = 4.0 * r_avg * out.qb * out.qb;
  const double ssab = 4.0 * r_avg * out.qab * out.qab;
  const double sst = ssa + ssb + ssab + sse;

  if (sst > 0.0) {
    out.frac_a = ssa / sst;
    out.frac_b = ssb / sst;
    out.frac_ab = ssab / sst;
    out.frac_error = sse / sst;
  }
  return out;
}

}  // namespace prebake::stats
