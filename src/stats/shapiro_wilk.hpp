// Shapiro-Wilk normality test (Royston's AS R94 approximation).
//
// The paper (Section 4.2) applies Shapiro-Wilk to its start-up samples; some
// fail normality, which motivates the non-parametric Wilcoxon-Mann-Whitney
// comparison. Valid for 3 <= n <= 5000.
#pragma once

#include <span>

namespace prebake::stats {

struct ShapiroWilkResult {
  double w = 0.0;        // W statistic in (0, 1]; near 1 means "normal-looking"
  double p_value = 1.0;  // probability of a W this small under normality
};

ShapiroWilkResult shapiro_wilk(std::span<const double> sample);

}  // namespace prebake::stats
