// Standard normal CDF and quantile function.
#pragma once

namespace prebake::stats {

// Phi(z): standard normal cumulative distribution function.
double normal_cdf(double z);

// Phi^{-1}(p): standard normal quantile (Acklam's rational approximation,
// refined with one Halley step; |relative error| < 1e-9 over (0, 1)).
double normal_quantile(double p);

}  // namespace prebake::stats
