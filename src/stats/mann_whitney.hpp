// Wilcoxon-Mann-Whitney rank-sum test and the Hodges-Lehmann estimate of the
// median difference, as used in Section 4.2 of the paper to compare Vanilla
// and Prebaking start-up samples (e.g. the NOOP median difference CI of
// [40.35, 42.29] ms).
#pragma once

#include <span>

namespace prebake::stats {

struct MannWhitneyResult {
  double u = 0.0;        // U statistic for the first sample
  double z = 0.0;        // normal approximation with tie correction
  double p_value = 1.0;  // two-sided
};

// Two-sided test of H0: P(X > Y) == P(Y > X). Uses the normal approximation
// with average ranks and tie correction (appropriate for the paper's
// n = 200 per group).
MannWhitneyResult mann_whitney_u(std::span<const double> xs,
                                 std::span<const double> ys);

struct ShiftEstimate {
  double point = 0.0;  // Hodges-Lehmann: median of all pairwise differences
  double lo = 0.0;     // confidence interval bounds
  double hi = 0.0;
};

// Hodges-Lehmann shift estimate for xs - ys with a distribution-free CI based
// on order statistics of the pairwise differences (Moses' method, normal
// approximation for the order-statistic index).
ShiftEstimate hodges_lehmann_shift(std::span<const double> xs,
                                   std::span<const double> ys,
                                   double confidence = 0.95);

}  // namespace prebake::stats
