// Descriptive statistics used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prebake::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);

// Median of an unsorted sample (copies + nth_element).
double median(std::span<const double> xs);

// Linear-interpolation percentile (type 7, the R default). q in [0, 1].
double percentile(std::span<const double> xs, double q);

// Returns a sorted copy.
std::vector<double> sorted(std::span<const double> xs);

struct Summary {
  std::size_t n = 0;
  double mean = 0, stddev = 0, min = 0, p25 = 0, median = 0, p75 = 0, p95 = 0,
         p99 = 0, max = 0;
};
Summary summarize(std::span<const double> xs);

}  // namespace prebake::stats
