#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prebake::stats {

Ecdf::Ecdf(std::span<const double> sample) : xs_{sample.begin(), sample.end()} {
  if (xs_.empty()) throw std::invalid_argument{"Ecdf: empty sample"};
  std::sort(xs_.begin(), xs_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) / static_cast<double>(xs_.size());
}

double Ecdf::quantile(double q) const {
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument{"Ecdf::quantile: q outside (0,1]"};
  const auto n = static_cast<double>(xs_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, xs_.size() - 1);
  return xs_[idx];
}

double ks_distance(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (double x : a.support()) d = std::max(d, std::fabs(a(x) - b(x)));
  for (double x : b.support()) d = std::max(d, std::fabs(a(x) - b(x)));
  return d;
}

KsTestResult ks_test(std::span<const double> xs, std::span<const double> ys) {
  const Ecdf fa{xs}, fb{ys};
  KsTestResult res;
  res.d = ks_distance(fa, fb);
  const double n1 = static_cast<double>(xs.size());
  const double n2 = static_cast<double>(ys.size());
  const double en = std::sqrt(n1 * n2 / (n1 + n2));
  // Asymptotic Kolmogorov distribution Q(lambda) = 2 sum (-1)^{k-1} e^{-2k^2 lambda^2}.
  const double lambda = (en + 0.12 + 0.11 / en) * res.d;
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += 2.0 * sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  res.p_value = std::clamp(p, 0.0, 1.0);
  return res;
}

}  // namespace prebake::stats
