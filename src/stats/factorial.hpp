// 2^2 factorial experiment analysis (Jain, "The Art of Computer Systems
// Performance Analysis", ch. 17-18). The paper's methodology section states
// "we conducted a 2^2 factorial experiment" with the start-up method and the
// function as factors; this computes the effects and the allocation of
// variation for such designs with replications.
#pragma once

#include <span>

namespace prebake::stats {

struct Factorial2x2 {
  // Model: y = q0 + qa*xa + qb*xb + qab*xa*xb + e, with xa, xb in {-1, +1}.
  double q0 = 0;   // grand mean
  double qa = 0;   // half the average change when factor A goes low->high
  double qb = 0;
  double qab = 0;  // interaction

  // Fraction of the total variation explained by each term (sums to 1 with
  // frac_error).
  double frac_a = 0;
  double frac_b = 0;
  double frac_ab = 0;
  double frac_error = 0;
};

// The four cells are (A-low,B-low), (A-high,B-low), (A-low,B-high),
// (A-high,B-high); each carries r >= 1 replicated observations (cells may
// have different r).
Factorial2x2 factorial_2x2(std::span<const double> y00,
                           std::span<const double> y10,
                           std::span<const double> y01,
                           std::span<const double> y11);

}  // namespace prebake::stats
