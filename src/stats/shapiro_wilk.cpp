#include "stats/shapiro_wilk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/normal.hpp"

namespace prebake::stats {

// Royston's AS R94 approximation (Applied Statistics 44, 1995). Weights are
// derived from Blom-approximated normal order statistics with polynomial
// corrections for the two extreme coefficients; the null distribution of the
// transformed statistic is approximately normal.
ShapiroWilkResult shapiro_wilk(std::span<const double> sample) {
  const std::size_t n = sample.size();
  if (n < 3) throw std::invalid_argument{"shapiro_wilk: need n >= 3"};
  if (n > 5000) throw std::invalid_argument{"shapiro_wilk: n > 5000 unsupported"};

  std::vector<double> x{sample.begin(), sample.end()};
  std::sort(x.begin(), x.end());
  if (x.front() == x.back())
    throw std::invalid_argument{"shapiro_wilk: sample is constant"};

  const auto nd = static_cast<double>(n);
  const std::size_t half = n / 2;

  // mu[j], j = 0..half-1: expected value of the (n-j)-th order statistic of a
  // standard normal sample (the j-th largest; positive). The full m vector is
  // antisymmetric, so sum m_i^2 = 2 * sum mu_j^2.
  std::vector<double> mu(half);
  double summ2 = 0.0;
  for (std::size_t j = 0; j < half; ++j) {
    const double rank = nd - static_cast<double>(j);  // n, n-1, ...
    mu[j] = normal_quantile((rank - 0.375) / (nd + 0.25));
    summ2 += 2.0 * mu[j] * mu[j];
  }
  const double ssumm2 = std::sqrt(summ2);
  const double u = 1.0 / std::sqrt(nd);

  // Upper-half weights a[j] (j-th largest observation); lower half mirrors
  // with a sign flip.
  std::vector<double> a(half);
  if (n == 3) {
    a[0] = std::sqrt(0.5);
  } else {
    const double an = mu[0] / ssumm2 +
                      u * (0.221157 +
                           u * (-0.147981 +
                                u * (-2.071190 + u * (4.434685 - 2.706056 * u))));
    double phi;
    std::size_t start;
    if (n > 5) {
      const double an1 =
          mu[1] / ssumm2 +
          u * (0.042981 +
               u * (-0.293762 + u * (-1.752461 + u * (5.682633 - 3.582633 * u))));
      phi = (summ2 - 2.0 * mu[0] * mu[0] - 2.0 * mu[1] * mu[1]) /
            (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
      a[0] = an;
      a[1] = an1;
      start = 2;
    } else {
      phi = (summ2 - 2.0 * mu[0] * mu[0]) / (1.0 - 2.0 * an * an);
      a[0] = an;
      start = 1;
    }
    const double sqrt_phi = std::sqrt(phi);
    for (std::size_t j = start; j < half; ++j) a[j] = mu[j] / sqrt_phi;
  }

  // W = (sum_i a_i x_(i))^2 / sum_i (x_i - mean)^2, exploiting antisymmetry.
  double xbar = 0.0;
  for (double v : x) xbar += v;
  xbar /= nd;
  double numer_sqrt = 0.0;
  for (std::size_t j = 0; j < half; ++j)
    numer_sqrt += a[j] * (x[n - 1 - j] - x[j]);
  double denom = 0.0;
  for (double v : x) denom += (v - xbar) * (v - xbar);
  double w = numer_sqrt * numer_sqrt / denom;
  w = std::min(w, 1.0);

  ShapiroWilkResult res;
  res.w = w;

  if (n == 3) {
    constexpr double pi6 = 1.90985931710274;    // 6/pi
    constexpr double stqr = 1.04719755119660;   // asin(sqrt(3/4))
    double p = pi6 * (std::asin(std::sqrt(w)) - stqr);
    res.p_value = std::clamp(p, 0.0, 1.0);
    return res;
  }

  double z;
  if (n <= 11) {
    const double g = -2.273 + 0.459 * nd;
    const double wt = -std::log(g - std::log1p(-w));
    const double m =
        0.5440 + nd * (-0.39978 + nd * (0.025054 - 0.0006714 * nd));
    const double s =
        std::exp(1.3822 + nd * (-0.77857 + nd * (0.062767 - 0.0020322 * nd)));
    z = (wt - m) / s;
  } else {
    const double l = std::log(nd);
    const double wt = std::log1p(-w);
    const double m = -1.5861 + l * (-0.31082 + l * (-0.083751 + 0.0038915 * l));
    const double s = std::exp(-0.4803 + l * (-0.082676 + 0.0030302 * l));
    z = (wt - m) / s;
  }
  res.p_value = 1.0 - normal_cdf(z);
  return res;
}

}  // namespace prebake::stats
