#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prebake::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"mean: empty sample"};
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument{"variance: need n >= 2"};
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"min: empty sample"};
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"max: empty sample"};
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> v{xs.begin(), xs.end()};
  std::sort(v.begin(), v.end());
  return v;
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument{"percentile: empty sample"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"percentile: q out of [0,1]"};
  auto v = sorted(xs);
  if (v.size() == 1) return v.front();
  const double h = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min(xs);
  s.p25 = percentile(xs, 0.25);
  s.median = percentile(xs, 0.50);
  s.p75 = percentile(xs, 0.75);
  s.p95 = percentile(xs, 0.95);
  s.p99 = percentile(xs, 0.99);
  s.max = max(xs);
  return s;
}

}  // namespace prebake::stats
