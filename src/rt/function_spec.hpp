// Deployable function descriptor: code, dependencies, and calibrated
// behavioural parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/classfile.hpp"
#include "sim/time.hpp"

namespace prebake::rt {

struct FunctionSpec {
  std::string name;
  // Handler id resolved through funcs::make_handler (real business logic).
  std::string handler_id = "noop";

  // Classes loaded eagerly during APPINIT (framework, HTTP server).
  std::vector<ClassFile> init_classes;
  // Classes loaded lazily on the first invocation (the paper's synthetic
  // functions load all their classes when invoked, which is why PB-NOWarmup
  // start-up still grows with code size while PB-Warmup does not).
  std::vector<ClassFile> request_classes;

  // Where the builder placed the class archive in the simulated filesystem.
  std::string classpath_archive;
  // The runtime binary exec'd by the Vanilla path.
  std::string runtime_binary = "/opt/jvm/bin/java";

  // Application-specific initialization I/O (the Image Resizer reads a 1 MiB
  // image at start-up: "this translates to perform more I/O operations").
  std::string init_io_path;
  std::uint64_t init_io_bytes = 0;
  // Long-lived buffers allocated during APPINIT (e.g. the decoded bitmap);
  // they become part of the process footprint and hence the snapshot.
  std::uint64_t init_extra_resident = 0;

  // Fixed app-init compute beyond class loading (calibrated per function).
  sim::Duration appinit_compute;
  // Extra work the runtime performs when it resumes from a snapshot
  // (socket re-listen, clock resync; calibrated per function).
  sim::Duration post_restore_residual;

  // Warm-path service time (median) and lognormal noise shape.
  sim::Duration warm_service_median = sim::Duration::millis(1);
  double service_sigma = 0.05;

  // Pages write-touched per request in steady state (heap churn). Zero —
  // the calibrated default — leaves the post-warmup footprint read-only, so
  // pre-dump deltas converge instantly; nonzero models a write-heavy
  // function whose dirty rate resists live-migration convergence.
  std::uint64_t request_dirty_pages = 0;

  // Fraction of the snapshot's lazily pending pages the *first* invocation
  // demand-faults (REAP working-set model, DESIGN.md §6j): an invocation
  // touches its code + data working set, not the whole image. Only consulted
  // under PagingMode::kWorkingSet — the legacy lazy path keeps its
  // drain-everything-on-first-serve behavior.
  double first_invoke_ws_fraction = 0.3;

  std::uint64_t memory_seed = 0x9e3779b9;

  std::uint64_t init_class_bytes() const { return class_bytes(init_classes); }
  std::uint64_t request_class_bytes() const { return class_bytes(request_classes); }
  std::uint64_t total_class_bytes() const {
    return init_class_bytes() + request_class_bytes();
  }
};

}  // namespace prebake::rt
