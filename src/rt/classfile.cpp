#include "rt/classfile.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace prebake::rt {

std::vector<ClassFile> synth_class_set(const std::string& prefix, int count,
                                       std::uint64_t total_bytes,
                                       std::uint64_t seed) {
  if (count <= 0) throw std::invalid_argument{"synth_class_set: count <= 0"};
  if (total_bytes < static_cast<std::uint64_t>(count) * 64)
    throw std::invalid_argument{"synth_class_set: total too small for count"};

  sim::Rng rng{seed};
  // Right-skewed weights: weight = exp(2 * normal()) gives a lognormal size
  // mix reminiscent of real jars (many small DTOs, a few generated giants).
  std::vector<double> weights(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (double& w : weights) {
    w = rng.lognormal_median(1.0, 1.0);
    sum += w;
  }

  std::vector<ClassFile> classes(static_cast<std::size_t>(count));
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    classes[i].name = prefix + ".Class" + std::to_string(i);
    const auto share = static_cast<std::uint64_t>(
        static_cast<double>(total_bytes) * weights[i] / sum);
    classes[i].size_bytes = static_cast<std::uint32_t>(std::max<std::uint64_t>(share, 64));
    assigned += classes[i].size_bytes;
  }
  // Fix rounding drift on the last class so the total is exact.
  auto& last = classes.back();
  const std::int64_t drift =
      static_cast<std::int64_t>(total_bytes) - static_cast<std::int64_t>(assigned);
  const std::int64_t fixed = static_cast<std::int64_t>(last.size_bytes) + drift;
  last.size_bytes = static_cast<std::uint32_t>(std::max<std::int64_t>(fixed, 64));
  return classes;
}

std::uint64_t class_bytes(std::span<const ClassFile> classes) {
  std::uint64_t total = 0;
  for (const ClassFile& c : classes) total += c.size_bytes;
  return total;
}

std::vector<ClassFile> small_class_set() {
  return synth_class_set("synthetic.small", 374, 2'800'000, 0x5ca1e5);
}

std::vector<ClassFile> medium_class_set() {
  return synth_class_set("synthetic.medium", 574, 9'200'000, 0x3ed1u);
}

std::vector<ClassFile> big_class_set() {
  return synth_class_set("synthetic.big", 1574, 41'000'000, 0xb16u);
}

}  // namespace prebake::rt
