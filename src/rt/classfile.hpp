// Class files and synthetic class sets.
//
// Section 4.2.2 of the paper builds synthetic functions that load a fixed
// number of classes of varying sizes: small (374 classes, ~2.8 MB), medium
// (574, ~9.2 MB) and big (1574, ~41 MB). "The loaded classes have different
// sizes, and that is the reason the growth in the number of classes does not
// match the size linearly."
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace prebake::rt {

struct ClassFile {
  std::string name;
  std::uint32_t size_bytes = 0;
};

// Deterministically generate `count` classes totalling exactly `total_bytes`
// with a right-skewed size distribution (a few large generated/framework
// classes, many small ones), as in real classpaths.
std::vector<ClassFile> synth_class_set(const std::string& prefix, int count,
                                       std::uint64_t total_bytes,
                                       std::uint64_t seed);

std::uint64_t class_bytes(std::span<const ClassFile> classes);

// The paper's three synthetic sizes.
std::vector<ClassFile> small_class_set();   // 374 classes, ~2.8 MB
std::vector<ClassFile> medium_class_set();  // 574 classes, ~9.2 MB
std::vector<ClassFile> big_class_set();     // 1574 classes, ~41 MB

}  // namespace prebake::rt
