#include "rt/runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace prebake::rt {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;

double mib(std::uint64_t bytes) { return static_cast<double>(bytes) / kMiB; }
}  // namespace

ManagedRuntime::ManagedRuntime(os::Kernel& kernel, os::Pid pid,
                               RuntimeCosts costs, FunctionSpec spec,
                               sim::Rng rng)
    : ManagedRuntime{kernel, pid, std::move(costs), std::move(spec),
                     std::move(rng), RuntimeProgress::kFresh} {}

ManagedRuntime::ManagedRuntime(os::Kernel& kernel, os::Pid pid,
                               RuntimeCosts costs, FunctionSpec spec,
                               sim::Rng rng, RuntimeProgress progress)
    : kernel_{&kernel},
      pid_{pid},
      costs_{std::move(costs)},
      spec_{std::move(spec)},
      rng_{std::move(rng)},
      progress_{progress} {}

ManagedRuntime ManagedRuntime::attach_restored(os::Kernel& kernel, os::Pid pid,
                                               RuntimeCosts costs,
                                               FunctionSpec spec, sim::Rng rng,
                                               bool warmed,
                                               funcs::SharedAssets& assets) {
  ManagedRuntime rt{kernel,
                    pid,
                    std::move(costs),
                    std::move(spec),
                    std::move(rng),
                    warmed ? RuntimeProgress::kWarmed : RuntimeProgress::kReady};
  rt.restored_ = true;
  rt.booted_ = true;
  rt.assets_ = &assets;
  // Post-restore fixups the runtime performs when it resumes: re-arm timers,
  // reopen the listen socket, resynchronize the clock (calibrated per spec).
  kernel.sim().advance(rt.spec_.post_restore_residual * rt.noise());
  rt.handler_ = funcs::make_handler(rt.spec_.handler_id, assets);
  if (warmed) rt.requests_served_ = 1;  // at least the warm-up request
  return rt;
}

ManagedRuntime ManagedRuntime::attach_forked(os::Kernel& kernel, os::Pid pid,
                                             RuntimeCosts costs,
                                             FunctionSpec spec, sim::Rng rng) {
  ManagedRuntime rt{kernel,        pid,
                    std::move(costs), std::move(spec),
                    std::move(rng),   RuntimeProgress::kBooted};
  rt.booted_ = true;
  // fork(2) keeps only the calling thread: the child must restart the GC /
  // compiler service threads and fix up fork-unsafe state.
  os::Process& proc = kernel.process(pid);
  for (int i = 0; static_cast<int>(proc.threads().size()) <
                  rt.costs_.service_threads + 1;
       ++i)
    proc.spawn_thread(pid + 1 + i);
  kernel.sim().advance(rt.costs_.post_fork_fixup * rt.noise());
  return rt;
}

void ManagedRuntime::bootstrap() {
  if (progress_ != RuntimeProgress::kFresh)
    throw std::logic_error{"ManagedRuntime::bootstrap: already bootstrapped"};
  os::Kernel& k = *kernel_;
  const sim::TimePoint t0 = k.sim().now();

  // JVM init: heap reservation, GC/compiler service threads, core classes.
  // The post-bootstrap base state is a function of the *runtime*, not the
  // function — every replica of every function shares these page contents,
  // which is what makes content-addressed snapshot dedup (criu/dedup.hpp)
  // effective across functions.
  constexpr std::uint64_t kRuntimeBaseSeed = 0x9E57'AB1E;
  k.sim().advance(costs_.bootstrap * noise());
  k.mmap(pid_, costs_.heap_base_bytes, os::Prot::kReadWrite, os::VmaKind::kAnon,
         "[jvm-heap]", std::make_shared<os::PatternSource>(kRuntimeBaseSeed),
         /*populate=*/true);
  k.mmap(pid_, 2 * 1024 * 1024, os::Prot::kReadWrite, os::VmaKind::kAnon,
         "[metaspace]",
         std::make_shared<os::PatternSource>(kRuntimeBaseSeed ^ 0x11eaf),
         /*populate=*/true);
  os::Process& proc = k.process(pid_);
  for (int i = 0; i < costs_.service_threads; ++i)
    proc.spawn_thread(pid_ + 1 + i);

  booted_ = true;
  progress_ = RuntimeProgress::kBooted;
  rts_time_ = k.sim().now() - t0;
}

void ManagedRuntime::app_init(funcs::SharedAssets& assets) {
  if (progress_ != RuntimeProgress::kBooted)
    throw std::logic_error{"ManagedRuntime::app_init: runtime not booted"};
  os::Kernel& k = *kernel_;
  const sim::TimePoint t0 = k.sim().now();
  assets_ = &assets;

  // Load the framework / HTTP server / eagerly referenced classes.
  if (!spec_.init_classes.empty()) {
    const std::uint64_t bytes = spec_.init_class_bytes();
    if (!spec_.classpath_archive.empty())
      k.fs().charge_read(spec_.classpath_archive, bytes);
    k.sim().advance(costs_.classload_per_mib_cold * mib(bytes) * noise());
    k.sim().advance(costs_.per_class_overhead *
                    static_cast<double>(spec_.init_classes.size()));
    const auto meta_bytes = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * costs_.metadata_factor);
    const os::VmaId vma = k.mmap(
        pid_, meta_bytes, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[metaspace-init]",
        std::make_shared<os::PatternSource>(spec_.memory_seed ^ 0xC1A55),
        /*populate=*/false);
    k.fault_in_all(pid_, vma, /*write=*/true);
  }

  // Application-specific start-up I/O (e.g. the Image Resizer's 1 MiB photo).
  if (spec_.init_io_bytes > 0 && !spec_.init_io_path.empty())
    k.fs().charge_read(spec_.init_io_path, spec_.init_io_bytes);

  // Long-lived buffers allocated at init (decoded bitmaps etc.). These are
  // the reason the Image Resizer snapshot is 99.2 MB vs 13 MB for NOOP.
  if (spec_.init_extra_resident > 0) {
    const os::VmaId vma = k.mmap(
        pid_, spec_.init_extra_resident, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[app-buffers]",
        std::make_shared<os::PatternSource>(spec_.memory_seed ^ 0xBFF5),
        /*populate=*/false);
    k.fault_in_all(pid_, vma, /*write=*/true);
  }

  // Business-logic construction (real handler objects).
  handler_ = funcs::make_handler(spec_.handler_id, assets);

  // Bind the HTTP listen socket.
  os::FdDesc listen;
  listen.kind = os::FdKind::kSocket;
  listen.path = "tcp://0.0.0.0:8080";
  k.process(pid_).install_fd(listen);

  k.sim().advance(spec_.appinit_compute * noise());

  progress_ = RuntimeProgress::kReady;
  appinit_time_ = k.sim().now() - t0;
}

void ManagedRuntime::lazy_first_request(bool restored_warm_path) {
  os::Kernel& k = *kernel_;
  const std::uint64_t bytes = spec_.request_class_bytes();
  if (bytes == 0) return;

  k.sim().advance(costs_.lazy_loader_init * noise());
  if (!spec_.classpath_archive.empty())
    k.fs().charge_read(spec_.classpath_archive, bytes);
  const sim::Duration per_mib = restored_warm_path
                                    ? costs_.classload_per_mib_warm
                                    : costs_.classload_per_mib_cold;
  k.sim().advance(per_mib * mib(bytes) * noise());
  k.sim().advance(costs_.per_class_overhead *
                  static_cast<double>(spec_.request_classes.size()));

  // Class metadata becomes resident...
  const auto meta_bytes = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * costs_.metadata_factor);
  if (meta_bytes > 0) {
    const os::VmaId meta = k.mmap(
        pid_, meta_bytes, os::Prot::kReadWrite, os::VmaKind::kAnon,
        "[metaspace-lazy]",
        std::make_shared<os::PatternSource>(spec_.memory_seed ^ 0x1a2b), false);
    k.fault_in_all(pid_, meta, /*write=*/true);
  }

  // ...and, for JIT-compiling runtimes, hot methods land in the code cache
  // (a pure interpreter like CPython sets these factors to zero).
  k.sim().advance(costs_.jit_per_mib * mib(bytes) * noise());
  const auto code_bytes = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * costs_.code_cache_factor);
  if (code_bytes > 0) {
    const os::VmaId code = k.mmap(
        pid_, code_bytes, os::Prot::kReadExec, os::VmaKind::kAnon,
        "[code-cache]",
        std::make_shared<os::PatternSource>(spec_.memory_seed ^ 0xc0de), false);
    k.fault_in_all(pid_, code, /*write=*/false);
  }
}

// Steady-state heap churn: write-touch `request_dirty_pages` heap pages per
// request, cycling a cursor across the heap VMA so successive requests dirty
// *different* pages. This is what a live-migration pre-dump is up against —
// the dirty delta between rounds is proportional to this rate. Pages are
// already resident, so the touches re-dirty the soft-dirty bitmap without
// charging fault-in time; contents come from the same PatternSource, so
// snapshot digests stay valid.
void ManagedRuntime::dirty_heap_pages() {
  os::Kernel& k = *kernel_;
  if (dirty_vma_ == 0) {
    for (const os::Vma& v : k.process(pid_).mm().vmas()) {
      if (v.name == "[jvm-heap]" || (dirty_vma_ == 0 && v.name == "[app-buffers]"))
        dirty_vma_ = v.id;
      if (v.name == "[jvm-heap]") break;
    }
    if (dirty_vma_ == 0) return;  // nothing writable to churn
  }
  const os::Vma* vma = k.process(pid_).mm().find(dirty_vma_);
  if (vma == nullptr || vma->page_count() == 0) return;
  const std::uint64_t total = vma->page_count();
  std::uint64_t left = std::min<std::uint64_t>(spec_.request_dirty_pages, total);
  while (left > 0) {
    const std::uint64_t run = std::min(left, total - dirty_cursor_);
    k.fault_in(pid_, dirty_vma_, dirty_cursor_, run, /*write=*/true);
    dirty_cursor_ = (dirty_cursor_ + run) % total;
    left -= run;
  }
}

funcs::Response ManagedRuntime::handle(const funcs::Request& req) {
  if (progress_ != RuntimeProgress::kReady && progress_ != RuntimeProgress::kWarmed)
    throw std::logic_error{"ManagedRuntime::handle: runtime not ready"};
  os::Kernel& k = *kernel_;
  const sim::TimePoint t0 = k.sim().now();

  if (progress_ == RuntimeProgress::kReady) {
    lazy_first_request(restored_);
    progress_ = RuntimeProgress::kWarmed;
  }

  // Warm-path service time (the Figure 7 distributions).
  k.sim().advance(sim::Duration::nanos(static_cast<std::int64_t>(
      static_cast<double>(spec_.warm_service_median.nanos_count()) *
      rng_.lognormal_median(1.0, spec_.service_sigma))));

  if (spec_.request_dirty_pages > 0) dirty_heap_pages();

  funcs::Response res = handler_->handle(req);
  ++requests_served_;
  last_service_time_ = k.sim().now() - t0;
  return res;
}

}  // namespace prebake::rt
