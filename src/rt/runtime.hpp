// The managed runtime model ("JesVM") — a JVM-like runtime attached to a
// simulated process.
//
// It reproduces the cold-start phase structure the paper measures with
// bpftrace (Section 4.2.1): after CLONE and EXEC, the runtime bootstrap (RTS,
// exec-end to main(); ~70 ms for Java 8 regardless of function) and the
// application initialization (APPINIT, main() to ready-to-serve). Class
// loading and JIT compilation are lazy: the first invocation of a function
// pays for loading/compiling its request classes, which is exactly what the
// PB-Warmup snapshot policy bakes into the image.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "funcs/handlers.hpp"
#include "os/kernel.hpp"
#include "rt/function_spec.hpp"
#include "sim/rng.hpp"

namespace prebake::rt {

struct RuntimeCosts {
  // RTS: JVM data structures, GC threads, service threads ("≈70 ms ... no
  // statistical difference between the RTS phase values for all evaluated
  // functions" — Section 4.2.1).
  sim::Duration bootstrap = sim::Duration::millis_f(68.0);
  // Multiplicative lognormal noise applied per phase.
  double timing_sigma = 0.004;

  // Class loading: parse + verify + define, per MiB of class files, plus a
  // fixed per-class linkage overhead. "cold" is the first-ever load path
  // (vanilla); "warm" is the post-restore path where metadata parsing hits
  // caches already faulted into related state.
  sim::Duration classload_per_mib_cold = sim::Duration::millis_f(20.0);
  sim::Duration classload_per_mib_warm = sim::Duration::millis_f(16.0);
  sim::Duration per_class_overhead = sim::Duration::micros(18);

  // JIT compilation charged when lazily compiling request classes.
  sim::Duration jit_per_mib = sim::Duration::millis_f(12.0);
  // One-time cost of spinning up the lazy application class loader on the
  // first invocation (opening the jar, building the classpath index); paid
  // once per replica unless the snapshot already baked it in (PB-Warmup).
  sim::Duration lazy_loader_init = sim::Duration::millis_f(25.0);

  // Baseline resident footprint after bootstrap (the NOOP snapshot is 13 MB
  // in the paper; part of that is binary/stack mapped at exec).
  std::uint64_t heap_base_bytes = 11ull * 1024 * 1024;
  // Resident metaspace bytes per class-file byte.
  double metadata_factor = 1.05;
  // JIT code-cache bytes per class-file byte (populated by warm-up).
  double code_cache_factor = 1.55;

  // Number of runtime service threads (GC, compiler) besides main.
  int service_threads = 4;

  // Post-fork fixups in a zygote child (re-seed PRNGs, re-arm timers,
  // restart service threads — fork only keeps the calling thread).
  sim::Duration post_fork_fixup = sim::Duration::millis_f(2.5);
};

// What the runtime knows about its own progress; snapshot policies use this
// and the restore path re-derives it from the image's stats entry.
enum class RuntimeProgress : std::uint8_t {
  kFresh,     // process exec'd, runtime not yet bootstrapped
  kBooted,    // RTS done
  kReady,     // APPINIT done, listening
  kWarmed,    // >= 1 request served (request classes loaded + JITed)
};

class ManagedRuntime {
 public:
  // Attach a fresh runtime to a process that just exec'd `spec.runtime_binary`.
  ManagedRuntime(os::Kernel& kernel, os::Pid pid, RuntimeCosts costs,
                 FunctionSpec spec, sim::Rng rng);

  // Re-attach to a process restored from a snapshot: memory already present;
  // the runtime performs its post-restore fixups (charged) and resumes at
  // the recorded progress point.
  static ManagedRuntime attach_restored(os::Kernel& kernel, os::Pid pid,
                                        RuntimeCosts costs, FunctionSpec spec,
                                        sim::Rng rng, bool warmed,
                                        funcs::SharedAssets& assets);

  // Attach to a process forked from a booted zygote (SOCK-style [19]: the
  // runtime bootstrap already ran in the parent; the child COW-shares that
  // state and only needs app_init). Charges the post-fork fixup the child
  // runtime performs (re-seeding PRNGs, re-arming timers).
  static ManagedRuntime attach_forked(os::Kernel& kernel, os::Pid pid,
                                      RuntimeCosts costs, FunctionSpec spec,
                                      sim::Rng rng);

  // RTS phase. Maps and faults the base heap; charges bootstrap time.
  void bootstrap();
  // APPINIT phase. Loads init classes, performs init I/O, allocates
  // long-lived app buffers, binds the HTTP listen socket.
  void app_init(funcs::SharedAssets& assets);

  // Serve one request through the real handler. The first invocation lazily
  // loads and JIT-compiles the request classes.
  funcs::Response handle(const funcs::Request& req);

  RuntimeProgress progress() const { return progress_; }
  bool warmed() const { return progress_ == RuntimeProgress::kWarmed; }
  int requests_served() const { return requests_served_; }
  os::Pid pid() const { return pid_; }
  const FunctionSpec& spec() const { return spec_; }

  // Phase durations recorded for the Figure 4 breakdown.
  sim::Duration rts_time() const { return rts_time_; }
  sim::Duration appinit_time() const { return appinit_time_; }
  sim::Duration last_service_time() const { return last_service_time_; }

 private:
  ManagedRuntime(os::Kernel& kernel, os::Pid pid, RuntimeCosts costs,
                 FunctionSpec spec, sim::Rng rng, RuntimeProgress progress);

  double noise() { return rng_.lognormal_median(1.0, costs_.timing_sigma); }
  void lazy_first_request(bool restored_warm_path);
  void dirty_heap_pages();

  os::Kernel* kernel_;
  os::Pid pid_;
  RuntimeCosts costs_;
  FunctionSpec spec_;
  sim::Rng rng_;
  RuntimeProgress progress_ = RuntimeProgress::kFresh;
  bool restored_ = false;
  bool booted_ = false;
  int requests_served_ = 0;
  std::unique_ptr<funcs::Handler> handler_;
  funcs::SharedAssets* assets_ = nullptr;
  sim::Duration rts_time_{};
  sim::Duration appinit_time_{};
  sim::Duration last_service_time_{};
  // Steady-state heap-churn cursor (request_dirty_pages > 0): which heap
  // page the next request's writes start at. Resolved lazily so restored /
  // attached runtimes find the heap VMA the image brought along.
  os::VmaId dirty_vma_ = 0;
  std::uint64_t dirty_cursor_ = 0;
};

}  // namespace prebake::rt
