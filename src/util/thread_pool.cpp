#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace prebake::util {

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk{mu_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk{mu_};
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{
      static_cast<unsigned>(std::max(default_threads() - 1, 0))};
  return pool;
}

int default_threads() {
  static const int resolved = [] {
    if (const char* env = std::getenv("PREBAKE_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return resolved;
}

int resolve_threads(int requested) {
  if (requested == 0) return default_threads();
  return requested < 1 ? 1 : requested;
}

namespace {

// Shared between the caller and the helper tasks it enqueues; kept alive by
// shared_ptr because a helper may only get scheduled after the parallel_for
// that spawned it has already returned.
struct ForState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abandoned{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t finished = 0;  // indices fully processed (ran or skipped)
  std::exception_ptr error;

  // Claim and process indices until they run out. Every index in [0, n) is
  // claimed by exactly one drainer and always counted in `finished`, so
  // `finished == n` means no call into fn is still in flight.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr eptr;
      if (!abandoned.load(std::memory_order_acquire)) {
        try {
          (*fn)(i);
        } catch (...) {
          eptr = std::current_exception();
        }
      }
      std::lock_guard lk{mu};
      if (eptr && !error) {
        error = eptr;
        abandoned.store(true, std::memory_order_release);
      }
      if (++finished == n) done_cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads, ThreadPool* pool) {
  if (n == 0) return;
  const int limit = resolve_threads(threads);
  if (pool == nullptr) pool = &ThreadPool::global();
  if (limit <= 1 || n == 1 || pool->workers() == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(limit - 1), n - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    pool->submit([state] { state->drain(); });

  state->drain();  // the caller works too (and cannot deadlock waiting)

  std::unique_lock lk{state->mu};
  state->done_cv.wait(lk, [&] { return state->finished == state->n; });
  // fn lives on the caller's frame: helpers must be past their last use of
  // it before we return. `done` only reaches n after every claimed call
  // returned, and the abandoned tail was never started.
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace prebake::util
