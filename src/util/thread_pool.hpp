// Fixed-size thread pool and a deterministic parallel_for.
//
// The experiment engine shards its work into chunks whose boundaries depend
// only on the problem size — never on the worker count — and derives every
// chunk's RNG stream from the chunk index. Which thread executes a chunk is
// therefore irrelevant to the result: the same configuration produces
// bit-identical output with 1, 2 or 8 threads (see DESIGN.md, "Parallel
// harness & determinism").
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace prebake::util {

// Worker threads pulling from one FIFO queue. `workers` may be 0, in which
// case submitted tasks only run when a parallel_for caller lends its own
// thread (everything degrades gracefully to serial execution).
class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // The process-wide pool, sized so that a parallel_for caller plus the
  // workers add up to default_threads() runnable threads.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Library-wide default parallelism: $PREBAKE_THREADS if set (>= 1), else
// std::thread::hardware_concurrency().
int default_threads();

// 0 -> default_threads(); anything else clamped to >= 1.
int resolve_threads(int requested);

// Invoke fn(i) once for every i in [0, n), spreading the calls over the pool
// plus the calling thread. `threads` bounds the parallelism (0 = library
// default, 1 = run inline). The *division* of work is by index, fixed by n
// alone; only the assignment of indices to threads is dynamic, so fn may
// derive per-index state (RNG seeds, output slots) and stay deterministic.
//
// fn must not throw across indices it wants retried: the first exception is
// captured, remaining indices are abandoned, and the exception is rethrown
// on the calling thread once in-flight indices drain.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads = 0, ThreadPool* pool = nullptr);

}  // namespace prebake::util
