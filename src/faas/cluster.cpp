#include "faas/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace prebake::faas {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kReady: return "ready";
    case NodeState::kDraining: return "draining";
    case NodeState::kFailed: return "failed";
  }
  throw std::invalid_argument{"node_state_name: bad state"};
}

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kWorstFit: return "worst-fit";
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kSnapshotLocality: return "locality";
  }
  throw std::invalid_argument{"placement_policy_name: bad policy"};
}

WorkerNode::WorkerNode(NodeId id, std::string name, std::uint64_t mem_capacity,
                       std::uint32_t cpus)
    : id_{id},
      name_{std::move(name)},
      mem_capacity_{mem_capacity},
      cpus_{cpus} {
  core_free_.resize(cpus_, sim::TimePoint::origin());
}

void WorkerNode::reserve(std::uint64_t mem_bytes) {
  if (mem_bytes > mem_free())
    throw std::logic_error{"WorkerNode::reserve: over capacity on " + name_};
  mem_used_ += mem_bytes;
  ++replicas_;
  ++stats_.replicas_placed;
}

void WorkerNode::release(std::uint64_t mem_bytes) {
  if (mem_used_ < mem_bytes || replicas_ == 0)
    throw std::logic_error{"WorkerNode::release: accounting underflow"};
  mem_used_ -= mem_bytes;
  --replicas_;
}

sim::TimePoint WorkerNode::run(sim::TimePoint now, sim::Duration work) {
  stats_.busy += work;
  if (core_free_.empty()) return now + work;  // uncapped node
  auto it = std::min_element(core_free_.begin(), core_free_.end());
  const sim::TimePoint start = std::max(now, *it);
  const sim::TimePoint done = start + work;
  *it = done;
  return done;
}

sim::TimePoint WorkerNode::next_core_free(sim::TimePoint now) const {
  if (core_free_.empty()) return now;
  return std::max(now, *std::min_element(core_free_.begin(), core_free_.end()));
}

WorkerNode::CacheAdmit WorkerNode::cache_admit(const std::string& key,
                                               const std::string& fs_prefix,
                                               std::uint64_t bytes) {
  CacheAdmit out;
  const auto it = cache_.find(key);
  std::erase(cache_lru_, key);
  cache_lru_.push_back(key);
  if (it != cache_.end()) {
    out.hit = true;
    ++stats_.snapshot_hits;
    return out;
  }
  ++stats_.snapshot_misses;
  cache_[key] = CacheEntry{fs_prefix, bytes};
  cache_bytes_ += bytes;
  out.evicted_prefixes = evict_to_fit();
  return out;
}

std::string WorkerNode::cache_drop(const std::string& key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return {};
  std::erase(cache_lru_, key);
  cache_bytes_ -= it->second.bytes;
  std::string prefix = it->second.fs_prefix;
  cache_.erase(it);
  return prefix;
}

std::vector<std::string> WorkerNode::set_cache_capacity(std::uint64_t bytes) {
  cache_capacity_ = bytes;
  return evict_to_fit();
}

std::vector<std::string> WorkerNode::evict_to_fit() {
  std::vector<std::string> evicted;
  if (cache_capacity_ == 0) return evicted;
  while (cache_bytes_ > cache_capacity_ && cache_lru_.size() > 1) {
    const std::string victim = cache_lru_.front();
    cache_lru_.erase(cache_lru_.begin());
    const auto it = cache_.find(victim);
    cache_bytes_ -= it->second.bytes;
    evicted.push_back(it->second.fs_prefix);
    cache_.erase(it);
    ++stats_.snapshot_evictions;
  }
  return evicted;
}

WorkerNode* Scheduler::pick_worst_fit(std::vector<WorkerNode>& nodes,
                                      const PlacementRequest& request) {
  WorkerNode* best = nullptr;
  for (WorkerNode& n : nodes) {
    if (!n.schedulable() || n.id() == request.exclude ||
        n.mem_free() < request.mem_bytes)
      continue;
    if (best == nullptr || n.mem_free() > best->mem_free()) best = &n;
  }
  return best;
}

WorkerNode* Scheduler::pick(std::vector<WorkerNode>& nodes,
                            const PlacementRequest& request) {
  if (nodes.empty()) return nullptr;
  switch (policy_) {
    case PlacementPolicy::kWorstFit:
      return pick_worst_fit(nodes, request);

    case PlacementPolicy::kRoundRobin: {
      // Rotate a cursor over the node list; skip nodes that cannot host.
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        WorkerNode& n = nodes[(rr_cursor_ + i) % nodes.size()];
        if (!n.schedulable() || n.id() == request.exclude ||
            n.mem_free() < request.mem_bytes)
          continue;
        rr_cursor_ = (rr_cursor_ + i + 1) % nodes.size();
        return &n;
      }
      return nullptr;
    }

    case PlacementPolicy::kSnapshotLocality: {
      // Page-store mode: score every candidate by the unique bytes its store
      // is missing (what the delta fetch would actually transfer); least
      // missing wins, most free memory breaks ties. A node missing the whole
      // image scores like any other cold node, so this subsumes worst-fit.
      if (request.snapshot_digests.data() != nullptr) {
        WorkerNode* best = nullptr;
        std::uint64_t best_missing = 0;
        for (WorkerNode& n : nodes) {
          if (!n.schedulable() || n.id() == request.exclude ||
              n.mem_free() < request.mem_bytes)
            continue;
          const std::uint64_t missing =
              n.store().missing_unique_bytes(request.snapshot_digests);
          if (best == nullptr || missing < best_missing ||
              (missing == best_missing && n.mem_free() > best->mem_free())) {
            best = &n;
            best_missing = missing;
          }
        }
        return best;
      }
      // Among nodes already holding the snapshot, take the one with most
      // free memory; otherwise fall back to worst-fit (which also covers
      // vanilla replicas, whose request carries no snapshot key).
      if (!request.snapshot_key.empty()) {
        WorkerNode* best = nullptr;
        for (WorkerNode& n : nodes) {
          if (!n.schedulable() || n.id() == request.exclude ||
              n.mem_free() < request.mem_bytes)
            continue;
          if (!n.cache_contains(request.snapshot_key)) continue;
          if (best == nullptr || n.mem_free() > best->mem_free()) best = &n;
        }
        if (best != nullptr) return best;
      }
      return pick_worst_fit(nodes, request);
    }
  }
  return nullptr;
}

}  // namespace prebake::faas
