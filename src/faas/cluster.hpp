// The cluster layer: real worker nodes and replica placement.
//
// The paper deploys prebaking inside OpenFaaS, where replicas land on worker
// nodes. A WorkerNode owns (a) its memory budget, (b) its CPU timeline —
// replica start-ups and request service execute as serialized work on the
// node's cores, so concurrent restores on one node contend while restores on
// different nodes overlap — and (c) a node-local snapshot/image cache: under
// the Section-7 "checkpoint/restore as a service" deployment the first
// restore of a function on a node pulls the image files from the remote
// registry, after which they are resident locally (cf. Ustiugov et al.,
// PAPERS.md, on snapshot locality deciding restore cost).
//
// The Scheduler picks a node for each replica with a pluggable policy:
// worst-fit (spread by free memory), round-robin, or snapshot-locality-aware
// (prefer nodes that already hold the function's images).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "criu/page_store.hpp"
#include "sim/time.hpp"

namespace prebake::faas {

using NodeId = std::uint32_t;

// Sentinel for "no node": unresolved placement, wildcard migration endpoint.
inline constexpr NodeId kNoNode = 0xffffffffu;

// Node lifecycle. Draining nodes accept no new replicas but let resident
// ones finish; failed nodes lose everything on them (the platform kills the
// replicas and re-queues their in-flight work).
enum class NodeState : std::uint8_t { kReady, kDraining, kFailed };

const char* node_state_name(NodeState state);

struct NodeStats {
  std::uint64_t replicas_placed = 0;   // lifetime placements (not current)
  std::uint64_t snapshot_hits = 0;     // restores served from the local cache
  std::uint64_t snapshot_misses = 0;   // restores that had to pull remotely
  std::uint64_t snapshot_evictions = 0;
  std::uint64_t remote_bytes_fetched = 0;
  sim::Duration busy;                  // CPU time executed on this node
  // Page-store accounting (zero unless the platform runs with page_store on).
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  std::uint64_t template_clones = 0;
  // Live-migration accounting (DESIGN.md §6i).
  std::uint64_t migrations_out = 0;      // replicas migrated off this node
  std::uint64_t migrations_in = 0;       // replicas that resumed here
  std::uint64_t migrations_aborted = 0;  // attempts that fell back to local
  // Warmth ledger: what fail/drain did to this node's warm state. A killed
  // warm replica and a dropped template are destroyed warmth; a replica
  // that left via live migration kept its warmth elsewhere.
  std::uint64_t warmth_replicas_destroyed = 0;
  std::uint64_t warmth_replicas_migrated = 0;
  std::uint64_t warmth_template_pages_destroyed = 0;
};

class WorkerNode {
 public:
  // `cpus` == 0 models a node with enough cores that replica work never
  // queues (the seed's behaviour); a positive count serializes work onto
  // that many core timelines.
  WorkerNode(NodeId id, std::string name, std::uint64_t mem_capacity,
             std::uint32_t cpus);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint32_t cpus() const { return cpus_; }
  NodeState state() const { return state_; }
  void set_state(NodeState state) { state_ = state; }
  bool schedulable() const { return state_ == NodeState::kReady; }

  // --- memory ------------------------------------------------------------
  std::uint64_t mem_capacity() const { return mem_capacity_; }
  std::uint64_t mem_used() const { return mem_used_; }
  std::uint64_t mem_free() const { return mem_capacity_ - mem_used_; }
  std::uint32_t replicas() const { return replicas_; }

  void reserve(std::uint64_t mem_bytes);
  void release(std::uint64_t mem_bytes);  // throws on accounting underflow

  // --- CPU timeline ------------------------------------------------------
  // Schedule `work` of CPU time on the earliest-free core, no earlier than
  // `now`; returns the completion time. Work submitted while every core is
  // busy queues behind the earliest completion (serialized start-ups and
  // request service — the contention the single-CPU seed model charged
  // globally, now charged per node).
  sim::TimePoint run(sim::TimePoint now, sim::Duration work);
  // When the next core becomes available (>= now).
  sim::TimePoint next_core_free(sim::TimePoint now) const;

  // --- node-local snapshot/image cache ------------------------------------
  struct CacheAdmit {
    bool hit = false;
    // fs prefixes of evicted entries; the owner removes their local files.
    std::vector<std::string> evicted_prefixes;
  };
  // Look up `key` (function/policy tag); admit it on miss. `fs_prefix` is
  // where the key's image files live on this node, `bytes` their total size
  // (drives LRU eviction against the cache capacity). Hits refresh recency.
  CacheAdmit cache_admit(const std::string& key, const std::string& fs_prefix,
                         std::uint64_t bytes);
  bool cache_contains(const std::string& key) const {
    return cache_.contains(key);
  }
  // Forcibly remove `key` from the cache (snapshot quarantine: the cached
  // copy is poisoned). Returns the entry's fs prefix so the owner can drop
  // the node-local files, or empty if the key was not cached.
  std::string cache_drop(const std::string& key);
  // 0 = unbounded. Shrinking evicts immediately; evicted prefixes are
  // returned so the owner can drop the files.
  std::vector<std::string> set_cache_capacity(std::uint64_t bytes);
  std::uint64_t cache_capacity() const { return cache_capacity_; }
  std::uint64_t cache_bytes() const { return cache_bytes_; }
  std::size_t cache_entries() const { return cache_.size(); }

  // --- node-local content-addressed page store (DESIGN.md §6f) -------------
  // Replaces the file-grain cache above when the platform runs with
  // page_store on: dedup-aware delta transfer plus frozen restore templates.
  criu::PageStore& store() { return store_; }
  const criu::PageStore& store() const { return store_; }

  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }

 private:
  struct CacheEntry {
    std::string fs_prefix;
    std::uint64_t bytes = 0;
  };

  std::vector<std::string> evict_to_fit();

  NodeId id_ = 0;
  std::string name_;
  std::uint64_t mem_capacity_ = 0;
  std::uint64_t mem_used_ = 0;
  std::uint32_t replicas_ = 0;
  std::uint32_t cpus_ = 1;
  NodeState state_ = NodeState::kReady;
  std::vector<sim::TimePoint> core_free_;
  std::map<std::string, CacheEntry> cache_;
  std::vector<std::string> cache_lru_;  // front = least recently used
  std::uint64_t cache_capacity_ = 0;
  std::uint64_t cache_bytes_ = 0;
  criu::PageStore store_;
  NodeStats stats_;
};

// --- placement -------------------------------------------------------------

enum class PlacementPolicy : std::uint8_t {
  kWorstFit,         // most free memory first (the seed's behaviour)
  kRoundRobin,       // rotate across schedulable nodes
  kSnapshotLocality  // prefer nodes whose cache already holds the snapshot
};

const char* placement_policy_name(PlacementPolicy policy);

struct PlacementRequest {
  std::uint64_t mem_bytes = 0;
  // Snapshot cache key ("<function>/<policy tag>"); empty for vanilla
  // replicas (locality then degrades to worst-fit for the request).
  std::string snapshot_key;
  // Page digests of the snapshot's payload (page-store mode). When set, the
  // locality policy scores nodes by the unique bytes their store is missing
  // instead of by whole-file cache membership — a node sharing most of the
  // image through another function's snapshot is nearly as good as one that
  // restored this very snapshot. Unset (null data) = file-grain scoring.
  // Borrowed from the snapshot's ImageDir decode cache (zero-copy, §6g);
  // valid for the placement call, not for storage.
  std::span<const std::uint64_t> snapshot_digests;
  // Node the placement must avoid (kNoNode = none): a migration destination
  // must differ from its source even when the source has the most room.
  NodeId exclude = kNoNode;
};

class Scheduler {
 public:
  explicit Scheduler(PlacementPolicy policy = PlacementPolicy::kWorstFit)
      : policy_{policy} {}

  PlacementPolicy policy() const { return policy_; }
  void set_policy(PlacementPolicy policy) { policy_ = policy; }

  // Pick a schedulable node with room for the request, or nullptr.
  WorkerNode* pick(std::vector<WorkerNode>& nodes,
                   const PlacementRequest& request);

 private:
  WorkerNode* pick_worst_fit(std::vector<WorkerNode>& nodes,
                             const PlacementRequest& request);

  PlacementPolicy policy_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace prebake::faas
