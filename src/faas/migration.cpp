#include "faas/migration.hpp"

#include <algorithm>
#include <utility>

#include "os/faults.hpp"

namespace prebake::faas {

Migrator::PreDump Migrator::pre_dump(
    os::Pid pid, std::span<const criu::ImageDir* const> chain) {
  os::Kernel& k = *kernel_;
  // The dump-fault draw comes before any work: a source dying mid-round
  // leaves no usable link, and the caller must keep serving locally.
  if (k.faults().fires(faults::FaultSite::kMigrationDumpFault))
    throw MigrationError{MigrationErrorKind::kSourceLost,
                         "migration: source failed during pre-dump round"};
  criu::DumpOptions opts;
  opts.pre_dump = true;
  opts.parent_chain = chain;
  opts.payload_mode = criu::PayloadMode::kDigest;
  criu::DumpResult r = criu::Dumper{k}.dump(pid, opts);
  PreDump out;
  out.dumped_pages = r.stats.pages_dumped;
  out.link = std::make_unique<criu::ImageDir>(std::move(r.images));
  return out;
}

criu::DumpResult Migrator::final_dump(
    os::Pid pid, std::span<const criu::ImageDir* const> chain,
    std::uint32_t warmup_requests) {
  os::Kernel& k = *kernel_;
  if (k.faults().fires(faults::FaultSite::kMigrationDumpFault))
    throw MigrationError{MigrationErrorKind::kSourceLost,
                         "migration: source failed during final dump"};
  criu::DumpOptions opts;
  // leave_running: the frozen source is killed only after the destination
  // resumed; until then it is the abort-to-local fallback.
  opts.leave_running = true;
  opts.parent_chain = chain;
  opts.payload_mode = criu::PayloadMode::kDigest;
  opts.warmup_requests = warmup_requests;
  return criu::Dumper{k}.dump(pid, opts);
}

Migrator::Shipped Migrator::ship_link(const criu::ImageDir& link,
                                      criu::PageStore* dest_store) {
  os::Kernel& k = *kernel_;
  const os::CostModel& costs = k.costs();
  Shipped out;

  // Metadata (inventory, core, mm, pagemap, files, stats) always ships
  // whole; only the page payload is delta-negotiable.
  std::uint64_t metadata_bytes = 0;
  std::uint64_t payload_nominal = 0;
  for (const auto& [name, f] : link.files()) {
    if (name == "pages-1.img")
      payload_nominal = f.nominal_size;
    else
      metadata_bytes += f.nominal_size;
  }

  std::uint64_t payload_bytes = payload_nominal;
  const criu::ImageDir::Decoded& dec = link.decoded();
  if (dest_store != nullptr && config_.delta_transfer && dec.pages &&
      dec.pages->page_count() > 0 &&
      dec.pages->mode() == criu::PayloadMode::kDigest) {
    // Digest handshake mirroring the registry path (criu/restore.cpp):
    // one RTT + the digest list, then only the pages the destination's
    // content-addressed store is missing cross the wire.
    const std::span<const std::uint64_t> digests = dec.pages->digests();
    const std::uint64_t digest_bytes = digests.size() * sizeof(std::uint64_t);
    k.sim().advance(costs.network_rtt);
    k.sim().advance(costs.network_fetch_cost(digest_bytes));
    const std::uint64_t missing = dest_store->missing_unique_pages(digests);
    const std::uint64_t hit = digests.size() - missing;
    payload_bytes = missing * os::kPageSize;
    criu::PageStoreStats& st = dest_store->stats_mut();
    st.hit_pages += hit;
    st.miss_pages += missing;
    st.delta_bytes += payload_bytes;
    st.digest_bytes += digest_bytes;
    dest_store->insert(digests);
    out.bytes += digest_bytes;
  }

  const std::uint64_t wire_bytes = metadata_bytes + payload_bytes;
  k.sim().advance(costs.network_rtt);
  if (wire_bytes > 0) k.sim().advance(costs.network_fetch_cost(wire_bytes));
  out.bytes += wire_bytes;

  // Corruption is detected on arrival by the link's CRC trailer — the link
  // is rejected whole. Reported, not thrown: for a pre-copy link the chain
  // is merely degraded (fall back to a full dump); only the caller knows.
  out.corrupt = k.faults().fires(faults::FaultSite::kMigrationLinkCorrupt);
  return out;
}

sim::Duration Migrator::apply_cost(const criu::ImageDir& link) const {
  const os::CostModel& costs = kernel_->costs();
  const criu::ImageDir::Decoded& dec = link.decoded();
  std::uint64_t pages = 0;
  if (dec.pages) {
    pages = dec.pages->page_count();
  } else {
    const auto it = link.files().find("pages-1.img");
    if (it != link.files().end())
      pages = it->second.nominal_size / os::kPageSize;
  }
  const std::uint64_t bytes = pages * os::kPageSize;
  return costs.page_cache_read_cost(bytes) + costs.memcpy_cost(bytes) +
         costs.pagemap_per_page * static_cast<double>(pages);
}

sim::Duration Migrator::resume_cost() const {
  const os::CostModel& costs = kernel_->costs();
  return costs.freeze_per_thread + costs.ptrace_attach + costs.parasite_cure;
}

criu::RestoreResult Migrator::restore_at(
    std::span<const criu::ImageDir* const> chain, os::Cap criu_caps) {
  criu::RestoreOptions opts;
  // Shipped links live in destination memory: no storage read is charged
  // beyond decode + mapping (fs_prefix stays empty), which is exactly the
  // latency edge live migration has over a cold registry re-restore.
  opts.criu_caps = criu_caps;
  opts.restore_original_pid = false;
  return criu::Restorer{*kernel_}.restore_chain(chain, opts);
}

}  // namespace prebake::faas
