#include "faas/trace_source.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace prebake::faas {

PoissonTraceSource::PoissonTraceSource(std::string function, double rate_hz,
                                       sim::Duration duration,
                                       std::uint64_t seed)
    : function_(std::move(function)),
      rate_hz_(rate_hz),
      duration_(duration),
      rng_(seed) {
  if (rate_hz <= 0.0)
    throw std::invalid_argument{"PoissonTraceSource: rate must be > 0"};
}

std::optional<TraceEvent> PoissonTraceSource::next() {
  if (done_) return std::nullopt;
  at_ += sim::Duration::seconds_f(rng_.exponential(1.0 / rate_hz_));
  if (at_ >= duration_) {
    done_ = true;
    return std::nullopt;
  }
  return TraceEvent{at_, function_};
}

DiurnalTraceSource::DiurnalTraceSource(std::string function,
                                       double base_rate_hz,
                                       double peak_rate_hz,
                                       sim::Duration period,
                                       sim::Duration duration,
                                       std::uint64_t seed)
    : function_(std::move(function)),
      base_rate_hz_(base_rate_hz),
      peak_rate_hz_(peak_rate_hz),
      period_(period),
      duration_(duration),
      rng_(seed) {
  // A peak below the base would make the thinning acceptance ratio exceed 1
  // and silently distort the rate — reject it loudly, with both values.
  if (base_rate_hz < 0.0 || peak_rate_hz < base_rate_hz)
    throw std::invalid_argument{
        "DiurnalTraceSource: need 0 <= base_rate_hz <= peak_rate_hz "
        "(base_rate_hz=" +
        std::to_string(base_rate_hz) +
        ", peak_rate_hz=" + std::to_string(peak_rate_hz) + ")"};
  if (period <= sim::Duration{})
    throw std::invalid_argument{"DiurnalTraceSource: period must be > 0"};
  if (peak_rate_hz <= 0.0) done_ = true;  // zero rate: empty stream
}

std::optional<TraceEvent> DiurnalTraceSource::next() {
  if (done_) return std::nullopt;
  // Lewis-Shedler thinning against the peak rate, trough at t=0.
  const double mid = (base_rate_hz_ + peak_rate_hz_) / 2.0;
  const double amp = (peak_rate_hz_ - base_rate_hz_) / 2.0;
  while (true) {
    at_ += sim::Duration::seconds_f(rng_.exponential(1.0 / peak_rate_hz_));
    if (at_ >= duration_) {
      done_ = true;
      return std::nullopt;
    }
    const double phase =
        2.0 * std::numbers::pi * (at_.to_seconds() / period_.to_seconds());
    const double rate = mid - amp * std::cos(phase);
    if (rng_.uniform() * peak_rate_hz_ <= rate)
      return TraceEvent{at_, function_};
  }
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: need n >= 1"};
  if (s < 0.0)
    throw std::invalid_argument{"ZipfSampler: exponent must be >= 0 (s=" +
                                std::to_string(s) + ")"};
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i) + 1.0, s);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding at the top end
}

std::uint32_t ZipfSampler::sample(sim::Rng& rng) const {
  const double u = rng.uniform();  // [0, 1)
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint32_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

ZipfTraceSource::ZipfTraceSource(ZipfTraceConfig config)
    : config_(std::move(config)),
      sampler_(config_.functions, config_.zipf_s),
      rng_(config_.seed) {
  if (config_.rate_hz <= 0.0)
    throw std::invalid_argument{"ZipfTraceSource: rate must be > 0"};
  if (config_.peak_rate_hz != 0.0 && config_.peak_rate_hz < config_.rate_hz)
    throw std::invalid_argument{
        "ZipfTraceSource: need rate_hz <= peak_rate_hz (rate_hz=" +
        std::to_string(config_.rate_hz) +
        ", peak_rate_hz=" + std::to_string(config_.peak_rate_hz) + ")"};
  if (config_.peak_rate_hz != 0.0 && config_.period <= sim::Duration{})
    throw std::invalid_argument{"ZipfTraceSource: period must be > 0"};
  names_.reserve(config_.functions);
  for (std::uint32_t i = 0; i < config_.functions; ++i)
    names_.push_back(config_.name_prefix + std::to_string(i));
}

std::optional<TraceEvent> ZipfTraceSource::next() {
  if (done_) return std::nullopt;
  if (config_.max_events != 0 && emitted_ >= config_.max_events) {
    done_ = true;
    return std::nullopt;
  }
  const bool diurnal = config_.peak_rate_hz > config_.rate_hz;
  const double peak = diurnal ? config_.peak_rate_hz : config_.rate_hz;
  const double mid = (config_.rate_hz + peak) / 2.0;
  const double amp = (peak - config_.rate_hz) / 2.0;
  while (true) {
    at_ += sim::Duration::seconds_f(rng_.exponential(1.0 / peak));
    if (at_ >= config_.duration) {
      done_ = true;
      return std::nullopt;
    }
    if (diurnal) {
      const double phase = 2.0 * std::numbers::pi *
                           (at_.to_seconds() / config_.period.to_seconds());
      const double rate = mid - amp * std::cos(phase);
      if (rng_.uniform() * peak > rate) continue;  // thinned out
    }
    ++emitted_;
    return TraceEvent{at_, names_[sampler_.sample(rng_)]};
  }
}

StreamReplayResult replay_trace_stream(Platform& platform, TraceSource& source,
                                       const StreamReplayOptions& options) {
  struct State {
    StreamReplayResult result;
    std::uint64_t answered = 0;
    bool exhausted = false;
    sim::TimePoint start;
  };
  auto state = std::make_shared<State>();
  sim::Simulation& sim = platform.kernel().sim();
  state->start = sim.now();

  const bool keep = options.keep_request_metrics;
  auto on_response = [state, keep](const funcs::Response& res,
                                   const RequestMetrics& m) {
    ++state->answered;
    StreamReplayResult& r = state->result;
    FunctionAggregate& fa = r.per_function[m.function];
    ++fa.requests;
    if (res.ok()) {
      ++r.responses_ok;
      ++fa.ok;
      RequestAggregate& agg = r.aggregate;
      ++agg.count;
      if (m.retries > 0) {
        ++agg.retried;
        agg.total_retries += m.retries;
      }
      const double total_ms = m.total.to_millis();
      agg.total_ms.record(total_ms);
      agg.service_ms.record(m.service.to_millis());
      agg.queue_wait_ms.record(m.queue_wait.to_millis());
      fa.total_ms_sum += total_ms;
      fa.total_ms_max = std::max(fa.total_ms_max, total_ms);
      fa.queue_wait_ms_sum += m.queue_wait.to_millis();
      if (m.cold_start) {
        ++agg.cold_starts;
        ++fa.cold_starts;
        agg.cold_startup_ms.record(m.startup.to_millis());
        fa.cold_startup_ms_sum += m.startup.to_millis();
      }
      if (m.fallback) {
        ++agg.fallback_serves;
        ++fa.fallback_serves;
        ++r.responses_fallback;
      }
    } else {
      ++r.responses_rejected;
      ++fa.rejected;
    }
    if (keep) r.metrics.push_back(m);
  };

  // Each fired arrival schedules its successor before invoking, so exactly
  // one un-fired arrival is pending at any time — the engine never sees the
  // whole trace.
  auto fire = std::make_shared<std::function<void(const TraceEvent&)>>();
  *fire = [state, &platform, &source, &sim, fire,
           on_response](const TraceEvent& e) {
    if (std::optional<TraceEvent> nxt = source.next()) {
      sim.schedule_at(state->start + nxt->at,
                      [fire, ev = std::move(*nxt)] { (*fire)(ev); });
    } else {
      state->exhausted = true;
    }
    ++state->result.events;
    platform.invoke(
        e.function,
        funcs::sample_request(
            platform.registry().get(e.function).spec.handler_id),
        on_response);
  };

  if (std::optional<TraceEvent> first = source.next()) {
    sim.schedule_at(state->start + first->at,
                    [fire, ev = std::move(*first)] { (*fire)(ev); });
  } else {
    state->exhausted = true;
  }

  std::uint64_t steps = 0;
  const std::uint64_t mask =
      options.sample_every == 0 ? 0 : options.sample_every;
  auto sample = [&] {
    StreamReplayResult& r = state->result;
    r.peak_pending_events = std::max(r.peak_pending_events,
                                     sim.pending_events());
    r.peak_replicas = std::max(r.peak_replicas,
                               platform.total_replica_count());
  };
  while (!state->exhausted || state->answered < state->result.events) {
    if (!sim.step()) break;
    if (mask != 0 && (++steps % mask) == 0) sample();
  }
  if (mask != 0) sample();

  state->result.makespan = sim.now() - state->start;
  // The arrival chain holds `fire` via shared_ptr in its own closure; break
  // the cycle so a partially drained replay doesn't leak it.
  *fire = nullptr;
  return std::move(state->result);
}

}  // namespace prebake::faas
