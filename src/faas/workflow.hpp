// Workflow Management layer (the third SPEC-RG layer, Section 2): function
// composition. A workflow chains functions; each stage's response body feeds
// the next stage's request. Cold starts compound across stages — a freshly
// scaled N-stage pipeline pays N sequential start-ups on its critical path,
// which is exactly where prebaking's per-replica savings multiply.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "faas/platform.hpp"

namespace prebake::faas {

struct WorkflowSpec {
  std::string name;
  // Function names invoked in order; every stage must be deployed.
  std::vector<std::string> stages;
};

struct WorkflowMetrics {
  std::string workflow;
  sim::Duration total;
  std::vector<RequestMetrics> stages;
  std::uint32_t cold_starts = 0;
};

using WorkflowCallback =
    std::function<void(const funcs::Response&, const WorkflowMetrics&)>;

class WorkflowEngine {
 public:
  explicit WorkflowEngine(Platform& platform) : platform_{&platform} {}

  // Validates that every stage is deployed before accepting the workflow.
  void register_workflow(WorkflowSpec spec);
  bool has(const std::string& name) const { return workflows_.contains(name); }
  const WorkflowSpec& get(const std::string& name) const;

  // Execute the chain; the callback fires with the last stage's response
  // (or the first non-2xx response, which aborts the chain).
  void run(const std::string& name, funcs::Request input,
           WorkflowCallback callback);

 private:
  void run_stage(const WorkflowSpec& spec, std::size_t index,
                 funcs::Request input, sim::TimePoint started,
                 std::shared_ptr<WorkflowMetrics> metrics,
                 WorkflowCallback callback);

  Platform* platform_;
  std::map<std::string, WorkflowSpec> workflows_;
};

}  // namespace prebake::faas
