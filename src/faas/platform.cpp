#include "faas/platform.hpp"

#include <stdexcept>

namespace prebake::faas {

Platform::Platform(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
                   PlatformConfig config, std::uint64_t seed)
    : kernel_{&kernel},
      startup_{kernel, std::move(runtime_costs), assets_},
      containers_{kernel, config.container_costs},
      builder_{kernel, startup_},
      config_{config},
      rng_{seed} {}

void Platform::deploy(rt::FunctionSpec spec, StartMode mode,
                      core::SnapshotPolicy policy) {
  std::optional<core::PrebakeConfig> prebake;
  if (mode == StartMode::kPrebaked) {
    core::PrebakeConfig cfg;
    cfg.policy = policy;
    prebake = cfg;
  }
  BuildResult built = builder_.build(std::move(spec), prebake,
                                     rng_.child(registry_.size() + 7));

  RegisteredFunction fn;
  fn.spec = std::move(built.spec);
  fn.mode = mode;
  fn.policy = policy;
  fn.build_time = built.build_time;
  if (built.snapshot.has_value()) snapshots_.put(std::move(*built.snapshot));
  registry_.put(std::move(fn));
}

Platform::Replica* Platform::find_idle(const std::string& function) {
  for (auto& r : replicas_)
    if (r->function == function && r->state == ReplicaState::kIdle) return r.get();
  return nullptr;
}

std::uint32_t Platform::replica_count(const std::string& function) const {
  std::uint32_t n = 0;
  for (const auto& r : replicas_)
    if (r->function == function) ++n;
  return n;
}

std::uint32_t Platform::idle_replica_count(const std::string& function) const {
  std::uint32_t n = 0;
  for (const auto& r : replicas_)
    if (r->function == function && r->state == ReplicaState::kIdle) ++n;
  return n;
}

Platform::Replica* Platform::start_replica(const std::string& function,
                                           bool prewarmed) {
  const RegisteredFunction& fn = registry_.get(function);
  if (replica_count(function) >= config_.max_replicas_per_function)
    return nullptr;

  // Estimate the placement footprint: snapshot size (prebaked) or class +
  // runtime footprint (vanilla), plus the container overhead.
  std::uint64_t est = config_.replica_mem_overhead;
  if (fn.mode == StartMode::kPrebaked) {
    est += snapshots_.get(function, fn.policy).images.nominal_total();
  } else {
    est += 16ull * 1024 * 1024 + fn.spec.total_class_bytes() * 2 +
           fn.spec.init_extra_resident;
  }
  const std::optional<NodeId> node = resources_.place(est);
  if (!node.has_value()) return nullptr;

  auto replica = std::make_unique<Replica>();
  replica->id = next_replica_id_++;
  replica->function = function;
  replica->node = *node;
  replica->mem_bytes = est;
  replica->prewarmed = prewarmed;

  if (config_.containerized) {
    // Provision the execution environment first (Section 2, component 1).
    // The image layers: runtime binary + the function's class archive.
    std::vector<std::string> layers{fn.spec.runtime_binary};
    if (!fn.spec.classpath_archive.empty())
      layers.push_back(fn.spec.classpath_archive);
    replica->container = containers_.create(
        function + "-" + std::to_string(replica->id), std::move(layers), est,
        /*privileged=*/fn.mode == StartMode::kPrebaked);
  }

  sim::Rng rng = rng_.child(replica->id * 1315423911ULL);
  if (fn.mode == StartMode::kPrebaked) {
    // A corrupt or missing snapshot must degrade availability, not destroy
    // it: fall back to the fork-exec path and count the incident.
    try {
      const core::BakedSnapshot& snap = snapshots_.get(function, fn.policy);
      replica->proc = startup_.start_prebaked(fn.spec, snap.images,
                                              snap.fs_prefix, rng.child(0));
    } catch (const std::exception&) {
      ++stats_.restore_fallbacks;
      replica->proc = startup_.start_vanilla(fn.spec, rng.child(1));
    }
  } else {
    replica->proc = startup_.start_vanilla(fn.spec, std::move(rng));
  }
  if (replica->container.has_value()) {
    containers_.attach(*replica->container, replica->proc.pid);
    if (const auto oom = containers_.enforce_memory_limit(*replica->container)) {
      ++stats_.oom_kills;
      containers_.destroy(*replica->container);
      resources_.release(*node, est);
      return nullptr;
    }
  }
  replica->state = ReplicaState::kIdle;
  replica->idle_since = kernel_->sim().now();
  ++stats_.replicas_started;

  replicas_.push_back(std::move(replica));
  Replica* out = replicas_.back().get();
  arm_idle_timer(*out);
  return out;
}

void Platform::invoke(const std::string& function, funcs::Request req,
                      InvokeCallback callback) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::invoke: unknown function " + function};
  ++stats_.invocations;
  queues_[function].push_back(
      Pending{std::move(req), std::move(callback), kernel_->sim().now()});

  if (find_idle(function) == nullptr) {
    // Cold start: no ready replica for this event (Figure 1's flow).
    if (start_replica(function) == nullptr &&
        queues_[function].size() > 4 * config_.max_replicas_per_function) {
      // Saturated: reject to keep the queue bounded.
      Pending p = std::move(queues_[function].back());
      queues_[function].pop_back();
      ++stats_.rejected;
      funcs::Response res;
      res.status = 503;
      res.body = "no capacity";
      RequestMetrics m;
      m.function = function;
      m.arrival = p.arrival;
      p.callback(res, m);
      return;
    }
  }
  dispatch(function);
}

void Platform::scale_up(const std::string& function, std::uint32_t count) {
  while (idle_replica_count(function) < count)
    if (start_replica(function, /*prewarmed=*/true) == nullptr) break;
}

void Platform::set_min_idle(const std::string& function, std::uint32_t count) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::set_min_idle: unknown function " + function};
  min_idle_[function] = count;
  scale_up(function, count);
}

void Platform::dispatch(const std::string& function) {
  auto& queue = queues_[function];
  while (!queue.empty()) {
    Replica* replica = find_idle(function);
    if (replica == nullptr) return;
    Pending pending = std::move(queue.front());
    queue.pop_front();
    serve(*replica, std::move(pending));
  }
}

void Platform::serve(Replica& replica, Pending pending) {
  replica.state = ReplicaState::kBusy;
  ++replica.idle_epoch;  // cancel any pending idle timeout logically

  RequestMetrics metrics;
  metrics.function = replica.function;
  metrics.arrival = pending.arrival;
  metrics.queue_wait = kernel_->sim().now() - pending.arrival;
  // A cold start is a request that had to wait for a replica to be created
  // on its behalf; pre-warmed pool replicas serve warm (Lin & Glikson [14]).
  if (!replica.served_any && !replica.prewarmed) {
    metrics.cold_start = true;
    metrics.startup = replica.proc.breakdown.total;
    ++stats_.cold_starts;
  }
  replica.served_any = true;

  // Execute the real handler synchronously to *measure* its duration, then
  // rewind and re-emit the completion as an event, so the replica stays Busy
  // across the service window and concurrent arrivals trigger scale-out
  // (one request per replica, as in public clouds — Section 4.1).
  const sim::TimePoint service_start = kernel_->sim().now();
  const funcs::Response response = replica.proc.runtime->handle(pending.req);
  const sim::TimePoint service_end = kernel_->sim().now();
  metrics.service = service_end - service_start;
  metrics.total = service_end - pending.arrival;
  kernel_->sim().rewind_to(service_start);

  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_at(
      service_end,
      [this, id, response, metrics, callback = std::move(pending.callback)] {
        request_log_.push_back(metrics);
        // Release the replica before delivering the response so a chained
        // invocation (workflow stages) can reuse it immediately.
        std::string function;
        for (auto& r : replicas_) {
          if (r->id != id) continue;
          r->state = ReplicaState::kIdle;
          r->idle_since = kernel_->sim().now();
          arm_idle_timer(*r);
          function = r->function;
          break;
        }
        callback(response, metrics);
        if (!function.empty()) dispatch(function);
      });
}

void Platform::arm_idle_timer(Replica& replica) {
  const std::uint64_t epoch = ++replica.idle_epoch;
  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_in(config_.idle_timeout, [this, id, epoch] {
    for (auto& r : replicas_) {
      if (r->id != id) continue;
      if (r->state != ReplicaState::kIdle || r->idle_epoch != epoch) return;
      // The warm pool floor is exempt from idle reclaim. No re-arm: the
      // replica sits in the pool until it serves again (serving re-arms on
      // completion); re-arming here would tick forever on an idle system.
      const auto it = min_idle_.find(r->function);
      if (it != min_idle_.end() && idle_replica_count(r->function) <= it->second)
        return;
      reclaim(*r);
      return;
    }
  });
}

void Platform::reclaim(Replica& replica) {
  if (replica.container.has_value()) containers_.destroy(*replica.container);
  startup_.reclaim(replica.proc);
  resources_.release(replica.node, replica.mem_bytes);
  ++stats_.replicas_reclaimed;
  const std::uint64_t id = replica.id;
  std::erase_if(replicas_, [id](const auto& r) { return r->id == id; });
}

}  // namespace prebake::faas
