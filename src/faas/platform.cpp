#include "faas/platform.hpp"

#include <algorithm>
#include <stdexcept>

namespace prebake::faas {

Platform::Platform(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
                   PlatformConfig config, std::uint64_t seed)
    : kernel_{&kernel},
      startup_{kernel, std::move(runtime_costs), assets_},
      containers_{kernel, config.container_costs},
      builder_{kernel, startup_},
      config_{config},
      rng_{seed} {}

void Platform::deploy(rt::FunctionSpec spec, StartMode mode,
                      core::SnapshotPolicy policy) {
  std::optional<core::PrebakeConfig> prebake;
  if (mode == StartMode::kPrebaked) {
    core::PrebakeConfig cfg;
    cfg.policy = policy;
    prebake = cfg;
  }
  BuildResult built = builder_.build(std::move(spec), prebake,
                                     rng_.child(registry_.size() + 7));

  RegisteredFunction fn;
  fn.spec = std::move(built.spec);
  fn.mode = mode;
  fn.policy = policy;
  fn.build_time = built.build_time;
  if (built.snapshot.has_value()) snapshots_.put(std::move(*built.snapshot));
  registry_.put(std::move(fn));
}

Platform::Replica* Platform::find_idle(const std::string& function) {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return nullptr;
  // Creation order, first idle wins — the selection the fleet-wide scan of
  // the original implementation made.
  for (Replica* r : it->second)
    if (r->state == ReplicaState::kIdle) return r;
  return nullptr;
}

Platform::Replica* Platform::find_replica(std::uint64_t id) {
  const auto it = replicas_.find(id);
  return it == replicas_.end() ? nullptr : it->second.get();
}

std::uint32_t Platform::replica_count(const std::string& function) const {
  const auto it = by_function_.find(function);
  return it == by_function_.end() ? 0u
                                  : static_cast<std::uint32_t>(it->second.size());
}

std::uint32_t Platform::idle_replica_count(const std::string& function) const {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return 0;
  std::uint32_t n = 0;
  for (const Replica* r : it->second)
    if (r->state == ReplicaState::kIdle) ++n;
  return n;
}

std::uint32_t Platform::starting_replica_count(
    const std::string& function) const {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return 0;
  std::uint32_t n = 0;
  for (const Replica* r : it->second)
    if (r->state == ReplicaState::kStarting) ++n;
  return n;
}

void Platform::note_mem_change(std::int64_t delta) {
  const sim::TimePoint now = kernel_->sim().now();
  mem_byte_seconds_ +=
      static_cast<double>(fleet_mem_bytes_) * (now - mem_mark_).to_seconds();
  mem_mark_ = now;
  fleet_mem_bytes_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(fleet_mem_bytes_) + delta);
}

std::string Platform::node_image_prefix(NodeId node,
                                        const std::string& fs_prefix) const {
  return "/node/" + resources_.node(node).name() + fs_prefix;
}

Platform::Replica* Platform::start_replica(const std::string& function,
                                           bool prewarmed) {
  const RegisteredFunction& fn = registry_.get(function);
  if (replica_count(function) >= config_.max_replicas_per_function)
    return nullptr;

  // Estimate the placement footprint: snapshot size (prebaked) or class +
  // runtime footprint (vanilla), plus the container overhead. A snapshot
  // evicted from the store degrades to a Vanilla start, not an outage.
  const core::BakedSnapshot* snap = nullptr;
  std::uint64_t est = config_.replica_mem_overhead;
  if (fn.mode == StartMode::kPrebaked) {
    // A quarantined snapshot is off limits: the breaker tripped on repeated
    // restore failures and a re-bake is in flight. Start Vanilla meanwhile.
    const auto health = snapshot_health_.find(function);
    const bool quarantined =
        health != snapshot_health_.end() && health->second.quarantined;
    if (!quarantined) {
      try {
        snap = &snapshots_.get(function, fn.policy);
        est += snap->images.nominal_total();
      } catch (const std::exception&) {
        snap = nullptr;
      }
    }
  }
  if (snap == nullptr)
    est += 16ull * 1024 * 1024 + fn.spec.total_class_bytes() * 2 +
           fn.spec.init_extra_resident;

  PlacementRequest request;
  request.mem_bytes = est;
  if (snap != nullptr) request.snapshot_key = snap->fs_prefix;
  if (config_.page_store && snap != nullptr && snap->images.decoded().pages)
    request.snapshot_digests = snap->images.decoded().pages->digests();
  const std::optional<NodeId> node = resources_.place(request);
  if (!node.has_value()) return nullptr;
  note_mem_change(static_cast<std::int64_t>(est));

  obs::Tracer& tr = kernel_->trace();
  {
    obs::Span placed = tr.instant("placement", "faas");
    placed.attr("function", function);
    placed.attr("node", resources_.node(*node).name());
    placed.attr("mem_bytes", est);
  }

  auto replica = std::make_unique<Replica>();
  replica->id = next_replica_id_++;
  replica->function = function;
  replica->node = *node;
  replica->mem_bytes = est;
  replica->prewarmed = prewarmed;

  // The start-up work (container provisioning, restore or fork-exec, app
  // init) is measured inline against the kernel — its side effects (page
  // cache warmth, process creation) apply now, in call order — then the
  // clock is rewound and the elapsed work is queued on the owning node's
  // CPU timeline; the replica becomes idle at the node's completion time.
  // The replica-start span covers the measured window (ended explicitly at
  // t_end before the rewind), with the core start.* spans nested inside.
  const sim::TimePoint t0 = kernel_->sim().now();
  obs::Span start_span = tr.span("replica-start", "faas");
  start_span.attr("function", function);
  start_span.attr("node", resources_.node(*node).name());

  if (config_.containerized) {
    // Provision the execution environment first (Section 2, component 1).
    // The image layers: runtime binary + the function's class archive.
    std::vector<std::string> layers{fn.spec.runtime_binary};
    if (!fn.spec.classpath_archive.empty())
      layers.push_back(fn.spec.classpath_archive);
    replica->container = containers_.create(
        function + "-" + std::to_string(replica->id), std::move(layers), est,
        /*privileged=*/fn.mode == StartMode::kPrebaked);
  }

  sim::Rng rng = rng_.child(replica->id * 1315423911ULL);
  if (fn.mode == StartMode::kPrebaked && snap != nullptr) {
    // A corrupt or missing snapshot must degrade availability, not destroy
    // it: fall back to the fork-exec path and count the incident.
    try {
      core::PrebakedStartOptions opts;
      opts.restore.lazy_pages = config_.lazy_restore;
      opts.restore.lazy_working_set = config_.lazy_working_set;
      opts.policy.max_attempts = config_.restore_max_attempts;
      opts.policy.retry_backoff = config_.restore_retry_backoff;
      opts.policy.deadline = config_.restore_deadline;
      // StartupService handles the fallback so the breakdown records the
      // attempt count and the fallback flag; the catch below stays as the
      // safety net for non-restore failures.
      opts.policy.fallback_to_vanilla = true;
      if (config_.remote_registry) {
        WorkerNode& wn = resources_.node_mut(*node);
        const std::string local = node_image_prefix(*node, snap->fs_prefix);
        if (!config_.page_store) {
          // File-grain LRU cache (legacy): whole image dirs are admitted and
          // evicted together. The page store supersedes this — page records
          // are budgeted individually there.
          if (config_.node_snapshot_cache_bytes > 0 && wn.cache_capacity() == 0)
            wn.set_cache_capacity(config_.node_snapshot_cache_bytes);
          const WorkerNode::CacheAdmit admit = wn.cache_admit(
              snap->fs_prefix, local, snap->images.nominal_total());
          {
            obs::Span cache_span = tr.instant(
                admit.hit ? "snapshot-cache.hit" : "snapshot-cache.miss",
                "faas");
            cache_span.attr("function", function);
            tr.count(admit.hit ? "faas.snapshot_cache.hits"
                               : "faas.snapshot_cache.misses");
          }
          for (const std::string& prefix : admit.evicted_prefixes)
            for (const std::string& path : kernel_->fs().list(prefix))
              kernel_->fs().remove(path);
        }
        // Materialize the node-local image files; ones never fetched (or
        // evicted above) start cold, so the restore pays the registry
        // transfer for exactly the uncached bytes. The materialization
        // itself can be cut short (kTruncatedWrite): the restore detects
        // the short file and fails typed, and the breaker heals the node
        // copy via quarantine + re-bake.
        for (const auto& [name, f] : snap->images.files()) {
          const std::string path = local + name;
          if (!kernel_->fs().exists(path)) {
            kernel_->fs().create(path, f.nominal_size);
            if (f.nominal_size > 0 && kernel_->faults().enabled() &&
                kernel_->faults().fires(faults::FaultSite::kTruncatedWrite))
              kernel_->fs().truncate(path, f.nominal_size / 2);
          }
        }
        opts.restore.fs_prefix = local;
        opts.restore.remote_fetch = true;
      } else {
        opts.restore.fs_prefix = snap->fs_prefix;
      }
      if (config_.page_store) {
        WorkerNode& wn = resources_.node_mut(*node);
        if (config_.node_page_store_bytes > 0 && wn.store().capacity() == 0)
          wn.store().set_capacity(config_.node_page_store_bytes);
        opts.restore.page_store = &wn.store();
        opts.restore.store_key = opts.restore.fs_prefix;
      }
      replica->proc = startup_.start_prebaked(fn.spec, snap->images, opts,
                                              rng.child(0));
      if (config_.remote_registry)
        resources_.node_mut(*node).stats().remote_bytes_fetched +=
            replica->proc.remote_bytes_fetched;
      if (config_.page_store) {
        NodeStats& ns = resources_.node_mut(*node).stats();
        ns.store_hit_pages += replica->proc.store_hit_pages;
        ns.store_delta_bytes += replica->proc.store_delta_bytes;
        if (replica->proc.template_clone) {
          // Served from the node's frozen template: the page-store analogue
          // of a snapshot cache hit.
          ++ns.template_clones;
          ++ns.snapshot_hits;
        } else if (!replica->proc.breakdown.fell_back_to_vanilla) {
          ++ns.snapshot_misses;
        }
      }
      if (replica->proc.breakdown.restore_attempts > 1)
        stats_.restore_retries += replica->proc.breakdown.restore_attempts - 1;
      if (replica->proc.breakdown.fell_back_to_vanilla) {
        ++stats_.restore_fallbacks;
        note_restore_failure(function);
      } else if (const auto it = snapshot_health_.find(function);
                 it != snapshot_health_.end()) {
        it->second.consecutive_failures = 0;  // breaker counts *consecutive*
      }
    } catch (const std::exception&) {
      ++stats_.restore_fallbacks;
      note_restore_failure(function);
      replica->proc = startup_.start_vanilla(fn.spec, rng.child(1));
      replica->proc.breakdown.fell_back_to_vanilla = true;
    }
  } else if (fn.mode == StartMode::kPrebaked) {
    ++stats_.restore_fallbacks;
    replica->proc = startup_.start_vanilla(fn.spec, rng.child(1));
    replica->proc.breakdown.fell_back_to_vanilla = true;
  } else {
    replica->proc = startup_.start_vanilla(fn.spec, std::move(rng));
  }

  if (replica->container.has_value()) {
    containers_.attach(*replica->container, replica->proc.pid);
    if (const auto oom = containers_.enforce_memory_limit(*replica->container)) {
      ++stats_.oom_kills;
      containers_.destroy(*replica->container);
      const sim::TimePoint t_end = kernel_->sim().now();
      start_span.attr("oom_killed", "true");
      start_span.end_at(t_end);
      kernel_->sim().rewind_to(t0);
      resources_.node_mut(*node).run(t0, t_end - t0);  // the work still ran
      resources_.release(*node, est);
      note_mem_change(-static_cast<std::int64_t>(est));
      return nullptr;
    }
  }

  if (replica->proc.breakdown.restore_attempts > 1)
    tr.count("faas.restore_retries",
             replica->proc.breakdown.restore_attempts - 1);
  const sim::TimePoint t_end = kernel_->sim().now();
  start_span.end_at(t_end);
  kernel_->sim().rewind_to(t0);
  const sim::TimePoint ready_at =
      resources_.node_mut(*node).run(t0, t_end - t0);

  // Injected worker crash mid-restore (kNodeCrash, one draw per prebaked
  // start): the node dies halfway through this replica's start window.
  // fail_node kills everything on it and re-queues in-flight work; the
  // request that triggered this start is still queued and gets re-served
  // elsewhere via ensure_capacity.
  if (fn.mode == StartMode::kPrebaked && snap != nullptr &&
      kernel_->faults().enabled() &&
      kernel_->faults().fires(faults::FaultSite::kNodeCrash)) {
    const NodeId crashed = *node;
    const sim::TimePoint crash_at = t0 + (t_end - t0) * 0.5;
    kernel_->sim().schedule_at(crash_at,
                               [this, crashed] { crash_node(crashed); });
  }

  replica->state = ReplicaState::kStarting;
  ++stats_.replicas_started;
  Replica* out = replica.get();
  const std::uint64_t id = out->id;
  replicas_.emplace(id, std::move(replica));
  by_function_[function].push_back(out);
  kernel_->sim().schedule_at(ready_at, [this, id] { on_replica_ready(id); });
  return out;
}

void Platform::on_replica_ready(std::uint64_t id) {
  Replica* replica = find_replica(id);
  if (replica == nullptr || replica->state != ReplicaState::kStarting) return;
  const WorkerNode& wn = resources_.node(replica->node);
  if (wn.state() == NodeState::kFailed) return;  // fail_node owns cleanup
  if (wn.state() == NodeState::kDraining) {
    reclaim(*replica);
    return;
  }
  replica->state = ReplicaState::kIdle;
  replica->idle_since = kernel_->sim().now();
  arm_idle_timer(*replica);
  dispatch(replica->function);
}

void Platform::invoke(const std::string& function, funcs::Request req,
                      InvokeCallback callback) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::invoke: unknown function " + function};
  ++stats_.invocations;
  const sim::TimePoint now = kernel_->sim().now();
  queues_[function].push_back(
      Pending{std::move(req), std::move(callback), now, now});

  if (find_idle(function) == nullptr) {
    // Cold start: no ready replica for this event (Figure 1's flow).
    if (start_replica(function) == nullptr &&
        queues_[function].size() > 4 * config_.max_replicas_per_function) {
      // Saturated: reject to keep the queue bounded.
      Pending p = std::move(queues_[function].back());
      queues_[function].pop_back();
      ++stats_.rejected;
      funcs::Response res;
      res.status = 503;
      res.body = "no capacity";
      RequestMetrics m;
      m.function = function;
      m.arrival = p.arrival;
      p.callback(res, m);
      return;
    }
  }
  dispatch(function);
}

void Platform::scale_up(const std::string& function, std::uint32_t count) {
  while (idle_replica_count(function) + starting_replica_count(function) <
         count)
    if (start_replica(function, /*prewarmed=*/true) == nullptr) break;
}

void Platform::set_min_idle(const std::string& function, std::uint32_t count) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::set_min_idle: unknown function " + function};
  min_idle_[function] = count;
  scale_up(function, count);
}

void Platform::dispatch(const std::string& function) {
  auto& queue = queues_[function];
  while (!queue.empty()) {
    Replica* replica = find_idle(function);
    if (replica == nullptr) return;
    Pending pending = std::move(queue.front());
    queue.pop_front();
    serve(*replica, std::move(pending));
  }
}

void Platform::serve(Replica& replica, Pending pending) {
  replica.state = ReplicaState::kBusy;
  ++replica.idle_epoch;  // cancel any pending idle timeout logically
  const std::uint64_t epoch = ++replica.serve_epoch;

  RequestMetrics metrics;
  metrics.function = replica.function;
  metrics.arrival = pending.arrival;
  metrics.retries = pending.retries;
  metrics.queue_wait = kernel_->sim().now() - pending.enqueued;
  metrics.node = replica.node;
  obs::Tracer& tr = kernel_->trace();
  {
    // Retroactive: the wait is only known once a replica picks the request
    // up, so the span is opened with the enqueue timestamp and closed now.
    obs::Span wait = tr.span_at("queue-wait", "faas", pending.enqueued);
    wait.attr("function", replica.function);
    if (pending.retries > 0)
      wait.attr("retries", static_cast<std::uint64_t>(pending.retries));
    tr.measure("faas.queue_wait_ms", metrics.queue_wait.to_millis());
  }
  // A cold start is a request that had to wait for a replica to be created
  // on its behalf; pre-warmed pool replicas serve warm (Lin & Glikson [14]).
  if (!replica.served_any && !replica.prewarmed) {
    metrics.cold_start = true;
    metrics.startup = replica.proc.breakdown.total;
    ++stats_.cold_starts;
  }
  // First serve off a replica whose start degraded to the Vanilla path
  // (failed restore / quarantine): the request got an answer, but not the
  // prebaked latency it was promised. Reported separately from queue
  // rejections, which never reach a replica at all.
  metrics.fallback =
      !replica.served_any && replica.proc.breakdown.fell_back_to_vanilla;
  replica.served_any = true;

  // Execute the real handler synchronously to *measure* its duration, then
  // rewind and queue the work on the node's CPU timeline, emitting the
  // completion as an event — the replica stays Busy across the service
  // window so concurrent arrivals trigger scale-out (one request per
  // replica, as in public clouds — Section 4.1).
  const sim::TimePoint service_start = kernel_->sim().now();
  obs::Span serve_span = tr.span("serve", "faas");
  serve_span.attr("function", replica.function);
  serve_span.attr("node", resources_.node(replica.node).name());
  if (metrics.cold_start) serve_span.attr("cold_start", "true");
  // A lazy (post-copy) restore left pages behind: the first touch of the
  // working set faults them in, billed to this request's service time.
  if (replica.proc.lazy_server != nullptr && !replica.proc.lazy_server->done())
    replica.proc.lazy_server->page_in_all();
  const funcs::Response response = replica.proc.runtime->handle(pending.req);
  const sim::TimePoint service_end = kernel_->sim().now();
  serve_span.end_at(service_end);
  kernel_->sim().rewind_to(service_start);
  const sim::TimePoint completion =
      resources_.node_mut(replica.node).run(service_start,
                                            service_end - service_start);

  metrics.service = service_end - service_start;
  metrics.total = completion - pending.arrival;
  replica.inflight = std::move(pending);

  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_at(completion, [this, id, epoch, response, metrics] {
    finish_serve(id, epoch, response, metrics);
  });
}

void Platform::finish_serve(std::uint64_t id, std::uint64_t serve_epoch,
                            const funcs::Response& response,
                            RequestMetrics metrics) {
  Replica* replica = find_replica(id);
  // A node failure between serve and completion re-queued the request; the
  // re-served copy delivers the response instead of this stale event.
  if (replica == nullptr || replica->serve_epoch != serve_epoch ||
      !replica->inflight.has_value())
    return;
  Pending pending = std::move(*replica->inflight);
  replica->inflight.reset();
  record_request(metrics);

  // Release the replica before delivering the response so a chained
  // invocation (workflow stages) can reuse it immediately.
  const std::string function = replica->function;
  if (resources_.node(replica->node).state() == NodeState::kDraining) {
    reclaim(*replica);
  } else {
    replica->state = ReplicaState::kIdle;
    replica->idle_since = kernel_->sim().now();
    arm_idle_timer(*replica);
  }
  pending.callback(response, metrics);
  dispatch(function);
}

void Platform::arm_idle_timer(Replica& replica) {
  const std::uint64_t epoch = ++replica.idle_epoch;
  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_in(config_.idle_timeout, [this, id, epoch] {
    Replica* r = find_replica(id);
    if (r == nullptr) return;
    if (r->state != ReplicaState::kIdle || r->idle_epoch != epoch) return;
    // The warm pool floor is exempt from idle reclaim. No re-arm: the
    // replica sits in the pool until it serves again (serving re-arms on
    // completion); re-arming here would tick forever on an idle system.
    const auto it = min_idle_.find(r->function);
    if (it != min_idle_.end() && idle_replica_count(r->function) <= it->second)
      return;
    reclaim(*r);
  });
}

void Platform::reclaim(Replica& replica) {
  if (replica.container.has_value()) containers_.destroy(*replica.container);
  startup_.reclaim(replica.proc);
  resources_.release(replica.node, replica.mem_bytes);
  note_mem_change(-static_cast<std::int64_t>(replica.mem_bytes));
  ++stats_.replicas_reclaimed;
  const std::uint64_t id = replica.id;
  auto& members = by_function_[replica.function];
  std::erase(members, &replica);
  replicas_.erase(id);
}

void Platform::record_request(const RequestMetrics& metrics) {
  if (!config_.aggregate_request_log) {
    request_log_.push_back(metrics);
    return;
  }
  ++aggregate_.count;
  if (metrics.fallback) ++aggregate_.fallback_serves;
  if (metrics.retries > 0) {
    ++aggregate_.retried;
    aggregate_.total_retries += metrics.retries;
  }
  aggregate_.total_ms.record(metrics.total.to_millis());
  aggregate_.service_ms.record(metrics.service.to_millis());
  aggregate_.queue_wait_ms.record(metrics.queue_wait.to_millis());
  if (metrics.cold_start) {
    ++aggregate_.cold_starts;
    aggregate_.cold_startup_ms.record(metrics.startup.to_millis());
  }
}

void Platform::ensure_capacity(const std::string& function) {
  const auto it = queues_.find(function);
  if (it == queues_.end() || it->second.empty()) return;
  std::uint32_t available =
      idle_replica_count(function) + starting_replica_count(function);
  while (available < it->second.size())
    if (start_replica(function) == nullptr)
      break;
    else
      ++available;
  dispatch(function);
}

void Platform::note_restore_failure(const std::string& function) {
  SnapshotHealth& h = snapshot_health_[function];
  ++h.consecutive_failures;
  if (config_.quarantine_threshold == 0 || h.quarantined) return;
  if (h.consecutive_failures < config_.quarantine_threshold) return;
  // Trip the breaker: too many failed restores in a row. Starts go Vanilla
  // until a fresh bake replaces the poisoned images.
  h.quarantined = true;
  ++h.quarantine_epoch;
  ++stats_.snapshot_quarantines;
  {
    obs::Span mark = kernel_->trace().instant("quarantine.enter", "faas");
    mark.attr("function", function);
    mark.attr("consecutive_failures",
              static_cast<std::uint64_t>(h.consecutive_failures));
    kernel_->trace().count("faas.quarantines");
  }
  rebake(function);
}

void Platform::rebake(const std::string& function) {
  const RegisteredFunction& fn = registry_.get(function);

  // Drop every node-local cached copy of the poisoned snapshot — a stale
  // (possibly truncated) node copy must not outlive the quarantine.
  try {
    const core::BakedSnapshot& old = snapshots_.get(function, fn.policy);
    for (WorkerNode& wn : resources_.nodes_mut()) {
      const std::string prefix = wn.cache_drop(old.fs_prefix);
      if (!prefix.empty())
        for (const std::string& path : kernel_->fs().list(prefix))
          kernel_->fs().remove(path);
      // A quarantined snapshot's frozen template descends from the poisoned
      // images: kill it too. Unpinning may evict its now-unreferenced pages.
      const std::string key = config_.remote_registry
                                  ? node_image_prefix(wn.id(), old.fs_prefix)
                                  : old.fs_prefix;
      const os::Pid tpl = wn.store().drop_template(key);
      if (tpl != os::kNoPid && kernel_->alive(tpl)) {
        kernel_->kill_process(tpl);
        kernel_->reap(tpl);
      }
    }
  } catch (const std::exception&) {
    // No stored snapshot: nothing cached to drop.
  }

  // Bake the replacement. The build runs on the deployer, off the node
  // timelines: measure it inline, rewind, and lift the quarantine at the
  // time the fresh images are actually ready. Re-persisting the image files
  // also heals any truncated on-disk copies at the canonical prefix.
  const sim::TimePoint t0 = kernel_->sim().now();
  core::PrebakeConfig cfg;
  cfg.policy = fn.policy;
  BuildResult built =
      builder_.build(fn.spec, cfg, rng_.child(0xBA4E + next_rebake_++ * 2654435761ULL));
  const sim::TimePoint t_end = kernel_->sim().now();
  kernel_->sim().rewind_to(t0);

  const std::uint64_t epoch = snapshot_health_[function].quarantine_epoch;
  auto fresh = std::make_shared<std::optional<core::BakedSnapshot>>(
      std::move(built.snapshot));
  kernel_->sim().schedule_at(t0 + (t_end - t0), [this, function, epoch, fresh] {
    SnapshotHealth& h = snapshot_health_[function];
    if (!h.quarantined || h.quarantine_epoch != epoch) return;
    if (fresh->has_value()) snapshots_.put(std::move(**fresh));
    h.quarantined = false;
    h.consecutive_failures = 0;
    ++h.rebakes;
    ++stats_.snapshot_rebakes;
    obs::Span mark = kernel_->trace().instant("quarantine.lift", "faas");
    mark.attr("function", function);
    mark.attr("rebakes", static_cast<std::uint64_t>(h.rebakes));
    kernel_->trace().count("faas.rebakes");
  });
}

void Platform::crash_node(NodeId node) {
  if (resources_.node(node).state() == NodeState::kFailed) return;
  ++stats_.node_crashes;
  fail_node(node);
  if (config_.node_recovery_delay > sim::Duration{}) {
    kernel_->sim().schedule_in(config_.node_recovery_delay, [this, node] {
      if (resources_.node(node).state() != NodeState::kFailed) return;
      resources_.reactivate(node);
      ++stats_.node_recoveries;
      // The revived node can host again: top warm pools back up and drain
      // queues that were starved for capacity.
      for (const auto& [function, count] : min_idle_) scale_up(function, count);
      for (const auto& [function, queue] : queues_)
        if (!queue.empty()) ensure_capacity(function);
    });
  }
}

void Platform::drain_node(NodeId node) {
  resources_.drain(node);
  std::vector<std::uint64_t> idle_ids;
  for (const auto& [id, r] : replicas_)
    if (r->node == node && r->state == ReplicaState::kIdle)
      idle_ids.push_back(id);
  for (const std::uint64_t id : idle_ids)
    if (Replica* r = find_replica(id)) reclaim(*r);
  // Busy and starting replicas finish their work and are reclaimed by their
  // completion events. Refill warm pools on the remaining nodes now.
  for (const auto& [function, count] : min_idle_) scale_up(function, count);
}

void Platform::fail_node(NodeId node) {
  resources_.fail(node);
  ++stats_.node_failures;

  // The node's RAM is gone: its frozen templates die with it and the page
  // store forgets everything it had materialized (a recovered node starts
  // cold and re-pulls deltas).
  WorkerNode& failed = resources_.node_mut(node);
  for (const os::Pid tpl : failed.store().drop_all_templates())
    if (kernel_->alive(tpl)) {
      kernel_->kill_process(tpl);
      kernel_->reap(tpl);
    }
  failed.store().clear_pages();

  std::vector<std::string> affected;
  std::vector<std::uint64_t> dead;
  for (auto& [id, r] : replicas_) {
    if (r->node != node) continue;
    affected.push_back(r->function);
    dead.push_back(id);
    if (r->inflight.has_value()) {
      // The response will never arrive from this replica; put the request
      // back at the head of the queue to be re-served (likely as a fresh
      // cold start elsewhere). The enqueue timestamp restarts — the lost
      // service time is the node's fault, not queueing delay — and the
      // retry is counted on the request instead.
      Pending p = std::move(*r->inflight);
      r->inflight.reset();
      p.enqueued = kernel_->sim().now();
      ++p.retries;
      queues_[r->function].push_front(std::move(p));
      ++stats_.requests_requeued;
    }
    if (r->container.has_value()) containers_.destroy(*r->container);
    startup_.reclaim(r->proc);
    resources_.release(node, r->mem_bytes);
    note_mem_change(-static_cast<std::int64_t>(r->mem_bytes));
    ++stats_.replicas_reclaimed;
  }
  for (const std::uint64_t id : dead) {
    Replica* r = replicas_[id].get();
    std::erase(by_function_[r->function], r);
    replicas_.erase(id);
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const std::string& function : affected) ensure_capacity(function);
  for (const auto& [function, count] : min_idle_) scale_up(function, count);
}

}  // namespace prebake::faas
