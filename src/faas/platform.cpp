#include "faas/platform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "criu/error.hpp"
#include "criu/ws.hpp"

namespace prebake::faas {

Platform::Platform(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
                   PlatformConfig config, std::uint64_t seed)
    : kernel_{&kernel},
      startup_{kernel, std::move(runtime_costs), assets_},
      containers_{kernel, config.container_costs},
      builder_{kernel, startup_},
      config_{config},
      rng_{seed},
      migrator_{kernel, config.migration} {}

void Platform::deploy(rt::FunctionSpec spec, StartMode mode,
                      core::SnapshotPolicy policy) {
  std::optional<core::PrebakeConfig> prebake;
  if (mode == StartMode::kPrebaked) {
    core::PrebakeConfig cfg;
    cfg.policy = policy;
    prebake = cfg;
  }
  BuildResult built = builder_.build(std::move(spec), prebake,
                                     rng_.child(registry_.size() + 7));

  RegisteredFunction fn;
  fn.spec = std::move(built.spec);
  fn.mode = mode;
  fn.policy = policy;
  fn.build_time = built.build_time;
  if (built.snapshot.has_value()) snapshots_.put(std::move(*built.snapshot));
  registry_.put(std::move(fn));
}

Platform::Replica* Platform::find_idle(const std::string& function) {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return nullptr;
  // Creation order, first idle wins — the selection the fleet-wide scan of
  // the original implementation made.
  for (Replica* r : it->second)
    if (r->state == ReplicaState::kIdle) return r;
  return nullptr;
}

Platform::Replica* Platform::find_replica(std::uint64_t id) {
  const auto it = replicas_.find(id);
  return it == replicas_.end() ? nullptr : it->second.get();
}

std::uint32_t Platform::replica_count(const std::string& function) const {
  const auto it = by_function_.find(function);
  return it == by_function_.end() ? 0u
                                  : static_cast<std::uint32_t>(it->second.size());
}

std::uint32_t Platform::idle_replica_count(const std::string& function) const {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return 0;
  std::uint32_t n = 0;
  for (const Replica* r : it->second)
    if (r->state == ReplicaState::kIdle) ++n;
  return n;
}

std::uint32_t Platform::starting_replica_count(
    const std::string& function) const {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return 0;
  std::uint32_t n = 0;
  for (const Replica* r : it->second)
    if (r->state == ReplicaState::kStarting) ++n;
  return n;
}

void Platform::note_mem_change(std::int64_t delta) {
  const sim::TimePoint now = kernel_->sim().now();
  mem_byte_seconds_ +=
      static_cast<double>(fleet_mem_bytes_) * (now - mem_mark_).to_seconds();
  mem_mark_ = now;
  fleet_mem_bytes_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(fleet_mem_bytes_) + delta);
}

std::string Platform::node_image_prefix(NodeId node,
                                        const std::string& fs_prefix) const {
  return "/node/" + resources_.node(node).name() + fs_prefix;
}

Platform::Replica* Platform::start_replica(const std::string& function,
                                           bool prewarmed) {
  const RegisteredFunction& fn = registry_.get(function);
  if (replica_count(function) >= config_.max_replicas_per_function)
    return nullptr;

  // Estimate the placement footprint: snapshot size (prebaked) or class +
  // runtime footprint (vanilla), plus the container overhead. A snapshot
  // evicted from the store degrades to a Vanilla start, not an outage.
  const core::BakedSnapshot* snap = nullptr;
  std::uint64_t est = config_.replica_mem_overhead;
  if (fn.mode == StartMode::kPrebaked) {
    // A quarantined snapshot is off limits: the breaker tripped on repeated
    // restore failures and a re-bake is in flight. Start Vanilla meanwhile.
    const auto health = snapshot_health_.find(function);
    const bool quarantined =
        health != snapshot_health_.end() && health->second.quarantined;
    if (!quarantined) {
      try {
        snap = &snapshots_.get(function, fn.policy);
        est += snap->images.nominal_total();
      } catch (const std::exception&) {
        snap = nullptr;
      }
    }
  }
  if (snap == nullptr)
    est += 16ull * 1024 * 1024 + fn.spec.total_class_bytes() * 2 +
           fn.spec.init_extra_resident;

  PlacementRequest request;
  request.mem_bytes = est;
  if (snap != nullptr) request.snapshot_key = snap->fs_prefix;
  if (config_.page_store && snap != nullptr && snap->images.decoded().pages)
    request.snapshot_digests = snap->images.decoded().pages->digests();
  const std::optional<NodeId> node = resources_.place(request);
  if (!node.has_value()) return nullptr;
  note_mem_change(static_cast<std::int64_t>(est));

  obs::Tracer& tr = kernel_->trace();
  {
    obs::Span placed = tr.instant("placement", "faas");
    placed.attr("function", function);
    placed.attr("node", resources_.node(*node).name());
    placed.attr("mem_bytes", est);
  }

  auto replica = std::make_unique<Replica>();
  replica->id = next_replica_id_++;
  replica->function = function;
  replica->node = *node;
  replica->mem_bytes = est;
  replica->prewarmed = prewarmed;

  // The start-up work (container provisioning, restore or fork-exec, app
  // init) is measured inline against the kernel — its side effects (page
  // cache warmth, process creation) apply now, in call order — then the
  // clock is rewound and the elapsed work is queued on the owning node's
  // CPU timeline; the replica becomes idle at the node's completion time.
  // The replica-start span covers the measured window (ended explicitly at
  // t_end before the rewind), with the core start.* spans nested inside.
  const sim::TimePoint t0 = kernel_->sim().now();
  obs::Span start_span = tr.span("replica-start", "faas");
  start_span.attr("function", function);
  start_span.attr("node", resources_.node(*node).name());

  if (config_.containerized) {
    // Provision the execution environment first (Section 2, component 1).
    // The image layers: runtime binary + the function's class archive.
    std::vector<std::string> layers{fn.spec.runtime_binary};
    if (!fn.spec.classpath_archive.empty())
      layers.push_back(fn.spec.classpath_archive);
    replica->container = containers_.create(
        function + "-" + std::to_string(replica->id), std::move(layers), est,
        /*privileged=*/fn.mode == StartMode::kPrebaked);
  }

  sim::Rng rng = rng_.child(replica->id * 1315423911ULL);
  if (fn.mode == StartMode::kPrebaked && snap != nullptr) {
    // A corrupt or missing snapshot must degrade availability, not destroy
    // it: fall back to the fork-exec path and count the incident.
    try {
      core::PrebakedStartOptions opts;
      // Working-set mode auto-switches per snapshot: record on its first
      // start (no ws-1.img yet — serve() closes the recording after the
      // first invocation and attaches the image), prefetch ever after.
      criu::PagingPolicy paging = config_.paging;
      if (paging.mode == criu::PagingMode::kWorkingSet)
        paging = snap->images.has(criu::kWsImageName)
                     ? criu::PagingPolicy::ws_prefetch()
                     : criu::PagingPolicy::ws_recording();
      opts.restore.paging = paging;
      opts.policy.max_attempts = config_.restore_max_attempts;
      opts.policy.retry_backoff = config_.restore_retry_backoff;
      opts.policy.deadline = config_.restore_deadline;
      // StartupService handles the fallback so the breakdown records the
      // attempt count and the fallback flag; the catch below stays as the
      // safety net for non-restore failures.
      opts.policy.fallback_to_vanilla = true;
      if (config_.remote_registry) {
        WorkerNode& wn = resources_.node_mut(*node);
        const std::string local = node_image_prefix(*node, snap->fs_prefix);
        if (!config_.page_store) {
          // File-grain LRU cache (legacy): whole image dirs are admitted and
          // evicted together. The page store supersedes this — page records
          // are budgeted individually there.
          if (config_.node_snapshot_cache_bytes > 0 && wn.cache_capacity() == 0)
            wn.set_cache_capacity(config_.node_snapshot_cache_bytes);
          const WorkerNode::CacheAdmit admit = wn.cache_admit(
              snap->fs_prefix, local, snap->images.nominal_total());
          {
            obs::Span cache_span = tr.instant(
                admit.hit ? "snapshot-cache.hit" : "snapshot-cache.miss",
                "faas");
            cache_span.attr("function", function);
            tr.count(admit.hit ? "faas.snapshot_cache.hits"
                               : "faas.snapshot_cache.misses");
          }
          for (const std::string& prefix : admit.evicted_prefixes)
            for (const std::string& path : kernel_->fs().list(prefix))
              kernel_->fs().remove(path);
        }
        // Materialize the node-local image files; ones never fetched (or
        // evicted above) start cold, so the restore pays the registry
        // transfer for exactly the uncached bytes. The materialization
        // itself can be cut short (kTruncatedWrite): the restore detects
        // the short file and fails typed, and the breaker heals the node
        // copy via quarantine + re-bake.
        for (const auto& [name, f] : snap->images.files()) {
          const std::string path = local + name;
          if (!kernel_->fs().exists(path)) {
            kernel_->fs().create(path, f.nominal_size);
            if (f.nominal_size > 0 && kernel_->faults().enabled() &&
                kernel_->faults().fires(faults::FaultSite::kTruncatedWrite))
              kernel_->fs().truncate(path, f.nominal_size / 2);
          }
        }
        opts.restore.fs_prefix = local;
        opts.restore.remote_fetch = true;
      } else {
        opts.restore.fs_prefix = snap->fs_prefix;
      }
      if (config_.page_store) {
        WorkerNode& wn = resources_.node_mut(*node);
        if (config_.node_page_store_bytes > 0 && wn.store().capacity() == 0)
          wn.store().set_capacity(config_.node_page_store_bytes);
        opts.restore.page_store = &wn.store();
        // Template freeze/clone requires eager paging (a non-eager restore
        // leaves a lazy tail the frozen template would miss — see
        // RestoreOptions::validate); under lazy or working-set modes the
        // store still serves per-page delta transfer.
        if (paging.mode == criu::PagingMode::kEager)
          opts.restore.store_key = opts.restore.fs_prefix;
      }
      replica->proc = startup_.start_prebaked(fn.spec, snap->images, opts,
                                              rng.child(0));
      if (config_.remote_registry)
        resources_.node_mut(*node).stats().remote_bytes_fetched +=
            replica->proc.remote_bytes_fetched;
      if (config_.page_store) {
        NodeStats& ns = resources_.node_mut(*node).stats();
        ns.store_hit_pages += replica->proc.store_hit_pages;
        ns.store_delta_bytes += replica->proc.store_delta_bytes;
        if (replica->proc.template_clone) {
          // Served from the node's frozen template: the page-store analogue
          // of a snapshot cache hit.
          ++ns.template_clones;
          ++ns.snapshot_hits;
        } else if (!replica->proc.breakdown.fell_back_to_vanilla) {
          ++ns.snapshot_misses;
        }
      }
      if (replica->proc.paging_mode == criu::PagingMode::kWorkingSet) {
        if (replica->proc.ws_fallback) {
          ++stats_.ws_fallbacks;
        } else if (replica->proc.ws_recorder == nullptr) {
          ++stats_.ws_prefetch_starts;
          stats_.ws_prefetched_pages += replica->proc.ws_prefetched_pages;
        }
      }
      if (replica->proc.breakdown.restore_attempts > 1)
        stats_.restore_retries += replica->proc.breakdown.restore_attempts - 1;
      if (replica->proc.breakdown.fell_back_to_vanilla) {
        ++stats_.restore_fallbacks;
        note_restore_failure(function);
      } else if (const auto it = snapshot_health_.find(function);
                 it != snapshot_health_.end()) {
        it->second.consecutive_failures = 0;  // breaker counts *consecutive*
      }
    } catch (const std::exception&) {
      ++stats_.restore_fallbacks;
      note_restore_failure(function);
      replica->proc = startup_.start_vanilla(fn.spec, rng.child(1));
      replica->proc.breakdown.fell_back_to_vanilla = true;
    }
    // Fold this start into the node's fault-rate EWMA: a start that needed
    // retries or fell back is the early smoke of a failing node (the same
    // one kNodeCrash eventually takes down).
    note_node_health(*node, (replica->proc.breakdown.restore_attempts > 1 ||
                             replica->proc.breakdown.fell_back_to_vanilla)
                                ? 1.0
                                : 0.0);
  } else if (fn.mode == StartMode::kPrebaked) {
    ++stats_.restore_fallbacks;
    replica->proc = startup_.start_vanilla(fn.spec, rng.child(1));
    replica->proc.breakdown.fell_back_to_vanilla = true;
  } else {
    replica->proc = startup_.start_vanilla(fn.spec, std::move(rng));
  }

  if (replica->container.has_value()) {
    containers_.attach(*replica->container, replica->proc.pid);
    if (const auto oom = containers_.enforce_memory_limit(*replica->container)) {
      ++stats_.oom_kills;
      containers_.destroy(*replica->container);
      const sim::TimePoint t_end = kernel_->sim().now();
      start_span.attr("oom_killed", "true");
      start_span.end_at(t_end);
      kernel_->sim().rewind_to(t0);
      resources_.node_mut(*node).run(t0, t_end - t0);  // the work still ran
      resources_.release(*node, est);
      note_mem_change(-static_cast<std::int64_t>(est));
      return nullptr;
    }
  }

  if (replica->proc.breakdown.restore_attempts > 1)
    tr.count("faas.restore_retries",
             replica->proc.breakdown.restore_attempts - 1);
  const sim::TimePoint t_end = kernel_->sim().now();
  start_span.end_at(t_end);
  kernel_->sim().rewind_to(t0);
  const sim::TimePoint ready_at =
      resources_.node_mut(*node).run(t0, t_end - t0);

  // Injected worker crash mid-restore (kNodeCrash, one draw per prebaked
  // start): the node dies halfway through this replica's start window.
  // fail_node kills everything on it and re-queues in-flight work; the
  // request that triggered this start is still queued and gets re-served
  // elsewhere via ensure_capacity.
  if (fn.mode == StartMode::kPrebaked && snap != nullptr &&
      kernel_->faults().enabled() &&
      kernel_->faults().fires(faults::FaultSite::kNodeCrash)) {
    const NodeId crashed = *node;
    const sim::TimePoint crash_at = t0 + (t_end - t0) * 0.5;
    kernel_->sim().schedule_at(crash_at,
                               [this, crashed] { crash_node(crashed); });
  }

  replica->state = ReplicaState::kStarting;
  ++stats_.replicas_started;
  Replica* out = replica.get();
  const std::uint64_t id = out->id;
  replicas_.emplace(id, std::move(replica));
  by_function_[function].push_back(out);
  kernel_->sim().schedule_at(ready_at, [this, id] { on_replica_ready(id); });
  return out;
}

void Platform::on_replica_ready(std::uint64_t id) {
  Replica* replica = find_replica(id);
  if (replica == nullptr || replica->state != ReplicaState::kStarting) return;
  const WorkerNode& wn = resources_.node(replica->node);
  if (wn.state() == NodeState::kFailed) return;  // fail_node owns cleanup
  if (wn.state() == NodeState::kDraining) {
    reclaim(*replica);
    return;
  }
  replica->state = ReplicaState::kIdle;
  replica->idle_since = kernel_->sim().now();
  arm_idle_timer(*replica);
  dispatch(replica->function);
}

void Platform::invoke(const std::string& function, funcs::Request req,
                      InvokeCallback callback) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::invoke: unknown function " + function};
  ++stats_.invocations;
  const sim::TimePoint now = kernel_->sim().now();
  queues_[function].push_back(
      Pending{std::move(req), std::move(callback), now, now});

  if (find_idle(function) == nullptr) {
    // Cold start: no ready replica for this event (Figure 1's flow).
    if (start_replica(function) == nullptr &&
        queues_[function].size() > 4 * config_.max_replicas_per_function) {
      // Saturated: reject to keep the queue bounded.
      Pending p = std::move(queues_[function].back());
      queues_[function].pop_back();
      ++stats_.rejected;
      funcs::Response res;
      res.status = 503;
      res.body = "no capacity";
      RequestMetrics m;
      m.function = function;
      m.arrival = p.arrival;
      p.callback(res, m);
      return;
    }
  }
  dispatch(function);
}

void Platform::scale_up(const std::string& function, std::uint32_t count) {
  while (idle_replica_count(function) + starting_replica_count(function) <
         count)
    if (start_replica(function, /*prewarmed=*/true) == nullptr) break;
}

void Platform::set_min_idle(const std::string& function, std::uint32_t count) {
  if (!registry_.has(function))
    throw std::out_of_range{"Platform::set_min_idle: unknown function " + function};
  min_idle_[function] = count;
  scale_up(function, count);
}

void Platform::dispatch(const std::string& function) {
  auto& queue = queues_[function];
  while (!queue.empty()) {
    Replica* replica = find_idle(function);
    if (replica == nullptr) return;
    Pending pending = std::move(queue.front());
    queue.pop_front();
    serve(*replica, std::move(pending));
  }
}

void Platform::serve(Replica& replica, Pending pending) {
  replica.state = ReplicaState::kBusy;
  ++replica.idle_epoch;  // cancel any pending idle timeout logically
  const std::uint64_t epoch = ++replica.serve_epoch;

  RequestMetrics metrics;
  metrics.function = replica.function;
  metrics.arrival = pending.arrival;
  metrics.retries = pending.retries;
  metrics.queue_wait = kernel_->sim().now() - pending.enqueued;
  metrics.node = replica.node;
  obs::Tracer& tr = kernel_->trace();
  {
    // Retroactive: the wait is only known once a replica picks the request
    // up, so the span is opened with the enqueue timestamp and closed now.
    obs::Span wait = tr.span_at("queue-wait", "faas", pending.enqueued);
    wait.attr("function", replica.function);
    if (pending.retries > 0)
      wait.attr("retries", static_cast<std::uint64_t>(pending.retries));
    tr.measure("faas.queue_wait_ms", metrics.queue_wait.to_millis());
  }
  const bool first_serve = !replica.served_any;
  // A cold start is a request that had to wait for a replica to be created
  // on its behalf; pre-warmed pool replicas serve warm (Lin & Glikson [14]).
  if (!replica.served_any && !replica.prewarmed) {
    metrics.cold_start = true;
    metrics.startup = replica.proc.breakdown.total;
    ++stats_.cold_starts;
  }
  // First serve off a replica whose start degraded to the Vanilla path
  // (failed restore / quarantine): the request got an answer, but not the
  // prebaked latency it was promised. Reported separately from queue
  // rejections, which never reach a replica at all.
  metrics.fallback =
      !replica.served_any && replica.proc.breakdown.fell_back_to_vanilla;
  replica.served_any = true;

  // Execute the real handler synchronously to *measure* its duration, then
  // rewind and queue the work on the node's CPU timeline, emitting the
  // completion as an event — the replica stays Busy across the service
  // window so concurrent arrivals trigger scale-out (one request per
  // replica, as in public clouds — Section 4.1).
  const sim::TimePoint service_start = kernel_->sim().now();
  obs::Span serve_span = tr.span("serve", "faas");
  serve_span.attr("function", replica.function);
  serve_span.attr("node", resources_.node(replica.node).name());
  if (metrics.cold_start) serve_span.attr("cold_start", "true");
  // A non-eager restore left pages behind, billed to this request's service
  // time as they fault in. Pure-lazy (post-copy) drains everything on the
  // first touch of the working set — the legacy model. Under the REAP
  // working-set model the first invocation demand-faults only its working
  // set (first_invoke_ws_fraction of what is pending); a prefetch restore
  // already bulk-mapped that set, so it faults nothing here, and later
  // invocations touch the same resident pages.
  if (replica.proc.lazy_server != nullptr &&
      !replica.proc.lazy_server->done()) {
    if (replica.proc.paging_mode != criu::PagingMode::kWorkingSet) {
      replica.proc.lazy_server->page_in_all();
    } else if (first_serve && (replica.proc.ws_recorder != nullptr ||
                               replica.proc.ws_fallback)) {
      const rt::FunctionSpec& spec = registry_.get(replica.function).spec;
      const double fraction =
          std::clamp(spec.first_invoke_ws_fraction, 0.0, 1.0);
      const std::uint64_t pending = replica.proc.lazy_server->pending_pages();
      replica.proc.lazy_server->page_in(static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(pending) * fraction)));
    }
  }
  const funcs::Response response = replica.proc.runtime->handle(pending.req);
  // First invocation of a recording replica done: its faults (restore-demand
  // plus the handler's own touches) are the working set. Closing the capture
  // here keeps the encode + persist cost inside the measured serve window.
  if (replica.proc.ws_recorder != nullptr) finish_ws_capture(replica);
  const sim::TimePoint service_end = kernel_->sim().now();
  serve_span.end_at(service_end);
  kernel_->sim().rewind_to(service_start);
  const sim::TimePoint completion =
      resources_.node_mut(replica.node).run(service_start,
                                            service_end - service_start);

  metrics.service = service_end - service_start;
  metrics.total = completion - pending.arrival;
  replica.inflight = std::move(pending);

  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_at(completion, [this, id, epoch, response, metrics] {
    finish_serve(id, epoch, response, metrics);
  });
}

void Platform::finish_ws_capture(Replica& replica) {
  const criu::WorkingSetImage ws =
      criu::finish_ws_recording(*kernel_, *replica.proc.ws_recorder);
  replica.proc.ws_recorder.reset();
  std::vector<std::uint8_t> bytes = criu::encode_ws(ws);
  {
    obs::Span span = kernel_->trace().instant("ws-record.finish", "faas");
    span.attr("function", replica.function);
    span.attr("ws_pages", ws.total_pages);
    span.attr("ws_runs", static_cast<std::uint64_t>(ws.runs.size()));
    kernel_->trace().count("faas.ws_recordings");
  }
  ++stats_.ws_recordings;
  try {
    const RegisteredFunction& fn = registry_.get(replica.function);
    core::BakedSnapshot& snap =
        snapshots_.get_mutable(replica.function, fn.policy);
    // Persist beside the other image files so restores (and remote-node
    // materialization) read it like any metadata file.
    if (!snap.fs_prefix.empty())
      kernel_->fs().create(snap.fs_prefix + criu::kWsImageName, bytes.size());
    snap.images.put(criu::kWsImageName, std::move(bytes));
  } catch (const std::exception&) {
    // Snapshot evicted or re-baked away mid-capture: the recording is lost;
    // the next working-set start of the function simply records again.
  }
}

void Platform::finish_serve(std::uint64_t id, std::uint64_t serve_epoch,
                            const funcs::Response& response,
                            RequestMetrics metrics) {
  Replica* replica = find_replica(id);
  // A node failure between serve and completion re-queued the request; the
  // re-served copy delivers the response instead of this stale event.
  if (replica == nullptr || replica->serve_epoch != serve_epoch ||
      !replica->inflight.has_value())
    return;
  Pending pending = std::move(*replica->inflight);
  replica->inflight.reset();
  record_request(metrics);

  // Release the replica before delivering the response so a chained
  // invocation (workflow stages) can reuse it immediately.
  const std::string function = replica->function;
  if (replica->migration != nullptr && replica->migration->cutover_pending) {
    // The pre-dump chain converged while this request was in flight: enter
    // the cutover blackout now that the replica is quiescent.
    replica->state = ReplicaState::kIdle;
    replica->idle_since = kernel_->sim().now();
    do_cutover(*replica);
  } else if (replica->evacuate_on_idle && replica->migration == nullptr) {
    // Marked for warm evacuation (drain kMigrateWarm / migrate_replica while
    // busy): migrate instead of rejoining the idle pool. No destination with
    // room degrades to the plain drain/idle behavior.
    replica->evacuate_on_idle = false;
    const NodeId to = replica->evacuate_to;
    replica->evacuate_to = kNoNode;
    replica->state = ReplicaState::kIdle;
    replica->idle_since = kernel_->sim().now();
    if (!begin_migration(*replica, to)) {
      if (resources_.node(replica->node).state() == NodeState::kDraining) {
        ++resources_.node_mut(replica->node).stats().warmth_replicas_destroyed;
        reclaim(*replica);
      } else {
        arm_idle_timer(*replica);
      }
    }
  } else if (replica->migration == nullptr &&
             resources_.node(replica->node).state() == NodeState::kDraining) {
    // Draining and not mid-migration: the warmth dies here. A replica with
    // a pre-copy in flight instead rejoins the pool below and keeps serving
    // until its chain converges — that migration IS the drain's plan for it.
    ++resources_.node_mut(replica->node).stats().warmth_replicas_destroyed;
    reclaim(*replica);
  } else {
    replica->state = ReplicaState::kIdle;
    replica->idle_since = kernel_->sim().now();
    arm_idle_timer(*replica);
  }
  pending.callback(response, metrics);
  dispatch(function);
}

void Platform::arm_idle_timer(Replica& replica) {
  const std::uint64_t epoch = ++replica.idle_epoch;
  const std::uint64_t id = replica.id;
  kernel_->sim().schedule_in(config_.idle_timeout, [this, id, epoch] {
    Replica* r = find_replica(id);
    if (r == nullptr) return;
    if (r->state != ReplicaState::kIdle || r->idle_epoch != epoch) return;
    // Mid-migration replicas are exempt: reclaiming one would strand the
    // staged destination. finish/abort re-arm the timer.
    if (r->migration != nullptr) return;
    // The warm pool floor is exempt from idle reclaim. No re-arm: the
    // replica sits in the pool until it serves again (serving re-arms on
    // completion); re-arming here would tick forever on an idle system.
    const auto it = min_idle_.find(r->function);
    if (it != min_idle_.end() && idle_replica_count(r->function) <= it->second)
      return;
    reclaim(*r);
  });
}

void Platform::reclaim(Replica& replica) {
  if (replica.migration != nullptr)
    abort_migration(replica, MigrationErrorKind::kAborted, /*revive=*/false);
  if (replica.container.has_value()) containers_.destroy(*replica.container);
  startup_.reclaim(replica.proc);
  resources_.release(replica.node, replica.mem_bytes);
  note_mem_change(-static_cast<std::int64_t>(replica.mem_bytes));
  ++stats_.replicas_reclaimed;
  const std::uint64_t id = replica.id;
  auto& members = by_function_[replica.function];
  std::erase(members, &replica);
  replicas_.erase(id);
}

void Platform::record_request(const RequestMetrics& metrics) {
  if (!config_.aggregate_request_log) {
    request_log_.push_back(metrics);
    return;
  }
  ++aggregate_.count;
  if (metrics.fallback) ++aggregate_.fallback_serves;
  if (metrics.retries > 0) {
    ++aggregate_.retried;
    aggregate_.total_retries += metrics.retries;
  }
  aggregate_.total_ms.record(metrics.total.to_millis());
  aggregate_.service_ms.record(metrics.service.to_millis());
  aggregate_.queue_wait_ms.record(metrics.queue_wait.to_millis());
  if (metrics.cold_start) {
    ++aggregate_.cold_starts;
    aggregate_.cold_startup_ms.record(metrics.startup.to_millis());
  }
}

void Platform::ensure_capacity(const std::string& function) {
  const auto it = queues_.find(function);
  if (it == queues_.end() || it->second.empty()) return;
  std::uint32_t available =
      idle_replica_count(function) + starting_replica_count(function);
  while (available < it->second.size())
    if (start_replica(function) == nullptr)
      break;
    else
      ++available;
  dispatch(function);
}

void Platform::note_restore_failure(const std::string& function) {
  SnapshotHealth& h = snapshot_health_[function];
  ++h.consecutive_failures;
  if (config_.quarantine_threshold == 0 || h.quarantined) return;
  if (h.consecutive_failures < config_.quarantine_threshold) return;
  // Trip the breaker: too many failed restores in a row. Starts go Vanilla
  // until a fresh bake replaces the poisoned images.
  h.quarantined = true;
  ++h.quarantine_epoch;
  ++stats_.snapshot_quarantines;
  {
    obs::Span mark = kernel_->trace().instant("quarantine.enter", "faas");
    mark.attr("function", function);
    mark.attr("consecutive_failures",
              static_cast<std::uint64_t>(h.consecutive_failures));
    kernel_->trace().count("faas.quarantines");
  }
  rebake(function);
}

void Platform::rebake(const std::string& function) {
  const RegisteredFunction& fn = registry_.get(function);

  // Drop every node-local cached copy of the poisoned snapshot — a stale
  // (possibly truncated) node copy must not outlive the quarantine.
  try {
    const core::BakedSnapshot& old = snapshots_.get(function, fn.policy);
    for (WorkerNode& wn : resources_.nodes_mut()) {
      const std::string prefix = wn.cache_drop(old.fs_prefix);
      if (!prefix.empty())
        for (const std::string& path : kernel_->fs().list(prefix))
          kernel_->fs().remove(path);
      // A quarantined snapshot's frozen template descends from the poisoned
      // images: kill it too. Unpinning may evict its now-unreferenced pages.
      const std::string key = config_.remote_registry
                                  ? node_image_prefix(wn.id(), old.fs_prefix)
                                  : old.fs_prefix;
      const os::Pid tpl = wn.store().drop_template(key);
      if (tpl != os::kNoPid && kernel_->alive(tpl)) {
        kernel_->kill_process(tpl);
        kernel_->reap(tpl);
      }
    }
  } catch (const std::exception&) {
    // No stored snapshot: nothing cached to drop.
  }

  // Bake the replacement. The build runs on the deployer, off the node
  // timelines: measure it inline, rewind, and lift the quarantine at the
  // time the fresh images are actually ready. Re-persisting the image files
  // also heals any truncated on-disk copies at the canonical prefix.
  const sim::TimePoint t0 = kernel_->sim().now();
  core::PrebakeConfig cfg;
  cfg.policy = fn.policy;
  BuildResult built =
      builder_.build(fn.spec, cfg, rng_.child(0xBA4E + next_rebake_++ * 2654435761ULL));
  const sim::TimePoint t_end = kernel_->sim().now();
  kernel_->sim().rewind_to(t0);

  const std::uint64_t epoch = snapshot_health_[function].quarantine_epoch;
  auto fresh = std::make_shared<std::optional<core::BakedSnapshot>>(
      std::move(built.snapshot));
  kernel_->sim().schedule_at(t0 + (t_end - t0), [this, function, epoch, fresh] {
    SnapshotHealth& h = snapshot_health_[function];
    if (!h.quarantined || h.quarantine_epoch != epoch) return;
    if (fresh->has_value()) snapshots_.put(std::move(**fresh));
    h.quarantined = false;
    h.consecutive_failures = 0;
    ++h.rebakes;
    ++stats_.snapshot_rebakes;
    obs::Span mark = kernel_->trace().instant("quarantine.lift", "faas");
    mark.attr("function", function);
    mark.attr("rebakes", static_cast<std::uint64_t>(h.rebakes));
    kernel_->trace().count("faas.rebakes");
  });
}

void Platform::crash_node(NodeId node) {
  if (resources_.node(node).state() == NodeState::kFailed) return;
  ++stats_.node_crashes;
  fail_node(node);
  if (config_.node_recovery_delay > sim::Duration{}) {
    kernel_->sim().schedule_in(config_.node_recovery_delay, [this, node] {
      if (resources_.node(node).state() != NodeState::kFailed) return;
      resources_.reactivate(node);
      ++stats_.node_recoveries;
      // The revived node can host again: top warm pools back up and drain
      // queues that were starved for capacity.
      for (const auto& [function, count] : min_idle_) scale_up(function, count);
      for (const auto& [function, queue] : queues_)
        if (!queue.empty()) ensure_capacity(function);
    });
  }
}

void Platform::drain_node(NodeId node, DrainMode mode) {
  resources_.drain(node);
  std::vector<std::uint64_t> idle_ids;
  for (const auto& [id, r] : replicas_)
    if (r->node == node && r->state == ReplicaState::kIdle &&
        r->migration == nullptr)
      idle_ids.push_back(id);
  for (const std::uint64_t id : idle_ids) {
    Replica* r = find_replica(id);
    if (r == nullptr) continue;
    // Warm evacuation: the idle replica keeps serving while its pre-dump
    // chain ships; its warmth arrives at the destination instead of dying
    // with the drain. No destination with room degrades to reclaim.
    if (mode == DrainMode::kMigrateWarm && begin_migration(*r, kNoNode))
      continue;
    ++resources_.node_mut(node).stats().warmth_replicas_destroyed;
    reclaim(*r);
  }
  if (mode == DrainMode::kMigrateWarm) {
    // Busy replicas evacuate when their current request completes
    // (finish_serve); starting ones are reclaimed at on_replica_ready.
    for (auto& [id, r] : replicas_)
      if (r->node == node && r->state == ReplicaState::kBusy &&
          r->migration == nullptr)
        r->evacuate_on_idle = true;
  }
  // Busy and starting replicas finish their work and are reclaimed by their
  // completion events. Refill warm pools on the remaining nodes now.
  for (const auto& [function, count] : min_idle_) scale_up(function, count);
}

void Platform::fail_node(NodeId node) {
  resources_.fail(node);
  ++stats_.node_failures;

  // The node's RAM is gone: its frozen templates die with it and the page
  // store forgets everything it had materialized (a recovered node starts
  // cold and re-pulls deltas).
  WorkerNode& failed = resources_.node_mut(node);
  failed.stats().warmth_template_pages_destroyed +=
      failed.store().template_pages();
  for (const os::Pid tpl : failed.store().drop_all_templates())
    if (kernel_->alive(tpl)) {
      kernel_->kill_process(tpl);
      kernel_->reap(tpl);
    }
  failed.store().clear_pages();

  // Replicas elsewhere that were migrating *to* this node lose their staged
  // destination, not their warmth: abort back to serving locally.
  for (auto& [id, r] : replicas_)
    if (r->node != node && r->migration != nullptr &&
        r->migration->dest == node)
      abort_migration(*r, MigrationErrorKind::kDestinationLost,
                      /*revive=*/true);

  std::vector<std::string> affected;
  std::vector<std::uint64_t> dead;
  for (auto& [id, r] : replicas_) {
    if (r->node != node) continue;
    affected.push_back(r->function);
    dead.push_back(id);
    // A migration whose source just died is over: free the staged
    // destination before the replica's own teardown below.
    if (r->migration != nullptr)
      abort_migration(*r, MigrationErrorKind::kSourceLost, /*revive=*/false);
    if (r->served_any) ++failed.stats().warmth_replicas_destroyed;
    if (r->inflight.has_value()) {
      // The response will never arrive from this replica; put the request
      // back at the head of the queue to be re-served (likely as a fresh
      // cold start elsewhere). The enqueue timestamp restarts — the lost
      // service time is the node's fault, not queueing delay — and the
      // retry is counted on the request instead.
      Pending p = std::move(*r->inflight);
      r->inflight.reset();
      p.enqueued = kernel_->sim().now();
      ++p.retries;
      queues_[r->function].push_front(std::move(p));
      ++stats_.requests_requeued;
    }
    if (r->container.has_value()) containers_.destroy(*r->container);
    startup_.reclaim(r->proc);
    resources_.release(node, r->mem_bytes);
    note_mem_change(-static_cast<std::int64_t>(r->mem_bytes));
    ++stats_.replicas_reclaimed;
  }
  for (const std::uint64_t id : dead) {
    Replica* r = replicas_[id].get();
    std::erase(by_function_[r->function], r);
    replicas_.erase(id);
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const std::string& function : affected) ensure_capacity(function);
  for (const auto& [function, count] : min_idle_) scale_up(function, count);
}

// --- live replica migration (DESIGN.md §6i) ---------------------------------

NodeId Platform::find_replica_node(const std::string& function) const {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return kNoNode;
  for (const Replica* r : it->second)
    if (r->state != ReplicaState::kStarting) return r->node;
  return kNoNode;
}

bool Platform::migrate_replica(const std::string& function, NodeId from,
                               NodeId to) {
  const auto it = by_function_.find(function);
  if (it == by_function_.end()) return false;
  for (Replica* r : it->second) {
    if (r->migration != nullptr || r->evacuate_on_idle) continue;
    if (from != kNoNode && r->node != from) continue;
    if (to != kNoNode && r->node == to) continue;
    if (r->state == ReplicaState::kIdle) {
      if (begin_migration(*r, to)) return true;
      continue;
    }
    if (r->state == ReplicaState::kBusy) {
      // Evacuate once the in-flight request completes (finish_serve).
      r->evacuate_on_idle = true;
      r->evacuate_to = to;
      return true;
    }
  }
  return false;
}

std::uint32_t Platform::rebalance() {
  std::uint32_t moves = 0;
  for (WorkerNode& n : resources_.nodes_mut()) {
    if (!n.schedulable() || n.mem_capacity() == 0) continue;
    const double util = static_cast<double>(n.mem_used()) /
                        static_cast<double>(n.mem_capacity());
    if (util < config_.rebalance_high_watermark) continue;
    // Shed the oldest idle replica — creation order, like find_idle.
    for (auto& [id, r] : replicas_) {
      if (r->node != n.id() || r->state != ReplicaState::kIdle ||
          r->migration != nullptr)
        continue;
      if (begin_migration(*r, kNoNode)) {
        ++moves;
        ++stats_.rebalance_moves;
        break;
      }
    }
  }
  return moves;
}

bool Platform::begin_migration(Replica& replica, NodeId to) {
  if (replica.migration != nullptr || replica.state != ReplicaState::kIdle)
    return false;
  NodeId dest = kNoNode;
  if (to != kNoNode) {
    if (to == replica.node) return false;
    WorkerNode& dn = resources_.node_mut(to);
    if (!dn.schedulable() || dn.mem_free() < replica.mem_bytes) return false;
    dn.reserve(replica.mem_bytes);
    dest = to;
  } else {
    PlacementRequest request;
    request.mem_bytes = replica.mem_bytes;
    request.exclude = replica.node;
    const std::optional<NodeId> n = resources_.place(request);
    if (!n.has_value()) return false;
    dest = *n;
  }
  note_mem_change(static_cast<std::int64_t>(replica.mem_bytes));

  auto m = std::make_unique<MigrationState>();
  m->id = next_migration_id_++;
  m->dest = dest;
  m->started = kernel_->sim().now();
  replica.migration = std::move(m);
  ++stats_.migrations_started;
  {
    obs::Span mark = kernel_->trace().instant("migration.begin", "faas");
    mark.attr("function", replica.function);
    mark.attr("from", resources_.node(replica.node).name());
    mark.attr("to", resources_.node(dest).name());
  }
  const std::uint64_t rid = replica.id;
  const std::uint64_t mid = replica.migration->id;
  if (migrator_.config().max_rounds <= 0)
    request_cutover(rid, mid);  // pure stop-and-copy: no pre-copy chain
  else
    migration_round(rid, mid);
  return true;
}

void Platform::migration_round(std::uint64_t replica_id,
                               std::uint64_t migration_id) {
  Replica* r = find_replica(replica_id);
  if (r == nullptr || r->migration == nullptr ||
      r->migration->id != migration_id)
    return;
  MigrationState& m = *r->migration;

  // Measure the round inline — dump on the source, ship on the wire — then
  // rewind and replay on the owning timelines. The replica keeps serving
  // throughout: pre-dump leaves it running (that is the "live" part).
  const sim::TimePoint t0 = kernel_->sim().now();
  obs::Span round_span = kernel_->trace().span("migration.pre-dump", "faas");
  round_span.attr("function", r->function);
  // A working-set replica lazy-serves its cold tail for life, but a pre-dump
  // chain must capture full memory: fault the tail in first, charged to this
  // round's source-side work. (Pure-lazy replicas drained on first serve.)
  if (r->proc.paging_mode == criu::PagingMode::kWorkingSet &&
      r->proc.lazy_server != nullptr && !r->proc.lazy_server->done())
    r->proc.lazy_server->page_in_all();
  std::vector<const criu::ImageDir*> chain_so_far;
  chain_so_far.reserve(m.chain.size());
  for (const auto& link : m.chain) chain_so_far.push_back(link.get());
  Migrator::PreDump round;
  try {
    round = migrator_.pre_dump(r->proc.pid, chain_so_far);
  } catch (const MigrationError& e) {
    round_span.attr("aborted", migration_error_name(e.kind()));
    kernel_->sim().rewind_to(t0);
    abort_migration(*r, e.kind(), /*revive=*/true);
    return;
  }
  const sim::TimePoint t_dump = kernel_->sim().now();
  criu::PageStore* dest_store =
      config_.page_store ? &resources_.node_mut(m.dest).store() : nullptr;
  const Migrator::Shipped shipped = migrator_.ship_link(*round.link, dest_store);
  const sim::TimePoint t_ship = kernel_->sim().now();
  round_span.attr("pages", round.dumped_pages);
  round_span.attr("wire_bytes", shipped.bytes);
  round_span.end_at(t_ship);
  kernel_->sim().rewind_to(t0);
  const sim::TimePoint src_done =
      resources_.node_mut(r->node).run(t0, t_dump - t0);
  const sim::TimePoint arrive = src_done + (t_ship - t_dump);

  ++m.rounds;
  ++stats_.migration_rounds;
  stats_.migration_precopy_bytes += shipped.bytes;

  const std::uint64_t rid = replica_id;
  const std::uint64_t mid = migration_id;
  if (shipped.corrupt) {
    // The link arrived corrupt, so every younger delta would stack on a bad
    // base: abandon the pre-copy chain and cut over with a full dump. The
    // warmth still migrates; the downtime win doesn't — and neither does
    // the standby, which was built on the now-poisoned base.
    m.chain.clear();
    drop_standby(m);
    m.full_dump = true;
    ++stats_.migration_full_dumps;
    kernel_->sim().schedule_at(arrive,
                               [this, rid, mid] { request_cutover(rid, mid); });
    return;
  }
  m.chain.push_back(std::move(round.link));

  // Stage (or refresh) the warm standby at the destination. The first good
  // link restores into a stopped twin — runtime fixups included — and each
  // later link replays its pages onto it as it arrives. All of this
  // overlaps the still-serving source; it is why the blackout later bills
  // only the final delta.
  if (m.staged_pid == os::kNoPid) {
    std::vector<const criu::ImageDir*> staged_chain;
    staged_chain.reserve(m.chain.size());
    for (const auto& link : m.chain) staged_chain.push_back(link.get());
    try {
      const criu::RestoreResult staged = migrator_.restore_at(
          staged_chain, os::Cap::kSysPtrace | os::Cap::kSysAdmin);
      rt::ManagedRuntime::attach_restored(  // fixup cost; object discarded
          *kernel_, staged.pid, startup_.runtime_costs(),
          registry_.get(r->function).spec,
          rng_.child(0x57A6 + m.id * 2654435761ULL),
          r->proc.runtime != nullptr && r->proc.runtime->warmed(),
          startup_.assets());
      m.staged_pid = staged.pid;
      const sim::Duration stage_work = kernel_->sim().now() - t0;
      kernel_->sim().rewind_to(t0);
      resources_.node_mut(m.dest).run(arrive, stage_work);
    } catch (const criu::RestoreError&) {
      // Staging is an optimization: without a standby the cutover pays the
      // full restore inside the blackout instead.
      kernel_->sim().rewind_to(t0);
    }
  } else {
    resources_.node_mut(m.dest).run(arrive,
                                    migrator_.apply_cost(*m.chain.back()));
  }
  const bool converged =
      round.dumped_pages <= migrator_.config().convergence_pages ||
      m.rounds >= migrator_.config().max_rounds;
  if (converged)
    kernel_->sim().schedule_at(arrive,
                               [this, rid, mid] { request_cutover(rid, mid); });
  else
    kernel_->sim().schedule_at(arrive,
                               [this, rid, mid] { migration_round(rid, mid); });
}

void Platform::request_cutover(std::uint64_t replica_id,
                               std::uint64_t migration_id) {
  Replica* r = find_replica(replica_id);
  if (r == nullptr || r->migration == nullptr ||
      r->migration->id != migration_id)
    return;
  if (r->state == ReplicaState::kBusy) {
    // Quiesce first: finish_serve enters the blackout when the in-flight
    // request completes, so no request is ever dropped by a cutover.
    r->migration->cutover_pending = true;
    return;
  }
  if (r->state != ReplicaState::kIdle) return;
  do_cutover(*r);
}

void Platform::do_cutover(Replica& replica) {
  MigrationState& m = *replica.migration;
  m.cutover_pending = false;
  replica.state = ReplicaState::kMigrating;
  ++replica.idle_epoch;  // cancel any armed idle timer
  const sim::TimePoint t0 = kernel_->sim().now();
  m.cutover_started = t0;
  const bool warmed =
      replica.proc.runtime != nullptr && replica.proc.runtime->warmed();

  obs::Span span = kernel_->trace().span("migration.cutover", "faas");
  span.attr("function", replica.function);

  // The blackout, measured inline and bucketed into source / network /
  // destination work so each part replays on the right timeline.
  sim::Duration src_work{}, net_work{}, dest_work{};
  sim::TimePoint mark = t0;
  const auto lap = [&]() {
    const sim::TimePoint now = kernel_->sim().now();
    const sim::Duration d = now - mark;
    mark = now;
    return d;
  };
  const auto abort_cutover = [&](MigrationErrorKind kind, const char* why) {
    span.attr("aborted", why);
    span.end_at(kernel_->sim().now());
    kernel_->sim().rewind_to(t0);
    abort_migration(replica, kind, /*revive=*/true);
  };

  // Stop-and-copy (no pre-copy rounds ran) can still hold a working-set
  // replica's lazily pending cold tail: fault it in before the final dump.
  if (replica.proc.paging_mode == criu::PagingMode::kWorkingSet &&
      replica.proc.lazy_server != nullptr &&
      !replica.proc.lazy_server->done())
    replica.proc.lazy_server->page_in_all();

  // Final freeze+dump of the last dirty delta (a full dump when the
  // pre-copy chain was abandoned). A corrupt arrival re-dumps, bounded.
  criu::DumpResult final_dump;
  std::uint64_t final_bytes = 0;
  bool have_final = false;
  for (int attempt = 1; attempt <= migrator_.config().max_final_attempts;
       ++attempt) {
    std::vector<const criu::ImageDir*> chain_so_far;
    chain_so_far.reserve(m.chain.size());
    for (const auto& link : m.chain) chain_so_far.push_back(link.get());
    try {
      final_dump = migrator_.final_dump(replica.proc.pid, chain_so_far,
                                        warmed ? 1u : 0u);
    } catch (const MigrationError& e) {
      abort_cutover(e.kind(), migration_error_name(e.kind()));
      return;
    }
    src_work += lap();
    criu::PageStore* dest_store =
        config_.page_store ? &resources_.node_mut(m.dest).store() : nullptr;
    const Migrator::Shipped shipped =
        migrator_.ship_link(final_dump.images, dest_store);
    net_work += lap();
    final_bytes += shipped.bytes;
    if (!shipped.corrupt) {
      have_final = true;
      break;
    }
  }
  if (!have_final) {
    abort_cutover(MigrationErrorKind::kCorruptChainLink, "corrupt-chain-link");
    return;
  }

  // Restore the chain at the destination. A destination crash mid-restore
  // (kNodeCrash) fails that node for real and retries on a fresh placement;
  // transient restore faults retry in place per the restore policy.
  std::vector<const criu::ImageDir*> chain;
  chain.reserve(m.chain.size() + 1);
  for (const auto& link : m.chain) chain.push_back(link.get());
  chain.push_back(&final_dump.images);

  criu::RestoreResult restored;
  bool have_restore = false;
  int attempt = 0;
  while (!have_restore) {
    if (kernel_->faults().enabled() &&
        kernel_->faults().fires(faults::FaultSite::kNodeCrash)) {
      // Destination died mid-restore: fail it for real, re-place, re-ship
      // the whole chain to the new destination, and try again there. The
      // standby died with the node, so the retry pays the restore in full.
      ++stats_.migration_dest_retries;
      drop_standby(m);
      const NodeId dead = m.dest;
      resources_.node_mut(dead).release(replica.mem_bytes);
      note_mem_change(-static_cast<std::int64_t>(replica.mem_bytes));
      m.dest = kNoNode;  // keeps fail_node's dest-lost pass off this one
      crash_node(dead);
      PlacementRequest request;
      request.mem_bytes = replica.mem_bytes;
      request.exclude = replica.node;
      const std::optional<NodeId> next = resources_.place(request);
      if (!next.has_value()) {
        abort_cutover(MigrationErrorKind::kDestinationLost,
                      "destination-lost");
        return;
      }
      m.dest = *next;
      note_mem_change(static_cast<std::int64_t>(replica.mem_bytes));
      criu::PageStore* store =
          config_.page_store ? &resources_.node_mut(m.dest).store() : nullptr;
      bool reshipped = true;
      for (const criu::ImageDir* link : chain) {
        const Migrator::Shipped s = migrator_.ship_link(*link, store);
        final_bytes += s.bytes;
        if (s.corrupt) {
          reshipped = false;
          break;
        }
      }
      net_work += lap();
      if (!reshipped) {
        abort_cutover(MigrationErrorKind::kCorruptChainLink,
                      "corrupt-chain-link");
        return;
      }
      continue;
    }
    try {
      restored = migrator_.restore_at(
          chain, os::Cap::kSysPtrace | os::Cap::kSysAdmin);
      have_restore = true;
    } catch (const criu::RestoreError& e) {
      ++attempt;
      if (!e.transient() || attempt >= std::max(config_.restore_max_attempts, 1)) {
        abort_cutover(MigrationErrorKind::kDestinationLost,
                      criu::restore_error_name(e.kind()));
        return;
      }
      kernel_->sim().advance(config_.restore_retry_backoff * attempt);
    }
  }

  // Stage the destination-side process; the runtime attach charges the
  // post-restore fixups. The swap itself happens at finish time, after the
  // work has actually completed on the destination's cores.
  m.new_proc = core::ReplicaProcess{};
  m.new_proc.pid = restored.pid;
  m.new_proc.breakdown = replica.proc.breakdown;
  m.new_proc.runtime =
      std::make_unique<rt::ManagedRuntime>(rt::ManagedRuntime::attach_restored(
          *kernel_, restored.pid, startup_.runtime_costs(),
          registry_.get(replica.function).spec,
          rng_.child(0x4D16 + m.id * 2654435761ULL), warmed,
          startup_.assets()));
  const sim::Duration restore_work = lap();
  if (m.staged_pid != os::kNoPid) {
    // The standby already holds the pre-copy state — restored and fixed up
    // while the source was still serving. The fresh restore above realizes
    // the merged final state; its cost was paid incrementally during the
    // rounds, so the blackout bills only applying the final delta and
    // resuming the twin.
    dest_work +=
        migrator_.apply_cost(final_dump.images) + migrator_.resume_cost();
    drop_standby(m);
  } else {
    dest_work += restore_work;
  }

  const sim::TimePoint t_end = kernel_->sim().now();
  span.end_at(t_end);
  kernel_->sim().rewind_to(t0);

  const sim::TimePoint src_done =
      resources_.node_mut(replica.node).run(t0, src_work);
  const sim::TimePoint arrive = src_done + net_work;
  const sim::TimePoint ready = resources_.node_mut(m.dest).run(arrive, dest_work);

  stats_.migration_final_bytes += final_bytes;
  const std::uint64_t rid = replica.id;
  const std::uint64_t mid = m.id;
  kernel_->sim().schedule_at(ready,
                             [this, rid, mid] { finish_migration(rid, mid); });
}

void Platform::finish_migration(std::uint64_t replica_id,
                                std::uint64_t migration_id) {
  Replica* r = find_replica(replica_id);
  if (r == nullptr || r->migration == nullptr ||
      r->migration->id != migration_id)
    return;
  MigrationState& m = *r->migration;
  const NodeId src = r->node;
  const NodeId dest = m.dest;

  // The destination replica is live: the frozen source is now redundant.
  startup_.reclaim(r->proc);
  r->proc = std::move(m.new_proc);

  // Re-home the container: the old cgroup dies with the source, a fresh one
  // wraps the restored process, charged to the destination's cores.
  if (r->container.has_value()) {
    containers_.destroy(*r->container);
    const RegisteredFunction& fn = registry_.get(r->function);
    const sim::TimePoint c0 = kernel_->sim().now();
    std::vector<std::string> layers{fn.spec.runtime_binary};
    if (!fn.spec.classpath_archive.empty())
      layers.push_back(fn.spec.classpath_archive);
    r->container = containers_.create(
        r->function + "-" + std::to_string(r->id) + "-m", std::move(layers),
        r->mem_bytes, /*privileged=*/fn.mode == StartMode::kPrebaked);
    containers_.attach(*r->container, r->proc.pid);
    const sim::TimePoint c_end = kernel_->sim().now();
    kernel_->sim().rewind_to(c0);
    resources_.node_mut(dest).run(c0, c_end - c0);
  }

  resources_.release(src, r->mem_bytes);
  note_mem_change(-static_cast<std::int64_t>(r->mem_bytes));
  {
    NodeStats& ss = resources_.node_mut(src).stats();
    ++ss.migrations_out;
    ++ss.warmth_replicas_migrated;
    ++resources_.node_mut(dest).stats().migrations_in;
  }

  r->node = dest;
  const sim::Duration downtime = kernel_->sim().now() - m.cutover_started;
  stats_.migration_downtime += downtime;
  ++stats_.migrations_completed;
  {
    obs::Span mark = kernel_->trace().instant("migration.finish", "faas");
    mark.attr("function", r->function);
    kernel_->trace().measure("faas.migration_downtime_ms",
                             downtime.to_millis());
  }
  r->migration.reset();
  r->state = ReplicaState::kIdle;
  r->idle_since = kernel_->sim().now();
  arm_idle_timer(*r);
  dispatch(r->function);
}

void Platform::abort_migration(Replica& replica, MigrationErrorKind kind,
                               bool revive) {
  if (replica.migration == nullptr) return;
  MigrationState& m = *replica.migration;
  if (m.dest != kNoNode) {
    resources_.node_mut(m.dest).release(replica.mem_bytes);
    note_mem_change(-static_cast<std::int64_t>(replica.mem_bytes));
  }
  if (m.new_proc.pid != os::kNoPid && kernel_->alive(m.new_proc.pid)) {
    kernel_->kill_process(m.new_proc.pid);
    kernel_->reap(m.new_proc.pid);
  }
  drop_standby(m);
  ++stats_.migrations_aborted;
  ++resources_.node_mut(replica.node).stats().migrations_aborted;
  {
    obs::Span mark = kernel_->trace().instant("migration.abort", "faas");
    mark.attr("function", replica.function);
    mark.attr("reason", migration_error_name(kind));
  }
  replica.migration.reset();
  if (!revive) return;
  // The source never stopped being able to serve: return it to the pool.
  if (replica.state == ReplicaState::kMigrating) {
    replica.state = ReplicaState::kIdle;
    replica.idle_since = kernel_->sim().now();
  }
  if (replica.state == ReplicaState::kIdle) {
    arm_idle_timer(replica);
    dispatch(replica.function);
  }
}

void Platform::drop_standby(MigrationState& m) {
  if (m.staged_pid == os::kNoPid) return;
  if (kernel_->alive(m.staged_pid)) {
    kernel_->kill_process(m.staged_pid);
    kernel_->reap(m.staged_pid);
  }
  m.staged_pid = os::kNoPid;
}

void Platform::note_node_health(NodeId node, double signal) {
  double& h = node_health_[node];
  h = config_.node_health_alpha * signal +
      (1.0 - config_.node_health_alpha) * h;
  if (config_.evacuation_threshold <= 0.0 || h < config_.evacuation_threshold)
    return;
  if (!resources_.node(node).schedulable()) return;
  const sim::TimePoint now = kernel_->sim().now();
  const auto last = last_evacuation_.find(node);
  if (last != last_evacuation_.end() &&
      now - last->second < config_.evacuation_cooldown)
    return;
  last_evacuation_[node] = now;
  h = 0.0;
  ++stats_.evacuations;
  {
    obs::Span mark = kernel_->trace().instant("migration.evacuate", "faas");
    mark.attr("node", resources_.node(node).name());
  }
  // Decoupled from the caller's measured start window: the evacuation runs
  // as its own event. The node drains warm — its replicas live-migrate —
  // and rejoins after the cooldown, hopefully past its bad patch.
  kernel_->sim().schedule_at(now, [this, node] {
    if (resources_.node(node).state() != NodeState::kReady) return;
    drain_node(node, DrainMode::kMigrateWarm);
    if (config_.evacuation_cooldown > sim::Duration{}) {
      kernel_->sim().schedule_in(config_.evacuation_cooldown, [this, node] {
        if (resources_.node(node).state() != NodeState::kDraining) return;
        resources_.reactivate(node);
        for (const auto& [function, count] : min_idle_)
          scale_up(function, count);
      });
    }
  });
}

}  // namespace prebake::faas
