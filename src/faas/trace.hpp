// Workload traces: a minimal CSV format, synthetic generators, and a replay
// driver. Lets experiments run against recorded or generated invocation
// timelines (Azure-functions-style arrival logs) instead of fixed loops.
//
// CSV format, one event per line, '#' comments allowed:
//   <offset_ms>,<function_name>
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faas/platform.hpp"

namespace prebake::faas {

struct TraceEvent {
  sim::Duration at;  // offset from replay start
  std::string function;
  bool operator==(const TraceEvent&) const = default;
};

// Parse/format the CSV trace format. parse throws std::invalid_argument on
// malformed lines (with the line number in the message).
std::vector<TraceEvent> parse_trace_csv(const std::string& text);
std::string format_trace_csv(std::span<const TraceEvent> events);

// Homogeneous Poisson arrivals at `rate_hz` over `duration`.
std::vector<TraceEvent> generate_poisson_trace(const std::string& function,
                                               double rate_hz,
                                               sim::Duration duration,
                                               std::uint64_t seed);

// Diurnal (sinusoidal-rate) arrivals via thinning: the rate swings between
// `base_rate_hz` and `peak_rate_hz` with the given period. Produces the
// bursty day/night pattern under which idle-timeout reclaim causes repeated
// cold starts at every ramp-up.
std::vector<TraceEvent> generate_diurnal_trace(const std::string& function,
                                               double base_rate_hz,
                                               double peak_rate_hz,
                                               sim::Duration period,
                                               sim::Duration duration,
                                               std::uint64_t seed);

struct TraceReplayResult {
  std::vector<RequestMetrics> metrics;
  std::uint64_t responses_ok = 0;
  // Queue-rejected (503 "no capacity"): the request never reached a
  // replica. Quarantine/restore fallbacks are NOT in here — those requests
  // are served (counted in responses_ok) and reported separately below.
  std::uint64_t responses_rejected = 0;
  // Served requests whose cold start fell back to the Vanilla start path
  // (failed restore or quarantined snapshot).
  std::uint64_t responses_fallback = 0;
  sim::Duration makespan;
};

// Schedule every event and run the platform until all responses land.
// Every referenced function must be deployed.
TraceReplayResult replay_trace(Platform& platform,
                               std::span<const TraceEvent> events);

}  // namespace prebake::faas
