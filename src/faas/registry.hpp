// Function Registry (SPEC-RG reference architecture, Section 2): the
// repository of function metadata and deployable artifacts.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/prebaker.hpp"
#include "rt/function_spec.hpp"

namespace prebake::faas {

// How new replicas of a function are started.
enum class StartMode : std::uint8_t { kVanilla, kPrebaked };

struct RegisteredFunction {
  rt::FunctionSpec spec;
  StartMode mode = StartMode::kVanilla;
  core::SnapshotPolicy policy;  // meaningful when mode == kPrebaked
  std::uint32_t version = 1;
  sim::Duration build_time;
};

class FunctionRegistry {
 public:
  void put(RegisteredFunction fn) {
    auto [it, inserted] = functions_.try_emplace(fn.spec.name, fn);
    if (!inserted) {
      fn.version = it->second.version + 1;
      it->second = std::move(fn);
    }
  }

  const RegisteredFunction& get(const std::string& name) const {
    const auto it = functions_.find(name);
    if (it == functions_.end())
      throw std::out_of_range{"FunctionRegistry: unknown function " + name};
    return it->second;
  }

  bool has(const std::string& name) const { return functions_.contains(name); }
  std::size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, RegisteredFunction> functions_;
};

}  // namespace prebake::faas
