#include "faas/builder.hpp"

namespace prebake::faas {

namespace {
// A JDK 8-class runtime image; exec maps only its leading pages, so the size
// mostly affects storage, not start-up.
constexpr std::uint64_t kRuntimeBinaryBytes = 48ull * 1024 * 1024;
// Archive (jar) overhead over the raw class bytes: manifest, index, padding.
constexpr double kArchiveOverhead = 1.04;
}  // namespace

void FunctionBuilder::ensure_runtime_binary(const std::string& path) {
  if (!kernel_->fs().exists(path))
    kernel_->fs().create(path, kRuntimeBinaryBytes);
}

void FunctionBuilder::install(const BuildResult& result) {
  os::Kernel& k = *kernel_;
  const rt::FunctionSpec& spec = result.spec;

  ensure_runtime_binary(spec.runtime_binary);

  const std::uint64_t archive_bytes = static_cast<std::uint64_t>(
      static_cast<double>(spec.total_class_bytes()) * kArchiveOverhead);
  if (!k.fs().exists(spec.classpath_archive))
    k.fs().create(spec.classpath_archive,
                  std::max<std::uint64_t>(archive_bytes, 4096));

  if (spec.init_io_bytes > 0 && !spec.init_io_path.empty() &&
      !k.fs().exists(spec.init_io_path))
    k.fs().create(spec.init_io_path, spec.init_io_bytes);

  // Persisted snapshot images, exactly as the dump left them on the baking
  // host: present in storage and resident in the page cache.
  if (result.snapshot.has_value()) {
    const core::BakedSnapshot& snap = *result.snapshot;
    for (const auto& [name, f] : snap.images.files()) {
      const std::string path = snap.fs_prefix + name;
      if (!k.fs().exists(path)) k.fs().create(path, f.nominal_size);
      k.fs().warm(path);
    }
  }
}

BuildResult FunctionBuilder::build(rt::FunctionSpec spec,
                                   std::optional<core::PrebakeConfig> prebake,
                                   sim::Rng rng) {
  os::Kernel& k = *kernel_;
  const sim::TimePoint t0 = k.sim().now();

  ensure_runtime_binary(spec.runtime_binary);

  // Package the classpath into the registry.
  const std::uint64_t archive_bytes = static_cast<std::uint64_t>(
      static_cast<double>(spec.total_class_bytes()) * kArchiveOverhead);
  spec.classpath_archive = "/registry/" + spec.name + "/classes.jar";
  k.fs().create(spec.classpath_archive, std::max<std::uint64_t>(archive_bytes, 4096));
  k.sim().advance(k.costs().disk_write_cost(archive_bytes));

  // Stage application data dependencies (e.g. the resizer's source image).
  if (spec.init_io_bytes > 0) {
    if (spec.init_io_path.empty())
      spec.init_io_path = "/registry/" + spec.name + "/data.bin";
    if (!k.fs().exists(spec.init_io_path))
      k.fs().create(spec.init_io_path, spec.init_io_bytes);
  }

  BuildResult result;
  if (prebake.has_value()) {
    core::Prebaker prebaker{*startup_};
    result.snapshot = prebaker.bake(spec, *prebake, std::move(rng));
  }
  result.spec = std::move(spec);
  result.build_time = k.sim().now() - t0;
  return result;
}

}  // namespace prebake::faas
