// Resource Manager (SPEC-RG Resource Orchestration layer): tracks worker
// nodes and places function replicas by memory footprint.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace prebake::faas {

using NodeId = std::uint32_t;

struct Node {
  NodeId id = 0;
  std::string name;
  std::uint64_t mem_capacity = 0;
  std::uint64_t mem_used = 0;
  std::uint32_t replicas = 0;

  std::uint64_t mem_free() const { return mem_capacity - mem_used; }
};

class ResourceManager {
 public:
  NodeId add_node(std::string name, std::uint64_t mem_capacity_bytes);

  // Worst-fit placement (most free memory first) to spread load. Returns
  // nullopt when no node can host the replica.
  std::optional<NodeId> place(std::uint64_t mem_bytes);
  void release(NodeId node, std::uint64_t mem_bytes);

  const Node& node(NodeId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  std::uint64_t total_mem_used() const;
  std::uint64_t total_mem_capacity() const;

 private:
  Node& node_mut(NodeId id);
  std::vector<Node> nodes_;
  NodeId next_id_ = 1;
};

}  // namespace prebake::faas
