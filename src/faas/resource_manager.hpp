// Resource Manager (SPEC-RG Resource Orchestration layer): the cluster
// facade — owns the worker nodes, delegates placement to the Scheduler's
// pluggable policy, and exposes node lifecycle (drain / fail / reactivate)
// to the platform.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "faas/cluster.hpp"

namespace prebake::faas {

class ResourceManager {
 public:
  // `cpus` == 0 (the default) leaves the node's CPU timeline uncapped —
  // start-up and service work never queue behind other replicas, matching
  // the pre-cluster behaviour; a positive count serializes onto that many
  // cores (see WorkerNode::run).
  NodeId add_node(std::string name, std::uint64_t mem_capacity_bytes,
                  std::uint32_t cpus = 0);

  PlacementPolicy policy() const { return scheduler_.policy(); }
  void set_policy(PlacementPolicy policy) { scheduler_.set_policy(policy); }

  // Place a replica; returns nullopt when no schedulable node can host it.
  std::optional<NodeId> place(const PlacementRequest& request);
  // Memory-only placement (vanilla replicas and legacy callers).
  std::optional<NodeId> place(std::uint64_t mem_bytes) {
    PlacementRequest request;
    request.mem_bytes = mem_bytes;
    return place(request);
  }
  void release(NodeId node, std::uint64_t mem_bytes);

  // Node lifecycle. Draining/failed nodes receive no new placements; the
  // platform is responsible for what happens to resident replicas.
  void drain(NodeId node) { node_mut(node).set_state(NodeState::kDraining); }
  void fail(NodeId node) { node_mut(node).set_state(NodeState::kFailed); }
  void reactivate(NodeId node) { node_mut(node).set_state(NodeState::kReady); }

  const WorkerNode& node(NodeId id) const;
  WorkerNode& node_mut(NodeId id);
  const std::vector<WorkerNode>& nodes() const { return nodes_; }
  std::vector<WorkerNode>& nodes_mut() { return nodes_; }
  std::uint64_t total_mem_used() const;
  std::uint64_t total_mem_capacity() const;

 private:
  std::vector<WorkerNode> nodes_;
  Scheduler scheduler_;
  NodeId next_id_ = 1;
};

}  // namespace prebake::faas
