// The FaaS platform: Function Router, Function Deployer and autoscaling glue
// over the SPEC-RG components (Section 2 / Figure 1 of the paper).
//
// Concurrency model matches the paper's description of public clouds: each
// replica handles one request at a time; a request arriving while every
// replica is busy triggers a scale-up; replicas idle longer than the
// idle-timeout are garbage collected. Replica start-up and request service
// execute on the owning WorkerNode's CPU timeline (see faas/cluster.hpp):
// the work is measured inline against the simulated kernel, rewound, and
// re-emitted as a completion event at the time the node's cores actually
// finish it — so concurrent work on one node contends while work on
// different nodes overlaps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/prebaker.hpp"
#include "core/startup.hpp"
#include "faas/builder.hpp"
#include "faas/metrics.hpp"
#include "faas/migration.hpp"
#include "faas/registry.hpp"
#include "faas/resource_manager.hpp"
#include "os/container.hpp"

namespace prebake::faas {

struct RequestMetrics {
  std::string function;
  sim::TimePoint arrival;
  sim::Duration queue_wait;  // waiting for a replica (includes start-up)
  sim::Duration startup;     // replica start-up this request had to wait for
  sim::Duration service;     // handler execution
  sim::Duration total;       // arrival -> response
  bool cold_start = false;
  // The cold start behind this request was served by the Vanilla fallback
  // path (failed restore or quarantined snapshot) instead of the prebaked
  // restore — the request succeeded but paid fork-exec latency. Distinct
  // from a queue rejection: the platform 503s those without ever reaching a
  // replica.
  bool fallback = false;
  // Times the request was re-queued after a node failure killed the replica
  // serving it. queue_wait counts from the latest enqueue, so a retried
  // request reports its real queueing delay, not the lost service time;
  // `total` still spans arrival -> response.
  std::uint32_t retries = 0;
  // Worker node whose replica served the request. Recorded at serve time, so
  // it survives drain/fail requeues (the re-serving node wins); kNoNode for
  // requests that never reached a replica (e.g. 503 rejects).
  static constexpr NodeId kNoNode = 0xffffffffu;
  NodeId node = kNoNode;
};

using InvokeCallback =
    std::function<void(const funcs::Response&, const RequestMetrics&)>;

struct PlatformConfig {
  // Idle replicas are reclaimed after this long (Wang et al. [27] observe
  // minutes-scale timeouts in public platforms).
  sim::Duration idle_timeout = sim::Duration::seconds(600);
  std::uint32_t max_replicas_per_function = 64;
  // Container/runtime overhead accounted per replica beyond process RSS.
  std::uint64_t replica_mem_overhead = 32ull * 1024 * 1024;
  // Run every replica inside a container (Section 2's execution-environment
  // provisioning term); adds the ContainerCosts to each replica start and
  // enforces a cgroup memory limit sized to the placement estimate.
  bool containerized = false;
  os::ContainerCosts container_costs{};
  // "Checkpoint/restore as a service" (Section 7): snapshot images live on a
  // remote registry. A node's first restore of a function pulls the images
  // at network bandwidth into a node-local copy; later restores on the same
  // node read the local (page-cached) copy. Placement locality then decides
  // how often the transfer is paid.
  bool remote_registry = false;
  // Per-node budget for locally cached snapshot images (LRU; 0 = unbounded).
  // Applied to nodes on their first remote restore; explicit per-node
  // set_cache_capacity calls take precedence.
  std::uint64_t node_snapshot_cache_bytes = 0;
  // Content-addressed page store per node (DESIGN.md §6f): registry fetches
  // negotiate per-page deltas, the first restore of a snapshot on a node
  // freezes a template that later replicas COW-clone, and locality placement
  // scores nodes by missing unique bytes. Replaces the file-grain snapshot
  // cache above on the prebaked path. Off = legacy behavior everywhere.
  bool page_store = false;
  // Per-node byte budget for unpinned store pages (0 = unbounded); applied
  // lazily like node_snapshot_cache_bytes.
  std::uint64_t node_page_store_bytes = 0;
  // How restores page replica memory in (DESIGN.md §6j): eager (the
  // default), lazy post-copy (PagingPolicy::lazy(fraction) — only a prefix
  // of each pagemap run is mapped at start, the remainder faults in on
  // first use, charged to the first request's service time), or REAP-style
  // working-set (PagingPolicy::ws_prefetch() — the first start of each
  // snapshot records the first invocation's working set into ws-1.img,
  // every later start bulk-maps exactly that set and lazy-serves only the
  // cold tail).
  criu::PagingPolicy paging{};
  // Record requests into a bounded RequestAggregate (histogram percentiles)
  // instead of growing the full per-request log — required for runs with
  // millions of invocations.
  bool aggregate_request_log = false;

  // --- restore resilience (DESIGN.md §6d) ---------------------------------
  // Per-start retry budget against transient restore faults (device errors,
  // aborted fetches, corrupt read copies). 1 = the legacy single attempt.
  int restore_max_attempts = 1;
  sim::Duration restore_retry_backoff = sim::Duration::millis(5);
  // Per-start restore deadline (retries stop, Vanilla takes over); zero =
  // unbounded.
  sim::Duration restore_deadline{};
  // Circuit breaker: quarantine a function's snapshot after this many
  // *consecutive* failed restores (0 = breaker off). While quarantined the
  // function starts Vanilla; a re-bake runs off the request path and lifts
  // the quarantine when the fresh snapshot is ready.
  std::uint32_t quarantine_threshold = 0;
  // Crashed nodes (FaultSite::kNodeCrash) rejoin the cluster after this
  // long; zero = they stay down.
  sim::Duration node_recovery_delay{};

  // --- live replica migration (DESIGN.md §6i) ------------------------------
  // Pre-dump chain shape and delta transfer for warm evacuations.
  MigrationConfig migration{};
  // Node-health EWMA: per-node fault-rate signal updated on every prebaked
  // start (1.0 = the start needed retries or fell back, 0.0 = clean).
  double node_health_alpha = 0.2;
  // Proactive evacuation: when a node's health EWMA reaches this level, its
  // warm replicas are live-migrated off (drain_node kMigrateWarm) before the
  // next kNodeCrash can destroy them. 0 = off (the default; keeps every
  // scenario without migration byte-identical).
  double evacuation_threshold = 0.0;
  // An evacuated node rejoins the cluster after this long (and is exempt
  // from re-evacuation for the same window); zero = it stays drained.
  sim::Duration evacuation_cooldown = sim::Duration::seconds(60);
  // rebalance(): a schedulable node at or above this memory utilization
  // sheds one idle replica per call via live migration.
  double rebalance_high_watermark = 0.9;
};

struct PlatformStats {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t replicas_started = 0;
  std::uint64_t replicas_reclaimed = 0;
  std::uint64_t rejected = 0;  // no capacity and queue overflow
  std::uint64_t oom_kills = 0;  // cgroup memory.max enforcement actions
  // Snapshot restores that failed (corrupt/missing images) and fell back to
  // the Vanilla start path.
  std::uint64_t restore_fallbacks = 0;
  // Failed restore attempts that were retried (and eventually succeeded or
  // fell back); a 3-attempt success contributes 2.
  std::uint64_t restore_retries = 0;
  std::uint64_t snapshot_quarantines = 0;  // circuit-breaker trips
  std::uint64_t snapshot_rebakes = 0;      // fresh bakes that lifted one
  std::uint64_t node_failures = 0;      // fail_node calls
  std::uint64_t node_crashes = 0;       // injected mid-restore crashes
  std::uint64_t node_recoveries = 0;    // crashed nodes brought back
  std::uint64_t requests_requeued = 0;  // in-flight work re-queued by failures
  // --- live migration (DESIGN.md §6i) -------------------------------------
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;    // fell back to serving locally
  std::uint64_t migration_rounds = 0;      // pre-dump rounds executed
  std::uint64_t migration_full_dumps = 0;  // corrupt-link full-dump fallbacks
  std::uint64_t migration_dest_retries = 0;  // destination crashes mid-restore
  std::uint64_t migration_precopy_bytes = 0;  // shipped while still serving
  std::uint64_t migration_final_bytes = 0;    // shipped inside the blackout
  sim::Duration migration_downtime;  // summed cutover blackout windows
  std::uint64_t evacuations = 0;       // health-triggered warm drains
  std::uint64_t rebalance_moves = 0;   // migrations started by rebalance()
  // --- working-set restore (DESIGN.md §6j) --------------------------------
  std::uint64_t ws_recordings = 0;       // first-invocation captures closed
  std::uint64_t ws_prefetch_starts = 0;  // restores that bulk-mapped a WS
  std::uint64_t ws_prefetched_pages = 0;  // pages eagerly mapped from WSes
  std::uint64_t ws_fallbacks = 0;  // WS prefetches downgraded to pure-lazy
};

// Circuit-breaker state for one function's snapshot. Failures count
// consecutively (any successful restore resets them); tripping the breaker
// quarantines the snapshot and kicks off a re-bake.
struct SnapshotHealth {
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
  std::uint32_t rebakes = 0;       // completed re-bakes for this function
  std::uint64_t quarantine_epoch = 0;  // invalidates stale lift events
};

class Platform {
 public:
  Platform(os::Kernel& kernel, rt::RuntimeCosts runtime_costs,
           PlatformConfig config, std::uint64_t seed);

  // Build (optionally prebake) and register a function. Replaces any
  // existing version.
  void deploy(rt::FunctionSpec spec, StartMode mode,
              core::SnapshotPolicy policy = core::SnapshotPolicy::no_warmup());

  // Invoke a function; the callback fires when the response is ready (in
  // simulation time). Must be called from within the simulation (or before
  // running it).
  void invoke(const std::string& function, funcs::Request req,
              InvokeCallback callback);

  // Pre-warm: ensure at least `count` replicas are idle or on their way to
  // idle (start-up is asynchronous; run the simulation to realize them).
  void scale_up(const std::string& function, std::uint32_t count);

  // Warm-pool policy (the pool-based alternative of Lin & Glikson [14], the
  // approach the paper contrasts prebaking against): keep at least `count`
  // idle replicas alive at all times — they are exempt from idle-timeout
  // reclaim and replenished after scale-downs. The pool's memory is the cost
  // the provider eats for the latency (Section 1).
  void set_min_idle(const std::string& function, std::uint32_t count);

  // How drain_node disposes of the drained node's warm replicas: reclaim
  // (destroy the warmth, the legacy behavior) or live-migrate them to other
  // nodes via pre-dump chains (warm evacuation, DESIGN.md §6i).
  enum class DrainMode : std::uint8_t { kReclaim, kMigrateWarm };

  // Node lifecycle, platform view. Draining stops new placements, reclaims
  // (or, in kMigrateWarm mode, live-migrates) the node's idle replicas and
  // lets busy ones finish (reclaimed or evacuated on completion). Failing a
  // node kills everything on it: in-flight requests are re-queued at the
  // front of their function's queue and re-served elsewhere; warm pools are
  // replenished on surviving nodes.
  void drain_node(NodeId node, DrainMode mode = DrainMode::kReclaim);
  void fail_node(NodeId node);

  // Live-migrate one replica of `function` from node `from` to node `to`
  // (kNoNode = any). Idle replicas start migrating immediately; a busy one
  // is marked to evacuate when its current request completes. Returns false
  // when no replica matches or no destination has room.
  bool migrate_replica(const std::string& function, NodeId from = kNoNode,
                       NodeId to = kNoNode);

  // Rebalancing action: every schedulable node at or above the configured
  // high watermark sheds one idle replica via live migration. Returns how
  // many migrations were started.
  std::uint32_t rebalance();

  // Node-health EWMA (0 = healthy; grows toward 1 with failing starts).
  double node_health(NodeId node) const {
    const auto it = node_health_.find(node);
    return it == node_health_.end() ? 0.0 : it->second;
  }
  // Node hosting the first (creation-order) replica of `function`, or
  // kNoNode when none exists.
  NodeId find_replica_node(const std::string& function) const;

  ResourceManager& resources() { return resources_; }
  FunctionRegistry& registry() { return registry_; }
  core::SnapshotStore& snapshots() { return snapshots_; }
  const PlatformStats& stats() const { return stats_; }
  // Per-function circuit-breaker state (empty until a restore fails).
  const std::map<std::string, SnapshotHealth>& snapshot_health() const {
    return snapshot_health_;
  }
  const std::vector<RequestMetrics>& request_log() const { return request_log_; }
  // The bounded aggregate (populated when aggregate_request_log is set).
  const RequestAggregate& request_aggregate() const { return aggregate_; }
  std::uint32_t replica_count(const std::string& function) const;
  std::uint32_t idle_replica_count(const std::string& function) const;
  std::uint32_t starting_replica_count(const std::string& function) const;
  std::size_t total_replica_count() const { return replicas_.size(); }
  // Integral of resident fleet memory over simulated time, in byte-seconds,
  // up to the current simulation clock. Counts every placed replica's
  // placement estimate from placement to release — the provider-side memory
  // cost axis of the keep-alive policy study.
  double fleet_mem_byte_seconds() const {
    return mem_byte_seconds_ +
           static_cast<double>(fleet_mem_bytes_) *
               (kernel_->sim().now() - mem_mark_).to_seconds();
  }
  os::Kernel& kernel() { return *kernel_; }
  core::StartupService& startup() { return startup_; }
  os::ContainerRuntime& containers() { return containers_; }

  // Where a snapshot's images live on `node` under remote_registry.
  std::string node_image_prefix(NodeId node, const std::string& fs_prefix) const;

 private:
  // kMigrating covers only the cutover blackout (final dump -> destination
  // resume); during pre-dump rounds the replica stays kIdle/kBusy and keeps
  // serving — that is what makes the migration "live".
  enum class ReplicaState : std::uint8_t { kStarting, kIdle, kBusy, kMigrating };

  struct Pending {
    funcs::Request req;
    InvokeCallback callback;
    sim::TimePoint arrival;
    // When the request last entered a queue: arrival, or the requeue time
    // after a node failure. queue_wait measures from here.
    sim::TimePoint enqueued;
    std::uint32_t retries = 0;
  };

  struct MigrationState;  // defined below Replica, which holds one

  struct Replica {
    std::uint64_t id = 0;
    std::string function;
    NodeId node = 0;
    std::uint64_t mem_bytes = 0;
    core::ReplicaProcess proc;
    ReplicaState state = ReplicaState::kStarting;
    sim::TimePoint idle_since;
    std::uint64_t idle_epoch = 0;   // invalidates stale idle-timeout events
    std::uint64_t serve_epoch = 0;  // invalidates stale completion events
    bool served_any = false;
    bool prewarmed = false;  // started proactively (scale_up), not by a request
    std::optional<os::ContainerId> container;
    // The request being served; completion events take it back out. Kept on
    // the replica (not in the event closure) so a node failure can re-queue
    // it.
    std::optional<Pending> inflight;
    // In-flight live migration (null = none). unique_ptr: the chain links
    // hold stable ImageDir addresses across replica-map rehashes.
    std::unique_ptr<MigrationState> migration;
    // Busy replica marked for evacuation: when its current request
    // completes, finish_serve starts a migration (to evacuate_to, kNoNode =
    // any) instead of returning it to the idle pool.
    bool evacuate_on_idle = false;
    NodeId evacuate_to = kNoNode;
  };

  // One live migration in flight. The pre-dump chain accumulates here
  // (oldest link first, --prev-images-dir layout); the staged destination
  // process replaces the replica's proc only at finish time, so any failure
  // up to that point can abort back to the still-running source.
  struct MigrationState {
    std::uint64_t id = 0;
    NodeId dest = kNoNode;
    std::vector<std::unique_ptr<criu::ImageDir>> chain;
    int rounds = 0;
    bool full_dump = false;       // pre-copy abandoned (corrupt link)
    bool cutover_pending = false;  // converged while the replica was busy
    sim::TimePoint started;
    sim::TimePoint cutover_started;
    core::ReplicaProcess new_proc;  // staged destination-side process
    // Warm standby pre-restored at the destination from the shipped chain
    // (later links replay onto it as they arrive). With a standby up, the
    // cutover blackout bills only the final-delta apply + resume; without
    // one (stop-and-copy, corrupt chain, destination crash) it pays the
    // full restore.
    os::Pid staged_pid = os::kNoPid;
  };

  Replica* find_idle(const std::string& function);
  Replica* find_replica(std::uint64_t id);
  // Count the resident-memory change at the current simulated time: the
  // byte-seconds integral accrues at the previous level up to now, then the
  // level moves by `delta`.
  void note_mem_change(std::int64_t delta);
  Replica* start_replica(const std::string& function, bool prewarmed = false);
  void on_replica_ready(std::uint64_t id);
  void dispatch(const std::string& function);
  void serve(Replica& replica, Pending pending);
  // Close a working-set recording (DESIGN.md §6j): the replica's first
  // invocation completed, so the kernel's fault log holds exactly the pages
  // it touched. Encode them as ws-1.img and attach the image to the stored
  // snapshot; later starts of the function prefetch it.
  void finish_ws_capture(Replica& replica);
  void finish_serve(std::uint64_t id, std::uint64_t serve_epoch,
                    const funcs::Response& response, RequestMetrics metrics);
  void arm_idle_timer(Replica& replica);
  void reclaim(Replica& replica);
  void record_request(const RequestMetrics& metrics);
  // Re-establish capacity for a function after a node loss.
  void ensure_capacity(const std::string& function);
  // Circuit breaker: bump the failure count, possibly trip the breaker.
  void note_restore_failure(const std::string& function);
  // Bake a fresh snapshot off the request path; lifts the quarantine when
  // the new images are ready and drops every poisoned cached copy.
  void rebake(const std::string& function);
  // Injected kNodeCrash: fail the node now, optionally schedule recovery.
  void crash_node(NodeId node);

  // --- live migration (DESIGN.md §6i) --------------------------------------
  // Reserve a destination and start the pre-dump loop for an idle replica.
  bool begin_migration(Replica& replica, NodeId to);
  // One pre-dump round: dump the dirty delta while the source keeps
  // serving, ship the link, then converge or schedule the next round.
  void migration_round(std::uint64_t replica_id, std::uint64_t migration_id);
  // Converged: cut over now if the replica is idle, else after its current
  // request completes.
  void request_cutover(std::uint64_t replica_id, std::uint64_t migration_id);
  // The blackout: final freeze+dump, ship the last delta, restore the chain
  // at the destination (retrying elsewhere if it crashes mid-restore).
  void do_cutover(Replica& replica);
  // Destination resumed: kill the source, swap procs, move accounting.
  void finish_migration(std::uint64_t replica_id, std::uint64_t migration_id);
  // Release the staged destination and (when revive is set) return the
  // replica to local service; revive=false when the replica itself is dying.
  void abort_migration(Replica& replica, MigrationErrorKind kind, bool revive);
  void drop_standby(MigrationState& m);
  // Fold one start outcome into the node's health EWMA; may trigger a
  // proactive warm evacuation when the threshold is configured.
  void note_node_health(NodeId node, double signal);

  os::Kernel* kernel_;
  funcs::SharedAssets assets_;
  core::StartupService startup_;
  os::ContainerRuntime containers_;
  FunctionBuilder builder_;
  FunctionRegistry registry_;
  core::SnapshotStore snapshots_;
  ResourceManager resources_;
  PlatformConfig config_;
  sim::Rng rng_;
  PlatformStats stats_;

  // Replica ownership and lookup. Keyed by the monotonically increasing
  // replica id, so map iteration order == creation order — the same order
  // the original vector gave the failure/drain paths (behavior there is
  // order-sensitive: requeued requests go back queue-front in replica
  // order). by_function_ holds creation-ordered non-owning views so the hot
  // paths (find_idle, the per-function counts) scan one function's
  // replicas, not the whole fleet — with thousands of deployed functions
  // the fleet-wide scans were O(replicas) per request.
  std::map<std::uint64_t, std::unique_ptr<Replica>> replicas_;
  std::map<std::string, std::vector<Replica*>> by_function_;
  std::map<std::string, std::uint32_t> min_idle_;
  std::map<std::string, std::deque<Pending>> queues_;
  std::vector<RequestMetrics> request_log_;
  RequestAggregate aggregate_;
  std::map<std::string, SnapshotHealth> snapshot_health_;
  std::uint64_t next_replica_id_ = 1;
  std::uint64_t next_rebake_ = 1;  // rng stream ids for re-bakes
  Migrator migrator_;
  std::map<NodeId, double> node_health_;  // fault-rate EWMA per node
  std::map<NodeId, sim::TimePoint> last_evacuation_;
  std::uint64_t next_migration_id_ = 1;

  // Fleet-memory integral (see fleet_mem_byte_seconds()).
  double mem_byte_seconds_ = 0.0;
  std::uint64_t fleet_mem_bytes_ = 0;
  sim::TimePoint mem_mark_;
};

}  // namespace prebake::faas
