// Live replica migration via pre-dump chains (DESIGN.md §6i).
//
// Moves a running replica between worker nodes without discarding its
// warmth: iterative pre-dump rounds checkpoint only the pages dirtied since
// the previous round (CRIU's --prev-images-dir layout, criu/dump.hpp) while
// the source keeps serving, each link ships to the destination as it is
// taken, and once the dirty delta converges a final freeze+dump closes the
// chain. Downtime is the final delta's transfer plus the chain restore —
// not the full footprint.
//
// The Migrator is the mechanism layer: one pre-dump round, one link
// shipment, one chain restore, each a pure simulated-cost operation plus the
// fault draws that make migration survivable under chaos. Orchestration —
// who migrates where, convergence, cutover, retry-elsewhere, abort-to-local
// — lives in faas::Platform, which owns the replica lifecycle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "criu/dump.hpp"
#include "criu/page_store.hpp"
#include "criu/restore.hpp"
#include "os/kernel.hpp"

namespace prebake::faas {

// Why a migration could not complete. Partitioned by *where* the failure
// bit: the recovery action differs per kind (abort-to-local, retry
// elsewhere, fall back to a full dump), so callers switch on it the same
// way the restore path switches on criu::RestoreErrorKind.
enum class MigrationErrorKind : std::uint8_t {
  kSourceLost,        // source node / process died mid-pre-dump
  kDestinationLost,   // destination crashed before the replica resumed
  kCorruptChainLink,  // a shipped link failed its CRC at the destination
  kNoCapacity,        // no schedulable node can hold the replica
  kAborted,           // superseded (source reclaimed / drained under us)
};

constexpr const char* migration_error_name(MigrationErrorKind kind) {
  switch (kind) {
    case MigrationErrorKind::kSourceLost: return "source-lost";
    case MigrationErrorKind::kDestinationLost: return "destination-lost";
    case MigrationErrorKind::kCorruptChainLink: return "corrupt-chain-link";
    case MigrationErrorKind::kNoCapacity: return "no-capacity";
    case MigrationErrorKind::kAborted: return "aborted";
  }
  return "unknown";
}

class MigrationError : public std::runtime_error {
 public:
  MigrationError(MigrationErrorKind kind, const std::string& what)
      : std::runtime_error{what}, kind_{kind} {}
  MigrationError(MigrationErrorKind kind, const std::string& what,
                 int chain_link)
      : std::runtime_error{what}, kind_{kind}, chain_link_{chain_link} {}

  MigrationErrorKind kind() const { return kind_; }
  // Chain link the failure is attributable to (0 = newest), -1 otherwise;
  // mirrors criu::RestoreError::chain_link().
  int chain_link() const { return chain_link_; }

 private:
  MigrationErrorKind kind_;
  int chain_link_ = -1;
};

struct MigrationConfig {
  // Pre-dump rounds before the final freeze is forced. 1 = a single full
  // pre-copy then cutover (no incremental round); 0 disables pre-copy
  // entirely (pure stop-and-copy, the comparison baseline).
  int max_rounds = 3;
  // Converged when a round dumps at most this many pages: the remaining
  // delta is small enough that the final freeze transfer is cheap.
  std::uint64_t convergence_pages = 64;
  // Negotiate each link's page payload against the destination's
  // content-addressed store (PR 5's delta transfer) instead of shipping the
  // full payload.
  bool delta_transfer = true;
  // Bounded re-dump attempts when the *final* link ships corrupt (the
  // pre-copy chain is abandoned and a full dump retried).
  int max_final_attempts = 3;
};

class Migrator {
 public:
  Migrator(os::Kernel& kernel, MigrationConfig config)
      : kernel_{&kernel}, config_{config} {}

  const MigrationConfig& config() const { return config_; }

  struct PreDump {
    std::unique_ptr<criu::ImageDir> link;  // stable address: chains hold ptrs
    std::uint64_t dumped_pages = 0;        // this round's dirty delta
  };

  // One pre-dump round: checkpoint the pages dirtied since the chain was
  // last extended (empty chain = full base link), leave the target running,
  // reset soft-dirty so the next round is incremental. The chain passes
  // oldest link first (nested --prev-images-dir coverage). Draws
  // kMigrationDumpFault first — a fault here models the source dying
  // mid-round and throws kSourceLost.
  PreDump pre_dump(os::Pid pid, std::span<const criu::ImageDir* const> chain);

  // Final freeze+dump closing the chain. Leaves the target alive (frozen
  // semantics are handled by the caller's cutover window); the caller kills
  // the source only after the destination resumed, so a destination failure
  // can still abort back to a live local replica.
  criu::DumpResult final_dump(os::Pid pid,
                              std::span<const criu::ImageDir* const> chain,
                              std::uint32_t warmup_requests);

  struct Shipped {
    std::uint64_t bytes = 0;  // what actually crossed the wire
    bool corrupt = false;     // link failed its CRC on arrival
  };

  // Transfer one chain link to the destination node: metadata ships whole;
  // the page payload delta-negotiates against `dest_store` (when configured)
  // so pages the destination already holds never cross the wire. Draws
  // kMigrationLinkCorrupt after the transfer — a corrupt arrival is detected
  // by the link CRC and reported, not thrown; the caller decides whether to
  // fall back to a full dump.
  Shipped ship_link(const criu::ImageDir& link, criu::PageStore* dest_store);

  // Cost of replaying one shipped link's pages onto the staged standby at
  // the destination (pagemap walk + page-cache read + memcpy) — no fork,
  // no runtime attach: the standby already exists.
  sim::Duration apply_cost(const criu::ImageDir& link) const;
  // Cost of resuming the staged standby at cutover (thaw + parasite cure).
  sim::Duration resume_cost() const;

  // Restore the shipped chain at the destination. Links arrived over the
  // wire into destination memory, so reads are charged at page-cache cost
  // (fs_prefix = ""), not registry bandwidth — this is what makes live
  // migration's downtime beat a cold re-restore from the remote registry.
  criu::RestoreResult restore_at(std::span<const criu::ImageDir* const> chain,
                                 os::Cap criu_caps);

 private:
  os::Kernel* kernel_;
  MigrationConfig config_;
};

}  // namespace prebake::faas
