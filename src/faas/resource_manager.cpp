#include "faas/resource_manager.hpp"

#include <algorithm>

namespace prebake::faas {

NodeId ResourceManager::add_node(std::string name,
                                 std::uint64_t mem_capacity_bytes) {
  Node n;
  n.id = next_id_++;
  n.name = std::move(name);
  n.mem_capacity = mem_capacity_bytes;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

Node& ResourceManager::node_mut(NodeId id) {
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [id](const Node& n) { return n.id == id; });
  if (it == nodes_.end())
    throw std::out_of_range{"ResourceManager: unknown node"};
  return *it;
}

const Node& ResourceManager::node(NodeId id) const {
  return const_cast<ResourceManager*>(this)->node_mut(id);
}

std::optional<NodeId> ResourceManager::place(std::uint64_t mem_bytes) {
  Node* best = nullptr;
  for (Node& n : nodes_) {
    if (n.mem_free() < mem_bytes) continue;
    if (best == nullptr || n.mem_free() > best->mem_free()) best = &n;
  }
  if (best == nullptr) return std::nullopt;
  best->mem_used += mem_bytes;
  ++best->replicas;
  return best->id;
}

void ResourceManager::release(NodeId node, std::uint64_t mem_bytes) {
  Node& n = node_mut(node);
  if (n.mem_used < mem_bytes || n.replicas == 0)
    throw std::logic_error{"ResourceManager::release: accounting underflow"};
  n.mem_used -= mem_bytes;
  --n.replicas;
}

std::uint64_t ResourceManager::total_mem_used() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) total += n.mem_used;
  return total;
}

std::uint64_t ResourceManager::total_mem_capacity() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) total += n.mem_capacity;
  return total;
}

}  // namespace prebake::faas
