#include "faas/resource_manager.hpp"

#include <algorithm>

namespace prebake::faas {

NodeId ResourceManager::add_node(std::string name,
                                 std::uint64_t mem_capacity_bytes,
                                 std::uint32_t cpus) {
  const NodeId id = next_id_++;
  nodes_.emplace_back(id, std::move(name), mem_capacity_bytes, cpus);
  return id;
}

WorkerNode& ResourceManager::node_mut(NodeId id) {
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [id](const WorkerNode& n) { return n.id() == id; });
  if (it == nodes_.end())
    throw std::out_of_range{"ResourceManager: unknown node"};
  return *it;
}

const WorkerNode& ResourceManager::node(NodeId id) const {
  return const_cast<ResourceManager*>(this)->node_mut(id);
}

std::optional<NodeId> ResourceManager::place(const PlacementRequest& request) {
  WorkerNode* picked = scheduler_.pick(nodes_, request);
  if (picked == nullptr) return std::nullopt;
  picked->reserve(request.mem_bytes);
  return picked->id();
}

void ResourceManager::release(NodeId node, std::uint64_t mem_bytes) {
  node_mut(node).release(mem_bytes);
}

std::uint64_t ResourceManager::total_mem_used() const {
  std::uint64_t total = 0;
  for (const WorkerNode& n : nodes_) total += n.mem_used();
  return total;
}

std::uint64_t ResourceManager::total_mem_capacity() const {
  std::uint64_t total = 0;
  for (const WorkerNode& n : nodes_) total += n.mem_capacity();
  return total;
}

}  // namespace prebake::faas
