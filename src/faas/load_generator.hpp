// Load generator matching the paper's methodology (Section 4.1): start the
// function replica, hold the first request until the replica becomes ready,
// then send requests sequentially at a constant rate.
#pragma once

#include <string>
#include <vector>

#include "faas/platform.hpp"

namespace prebake::faas {

struct LoadGenConfig {
  std::string function;
  int requests = 200;
  // Gap between a response and the next request (sequential closed loop).
  sim::Duration think_time = sim::Duration::millis(5);
};

struct LoadGenResult {
  std::vector<RequestMetrics> metrics;
  std::vector<funcs::Response> responses;
  sim::Duration makespan;
};

// Drives the platform inside its simulation until all requests complete.
LoadGenResult run_load(Platform& platform, const LoadGenConfig& config);

// Open-loop Poisson arrivals (requests fire regardless of responses — the
// regime where cold starts hurt, since bursts outrun the replica pool).
struct OpenLoopConfig {
  std::string function;
  double rate_hz = 10.0;           // mean arrival rate
  sim::Duration duration = sim::Duration::seconds(60);
  std::uint64_t seed = 1;
  // Sampling period for the resource-usage (memory) integral.
  sim::Duration mem_sample_period = sim::Duration::millis(500);
};

struct OpenLoopResult {
  std::vector<RequestMetrics> metrics;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_rejected = 0;
  // Integral of platform memory usage over the run (the provider's cost of
  // keeping replicas alive), in byte-seconds.
  double mem_byte_seconds = 0.0;
  sim::Duration makespan;
};

OpenLoopResult run_open_loop(Platform& platform, const OpenLoopConfig& config);

}  // namespace prebake::faas
