// Function Builder: turns a function source description into deployable
// artifacts — registers the class archive (and runtime binary) in storage
// and, for prebaked functions, triggers the build-time checkpoint
// (Section 3.1: "it's more appropriate for the Function Builder to trigger
// the function snapshot").
#pragma once

#include <optional>

#include "core/prebaker.hpp"
#include "faas/registry.hpp"
#include "os/kernel.hpp"

namespace prebake::faas {

struct BuildResult {
  rt::FunctionSpec spec;  // with classpath_archive/init_io paths filled in
  std::optional<core::BakedSnapshot> snapshot;
  sim::Duration build_time;
};

class FunctionBuilder {
 public:
  FunctionBuilder(os::Kernel& kernel, core::StartupService& startup)
      : kernel_{&kernel}, startup_{&startup} {}

  // Registers artifacts in the simulated filesystem and optionally prebakes.
  BuildResult build(rt::FunctionSpec spec,
                    std::optional<core::PrebakeConfig> prebake, sim::Rng rng);

  // Replay the filesystem side effects of a build done on *another* kernel
  // into this one: registry artifacts plus any persisted snapshot images.
  // Advances no simulated time — the parallel scenario engine bakes once in
  // a scratch testbed and installs the result into each shard testbed, so
  // every shard measures against the exact same deployed state.
  void install(const BuildResult& result);

  // Ensure the runtime binary exists in storage (shared by all functions).
  void ensure_runtime_binary(const std::string& path);

 private:
  os::Kernel* kernel_;
  core::StartupService* startup_;
};

}  // namespace prebake::faas
